package mobic

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	s := Scenario{
		Nodes:              30,
		Width:              1000,
		Height:             500,
		Duration:           300,
		Seed:               9,
		Algorithm:          "mobic",
		TxRange:            175,
		BroadcastInterval:  1.5,
		BIMin:              0.5,
		BIMax:              4,
		EnergyJ:            25,
		TimeoutPeriod:      4,
		ContentionInterval: 6,
		Warmup:             30,
		Propagation:        "freespace",
		LossRate:           0.1,
		Mobility: MobilitySpec{
			Model:            "rpgm",
			MinSpeed:         1,
			MaxSpeed:         12,
			Pause:            5,
			Groups:           3,
			GroupRadius:      60,
			LocalJitter:      4,
			Lanes:            2,
			LaneWidth:        4,
			SpeedJitter:      0.2,
			Bidirectional:    true,
			WandererFraction: 0.3,
			Blocks:           6,
			TurnProb:         0.2,
			SteadyState:      true,
		},
	}
	data, err := MarshalScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestUnmarshalScenarioRejectsUnknownFields(t *testing.T) {
	_, err := UnmarshalScenario([]byte(`{"tx_range": 100, "txrange": 200}`))
	if err == nil {
		t.Error("unknown field should be rejected")
	}
}

func TestUnmarshalScenarioRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalScenario([]byte(`{not json`)); err == nil {
		t.Error("invalid JSON should error")
	}
}

func TestLoadSaveScenario(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	s := PaperScenario(150)
	s.Mobility.Model = "highway"
	if err := SaveScenario(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("load mismatch: %+v vs %+v", got, s)
	}
}

func TestLoadScenarioMissingFile(t *testing.T) {
	if _, err := LoadScenario("/nonexistent/scenario.json"); err == nil {
		t.Error("missing file should error")
	}
}

func TestMarshalScenarioOmitsDefaults(t *testing.T) {
	data, err := MarshalScenario(Scenario{TxRange: 100})
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if strings.Contains(out, "loss_rate") || strings.Contains(out, "warmup") {
		t.Errorf("zero fields should be omitted:\n%s", out)
	}
	if !strings.Contains(out, `"tx_range": 100`) {
		t.Errorf("tx_range must always be present:\n%s", out)
	}
}

func TestExportAndReplayMovement(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "movement.tcl")
	s := PaperScenario(150)
	s.Nodes = 10
	s.Duration = 60
	if err := ExportMovement(s, path); err != nil {
		t.Fatal(err)
	}

	// Replaying the exported movement must reproduce the original run
	// exactly (same hello jitter seed, same positions).
	orig, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	replay := s
	replay.MovementFile = path
	replayed, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	if orig.ClusterheadChanges != replayed.ClusterheadChanges ||
		orig.Deliveries != replayed.Deliveries {
		t.Errorf("replay differs: %+v vs %+v", orig, replayed)
	}
}

func TestMovementFileNodeMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "movement.tcl")
	s := PaperScenario(150)
	s.Nodes = 10
	s.Duration = 60
	if err := ExportMovement(s, path); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.MovementFile = path
	bad.Nodes = 20 // file has 10
	if _, err := Run(bad); err == nil {
		t.Error("node-count mismatch should error")
	}
}

func TestMovementFileMissing(t *testing.T) {
	s := PaperScenario(150)
	s.MovementFile = "/no/such/movement.tcl"
	if _, err := Run(s); err == nil {
		t.Error("missing movement file should error")
	}
}

func TestScenarioJSONCarriesMovementFile(t *testing.T) {
	s := PaperScenario(100)
	s.MovementFile = "trace.tcl"
	data, err := MarshalScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.MovementFile != "trace.tcl" {
		t.Errorf("MovementFile lost in round trip: %+v", got)
	}
}

func TestShippedScenarioFilesLoadAndRun(t *testing.T) {
	files, err := filepath.Glob("examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected shipped scenario files, found %v", files)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			s, err := LoadScenario(path)
			if err != nil {
				t.Fatal(err)
			}
			// Trim for test speed; the file's structure is what matters.
			s.Duration = 30
			if s.Nodes > 20 {
				s.Nodes = 20
			}
			if _, err := Run(s); err != nil {
				t.Errorf("scenario %s failed: %v", path, err)
			}
		})
	}
}

func TestLoadedScenarioRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	s := PaperScenario(150)
	s.Nodes = 12
	s.Duration = 60
	if err := SaveScenario(path, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(loaded); err != nil {
		t.Fatalf("loaded scenario failed to run: %v", err)
	}
}
