package mobic

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"

	"mobic/internal/channel"
	"mobic/internal/cluster"
	"mobic/internal/core"
	"mobic/internal/energy"
	"mobic/internal/geom"
	"mobic/internal/mobility"
	"mobic/internal/radio"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
	"mobic/internal/trace"
)

// MobilitySpec selects and parameterizes a mobility model.
//
// Models: "waypoint" (default; the paper's random waypoint), "static",
// "walk", "gauss-markov", "rpgm" (group mobility), "manhattan" (urban
// street grid), "highway" and "conference" (the paper's Section 5
// scenarios).
type MobilitySpec struct {
	// Model names the mobility model (see type doc). Empty = "waypoint".
	Model string
	// MinSpeed and MaxSpeed bound node speeds in m/s (model dependent).
	MinSpeed, MaxSpeed float64
	// Pause is the waypoint pause time PT in seconds.
	Pause float64
	// Groups and GroupRadius configure "rpgm".
	Groups      int
	GroupRadius float64
	// LocalJitter is rpgm's intra-group wobble radius in meters.
	LocalJitter float64
	// Lanes, LaneWidth, SpeedJitter and Bidirectional configure "highway"
	// (the scenario width is the highway length).
	Lanes         int
	LaneWidth     float64
	SpeedJitter   float64
	Bidirectional bool
	// WandererFraction configures "conference": the share of attendees
	// that stroll around; the rest sit nearly still.
	WandererFraction float64
	// Blocks and TurnProb configure "manhattan" (city blocks per axis and
	// the per-intersection turn probability).
	Blocks   int
	TurnProb float64
	// SteadyState pre-rolls "waypoint" walks so t=0 already samples the
	// model's stationary distribution (avoids the RWP speed-decay bias).
	SteadyState bool
}

// Scenario describes one simulation in plain values, mirroring the paper's
// Table 1. Zero values take the paper's defaults where one exists.
type Scenario struct {
	// Nodes is the number of nodes (default 50).
	Nodes int
	// Width and Height are the area dimensions in meters (default 670x670).
	Width, Height float64
	// Duration is the simulated time in seconds (default 900).
	Duration float64
	// Seed roots all randomness (default 1).
	Seed uint64
	// Algorithm is a name accepted by Algorithms() (default "mobic").
	Algorithm string
	// TxRange is the transmission range in meters. Required.
	TxRange float64
	// Mobility selects the movement model (default: waypoint, MaxSpeed 20).
	Mobility MobilitySpec
	// BroadcastInterval is BI in seconds (default 2).
	BroadcastInterval float64
	// BIMin and BIMax, when both set, let every node float its own hello
	// interval in [BIMin, BIMax] with its aggregate mobility (high mobility
	// tightens toward BIMin) behind a relaxation hysteresis band; they
	// override BroadcastInterval. BIMin == BIMax pins that fixed interval.
	// Both zero (the default) keeps the fixed interval.
	BIMin, BIMax float64
	// EnergyJ, when > 0, gives every node a battery with this initial
	// budget in joules: transmitting, receiving and idling drain it,
	// draining batteries worsen election weights, heads below the rotation
	// threshold hand the role off, and depleted nodes die. 0 disables the
	// energy model.
	EnergyJ float64
	// TimeoutPeriod is TP in seconds (default 3).
	TimeoutPeriod float64
	// ContentionInterval is CCI in seconds (default 4; only used by
	// MOBIC-family algorithms).
	ContentionInterval float64
	// Warmup excludes early events from the metrics (default 0).
	Warmup float64
	// Propagation is "tworay" (default), "freespace" or "shadowing".
	Propagation string
	// LossRate drops hello packets uniformly at random in [0, 1).
	LossRate float64
	// MovementFile, when set, loads node movement from a CMU/ns-2
	// `setdest` scenario file; it overrides Mobility, and Nodes must be 0
	// or match the file's node count.
	MovementFile string
	// TraceFile, when set, writes a structured event trace (broadcasts,
	// deliveries, role and head changes, timeouts) to this path after the
	// run — the analog of an ns-2 trace file.
	TraceFile string
	// TraceCapacity bounds the number of retained trace events (default
	// 200000; the oldest events are dropped beyond that).
	TraceCapacity int
}

// Result summarizes one run.
type Result struct {
	// Algorithm is the algorithm that ran.
	Algorithm string
	// ClusterheadChanges is the paper's cluster-stability metric CS:
	// every transition of any node into or out of clusterhead status.
	ClusterheadChanges int
	// ClusterheadAcquisitions counts only transitions into head status.
	ClusterheadAcquisitions int
	// MembershipChanges counts members switching clusterheads.
	MembershipChanges int
	// AvgClusters is the time-averaged number of clusters (Figure 4).
	AvgClusters float64
	// AvgGateways is the time-averaged number of gateway nodes.
	AvgGateways float64
	// AvgClusterSize is the time-averaged mean cluster size.
	AvgClusterSize float64
	// MeanResidenceSeconds is the mean clusterhead tenure.
	MeanResidenceSeconds float64
	// HeadTimeFairness is Jain's fairness index over per-node head duty
	// time (1 = perfectly shared, 1/Nodes = one node carried everything).
	HeadTimeFairness float64
	// Broadcasts, Deliveries and Drops count hello messages.
	Broadcasts, Deliveries, Drops uint64
	// FinalClusterheads is the number of heads when the run ended.
	FinalClusterheads int
}

// NodeInfo is the final state of one node, for visualization.
type NodeInfo struct {
	// ID is the node identifier.
	ID int
	// X, Y is the final position in meters.
	X, Y float64
	// Role is "undecided", "head" or "member".
	Role string
	// Head is the clusterhead's ID (own ID for heads, -1 if none).
	Head int
	// M is the node's last aggregate local mobility value.
	M float64
	// Gateway reports whether the node hears two or more heads.
	Gateway bool
}

// PaperScenario returns the paper's Figure 3/4 workload (670x670 m, 50
// nodes, MaxSpeed 20 m/s, PT 0) at the given transmission range.
func PaperScenario(txRange float64) Scenario {
	return Scenario{TxRange: txRange}
}

// SparseScenario returns the Figure 5 workload (1000x1000 m).
func SparseScenario(txRange float64) Scenario {
	return Scenario{TxRange: txRange, Width: 1000, Height: 1000}
}

// MobilityScenario returns the Figure 6 workload (Tx 250 m) at the given
// speed cap and pause time.
func MobilityScenario(maxSpeed, pause float64) Scenario {
	return Scenario{
		TxRange:  250,
		Mobility: MobilitySpec{MaxSpeed: maxSpeed, Pause: pause},
	}
}

// Algorithms lists the accepted Scenario.Algorithm names.
func Algorithms() []string { return cluster.Names() }

// ErrBadScenario wraps scenario translation failures.
var ErrBadScenario = errors.New("mobic: invalid scenario")

// Run executes the scenario and returns its metrics.
func Run(s Scenario) (*Result, error) {
	res, _, err := run(s, false)
	return res, err
}

// Inspect executes the scenario and additionally returns every node's final
// state, for visualizing the resulting cluster structure.
func Inspect(s Scenario) (*Result, []NodeInfo, error) {
	return run(s, true)
}

// Compare runs the same scenario (same seed, same node movement) under each
// named algorithm and returns the results keyed by name.
func Compare(s Scenario, algorithms ...string) (map[string]*Result, error) {
	if len(algorithms) == 0 {
		algorithms = []string{"lcc", "mobic"}
	}
	out := make(map[string]*Result, len(algorithms))
	for _, name := range algorithms {
		s := s
		s.Algorithm = name
		res, err := Run(s)
		if err != nil {
			return nil, fmt.Errorf("mobic: algorithm %q: %w", name, err)
		}
		out[name] = res
	}
	return out, nil
}

func run(s Scenario, wantNodes bool) (*Result, []NodeInfo, error) {
	cfg, err := s.config()
	if err != nil {
		return nil, nil, err
	}
	var tlog *trace.Log
	if s.TraceFile != "" {
		capacity := s.TraceCapacity
		if capacity <= 0 {
			capacity = 200000
		}
		tlog = trace.New(capacity)
		cfg.Trace = tlog
	}
	net, err := simnet.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	raw, err := net.Run()
	if err != nil {
		return nil, nil, err
	}
	if tlog != nil {
		if err := os.WriteFile(s.TraceFile, []byte(tlog.Dump()), 0o644); err != nil {
			return nil, nil, fmt.Errorf("mobic: writing trace: %w", err)
		}
	}
	res := &Result{
		Algorithm:               raw.Algorithm,
		ClusterheadChanges:      raw.Metrics.CHChanges,
		ClusterheadAcquisitions: raw.Metrics.CHAcquisitions,
		MembershipChanges:       raw.Metrics.MembershipChanges,
		AvgClusters:             raw.Metrics.AvgClusters,
		AvgGateways:             raw.Metrics.AvgGateways,
		AvgClusterSize:          raw.Metrics.AvgClusterSize,
		MeanResidenceSeconds:    raw.Metrics.MeanResidence,
		HeadTimeFairness:        raw.Metrics.HeadTimeFairness,
		Broadcasts:              raw.Metrics.Broadcasts,
		Deliveries:              raw.Metrics.Deliveries,
		Drops:                   raw.Metrics.Drops,
		FinalClusterheads:       raw.FinalHeads,
	}
	var nodes []NodeInfo
	if wantNodes {
		for _, st := range net.Snapshot() {
			nodes = append(nodes, NodeInfo{
				ID:      int(st.ID),
				X:       st.Pos.X,
				Y:       st.Pos.Y,
				Role:    st.Role.String(),
				Head:    int(st.Head),
				M:       st.M,
				Gateway: st.Gateway,
			})
		}
	}
	return res, nodes, nil
}

// config translates the public Scenario into the internal configuration.
func (s Scenario) config() (simnet.Config, error) {
	if s.Nodes == 0 {
		s.Nodes = 50
	}
	if s.Width == 0 {
		s.Width = 670
	}
	if s.Height == 0 {
		s.Height = s.Width
	}
	if s.Duration == 0 {
		s.Duration = 900
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.TxRange <= 0 {
		return simnet.Config{}, fmt.Errorf("%w: TxRange is required and positive", ErrBadScenario)
	}
	if s.LossRate < 0 || s.LossRate >= 1 {
		return simnet.Config{}, fmt.Errorf("%w: loss rate %g outside [0, 1)", ErrBadScenario, s.LossRate)
	}
	if s.BIMin < 0 || s.BIMax < 0 {
		return simnet.Config{}, fmt.Errorf("%w: adaptive BI bounds [%g, %g] must be >= 0", ErrBadScenario, s.BIMin, s.BIMax)
	}
	if (s.BIMin > 0) != (s.BIMax > 0) {
		return simnet.Config{}, fmt.Errorf("%w: adaptive BI needs both bounds, got [%g, %g]", ErrBadScenario, s.BIMin, s.BIMax)
	}
	if s.BIMin > s.BIMax {
		return simnet.Config{}, fmt.Errorf("%w: adaptive BI bounds inverted [%g, %g]", ErrBadScenario, s.BIMin, s.BIMax)
	}
	if s.EnergyJ < 0 {
		return simnet.Config{}, fmt.Errorf("%w: energy budget %g J is negative", ErrBadScenario, s.EnergyJ)
	}

	alg, err := cluster.ByName(s.Algorithm)
	if err != nil {
		return simnet.Config{}, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	if s.ContentionInterval > 0 && alg.Policy.CCI > 0 {
		alg.Policy.CCI = s.ContentionInterval
	}

	area := geom.NewRect(s.Width, s.Height)
	var (
		model     mobility.Model
		modelArea geom.Rect
	)
	if s.MovementFile != "" {
		f, err := os.Open(s.MovementFile)
		if err != nil {
			return simnet.Config{}, fmt.Errorf("%w: %v", ErrBadScenario, err)
		}
		trs, err := mobility.ParseNS2(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return simnet.Config{}, fmt.Errorf("%w: %v", ErrBadScenario, err)
		}
		if s.Nodes != 50 && s.Nodes != len(trs) {
			// 50 is the Table 1 default applied above; a file overrides it.
			return simnet.Config{}, fmt.Errorf("%w: movement file has %d nodes, scenario wants %d",
				ErrBadScenario, len(trs), s.Nodes)
		}
		s.Nodes = len(trs)
		model = &mobility.FixedTrajectories{Trajectories: trs}
		modelArea = area
	} else {
		var err error
		model, modelArea, err = s.Mobility.build(area)
		if err != nil {
			return simnet.Config{}, err
		}
	}

	prop, err := radio.New(s.Propagation, rand.New(rand.NewPCG(s.Seed, 0x0bad)))
	if err != nil {
		return simnet.Config{}, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}

	cfg := simnet.Config{
		N:                 s.Nodes,
		Area:              modelArea,
		Duration:          s.Duration,
		Seed:              s.Seed,
		Algorithm:         alg,
		Mobility:          model,
		Propagation:       prop,
		TxRange:           s.TxRange,
		BroadcastInterval: s.BroadcastInterval,
		TimeoutPeriod:     s.TimeoutPeriod,
		Warmup:            s.Warmup,
	}
	if s.BIMin > 0 {
		cfg.Adaptive = &simnet.AdaptiveBI{
			Min:        s.BIMin,
			Max:        s.BIMax,
			MRef:       scenario.DefaultAdaptiveMRef,
			Hysteresis: scenario.DefaultAdaptiveHysteresis,
		}
	}
	if s.EnergyJ > 0 {
		ec := energy.Default()
		ec.InitialJ = s.EnergyJ
		cfg.Energy = &ec
	}
	if s.LossRate > 0 {
		lm, err := channel.NewUniformLoss(s.LossRate, rand.New(rand.NewPCG(s.Seed, 0x1055)))
		if err != nil {
			return simnet.Config{}, fmt.Errorf("%w: %v", ErrBadScenario, err)
		}
		cfg.Loss = lm
	}
	return cfg, nil
}

// build maps the spec to an internal model and the effective area.
func (m MobilitySpec) build(area geom.Rect) (mobility.Model, geom.Rect, error) {
	maxSpeed := m.MaxSpeed
	if maxSpeed == 0 {
		maxSpeed = 20 // Table 1's default regime
	}
	switch m.Model {
	case "", "waypoint":
		return &mobility.RandomWaypoint{
			Area: area, MinSpeed: m.MinSpeed, MaxSpeed: maxSpeed, Pause: m.Pause,
			SteadyState: m.SteadyState,
		}, area, nil
	case "static":
		return &mobility.Static{Area: area}, area, nil
	case "walk":
		return &mobility.RandomWalk{
			Area: area, MinSpeed: m.MinSpeed, MaxSpeed: maxSpeed,
		}, area, nil
	case "gauss-markov":
		return &mobility.GaussMarkov{
			Area: area, MeanSpeed: maxSpeed, SigmaSpeed: maxSpeed / 4,
			SigmaDir: 0.3, Alpha: 0.85,
		}, area, nil
	case "rpgm":
		groups := m.Groups
		if groups <= 0 {
			groups = 4
		}
		radius := m.GroupRadius
		if radius <= 0 {
			radius = 100
		}
		jitter := m.LocalJitter
		if jitter <= 0 {
			jitter = radius / 10
		}
		return &mobility.RPGM{
			Area: area, Groups: groups, GroupRadius: radius,
			MinSpeed: m.MinSpeed, MaxSpeed: maxSpeed, Pause: m.Pause,
			LocalJitter: jitter,
		}, area, nil
	case "highway":
		lanes := m.Lanes
		if lanes <= 0 {
			lanes = 4
		}
		hw := &mobility.Highway{
			Length:        area.Width(),
			Lanes:         lanes,
			LaneWidth:     m.LaneWidth,
			MinSpeed:      m.MinSpeed,
			MaxSpeed:      maxSpeed,
			SpeedJitter:   m.SpeedJitter,
			Bidirectional: m.Bidirectional,
		}
		return hw, hw.Area(), nil
	case "manhattan":
		blocks := m.Blocks
		if blocks <= 0 {
			blocks = 5
		}
		turn := m.TurnProb
		if turn <= 0 {
			turn = 0.25
		}
		return &mobility.Manhattan{
			Area: area, Blocks: blocks,
			MinSpeed: m.MinSpeed, MaxSpeed: maxSpeed, TurnProb: turn,
		}, area, nil
	case "conference":
		frac := m.WandererFraction
		if frac == 0 {
			frac = 0.15
		}
		return &mobility.Conference{
			Area:             area,
			WandererFraction: frac,
			WalkSpeed:        maxSpeed,
			SitPause:         m.Pause,
			FidgetRadius:     0.5,
		}, area, nil
	default:
		return nil, geom.Rect{}, fmt.Errorf("%w: unknown mobility model %q", ErrBadScenario, m.Model)
	}
}

// RelativeMobility exposes the paper's pairwise metric (equation 1):
// 10*log10(prNew/prOld) dB for two successive received powers.
func RelativeMobility(prOld, prNew float64) (float64, error) {
	return core.RelativeMobility(prOld, prNew)
}

// AggregateLocalMobility exposes the paper's aggregate metric (equation 2):
// the variance about zero of the pairwise samples.
func AggregateLocalMobility(pairwise []float64) float64 {
	return core.AggregateLocalMobility(pairwise)
}
