package mobic

import (
	"math"
	"os"
	"strings"
	"testing"
)

func fast(s Scenario) Scenario {
	s.Duration = 60
	s.Nodes = 15
	return s
}

func TestRunDefaults(t *testing.T) {
	res, err := Run(fast(PaperScenario(150)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "mobic" {
		t.Errorf("default algorithm = %q, want mobic", res.Algorithm)
	}
	if res.Broadcasts == 0 || res.Deliveries == 0 {
		t.Error("no traffic recorded")
	}
	if res.FinalClusterheads <= 0 {
		t.Error("no clusters formed")
	}
	if res.AvgClusters <= 0 {
		t.Error("cluster sampling recorded nothing")
	}
}

func TestRunRequiresTxRange(t *testing.T) {
	if _, err := Run(Scenario{}); err == nil {
		t.Error("missing TxRange should error")
	}
}

func TestRunRejectsBadAlgorithm(t *testing.T) {
	s := fast(PaperScenario(150))
	s.Algorithm = "leader-election-9000"
	if _, err := Run(s); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestRunRejectsBadLossRate(t *testing.T) {
	s := fast(PaperScenario(150))
	s.LossRate = 1.0
	if _, err := Run(s); err == nil {
		t.Error("loss rate 1.0 should error")
	}
	s.LossRate = -0.1
	if _, err := Run(s); err == nil {
		t.Error("negative loss rate should error")
	}
}

func TestRunRejectsBadPolicyParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"negative BI floor", func(s *Scenario) { s.BIMin = -1; s.BIMax = 2 }},
		{"BI floor without ceiling", func(s *Scenario) { s.BIMin = 1 }},
		{"BI ceiling without floor", func(s *Scenario) { s.BIMax = 4 }},
		{"inverted BI bounds", func(s *Scenario) { s.BIMin = 4; s.BIMax = 1 }},
		{"negative energy", func(s *Scenario) { s.EnergyJ = -3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := fast(PaperScenario(150))
			tc.mutate(&s)
			if _, err := Run(s); err == nil {
				t.Error("invalid policy parameters should error")
			}
		})
	}
}

func TestRunWithPoliciesEnabled(t *testing.T) {
	s := fast(PaperScenario(150))
	s.BIMin, s.BIMax = 0.5, 4
	s.EnergyJ = 50
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Broadcasts == 0 || res.Deliveries == 0 {
		t.Errorf("policy-enabled run produced no traffic: %+v", res)
	}
}

func TestRunRejectsBadMobilityModel(t *testing.T) {
	s := fast(PaperScenario(150))
	s.Mobility.Model = "teleport"
	if _, err := Run(s); err == nil {
		t.Error("unknown mobility model should error")
	}
}

func TestRunRejectsBadPropagation(t *testing.T) {
	s := fast(PaperScenario(150))
	s.Propagation = "raytraced"
	if _, err := Run(s); err == nil {
		t.Error("unknown propagation should error")
	}
}

func TestDeterminismAcrossCalls(t *testing.T) {
	s := fast(PaperScenario(150))
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("same scenario produced different results:\n%+v\n%+v", a, b)
	}
}

func TestCompareSharesScenario(t *testing.T) {
	s := fast(PaperScenario(200))
	byAlg, err := Compare(s, "lcc", "mobic", "lowest-id")
	if err != nil {
		t.Fatal(err)
	}
	if len(byAlg) != 3 {
		t.Fatalf("got %d results", len(byAlg))
	}
	// Identical movement: broadcast counts match across algorithms with
	// the same BI.
	if byAlg["lcc"].Broadcasts != byAlg["mobic"].Broadcasts {
		t.Errorf("broadcast counts differ: %d vs %d",
			byAlg["lcc"].Broadcasts, byAlg["mobic"].Broadcasts)
	}
}

func TestCompareDefaultsToPaperPair(t *testing.T) {
	byAlg, err := Compare(fast(PaperScenario(150)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := byAlg["lcc"]; !ok {
		t.Error("default comparison should include lcc")
	}
	if _, ok := byAlg["mobic"]; !ok {
		t.Error("default comparison should include mobic")
	}
}

func TestCompareUnknownAlgorithm(t *testing.T) {
	if _, err := Compare(fast(PaperScenario(150)), "nope"); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestInspectReturnsNodes(t *testing.T) {
	s := fast(PaperScenario(200))
	_, nodes, err := Inspect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 15 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	heads := 0
	for _, n := range nodes {
		switch n.Role {
		case "head":
			heads++
			if n.Head != n.ID {
				t.Errorf("head %d affiliated to %d", n.ID, n.Head)
			}
		case "member":
			if n.Head < 0 {
				t.Errorf("member %d has no head", n.ID)
			}
		}
		if n.X < 0 || n.X > 670 || n.Y < 0 || n.Y > 670 {
			t.Errorf("node %d outside area: (%v, %v)", n.ID, n.X, n.Y)
		}
	}
	if heads == 0 {
		t.Error("no heads in final snapshot")
	}
}

func TestMobilityModels(t *testing.T) {
	models := []MobilitySpec{
		{Model: "waypoint", MaxSpeed: 20},
		{Model: "static"},
		{Model: "walk", MaxSpeed: 10},
		{Model: "gauss-markov", MaxSpeed: 10},
		{Model: "rpgm", MaxSpeed: 10},
		{Model: "highway", MaxSpeed: 30, Lanes: 2},
		{Model: "conference", MaxSpeed: 1.2, Pause: 60},
	}
	for _, m := range models {
		t.Run(m.Model, func(t *testing.T) {
			s := fast(PaperScenario(150))
			s.Mobility = m
			if _, err := Run(s); err != nil {
				t.Errorf("model %q: %v", m.Model, err)
			}
		})
	}
}

func TestScenarioPresets(t *testing.T) {
	if s := SparseScenario(100); s.Width != 1000 || s.Height != 1000 {
		t.Errorf("SparseScenario = %+v", s)
	}
	if s := MobilityScenario(30, 30); s.TxRange != 250 || s.Mobility.MaxSpeed != 30 || s.Mobility.Pause != 30 {
		t.Errorf("MobilityScenario = %+v", s)
	}
}

func TestLossRateRuns(t *testing.T) {
	s := fast(PaperScenario(150))
	s.LossRate = 0.3
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 {
		t.Error("loss rate 0.3 recorded zero drops")
	}
}

func TestShadowingPropagationOption(t *testing.T) {
	s := fast(PaperScenario(150))
	s.Propagation = "shadowing"
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmsListed(t *testing.T) {
	names := Algorithms()
	if len(names) < 5 {
		t.Errorf("Algorithms() = %v", names)
	}
	found := false
	for _, n := range names {
		if n == "mobic" {
			found = true
		}
	}
	if !found {
		t.Error("mobic missing from Algorithms()")
	}
}

func TestMetricReExports(t *testing.T) {
	rel, err := RelativeMobility(1e-9, 2e-9)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(2)
	if math.Abs(rel-want) > 1e-9 {
		t.Errorf("RelativeMobility = %v, want %v", rel, want)
	}
	if _, err := RelativeMobility(0, 1); err == nil {
		t.Error("zero power should error")
	}
	if agg := AggregateLocalMobility([]float64{3, -4}); math.Abs(agg-12.5) > 1e-9 {
		t.Errorf("AggregateLocalMobility = %v, want 12.5", agg)
	}
}

func TestTraceFileWritten(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.txt"
	s := fast(PaperScenario(150))
	s.TraceFile = path
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	if !strings.Contains(content, "broadcast") || !strings.Contains(content, "deliver") {
		t.Errorf("trace missing event kinds:\n%.300s", content)
	}
	if !strings.Contains(content, "role") {
		t.Errorf("trace missing role changes:\n%.300s", content)
	}
}

// The paper's headline claim through the public API.
func TestMOBICMoreStableThanLCC(t *testing.T) {
	if testing.Short() {
		t.Skip("full-duration comparison")
	}
	s := PaperScenario(250)
	byAlg, err := Compare(s, "lcc", "mobic")
	if err != nil {
		t.Fatal(err)
	}
	if byAlg["mobic"].ClusterheadChanges >= byAlg["lcc"].ClusterheadChanges {
		t.Errorf("mobic %d >= lcc %d clusterhead changes at Tx=250",
			byAlg["mobic"].ClusterheadChanges, byAlg["lcc"].ClusterheadChanges)
	}
}
