module mobic

go 1.22
