package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: mobic
cpu: Some CPU @ 2.00GHz
BenchmarkFig3ClusterheadChanges-8   	       1	151000000 ns/op	        41.00 baseline_CH	        29.00 mobic_CH	        29.27 gain_%	53000000 B/op	  500000 allocs/op
BenchmarkSingleRun-8                	       1	 40000000 ns/op	12000000 B/op	  120000 allocs/op
PASS
ok  	mobic	1.234s
pkg: mobic/internal/spatial
BenchmarkQueryRange-8               	       1	      1200 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	fig3, ok := got["mobic.BenchmarkFig3ClusterheadChanges"]
	if !ok {
		t.Fatalf("fig3 missing (keys: %v)", got)
	}
	if fig3.NsPerOp != 151000000 || fig3.BytesPerOp != 53000000 || fig3.AllocsPerOp != 500000 {
		t.Errorf("fig3 = %+v", fig3)
	}
	if fig3.Metrics["mobic_CH"] != 29 || fig3.Metrics["gain_%"] != 29.27 {
		t.Errorf("fig3 custom metrics = %v", fig3.Metrics)
	}
	grid, ok := got["mobic/internal/spatial.BenchmarkQueryRange"]
	if !ok || grid.NsPerOp != 1200 {
		t.Errorf("grid bench misparsed: %+v (ok=%v)", grid, ok)
	}
}

func TestParseBenchStripsCPUSuffixOnly(t *testing.T) {
	in := "pkg: p\nBenchmarkScalability200Nodes-16   	       1	 5000000 ns/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["p.BenchmarkScalability200Nodes"]; !ok {
		t.Errorf("name with trailing digits mangled: %v", got)
	}
}

func defaultTol() tolerances {
	return tolerances{ns: 1.0, allocs: 0.25, allocSlack: 2, minNs: 1e6}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := map[string]Record{"p.BenchmarkA": {NsPerOp: 10e6, AllocsPerOp: 1000}}
	cur := map[string]Record{"p.BenchmarkA": {NsPerOp: 18e6, AllocsPerOp: 1200}}
	failures, notes := compare(base, cur, defaultTol())
	if len(failures) != 0 {
		t.Errorf("within-tolerance drift failed the gate: %v", failures)
	}
	if len(notes) != 0 {
		t.Errorf("unexpected notes: %v", notes)
	}
}

func TestCompareNsRegression(t *testing.T) {
	base := map[string]Record{"p.BenchmarkA": {NsPerOp: 10e6, AllocsPerOp: 1000}}
	cur := map[string]Record{"p.BenchmarkA": {NsPerOp: 25e6, AllocsPerOp: 1000}}
	failures, _ := compare(base, cur, defaultTol())
	if len(failures) != 1 || !strings.Contains(failures[0], "ns/op") {
		t.Errorf("2.5x slowdown not flagged: %v", failures)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := map[string]Record{"p.BenchmarkA": {NsPerOp: 10e6, AllocsPerOp: 1000}}
	cur := map[string]Record{"p.BenchmarkA": {NsPerOp: 10e6, AllocsPerOp: 1500}}
	failures, _ := compare(base, cur, defaultTol())
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Errorf("50%% alloc growth not flagged: %v", failures)
	}
}

func TestCompareAllocSlackForTinyCounts(t *testing.T) {
	// 0 -> 2 allocations is within the absolute slack; 0 -> 3 is not.
	base := map[string]Record{"p.BenchmarkA": {NsPerOp: 10e6, AllocsPerOp: 0}}
	if failures, _ := compare(base, map[string]Record{"p.BenchmarkA": {NsPerOp: 10e6, AllocsPerOp: 2}}, defaultTol()); len(failures) != 0 {
		t.Errorf("slack not applied: %v", failures)
	}
	if failures, _ := compare(base, map[string]Record{"p.BenchmarkA": {NsPerOp: 10e6, AllocsPerOp: 3}}, defaultTol()); len(failures) != 1 {
		t.Errorf("beyond-slack growth not flagged: %v", failures)
	}
}

func TestCompareFastBenchTimingExempt(t *testing.T) {
	// 1200 ns baseline is far below minNs: a 100x timing swing is noise at
	// -benchtime=1x, but its allocations are still gated.
	base := map[string]Record{"p.BenchmarkQ": {NsPerOp: 1200, AllocsPerOp: 0}}
	cur := map[string]Record{"p.BenchmarkQ": {NsPerOp: 120000, AllocsPerOp: 0}}
	if failures, _ := compare(base, cur, defaultTol()); len(failures) != 0 {
		t.Errorf("noise-range timing flagged: %v", failures)
	}
	cur = map[string]Record{"p.BenchmarkQ": {NsPerOp: 1200, AllocsPerOp: 50}}
	if failures, _ := compare(base, cur, defaultTol()); len(failures) != 1 {
		t.Errorf("alloc growth on fast bench not flagged: %v", failures)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := map[string]Record{"p.BenchmarkGone": {NsPerOp: 10e6}}
	failures, _ := compare(base, map[string]Record{}, defaultTol())
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Errorf("disappeared benchmark not flagged: %v", failures)
	}
}

func TestCompareNewBenchmarkIsNoteOnly(t *testing.T) {
	cur := map[string]Record{"p.BenchmarkNew": {NsPerOp: 10e6}}
	failures, notes := compare(map[string]Record{}, cur, defaultTol())
	if len(failures) != 0 {
		t.Errorf("new benchmark failed the gate: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "new benchmark") {
		t.Errorf("new benchmark not noted: %v", notes)
	}
}

func TestCompareImprovementIsNoted(t *testing.T) {
	base := map[string]Record{"p.BenchmarkA": {NsPerOp: 100e6}}
	cur := map[string]Record{"p.BenchmarkA": {NsPerOp: 20e6}}
	failures, notes := compare(base, cur, defaultTol())
	if len(failures) != 0 {
		t.Errorf("improvement failed the gate: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "improved") {
		t.Errorf("improvement not noted: %v", notes)
	}
}
