// Command benchgate is the benchmark regression gate: it parses `go test
// -bench` text output into a stable JSON baseline and compares later runs
// against it within configurable tolerances.
//
// Two modes, both reading benchmark text from stdin:
//
//	benchgate -emit  -file BENCH_harness.json    write the baseline
//	benchgate -check -file BENCH_harness.json    compare, exit 1 on regression
//
// The gate fails when a baseline benchmark disappears, when ns/op grows
// beyond -ns-tol (relative, default 1.0 = fail beyond 2x, overridable via
// BENCH_NS_TOL), or when allocs/op grows beyond -alloc-tol (default 0.25,
// BENCH_ALLOC_TOL). Timings below -min-ns are too noise-dominated at
// -benchtime=1x and are compared on allocations only. New benchmarks and
// improvements are reported but never fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark's measured costs.
type Record struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values (units other than the
	// three standard ones). Recorded for visibility, never gated: they are
	// simulation outputs, not costs, and the trace-digest harness already
	// pins behaviour exactly.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed BENCH_harness.json document.
type Baseline struct {
	// Note documents how to refresh the file.
	Note string `json:"note,omitempty"`
	// Benchmarks maps "import/path.BenchmarkName" to its record.
	Benchmarks map[string]Record `json:"benchmarks"`
}

const refreshNote = "benchmark cost baseline; refresh with scripts/bench.sh baseline"

// cpuSuffix strips the trailing GOMAXPROCS marker (`BenchmarkFoo-8`), which
// would otherwise make baselines machine-specific.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark results from `go test -bench` text. Names
// are qualified by the enclosing `pkg:` line so identically named benchmarks
// in different packages cannot collide.
func parseBench(r io.Reader) (map[string]Record, error) {
	out := make(map[string]Record)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // e.g. "BenchmarkFoo---FAIL" shapes
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		rec := Record{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: %s: bad value %q", key, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				rec.NsPerOp = v
			case "B/op":
				rec.BytesPerOp = v
			case "allocs/op":
				rec.AllocsPerOp = v
			default:
				if rec.Metrics == nil {
					rec.Metrics = make(map[string]float64)
				}
				rec.Metrics[unit] = v
			}
		}
		out[key] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// tolerances bundle the gate's thresholds.
type tolerances struct {
	// ns is the allowed relative growth in ns/op (1.0 = may double).
	ns float64
	// allocs is the allowed relative growth in allocs/op.
	allocs float64
	// allocSlack is an absolute allowance on top of the relative one, so
	// near-zero counts do not fail on a single extra allocation.
	allocSlack float64
	// minNs exempts timings below this from the ns comparison; single
	// iteration runs of sub-millisecond benchmarks are pure noise.
	minNs float64
}

// compare evaluates current against base. failures make the gate exit
// non-zero; notes are informational.
func compare(base, current map[string]Record, tol tolerances) (failures, notes []string) {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		b := base[key]
		c, ok := current[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run", key))
			continue
		}
		if b.NsPerOp >= tol.minNs && c.NsPerOp > b.NsPerOp*(1+tol.ns) {
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f -> %.0f (+%.0f%%, tolerance %.0f%%)",
				key, b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*tol.ns))
		}
		if c.AllocsPerOp > b.AllocsPerOp*(1+tol.allocs)+tol.allocSlack {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f -> %.0f (+%.0f%%, tolerance %.0f%%)",
				key, b.AllocsPerOp, c.AllocsPerOp, 100*(c.AllocsPerOp/b.AllocsPerOp-1), 100*tol.allocs))
		}
		if b.NsPerOp >= tol.minNs && c.NsPerOp < b.NsPerOp/(1+tol.ns) {
			notes = append(notes, fmt.Sprintf("%s: ns/op improved %.0f -> %.0f (refresh the baseline to lock it in)",
				key, b.NsPerOp, c.NsPerOp))
		}
	}
	fresh := make([]string, 0)
	for k := range current {
		if _, ok := base[k]; !ok {
			fresh = append(fresh, k)
		}
	}
	sort.Strings(fresh)
	for _, k := range fresh {
		notes = append(notes, fmt.Sprintf("%s: new benchmark, not in baseline (scripts/bench.sh baseline adds it)", k))
	}
	return failures, notes
}

// envFloat reads a float from the environment, falling back on def.
func envFloat(name string, def float64) float64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
		fmt.Fprintf(os.Stderr, "benchgate: ignoring malformed %s=%q\n", name, s)
	}
	return def
}

func run() int {
	var (
		emit     = flag.Bool("emit", false, "write a fresh baseline from stdin")
		check    = flag.Bool("check", false, "compare stdin against the baseline")
		file     = flag.String("file", "BENCH_harness.json", "baseline path")
		nsTol    = flag.Float64("ns-tol", envFloat("BENCH_NS_TOL", 1.0), "allowed relative ns/op growth")
		allocTol = flag.Float64("alloc-tol", envFloat("BENCH_ALLOC_TOL", 0.25), "allowed relative allocs/op growth")
		minNs    = flag.Float64("min-ns", 1e6, "skip ns comparison below this baseline timing")
	)
	flag.Parse()
	if *emit == *check {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -emit or -check is required")
		return 2
	}

	current, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines on stdin")
		return 2
	}

	if *emit {
		doc := Baseline{Note: refreshNote, Benchmarks: current}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := os.WriteFile(*file, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("benchgate: wrote %s with %d benchmarks\n", *file, len(current))
		return 0
	}

	data, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: reading baseline: %v (create one with scripts/bench.sh baseline)\n", err)
		return 2
	}
	var doc Baseline
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *file, err)
		return 2
	}

	tol := tolerances{ns: *nsTol, allocs: *allocTol, allocSlack: 2, minNs: *minNs}
	failures, notes := compare(doc.Benchmarks, current, tol)
	for _, n := range notes {
		fmt.Printf("note: %s\n", n)
	}
	for _, f := range failures {
		fmt.Printf("FAIL: %s\n", f)
	}
	if len(failures) > 0 {
		fmt.Printf("benchgate: %d regression(s) against %s\n", len(failures), *file)
		return 1
	}
	fmt.Printf("benchgate: %d benchmarks within tolerance of %s\n", len(current), *file)
	return 0
}

func main() { os.Exit(run()) }
