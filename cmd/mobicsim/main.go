// Command mobicsim runs a single MANET clustering scenario and prints its
// stability metrics — the smallest useful entry point into the library.
//
// Examples:
//
//	mobicsim -alg mobic -tx 250
//	mobicsim -compare lcc,mobic -tx 250 -seed 3
//	mobicsim -mobility highway -width 3000 -maxspeed 30 -tx 150 -inspect
//	mobicsim -alg mobic -tx 150 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mobic"
	"mobic/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobicsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mobicsim", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 50, "number of nodes")
		width      = fs.Float64("width", 670, "area width in meters")
		height     = fs.Float64("height", 0, "area height in meters (0 = square)")
		duration   = fs.Float64("duration", 900, "simulated seconds")
		seed       = fs.Uint64("seed", 1, "scenario seed")
		alg        = fs.String("alg", "mobic", "clustering algorithm ("+strings.Join(mobic.Algorithms(), ", ")+")")
		compare    = fs.String("compare", "", "comma-separated algorithms to compare on one scenario")
		tx         = fs.Float64("tx", 250, "transmission range in meters")
		bi         = fs.Float64("bi", 0, "broadcast interval (0 = default 2 s)")
		biMin      = fs.Float64("bi-min", 0, "adaptive broadcast interval floor (with -bi-max; 0 = fixed interval)")
		biMax      = fs.Float64("bi-max", 0, "adaptive broadcast interval ceiling (with -bi-min; 0 = fixed interval)")
		energyJ    = fs.Float64("energy-j", 0, "per-node battery budget in joules (0 = no energy model)")
		tp         = fs.Float64("tp", 0, "timeout period (0 = default 3 s)")
		cci        = fs.Float64("cci", 0, "cluster contention interval (0 = default 4 s)")
		warmup     = fs.Float64("warmup", 0, "metrics warm-up seconds")
		model      = fs.String("mobility", "waypoint", "mobility model (waypoint, static, walk, gauss-markov, rpgm, manhattan, highway, conference)")
		maxSpeed   = fs.Float64("maxspeed", 20, "maximum node speed (m/s)")
		minSpeed   = fs.Float64("minspeed", 0, "minimum node speed (m/s)")
		pause      = fs.Float64("pause", 0, "waypoint pause time (s)")
		prop       = fs.String("prop", "tworay", "propagation model (tworay, freespace, shadowing)")
		loss       = fs.Float64("loss", 0, "uniform hello loss rate [0, 1)")
		asJSON     = fs.Bool("json", false, "emit JSON instead of text")
		inspect    = fs.Bool("inspect", false, "print final per-node state")
		showMap    = fs.Bool("map", false, "draw the final cluster structure as an ASCII map")
		configPath = fs.String("config", "", "load the scenario from a JSON file (overrides scenario flags)")
		savePath   = fs.String("saveconfig", "", "write the flag-built scenario to a JSON file and exit")
		movement   = fs.String("movement", "", "load node movement from a CMU/ns-2 setdest scenario file")
		saveMove   = fs.String("savemovement", "", "write the generated movement as an ns-2 setdest file and exit")
		traceFile  = fs.String("tracefile", "", "write a structured event trace to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := mobic.Scenario{
		Nodes:              *n,
		Width:              *width,
		Height:             *height,
		Duration:           *duration,
		Seed:               *seed,
		Algorithm:          *alg,
		TxRange:            *tx,
		BroadcastInterval:  *bi,
		BIMin:              *biMin,
		BIMax:              *biMax,
		EnergyJ:            *energyJ,
		TimeoutPeriod:      *tp,
		ContentionInterval: *cci,
		Warmup:             *warmup,
		Propagation:        propName(*prop),
		LossRate:           *loss,
		Mobility: mobic.MobilitySpec{
			Model:    *model,
			MinSpeed: *minSpeed,
			MaxSpeed: *maxSpeed,
			Pause:    *pause,
		},
	}

	if *movement != "" {
		s.MovementFile = *movement
	}
	if *traceFile != "" {
		s.TraceFile = *traceFile
	}
	if *saveMove != "" {
		if err := mobic.ExportMovement(s, *saveMove); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *saveMove)
		return nil
	}
	if *savePath != "" {
		if err := mobic.SaveScenario(*savePath, s); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *savePath)
		return nil
	}
	if *configPath != "" {
		loaded, err := mobic.LoadScenario(*configPath)
		if err != nil {
			return err
		}
		s = loaded
	}

	if *compare != "" {
		names := strings.Split(*compare, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		byAlg, err := mobic.Compare(s, names...)
		if err != nil {
			return err
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(byAlg)
		}
		printComparison(out, byAlg)
		return nil
	}

	if *inspect || *showMap {
		res, nodes, err := mobic.Inspect(s)
		if err != nil {
			return err
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(struct {
				Result *mobic.Result
				Nodes  []mobic.NodeInfo
			}{res, nodes})
		}
		printResult(out, res)
		if *inspect {
			printNodes(out, nodes)
		}
		if *showMap {
			h := *height
			if h == 0 {
				h = *width
			}
			fmt.Fprintln(out)
			fmt.Fprint(out, clusterMap(nodes, *width, h))
		}
		return nil
	}

	res, err := mobic.Run(s)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	printResult(out, res)
	return nil
}

// propName maps the flag's default to the library's default spelling.
func propName(p string) string {
	if p == "tworay" {
		return "" // library default
	}
	return p
}

func printResult(out io.Writer, r *mobic.Result) {
	fmt.Fprintf(out, "algorithm             %s\n", r.Algorithm)
	fmt.Fprintf(out, "clusterhead changes   %d (acquisitions %d)\n", r.ClusterheadChanges, r.ClusterheadAcquisitions)
	fmt.Fprintf(out, "membership changes    %d\n", r.MembershipChanges)
	fmt.Fprintf(out, "avg clusters          %.2f\n", r.AvgClusters)
	fmt.Fprintf(out, "avg gateways          %.2f\n", r.AvgGateways)
	fmt.Fprintf(out, "avg cluster size      %.2f\n", r.AvgClusterSize)
	fmt.Fprintf(out, "mean CH residence     %.1f s\n", r.MeanResidenceSeconds)
	fmt.Fprintf(out, "final clusterheads    %d\n", r.FinalClusterheads)
	fmt.Fprintf(out, "hello traffic         %d sent, %d delivered, %d dropped\n",
		r.Broadcasts, r.Deliveries, r.Drops)
}

func printComparison(out io.Writer, byAlg map[string]*mobic.Result) {
	names := make([]string, 0, len(byAlg))
	for name := range byAlg {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%-14s %12s %12s %12s %14s\n",
		"algorithm", "CH changes", "memberships", "avg clusters", "CH tenure (s)")
	for _, name := range names {
		r := byAlg[name]
		fmt.Fprintf(out, "%-14s %12d %12d %12.2f %14.1f\n",
			name, r.ClusterheadChanges, r.MembershipChanges, r.AvgClusters, r.MeanResidenceSeconds)
	}
}

// clusterMap renders the final cluster structure with internal/viz.
func clusterMap(nodes []mobic.NodeInfo, width, height float64) string {
	mapped := make([]viz.MapNode, len(nodes))
	for i, n := range nodes {
		mapped[i] = viz.MapNode{
			X:       n.X,
			Y:       n.Y,
			Head:    n.Head,
			IsHead:  n.Role == "head",
			Gateway: n.Gateway,
		}
	}
	return viz.ClusterMap(mapped, width, height, 72, 24)
}

func printNodes(out io.Writer, nodes []mobic.NodeInfo) {
	fmt.Fprintf(out, "\n%4s %9s %9s %-10s %5s %10s %8s\n",
		"id", "x", "y", "role", "head", "M", "gateway")
	for _, n := range nodes {
		gw := ""
		if n.Gateway {
			gw = "yes"
		}
		fmt.Fprintf(out, "%4d %9.1f %9.1f %-10s %5d %10.3f %8s\n",
			n.ID, n.X, n.Y, n.Role, n.Head, n.M, gw)
	}
}
