package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fastArgs keep CLI tests quick.
func fastArgs(extra ...string) []string {
	return append([]string{"-n", "12", "-duration", "60", "-tx", "150"}, extra...)
}

func TestRunTextOutput(t *testing.T) {
	var b strings.Builder
	if err := run(fastArgs(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"algorithm", "mobic", "clusterhead changes", "hello traffic"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var b strings.Builder
	if err := run(fastArgs("-json"), &b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, b.String())
	}
	if decoded["Algorithm"] != "mobic" {
		t.Errorf("Algorithm = %v", decoded["Algorithm"])
	}
}

func TestRunCompare(t *testing.T) {
	var b strings.Builder
	if err := run(fastArgs("-compare", "lcc, mobic"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "lcc") || !strings.Contains(out, "mobic") {
		t.Errorf("comparison missing algorithms:\n%s", out)
	}
}

func TestRunInspectAndMap(t *testing.T) {
	var b strings.Builder
	if err := run(fastArgs("-inspect", "-map"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "role") {
		t.Errorf("inspect table missing:\n%s", out)
	}
	if !strings.Contains(out, "heads A-Z") {
		t.Errorf("map missing:\n%s", out)
	}
}

func TestRunBadAlgorithm(t *testing.T) {
	var b strings.Builder
	if err := run(fastArgs("-alg", "nonsense"), &b); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestSaveAndLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")

	var b strings.Builder
	if err := run(fastArgs("-saveconfig", path), &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Errorf("saveconfig output: %q", b.String())
	}

	b.Reset()
	if err := run([]string{"-config", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "clusterhead changes") {
		t.Errorf("config-driven run output:\n%s", b.String())
	}
}

func TestLoadConfigMissing(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-config", "/no/such/file.json"}, &b); err == nil {
		t.Error("missing config should error")
	}
}
