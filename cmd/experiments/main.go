// Command experiments regenerates the paper's evaluation: every table and
// figure, plus the DESIGN.md ablations. For each experiment it prints an
// aligned table and an ASCII chart, and optionally writes a CSV per
// experiment into an output directory.
//
// Examples:
//
//	experiments -list
//	experiments -exp fig3 -seeds 5
//	experiments -exp paper -out results/
//	experiments -exp all -quick
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mobic/internal/experiment"
	"mobic/internal/simnet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// paperIDs are the artifacts published in the paper itself.
var paperIDs = []string{"table1", "fig3", "fig4", "fig5", "fig6a", "fig6b"}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		expID    = fs.String("exp", "paper", `experiment id, "paper" (all published artifacts), or "all"`)
		seeds    = fs.Int("seeds", 3, "replications per sweep cell")
		baseSeed = fs.Uint64("baseseed", 1, "first scenario seed")
		outDir   = fs.String("out", "", "directory for CSV output (empty = none)")
		noChart  = fs.Bool("nochart", false, "suppress ASCII charts")
		quick    = fs.Bool("quick", false, "shorten runs to 300 s for a fast smoke pass")
		list     = fs.Bool("list", false, "list available experiments and exit")
		asJSON   = fs.Bool("json", false, "emit results as JSON instead of tables/charts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, d := range experiment.All() {
			fmt.Fprintf(out, "%-16s %s\n", d.ID, d.Title)
		}
		return nil
	}

	runner := experiment.Runner{Seeds: *seeds, BaseSeed: *baseSeed}
	if *quick {
		runner.Mutate = func(cfg *simnet.Config) { cfg.Duration = 300 }
	}
	runner.Progress = func(done, total int) {
		if done == total || done%10 == 0 {
			fmt.Fprintf(os.Stderr, "\r  %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	var ids []string
	switch *expID {
	case "paper":
		ids = paperIDs
	case "all":
		for _, d := range experiment.All() {
			ids = append(ids, d.ID)
		}
	default:
		ids = []string{*expID}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("creating output dir: %w", err)
		}
	}

	for _, id := range ids {
		d, err := experiment.ByID(id)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := d.Run(ctx, runner)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if *asJSON {
			if err := experiment.WriteJSON(out, res); err != nil {
				return err
			}
		} else {
			fmt.Fprintln(out)
			fmt.Fprint(out, experiment.FormatTable(res))
			if !*noChart {
				if chart := experiment.Chart(res); chart != "" {
					fmt.Fprint(out, chart)
				}
			}
			fmt.Fprintf(out, "  [%s in %v]\n", id, time.Since(start).Round(time.Millisecond))
		}

		if *outDir != "" && len(res.X) > 0 {
			path := filepath.Join(*outDir, id+".csv")
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("creating %s: %w", path, err)
			}
			err = experiment.WriteCSV(f, res)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
			svgPath := filepath.Join(*outDir, id+".svg")
			if err := os.WriteFile(svgPath, []byte(experiment.SVG(res)), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", svgPath, err)
			}
			fmt.Fprintf(out, "  wrote %s and %s\n", path, svgPath)
		}
	}
	return nil
}
