package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"table1", "fig3", "fig4", "fig5", "fig6a", "fig6b", "ablate-cci", "routes"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable1(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "table1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Number of Nodes") || !strings.Contains(out, "900 sec") {
		t.Errorf("table1 output wrong:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "fig99"}, &b); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-nope"}, &b); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunTable1JSON(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "table1", "-json"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"id": "table1"`) {
		t.Errorf("json output wrong:\n%s", b.String())
	}
}

func TestRunQuickExperimentWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "fig6a", "-seeds", "1", "-quick", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "legend:") {
		t.Errorf("fig6a output wrong:\n%s", out)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig6a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != 4 { // header + 3 speeds
		t.Errorf("csv has %d lines:\n%s", len(lines), csv)
	}
}
