// Command loadgen is a multi-tenant soak driver for mobicd: N concurrent
// clients per tenant hammer POST /v1/jobs (each under its tenant's
// X-Mobic-Tenant header), poll their jobs to completion, and at the end
// the tool asserts that each tenant's share of completed jobs converged
// to its configured weight share — the observable the weighted-fair-queue
// scheduler promises under sustained backlog.
//
// With -addr it drives a running daemon (whose -tenants config must match
// the -tenants weights given here). Without -addr it runs an embedded
// service with a stub executor (-job-ms per job) on a loopback listener,
// which makes it a self-contained fairness smoke for CI:
//
//	loadgen -tenants heavy:4,light:1 -duration 3s -tolerance 0.25
//
// Exit status 0 when every tenant's completed share is within
// tolerance·share + 0.01 of its weight share; 1 otherwise.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobic/internal/experiment"
	"mobic/internal/fair"
	"mobic/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// tenantLoad is one tenant's configuration and tally.
type tenantLoad struct {
	name   string
	weight float64
	done   atomic.Int64 // completions observed after warmup
	shed   atomic.Int64 // 429s observed (informational)
}

// parseTenants parses "heavy:4,light:1" into tenant loads.
func parseTenants(s string) ([]*tenantLoad, error) {
	var out []*tenantLoad
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant %q: want name:weight", part)
		}
		w, err := strconv.ParseFloat(wstr, 64)
		if err != nil || w <= 0 || math.IsInf(w, 0) {
			return nil, fmt.Errorf("tenant %q: weight must be a positive number", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate tenant %q", name)
		}
		seen[name] = true
		out = append(out, &tenantLoad{name: name, weight: w})
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("need at least two tenants to measure fairness (got %d)", len(out))
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "base URL of a running daemon (empty = embedded service)")
		tenantsF = fs.String("tenants", "heavy:4,light:1", "comma-separated name:weight tenant list")
		clients  = fs.Int("clients", 4, "concurrent submitting clients per tenant")
		duration = fs.Duration("duration", 5*time.Second, "measurement window after warmup")
		warmup   = fs.Duration("warmup", time.Second, "ramp-up excluded from the share check")
		tol      = fs.Float64("tolerance", 0.10, "relative tolerance on each tenant's weight share")
		jobMS    = fs.Int("job-ms", 20, "stub job duration in milliseconds (embedded mode)")
		workers  = fs.Int("workers", 2, "embedded service worker count")
		queueCap = fs.Int("queue", 256, "embedded service queue capacity")
		verbose  = fs.Bool("v", false, "log per-client progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tenants, err := parseTenants(*tenantsF)
	if err != nil {
		return err
	}
	if *clients <= 0 || *duration <= 0 || *tol <= 0 {
		return fmt.Errorf("-clients, -duration and -tolerance must be positive")
	}

	base := *addr
	if base == "" {
		cfg := make([]fair.Tenant, len(tenants))
		for i, t := range tenants {
			cfg[i] = fair.Tenant{Name: t.name, Weight: t.weight}
		}
		reg, err := fair.NewRegistry(nil, cfg, false)
		if err != nil {
			return err
		}
		svc := service.New(service.Config{
			QueueCapacity: *queueCap,
			Workers:       *workers,
			TTL:           time.Minute,
			Tenants:       reg,
			Execute: func(ctx context.Context, spec service.JobSpec, base experiment.Runner, progress func(done, total int)) (*service.Output, error) {
				select {
				case <-time.After(time.Duration(*jobMS) * time.Millisecond):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				progress(1, 1)
				return &service.Output{Result: &experiment.Result{ID: "loadgen", Title: "loadgen stub"}}, nil
			},
		})
		svc.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		server := &http.Server{Handler: service.NewHandler(svc)}
		go server.Serve(ln)
		base = "http://" + ln.Addr().String()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = server.Shutdown(ctx)
			_ = svc.Shutdown(ctx)
		}()
		fmt.Fprintf(out, "embedded service at %s (%d workers, %d ms/job)\n", base, *workers, *jobMS)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	start := time.Now()
	warmupEnd := start.Add(*warmup)
	deadline := start.Add(*warmup + *duration)
	var seq atomic.Uint64 // uniquifies specs so the result cache never collapses them

	var wg sync.WaitGroup
	for _, t := range tenants {
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(t *tenantLoad, c int) {
				defer wg.Done()
				driveClient(client, base, t, &seq, warmupEnd, deadline, *verbose, out)
			}(t, c)
		}
	}
	wg.Wait()

	var total, wsum float64
	for _, t := range tenants {
		total += float64(t.done.Load())
		wsum += t.weight
	}
	if total == 0 {
		return fmt.Errorf("no jobs completed in the measurement window")
	}
	fmt.Fprintf(out, "%-16s %8s %8s %10s %10s %8s\n", "tenant", "weight", "done", "share", "want", "shed")
	failed := false
	for _, t := range tenants {
		share := float64(t.done.Load()) / total
		want := t.weight / wsum
		ok := math.Abs(share-want) <= *tol*want+0.01
		mark := ""
		if !ok {
			failed = true
			mark = "  <-- out of tolerance"
		}
		fmt.Fprintf(out, "%-16s %8.3g %8d %10.4f %10.4f %8d%s\n",
			t.name, t.weight, t.done.Load(), share, want, t.shed.Load(), mark)
	}
	if failed {
		return fmt.Errorf("completed-job shares diverged from weight shares beyond tolerance %g", *tol)
	}
	fmt.Fprintf(out, "fairness OK: %d jobs completed, every share within %g of its weight share\n", int(total), *tol)
	return nil
}

// driveClient runs one client's submit→poll loop until the deadline.
// Completions observed after warmupEnd count toward the tenant's share.
func driveClient(client *http.Client, base string, t *tenantLoad, seq *atomic.Uint64, warmupEnd, deadline time.Time, verbose bool, out io.Writer) {
	for time.Now().Before(deadline) {
		spec := fmt.Sprintf(`{"sweep":{"scenario":{"n":10},"algorithms":["mobic"]},"seeds":1,"base_seed":%d}`, seq.Add(1))
		req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(spec))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Mobic-Tenant", t.name)
		resp, err := client.Do(req)
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		var st service.Status
		decodeErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			t.shed.Add(1)
			// The daemon's Retry-After is in whole seconds — too coarse for
			// a soak; back off briefly and let admission recover.
			time.Sleep(25 * time.Millisecond)
			continue
		case resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK:
			time.Sleep(20 * time.Millisecond)
			continue
		case decodeErr != nil:
			continue
		}
		if pollJob(client, base, t.name, st.ID, deadline) && time.Now().After(warmupEnd) {
			t.done.Add(1)
			if verbose {
				fmt.Fprintf(out, "%s: %s done\n", t.name, st.ID)
			}
		}
	}
}

// pollJob polls one job until terminal or the deadline; true on terminal.
func pollJob(client *http.Client, base, tenant, id string, deadline time.Time) bool {
	for time.Now().Before(deadline.Add(time.Second)) {
		req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id, nil)
		if err != nil {
			return false
		}
		req.Header.Set("X-Mobic-Tenant", tenant)
		resp, err := client.Do(req)
		if err != nil {
			return false
		}
		var st service.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil && st.State.Terminal() {
			return st.State == service.StateSucceeded
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
