package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseTenants(t *testing.T) {
	ts, err := parseTenants("heavy:4, light:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].name != "heavy" || ts[0].weight != 4 || ts[1].name != "light" || ts[1].weight != 1 {
		t.Fatalf("parsed %+v", ts)
	}
	for _, bad := range []string{"", "solo:1", "a:1,a:2", "x:-1", "noweight", "w:zero"} {
		if _, err := parseTenants(bad); err == nil {
			t.Errorf("parseTenants(%q) accepted", bad)
		}
	}
}

// TestEmbeddedSoak runs a short two-tenant 4:1 soak against the embedded
// service and requires the completed-job shares to land within a loose
// tolerance of the weight shares — the same check scripts/check.sh runs.
func TestEmbeddedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak takes ~2s")
	}
	var out bytes.Buffer
	err := run([]string{
		"-tenants", "heavy:4,light:1",
		"-clients", "4",
		"-warmup", "300ms",
		"-duration", "1500ms",
		"-job-ms", "10",
		"-workers", "2",
		"-tolerance", "0.35",
	}, &out)
	if err != nil {
		t.Fatalf("soak failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "fairness OK") {
		t.Fatalf("missing fairness OK line:\n%s", out.String())
	}
}
