// Command mobicd serves MOBIC simulations over HTTP: submit a named
// experiment or a custom scenario sweep as a job, poll or stream its
// progress, and fetch the result as stable JSON. The queue is bounded —
// when it is full the daemon sheds load with 429 + Retry-After rather
// than queueing unboundedly.
//
// With -data-dir set, jobs are durable: every lifecycle transition is
// journaled to an fsync'd write-ahead log, so a crashed or killed daemon
// re-enqueues interrupted jobs on the next boot and resumes sweeps from
// their last completed-cell checkpoint. -max-attempts enables retry with
// exponential backoff; a job that fails that many times is quarantined as
// "poisoned".
//
// With -cache-entries > 0 (the default), results are content-addressed:
// every job spec is reduced to a canonical SHA-256 digest, a digest already
// cached answers the submission immediately with a finished job, and
// concurrent identical submissions collapse onto a single execution. With
// -data-dir the cache also persists to disk under <data-dir>/cache.
//
// With -coordinator the daemon runs no simulations itself: it places each
// job on one of the -peers workers by consistent-hashing its spec digest,
// proxies the /v1/jobs API transparently, health-checks the peers, and when
// a worker dies re-dispatches its interrupted jobs to the ring successor —
// shipping the checkpoint prefix observed so far so sweeps resume instead
// of restarting (see DESIGN.md S28).
//
// With -tenants the API is multi-tenant: a JSON config file assigns each
// tenant (identified by an Authorization API key or an explicit
// X-Mobic-Tenant header) a fair-share weight, priority, queue/run quotas
// and a token-bucket rate limit. Workers dequeue by weighted fair
// queueing, so one tenant's flood cannot starve the others; over-quota
// tenants are shed with per-tenant 429 + Retry-After. POST /v1/jobs:batch
// admits up to 64 specs atomically (journaled as one WAL record — a crash
// never admits half a batch).
//
// Observability: GET /v1/jobs/{id} reports live progress (fraction + ETA),
// /metrics merges the engine/experiment telemetry families (mobic_sim_*,
// mobic_net_*, mobic_experiment_*) with the service's own, logs are
// structured (-log-format text|json), and -debug-addr opts into a second
// listener serving net/http/pprof plus /debug/obs/spans (the sampled
// wall-clock span window).
//
// Examples:
//
//	mobicd -addr :8080 -data-dir /var/lib/mobicd -max-attempts 3
//	mobicd -addr :8080 -log-format json -debug-addr 127.0.0.1:6060
//	mobicd -addr :9090 -coordinator -peers http://10.0.0.1:8080,http://10.0.0.2:8080
//	curl -XPOST localhost:8080/v1/jobs -H 'Idempotency-Key: run-42' \
//	     -d '{"experiment":"fig3","seeds":1}'
//	curl localhost:8080/v1/jobs/<id>
//	curl -N localhost:8080/v1/jobs/<id>/stream
//	curl -XDELETE localhost:8080/v1/jobs/<id>
//	curl localhost:8080/livez
//	curl localhost:8080/readyz
//	curl localhost:8080/metrics
//	go tool pprof localhost:6060/debug/pprof/profile
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mobic/internal/cache"
	"mobic/internal/dispatch"
	"mobic/internal/experiment"
	"mobic/internal/fair"
	"mobic/internal/obs"
	"mobic/internal/service"
	"mobic/internal/simnet"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mobicd:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's structured logger. format is "text" or
// "json"; anything else is an error so a typo fails at boot, not silently.
func newLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// newDebugHandler builds the opt-in diagnostics mux served on -debug-addr:
// the full net/http/pprof suite plus the registry's sampled span window as
// JSON. It is a separate listener on purpose — pprof handlers expose heap
// contents and must never ride the public API port.
func newDebugHandler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/obs/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Spans())
	})
	return mux
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("mobicd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "HTTP listen address")
		queueCap   = fs.Int("queue", 64, "max queued jobs before submissions get 429")
		workers    = fs.Int("workers", 2, "jobs executed concurrently")
		seeds      = fs.Int("seeds", 3, "default replications per sweep cell")
		tiles      = fs.Int("tiles", 0, "default arena tiles for the tiled-parallel scheduler (0 = sequential; jobs may override with \"tiles\")")
		ttl        = fs.Duration("ttl", 15*time.Minute, "how long finished jobs stay queryable")
		drainGrace = fs.Duration("drain", 30*time.Second, "max wait for in-flight jobs on shutdown")
		quick      = fs.Bool("quick", false, "trim every simulation to 300 s (smoke/demo mode)")
		dataDir    = fs.String("data-dir", "", "journal directory for durable jobs (empty = in-memory)")
		maxTries   = fs.Int("max-attempts", 1, "executions per job before it is poisoned (1 = no retries)")
		logFormat  = fs.String("log-format", "text", "structured log format (text or json)")
		debugAddr  = fs.String("debug-addr", "", "opt-in listen address for net/http/pprof and /debug/obs/spans (empty = off)")
		compactAt  = fs.Int64("wal-compact-bytes", 8<<20, "journal size that triggers compaction (with -data-dir)")
		cacheSize  = fs.Int("cache-entries", 256, "in-memory result-cache entries (0 disables the cache)")
		cacheDisk  = fs.Int64("cache-disk-mb", 256, "on-disk result-cache budget in MiB (with -data-dir)")
		coordMode  = fs.Bool("coordinator", false, "run as a cluster coordinator instead of a worker (requires -peers)")
		peerList   = fs.String("peers", "", "comma-separated worker base URLs for -coordinator mode")
		replicate  = fs.Bool("replicate", false, "stream job checkpoints to the ring successor for fast failover (both modes)")
		failAfter  = fs.Int("fail-after", 2, "consecutive failed health probes before a peer is marked down (-coordinator)")
		pollEvery  = fs.Duration("poll-every", time.Second, "tracked-job status/checkpoint poll period (-coordinator)")
		brkThresh  = fs.Int("breaker-threshold", 5, "consecutive transport failures that open a peer's circuit breaker (-coordinator)")
		brkCool    = fs.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before a half-open probe (-coordinator)")
		tenantsCfg = fs.String("tenants", "", "JSON tenant config file: per-tenant weights, quotas and rate limits (empty = single default tenant)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tenants := fair.DefaultRegistry()
	if *tenantsCfg != "" {
		reg, err := fair.LoadConfig(*tenantsCfg)
		if err != nil {
			return err
		}
		tenants = reg
	}
	if *failAfter <= 0 {
		return fmt.Errorf("-fail-after must be positive (got %d)", *failAfter)
	}
	if *pollEvery <= 0 {
		return fmt.Errorf("-poll-every must be positive (got %s)", *pollEvery)
	}
	if *brkThresh <= 0 {
		return fmt.Errorf("-breaker-threshold must be positive (got %d)", *brkThresh)
	}
	if *brkCool <= 0 {
		return fmt.Errorf("-breaker-cooldown must be positive (got %s)", *brkCool)
	}
	logger, err := newLogger(logw, *logFormat)
	if err != nil {
		return err
	}

	registry := obs.NewRegistry()

	// The digest-keyed result layer, shared shape for both modes: memory
	// LRU always (unless disabled), disk layer only with a data dir.
	var results *cache.Cache
	if *cacheSize > 0 {
		cc := cache.Config{MaxEntries: *cacheSize, Obs: registry}
		if *dataDir != "" {
			cc.Dir = filepath.Join(*dataDir, "cache")
			cc.MaxDiskBytes = *cacheDisk << 20
		}
		results, err = cache.Open(cc)
		if err != nil {
			return err
		}
	}

	// drain is filled in per mode and runs on SIGTERM/SIGINT before the
	// HTTP listener closes.
	var handler http.Handler
	var drain func()

	if *coordMode {
		peers := strings.FieldsFunc(*peerList, func(r rune) bool { return r == ',' })
		runner := experiment.Runner{Seeds: *seeds, Tiles: *tiles}
		if *quick {
			runner.Mutate = func(cfg *simnet.Config) { cfg.Duration = 300 }
		}
		// The embedded fallback keeps accepting jobs when every worker is
		// unreachable: a degraded answer beats a 503. In-memory on purpose —
		// the coordinator's durability story is the workers' journals.
		local := service.New(service.Config{
			QueueCapacity: *queueCap,
			Workers:       *workers,
			TTL:           *ttl,
			Runner:        runner,
			Obs:           registry,
			Tenants:       tenants,
		})
		local.Start()
		coord, err := dispatch.New(dispatch.Config{
			Peers:            peers,
			WorkersPerPeer:   *workers,
			TTL:              *ttl,
			PollEvery:        *pollEvery,
			FailAfter:        *failAfter,
			BreakerThreshold: *brkThresh,
			BreakerCooldown:  *brkCool,
			Replicate:        *replicate,
			Local:            local,
			Cache:            results,
			Obs:              registry,
			Logger:           logger,
		})
		if err != nil {
			return err
		}
		coord.Start()
		logger.Info("coordinator mode", "peers", len(peers), "replicate", *replicate)
		handler = dispatch.NewHandler(coord)
		drain = func() {
			drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
			defer cancel()
			if err := coord.Shutdown(drainCtx); err != nil {
				logger.Warn("coordinator drain incomplete", "err", err)
			}
			if err := local.Shutdown(drainCtx); err != nil {
				logger.Warn("local fallback drain incomplete", "err", err)
			}
		}
	} else {
		runner := experiment.Runner{Seeds: *seeds, Tiles: *tiles}
		if *quick {
			runner.Mutate = func(cfg *simnet.Config) { cfg.Duration = 300 }
		}
		svc, err := service.Open(service.Config{
			QueueCapacity: *queueCap,
			Workers:       *workers,
			TTL:           *ttl,
			Runner:        runner,
			DataDir:       *dataDir,
			Retry:         service.RetryPolicy{MaxAttempts: *maxTries},
			CompactBytes:  *compactAt,
			Replicate:     *replicate,
			Obs:           registry,
			Cache:         results,
			Tenants:       tenants,
		})
		if err != nil {
			return err
		}
		if n := svc.RecoveredJobs(); n > 0 {
			logger.Info("recovered interrupted jobs", "count", n, "data_dir", *dataDir)
		}
		svc.Start()
		handler = service.NewHandler(svc)
		drain = func() {
			drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
			defer cancel()
			if err := svc.Shutdown(drainCtx); err != nil {
				logger.Warn("drain incomplete, jobs canceled", "err", err)
			}
		}
	}

	server := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Streams are long-lived; only bound the read side.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String(),
		"queue", *queueCap, "workers", *workers, "seeds", *seeds)

	var debugServer *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		debugServer = &http.Server{
			Handler:           newDebugHandler(registry),
			ReadHeaderTimeout: 10 * time.Second,
		}
		logger.Info("debug listener up (pprof + obs spans)", "addr", dln.Addr().String())
		go func() {
			if err := debugServer.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new jobs and let queued/in-flight ones
	// finish within the grace period (hard-canceling past it), then close
	// the HTTP side — by now every stream has seen its terminal status.
	logger.Info("draining", "grace", drainGrace.String())
	drain()
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := server.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "err", err)
	}
	if debugServer != nil {
		_ = debugServer.Close()
	}
	logger.Info("bye")
	return nil
}
