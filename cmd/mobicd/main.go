// Command mobicd serves MOBIC simulations over HTTP: submit a named
// experiment or a custom scenario sweep as a job, poll or stream its
// progress, and fetch the result as stable JSON. The queue is bounded —
// when it is full the daemon sheds load with 429 + Retry-After rather
// than queueing unboundedly.
//
// With -data-dir set, jobs are durable: every lifecycle transition is
// journaled to an fsync'd write-ahead log, so a crashed or killed daemon
// re-enqueues interrupted jobs on the next boot and resumes sweeps from
// their last completed-cell checkpoint. -max-attempts enables retry with
// exponential backoff; a job that fails that many times is quarantined as
// "poisoned".
//
// Examples:
//
//	mobicd -addr :8080 -data-dir /var/lib/mobicd -max-attempts 3
//	curl -XPOST localhost:8080/v1/jobs -H 'Idempotency-Key: run-42' \
//	     -d '{"experiment":"fig3","seeds":1}'
//	curl localhost:8080/v1/jobs/<id>
//	curl -N localhost:8080/v1/jobs/<id>/stream
//	curl -XDELETE localhost:8080/v1/jobs/<id>
//	curl localhost:8080/livez
//	curl localhost:8080/readyz
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobic/internal/experiment"
	"mobic/internal/service"
	"mobic/internal/simnet"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mobicd:", err)
		os.Exit(1)
	}
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("mobicd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "HTTP listen address")
		queueCap   = fs.Int("queue", 64, "max queued jobs before submissions get 429")
		workers    = fs.Int("workers", 2, "jobs executed concurrently")
		seeds      = fs.Int("seeds", 3, "default replications per sweep cell")
		ttl        = fs.Duration("ttl", 15*time.Minute, "how long finished jobs stay queryable")
		drainGrace = fs.Duration("drain", 30*time.Second, "max wait for in-flight jobs on shutdown")
		quick      = fs.Bool("quick", false, "trim every simulation to 300 s (smoke/demo mode)")
		dataDir    = fs.String("data-dir", "", "journal directory for durable jobs (empty = in-memory)")
		maxTries   = fs.Int("max-attempts", 1, "executions per job before it is poisoned (1 = no retries)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	runner := experiment.Runner{Seeds: *seeds}
	if *quick {
		runner.Mutate = func(cfg *simnet.Config) { cfg.Duration = 300 }
	}
	svc, err := service.Open(service.Config{
		QueueCapacity: *queueCap,
		Workers:       *workers,
		TTL:           *ttl,
		Runner:        runner,
		DataDir:       *dataDir,
		Retry:         service.RetryPolicy{MaxAttempts: *maxTries},
	})
	if err != nil {
		return err
	}
	if n := svc.RecoveredJobs(); n > 0 {
		fmt.Fprintf(logw, "mobicd: recovered %d interrupted job(s) from %s\n", n, *dataDir)
	}
	svc.Start()

	server := &http.Server{
		Addr:    *addr,
		Handler: service.NewHandler(svc),
		// Streams are long-lived; only bound the read side.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "mobicd: listening on %s (queue %d, workers %d, seeds %d)\n",
		ln.Addr(), *queueCap, *workers, *seeds)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new jobs and let queued/in-flight ones
	// finish within the grace period (hard-canceling past it), then close
	// the HTTP side — by now every stream has seen its terminal status.
	fmt.Fprintf(logw, "mobicd: draining (grace %s)\n", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(logw, "mobicd: drain incomplete, jobs canceled: %v\n", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := server.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(logw, "mobicd: http shutdown: %v\n", err)
	}
	fmt.Fprintln(logw, "mobicd: bye")
	return nil
}
