// Command mobicd serves MOBIC simulations over HTTP: submit a named
// experiment or a custom scenario sweep as a job, poll or stream its
// progress, and fetch the result as stable JSON. The queue is bounded —
// when it is full the daemon sheds load with 429 + Retry-After rather
// than queueing unboundedly.
//
// Examples:
//
//	mobicd -addr :8080
//	curl -XPOST localhost:8080/v1/jobs -d '{"experiment":"fig3","seeds":1}'
//	curl localhost:8080/v1/jobs/<id>
//	curl -N localhost:8080/v1/jobs/<id>/stream
//	curl -XDELETE localhost:8080/v1/jobs/<id>
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobic/internal/experiment"
	"mobic/internal/service"
	"mobic/internal/simnet"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mobicd:", err)
		os.Exit(1)
	}
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("mobicd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "HTTP listen address")
		queueCap   = fs.Int("queue", 64, "max queued jobs before submissions get 429")
		workers    = fs.Int("workers", 2, "jobs executed concurrently")
		seeds      = fs.Int("seeds", 3, "default replications per sweep cell")
		ttl        = fs.Duration("ttl", 15*time.Minute, "how long finished jobs stay queryable")
		drainGrace = fs.Duration("drain", 30*time.Second, "max wait for in-flight jobs on shutdown")
		quick      = fs.Bool("quick", false, "trim every simulation to 300 s (smoke/demo mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	runner := experiment.Runner{Seeds: *seeds}
	if *quick {
		runner.Mutate = func(cfg *simnet.Config) { cfg.Duration = 300 }
	}
	svc := service.New(service.Config{
		QueueCapacity: *queueCap,
		Workers:       *workers,
		TTL:           *ttl,
		Runner:        runner,
	})
	svc.Start()

	server := &http.Server{
		Addr:    *addr,
		Handler: service.NewHandler(svc),
		// Streams are long-lived; only bound the read side.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "mobicd: listening on %s (queue %d, workers %d, seeds %d)\n",
		ln.Addr(), *queueCap, *workers, *seeds)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new jobs and let queued/in-flight ones
	// finish within the grace period (hard-canceling past it), then close
	// the HTTP side — by now every stream has seen its terminal status.
	fmt.Fprintf(logw, "mobicd: draining (grace %s)\n", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(logw, "mobicd: drain incomplete, jobs canceled: %v\n", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := server.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(logw, "mobicd: http shutdown: %v\n", err)
	}
	fmt.Fprintln(logw, "mobicd: bye")
	return nil
}
