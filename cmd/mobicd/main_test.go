package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-nope"}, &log); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-addr", "999.999.999.999:0"}, &log); err == nil {
		t.Error("unlistenable address should error")
	}
}
