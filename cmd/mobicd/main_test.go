package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mobic/internal/obs"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-nope"}, &log); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-addr", "999.999.999.999:0"}, &log); err == nil {
		t.Error("unlistenable address should error")
	}
}

func TestRunRejectsBadDataDir(t *testing.T) {
	var log strings.Builder
	// /dev/null is a file, so no journal directory can be created under it.
	if err := run([]string{"-addr", "127.0.0.1:0", "-data-dir", "/dev/null/journal"}, &log); err == nil {
		t.Error("unwritable data dir should error at boot, not at first submit")
	}
}

func TestRunRejectsBadLogFormat(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-log-format", "yaml"}, &log); err == nil {
		t.Error("unknown log format should error at boot")
	}
}

func TestRunRejectsBadDebugAddr(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-addr", "127.0.0.1:0", "-debug-addr", "999.999.999.999:0"}, &log); err == nil {
		t.Error("unlistenable debug address should error at boot")
	}
}

func TestRunRejectsBadClusterKnobs(t *testing.T) {
	for _, bad := range [][]string{
		{"-fail-after", "0"},
		{"-fail-after", "-1"},
		{"-poll-every", "0s"},
		{"-poll-every", "-1s"},
		{"-breaker-threshold", "0"},
		{"-breaker-cooldown", "-5s"},
	} {
		var log strings.Builder
		if err := run(append([]string{"-addr", "127.0.0.1:0"}, bad...), &log); err == nil {
			t.Errorf("%v should error at boot", bad)
		}
	}
}

// syncBuffer is a goroutine-safe log sink: run() writes from its own
// goroutine while the test polls for the listener addresses.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunServesAndShutsDown boots the real daemon on ephemeral ports,
// checks the public API answers, that /metrics carries the engine telemetry
// families next to the service's own, that the opt-in debug listener serves
// the span window — then delivers SIGTERM and expects a clean exit.
func TestRunServesAndShutsDown(t *testing.T) {
	var log syncBuffer
	dir := t.TempDir()
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-debug-addr", "127.0.0.1:0",
			"-quick",
			"-drain", "5s",
			"-data-dir", dir,
			"-wal-compact-bytes", "1048576",
			"-cache-entries", "32",
			"-cache-disk-mb", "8",
		}, &log)
	}()

	// The chosen ports only exist in the boot log: first the API listener,
	// then the debug one.
	addrRe := regexp.MustCompile(`addr=(127\.0\.0\.1:\d+)`)
	var addrs []string
	deadline := time.Now().Add(10 * time.Second)
	for len(addrs) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("listeners never came up; log:\n%s", log.String())
		}
		addrs = nil
		for _, m := range addrRe.FindAllStringSubmatch(log.String(), -1) {
			addrs = append(addrs, m[1])
		}
		time.Sleep(5 * time.Millisecond)
	}
	api, debug := "http://"+addrs[0], "http://"+addrs[1]

	resp, err := http.Get(api + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("livez status = %d", resp.StatusCode)
	}

	mresp, err := http.Get(api + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"mobicd_jobs_submitted_total",  // service metrics
		"mobic_sim_events_fired_total", // engine kernel
		"mobic_net_beacons_sent_total", // network layer
		"mobic_experiment_progress_ratio",
	} {
		if !strings.Contains(string(body), "# TYPE "+family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	dresp, err := http.Get(debug + "/debug/obs/spans")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("debug spans status = %d", dresp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v, want clean shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
	if !strings.Contains(log.String(), "msg=bye") {
		t.Errorf("shutdown log missing; log:\n%s", log.String())
	}
}

// TestNewLoggerFormats checks both handler shapes: text is logfmt-ish,
// json emits one valid JSON object per line with the standard slog keys.
func TestNewLoggerFormats(t *testing.T) {
	var text strings.Builder
	logger, err := newLogger(&text, "text")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("listening", "addr", ":0")
	if got := text.String(); !strings.Contains(got, "msg=listening") || !strings.Contains(got, "addr=:0") {
		t.Errorf("text log = %q", got)
	}

	var jsonBuf strings.Builder
	logger, err = newLogger(&jsonBuf, "json")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("listening", "addr", ":0")
	sc := bufio.NewScanner(strings.NewReader(jsonBuf.String()))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("json log line %q: %v", sc.Text(), err)
		}
		if line["msg"] != "listening" || line["addr"] != ":0" || line["level"] != "INFO" {
			t.Errorf("json log line = %v", line)
		}
	}

	if _, err := newLogger(&text, ""); err != nil {
		t.Errorf("empty format should default to text, got %v", err)
	}
}

// TestDebugHandler exercises the opt-in diagnostics mux: the pprof index
// and one profile endpoint respond, and /debug/obs/spans serves the
// registry's sampled span window as JSON.
func TestDebugHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Span(obs.SpanJob, 0, 3e9)
	srv := httptest.NewServer(newDebugHandler(reg))
	defer srv.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status = %d, want 200", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/debug/obs/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("spans Content-Type = %q", ct)
	}
	var spans []obs.SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Kind != "job" || spans[0].Seconds != 3 {
		t.Errorf("spans = %+v, want one 3 s job span", spans)
	}
}

func TestRunRejectsCoordinatorWithoutPeers(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-addr", "127.0.0.1:0", "-coordinator"}, &log); err == nil {
		t.Error("coordinator mode without -peers should error at boot")
	}
}

// TestRunCoordinatorMode boots a real worker daemon and a real coordinator
// daemon in-process, submits a sweep through the coordinator, waits for the
// proxied result, and checks that an identical resubmission is eventually
// answered from the coordinator's result cache (fresh job ID, terminal on
// arrival). SIGTERM then shuts both daemons down cleanly.
func TestRunCoordinatorMode(t *testing.T) {
	bootAddr := func(args []string) (string, *syncBuffer, chan error) {
		var log syncBuffer
		done := make(chan error, 1)
		go func() { done <- run(args, &log) }()
		addrRe := regexp.MustCompile(`addr=(127\.0\.0\.1:\d+)`)
		deadline := time.Now().Add(10 * time.Second)
		for {
			if m := addrRe.FindStringSubmatch(log.String()); m != nil {
				return m[1], &log, done
			}
			if time.Now().After(deadline) {
				t.Fatalf("listener never came up; log:\n%s", log.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	workerAddr, workerLog, workerDone := bootAddr([]string{
		"-addr", "127.0.0.1:0", "-workers", "1", "-drain", "5s",
	})
	coordAddr, coordLog, coordDone := bootAddr([]string{
		"-addr", "127.0.0.1:0", "-coordinator",
		"-peers", "http://" + workerAddr,
		"-drain", "5s",
	})
	api := "http://" + coordAddr

	// Wait for the coordinator's first health pass to admit the worker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(api + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never became ready; log:\n%s", coordLog.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	spec := `{"seeds":1,"sweep":{"scenario":{"n":10,"duration":5},"algorithms":["mobic"]}}`
	resp, err := http.Post(api+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit via coordinator: status %d", resp.StatusCode)
	}

	deadline = time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(api + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err == nil && cur.State == "succeeded" {
			break
		}
		if err == nil && (cur.State == "failed" || cur.State == "poisoned") {
			t.Fatalf("proxied job %s: %s", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxied job never finished; worker log:\n%s", workerLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Identical resubmission: once the coordinator's poll loop internalizes
	// the completion, the answer comes from its cache — succeeded on
	// arrival under a fresh job ID.
	deadline = time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Post(api+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		var again struct {
			ID    string `json:"id"`
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&again)
		resp.Body.Close()
		if err == nil && again.State == "succeeded" && again.ID != st.ID {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resubmission never served from cache (last: id=%s state=%s)", again.ID, again.State)
		}
		time.Sleep(50 * time.Millisecond)
	}

	mresp, err := http.Get(api + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, family := range []string{
		"mobic_cache_hits_total",
		"mobic_dispatch_forwarded_total",
		"mobic_dispatch_peer_up",
	} {
		if !strings.Contains(string(mbody), family) {
			t.Errorf("coordinator /metrics missing %s", family)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{"worker": workerDone, "coordinator": coordDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s run returned %v, want clean shutdown", name, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s did not shut down on SIGTERM", name)
		}
	}
	if !strings.Contains(coordLog.String(), "coordinator mode") {
		t.Errorf("coordinator boot log missing mode line:\n%s", coordLog.String())
	}
}
