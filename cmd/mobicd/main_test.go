package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mobic/internal/obs"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-nope"}, &log); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-addr", "999.999.999.999:0"}, &log); err == nil {
		t.Error("unlistenable address should error")
	}
}

func TestRunRejectsBadDataDir(t *testing.T) {
	var log strings.Builder
	// /dev/null is a file, so no journal directory can be created under it.
	if err := run([]string{"-addr", "127.0.0.1:0", "-data-dir", "/dev/null/journal"}, &log); err == nil {
		t.Error("unwritable data dir should error at boot, not at first submit")
	}
}

func TestRunRejectsBadLogFormat(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-log-format", "yaml"}, &log); err == nil {
		t.Error("unknown log format should error at boot")
	}
}

func TestRunRejectsBadDebugAddr(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-addr", "127.0.0.1:0", "-debug-addr", "999.999.999.999:0"}, &log); err == nil {
		t.Error("unlistenable debug address should error at boot")
	}
}

// syncBuffer is a goroutine-safe log sink: run() writes from its own
// goroutine while the test polls for the listener addresses.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunServesAndShutsDown boots the real daemon on ephemeral ports,
// checks the public API answers, that /metrics carries the engine telemetry
// families next to the service's own, that the opt-in debug listener serves
// the span window — then delivers SIGTERM and expects a clean exit.
func TestRunServesAndShutsDown(t *testing.T) {
	var log syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-debug-addr", "127.0.0.1:0",
			"-quick",
			"-drain", "5s",
		}, &log)
	}()

	// The chosen ports only exist in the boot log: first the API listener,
	// then the debug one.
	addrRe := regexp.MustCompile(`addr=(127\.0\.0\.1:\d+)`)
	var addrs []string
	deadline := time.Now().Add(10 * time.Second)
	for len(addrs) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("listeners never came up; log:\n%s", log.String())
		}
		addrs = nil
		for _, m := range addrRe.FindAllStringSubmatch(log.String(), -1) {
			addrs = append(addrs, m[1])
		}
		time.Sleep(5 * time.Millisecond)
	}
	api, debug := "http://"+addrs[0], "http://"+addrs[1]

	resp, err := http.Get(api + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("livez status = %d", resp.StatusCode)
	}

	mresp, err := http.Get(api + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"mobicd_jobs_submitted_total",  // service metrics
		"mobic_sim_events_fired_total", // engine kernel
		"mobic_net_beacons_sent_total", // network layer
		"mobic_experiment_progress_ratio",
	} {
		if !strings.Contains(string(body), "# TYPE "+family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	dresp, err := http.Get(debug + "/debug/obs/spans")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("debug spans status = %d", dresp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v, want clean shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
	if !strings.Contains(log.String(), "msg=bye") {
		t.Errorf("shutdown log missing; log:\n%s", log.String())
	}
}

// TestNewLoggerFormats checks both handler shapes: text is logfmt-ish,
// json emits one valid JSON object per line with the standard slog keys.
func TestNewLoggerFormats(t *testing.T) {
	var text strings.Builder
	logger, err := newLogger(&text, "text")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("listening", "addr", ":0")
	if got := text.String(); !strings.Contains(got, "msg=listening") || !strings.Contains(got, "addr=:0") {
		t.Errorf("text log = %q", got)
	}

	var jsonBuf strings.Builder
	logger, err = newLogger(&jsonBuf, "json")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("listening", "addr", ":0")
	sc := bufio.NewScanner(strings.NewReader(jsonBuf.String()))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("json log line %q: %v", sc.Text(), err)
		}
		if line["msg"] != "listening" || line["addr"] != ":0" || line["level"] != "INFO" {
			t.Errorf("json log line = %v", line)
		}
	}

	if _, err := newLogger(&text, ""); err != nil {
		t.Errorf("empty format should default to text, got %v", err)
	}
}

// TestDebugHandler exercises the opt-in diagnostics mux: the pprof index
// and one profile endpoint respond, and /debug/obs/spans serves the
// registry's sampled span window as JSON.
func TestDebugHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Span(obs.SpanJob, 0, 3e9)
	srv := httptest.NewServer(newDebugHandler(reg))
	defer srv.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status = %d, want 200", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/debug/obs/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("spans Content-Type = %q", ct)
	}
	var spans []obs.SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Kind != "job" || spans[0].Seconds != 3 {
		t.Errorf("spans = %+v, want one 3 s job span", spans)
	}
}
