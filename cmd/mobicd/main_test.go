package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-nope"}, &log); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-addr", "999.999.999.999:0"}, &log); err == nil {
		t.Error("unlistenable address should error")
	}
}

func TestRunRejectsBadDataDir(t *testing.T) {
	var log strings.Builder
	// /dev/null is a file, so no journal directory can be created under it.
	if err := run([]string{"-addr", "127.0.0.1:0", "-data-dir", "/dev/null/journal"}, &log); err == nil {
		t.Error("unwritable data dir should error at boot, not at first submit")
	}
}
