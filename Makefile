# Convenience targets; everything is plain `go` underneath.

.PHONY: build test race vet cover bench bench-baseline bench-check check

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...
	go vet -tags race ./...

# Line-coverage profile plus a browsable HTML report (coverage.html).
cover:
	go test -count=1 -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out | tail -1
	go tool cover -html=coverage.out -o coverage.html
	@echo "wrote coverage.html"

bench:
	go test -bench=. -benchtime=1x .

# Rewrite BENCH_engine.json and BENCH_harness.json from this machine's benchmark costs.
bench-baseline:
	./scripts/bench.sh baseline

# Compare the full benchmark suite against the committed baseline.
bench-check:
	./scripts/bench.sh check

# The pre-merge gate: gofmt + vet + full suite under the race detector +
# benchmark regression gate.
check:
	./scripts/check.sh
