# Convenience targets; everything is plain `go` underneath.

.PHONY: build test race vet bench check

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

bench:
	go test -bench=. -benchtime=1x .

# The pre-merge gate: vet + full suite under the race detector.
check:
	./scripts/check.sh
