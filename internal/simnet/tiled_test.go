package simnet

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"reflect"
	"runtime"
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/geom"
	"mobic/internal/mobility"
	"mobic/internal/obs"
	"mobic/internal/trace"
)

// runHashed executes cfg to completion and returns an order-sensitive FNV
// hash of the complete trace-event stream plus the run result. This is a
// stricter check than the harness digester (which canonicalizes same-instant
// groups): the tiled scheduler replays the identical global event order, so
// even the raw stream must match byte for byte.
func runHashed(t testing.TB, cfg Config) (uint64, *Result) {
	t.Helper()
	h := fnv.New64a()
	var buf [25]byte
	cfg.Observer = func(ev trace.Event) {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(ev.T))
		buf[8] = byte(ev.Kind)
		binary.LittleEndian.PutUint32(buf[9:], uint32(ev.Node))
		binary.LittleEndian.PutUint32(buf[13:], uint32(ev.Other))
		binary.LittleEndian.PutUint64(buf[17:], math.Float64bits(ev.Value))
		h.Write(buf[:])
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	return h.Sum64(), res
}

// tiledCases are the scenario shapes the equivalence tests sweep: every
// engine feature that interacts with the window scheduler (MAC collisions,
// node churn, adaptive beacon intervals, plain RWP mobility).
func tiledCases() map[string]Config {
	area := geom.Square(670)
	base := Config{
		N:         60,
		Area:      area,
		Duration:  120,
		Seed:      7,
		Algorithm: cluster.MOBIC,
		Mobility:  &mobility.RandomWaypoint{Area: area, MaxSpeed: 20},
		TxRange:   250,
	}
	collisions := base
	collisions.Seed = 8
	collisions.HelloCollisions = true

	churn := base
	churn.Seed = 9
	churn.Failures = []NodeFailure{
		{Node: 3, At: 30},
		{Node: 11, At: 40, RecoverAt: 75},
		{Node: 25, At: 55.5, RecoverAt: 56},
		{Node: 47, At: 90, RecoverAt: 110},
	}

	adaptive := base
	adaptive.Seed = 10
	adaptive.Adaptive = &AdaptiveBI{Min: 1, Max: 4, MRef: 2}

	static := base
	static.Seed = 11
	static.Mobility = &mobility.Static{Area: area}
	static.Algorithm = cluster.LCC

	return map[string]Config{
		"rwp-mobic":  base,
		"collisions": collisions,
		"churn":      churn,
		"adaptive":   adaptive,
		"static-lcc": static,
	}
}

// TestTiledMatchesSequential is the engine-level differential oracle: for
// every scenario shape, an N-tile run must produce the byte-identical event
// stream and the deep-equal result of the sequential run, for several tile
// counts and tile-grid offsets.
func TestTiledMatchesSequential(t *testing.T) {
	// The worker-pool size derives from GOMAXPROCS; force real workers even
	// on single-CPU machines so the parallel phase actually runs
	// concurrently (goroutine interleaving is enough for equivalence and
	// race coverage — physical cores only affect speed).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	for name, cfg := range tiledCases() {
		t.Run(name, func(t *testing.T) {
			wantHash, wantRes := runHashed(t, cfg)
			variants := []struct {
				tiles, offset int
			}{
				{2, 0}, {4, 0}, {4, 3}, {5, 1}, {runtime.GOMAXPROCS(0), 0},
			}
			for _, v := range variants {
				tiled := cfg
				tiled.Tiles = v.tiles
				tiled.TileOffsetCells = v.offset
				gotHash, gotRes := runHashed(t, tiled)
				if gotHash != wantHash {
					t.Errorf("tiles=%d offset=%d: event stream hash %x, sequential %x",
						v.tiles, v.offset, gotHash, wantHash)
				}
				if !reflect.DeepEqual(gotRes, wantRes) {
					t.Errorf("tiles=%d offset=%d: result diverged from sequential run",
						v.tiles, v.offset)
				}
			}
		})
	}
}

// TestTiledSchedulerRaceSoak is the -race stress for the window scheduler:
// a dense arena where every tile border carries traffic, a small lookahead
// (collision jitter shrinks the window), and churn that invalidates plans
// mid-window. Run under `go test -race` (scripts/check.sh race gate) this
// proves Phase A's concurrent planning touches no shared mutable state; the
// digest comparison proves it also changed nothing.
func TestTiledSchedulerRaceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	// Force a real worker pool regardless of machine size; see
	// TestTiledMatchesSequential.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	area := geom.Square(900)
	cfg := Config{
		N:                 200,
		Area:              area,
		Duration:          40,
		Seed:              21,
		Algorithm:         cluster.MOBIC,
		Mobility:          &mobility.RandomWaypoint{Area: area, MaxSpeed: 25},
		TxRange:           250,
		HelloCollisions:   true,
		BroadcastInterval: 1.0,
		TimeoutPeriod:     1.5,
		Failures: []NodeFailure{
			{Node: 5, At: 10, RecoverAt: 20},
			{Node: 60, At: 12.25, RecoverAt: 12.5},
			{Node: 100, At: 15},
			{Node: 150, At: 18, RecoverAt: 30},
			{Node: 199, At: 25, RecoverAt: 26},
		},
	}
	wantHash, wantRes := runHashed(t, cfg)
	tiled := cfg
	tiled.Tiles = 8
	tiled.TileOffsetCells = 1
	gotHash, gotRes := runHashed(t, tiled)
	if gotHash != wantHash {
		t.Errorf("soak: tiled event stream hash %x, sequential %x", gotHash, wantHash)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Error("soak: tiled result diverged from sequential run")
	}
}

// TestTiledFallbackOnRecovery pins the degraded path: a crash recovery
// reschedules the node's beacon into the current window at a time no plan
// covers, so broadcast must fall back inline — and the run must still match
// the sequential one (checked by TestTiledMatchesSequential/churn). Here we
// assert the fallback path actually fired, so it cannot silently bitrot.
func TestTiledFallbackOnRecovery(t *testing.T) {
	cfg := tiledCases()["churn"]
	cfg.Tiles = 4
	reg := obs.NewRegistry()
	cfg.Obs = reg
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if reg.Counter(obs.TilePlannedTicks) == 0 {
		t.Error("tiled run planned no ticks; the parallel phase is disconnected")
	}
	if reg.Counter(obs.TileFallbackTicks) == 0 {
		t.Error("recovery-heavy run hit no fallback ticks; the degraded path is untested")
	}
	if reg.Counter(obs.TileWindows) == 0 || reg.Counter(obs.TileHaloExchanges) == 0 {
		t.Error("window/halo counters did not advance")
	}
	if reg.Gauge(obs.TileCount) != 4 {
		t.Errorf("tile count gauge = %g, want 4", reg.Gauge(obs.TileCount))
	}
}

// TestTiledDisabledWhereUnsound: stochastic propagation (and forced brute
// force) have no bounded planning radius, so Tiles must be ignored there.
func TestTiledDisabledWhereUnsound(t *testing.T) {
	cfg := tiledCases()["rwp-mobic"]
	cfg.Tiles = 4
	cfg.ForceBruteForce = true
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := net.TiledStats(); ok {
		t.Error("brute-force run built a tiled scheduler")
	}
	cfg.ForceBruteForce = false
	net, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tiles, lookahead, radius, ok := net.TiledStats(); !ok {
		t.Error("tiled run did not build the tiled scheduler")
	} else if tiles != 4 || lookahead <= 0 || radius < cfg.TxRange {
		t.Errorf("tiled stats = (%d, %g, %g)", tiles, lookahead, radius)
	}
}

// TestTiledConfigValidation: negative knobs are rejected.
func TestTiledConfigValidation(t *testing.T) {
	cfg := tiledCases()["rwp-mobic"]
	cfg.Tiles = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative Tiles accepted")
	}
	cfg.Tiles = 2
	cfg.TileOffsetCells = -3
	if _, err := New(cfg); err == nil {
		t.Error("negative TileOffsetCells accepted")
	}
}

// TestSteadyStateTickAllocsTiled extends the allocation gate to the tiled
// scheduler: once warm, a whole synchronization window — snapshot refill,
// due-tick sharding, parallel planning across the persistent worker pool,
// and the sequential replay — allocates nothing. The worker goroutines are
// persistent and the per-window dispatch is channel tokens plus atomics, so
// the per-tile tick stays 0 allocs/interval like the sequential path.
func TestSteadyStateTickAllocsTiled(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under the race detector")
	}
	// Build with a real worker pool (AllocsPerRun serializes execution, but
	// the token dispatch and barrier still run) so the measurement covers
	// the actual per-window coordination machinery.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	area := geom.Square(670)
	cfg := Config{
		N:               50,
		Area:            area,
		Duration:        900,
		Seed:            11,
		Algorithm:       cluster.MOBIC,
		Mobility:        &mobility.Static{Area: area},
		TxRange:         250,
		HelloCollisions: true,
		Tiles:           4,
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.tiled.start(net)
	defer net.tiled.stop()
	net.advance(300) // converge pools and plan buffers, same horizon as the sequential gate
	interval := net.Config().BroadcastInterval
	allocs := testing.AllocsPerRun(20, func() {
		net.advance(net.sched.Now() + interval)
	})
	if allocs > 0 {
		t.Errorf("tiled steady-state beacon interval allocates %.1f objects, want 0", allocs)
	}
}
