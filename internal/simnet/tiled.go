package simnet

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mobic/internal/geom"
	"mobic/internal/graph"
	"mobic/internal/obs"
	"mobic/internal/spatial"
)

// The tiled-parallel scheduler: conservative parallel discrete-event
// simulation that is bit-identical to the sequential run by construction.
//
// Classic conservative PDES gives each tile an independent event queue and
// lets tiles run ahead of each other by the lookahead. Hello beacons deliver
// instantaneously here (propagation delay is below the float64 resolution of
// the clock), so truly independent queues would have zero lookahead across
// tile borders. Instead, the engine splits each synchronization window into
// two phases:
//
//   - Phase A (parallel): tile workers precompute, for every beacon tick due
//     in the window, the *pure* part of the tick — the exact transmit
//     position and the threshold-passing receiver set with exact received
//     powers — against an immutable position snapshot taken at the window
//     start. Purity is what makes this safe: trajectories are functions of
//     time, the propagation model is deterministic, and the candidate set is
//     a superset filter over positions only.
//   - Phase B (sequential): the single global event queue replays the window
//     in exactly the sequential order; broadcast consumes a tick's plan when
//     the plan's timestamp matches bit-for-bit, and otherwise recomputes
//     inline. State mutation, the loss model's RNG draws, MAC deferrals and
//     clustering steps all happen here, in the canonical ascending-receiver
//     order both paths share.
//
// Anything impure — a receiver crashing mid-window, a recovered node's
// rescheduled beacon — degrades a plan to "unused" or "mismatched", and
// Phase B falls back to the inline computation. Correctness therefore never
// depends on the lookahead or the tiling; they only decide how much work
// Phase A can pull off the critical path. See DESIGN.md S29 for the full
// argument.
type tiledRun struct {
	tiling *spatial.Tiling
	snap   *spatial.Snapshot
	// lookahead is the window length in simulated seconds: strictly below
	// the minimum beacon interval so each node ticks at most once per
	// window and every plan is consumed before the node's state changes.
	lookahead float64
	// queryRadius is TxRange plus the motion slack maxSpeed*lookahead (a
	// transmitter and receiver each drift at most maxSpeed*lookahead from
	// the snapshot taken at the window start) plus a float-rounding margin.
	// Planning queries with it are supersets of the exact receiver set.
	queryRadius float64
	// haloPairs is the number of adjacent tile pairs whose halo cells
	// overlap at queryRadius — the per-window boundary-state exchange
	// volume reported to obs.
	haloPairs int
	// extraWorkers is the number of persistent worker goroutines; the
	// coordinator goroutine also drains tasks, so parallelism is
	// extraWorkers+1.
	extraWorkers int
	workCh       chan struct{}
	wg           sync.WaitGroup
	nextTask     atomic.Int32
	numTasks     int32

	// Per-window planning state. All of it is written by the coordinator
	// before the workers are released (the channel send is the
	// happens-before edge) or by exactly one task during Phase A.
	posBuf    []geom.Point
	tileTicks [][]dueTick
	plans     []tickPlan
	planned   []int32
	// candBufs are per-drainer candidate scratch buffers; index
	// extraWorkers belongs to the coordinator.
	candBufs [][]int32

	// Sampler plan (Phase A task 0): the connectivity snapshot for a
	// cluster sample falling inside the window.
	sampleDue  bool
	sampleT    float64
	samplePlan samplePlan
	topoPos    []geom.Point
	topo       *graph.Adjacency
}

// dueTick is one beacon tick collected at a window start.
type dueTick struct {
	id int32
	t  float64
}

// tickPlan is the precomputed pure part of one beacon tick. t is NaN while
// the plan is unset; broadcast consumes it only on a bit-exact time match.
type tickPlan struct {
	t          float64
	txPos      geom.Point
	deliveries []planDelivery
}

// planDelivery is one threshold-passing receiver with its exact received
// power, in ascending-id order within a plan.
type planDelivery struct {
	id int32
	pr float64
}

// samplePlan caches the component stats of the connectivity graph at sample
// time t (NaN while unset).
type samplePlan struct {
	t              float64
	comps, largest int
}

// newTiledRun builds the tiled scheduler for a validated network. cellSize
// is the spatial grid's cell size, reused so tiles align with the dense
// index layout.
func newTiledRun(n *Network, cellSize float64) (*tiledRun, error) {
	cfg := n.cfg
	tiling, err := spatial.NewTiling(cfg.Area, cellSize, cfg.Tiles, cfg.TileOffsetCells)
	if err != nil {
		return nil, err
	}
	snap, err := spatial.NewSnapshot(cfg.Area, cellSize)
	if err != nil {
		return nil, err
	}

	// The window must be strictly shorter than any beacon interval so a
	// node ticks at most once per window: intervals are at least the base
	// interval (Adaptive.Min under adaptive BI), shrunk by at most 10%
	// under per-beacon collision jitter.
	base := cfg.BroadcastInterval
	if cfg.Adaptive != nil {
		base = cfg.Adaptive.Min
	}
	lookahead := 0.9 * base
	if cfg.HelloCollisions {
		lookahead = 0.81 * base
	}

	maxSpeed := 0.0
	for _, rn := range n.nodes {
		if s := rn.traj.MaxSpeed(); s > maxSpeed {
			maxSpeed = s
		}
	}
	// Transmitter and receiver each move at most maxSpeed*lookahead between
	// the snapshot instant and the tick; 0.5 m absorbs float rounding at
	// the exact-threshold boundary.
	queryRadius := cfg.TxRange + 2*maxSpeed*lookahead + 0.5

	workers := runtime.GOMAXPROCS(0)
	if max := tiling.Tiles() + 1; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}

	td := &tiledRun{
		tiling:       tiling,
		snap:         snap,
		lookahead:    lookahead,
		queryRadius:  queryRadius,
		haloPairs:    tiling.HaloPairs(queryRadius) / 2,
		extraWorkers: workers - 1,
		posBuf:       make([]geom.Point, cfg.N),
		tileTicks:    make([][]dueTick, tiling.Tiles()),
		plans:        make([]tickPlan, cfg.N),
		candBufs:     make([][]int32, workers),
		topo:         &graph.Adjacency{},
	}
	for i := range td.plans {
		td.plans[i].t = math.NaN()
	}
	td.samplePlan.t = math.NaN()

	// Pre-size every node's mobility tracker for the expected neighborhood
	// so dense mega-scenarios don't pay incremental map growth mid-run.
	if degree := expectedDegree(cfg); degree > 4 {
		for _, rn := range n.nodes {
			rn.tracker.Reserve(degree)
		}
	}
	return td, nil
}

// expectedDegree estimates the mean neighbor count from node density and
// transmission range, capped at N-1.
func expectedDegree(cfg Config) int {
	area := cfg.Area.Width() * cfg.Area.Height()
	if area <= 0 {
		return 0
	}
	d := int(math.Ceil(float64(cfg.N) * math.Pi * cfg.TxRange * cfg.TxRange / area))
	if d > cfg.N-1 {
		d = cfg.N - 1
	}
	return d
}

// start launches the persistent worker pool (idempotent).
func (td *tiledRun) start(n *Network) {
	if td.workCh != nil {
		return
	}
	td.workCh = make(chan struct{}, td.extraWorkers)
	for w := 0; w < td.extraWorkers; w++ {
		go td.worker(n, w)
	}
}

// stop shuts the worker pool down. Safe to call once after start.
func (td *tiledRun) stop() {
	if td.workCh != nil {
		close(td.workCh)
		td.workCh = nil
	}
}

// worker drains planning tasks each time the coordinator releases a window
// token. The goroutines are persistent so a synchronization window costs no
// spawns and no allocations.
func (td *tiledRun) worker(n *Network, w int) {
	for range td.workCh {
		n.drainPlanTasks(w)
		td.wg.Done()
	}
}

// advance runs the simulation to horizon h in tiled synchronization windows.
func (n *Network) advance(h float64) {
	if n.tiled == nil {
		n.sched.RunUntil(h)
		return
	}
	if n.tiled.workCh == nil {
		// Defensive: the pool is wired up in RunContext; without it the
		// sequential path is always correct.
		n.sched.RunUntil(h)
		return
	}
	for now := n.sched.Now(); now < h; now = n.sched.Now() {
		wh := now + n.tiled.lookahead
		if wh > h {
			wh = h
		}
		n.runTiledWindow(wh)
	}
}

// runTiledWindow executes one synchronization window ending at h: snapshot,
// parallel plan, sequential replay.
func (n *Network) runTiledWindow(h float64) {
	td := n.tiled
	nt, ok := n.sched.NextTime()
	if !ok || nt > h {
		// Nothing due in the window; just move the clock.
		n.sched.RunUntil(h)
		return
	}

	// Halo exchange, realized: every tile worker plans against the same
	// immutable position snapshot, so the boundary state a tile needs from
	// its halo neighbors is published here, once per window, before any
	// worker starts. The obs counter reports the equivalent pairwise
	// exchange volume.
	pos := td.posBuf
	t0 := n.sched.Now()
	for i, rn := range n.nodes {
		pos[i] = rn.traj.At(t0)
	}
	td.snap.Fill(pos)

	// Collect the beacon ticks due in (t0, h], sharded by the tile owning
	// the transmitter's snapshot position. A node's persistent tick event
	// exposes exactly what we need: queued means not fired and not
	// canceled, and its time is the next beacon instant.
	for k := range td.tileTicks {
		td.tileTicks[k] = td.tileTicks[k][:0]
	}
	td.planned = td.planned[:0]
	for _, rn := range n.nodes {
		ev := rn.tickEv
		if n.down[rn.id] || ev.Fired() || ev.Canceled() {
			continue
		}
		t := ev.Time()
		if t > h {
			continue
		}
		tile := td.tiling.TileOf(pos[rn.id])
		td.tileTicks[tile] = append(td.tileTicks[tile], dueTick{id: rn.id, t: t})
		td.planned = append(td.planned, rn.id)
	}
	td.sampleDue = false
	if ev := n.sampleEv; ev != nil && !ev.Fired() && !ev.Canceled() && ev.Time() <= h {
		td.sampleDue = true
		td.sampleT = ev.Time()
	}

	// Phase A: release the workers and drain tasks alongside them. Task 0
	// is the sampler's connectivity snapshot; task k+1 plans tile k.
	td.numTasks = int32(len(td.tileTicks)) + 1
	td.nextTask.Store(0)
	td.wg.Add(td.extraWorkers)
	for i := 0; i < td.extraWorkers; i++ {
		td.workCh <- struct{}{}
	}
	n.drainPlanTasks(td.extraWorkers)
	if n.obsRec.Enabled() {
		waitStart := time.Now()
		td.wg.Wait()
		n.obsRec.Add(obs.TileBarrierWaitNanos, time.Since(waitStart).Nanoseconds())
	} else {
		td.wg.Wait()
	}

	// Phase B: replay the window on the global queue in sequential order.
	n.sched.RunUntil(h)

	// Reset consumed (or abandoned) plans for the next window.
	for _, id := range td.planned {
		td.plans[id].t = math.NaN()
	}
	td.samplePlan.t = math.NaN()
	n.obsRec.Add(obs.TileWindows, 1)
	n.obsRec.Add(obs.TileHaloExchanges, int64(td.haloPairs))
}

// drainPlanTasks pulls planning tasks until the window's task counter is
// exhausted. w indexes the drainer's private candidate scratch buffer.
func (n *Network) drainPlanTasks(w int) {
	td := n.tiled
	for {
		task := td.nextTask.Add(1) - 1
		if task >= td.numTasks {
			return
		}
		if task == 0 {
			if td.sampleDue {
				n.planSample()
			}
			continue
		}
		for _, dt := range td.tileTicks[task-1] {
			n.planTick(w, dt.id, dt.t)
		}
	}
}

// planTick precomputes the pure part of node id's beacon tick at time t: the
// exact transmit position and the exact threshold-passing receiver set, in
// canonical ascending-id order. Everything read here is immutable during
// Phase A (trajectories, the position snapshot, config); the only writes go
// to plans[id], which this window assigns to exactly one tile task.
func (n *Network) planTick(w int, id int32, t float64) {
	td := n.tiled
	p := &td.plans[id]
	txPos := n.nodes[id].traj.At(t)
	cand := td.snap.QueryRange(txPos, td.queryRadius, id, td.candBufs[w][:0])
	td.candBufs[w] = cand
	dels := p.deliveries[:0]
	for _, rxID := range cand {
		rxPos := n.nodes[rxID].traj.At(t)
		pr := n.cfg.Propagation.RxPower(n.cfg.TxPower, txPos.Dist(rxPos))
		if pr < n.rxThresh {
			continue
		}
		dels = append(dels, planDelivery{id: rxID, pr: pr})
	}
	// The snapshot returns candidates in cell order; restore the canonical
	// ascending-receiver order the sequential path delivers in. Insertion
	// sort: the list is nearly sorted (ascending within each cell) and
	// must not allocate.
	for i := 1; i < len(dels); i++ {
		for j := i; j > 0 && dels[j].id < dels[j-1].id; j-- {
			dels[j], dels[j-1] = dels[j-1], dels[j]
		}
	}
	p.deliveries = dels
	p.txPos = txPos
	p.t = t
}

// planSample precomputes the sampler's connectivity component stats at the
// sample instant. Pure in the trajectories, so bit-identical to the inline
// rebuild it replaces.
func (n *Network) planSample() {
	td := n.tiled
	pos := td.topoPos[:0]
	for _, rn := range n.nodes {
		pos = append(pos, rn.traj.At(td.sampleT))
	}
	td.topoPos = pos
	td.topo.Rebuild(pos, n.cfg.TxRange)
	comps, largest := td.topo.ComponentStats()
	td.samplePlan = samplePlan{t: td.sampleT, comps: comps, largest: largest}
}

// TiledStats reports the tiled scheduler's static shape for inspection and
// tests: tile count, window length, and planning query radius. ok is false
// for sequential runs.
func (n *Network) TiledStats() (tiles int, lookahead, queryRadius float64, ok bool) {
	if n.tiled == nil {
		return 0, 0, 0, false
	}
	return n.tiled.tiling.Tiles(), n.tiled.lookahead, n.tiled.queryRadius, true
}
