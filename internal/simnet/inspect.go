package simnet

import (
	"mobic/internal/cluster"
	"mobic/internal/geom"
	"mobic/internal/graph"
)

// NodeState is a read-only view of one node's clustering state at the
// current simulated time, used by tests, examples and the routing layer.
type NodeState struct {
	// ID is the node identifier.
	ID int32
	// Pos is the node's position now.
	Pos geom.Point
	// Role is the clustering role.
	Role cluster.Role
	// Head is the node's clusterhead (its own ID when it is a head).
	Head int32
	// M is the aggregate local mobility computed at the last beacon.
	M float64
	// Gateway reports whether the node currently hears >= 2 heads.
	Gateway bool
	// Neighbors is the number of live neighbor-table entries.
	Neighbors int
	// Down reports whether the node is currently crashed.
	Down bool
}

// Now returns the current simulated time.
func (n *Network) Now() float64 { return n.sched.Now() }

// Snapshot returns the state of every node at the current simulated time.
func (n *Network) Snapshot() []NodeState {
	out := make([]NodeState, 0, len(n.nodes))
	for _, rn := range n.nodes {
		heads := 0
		for _, e := range rn.table {
			if e.role == cluster.RoleHead {
				heads++
			}
		}
		out = append(out, NodeState{
			ID:        rn.id,
			Pos:       rn.traj.At(n.sched.Now()),
			Role:      rn.cnode.Role(),
			Head:      rn.cnode.Head(),
			M:         n.lastM[rn.id],
			Gateway:   rn.cnode.Role() == cluster.RoleMember && heads >= 2,
			Neighbors: len(rn.table),
			Down:      n.down[rn.id],
		})
	}
	return out
}

// Positions returns every node's position at the current simulated time.
func (n *Network) Positions() []geom.Point {
	out := make([]geom.Point, 0, len(n.nodes))
	for _, rn := range n.nodes {
		out = append(out, rn.traj.At(n.sched.Now()))
	}
	return out
}

// Topology returns the unit-disk adjacency over the current positions with
// the configured transmission range.
func (n *Network) Topology() *graph.Adjacency {
	return graph.FromPositions(n.Positions(), n.cfg.TxRange)
}

// Clusters groups node IDs by clusterhead. Undecided nodes appear under
// cluster.NoHead.
func (n *Network) Clusters() map[int32][]int32 {
	out := make(map[int32][]int32)
	for _, rn := range n.nodes {
		h := rn.cnode.Head()
		out[h] = append(out[h], rn.id)
	}
	return out
}

// RunUntil advances the simulation to the given time (clamped to the
// configured duration), letting callers interleave inspection with
// execution. Metrics are not finalized; call Run or FinishRun for that.
func (n *Network) RunUntil(t float64) {
	if t > n.cfg.Duration {
		t = n.cfg.Duration
	}
	n.sched.RunUntil(t)
}

// Config returns the (defaults-applied) configuration of the network.
func (n *Network) Config() Config { return n.cfg }

// BatteryFraction returns node id's remaining battery as a fraction of its
// initial charge, or 1 when the energy model is disabled. Tests and the
// hierarchical-clustering layer use it to reason about energy-aware head
// placement without reaching into the drain accounting.
func (n *Network) BatteryFraction(id int32) float64 {
	if n.batteryJ == nil {
		return 1
	}
	return n.cfg.Energy.Fraction(n.batteryJ[id])
}

// EnergyDepleted returns the number of nodes that have died of battery
// exhaustion so far.
func (n *Network) EnergyDepleted() int { return n.depleted }

// CurrentInterval returns node id's current adaptive beacon interval, or the
// fixed broadcast interval when the adaptive policy is disabled. A node that
// has not beaconed yet reports the fixed interval too (the adaptive state
// initializes on the first beacon).
func (n *Network) CurrentInterval(id int32) float64 {
	if n.curBI == nil || n.curBI[id] == 0 {
		return n.cfg.BroadcastInterval
	}
	return n.curBI[id]
}
