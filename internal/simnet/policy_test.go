package simnet

import (
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/energy"
	"mobic/internal/geom"
	"mobic/internal/mobility"
)

// --- adaptive broadcast period with hysteresis ---

func TestAdaptiveBINextHysteresis(t *testing.T) {
	a := AdaptiveBI{Min: 0.5, Max: 4, MRef: 4, Hysteresis: 0.25}
	// Uninitialized state adopts the target outright.
	if got, want := a.Next(0, 0), 4.0; got != want {
		t.Errorf("first beacon at M=0: %g, want %g", got, want)
	}
	// Rising mobility tightens immediately.
	tight := a.Next(4, 12) // target = 4 - 3.5*12/16 = 1.375
	if tight != a.Interval(12) {
		t.Errorf("tighten: %g, want target %g", tight, a.Interval(12))
	}
	// A target inside the hysteresis band holds the current interval.
	cur := 2.0
	target := a.Interval(4) // 4 - 3.5*0.5 = 2.25, inside [2, 2.5)
	if target <= cur || target >= cur*1.25 {
		t.Fatalf("test setup: target %g not inside (%g, %g)", target, cur, cur*1.25)
	}
	if got := a.Next(cur, 4); got != cur {
		t.Errorf("inside band: %g, want hold at %g", got, cur)
	}
	// A target past the band relaxes to the target.
	if got := a.Next(cur, 0); got != 4.0 {
		t.Errorf("past band: %g, want relax to 4", got)
	}
}

func TestAdaptiveBIZeroHysteresisTracksTarget(t *testing.T) {
	a := AdaptiveBI{Min: 0.5, Max: 4, MRef: 4}
	for _, m := range []float64{0, 0.1, 2, 4, 100} {
		for _, cur := range []float64{0, 0.5, 1.7, 4} {
			if got, want := a.Next(cur, m), a.Interval(m); got != want {
				t.Fatalf("Next(%g, %g) = %g, want target %g (zero hysteresis must be band-free)",
					cur, m, got, want)
			}
		}
	}
}

func TestAdaptiveBIIntervalBounds(t *testing.T) {
	a := AdaptiveBI{Min: 0.5, Max: 4, MRef: 4, Hysteresis: 0.25}
	cur := 0.0
	for _, m := range []float64{0, 1, 5, 50, 1e9, -3} {
		cur = a.Next(cur, m)
		if cur < a.Min || cur > a.Max {
			t.Fatalf("interval %g escaped [%g, %g] at M=%g", cur, a.Min, a.Max, m)
		}
	}
}

func TestAdaptiveBIHysteresisValidation(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 100, 1)
	cfg.Adaptive = &AdaptiveBI{Min: 1, Max: 2, MRef: 4, Hysteresis: -0.1}
	if _, err := New(cfg); err == nil {
		t.Error("negative hysteresis should be rejected")
	}
}

// TestAdaptiveBIHysteresisReducesFlapping pins the policy's purpose: under
// identical mobility, the hysteresis band can only reduce (never increase)
// how often a node's interval changes between consecutive beacons, because
// every band hold replaces a change with a non-change.
func TestAdaptiveBIHysteresisReducesFlapping(t *testing.T) {
	flaps := func(h float64) int {
		a := AdaptiveBI{Min: 0.5, Max: 4, MRef: 4, Hysteresis: h}
		// A mobility series fluttering around MRef: the band-free policy
		// retunes on every sample, the banded one holds through the noise.
		series := []float64{4, 4.4, 4, 4.6, 3.8, 4.2, 4, 12, 11, 4, 4.3}
		cur, n := 0.0, 0
		for _, m := range series {
			next := a.Next(cur, m)
			if cur != 0 && next != cur {
				n++
			}
			cur = next
		}
		return n
	}
	free, banded := flaps(0), flaps(0.25)
	if banded >= free {
		t.Errorf("hysteresis did not reduce interval flapping: %d (banded) vs %d (free)", banded, free)
	}
}

// --- adaptive Lowest-ID ---

func TestAdaptiveLowestIDRuns(t *testing.T) {
	res := mustRun(t, waypointConfig(cluster.AdaptiveLowestID, 150, 3))
	if res.Algorithm != "adaptive-lowest-id" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
	if res.Metrics.CHChanges == 0 {
		t.Error("expected clusterhead changes in a mobile scenario")
	}
}

// TestAdaptiveLowestIDRotatesHeads is the policy's reason to exist: on a
// static line topology plain LCC elects node 0 once and keeps it forever,
// while adaptive reassignment forces the long-serving head to shed the role
// periodically, producing strictly more clusterhead changes and a strictly
// shorter maximum tenure.
func TestAdaptiveLowestIDRotatesHeads(t *testing.T) {
	mk := func(alg cluster.Algorithm) Config {
		area := geom.Square(300)
		return Config{
			N:         8,
			Area:      area,
			Duration:  600,
			Seed:      1,
			Algorithm: alg,
			Mobility:  &mobility.Static{Area: area},
			TxRange:   500, // fully connected: one cluster
		}
	}
	lcc := mustRun(t, mk(cluster.LCC))
	adaptive := mustRun(t, mk(cluster.AdaptiveLowestID))
	if lcc.Metrics.CHChanges >= adaptive.Metrics.CHChanges {
		t.Errorf("adaptive reassignment should force rotation: lcc %d changes, adaptive %d",
			lcc.Metrics.CHChanges, adaptive.Metrics.CHChanges)
	}
	// Fairness: rotation spreads head duty over more nodes.
	if lcc.Metrics.HeadTimeFairness >= adaptive.Metrics.HeadTimeFairness {
		t.Errorf("rotation should improve head-time fairness: lcc %g, adaptive %g",
			lcc.Metrics.HeadTimeFairness, adaptive.Metrics.HeadTimeFairness)
	}
}

// --- energy model ---

func energyConfig(tx float64, seed uint64, ec *energy.Config) Config {
	cfg := waypointConfig(cluster.MOBIC, tx, seed)
	cfg.Energy = ec
	return cfg
}

func TestEnergyDrainsAndKills(t *testing.T) {
	ec := energy.Default()
	ec.InitialJ = 1.0 // ~1000 s of idle alone; comms push nodes over earlier
	ec.IdleW = 0.01   // deaths land mid-run
	cfg := energyConfig(150, 5, &ec)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyDepleted == 0 {
		t.Fatal("no node depleted despite a starvation budget")
	}
	if res.EnergyDepleted != net.EnergyDepleted() {
		t.Errorf("Result.EnergyDepleted %d != accessor %d", res.EnergyDepleted, net.EnergyDepleted())
	}
	// Depleted nodes are down and report an empty battery; survivors hold a
	// positive fraction.
	downs := 0
	for _, st := range net.Snapshot() {
		frac := net.BatteryFraction(st.ID)
		if st.Down {
			downs++
			if frac > 0 {
				t.Errorf("node %d is down but holds %g battery", st.ID, frac)
			}
		} else if frac <= 0 {
			t.Errorf("node %d is alive with battery fraction %g", st.ID, frac)
		}
	}
	if downs != res.EnergyDepleted {
		t.Errorf("%d nodes down, %d depleted (no failures were scheduled)", downs, res.EnergyDepleted)
	}
}

func TestEnergyDisabledReportsFullBattery(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 100, 1)
	cfg.Duration = 50
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if got := net.BatteryFraction(0); got != 1 {
		t.Errorf("BatteryFraction without energy model = %g, want 1", got)
	}
	if net.EnergyDepleted() != 0 {
		t.Error("EnergyDepleted without energy model should be 0")
	}
}

func TestEnergyConfigValidation(t *testing.T) {
	ec := energy.Default()
	ec.InitialJ = 0
	if _, err := New(energyConfig(100, 1, &ec)); err == nil {
		t.Error("zero battery should be rejected")
	}
}

// TestEnergyDeterminism: the battery model must not perturb determinism —
// two identical runs remain bit-equal, including the depletion count.
func TestEnergyDeterminism(t *testing.T) {
	ec := energy.Default()
	ec.InitialJ = 1.2
	ec.IdleW = 0.01
	a := mustRun(t, energyConfig(150, 9, &ec))
	ec2 := ec
	b := mustRun(t, energyConfig(150, 9, &ec2))
	if *a != *b {
		t.Errorf("energy runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestEnergyRotationSpreadsHeadDuty: with the election penalty on, head duty
// is spread across more nodes than with the penalty off (same drain, same
// deaths possible), measurably via Jain's fairness over head time.
func TestEnergyRotationSpreadsHeadDuty(t *testing.T) {
	mk := func(elect float64) *Result {
		ec := energy.Default()
		ec.InitialJ = 4.8
		ec.IdleW = 0.004    // idle+comms drain ~85% over the run: no deaths
		ec.RotateFrac = 0.5 // crossed mid-run, leaving time for the cascade
		ec.ElectionWeight = elect
		area := geom.Square(300)
		cfg := Config{
			N:         10,
			Area:      area,
			Duration:  600,
			Seed:      2,
			Algorithm: cluster.MOBIC,
			Mobility:  &mobility.Static{Area: area},
			TxRange:   500,
			Energy:    &ec,
		}
		return mustRun(t, cfg)
	}
	off := mk(0)
	on := mk(5)
	if off.EnergyDepleted != 0 || on.EnergyDepleted != 0 {
		t.Fatalf("test setup: unexpected deaths (%d, %d)", off.EnergyDepleted, on.EnergyDepleted)
	}
	if on.Metrics.HeadTimeFairness <= off.Metrics.HeadTimeFairness {
		t.Errorf("energy-weighted election should spread head duty: fairness %g (on) vs %g (off)",
			on.Metrics.HeadTimeFairness, off.Metrics.HeadTimeFairness)
	}
}

// TestCurrentIntervalReporting pins the inspection contract: with the policy
// disabled every node reports the fixed broadcast interval; with it enabled,
// nodes report the fixed interval until their first beacon initializes the
// adaptive state, and a floating interval inside [Min, Max] afterwards.
func TestCurrentIntervalReporting(t *testing.T) {
	fixed, err := New(waypointConfig(cluster.MOBIC, 150, 3))
	if err != nil {
		t.Fatal(err)
	}
	bi := fixed.Config().BroadcastInterval
	if got := fixed.CurrentInterval(0); got != bi {
		t.Errorf("disabled policy: CurrentInterval = %g, want fixed %g", got, bi)
	}

	cfg := waypointConfig(cluster.MOBIC, 150, 3)
	a := AdaptiveBI{Min: 0.5, Max: 4, MRef: 4, Hysteresis: 0.25}
	cfg.Adaptive = &a
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.CurrentInterval(0); got != net.Config().BroadcastInterval {
		t.Errorf("before any beacon: CurrentInterval = %g, want the fixed interval", got)
	}
	// RunUntil clamps to the horizon; running "past" it is the whole run.
	net.RunUntil(cfg.Duration + 100)
	for id := int32(0); id < int32(cfg.N); id++ {
		if got := net.CurrentInterval(id); got < a.Min || got > a.Max {
			t.Fatalf("node %d interval %g escaped [%g, %g]", id, got, a.Min, a.Max)
		}
	}
}
