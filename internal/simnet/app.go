package simnet

import (
	"slices"

	"mobic/internal/cluster"
	"mobic/internal/geom"
)

// Payload is an application-defined packet body.
type Payload any

// App is a protocol running on top of the clustered MANET — the slot a
// cluster-based routing protocol like CBRP plugs into (paper Sections 3.2
// and 5). Apps send one-hop broadcasts and unicasts through the same
// channel (propagation model, receive threshold, loss model) as the hello
// protocol; multi-hop forwarding is the app's own business.
type App interface {
	// Name identifies the app in traces and results.
	Name() string
	// Start runs once before the simulation begins; the app keeps the API
	// handle for sending and scheduling.
	Start(api AppAPI)
	// OnBroadcast delivers a one-hop broadcast payload at node `at`.
	OnBroadcast(now float64, from, at int32, payload Payload)
	// OnUnicast delivers a unicast payload at node `at`.
	OnUnicast(now float64, from, at int32, payload Payload)
}

// AppAPI is the interface the network exposes to apps.
type AppAPI interface {
	// Now returns the current simulated time.
	Now() float64
	// NodeCount returns the number of nodes.
	NodeCount() int
	// Broadcast delivers payload to every node in range of `from` after
	// the configured hop delay. It returns the number of receivers.
	Broadcast(from int32, payload Payload) int
	// Unicast delivers payload to `to` if it is in range of `from` (and
	// the loss model spares the packet). It reports whether the packet
	// will be delivered.
	Unicast(from, to int32, payload Payload) bool
	// After schedules fn on the simulation clock.
	After(delay float64, fn func(now float64)) error
	// Role returns a node's current clustering role.
	Role(id int32) cluster.Role
	// Head returns a node's current clusterhead (NoHead if none).
	Head(id int32) int32
	// AudibleHeads returns the clusterheads currently in a node's
	// neighbor table — what the node itself knows, not ground truth.
	AudibleHeads(id int32) []int32
	// Neighbors returns every entry in a node's hello neighbor table, in
	// ascending ID order (deterministic).
	Neighbors(id int32) []int32
	// Rand returns a deterministic float64 in [0, 1) from the app stream.
	Rand() float64
}

// appAPI implements AppAPI for one network.
type appAPI struct {
	n   *Network
	rng interface{ Float64() float64 }
}

var _ AppAPI = (*appAPI)(nil)

func (a *appAPI) Now() float64   { return a.n.sched.Now() }
func (a *appAPI) NodeCount() int { return len(a.n.nodes) }
func (a *appAPI) Rand() float64  { return a.rng.Float64() }

func (a *appAPI) Role(id int32) cluster.Role { return a.n.nodes[id].cnode.Role() }
func (a *appAPI) Head(id int32) int32        { return a.n.nodes[id].cnode.Head() }

func (a *appAPI) AudibleHeads(id int32) []int32 {
	var out []int32
	for nid, e := range a.n.nodes[id].table {
		if e.role == cluster.RoleHead {
			out = append(out, nid)
		}
	}
	return out
}

func (a *appAPI) Neighbors(id int32) []int32 {
	out := make([]int32, 0, len(a.n.nodes[id].table))
	for nid := range a.n.nodes[id].table {
		out = append(out, nid)
	}
	slices.Sort(out)
	return out
}

func (a *appAPI) After(delay float64, fn func(now float64)) error {
	// Apps get no cancel handle, so the event can come from the
	// scheduler's free list.
	return a.n.sched.AfterPooled(delay, fn)
}

// Broadcast schedules delivery at every in-range node after the hop delay.
func (a *appAPI) Broadcast(from int32, payload Payload) int {
	n := a.n
	txPos := n.nodes[from].traj.At(n.sched.Now())
	receivers := 0
	for _, rx := range n.nodes {
		if rx.id == from {
			continue
		}
		if !n.reachableAt(from, rx, txPos) {
			continue
		}
		receivers++
		rxID := rx.id
		if err := n.sched.AfterPooled(n.cfg.HopDelay, func(t float64) {
			for _, app := range n.cfg.Apps {
				app.OnBroadcast(t, from, rxID, payload)
			}
		}); err != nil {
			return receivers
		}
	}
	return receivers
}

// Unicast schedules delivery at `to` if in range.
func (a *appAPI) Unicast(from, to int32, payload Payload) bool {
	n := a.n
	if to < 0 || int(to) >= len(n.nodes) || to == from {
		return false
	}
	txPos := n.nodes[from].traj.At(n.sched.Now())
	if !n.reachableAt(from, n.nodes[to], txPos) {
		return false
	}
	if err := n.sched.AfterPooled(n.cfg.HopDelay, func(t float64) {
		for _, app := range n.cfg.Apps {
			app.OnUnicast(t, from, to, payload)
		}
	}); err != nil {
		return false
	}
	return true
}

// reachableAt applies the propagation threshold and the loss model for one
// app-layer packet from -> rx transmitted from txPos at the current instant.
func (n *Network) reachableAt(from int32, rx *runtimeNode, txPos geom.Point) bool {
	if n.down[rx.id] || n.down[from] {
		return false
	}
	rxPos := rx.traj.At(n.sched.Now())
	pr := n.cfg.Propagation.RxPower(n.cfg.TxPower, txPos.Dist(rxPos))
	if pr < n.rxThresh {
		return false
	}
	return !n.cfg.Loss.Drops(from, rx.id, n.sched.Now())
}
