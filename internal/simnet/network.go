package simnet

import (
	"context"
	"fmt"
	"math/rand/v2"
	"slices"
	"time"

	"mobic/internal/cluster"
	"mobic/internal/core"
	"mobic/internal/geom"
	"mobic/internal/graph"
	"mobic/internal/metrics"
	"mobic/internal/mobility"
	"mobic/internal/obs"
	"mobic/internal/radio"
	"mobic/internal/sim"
	"mobic/internal/spatial"
	"mobic/internal/trace"
)

// neighborEntry is what the hello protocol knows about one neighbor from its
// most recent beacon.
type neighborEntry struct {
	lastHeard float64
	weight    cluster.Weight
	role      cluster.Role
	head      int32
}

// runtimeNode is the per-node simulation state that is inherently
// reference-shaped (state machines, maps, events). The hot scalar state a
// beacon tick reads and writes — down flag, cached mobility, tick count,
// custom weight — lives in dense struct-of-arrays slices on the Network
// instead (down, lastM, tickCount, customW), so the per-tile tick loop walks
// cache-linear memory rather than chasing one pointer per node.
type runtimeNode struct {
	id      int32
	cnode   *cluster.Node
	tracker *core.Tracker
	traj    *mobility.Trajectory
	table   map[int32]*neighborEntry
	// tickEv is the node's persistent hello-protocol event: the callback is
	// bound once at construction and the same event is rescheduled for
	// every beacon, so a steady beacon stream allocates neither events nor
	// closures. Recovery after a crash reschedules it too, which moves any
	// stale queued beacon instead of starting a second chain.
	tickEv *sim.Event
	// pendingRx holds in-flight beacon receptions when the MAC collision
	// model is enabled.
	pendingRx []*reception
}

// reception is one in-flight beacon at a receiver (collision model only).
// Receptions are pooled on the Network and each carries its own persistent
// end-of-airtime event, so the MAC model's per-delivery bookkeeping is
// allocation-free at steady state.
type reception struct {
	tx       int32
	end      float64
	pr       float64
	adv      advertisement
	collided bool
	// rx is the receiving node; set while the reception is in flight.
	rx *runtimeNode
	// ev fires endReception for this object at rec.end.
	ev *sim.Event
}

// Network is one fully wired simulation run.
type Network struct {
	cfg      Config
	sched    *sim.Scheduler
	streams  *sim.Streams
	nodes    []*runtimeNode
	grid     *spatial.Grid
	rxThresh float64
	rec      *metrics.Recorder
	// Dense struct-of-arrays node state, indexed by node id (see
	// runtimeNode). down marks crashed nodes; lastM caches the aggregate
	// mobility computed at the last tick (inspection + adaptive BI);
	// tickCount counts completed hello rounds (the first is listen-only);
	// customW holds DCA static weights (nil unless the algorithm needs it).
	down      []bool
	lastM     []float64
	tickCount []int32
	customW   []float64
	// Per-node policy state, allocated only when the policy is enabled so
	// the baseline tick touches nothing new. curBI is the adaptive
	// broadcast policy's current interval (0 = uninitialized, adopt the
	// target); batteryJ and lastDrain carry the energy model's remaining
	// joules and the time idle drain was last charged; rotated marks nodes
	// already forced out of the head role by the battery threshold, so the
	// rotation surcharge sticks (batteries only drain, the node stays below
	// the threshold) and the hand-off fires at most once per node;
	// headRounds counts consecutive clusterhead rounds for adaptive ID
	// reassignment.
	curBI      []float64
	batteryJ   []float64
	lastDrain  []float64
	rotated    []bool
	headRounds []int32
	// depleted counts nodes killed by battery exhaustion.
	depleted int
	// tiled is the conservative-parallel window scheduler; nil when the
	// run is sequential (Tiles <= 1 or a brute-force propagation model).
	tiled *tiledRun
	// obsRec receives engine telemetry; obs.Nop unless Config.Obs set one.
	obsRec obs.Recorder
	// bruteForce disables the spatial-index candidate query for
	// propagation models (shadowing) whose delivery range is unbounded.
	bruteForce bool
	// candidateSlack widens the index query beyond TxRange to cover
	// receiver positions that are up to one beacon interval stale.
	candidateSlack float64
	// beaconJitter randomizes each beacon's phase when the collision
	// model is on (nil otherwise).
	beaconJitter *rand.Rand
	// sampleEv is the persistent cluster-sampler event.
	sampleEv *sim.Event
	// scratch buffers reused across broadcasts and ticks.
	candBuf []int32
	viewBuf []cluster.NeighborView
	// idBuf holds the sorted neighbor ids of the node currently ticking.
	// The canonical ascending order makes timeout emission, the neighbor
	// views handed to the clustering step, and the oracle-mobility fold all
	// independent of Go's randomized map iteration.
	idBuf []int32
	// rxFree and entryFree recycle MAC receptions and neighbor-table
	// entries.
	rxFree    []*reception
	entryFree []*neighborEntry
	// sampler scratch: cluster sizes indexed by head id, the list of head
	// ids touched this sample, the sizes handed to the recorder, the
	// position snapshot, and the reusable topology graph.
	sizeCount []int32
	touched   []int32
	sizesBuf  []int
	topoPos   []geom.Point
	topo      *graph.Adjacency
}

// emit records ev in the trace ring buffer and feeds the observer hook.
// Every simulator event flows through here, so the pair stays consistent:
// the ring holds the recent window for inspection, the observer sees the
// complete stream for digesting.
func (n *Network) emit(ev trace.Event) {
	n.cfg.Trace.Record(ev)
	if n.cfg.Observer != nil {
		n.cfg.Observer(ev)
	}
}

// New builds a network from cfg. The mobility trajectories are generated
// eagerly so errors surface here rather than mid-run.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	streams := sim.NewStreams(cfg.Seed)

	trajs, err := cfg.Mobility.Generate(cfg.N, cfg.Duration, streams)
	if err != nil {
		return nil, fmt.Errorf("simnet: generating mobility: %w", err)
	}

	thresh, err := radio.ThresholdForRange(cfg.Propagation, cfg.TxPower, cfg.TxRange)
	if err != nil {
		return nil, fmt.Errorf("simnet: calibrating rx threshold: %w", err)
	}

	_, shadowing := cfg.Propagation.(*radio.Shadowing)

	cellSize := cfg.TxRange
	if cellSize > cfg.Area.Width()/2 {
		cellSize = cfg.Area.Width() / 2
	}
	grid, err := spatial.NewGrid(cfg.Area, cellSize)
	if err != nil {
		return nil, fmt.Errorf("simnet: building spatial index: %w", err)
	}
	grid.Reserve(cfg.N)

	weights := cfg.CustomWeights
	if cfg.Algorithm.WeightKind == cluster.KindCustom && weights == nil {
		rng := streams.Named("dca-weights")
		weights = make([]float64, cfg.N)
		for i := range weights {
			weights[i] = rng.Float64()
		}
	}

	n := &Network{
		cfg:        cfg,
		sched:      sim.NewScheduler(),
		streams:    streams,
		grid:       grid,
		rxThresh:   thresh,
		rec:        newRecorder(cfg),
		obsRec:     cfg.Obs,
		bruteForce: shadowing || cfg.ForceBruteForce,
		// Nodes can move for up to one full interval between index
		// refreshes; 35 m/s covers every scenario in the paper with
		// margin. Stale candidates are filtered by the exact power test.
		candidateSlack: 35 * cfg.BroadcastInterval * 2,
	}
	n.sched.SetRecorder(n.obsRec)
	n.down = make([]bool, cfg.N)
	n.lastM = make([]float64, cfg.N)
	n.tickCount = make([]int32, cfg.N)
	n.customW = weights
	if cfg.Adaptive != nil {
		n.curBI = make([]float64, cfg.N)
	}
	if cfg.Energy != nil {
		n.batteryJ = make([]float64, cfg.N)
		n.lastDrain = make([]float64, cfg.N)
		n.rotated = make([]bool, cfg.N)
		for i := range n.batteryJ {
			n.batteryJ[i] = cfg.Energy.InitialJ
		}
	}
	if cfg.Algorithm.WeightKind == cluster.KindAdaptiveID {
		n.headRounds = make([]int32, cfg.N)
	}
	if cfg.HelloCollisions {
		n.beaconJitter = streams.Named("beacon-jitter")
	}

	for i := 0; i < cfg.N; i++ {
		id := int32(i)
		var opts []core.Option
		if a := cfg.Algorithm.EWMAAlpha; a > 0 && a < 1 {
			opts = append(opts, core.WithEWMA(a))
		}
		if a := cfg.Algorithm.PairwiseEWMAAlpha; a > 0 && a < 1 {
			opts = append(opts, core.WithPairwiseEWMA(a))
		}
		rn := &runtimeNode{
			id:      id,
			cnode:   cluster.NewNode(id, cfg.Algorithm.Policy),
			tracker: core.NewTracker(opts...),
			traj:    trajs[i],
			table:   make(map[int32]*neighborEntry),
		}
		rn.cnode.OnRoleChange(func(now float64, old, newRole cluster.Role) {
			n.rec.RoleChange(now, id, old, newRole)
			n.obsRec.Add(obs.NetRoleChanges, 1)
			n.emit(trace.Event{
				T: now, Kind: trace.KindRoleChange, Node: id, Other: -1,
				Value: float64(newRole),
			})
		})
		rn.cnode.OnHeadChange(func(now float64, oldHead, newHead int32) {
			n.rec.HeadChange(now, id, oldHead, newHead)
			n.obsRec.Add(obs.NetHeadChanges, 1)
			n.emit(trace.Event{
				T: now, Kind: trace.KindHeadChange, Node: id, Other: newHead,
				Value: float64(oldHead),
			})
		})
		n.nodes = append(n.nodes, rn)
		grid.Update(id, trajs[i].At(0))
	}

	// Arm the hello protocol and the cluster-count sampler now so callers
	// can interleave RunUntil with inspection before calling Run. Each
	// node's tick event is created once and rescheduled forever after.
	jitter := streams.Named("hello-jitter")
	for _, rn := range n.nodes {
		rn := rn
		rn.tickEv = n.sched.NewEvent(func(now float64) { n.tick(rn, now) })
		start := jitter.Float64() * cfg.BroadcastInterval
		if err := n.sched.Reschedule(rn.tickEv, start); err != nil {
			return nil, fmt.Errorf("simnet: scheduling initial beacon: %w", err)
		}
	}
	n.sampleEv = n.sched.NewEvent(n.sampleClusters)
	if err := n.sched.Reschedule(n.sampleEv, cfg.SampleInterval); err != nil {
		return nil, fmt.Errorf("simnet: scheduling sampler: %w", err)
	}
	for _, app := range cfg.Apps {
		app.Start(&appAPI{n: n, rng: streams.Named("app-" + app.Name())})
	}
	for _, f := range cfg.Failures {
		f := f
		rn := n.nodes[f.Node]
		if _, err := n.sched.At(f.At, func(now float64) { n.crash(rn, now) }); err != nil {
			return nil, fmt.Errorf("simnet: scheduling failure: %w", err)
		}
		if f.RecoverAt > 0 {
			if _, err := n.sched.At(f.RecoverAt, func(now float64) { n.recover(rn, now) }); err != nil {
				return nil, fmt.Errorf("simnet: scheduling recovery: %w", err)
			}
		}
	}
	// The tiled-parallel scheduler needs a bounded candidate radius to plan
	// deliveries ahead of time; stochastic propagation (shadowing) and
	// forced brute force have none, so those runs stay sequential.
	if cfg.Tiles > 1 && !n.bruteForce {
		td, err := newTiledRun(n, cellSize)
		if err != nil {
			return nil, fmt.Errorf("simnet: building tiled scheduler: %w", err)
		}
		n.tiled = td
	}
	return n, nil
}

// crash takes a node down: it abdicates any role (observers see the CH
// loss), forgets all protocol state and stops participating. Its next tick
// will see the down flag and stop rescheduling.
func (n *Network) crash(rn *runtimeNode, now float64) {
	if n.down[rn.id] {
		return
	}
	n.down[rn.id] = true
	rn.cnode.Reset(now)
	rn.tracker.Reset()
	for _, e := range rn.table {
		n.releaseEntry(e)
	}
	clear(rn.table)
	for _, rec := range rn.pendingRx {
		n.sched.Cancel(rec.ev)
		n.releaseReception(rec)
	}
	rn.pendingRx = rn.pendingRx[:0]
	n.lastM[rn.id] = 0
	if n.curBI != nil {
		n.curBI[rn.id] = 0 // a recovered node re-adopts the target interval
	}
	if n.headRounds != nil {
		n.headRounds[rn.id] = 0 // head tenure does not survive a crash
	}
	n.emit(trace.Event{T: now, Kind: trace.KindTimeout, Node: rn.id, Other: -1, Value: -1})
}

// recover revives a crashed node as a fresh undecided participant and
// restarts its beacon schedule.
func (n *Network) recover(rn *runtimeNode, now float64) {
	if !n.down[rn.id] {
		return
	}
	n.down[rn.id] = false
	n.tickCount[rn.id] = 0 // listen-only first beacon again
	if n.lastDrain != nil {
		n.lastDrain[rn.id] = now // a crashed radio drew nothing while down
	}
	// Rescheduling the persistent event moves any still-queued stale beacon
	// to now instead of starting a second, doubled beacon chain.
	if err := n.sched.Reschedule(rn.tickEv, now); err != nil {
		return
	}
}

// newRecorder builds the metrics recorder for a validated config.
func newRecorder(cfg Config) *metrics.Recorder {
	rec := metrics.NewRecorder(cfg.N, cfg.Warmup)
	if cfg.TimelineWindow > 0 {
		rec.SetTimelineWindow(cfg.TimelineWindow)
	}
	return rec
}

// Timeline returns the per-window clusterhead-change counts and the window
// size (nil/0 when Config.TimelineWindow was not set).
func (n *Network) Timeline() ([]int, float64) {
	return n.rec.Timeline()
}

// ResidenceDurations returns every recorded clusterhead tenure in seconds.
func (n *Network) ResidenceDurations() []float64 {
	return n.rec.ResidenceDurations()
}

// Result summarizes a completed run.
type Result struct {
	// Metrics carries the paper's evaluation measurements.
	Metrics metrics.Result
	// Algorithm is the algorithm name the run used.
	Algorithm string
	// Seed is the scenario seed.
	Seed uint64
	// FinalHeads is the number of clusterheads at the end of the run.
	FinalHeads int
	// EventsFired is the number of simulator events executed.
	EventsFired uint64
	// EnergyDepleted is the number of nodes that died of battery
	// exhaustion during the run (0 unless Config.Energy was set).
	EnergyDepleted int
}

// Run executes the simulation to completion and returns the metrics.
// A network can only be run once (interleaving RunUntil beforehand is fine).
func (n *Network) Run() (*Result, error) {
	return n.RunContext(context.Background())
}

// runChunk is the simulated-seconds granularity at which RunContext checks
// for cancellation: small enough that a canceled 900 s run stops within a
// few percent of its work, large enough that the check is free.
const runChunk = 10.0

// RunContext executes the simulation to completion, checking ctx between
// scheduler chunks so a canceled or timed-out caller stops promptly
// mid-run. It returns ctx.Err() when interrupted.
func (n *Network) RunContext(ctx context.Context) (*Result, error) {
	// The wall-clock reads exist only to feed telemetry (sim-rate gauge,
	// sampled chunk spans); they are gated on Enabled so the uninstrumented
	// path does no timing work at all. Telemetry never affects the
	// simulation itself.
	instrumented := n.obsRec.Enabled()
	if n.tiled != nil {
		n.tiled.start(n)
		defer n.tiled.stop()
		n.obsRec.Set(obs.TileCount, float64(n.tiled.tiling.Tiles()))
	}
	for now := n.sched.Now(); now < n.cfg.Duration; now = n.sched.Now() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		horizon := now + runChunk
		if horizon > n.cfg.Duration {
			horizon = n.cfg.Duration
		}
		if !instrumented {
			n.advance(horizon)
			continue
		}
		wallStart := time.Now()
		n.advance(horizon)
		wallEnd := time.Now()
		if wall := wallEnd.Sub(wallStart).Seconds(); wall > 0 {
			n.obsRec.Set(obs.SimRate, (horizon-now)/wall)
		}
		n.obsRec.Span(obs.SpanSimChunk, wallStart.UnixNano(), wallEnd.UnixNano())
	}
	n.rec.Finalize(n.cfg.Duration)

	heads := 0
	for _, rn := range n.nodes {
		if rn.cnode.Role() == cluster.RoleHead {
			heads++
		}
	}
	return &Result{
		Metrics:        n.rec.Snapshot(),
		Algorithm:      n.cfg.Algorithm.Name,
		Seed:           n.cfg.Seed,
		FinalHeads:     heads,
		EventsFired:    n.sched.Fired(),
		EnergyDepleted: n.depleted,
	}, nil
}

// tick is one hello-protocol round for one node: purge stale neighbors,
// compute the fresh weight, run the clustering decision, broadcast, and
// schedule the next tick.
//
// The whole round walks the neighbor table in ascending-id order through a
// single sorted scratch pass: timeouts are emitted canonically, the views
// handed to the clustering step are id-ordered, and the surviving id list
// feeds the oracle-mobility fold. Nothing here depends on Go's randomized
// map iteration, so repeated runs are bit-identical.
func (n *Network) tick(rn *runtimeNode, now float64) {
	if n.down[rn.id] {
		return // crashed: the beacon chain stops until recovery
	}
	// Charge the idle drain accrued since the last accounting point and
	// kill the node if its battery is spent. Death reuses the crash path —
	// neighbors time the node out, its cluster re-forms — and is permanent:
	// batteries do not recharge, so no recovery is scheduled.
	if n.batteryJ != nil {
		n.batteryJ[rn.id] -= n.cfg.Energy.IdleCost(now - n.lastDrain[rn.id])
		n.lastDrain[rn.id] = now
		if n.batteryJ[rn.id] <= 0 {
			n.depleted++
			n.crash(rn, now)
			return
		}
	}
	// Purge neighbors that missed their beacons (Table 1: TP).
	tp := n.cfg.TimeoutPeriod
	rn.tracker.Expire(now, tp)
	ids := n.idBuf[:0]
	for id := range rn.table {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	live := ids[:0] // compact survivors into the same backing array
	for _, id := range ids {
		e := rn.table[id]
		if e.lastHeard < now-tp {
			delete(rn.table, id)
			n.releaseEntry(e)
			n.obsRec.Add(obs.NetNeighborTimeouts, 1)
			n.emit(trace.Event{
				T: now, Kind: trace.KindTimeout, Node: rn.id, Other: id,
			})
			continue
		}
		live = append(live, id)
	}
	n.idBuf = ids

	n.lastM[rn.id] = rn.tracker.Aggregate()
	wasHead := rn.cnode.Role() == cluster.RoleHead
	weight := n.weightOf(rn, live)

	// The first tick is listen-only: the node has had no chance to hear
	// anyone, and electing heads blind would register a storm of spurious
	// clusterhead changes for every algorithm alike.
	if n.tickCount[rn.id] > 0 {
		views := n.viewBuf[:0]
		for _, id := range live {
			e := rn.table[id]
			views = append(views, cluster.NeighborView{
				ID:     id,
				Weight: e.weight,
				Role:   e.role,
				Head:   e.head,
			})
		}
		n.viewBuf = views
		rn.cnode.Step(now, weight, views)
	} else {
		// Keep the advertised weight fresh even while listening.
		rn.cnode.SetWeight(weight)
	}
	n.tickCount[rn.id]++

	// Rotation policies. LCC never deposes a head unless a rival head walks
	// into range, so both rotation mechanisms must force the hand-off from
	// outside the clustering rules: the node resigns, and the weight it
	// advertises in this round's beacon (recomputed below) carries the
	// penalty that keeps it from winning the vacated role straight back.
	resigned := false

	// Adaptive ID reassignment's tenure counter: one consecutive round of
	// head service per beacon. Completing ReassignRounds of service expires
	// the tenure — the node resigns and its effective ID (headRounds/rr*N)
	// jumps behind every fresh node. The counter holds while undecided so
	// the bumped ID stays advertised through re-election, and resets only
	// once the node has joined a new head as a member.
	if n.headRounds != nil {
		switch rn.cnode.Role() {
		case cluster.RoleHead:
			n.headRounds[rn.id]++
			if rr := int32(n.cfg.Algorithm.ReassignRounds); rr > 0 && n.headRounds[rn.id]%rr == 0 {
				resigned = true
			}
		case cluster.RoleMember:
			n.headRounds[rn.id] = 0
		}
	}

	// Energy rotation: a head whose battery falls under the rotation
	// threshold hands the role off once, after at least one full round of
	// service — wasHead gates out a node elected this very Step, which
	// would otherwise resign in the same tick with zero tenure whenever
	// the whole cluster is already below the threshold. The rotated mark
	// is permanent — batteries only drain — and keeps the election
	// surcharge applied, so an exactly-tied battery cannot re-elect the
	// ex-head by lowest ID.
	if e := n.cfg.Energy; e != nil && e.ElectionWeight > 0 && e.RotateFrac > 0 &&
		!n.rotated[rn.id] && wasHead && rn.cnode.Role() == cluster.RoleHead &&
		e.Fraction(n.batteryJ[rn.id]) < e.RotateFrac {
		n.rotated[rn.id] = true
		resigned = true
	}
	if resigned {
		rn.cnode.Resign(now)
		rn.cnode.SetWeight(n.weightOf(rn, live))
	}

	n.broadcast(rn, now)

	interval := n.cfg.BroadcastInterval
	if a := n.cfg.Adaptive; a != nil {
		interval = a.Next(n.curBI[rn.id], n.lastM[rn.id])
		n.curBI[rn.id] = interval
	}
	if n.beaconJitter != nil {
		// Per-beacon phase jitter (±10%) so fixed schedules cannot
		// collide persistently under the MAC model.
		interval *= 1 + 0.2*(n.beaconJitter.Float64()-0.5)
	}
	if err := n.sched.Reschedule(rn.tickEv, now+interval); err != nil {
		// Scheduling forward from a valid now cannot fail; if it does, the
		// simulation is corrupt and stopping beacons is the safest course.
		n.emit(trace.Event{T: now, Kind: trace.KindDrop, Node: rn.id, Other: -1})
	}
}

// weightOf computes the node's current election weight per the algorithm's
// weight kind. neighborIDs is the node's current neighbor-id list in
// ascending order (tick's post-purge survivors).
func (n *Network) weightOf(rn *runtimeNode, neighborIDs []int32) cluster.Weight {
	var w cluster.Weight
	switch n.cfg.Algorithm.WeightKind {
	case cluster.KindID:
		w = cluster.Weight{Value: float64(rn.id), ID: rn.id}
	case cluster.KindMobility:
		value := n.lastM[rn.id]
		if c := n.cfg.CombinedDegreeWeight; c > 0 {
			dev := len(rn.table) - n.cfg.IdealDegree
			if dev < 0 {
				dev = -dev
			}
			value += c * float64(dev)
		}
		w = cluster.Weight{Value: value, ID: rn.id}
	case cluster.KindDegree:
		w = cluster.Weight{Value: -float64(len(rn.table)), ID: rn.id}
	case cluster.KindCustom:
		w = cluster.Weight{Value: n.customW[rn.id], ID: rn.id}
	case cluster.KindOracleMobility:
		w = cluster.Weight{Value: n.oracleMobility(rn, neighborIDs), ID: rn.id}
	case cluster.KindAdaptiveID:
		// Adaptive ID reassignment: every completed ReassignRounds of
		// uninterrupted head service pushes the effective ID behind all N
		// fresh nodes. Both terms are exact small integers in float64, so
		// the ordering is deterministic across platforms.
		value := float64(rn.id)
		if rr := n.cfg.Algorithm.ReassignRounds; rr > 0 {
			value += float64(n.headRounds[rn.id]/int32(rr)) * float64(n.cfg.N)
		}
		w = cluster.Weight{Value: value, ID: rn.id}
	default:
		w = cluster.Weight{Value: float64(rn.id), ID: rn.id}
	}
	// Energy-weighted election rides on top of any base weight: a draining
	// battery worsens the advertised weight, and a head under the rotation
	// threshold — or a node already rotated out of the role — takes an
	// extra surcharge so a healthier rival wins the election instead.
	if e := n.cfg.Energy; e != nil && e.ElectionWeight > 0 {
		surcharge := rn.cnode.Role() == cluster.RoleHead || n.rotated[rn.id]
		w.Value += e.Penalty(n.batteryJ[rn.id], surcharge)
	}
	return w
}

// oracleMobility computes the GPS-oracle analog of the aggregate local
// mobility: the variance about zero of the ground-truth range rate (m/s)
// toward every neighbor currently in the hello table. It measures exactly
// what the RxPr-ratio metric estimates, but from the trajectories directly.
//
// neighborIDs must be in ascending order: floating-point addition is not
// associative, so folding sumSq in map order would make the low bits of the
// weight — and with them election outcomes — vary run to run.
func (n *Network) oracleMobility(rn *runtimeNode, neighborIDs []int32) float64 {
	const dt = 0.5 // range-rate differencing window in seconds
	now := n.sched.Now()
	t0 := now - dt
	if t0 < 0 {
		t0 = 0
	}
	if now <= t0 {
		return 0
	}
	selfNow := rn.traj.At(now)
	selfThen := rn.traj.At(t0)
	var sumSq float64
	for _, id := range neighborIDs {
		other := n.nodes[id]
		dNow := selfNow.Dist(other.traj.At(now))
		dThen := selfThen.Dist(other.traj.At(t0))
		rate := (dNow - dThen) / (now - t0)
		sumSq += rate * rate
	}
	if len(neighborIDs) == 0 {
		return 0
	}
	return sumSq / float64(len(neighborIDs))
}

// helloBytes is the payload size of one hello beacon. The base carries the
// sender id, role and clusterhead (the Lowest-ID protocol's needs); a
// mobility-weighted algorithm stamps its aggregate M as a double — the
// paper's "increased by 8 bytes only" observation (Section 4.1 footnote 7).
func (n *Network) helloBytes() int {
	const base = 12 // id (4) + role (1, padded) + head (4) + seq/flags
	switch n.cfg.Algorithm.WeightKind {
	case cluster.KindMobility, cluster.KindOracleMobility, cluster.KindCustom:
		return base + 8 // double-precision weight
	case cluster.KindDegree, cluster.KindAdaptiveID:
		return base + 4 // degree counter / reassignment epoch
	default:
		return base
	}
}

// broadcast delivers rn's hello to every node whose received power clears
// the threshold, subject to the loss model. Candidates are always visited in
// ascending receiver-id order — the canonical delivery order every execution
// mode (brute force, grid query, tiled plan) reproduces exactly, which is
// what keeps the loss model's RNG draw sequence identical across them.
func (n *Network) broadcast(rn *runtimeNode, now float64) {
	n.rec.CountBroadcast(n.helloBytes())
	n.obsRec.Add(obs.NetBeaconsSent, 1)
	if n.batteryJ != nil {
		// Transmit cost; depletion is checked at the next tick, matching a
		// radio that completes the frame its amplifier already started.
		n.batteryJ[rn.id] -= n.cfg.Energy.TxCost(n.helloBytes())
	}

	// On the tiled scheduler, a tile worker usually precomputed this tick's
	// exact transmit position and threshold-passing receiver set during the
	// window's parallel phase; consume the plan. A plan can legitimately be
	// missing (the node's beacon was rescheduled mid-window by a crash
	// recovery) — fall through to the inline path, which computes the same
	// thing on the spot.
	if td := n.tiled; td != nil {
		if p := &td.plans[rn.id]; p.t == now {
			n.obsRec.Add(obs.TilePlannedTicks, 1)
			txPos := p.txPos
			n.grid.Update(rn.id, txPos)
			n.emit(trace.Event{
				T: now, Kind: trace.KindBroadcast, Node: rn.id, Other: -1,
				Value: rn.cnode.Weight().Value,
			})
			adv := advertisement{
				weight: rn.cnode.Weight(),
				role:   rn.cnode.Role(),
				head:   rn.cnode.Head(),
			}
			for _, d := range p.deliveries {
				n.deliverAboveThreshold(rn, n.nodes[d.id], now, d.pr, adv)
			}
			return
		}
		n.obsRec.Add(obs.TileFallbackTicks, 1)
	}

	txPos := rn.traj.At(now)
	n.grid.Update(rn.id, txPos)
	n.emit(trace.Event{
		T: now, Kind: trace.KindBroadcast, Node: rn.id, Other: -1,
		Value: rn.cnode.Weight().Value,
	})

	adv := advertisement{
		weight: rn.cnode.Weight(),
		role:   rn.cnode.Role(),
		head:   rn.cnode.Head(),
	}

	if n.bruteForce {
		for _, rx := range n.nodes {
			if rx.id != rn.id {
				n.tryDeliver(rn, rx, txPos, now, adv)
			}
		}
		return
	}
	n.candBuf = n.grid.QueryRange(txPos, n.cfg.TxRange+n.candidateSlack, rn.id, n.candBuf[:0])
	slices.Sort(n.candBuf) // canonical ascending delivery order
	for _, id := range n.candBuf {
		n.tryDeliver(rn, n.nodes[id], txPos, now, adv)
	}
}

// advertisement is the hello payload: the paper's hello message carries the
// sender's aggregate mobility (8 bytes) plus its clustering state.
type advertisement struct {
	weight cluster.Weight
	role   cluster.Role
	head   int32
}

// tryDeliver computes the exact received power at rx and delivers the hello
// if it clears the threshold, survives the loss model, and (when the MAC
// collision model is on) does not overlap another reception.
func (n *Network) tryDeliver(tx, rx *runtimeNode, txPos geom.Point, now float64, adv advertisement) {
	if n.down[rx.id] {
		return
	}
	rxPos := rx.traj.At(now)
	d := txPos.Dist(rxPos)
	pr := n.cfg.Propagation.RxPower(n.cfg.TxPower, d)
	if pr < n.rxThresh {
		return
	}
	n.deliverAboveThreshold(tx, rx, now, pr, adv)
}

// deliverAboveThreshold is the post-threshold tail of a delivery: the loss
// model's draw, then the MAC deferral or the immediate hand-up. The tiled
// scheduler enters here directly with the received power a tile worker
// precomputed; the down re-check makes a plan computed before a mid-window
// crash land exactly like the sequential path (which checks down before the
// power math — a pure computation, so the order is unobservable).
func (n *Network) deliverAboveThreshold(tx, rx *runtimeNode, now, pr float64, adv advertisement) {
	if n.down[rx.id] {
		return
	}
	if n.cfg.Loss.Drops(tx.id, rx.id, now) {
		n.rec.CountDrop()
		n.obsRec.Add(obs.NetDrops, 1)
		n.emit(trace.Event{
			T: now, Kind: trace.KindDrop, Node: tx.id, Other: rx.id, Value: pr,
		})
		return
	}
	if n.cfg.HelloCollisions {
		n.deferDelivery(tx, rx, now, pr, adv)
		return
	}
	n.applyHello(tx.id, rx, now, pr, adv)
}

// newReception draws a reception from the pool. A reception's end-of-airtime
// event is created once, bound to the object for life, and re-armed with
// Reschedule on every reuse.
func (n *Network) newReception() *reception {
	if k := len(n.rxFree); k > 0 {
		rec := n.rxFree[k-1]
		n.rxFree[k-1] = nil
		n.rxFree = n.rxFree[:k-1]
		return rec
	}
	rec := &reception{}
	rec.ev = n.sched.NewEvent(func(t float64) { n.endReception(rec, t) })
	return rec
}

// releaseReception returns a no-longer-pending reception to the pool.
func (n *Network) releaseReception(rec *reception) {
	rec.rx = nil
	rec.collided = false
	n.rxFree = append(n.rxFree, rec)
}

// newEntry draws a neighbor-table entry from the pool.
func (n *Network) newEntry() *neighborEntry {
	if k := len(n.entryFree); k > 0 {
		e := n.entryFree[k-1]
		n.entryFree[k-1] = nil
		n.entryFree = n.entryFree[:k-1]
		return e
	}
	return &neighborEntry{}
}

// releaseEntry returns a purged neighbor-table entry to the pool.
func (n *Network) releaseEntry(e *neighborEntry) {
	*e = neighborEntry{}
	n.entryFree = append(n.entryFree, e)
}

// deferDelivery models the beacon's airtime: the packet is handed up only
// at the end of its transmission, and any overlapping reception at the same
// receiver destroys both (no capture).
func (n *Network) deferDelivery(tx, rx *runtimeNode, now, pr float64, adv advertisement) {
	rec := n.newReception()
	rec.tx, rec.end, rec.pr, rec.adv, rec.rx = tx.id, now+n.cfg.HelloAirtime, pr, adv, rx
	// Mark collisions against still-in-flight receptions and prune the
	// rest lazily.
	live := rx.pendingRx[:0]
	for _, other := range rx.pendingRx {
		if other.end > now {
			other.collided = true
			rec.collided = true
			live = append(live, other)
		}
	}
	rx.pendingRx = append(live, rec)
	if err := n.sched.Reschedule(rec.ev, rec.end); err != nil {
		rx.pendingRx = rx.pendingRx[:len(rx.pendingRx)-1]
		n.releaseReception(rec)
	}
}

// endReception is a reception's end-of-airtime: the packet is handed up to
// the receiver unless it collided (or the receiver crashed mid-airtime), and
// the reception object goes back to the pool either way.
func (n *Network) endReception(rec *reception, t float64) {
	rx := rec.rx
	for i, r := range rx.pendingRx {
		if r == rec {
			rx.pendingRx = append(rx.pendingRx[:i], rx.pendingRx[i+1:]...)
			break
		}
	}
	txID, pr, adv, collided := rec.tx, rec.pr, rec.adv, rec.collided
	n.releaseReception(rec)
	if n.down[rx.id] {
		return
	}
	if collided {
		n.rec.CountCollision()
		n.obsRec.Add(obs.NetCollisions, 1)
		n.emit(trace.Event{
			T: t, Kind: trace.KindDrop, Node: txID, Other: rx.id, Value: pr,
		})
		return
	}
	n.applyHello(txID, rx, t, pr, adv)
}

// applyHello is the receiver's MAC handing up one successfully received
// beacon: it records the measured RxPr (equation 1's input) and updates the
// neighbor table with the advertised clustering state.
func (n *Network) applyHello(txID int32, rx *runtimeNode, now, pr float64, adv advertisement) {
	n.rec.CountDelivery()
	n.obsRec.Add(obs.NetDeliveries, 1)
	if n.batteryJ != nil {
		n.batteryJ[rx.id] -= n.cfg.Energy.RxCost(n.helloBytes())
	}
	n.emit(trace.Event{
		T: now, Kind: trace.KindDeliver, Node: txID, Other: rx.id, Value: pr,
	})
	if err := rx.tracker.Observe(txID, now, pr); err != nil {
		// RxPower of a validated model is always positive; skip defensively.
		return
	}
	e, ok := rx.table[txID]
	if !ok {
		e = n.newEntry()
		rx.table[txID] = e
		n.obsRec.Add(obs.NetNeighborAdds, 1)
	}
	e.lastHeard = now
	e.weight = adv.weight
	e.role = adv.role
	e.head = adv.head
}

// sampleClusters periodically counts heads, gateways and cluster sizes for
// Figure 4 and the size-distribution metrics. All bookkeeping runs over
// reused buffers — cluster sizes in a dense head-indexed table instead of a
// per-sample map, topology through an in-place graph rebuild — so the
// sampler costs no allocations at steady state.
func (n *Network) sampleClusters(now float64) {
	heads, gateways, noHead := 0, 0, 0
	if cap(n.sizeCount) < len(n.nodes) {
		n.sizeCount = make([]int32, len(n.nodes))
	}
	sizeCount := n.sizeCount[:len(n.nodes)]
	touched := n.touched[:0]
	for _, rn := range n.nodes {
		if n.down[rn.id] {
			continue
		}
		switch rn.cnode.Role() {
		case cluster.RoleHead:
			if sizeCount[rn.id] == 0 {
				touched = append(touched, rn.id)
			}
			sizeCount[rn.id]++
			heads++
		case cluster.RoleMember:
			if h := rn.cnode.Head(); h >= 0 && int(h) < len(sizeCount) {
				if sizeCount[h] == 0 {
					touched = append(touched, h)
				}
				sizeCount[h]++
			} else {
				// A member without a head violates the state-machine
				// invariant; count it as its own degenerate cluster the way
				// the NoHead map bucket used to.
				noHead++
			}
			audible := 0
			for _, e := range rn.table {
				if e.role == cluster.RoleHead {
					audible++
				}
			}
			if audible >= 2 {
				gateways++
			}
		}
	}
	n.rec.SampleClusters(now, heads, gateways)
	if len(touched) > 0 || noHead > 0 {
		sizes := n.sizesBuf[:0]
		for _, h := range touched {
			sizes = append(sizes, int(sizeCount[h]))
			sizeCount[h] = 0
		}
		if noHead > 0 {
			sizes = append(sizes, noHead)
		}
		n.sizesBuf = sizes
		n.rec.SampleClusterSizes(now, sizes)
	}
	n.touched = touched[:0]

	// The connectivity snapshot is the sampler's O(N^2) part; on the tiled
	// scheduler a worker precomputed it for this exact instant during the
	// window's parallel phase (the computation is pure in the trajectories,
	// so the cached component stats are bit-identical to the inline ones).
	if td := n.tiled; td != nil && td.samplePlan.t == now {
		n.rec.SampleTopology(now, td.samplePlan.comps, td.samplePlan.largest, len(n.nodes))
	} else {
		pos := n.topoPos[:0]
		for _, rn := range n.nodes {
			pos = append(pos, rn.traj.At(now))
		}
		n.topoPos = pos
		if n.topo == nil {
			n.topo = &graph.Adjacency{}
		}
		n.topo.Rebuild(pos, n.cfg.TxRange)
		comps, largest := n.topo.ComponentStats()
		n.rec.SampleTopology(now, comps, largest, len(n.nodes))
	}
	if now+n.cfg.SampleInterval <= n.cfg.Duration {
		if err := n.sched.Reschedule(n.sampleEv, now+n.cfg.SampleInterval); err != nil {
			return
		}
	}
}
