package simnet

import (
	"context"
	"fmt"
	"math/rand/v2"

	"mobic/internal/cluster"
	"mobic/internal/core"
	"mobic/internal/geom"
	"mobic/internal/metrics"
	"mobic/internal/mobility"
	"mobic/internal/radio"
	"mobic/internal/sim"
	"mobic/internal/spatial"
	"mobic/internal/trace"
)

// neighborEntry is what the hello protocol knows about one neighbor from its
// most recent beacon.
type neighborEntry struct {
	lastHeard float64
	weight    cluster.Weight
	role      cluster.Role
	head      int32
}

// runtimeNode is the per-node simulation state.
type runtimeNode struct {
	id      int32
	cnode   *cluster.Node
	tracker *core.Tracker
	traj    *mobility.Trajectory
	table   map[int32]*neighborEntry
	customW float64
	ticks   int
	// lastM caches the aggregate mobility computed at the last tick, for
	// inspection and the adaptive-BI extension.
	lastM float64
	// pendingRx holds in-flight beacon receptions when the MAC collision
	// model is enabled.
	pendingRx []*reception
	// down marks a crashed node: no beacons, no receptions, no state.
	down bool
}

// reception is one in-flight beacon at a receiver (collision model only).
type reception struct {
	tx       int32
	end      float64
	pr       float64
	adv      advertisement
	collided bool
}

// Network is one fully wired simulation run.
type Network struct {
	cfg      Config
	sched    *sim.Scheduler
	streams  *sim.Streams
	nodes    []*runtimeNode
	grid     *spatial.Grid
	rxThresh float64
	rec      *metrics.Recorder
	// bruteForce disables the spatial-index candidate query for
	// propagation models (shadowing) whose delivery range is unbounded.
	bruteForce bool
	// candidateSlack widens the index query beyond TxRange to cover
	// receiver positions that are up to one beacon interval stale.
	candidateSlack float64
	// beaconJitter randomizes each beacon's phase when the collision
	// model is on (nil otherwise).
	beaconJitter *rand.Rand
	// scratch buffers reused across broadcasts.
	candBuf []int32
	viewBuf []cluster.NeighborView
}

// emit records ev in the trace ring buffer and feeds the observer hook.
// Every simulator event flows through here, so the pair stays consistent:
// the ring holds the recent window for inspection, the observer sees the
// complete stream for digesting.
func (n *Network) emit(ev trace.Event) {
	n.cfg.Trace.Record(ev)
	if n.cfg.Observer != nil {
		n.cfg.Observer(ev)
	}
}

// New builds a network from cfg. The mobility trajectories are generated
// eagerly so errors surface here rather than mid-run.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	streams := sim.NewStreams(cfg.Seed)

	trajs, err := cfg.Mobility.Generate(cfg.N, cfg.Duration, streams)
	if err != nil {
		return nil, fmt.Errorf("simnet: generating mobility: %w", err)
	}

	thresh, err := radio.ThresholdForRange(cfg.Propagation, cfg.TxPower, cfg.TxRange)
	if err != nil {
		return nil, fmt.Errorf("simnet: calibrating rx threshold: %w", err)
	}

	_, shadowing := cfg.Propagation.(*radio.Shadowing)

	cellSize := cfg.TxRange
	if cellSize > cfg.Area.Width()/2 {
		cellSize = cfg.Area.Width() / 2
	}
	grid, err := spatial.NewGrid(cfg.Area, cellSize)
	if err != nil {
		return nil, fmt.Errorf("simnet: building spatial index: %w", err)
	}

	weights := cfg.CustomWeights
	if cfg.Algorithm.WeightKind == cluster.KindCustom && weights == nil {
		rng := streams.Named("dca-weights")
		weights = make([]float64, cfg.N)
		for i := range weights {
			weights[i] = rng.Float64()
		}
	}

	n := &Network{
		cfg:        cfg,
		sched:      sim.NewScheduler(),
		streams:    streams,
		grid:       grid,
		rxThresh:   thresh,
		rec:        newRecorder(cfg),
		bruteForce: shadowing || cfg.ForceBruteForce,
		// Nodes can move for up to one full interval between index
		// refreshes; 35 m/s covers every scenario in the paper with
		// margin. Stale candidates are filtered by the exact power test.
		candidateSlack: 35 * cfg.BroadcastInterval * 2,
	}
	if cfg.HelloCollisions {
		n.beaconJitter = streams.Named("beacon-jitter")
	}

	for i := 0; i < cfg.N; i++ {
		id := int32(i)
		var opts []core.Option
		if a := cfg.Algorithm.EWMAAlpha; a > 0 && a < 1 {
			opts = append(opts, core.WithEWMA(a))
		}
		if a := cfg.Algorithm.PairwiseEWMAAlpha; a > 0 && a < 1 {
			opts = append(opts, core.WithPairwiseEWMA(a))
		}
		rn := &runtimeNode{
			id:      id,
			cnode:   cluster.NewNode(id, cfg.Algorithm.Policy),
			tracker: core.NewTracker(opts...),
			traj:    trajs[i],
			table:   make(map[int32]*neighborEntry),
		}
		if weights != nil {
			rn.customW = weights[i]
		}
		rn.cnode.OnRoleChange(func(now float64, old, newRole cluster.Role) {
			n.rec.RoleChange(now, id, old, newRole)
			n.emit(trace.Event{
				T: now, Kind: trace.KindRoleChange, Node: id, Other: -1,
				Value: float64(newRole),
			})
		})
		rn.cnode.OnHeadChange(func(now float64, oldHead, newHead int32) {
			n.rec.HeadChange(now, id, oldHead, newHead)
			n.emit(trace.Event{
				T: now, Kind: trace.KindHeadChange, Node: id, Other: newHead,
				Value: float64(oldHead),
			})
		})
		n.nodes = append(n.nodes, rn)
		grid.Update(id, trajs[i].At(0))
	}

	// Arm the hello protocol and the cluster-count sampler now so callers
	// can interleave RunUntil with inspection before calling Run.
	jitter := streams.Named("hello-jitter")
	for _, rn := range n.nodes {
		rn := rn
		start := jitter.Float64() * cfg.BroadcastInterval
		if _, err := n.sched.At(start, func(now float64) { n.tick(rn, now) }); err != nil {
			return nil, fmt.Errorf("simnet: scheduling initial beacon: %w", err)
		}
	}
	if _, err := n.sched.At(cfg.SampleInterval, n.sampleClusters); err != nil {
		return nil, fmt.Errorf("simnet: scheduling sampler: %w", err)
	}
	for _, app := range cfg.Apps {
		app.Start(&appAPI{n: n, rng: streams.Named("app-" + app.Name())})
	}
	for _, f := range cfg.Failures {
		f := f
		rn := n.nodes[f.Node]
		if _, err := n.sched.At(f.At, func(now float64) { n.crash(rn, now) }); err != nil {
			return nil, fmt.Errorf("simnet: scheduling failure: %w", err)
		}
		if f.RecoverAt > 0 {
			if _, err := n.sched.At(f.RecoverAt, func(now float64) { n.recover(rn, now) }); err != nil {
				return nil, fmt.Errorf("simnet: scheduling recovery: %w", err)
			}
		}
	}
	return n, nil
}

// crash takes a node down: it abdicates any role (observers see the CH
// loss), forgets all protocol state and stops participating. Its next tick
// will see the down flag and stop rescheduling.
func (n *Network) crash(rn *runtimeNode, now float64) {
	if rn.down {
		return
	}
	rn.down = true
	rn.cnode.Reset(now)
	rn.tracker.Reset()
	clear(rn.table)
	rn.pendingRx = nil
	rn.lastM = 0
	n.emit(trace.Event{T: now, Kind: trace.KindTimeout, Node: rn.id, Other: -1, Value: -1})
}

// recover revives a crashed node as a fresh undecided participant and
// restarts its beacon schedule.
func (n *Network) recover(rn *runtimeNode, now float64) {
	if !rn.down {
		return
	}
	rn.down = false
	rn.ticks = 0 // listen-only first beacon again
	if _, err := n.sched.After(0, func(t float64) { n.tick(rn, t) }); err != nil {
		return
	}
}

// newRecorder builds the metrics recorder for a validated config.
func newRecorder(cfg Config) *metrics.Recorder {
	rec := metrics.NewRecorder(cfg.N, cfg.Warmup)
	if cfg.TimelineWindow > 0 {
		rec.SetTimelineWindow(cfg.TimelineWindow)
	}
	return rec
}

// Timeline returns the per-window clusterhead-change counts and the window
// size (nil/0 when Config.TimelineWindow was not set).
func (n *Network) Timeline() ([]int, float64) {
	return n.rec.Timeline()
}

// ResidenceDurations returns every recorded clusterhead tenure in seconds.
func (n *Network) ResidenceDurations() []float64 {
	return n.rec.ResidenceDurations()
}

// Result summarizes a completed run.
type Result struct {
	// Metrics carries the paper's evaluation measurements.
	Metrics metrics.Result
	// Algorithm is the algorithm name the run used.
	Algorithm string
	// Seed is the scenario seed.
	Seed uint64
	// FinalHeads is the number of clusterheads at the end of the run.
	FinalHeads int
	// EventsFired is the number of simulator events executed.
	EventsFired uint64
}

// Run executes the simulation to completion and returns the metrics.
// A network can only be run once (interleaving RunUntil beforehand is fine).
func (n *Network) Run() (*Result, error) {
	return n.RunContext(context.Background())
}

// runChunk is the simulated-seconds granularity at which RunContext checks
// for cancellation: small enough that a canceled 900 s run stops within a
// few percent of its work, large enough that the check is free.
const runChunk = 10.0

// RunContext executes the simulation to completion, checking ctx between
// scheduler chunks so a canceled or timed-out caller stops promptly
// mid-run. It returns ctx.Err() when interrupted.
func (n *Network) RunContext(ctx context.Context) (*Result, error) {
	for now := n.sched.Now(); now < n.cfg.Duration; now = n.sched.Now() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		horizon := now + runChunk
		if horizon > n.cfg.Duration {
			horizon = n.cfg.Duration
		}
		n.sched.RunUntil(horizon)
	}
	n.rec.Finalize(n.cfg.Duration)

	heads := 0
	for _, rn := range n.nodes {
		if rn.cnode.Role() == cluster.RoleHead {
			heads++
		}
	}
	return &Result{
		Metrics:     n.rec.Snapshot(),
		Algorithm:   n.cfg.Algorithm.Name,
		Seed:        n.cfg.Seed,
		FinalHeads:  heads,
		EventsFired: n.sched.Fired(),
	}, nil
}

// tick is one hello-protocol round for one node: purge stale neighbors,
// compute the fresh weight, run the clustering decision, broadcast, and
// schedule the next tick.
func (n *Network) tick(rn *runtimeNode, now float64) {
	if rn.down {
		return // crashed: the beacon chain stops until recovery
	}
	// Purge neighbors that missed their beacons (Table 1: TP).
	tp := n.cfg.TimeoutPeriod
	rn.tracker.Expire(now, tp)
	for id, e := range rn.table {
		if e.lastHeard < now-tp {
			delete(rn.table, id)
			n.emit(trace.Event{
				T: now, Kind: trace.KindTimeout, Node: rn.id, Other: id,
			})
		}
	}

	rn.lastM = rn.tracker.Aggregate()
	weight := n.weightOf(rn)

	// The first tick is listen-only: the node has had no chance to hear
	// anyone, and electing heads blind would register a storm of spurious
	// clusterhead changes for every algorithm alike.
	if rn.ticks > 0 {
		views := n.viewBuf[:0]
		for id, e := range rn.table {
			views = append(views, cluster.NeighborView{
				ID:     id,
				Weight: e.weight,
				Role:   e.role,
				Head:   e.head,
			})
		}
		n.viewBuf = views
		rn.cnode.Step(now, weight, views)
	} else {
		// Keep the advertised weight fresh even while listening.
		rn.cnode.SetWeight(weight)
	}
	rn.ticks++

	n.broadcast(rn, now)

	interval := n.cfg.BroadcastInterval
	if n.cfg.Adaptive != nil {
		interval = n.cfg.Adaptive.Interval(rn.lastM)
	}
	if n.beaconJitter != nil {
		// Per-beacon phase jitter (±10%) so fixed schedules cannot
		// collide persistently under the MAC model.
		interval *= 1 + 0.2*(n.beaconJitter.Float64()-0.5)
	}
	if _, err := n.sched.After(interval, func(t float64) { n.tick(rn, t) }); err != nil {
		// Scheduling forward from a valid now cannot fail; if it does, the
		// simulation is corrupt and stopping beacons is the safest course.
		n.emit(trace.Event{T: now, Kind: trace.KindDrop, Node: rn.id, Other: -1})
	}
}

// weightOf computes the node's current election weight per the algorithm's
// weight kind.
func (n *Network) weightOf(rn *runtimeNode) cluster.Weight {
	switch n.cfg.Algorithm.WeightKind {
	case cluster.KindID:
		return cluster.Weight{Value: float64(rn.id), ID: rn.id}
	case cluster.KindMobility:
		value := rn.lastM
		if c := n.cfg.CombinedDegreeWeight; c > 0 {
			dev := len(rn.table) - n.cfg.IdealDegree
			if dev < 0 {
				dev = -dev
			}
			value += c * float64(dev)
		}
		return cluster.Weight{Value: value, ID: rn.id}
	case cluster.KindDegree:
		return cluster.Weight{Value: -float64(len(rn.table)), ID: rn.id}
	case cluster.KindCustom:
		return cluster.Weight{Value: rn.customW, ID: rn.id}
	case cluster.KindOracleMobility:
		return cluster.Weight{Value: n.oracleMobility(rn), ID: rn.id}
	default:
		return cluster.Weight{Value: float64(rn.id), ID: rn.id}
	}
}

// oracleMobility computes the GPS-oracle analog of the aggregate local
// mobility: the variance about zero of the ground-truth range rate (m/s)
// toward every neighbor currently in the hello table. It measures exactly
// what the RxPr-ratio metric estimates, but from the trajectories directly.
func (n *Network) oracleMobility(rn *runtimeNode) float64 {
	const dt = 0.5 // range-rate differencing window in seconds
	now := n.sched.Now()
	t0 := now - dt
	if t0 < 0 {
		t0 = 0
	}
	if now <= t0 {
		return 0
	}
	selfNow := rn.traj.At(now)
	selfThen := rn.traj.At(t0)
	var sumSq float64
	count := 0
	for id := range rn.table {
		other := n.nodes[id]
		dNow := selfNow.Dist(other.traj.At(now))
		dThen := selfThen.Dist(other.traj.At(t0))
		rate := (dNow - dThen) / (now - t0)
		sumSq += rate * rate
		count++
	}
	if count == 0 {
		return 0
	}
	return sumSq / float64(count)
}

// helloBytes is the payload size of one hello beacon. The base carries the
// sender id, role and clusterhead (the Lowest-ID protocol's needs); a
// mobility-weighted algorithm stamps its aggregate M as a double — the
// paper's "increased by 8 bytes only" observation (Section 4.1 footnote 7).
func (n *Network) helloBytes() int {
	const base = 12 // id (4) + role (1, padded) + head (4) + seq/flags
	switch n.cfg.Algorithm.WeightKind {
	case cluster.KindMobility, cluster.KindOracleMobility, cluster.KindCustom:
		return base + 8 // double-precision weight
	case cluster.KindDegree:
		return base + 4 // degree counter
	default:
		return base
	}
}

// broadcast delivers rn's hello to every node whose received power clears
// the threshold, subject to the loss model.
func (n *Network) broadcast(rn *runtimeNode, now float64) {
	n.rec.CountBroadcast(n.helloBytes())
	txPos := rn.traj.At(now)
	n.grid.Update(rn.id, txPos)
	n.emit(trace.Event{
		T: now, Kind: trace.KindBroadcast, Node: rn.id, Other: -1,
		Value: rn.cnode.Weight().Value,
	})

	adv := advertisement{
		weight: rn.cnode.Weight(),
		role:   rn.cnode.Role(),
		head:   rn.cnode.Head(),
	}

	if n.bruteForce {
		for _, rx := range n.nodes {
			if rx.id != rn.id {
				n.tryDeliver(rn, rx, txPos, now, adv)
			}
		}
		return
	}
	n.candBuf = n.grid.QueryRange(txPos, n.cfg.TxRange+n.candidateSlack, rn.id, n.candBuf[:0])
	for _, id := range n.candBuf {
		n.tryDeliver(rn, n.nodes[id], txPos, now, adv)
	}
}

// advertisement is the hello payload: the paper's hello message carries the
// sender's aggregate mobility (8 bytes) plus its clustering state.
type advertisement struct {
	weight cluster.Weight
	role   cluster.Role
	head   int32
}

// tryDeliver computes the exact received power at rx and delivers the hello
// if it clears the threshold, survives the loss model, and (when the MAC
// collision model is on) does not overlap another reception.
func (n *Network) tryDeliver(tx, rx *runtimeNode, txPos geom.Point, now float64, adv advertisement) {
	if rx.down {
		return
	}
	rxPos := rx.traj.At(now)
	d := txPos.Dist(rxPos)
	pr := n.cfg.Propagation.RxPower(n.cfg.TxPower, d)
	if pr < n.rxThresh {
		return
	}
	if n.cfg.Loss.Drops(tx.id, rx.id, now) {
		n.rec.CountDrop()
		n.emit(trace.Event{
			T: now, Kind: trace.KindDrop, Node: tx.id, Other: rx.id, Value: pr,
		})
		return
	}
	if n.cfg.HelloCollisions {
		n.deferDelivery(tx, rx, now, pr, adv)
		return
	}
	n.applyHello(tx.id, rx, now, pr, adv)
}

// deferDelivery models the beacon's airtime: the packet is handed up only
// at the end of its transmission, and any overlapping reception at the same
// receiver destroys both (no capture).
func (n *Network) deferDelivery(tx, rx *runtimeNode, now, pr float64, adv advertisement) {
	rec := &reception{tx: tx.id, end: now + n.cfg.HelloAirtime, pr: pr, adv: adv}
	// Mark collisions against still-in-flight receptions and prune the
	// rest lazily.
	live := rx.pendingRx[:0]
	for _, other := range rx.pendingRx {
		if other.end > now {
			other.collided = true
			rec.collided = true
			live = append(live, other)
		}
	}
	rx.pendingRx = append(live, rec)
	if _, err := n.sched.At(rec.end, func(t float64) {
		// Remove rec from the pending list.
		for i, r := range rx.pendingRx {
			if r == rec {
				rx.pendingRx = append(rx.pendingRx[:i], rx.pendingRx[i+1:]...)
				break
			}
		}
		if rec.collided {
			n.rec.CountCollision()
			n.emit(trace.Event{
				T: t, Kind: trace.KindDrop, Node: rec.tx, Other: rx.id, Value: rec.pr,
			})
			return
		}
		n.applyHello(rec.tx, rx, t, rec.pr, rec.adv)
	}); err != nil {
		return
	}
}

// applyHello is the receiver's MAC handing up one successfully received
// beacon: it records the measured RxPr (equation 1's input) and updates the
// neighbor table with the advertised clustering state.
func (n *Network) applyHello(txID int32, rx *runtimeNode, now, pr float64, adv advertisement) {
	n.rec.CountDelivery()
	n.emit(trace.Event{
		T: now, Kind: trace.KindDeliver, Node: txID, Other: rx.id, Value: pr,
	})
	if err := rx.tracker.Observe(txID, now, pr); err != nil {
		// RxPower of a validated model is always positive; skip defensively.
		return
	}
	e, ok := rx.table[txID]
	if !ok {
		e = &neighborEntry{}
		rx.table[txID] = e
	}
	e.lastHeard = now
	e.weight = adv.weight
	e.role = adv.role
	e.head = adv.head
}

// sampleClusters periodically counts heads, gateways and cluster sizes for
// Figure 4 and the size-distribution metrics.
func (n *Network) sampleClusters(now float64) {
	heads, gateways := 0, 0
	sizeByHead := make(map[int32]int)
	for _, rn := range n.nodes {
		if rn.down {
			continue
		}
		switch rn.cnode.Role() {
		case cluster.RoleHead:
			heads++
			sizeByHead[rn.id]++
		case cluster.RoleMember:
			sizeByHead[rn.cnode.Head()]++
			audible := 0
			for _, e := range rn.table {
				if e.role == cluster.RoleHead {
					audible++
				}
			}
			if audible >= 2 {
				gateways++
			}
		}
	}
	n.rec.SampleClusters(now, heads, gateways)
	if len(sizeByHead) > 0 {
		sizes := make([]int, 0, len(sizeByHead))
		for _, s := range sizeByHead {
			sizes = append(sizes, s)
		}
		n.rec.SampleClusterSizes(now, sizes)
	}
	comps := n.Topology().Components()
	largest := 0
	for _, c := range comps {
		if len(c) > largest {
			largest = len(c)
		}
	}
	n.rec.SampleTopology(now, len(comps), largest, len(n.nodes))
	if now+n.cfg.SampleInterval <= n.cfg.Duration {
		if _, err := n.sched.After(n.cfg.SampleInterval, n.sampleClusters); err != nil {
			return
		}
	}
}
