package simnet

import (
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/geom"
)

// echoApp records every delivery it sees and can send on Start.
type echoApp struct {
	api        AppAPI
	broadcasts []int32 // receivers of our broadcast
	unicasts   []int32
	onStart    func(api AppAPI)
}

func (e *echoApp) Name() string { return "echo" }

func (e *echoApp) Start(api AppAPI) {
	e.api = api
	if e.onStart != nil {
		e.onStart(api)
	}
}

func (e *echoApp) OnBroadcast(_ float64, _, at int32, payload Payload) {
	if payload == "ping" {
		e.broadcasts = append(e.broadcasts, at)
	}
}

func (e *echoApp) OnUnicast(_ float64, _, at int32, payload Payload) {
	if payload == "pong" {
		e.unicasts = append(e.unicasts, at)
	}
}

// lineNet builds a static 3-node line: 0 -- 1 -- 2 with only adjacent pairs
// in range, plus the given app.
func lineNet(t *testing.T, app App) *Network {
	t.Helper()
	cfg := Config{
		N:         3,
		Area:      geom.NewRect(300, 10),
		Duration:  30,
		Seed:      1,
		Algorithm: cluster.LCC,
		Mobility:  &lineMobility{spacing: 100, y: 5},
		TxRange:   120,
		Apps:      []App{app},
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestAppBroadcastReachesOnlyInRange(t *testing.T) {
	app := &echoApp{}
	app.onStart = func(api AppAPI) {
		_ = api.After(5, func(float64) {
			if n := api.Broadcast(1, "ping"); n != 2 {
				t.Errorf("broadcast from middle node reached %d, want 2", n)
			}
			if n := api.Broadcast(0, "ping"); n != 1 {
				t.Errorf("broadcast from end node reached %d, want 1", n)
			}
		})
	}
	net := lineNet(t, app)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(app.broadcasts) != 3 {
		t.Errorf("deliveries = %v, want 3 receptions total", app.broadcasts)
	}
}

func TestAppUnicastRangeAndSelfChecks(t *testing.T) {
	app := &echoApp{}
	app.onStart = func(api AppAPI) {
		_ = api.After(5, func(float64) {
			if !api.Unicast(0, 1, "pong") {
				t.Error("adjacent unicast should succeed")
			}
			if api.Unicast(0, 2, "pong") {
				t.Error("out-of-range unicast should fail")
			}
			if api.Unicast(0, 0, "pong") {
				t.Error("self unicast should fail")
			}
			if api.Unicast(0, -1, "pong") || api.Unicast(0, 99, "pong") {
				t.Error("out-of-bounds unicast should fail")
			}
		})
	}
	net := lineNet(t, app)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(app.unicasts) != 1 || app.unicasts[0] != 1 {
		t.Errorf("unicast deliveries = %v, want [1]", app.unicasts)
	}
}

func TestAppAPIIntrospection(t *testing.T) {
	app := &echoApp{}
	checked := false
	app.onStart = func(api AppAPI) {
		if api.NodeCount() != 3 {
			t.Errorf("NodeCount = %d", api.NodeCount())
		}
		_ = api.After(20, func(now float64) {
			checked = true
			if api.Now() != now {
				t.Errorf("Now() = %v inside event at %v", api.Now(), now)
			}
			// By t=20 the line has clustered: node 0 and 2 are heads.
			if api.Role(0) != cluster.RoleHead {
				t.Errorf("role(0) = %v", api.Role(0))
			}
			if api.Head(1) != 0 {
				t.Errorf("head(1) = %d", api.Head(1))
			}
			// The middle node hears both heads.
			if got := len(api.AudibleHeads(1)); got != 2 {
				t.Errorf("AudibleHeads(1) = %d, want 2", got)
			}
			nbs := api.Neighbors(1)
			if len(nbs) != 2 || nbs[0] != 0 || nbs[1] != 2 {
				t.Errorf("Neighbors(1) = %v, want sorted [0 2]", nbs)
			}
			if r := api.Rand(); r < 0 || r >= 1 {
				t.Errorf("Rand = %v", r)
			}
		})
	}
	net := lineNet(t, app)
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("introspection event never fired")
	}
}

func TestAppUnicastToDownNodeFails(t *testing.T) {
	app := &echoApp{}
	app.onStart = func(api AppAPI) {
		_ = api.After(10, func(float64) {
			if api.Unicast(0, 1, "pong") {
				t.Error("unicast to a crashed node should fail")
			}
		})
	}
	cfg := Config{
		N:         3,
		Area:      geom.NewRect(300, 10),
		Duration:  30,
		Seed:      1,
		Algorithm: cluster.LCC,
		Mobility:  &lineMobility{spacing: 100, y: 5},
		TxRange:   120,
		Apps:      []App{app},
		Failures:  []NodeFailure{{Node: 1, At: 5}},
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(app.unicasts) != 0 {
		t.Errorf("deliveries to a down node: %v", app.unicasts)
	}
}

func TestMultipleAppsAllReceive(t *testing.T) {
	a, b := &echoApp{}, &echoApp{}
	a.onStart = func(api AppAPI) {
		_ = api.After(5, func(float64) { api.Broadcast(1, "ping") })
	}
	cfg := Config{
		N:         3,
		Area:      geom.NewRect(300, 10),
		Duration:  30,
		Seed:      1,
		Algorithm: cluster.LCC,
		Mobility:  &lineMobility{spacing: 100, y: 5},
		TxRange:   120,
		Apps:      []App{a, b},
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(a.broadcasts) != 2 || len(b.broadcasts) != 2 {
		t.Errorf("both apps should see the delivery: %v, %v", a.broadcasts, b.broadcasts)
	}
}
