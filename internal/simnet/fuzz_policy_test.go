package simnet

import (
	"math"
	"testing"
)

// FuzzAdaptiveBI drives the hysteresis policy with arbitrary configurations
// and mobility samples and checks the invariants every caller depends on:
// the returned interval stays inside [Min, Max], a zero hysteresis band is
// exactly the band-free policy, rising mobility never relaxes the interval,
// and the policy is idempotent (feeding its own output back with the same
// mobility changes nothing — the fixed point the scheduler converges to).
func FuzzAdaptiveBI(f *testing.F) {
	f.Add(0.5, 4.0, 4.0, 0.25, 0.0, 3.0)
	f.Add(0.5, 4.0, 4.0, 0.0, 2.0, 12.0)
	f.Add(1.0, 1.0, 8.0, 0.5, 1.0, 0.0)
	f.Add(0.1, 60.0, 0.01, 3.0, 59.0, 1e9)
	f.Fuzz(func(t *testing.T, min, max, mref, hyst, cur, m float64) {
		a := AdaptiveBI{Min: min, Max: max, MRef: mref, Hysteresis: hyst}
		if err := a.validate(); err != nil {
			t.Skip()
		}
		if !isFiniteF(cur) || !isFiniteF(m) {
			t.Skip()
		}
		// cur is engine state: 0 (first beacon / post-crash) or a previous
		// Next output, which is always inside [Min, Max].
		if cur != 0 && (cur < a.Min || cur > a.Max) {
			t.Skip()
		}
		next := a.Next(cur, m)
		if next < a.Min || next > a.Max || math.IsNaN(next) {
			t.Fatalf("Next(%g, %g) = %g escaped [%g, %g]", cur, m, next, a.Min, a.Max)
		}
		if a.Hysteresis == 0 && next != a.Interval(m) {
			t.Fatalf("zero hysteresis: Next(%g, %g) = %g, want target %g",
				cur, m, next, a.Interval(m))
		}
		// Idempotence: the returned interval is a fixed point under the
		// same mobility sample.
		if again := a.Next(next, m); again != next {
			t.Fatalf("not a fixed point: Next(%g, %g) = %g, then %g", cur, m, next, again)
		}
		// Monotone tightening: more mobility never yields a longer interval
		// from the same state (relaxation can be held, tightening cannot).
		if m2 := m + 1; isFiniteF(m2) {
			if faster := a.Next(cur, m2); faster > next {
				t.Fatalf("rising mobility relaxed the interval: M=%g -> %g, M=%g -> %g",
					m, next, m2, faster)
			}
		}
	})
}

func isFiniteF(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
