package simnet

import (
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/geom"
	"mobic/internal/mobility"
)

// TestSteadyStateTickAllocs is the allocation regression gate for the
// engine hot path: once a static network has converged, advancing the
// simulation — beacons, MAC airtime deferrals, deliveries, tracker updates,
// clustering steps and the periodic cluster sampler — must allocate nothing.
// Every object on that path (events, receptions, neighbor entries, candidate
// and view buffers, sampler tables, the topology graph) is pooled or reused;
// a regression in any of them shows up here as a nonzero count.
func TestSteadyStateTickAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under the race detector")
	}
	area := geom.Square(670)
	cfg := Config{
		N:               50,
		Area:            area,
		Duration:        900,
		Seed:            11,
		Algorithm:       cluster.MOBIC,
		Mobility:        &mobility.Static{Area: area},
		TxRange:         250,
		HelloCollisions: true,
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Converge: cluster roles settle within a minute, but the pools'
	// high-water marks (simultaneous in-flight receptions, per-node expired
	// samples) keep creeping for a while under MAC losses, and each creep
	// is an append-doubling allocation. Five simulated minutes flattens
	// them all.
	net.RunUntil(300)

	interval := net.Config().BroadcastInterval
	allocs := testing.AllocsPerRun(20, func() {
		net.sched.RunUntil(net.sched.Now() + interval)
	})
	if allocs > 0 {
		t.Errorf("steady-state beacon interval allocates %.1f objects, want 0", allocs)
	}
}
