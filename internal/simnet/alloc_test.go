package simnet

import (
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/energy"
	"mobic/internal/geom"
	"mobic/internal/mobility"
	"mobic/internal/obs"
)

// steadyStateAllocs builds the static 50-node gate scenario with the given
// recorder installed, converges it, and returns the allocations per
// steady-state beacon interval.
func steadyStateAllocs(t *testing.T, rec obs.Recorder) float64 {
	return steadyStateAllocsMut(t, rec, nil)
}

// steadyStateAllocsMut is steadyStateAllocs with a config mutator applied
// before the network is built, so policy variants reuse the same gate.
func steadyStateAllocsMut(t *testing.T, rec obs.Recorder, mutate func(*Config)) float64 {
	t.Helper()
	area := geom.Square(670)
	cfg := Config{
		N:               50,
		Area:            area,
		Duration:        900,
		Seed:            11,
		Algorithm:       cluster.MOBIC,
		Mobility:        &mobility.Static{Area: area},
		TxRange:         250,
		HelloCollisions: true,
		Obs:             rec,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Converge: cluster roles settle within a minute, but the pools'
	// high-water marks (simultaneous in-flight receptions, per-node expired
	// samples) keep creeping for a while under MAC losses, and each creep
	// is an append-doubling allocation. Five simulated minutes flattens
	// them all.
	net.RunUntil(300)

	interval := net.Config().BroadcastInterval
	return testing.AllocsPerRun(20, func() {
		net.sched.RunUntil(net.sched.Now() + interval)
	})
}

// TestSteadyStateTickAllocs is the allocation regression gate for the
// engine hot path: once a static network has converged, advancing the
// simulation — beacons, MAC airtime deferrals, deliveries, tracker updates,
// clustering steps and the periodic cluster sampler — must allocate nothing.
// Every object on that path (events, receptions, neighbor entries, candidate
// and view buffers, sampler tables, the topology graph) is pooled or reused;
// a regression in any of them shows up here as a nonzero count.
func TestSteadyStateTickAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under the race detector")
	}
	if allocs := steadyStateAllocs(t, nil); allocs > 0 {
		t.Errorf("steady-state beacon interval allocates %.1f objects, want 0", allocs)
	}
}

// TestSteadyStateTickAllocsWithPolicies re-runs the gate with the adaptive
// broadcast period and the energy model enabled: per-beacon interval
// adaptation, drain accounting and the election penalty all live on the hot
// path and must ride the preallocated per-node arrays — enabling the
// policies cannot cost a single steady-state allocation. The battery budget
// is far above the horizon's drain so the run measures the policies'
// bookkeeping, not death churn.
func TestSteadyStateTickAllocsWithPolicies(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under the race detector")
	}
	allocs := steadyStateAllocsMut(t, nil, func(cfg *Config) {
		cfg.Adaptive = &AdaptiveBI{Min: 0.5, Max: 4, MRef: 4, Hysteresis: 0.25}
		ec := energy.Default()
		ec.InitialJ = 1e6
		cfg.Energy = &ec
	})
	if allocs > 0 {
		t.Errorf("policy-enabled beacon interval allocates %.1f objects, want 0", allocs)
	}
}

// TestSteadyStateTickAllocsNopRecorder runs the same gate with an explicit
// obs.Nop installed: the instrumentation hooks themselves (counter adds,
// gauge sets on every fired event and delivery) must add zero allocations
// per interval when telemetry is disabled.
func TestSteadyStateTickAllocsNopRecorder(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under the race detector")
	}
	if allocs := steadyStateAllocs(t, obs.Nop{}); allocs > 0 {
		t.Errorf("noop-instrumented beacon interval allocates %.1f objects, want 0", allocs)
	}
}

// TestSteadyStateTickAllocsRegistry tightens the contract further: even with
// a live obs.Registry aggregating every hook, the hot path stays
// allocation-free — the registry records into preallocated atomic arrays.
func TestSteadyStateTickAllocsRegistry(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under the race detector")
	}
	reg := obs.NewRegistry()
	if allocs := steadyStateAllocs(t, reg); allocs > 0 {
		t.Errorf("registry-instrumented beacon interval allocates %.1f objects, want 0", allocs)
	}
	// Sanity: the hooks actually fired during convergence.
	if reg.Counter(obs.SimEventsFired) == 0 || reg.Counter(obs.NetBeaconsSent) == 0 {
		t.Error("registry recorded no engine activity; hooks are disconnected")
	}
}
