package simnet

import (
	"math/rand/v2"
	"testing"

	"mobic/internal/channel"
	"mobic/internal/cluster"
	"mobic/internal/geom"
	"mobic/internal/mobility"
	"mobic/internal/radio"
	"mobic/internal/sim"
	"mobic/internal/trace"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func waypointConfig(alg cluster.Algorithm, tx float64, seed uint64) Config {
	area := geom.Square(670)
	return Config{
		N:         50,
		Area:      area,
		Duration:  300,
		Seed:      seed,
		Algorithm: alg,
		Mobility:  &mobility.RandomWaypoint{Area: area, MaxSpeed: 20},
		TxRange:   tx,
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, waypointConfig(cluster.MOBIC, 150, 7))
	b := mustRun(t, waypointConfig(cluster.MOBIC, 150, 7))
	if *a != *b {
		t.Errorf("same seed produced different results:\n%+v\n%+v", a, b)
	}
	c := mustRun(t, waypointConfig(cluster.MOBIC, 150, 8))
	if a.Metrics.CHChanges == c.Metrics.CHChanges && a.Metrics.Deliveries == c.Metrics.Deliveries {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestStaticTopologyStabilizes(t *testing.T) {
	area := geom.Square(670)
	for _, alg := range []cluster.Algorithm{cluster.LCC, cluster.MOBIC, cluster.LowestID} {
		cfg := Config{
			N:         40,
			Area:      area,
			Duration:  120,
			Seed:      3,
			Algorithm: alg,
			Mobility:  &mobility.Static{Area: area},
			TxRange:   200,
			// Count only maintenance-phase events: formation finishes
			// within a few beacon rounds.
			Warmup: 30,
		}
		res := mustRun(t, cfg)
		if res.Metrics.CHChanges != 0 {
			t.Errorf("%s: static topology had %d CH changes after warmup", alg.Name, res.Metrics.CHChanges)
		}
		if res.Metrics.MembershipChanges != 0 {
			t.Errorf("%s: static topology had %d membership changes after warmup", alg.Name, res.Metrics.MembershipChanges)
		}
	}
}

func TestStaticTopologySatisfiesTheorem1(t *testing.T) {
	area := geom.Square(670)
	for _, alg := range []cluster.Algorithm{cluster.LCC, cluster.MOBIC} {
		for seed := uint64(1); seed <= 5; seed++ {
			cfg := Config{
				N:         50,
				Area:      area,
				Duration:  60,
				Seed:      seed,
				Algorithm: alg,
				Mobility:  &mobility.Static{Area: area},
				TxRange:   150,
			}
			net, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := net.Run(); err != nil {
				t.Fatal(err)
			}
			snap := net.Snapshot()
			topo := net.Topology()
			for i, s := range snap {
				switch s.Role {
				case cluster.RoleUndecided:
					t.Errorf("%s seed %d: node %d undecided at end", alg.Name, seed, i)
				case cluster.RoleHead:
					for j, o := range snap {
						if i != j && o.Role == cluster.RoleHead && topo.Adjacent(int32(i), int32(j)) {
							t.Errorf("%s seed %d: heads %d,%d in range (Theorem 1)", alg.Name, seed, i, j)
						}
					}
				case cluster.RoleMember:
					if s.Head < 0 || snap[s.Head].Role != cluster.RoleHead {
						t.Errorf("%s seed %d: member %d has non-head head %d", alg.Name, seed, i, s.Head)
					} else if !topo.Adjacent(int32(i), s.Head) {
						t.Errorf("%s seed %d: member %d out of range of head %d", alg.Name, seed, i, s.Head)
					}
				}
			}
		}
	}
}

func TestClusterDiameterAtMostTwoHops(t *testing.T) {
	area := geom.Square(670)
	cfg := Config{
		N:         50,
		Area:      area,
		Duration:  60,
		Seed:      11,
		Algorithm: cluster.LCC,
		Mobility:  &mobility.Static{Area: area},
		TxRange:   180,
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	topo := net.Topology()
	for head, members := range net.Clusters() {
		if head == cluster.NoHead {
			t.Errorf("unaffiliated nodes at end: %v", members)
			continue
		}
		if d := topo.SubgraphDiameter(members); d < 0 || d > 2 {
			t.Errorf("cluster %d has diameter %d, want <= 2 (Theorem 1)", head, d)
		}
	}
}

func TestStaticMobilityMetricIsZero(t *testing.T) {
	area := geom.Square(300)
	cfg := Config{
		N:         20,
		Area:      area,
		Duration:  60,
		Seed:      5,
		Algorithm: cluster.MOBIC,
		Mobility:  &mobility.Static{Area: area},
		TxRange:   150,
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range net.Snapshot() {
		if s.M != 0 {
			t.Errorf("node %d: M = %v on a static topology, want 0", s.ID, s.M)
		}
	}
}

func TestMovingNodesProduceChangesAndPositiveM(t *testing.T) {
	net, err := New(waypointConfig(cluster.MOBIC, 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CHChanges == 0 {
		t.Error("mobile scenario produced zero CH changes")
	}
	anyM := false
	for _, s := range net.Snapshot() {
		if s.M > 0 {
			anyM = true
			break
		}
	}
	if !anyM {
		t.Error("no node ever measured positive aggregate mobility")
	}
}

func TestMOBICBeatsLCCAtHighTxRange(t *testing.T) {
	// The paper's headline claim at Tx=250 (Figure 3). Seeded and
	// deterministic; the margin is large (~30%), so three seeds suffice.
	var lcc, mobic int
	for seed := uint64(1); seed <= 3; seed++ {
		cfgL := waypointConfig(cluster.LCC, 250, seed)
		cfgL.Duration = 900
		cfgM := waypointConfig(cluster.MOBIC, 250, seed)
		cfgM.Duration = 900
		lcc += mustRun(t, cfgL).Metrics.CHChanges
		mobic += mustRun(t, cfgM).Metrics.CHChanges
	}
	if mobic >= lcc {
		t.Errorf("MOBIC (%d) should beat LCC (%d) at Tx=250", mobic, lcc)
	}
}

func TestGatewayDetection(t *testing.T) {
	// Fixed line topology: 0 -- 1 -- 2 with range covering only adjacent
	// pairs. Lowest-ID: 0 heads {0,1}; 2 heads itself; 1 hears two heads.
	area := geom.NewRect(300, 10)
	cfg := Config{
		N:         3,
		Area:      area,
		Duration:  30,
		Seed:      1,
		Algorithm: cluster.LCC,
		Mobility:  &lineMobility{spacing: 100, y: 5},
		TxRange:   120,
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	snap := net.Snapshot()
	if snap[0].Role != cluster.RoleHead {
		t.Errorf("node 0 role = %v, want head", snap[0].Role)
	}
	if snap[1].Role != cluster.RoleMember || snap[1].Head != 0 {
		t.Errorf("node 1 = %v head %d, want member of 0", snap[1].Role, snap[1].Head)
	}
	if snap[2].Role != cluster.RoleHead {
		t.Errorf("node 2 role = %v, want head", snap[2].Role)
	}
	if !snap[1].Gateway {
		t.Error("node 1 hears heads 0 and 2: should be a gateway")
	}
	if snap[0].Gateway || snap[2].Gateway {
		t.Error("heads must not be gateways")
	}
}

// lineMobility pins n nodes on a horizontal line with fixed spacing.
type lineMobility struct {
	spacing float64
	y       float64
}

func (m *lineMobility) Name() string { return "line" }

func (m *lineMobility) Generate(n int, _ float64, _ *sim.Streams) ([]*mobility.Trajectory, error) {
	out := make([]*mobility.Trajectory, n)
	for i := range out {
		out[i] = mobility.StaticTrajectory(geom.Point{X: float64(i) * m.spacing, Y: m.y})
	}
	return out, nil
}

func TestLossModelReducesDeliveries(t *testing.T) {
	base := waypointConfig(cluster.MOBIC, 150, 4)
	clean := mustRun(t, base)

	lossy := waypointConfig(cluster.MOBIC, 150, 4)
	lossRng := rand.New(rand.NewPCG(9, 9))
	um, err := channel.NewUniformLoss(0.3, lossRng)
	if err != nil {
		t.Fatal(err)
	}
	lossy.Loss = um
	withLoss := mustRun(t, lossy)

	if withLoss.Metrics.Drops == 0 {
		t.Error("loss model recorded no drops")
	}
	if withLoss.Metrics.Deliveries >= clean.Metrics.Deliveries {
		t.Errorf("deliveries with loss (%d) should be below clean (%d)",
			withLoss.Metrics.Deliveries, clean.Metrics.Deliveries)
	}
	// The protocol must survive: clustering still happens.
	if withLoss.FinalHeads == 0 {
		t.Error("no heads formed under loss")
	}
}

func TestShadowingPropagationRuns(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 150, 6)
	cfg.Propagation = radio.NewShadowing(2.7, 4, rand.New(rand.NewPCG(3, 3)))
	cfg.Duration = 120
	res := mustRun(t, cfg)
	if res.Metrics.Deliveries == 0 {
		t.Error("shadowing run delivered nothing")
	}
}

func TestBruteForceMatchesGrid(t *testing.T) {
	a := waypointConfig(cluster.MOBIC, 150, 12)
	a.Duration = 120
	b := a
	b.ForceBruteForce = true
	ra, rb := mustRun(t, a), mustRun(t, b)
	if ra.Metrics != rb.Metrics {
		t.Errorf("grid path and brute force disagree:\n%+v\n%+v", ra.Metrics, rb.Metrics)
	}
}

func TestTraceRecordsEvents(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 150, 5)
	cfg.Duration = 60
	cfg.Trace = trace.New(100000)
	res := mustRun(t, cfg)
	if got := cfg.Trace.CountKind(trace.KindBroadcast); got == 0 {
		t.Error("no broadcasts traced")
	}
	if got := cfg.Trace.CountKind(trace.KindDeliver); got == 0 {
		t.Error("no deliveries traced")
	}
	if res.Metrics.CHChanges > 0 && cfg.Trace.CountKind(trace.KindRoleChange) == 0 {
		t.Error("role changes occurred but were not traced")
	}
}

func TestMaxDegreeAlgorithmRuns(t *testing.T) {
	res := mustRun(t, waypointConfig(cluster.MaxConnectivity, 150, 5))
	if res.Metrics.CHChanges == 0 {
		t.Error("max-degree on mobile scenario should see changes")
	}
	if res.Algorithm != "max-degree" {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
}

func TestDCAWithGeneratedWeights(t *testing.T) {
	cfg := waypointConfig(cluster.DCA, 150, 5)
	cfg.Duration = 120
	res := mustRun(t, cfg)
	if res.FinalHeads == 0 {
		t.Error("DCA formed no clusters")
	}
}

func TestDCAWithExplicitWeights(t *testing.T) {
	cfg := waypointConfig(cluster.DCA, 150, 5)
	cfg.Duration = 60
	w := make([]float64, cfg.N)
	for i := range w {
		w[i] = float64(cfg.N - i) // reversed: highest ID has lowest weight
	}
	cfg.CustomWeights = w
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveBIProducesMoreBeaconsWhenMobile(t *testing.T) {
	mk := func(model mobility.Model) uint64 {
		area := geom.Square(400)
		cfg := Config{
			N:         20,
			Area:      area,
			Duration:  300,
			Seed:      4,
			Algorithm: cluster.MOBIC,
			Mobility:  model,
			TxRange:   150,
			Adaptive:  &AdaptiveBI{Min: 0.5, Max: 4, MRef: 2},
			// TimeoutPeriod must cover the slowest beacon rate.
			BroadcastInterval: 0.5,
			TimeoutPeriod:     6,
		}
		return mustRun(t, cfg).Metrics.Broadcasts
	}
	area := geom.Square(400)
	static := mk(&mobility.Static{Area: area})
	mobile := mk(&mobility.RandomWaypoint{Area: area, MaxSpeed: 25})
	if mobile <= static {
		t.Errorf("adaptive BI: mobile scenario sent %d beacons, static %d; want more when mobile",
			mobile, static)
	}
}

func TestRunUntilInterleaving(t *testing.T) {
	net, err := New(waypointConfig(cluster.MOBIC, 150, 3))
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(50)
	if net.Now() != 50 {
		t.Errorf("Now = %v, want 50", net.Now())
	}
	mid := net.Snapshot()
	if len(mid) != 50 {
		t.Fatalf("snapshot size = %d", len(mid))
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Duration != 300 {
		t.Errorf("final duration = %v, want 300", res.Metrics.Duration)
	}
}

func TestLargeNetworkScales(t *testing.T) {
	if testing.Short() {
		t.Skip("500-node run")
	}
	// 10x the paper's node count at the same density: the spatial index
	// keeps this tractable and every invariant still holds.
	area := geom.Square(2120) // ~670 * sqrt(10)
	cfg := Config{
		N:         500,
		Area:      area,
		Duration:  120,
		Seed:      1,
		Algorithm: cluster.MOBIC,
		Mobility:  &mobility.RandomWaypoint{Area: area, MaxSpeed: 20},
		TxRange:   250,
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalHeads < 10 {
		t.Errorf("500-node network formed only %d clusters", res.FinalHeads)
	}
	if res.Metrics.Deliveries == 0 {
		t.Error("no deliveries at scale")
	}
}

func TestEventsFiredAccounting(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 100, 1)
	cfg.Duration = 100
	res := mustRun(t, cfg)
	// 50 nodes beaconing every 2 s for 100 s = ~2500 ticks plus sampler.
	if res.EventsFired < 2000 || res.EventsFired > 4000 {
		t.Errorf("EventsFired = %d, expected ~2500", res.EventsFired)
	}
}

func TestHelloCollisions(t *testing.T) {
	clean := waypointConfig(cluster.MOBIC, 250, 8)
	colliding := clean
	colliding.HelloCollisions = true

	resClean := mustRun(t, clean)
	net, err := New(colliding)
	if err != nil {
		t.Fatal(err)
	}
	resCol, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resClean.Metrics.Collisions != 0 {
		t.Errorf("collision model off but %d collisions counted", resClean.Metrics.Collisions)
	}
	if resCol.Metrics.Collisions == 0 {
		t.Error("collision model on but no collisions at Tx=250 with 50 nodes")
	}
	if resCol.Metrics.Deliveries >= resClean.Metrics.Deliveries {
		t.Errorf("collisions should reduce deliveries: %d vs %d",
			resCol.Metrics.Deliveries, resClean.Metrics.Deliveries)
	}
	// The protocol must still function.
	if resCol.FinalHeads == 0 {
		t.Error("no clusters formed under collisions")
	}
}

func TestHelloCollisionsDeterministic(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 200, 4)
	cfg.Duration = 120
	cfg.HelloCollisions = true
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if *a != *b {
		t.Errorf("collision model broke determinism:\n%+v\n%+v", a, b)
	}
}

func TestHelloAirtimeValidation(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 150, 1)
	cfg.HelloAirtime = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative airtime should error")
	}
	cfg.HelloAirtime = 5 // >= BI/2
	if _, err := New(cfg); err == nil {
		t.Error("huge airtime should error")
	}
}

func TestOracleWeightKind(t *testing.T) {
	oracle, err := cluster.ByName("mobic-oracle")
	if err != nil {
		t.Fatal(err)
	}
	// Static topology: zero range rates, so the oracle behaves like
	// Lowest-ID ties and must still satisfy Theorem 1 with no churn.
	area := geom.Square(500)
	cfg := Config{
		N:         30,
		Area:      area,
		Duration:  60,
		Seed:      2,
		Algorithm: oracle,
		Mobility:  &mobility.Static{Area: area},
		TxRange:   180,
		Warmup:    30,
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CHChanges != 0 {
		t.Errorf("static oracle run churned: %d", res.Metrics.CHChanges)
	}
	if v := net.Theorem1Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}

	// Moving scenario must also run and produce churn.
	mres := mustRun(t, waypointConfig(oracle, 150, 3))
	if mres.Metrics.CHChanges == 0 {
		t.Error("mobile oracle run had no changes")
	}
}

func TestTopologyHealthMetrics(t *testing.T) {
	// Low Tx: many components; high Tx: nearly one.
	sparse := mustRun(t, waypointConfig(cluster.MOBIC, 30, 2))
	dense := mustRun(t, waypointConfig(cluster.MOBIC, 250, 2))
	if sparse.Metrics.AvgComponents <= dense.Metrics.AvgComponents {
		t.Errorf("components: sparse %v <= dense %v", sparse.Metrics.AvgComponents, dense.Metrics.AvgComponents)
	}
	if dense.Metrics.AvgLargestComponentFrac < 0.9 {
		t.Errorf("dense largest-component fraction = %v, want ~1", dense.Metrics.AvgLargestComponentFrac)
	}
	if sparse.Metrics.AvgLargestComponentFrac >= dense.Metrics.AvgLargestComponentFrac {
		t.Error("sparse network should have a smaller largest component")
	}
}

func TestHelloByteOverhead(t *testing.T) {
	// The paper's footnote 7: MOBIC's hello grows by exactly 8 bytes.
	lcc := mustRun(t, waypointConfig(cluster.LCC, 150, 2))
	mob := mustRun(t, waypointConfig(cluster.MOBIC, 150, 2))
	if lcc.Metrics.Broadcasts != mob.Metrics.Broadcasts {
		t.Fatalf("broadcast counts differ: %d vs %d", lcc.Metrics.Broadcasts, mob.Metrics.Broadcasts)
	}
	perBeacon := float64(mob.Metrics.BytesSent-lcc.Metrics.BytesSent) / float64(mob.Metrics.Broadcasts)
	if perBeacon != 8 {
		t.Errorf("MOBIC per-beacon overhead = %v bytes, want exactly 8 (paper footnote 7)", perBeacon)
	}
}

func TestTimelinePlumbing(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 150, 3)
	cfg.Duration = 120
	cfg.TimelineWindow = 30
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	windows, size := net.Timeline()
	if size != 30 {
		t.Errorf("window size = %v", size)
	}
	total := 0
	for _, c := range windows {
		total += c
	}
	if total != res.Metrics.CHChanges {
		t.Errorf("timeline sum %d != total CH changes %d (warmup 0)", total, res.Metrics.CHChanges)
	}
}

func TestHistoryVariantRuns(t *testing.T) {
	hist, err := cluster.ByName("mobic-history")
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, waypointConfig(hist, 150, 3))
	if res.Algorithm != "mobic-history" {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
}
