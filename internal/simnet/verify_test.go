package simnet

import (
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/geom"
	"mobic/internal/mobility"
)

func TestTheorem1ViolationsCleanOnStatic(t *testing.T) {
	area := geom.Square(670)
	for _, alg := range []cluster.Algorithm{cluster.LCC, cluster.MOBIC, cluster.DCA} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := Config{
				N:         50,
				Area:      area,
				Duration:  60,
				Seed:      seed,
				Algorithm: alg,
				Mobility:  &mobility.Static{Area: area},
				TxRange:   160,
			}
			net, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := net.Run(); err != nil {
				t.Fatal(err)
			}
			if v := net.Theorem1Violations(); len(v) != 0 {
				t.Errorf("%s seed %d: violations: %v", alg.Name, seed, v)
			}
		}
	}
}

func TestTheorem1ViolationsDetectUndecided(t *testing.T) {
	// Before any beacon fires, every node is undecided: the checker must
	// report it.
	area := geom.Square(300)
	cfg := Config{
		N:         5,
		Area:      area,
		Duration:  60,
		Seed:      1,
		Algorithm: cluster.LCC,
		Mobility:  &mobility.Static{Area: area},
		TxRange:   150,
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No RunUntil: time 0, nothing has happened.
	if v := net.Theorem1Violations(); len(v) != 5 {
		t.Errorf("expected 5 undecided violations at t=0, got %v", v)
	}
}

func TestTheorem1TransientViolationsResolve(t *testing.T) {
	// Under mobility, violations may appear transiently but the count at
	// any instant should be small relative to N and the checker must not
	// panic mid-run.
	cfg := waypointConfig(cluster.MOBIC, 150, 9)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{30, 60, 120, 200} {
		net.RunUntil(tm)
		v := net.Theorem1Violations()
		if len(v) > cfg.N/2 {
			t.Errorf("t=%v: %d violations (more than half the network): %v", tm, len(v), v)
		}
	}
}
