package simnet

import (
	"fmt"

	"mobic/internal/cluster"
)

// Theorem1Violations checks the paper's Theorem 1 against the current
// instantaneous state and returns a description of every violation:
//
//   - no two clusterheads within transmission range of each other,
//   - every member's clusterhead is a live head within range,
//   - every node decided (head or member),
//   - every cluster's induced subgraph has diameter <= 2 hops.
//
// The theorem holds for *stable* configurations; under mobility transient
// violations between beacons are expected, so callers should only assert
// emptiness on static scenarios or quiescent snapshots.
func (n *Network) Theorem1Violations() []string {
	var out []string
	snap := n.Snapshot()
	topo := n.Topology()
	for i, s := range snap {
		id := int32(i)
		switch s.Role {
		case cluster.RoleUndecided:
			out = append(out, fmt.Sprintf("node %d undecided", i))
		case cluster.RoleHead:
			for j := i + 1; j < len(snap); j++ {
				if snap[j].Role == cluster.RoleHead && topo.Adjacent(id, int32(j)) {
					out = append(out, fmt.Sprintf("heads %d and %d in range", i, j))
				}
			}
		case cluster.RoleMember:
			h := s.Head
			switch {
			case h < 0 || int(h) >= len(snap):
				out = append(out, fmt.Sprintf("member %d has invalid head %d", i, h))
			case snap[h].Role != cluster.RoleHead:
				out = append(out, fmt.Sprintf("member %d's head %d is not a head", i, h))
			case !topo.Adjacent(id, h):
				out = append(out, fmt.Sprintf("member %d out of range of head %d", i, h))
			}
		}
	}
	for head, members := range n.Clusters() {
		if head == cluster.NoHead {
			continue
		}
		if d := topo.SubgraphDiameter(members); d < 0 || d > 2 {
			out = append(out, fmt.Sprintf("cluster %d has diameter %d", head, d))
		}
	}
	return out
}
