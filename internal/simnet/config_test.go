package simnet

import (
	"errors"
	"math"
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/geom"
	"mobic/internal/mobility"
)

func validConfig() Config {
	area := geom.Square(670)
	return Config{
		N:         10,
		Area:      area,
		Duration:  60,
		Seed:      1,
		Algorithm: cluster.MOBIC,
		Mobility:  &mobility.RandomWaypoint{Area: area, MaxSpeed: 20},
		TxRange:   150,
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero nodes", mutate: func(c *Config) { c.N = 0 }},
		{name: "negative nodes", mutate: func(c *Config) { c.N = -5 }},
		{name: "zero duration", mutate: func(c *Config) { c.Duration = 0 }},
		{name: "nil mobility", mutate: func(c *Config) { c.Mobility = nil }},
		{name: "zero range", mutate: func(c *Config) { c.TxRange = 0 }},
		{name: "negative range", mutate: func(c *Config) { c.TxRange = -10 }},
		{name: "negative power", mutate: func(c *Config) { c.TxPower = -1 }},
		{name: "negative BI", mutate: func(c *Config) { c.BroadcastInterval = -2 }},
		{name: "TP below BI", mutate: func(c *Config) { c.BroadcastInterval = 2; c.TimeoutPeriod = 1 }},
		{name: "negative warmup", mutate: func(c *Config) { c.Warmup = -1 }},
		{name: "warmup past duration", mutate: func(c *Config) { c.Warmup = 60 }},
		{name: "invalid area", mutate: func(c *Config) { c.Area = geom.Rect{} }},
		{name: "wrong custom weight count", mutate: func(c *Config) {
			c.Algorithm = cluster.DCA
			c.CustomWeights = []float64{1, 2, 3}
		}},
		{name: "bad adaptive", mutate: func(c *Config) {
			c.Adaptive = &AdaptiveBI{Min: 0, Max: 4, MRef: 1}
		}},
		{name: "adaptive max below min", mutate: func(c *Config) {
			c.Adaptive = &AdaptiveBI{Min: 4, Max: 2, MRef: 1}
		}},
		{name: "adaptive zero mref", mutate: func(c *Config) {
			c.Adaptive = &AdaptiveBI{Min: 1, Max: 4, MRef: 0}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("New should reject the config")
			}
		})
	}
}

func TestConfigNilMobilityError(t *testing.T) {
	cfg := validConfig()
	cfg.Mobility = nil
	_, err := New(cfg)
	if !errors.Is(err, ErrNoMobility) {
		t.Errorf("err = %v, want ErrNoMobility", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := validConfig().withDefaults()
	if cfg.BroadcastInterval != DefaultBroadcastInterval {
		t.Errorf("BI default = %v", cfg.BroadcastInterval)
	}
	if cfg.TimeoutPeriod != DefaultTimeoutPeriod {
		t.Errorf("TP default = %v", cfg.TimeoutPeriod)
	}
	if cfg.Propagation == nil || cfg.Propagation.Name() != "tworay" {
		t.Error("propagation should default to two-ray")
	}
	if cfg.Loss == nil || cfg.Loss.Name() != "none" {
		t.Error("loss should default to none")
	}
	if cfg.TxPower <= 0 {
		t.Error("tx power should default positive")
	}
	empty := Config{}
	if got := empty.withDefaults().Algorithm.Name; got != "mobic" {
		t.Errorf("algorithm default = %q, want mobic", got)
	}
}

func TestAdaptiveBIInterval(t *testing.T) {
	a := AdaptiveBI{Min: 0.5, Max: 4, MRef: 10}
	if got := a.Interval(0); got != 4 {
		t.Errorf("Interval(0) = %v, want Max", got)
	}
	if got := a.Interval(10); math.Abs(got-2.25) > 1e-9 { // halfway
		t.Errorf("Interval(MRef) = %v, want 2.25", got)
	}
	if got := a.Interval(1e12); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("Interval(inf) = %v, want ~Min", got)
	}
	if got := a.Interval(-5); got != 4 {
		t.Errorf("Interval(negative) = %v, want Max (clamped)", got)
	}
	// Monotone decreasing in M.
	prev := math.Inf(1)
	for m := 0.0; m < 100; m += 5 {
		v := a.Interval(m)
		if v > prev {
			t.Fatalf("Interval not monotone at M=%v", m)
		}
		prev = v
	}
}
