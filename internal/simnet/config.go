// Package simnet wires the substrates into a runnable MANET simulation: it
// owns the hello protocol (periodic beacons, neighbor tables, timeouts),
// drives the clustering state machines, measures received powers through the
// propagation model, and collects the paper's evaluation metrics. It is the
// equivalent of the ns-2 scenario scripts plus the CMU hello/clustering
// agents used by the paper.
package simnet

import (
	"errors"
	"fmt"
	"math"

	"mobic/internal/channel"
	"mobic/internal/cluster"
	"mobic/internal/energy"
	"mobic/internal/geom"
	"mobic/internal/mobility"
	"mobic/internal/obs"
	"mobic/internal/radio"
	"mobic/internal/trace"
)

// Defaults follow the paper's Table 1.
const (
	// DefaultBroadcastInterval is BI = 2.0 s.
	DefaultBroadcastInterval = 2.0
	// DefaultTimeoutPeriod is TP = 3.0 s.
	DefaultTimeoutPeriod = 3.0
	// DefaultSampleInterval is how often the cluster count is sampled.
	DefaultSampleInterval = 5.0
)

// AdaptiveBI configures the adaptive broadcast period policy (the paper's
// Section 5 sketch, concretized per Gavalas et al., arXiv:1109.3987): a
// node's target hello interval shrinks as its aggregate mobility grows:
//
//	target = Max - (Max-Min) * M/(M+MRef)
//
// so a stationary node beacons every Max seconds and a highly mobile one
// approaches Min. On top of the target, each node keeps a current interval
// with one-sided hysteresis: tightening (target below current) is applied
// immediately — a node that just started moving must beacon faster now —
// but relaxing is deferred until the target clears current by the relative
// Hysteresis band, so a node whose mobility flutters around a threshold
// does not thrash between periods. The whole policy is a pure function of
// per-node state, so runs stay bit-reproducible; with Min == Max every
// target collapses to the fixed interval and the schedule is identical to a
// non-adaptive run (the metamorphic fixed point the harness pins).
type AdaptiveBI struct {
	// Min is the shortest allowed interval in seconds.
	Min float64
	// Max is the longest allowed interval in seconds.
	Max float64
	// MRef is the mobility scale: at M = MRef the interval is halfway.
	MRef float64
	// Hysteresis is the relative band for relaxing the interval: the
	// current interval only grows once the target exceeds it by this
	// fraction (0.25 = 25%). 0 tracks the target exactly, reproducing the
	// band-free policy bit for bit. Must be >= 0.
	Hysteresis float64
}

// Interval returns the target beacon interval for aggregate mobility m.
func (a AdaptiveBI) Interval(m float64) float64 {
	if m < 0 {
		m = 0
	}
	frac := m / (m + a.MRef)
	return a.Max - (a.Max-a.Min)*frac
}

// Next advances the hysteresis state machine: cur is the node's current
// interval (0 on the first beacon and after a crash), m its fresh aggregate
// mobility. It returns the interval to schedule the next beacon at.
func (a AdaptiveBI) Next(cur, m float64) float64 {
	target := a.Interval(m)
	switch {
	case cur == 0:
		return target // first beacon: adopt the target outright
	case target < cur:
		return target // tighten immediately under rising mobility
	case target >= cur*(1+a.Hysteresis):
		return target // relax only once clear of the band
	default:
		return cur // inside the band: hold
	}
}

func (a AdaptiveBI) validate() error {
	for _, v := range [...]float64{a.Min, a.Max, a.MRef, a.Hysteresis} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("simnet: adaptive BI parameters must be finite, got %+v", a)
		}
	}
	if a.Min <= 0 || a.Max < a.Min {
		return fmt.Errorf("simnet: adaptive BI needs 0 < Min <= Max, got [%g, %g]", a.Min, a.Max)
	}
	if a.MRef <= 0 {
		return fmt.Errorf("simnet: adaptive BI needs MRef > 0, got %g", a.MRef)
	}
	if a.Hysteresis < 0 {
		return fmt.Errorf("simnet: adaptive BI needs Hysteresis >= 0, got %g", a.Hysteresis)
	}
	return nil
}

// NodeFailure is one scheduled crash (and optional recovery).
type NodeFailure struct {
	// Node is the node that fails.
	Node int32
	// At is the crash time in seconds.
	At float64
	// RecoverAt, when positive, revives the node at that time; zero means
	// the crash is permanent.
	RecoverAt float64
}

// Config fully describes one simulation run.
type Config struct {
	// N is the number of nodes (Table 1: 50).
	N int
	// Area is the simulation region, used for bookkeeping and the spatial
	// index. It should match the mobility model's region.
	Area geom.Rect
	// Duration is the simulated time in seconds (Table 1: S = 900).
	Duration float64
	// Seed roots every random stream of the run.
	Seed uint64
	// Algorithm selects the clustering algorithm.
	Algorithm cluster.Algorithm
	// Mobility generates node trajectories. Required.
	Mobility mobility.Model
	// Propagation maps distance to received power. Defaults to ns-2's
	// two-ray ground model.
	Propagation radio.Model
	// TxPower is the transmit power in Watts. Defaults to the WaveLAN
	// 281.8 mW.
	TxPower float64
	// TxRange is the nominal transmission range in meters (Table 1:
	// 10-250). The receive threshold is calibrated so a deterministic
	// propagation model delivers exactly out to this range.
	TxRange float64
	// BroadcastInterval is the hello period BI in seconds.
	BroadcastInterval float64
	// TimeoutPeriod is the neighbor-table timeout TP in seconds.
	TimeoutPeriod float64
	// Warmup excludes early events from the metrics (0 counts everything).
	Warmup float64
	// TimelineWindow, when positive, buckets clusterhead changes into
	// windows of this many seconds (see Network.Timeline).
	TimelineWindow float64
	// SampleInterval is the cluster-count sampling period in seconds.
	SampleInterval float64
	// Loss optionally injects MAC-level packet loss. Defaults to NoLoss.
	Loss channel.LossModel
	// Trace optionally records simulator events.
	Trace *trace.Log
	// Observer, when set, receives every simulator event synchronously as
	// it is recorded. Unlike Trace it is unbounded — nothing is ever
	// dropped — which is what the correctness harness needs to fold the
	// full event stream into a trace digest (see internal/harness). The
	// callback runs on the simulation goroutine and must not retain the
	// event beyond the call.
	Observer func(trace.Event)
	// Obs receives engine telemetry (beacons, receptions, collisions,
	// neighbor churn, clusterhead changes, kernel event counts, sim-rate).
	// Defaults to obs.Nop, which is allocation-free and keeps the hot path
	// at its zero-alloc steady state; mobicd installs an obs.Registry to
	// merge these families into /metrics. Telemetry is strictly
	// write-only — nothing recorded feeds back into the simulation — so
	// trace digests are identical with or without a recorder.
	Obs obs.Recorder
	// CustomWeights supplies per-node static weights for the DCA
	// algorithm (KindCustom). When nil, distinct uniform weights are
	// drawn from the seed.
	CustomWeights []float64
	// Adaptive enables the adaptive hello interval extension (A4).
	Adaptive *AdaptiveBI
	// Energy enables the per-node battery model: TX/RX costs per hello
	// byte and an idle drain are charged at the radio layer, the remaining
	// battery fraction penalizes the node's election weight (with extra
	// rotation pressure on low-battery heads), and a node whose battery
	// reaches zero is crashed through the same churn path as a scheduled
	// failure — permanently, since batteries do not recharge. Nil disables
	// the model entirely and is bit-identical to the pre-energy engine.
	Energy *energy.Config
	// Apps are protocols running on top of the clustered network (e.g.
	// the CBRP-lite routing protocol). Started when the network is built.
	Apps []App
	// HopDelay is the per-hop forwarding latency for app-layer packets in
	// seconds (default 1 ms). Hello beacons are unaffected.
	HopDelay float64
	// HelloCollisions enables a simple MAC collision model for hello
	// beacons: a beacon occupies the air for HelloAirtime seconds, and two
	// receptions overlapping at a receiver destroy each other (no capture).
	// Beacons are additionally jittered per transmission (±10% of BI) so
	// fixed-phase schedules cannot collide persistently — exactly what a
	// real hello protocol does. The paper's evaluation counts only
	// successfully received packets, so this models the loss it abstracts.
	HelloCollisions bool
	// HelloAirtime is the on-air duration of one beacon in seconds
	// (default 0.8 ms ~ a 100-byte hello at 1 Mb/s).
	HelloAirtime float64
	// CombinedDegreeWeight, when positive and the algorithm uses the
	// mobility weight, adds CombinedDegreeWeight*|degree - IdealDegree| to
	// the election value — the WCA-lite combined weight (clusterheads
	// should be slow AND neither isolated nor overloaded).
	CombinedDegreeWeight float64
	// IdealDegree is WCA-lite's target neighbor count (default 8).
	IdealDegree int
	// Failures schedules node crashes (and optional recoveries): a downed
	// node stops beaconing, receives nothing, and loses all protocol
	// state; on recovery it rejoins as a fresh undecided node. Used by
	// failure-injection tests and the "failures" experiment.
	Failures []NodeFailure
	// ForceBruteForce bypasses the spatial-index candidate query and
	// scans every node on each broadcast. Stochastic propagation models
	// (shadowing) force this on automatically; tests use it to verify the
	// index takes no shortcuts.
	ForceBruteForce bool
	// Tiles, when > 1, runs the simulation on the tiled-parallel scheduler:
	// the arena is partitioned into Tiles grid tiles and each
	// synchronization window's beacon ticks are planned concurrently, one
	// goroutine pool task per tile, before the global event queue replays
	// them in the exact sequential order. Results are bit-identical to
	// Tiles <= 1 by construction (see DESIGN.md S29). Ignored — the run
	// falls back to the sequential scheduler — when the propagation model
	// is stochastic (shadowing) or ForceBruteForce is set, because those
	// paths have no bounded candidate radius to plan against.
	Tiles int
	// TileOffsetCells rotates the tile-to-cell assignment by this many grid
	// cells in each axis. Tile placement is pure work partitioning, so any
	// offset produces bit-identical results — the metamorphic property the
	// harness's tiling oracle checks. Must be >= 0.
	TileOffsetCells int
}

// Validation errors.
var (
	ErrNoMobility = errors.New("simnet: mobility model is required")
	ErrBadConfig  = errors.New("simnet: invalid config")
)

// withDefaults returns a copy of cfg with defaults applied.
func (cfg Config) withDefaults() Config {
	if cfg.Propagation == nil {
		cfg.Propagation = radio.NewTwoRayGround()
	}
	if cfg.TxPower == 0 {
		cfg.TxPower = radio.DefaultTxPower
	}
	if cfg.BroadcastInterval == 0 {
		cfg.BroadcastInterval = DefaultBroadcastInterval
	}
	if cfg.TimeoutPeriod == 0 {
		cfg.TimeoutPeriod = DefaultTimeoutPeriod
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = DefaultSampleInterval
	}
	if cfg.Loss == nil {
		cfg.Loss = channel.NoLoss{}
	}
	if cfg.Algorithm.Name == "" {
		cfg.Algorithm = cluster.MOBIC
	}
	if cfg.HopDelay == 0 {
		cfg.HopDelay = 0.001
	}
	if cfg.HelloAirtime == 0 {
		cfg.HelloAirtime = 0.0008
	}
	if cfg.IdealDegree == 0 {
		cfg.IdealDegree = 8
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.Nop{}
	}
	return cfg
}

// validate checks a defaults-applied config.
func (cfg Config) validate() error {
	switch {
	case cfg.N <= 0:
		return fmt.Errorf("%w: N = %d", ErrBadConfig, cfg.N)
	case cfg.Duration <= 0:
		return fmt.Errorf("%w: duration = %g", ErrBadConfig, cfg.Duration)
	case cfg.Mobility == nil:
		return ErrNoMobility
	case cfg.TxRange <= 0:
		return fmt.Errorf("%w: tx range = %g", ErrBadConfig, cfg.TxRange)
	case cfg.TxPower <= 0:
		return fmt.Errorf("%w: tx power = %g", ErrBadConfig, cfg.TxPower)
	case cfg.BroadcastInterval <= 0:
		return fmt.Errorf("%w: broadcast interval = %g", ErrBadConfig, cfg.BroadcastInterval)
	case cfg.TimeoutPeriod < cfg.BroadcastInterval:
		return fmt.Errorf("%w: timeout period %g < broadcast interval %g (neighbors would expire between beacons)",
			ErrBadConfig, cfg.TimeoutPeriod, cfg.BroadcastInterval)
	case cfg.HopDelay < 0:
		return fmt.Errorf("%w: hop delay = %g", ErrBadConfig, cfg.HopDelay)
	case cfg.HelloAirtime <= 0 || cfg.HelloAirtime >= cfg.BroadcastInterval/2:
		return fmt.Errorf("%w: hello airtime = %g", ErrBadConfig, cfg.HelloAirtime)
	case cfg.SampleInterval <= 0:
		return fmt.Errorf("%w: sample interval = %g", ErrBadConfig, cfg.SampleInterval)
	case cfg.Warmup < 0 || cfg.Warmup >= cfg.Duration:
		return fmt.Errorf("%w: warmup %g outside [0, duration)", ErrBadConfig, cfg.Warmup)
	case !cfg.Area.Valid():
		return fmt.Errorf("%w: invalid area %v", ErrBadConfig, cfg.Area)
	case cfg.Tiles < 0:
		return fmt.Errorf("%w: tiles = %d", ErrBadConfig, cfg.Tiles)
	case cfg.TileOffsetCells < 0:
		return fmt.Errorf("%w: tile offset = %d cells", ErrBadConfig, cfg.TileOffsetCells)
	}
	if cfg.CustomWeights != nil && len(cfg.CustomWeights) != cfg.N {
		return fmt.Errorf("%w: %d custom weights for %d nodes", ErrBadConfig, len(cfg.CustomWeights), cfg.N)
	}
	for _, f := range cfg.Failures {
		if f.Node < 0 || int(f.Node) >= cfg.N {
			return fmt.Errorf("%w: failure for node %d of %d", ErrBadConfig, f.Node, cfg.N)
		}
		if f.At < 0 || f.At >= cfg.Duration {
			return fmt.Errorf("%w: failure at t=%g outside run", ErrBadConfig, f.At)
		}
		if f.RecoverAt != 0 && f.RecoverAt <= f.At {
			return fmt.Errorf("%w: recovery at %g not after failure at %g", ErrBadConfig, f.RecoverAt, f.At)
		}
	}
	if cfg.Adaptive != nil {
		if err := cfg.Adaptive.validate(); err != nil {
			return err
		}
	}
	if cfg.Energy != nil {
		if err := cfg.Energy.Validate(); err != nil {
			return err
		}
	}
	return nil
}
