package simnet

import (
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/geom"
	"mobic/internal/mobility"
)

func TestFailureValidation(t *testing.T) {
	base := waypointConfig(cluster.MOBIC, 150, 1)
	tests := []struct {
		name string
		f    NodeFailure
	}{
		{name: "negative node", f: NodeFailure{Node: -1, At: 10}},
		{name: "node out of range", f: NodeFailure{Node: 99, At: 10}},
		{name: "failure after end", f: NodeFailure{Node: 1, At: 1e6}},
		{name: "negative time", f: NodeFailure{Node: 1, At: -5}},
		{name: "recovery before failure", f: NodeFailure{Node: 1, At: 50, RecoverAt: 40}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			cfg.Failures = []NodeFailure{tt.f}
			if _, err := New(cfg); err == nil {
				t.Error("invalid failure spec accepted")
			}
		})
	}
}

func TestCrashedNodeStopsParticipating(t *testing.T) {
	area := geom.Square(300)
	cfg := Config{
		N:         10,
		Area:      area,
		Duration:  120,
		Seed:      4,
		Algorithm: cluster.LCC,
		Mobility:  &mobility.Static{Area: area},
		TxRange:   200,
		Failures:  []NodeFailure{{Node: 0, At: 60}},
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(59)
	// On a static clique-ish topology under LCC, node 0 (lowest ID) heads.
	if net.Snapshot()[0].Role != cluster.RoleHead {
		t.Skip("node 0 did not become head in this layout")
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	snap := net.Snapshot()
	if !snap[0].Down {
		t.Error("node 0 should be down")
	}
	if snap[0].Role != cluster.RoleUndecided {
		t.Errorf("crashed node role = %v, want undecided", snap[0].Role)
	}
	// The survivors must have re-elected a head among themselves.
	headSeen := false
	for _, s := range snap[1:] {
		if s.Role == cluster.RoleHead {
			headSeen = true
		}
		if s.Head == 0 {
			t.Errorf("node %d still affiliated to the dead head", s.ID)
		}
	}
	if !headSeen {
		t.Error("no replacement head elected after the crash")
	}
}

func TestCrashRecovery(t *testing.T) {
	area := geom.Square(300)
	cfg := Config{
		N:         10,
		Area:      area,
		Duration:  180,
		Seed:      4,
		Algorithm: cluster.MOBIC,
		Mobility:  &mobility.Static{Area: area},
		TxRange:   200,
		Failures:  []NodeFailure{{Node: 3, At: 60, RecoverAt: 120}},
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(100)
	if !net.Snapshot()[3].Down {
		t.Fatal("node 3 should be down at t=100")
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	snap := net.Snapshot()
	if snap[3].Down {
		t.Error("node 3 should have recovered")
	}
	if snap[3].Role == cluster.RoleUndecided {
		t.Error("recovered node should have rejoined a cluster by end of run")
	}
}

func TestMassFailureSurvivorsRecluster(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 200, 6)
	cfg.Duration = 300
	// Kill a third of the network at t=150.
	for i := int32(0); i < 16; i++ {
		cfg.Failures = append(cfg.Failures, NodeFailure{Node: i, At: 150})
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	downCount, liveHeads := 0, 0
	for _, s := range net.Snapshot() {
		if s.Down {
			downCount++
			continue
		}
		if s.Role == cluster.RoleHead {
			liveHeads++
		}
	}
	if downCount != 16 {
		t.Errorf("down = %d, want 16", downCount)
	}
	if liveHeads == 0 {
		t.Error("survivors formed no clusters")
	}
	if res.Metrics.CHChanges == 0 {
		t.Error("mass failure should cause reclustering churn")
	}
}

func TestDuplicateFailureEntriesAreIdempotent(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 150, 2)
	cfg.Duration = 120
	cfg.Failures = []NodeFailure{
		{Node: 3, At: 40},
		{Node: 3, At: 50}, // second crash of an already-down node: no-op
		{Node: 3, At: 45, RecoverAt: 100},
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Snapshot()[3].Down {
		t.Error("node 3 should be up after its recovery at t=100")
	}
}

func TestWCACombinedWeight(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 150, 2)
	cfg.Duration = 120
	cfg.CombinedDegreeWeight = 0.5
	cfg.IdealDegree = 6
	res := mustRun(t, cfg)
	if res.FinalHeads == 0 {
		t.Error("combined-weight run formed no clusters")
	}
	// Determinism with the combined weight.
	res2 := mustRun(t, cfg)
	if *res != *res2 {
		t.Error("combined weight broke determinism")
	}
}

func TestFailureDeterminism(t *testing.T) {
	cfg := waypointConfig(cluster.MOBIC, 150, 2)
	cfg.Duration = 120
	cfg.Failures = []NodeFailure{{Node: 5, At: 40, RecoverAt: 80}, {Node: 9, At: 60}}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if *a != *b {
		t.Errorf("failure injection broke determinism")
	}
}
