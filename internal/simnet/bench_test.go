package simnet

import (
	"runtime"
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/energy"
	"mobic/internal/geom"
	"mobic/internal/mobility"
	"mobic/internal/obs"
)

// benchDuration bounds how much simulated time one benchmark network can
// serve; trajectories are generated eagerly, so this cannot be "infinite".
// Long -benchtime runs rebuild the network (off the timer) when it runs out.
const benchDuration = 3600.0

// benchNetwork builds the broadcast-delivery benchmark scenario: the paper's
// Table 1 density with the MAC collision model on, so every beacon walks the
// full hot path (grid query, threshold test, airtime deferral, neighbor-table
// update) and warms it past the listen-only first round.
func benchNetwork(b *testing.B, collisions bool) *Network {
	return benchNetworkObs(b, collisions, nil)
}

// benchNetworkObs is benchNetwork with a recorder installed.
func benchNetworkObs(b *testing.B, collisions bool, rec obs.Recorder) *Network {
	return benchNetworkMut(b, collisions, rec, nil)
}

// benchNetworkMut is benchNetworkObs with a config mutator applied before the
// network is built, so policy variants measure the same scenario.
func benchNetworkMut(b *testing.B, collisions bool, rec obs.Recorder, mutate func(*Config)) *Network {
	b.Helper()
	area := geom.Square(670)
	cfg := Config{
		N:               50,
		Area:            area,
		Duration:        benchDuration, // the benchmark advances the clock itself
		Seed:            1,
		Algorithm:       cluster.MOBIC,
		Mobility:        &mobility.RandomWaypoint{Area: area, MaxSpeed: 20},
		TxRange:         250,
		SampleInterval:  5,
		HelloCollisions: collisions,
		Obs:             rec,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	net, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Warm up: let tables, pools and scratch buffers reach steady state.
	net.sched.RunUntil(30)
	return net
}

// BenchmarkBroadcastDelivery measures one steady-state beacon interval of the
// full 50-node network — every node ticks, broadcasts, and delivers through
// the collision-model airtime path. This is the per-beacon hot loop every
// experiment and every mobicd job spends its cycles in; allocs/op is the
// gated number (see BENCH_engine.json).
func BenchmarkBroadcastDelivery(b *testing.B) {
	runBeaconIntervals(b, true)
}

// BenchmarkBroadcastDeliveryNoMAC is the same loop with the collision model
// off: deliveries apply synchronously, isolating the grid-query plus
// applyHello path from the airtime deferral machinery.
func BenchmarkBroadcastDeliveryNoMAC(b *testing.B) {
	runBeaconIntervals(b, false)
}

// BenchmarkAdaptiveBI is BenchmarkBroadcastDelivery with the clustering
// policies enabled: every node floats its own hello interval (adaptive BI)
// and carries a battery whose drain accounting and election penalty ride the
// same hot loop. The budget is far above the horizon's drain, so the number
// measures the policies' steady-state bookkeeping — and allocs/op is gated at
// 0 alongside the baseline, pinning that enabling the policies does not cost
// the zero-alloc tick.
func BenchmarkAdaptiveBI(b *testing.B) {
	runBeaconIntervalsMut(b, true, nil, func(cfg *Config) {
		cfg.Adaptive = &AdaptiveBI{Min: 0.5, Max: 4, MRef: 4, Hysteresis: 0.25}
		ec := energy.Default()
		ec.InitialJ = 1e6
		cfg.Energy = &ec
	})
}

// BenchmarkInstrumentedBroadcastDelivery is BenchmarkBroadcastDelivery with
// a live obs.Registry installed, measuring the full cost of enabled
// telemetry on the hot loop. Its ns/op and allocs/op are gated against the
// uninstrumented baseline in BENCH_engine.json: the delta is the true price
// of observability, and allocs/op must stay 0.
func BenchmarkInstrumentedBroadcastDelivery(b *testing.B) {
	runBeaconIntervalsObs(b, true, obs.NewRegistry())
}

// megaDuration bounds the 10k-node benchmark network's trajectories: long
// enough for many measured intervals, short enough that the off-timer
// trajectory generation stays cheap.
const megaDuration = 240.0

// megaNetwork builds the 10k-node mega-scenario: the paper's Table 1 node
// density (50 nodes per 670 m square) scaled 200x, so per-node degree — and
// therefore per-beacon work — matches the pinned workloads while total work
// is 200x one. SampleInterval is stretched so the O(N^2) connectivity sampler
// stays out of the measured beacon intervals.
func megaNetwork(b *testing.B, tiles int) *Network {
	b.Helper()
	area := geom.Square(9475) // 670 * sqrt(200)
	cfg := Config{
		N:              10000,
		Area:           area,
		Duration:       megaDuration,
		Seed:           1,
		Algorithm:      cluster.MOBIC,
		Mobility:       &mobility.RandomWaypoint{Area: area, MaxSpeed: 20},
		TxRange:        250,
		SampleInterval: 60,
		Tiles:          tiles,
	}
	net, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if net.tiled != nil {
		net.tiled.start(net)
		b.Cleanup(net.tiled.stop)
	}
	net.advance(6) // warm up past the listen-only first round
	return net
}

// BenchmarkMegaScenario measures one steady-state beacon interval of the
// 10k-node preset, sequentially and on the tiled-parallel scheduler — the
// ROADMAP's million-node-engine gate. The tiled sub-benchmark's ns/op over
// the sequential one is the wall-clock speedup; both are pinned in
// BENCH_engine.json.
func BenchmarkMegaScenario(b *testing.B) {
	b.Run("sequential", func(b *testing.B) { runMegaIntervals(b, 0) })
	b.Run("tiled", func(b *testing.B) {
		tiles := 4 * runtime.GOMAXPROCS(0)
		if tiles > 64 {
			tiles = 64
		}
		runMegaIntervals(b, tiles)
	})
}

// runMegaIntervals advances the mega network one beacon interval per op,
// rebuilding (off-timer) when the bounded trajectories run out.
func runMegaIntervals(b *testing.B, tiles int) {
	net := megaNetwork(b, tiles)
	interval := net.cfg.BroadcastInterval
	var fired uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.sched.Now()+interval > megaDuration-1 {
			b.StopTimer()
			fired += net.sched.Fired()
			net = megaNetwork(b, tiles)
			b.StartTimer()
		}
		net.advance(net.sched.Now() + interval)
	}
	b.StopTimer()
	if fired+net.sched.Fired() == 0 {
		b.Fatal("no events fired")
	}
}

// runBeaconIntervals advances the network one beacon interval per benchmark
// op, rebuilding (off-timer) when the bounded trajectories run out.
func runBeaconIntervals(b *testing.B, collisions bool) {
	runBeaconIntervalsObs(b, collisions, nil)
}

// runBeaconIntervalsObs is runBeaconIntervals with a recorder installed.
func runBeaconIntervalsObs(b *testing.B, collisions bool, rec obs.Recorder) {
	runBeaconIntervalsMut(b, collisions, rec, nil)
}

// runBeaconIntervalsMut is runBeaconIntervalsObs with a config mutator, so
// policy-enabled variants advance the same amount of simulated time per op.
func runBeaconIntervalsMut(b *testing.B, collisions bool, rec obs.Recorder, mutate func(*Config)) {
	b.Helper()
	net := benchNetworkMut(b, collisions, rec, mutate)
	interval := net.cfg.BroadcastInterval
	var fired uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net.sched.Now()+interval > benchDuration-1 {
			b.StopTimer()
			fired += net.sched.Fired()
			net = benchNetworkMut(b, collisions, rec, mutate)
			b.StartTimer()
		}
		net.sched.RunUntil(net.sched.Now() + interval)
	}
	b.StopTimer()
	if fired+net.sched.Fired() == 0 {
		b.Fatal("no events fired")
	}
}
