package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mobic/internal/experiment"
)

// NewHandler exposes the service as a JSON HTTP API:
//
//	POST   /v1/jobs             submit a job (202, or 429 + Retry-After);
//	                            an Idempotency-Key header makes retried
//	                            submissions return the original job (200)
//	POST   /v1/jobs:batch       submit up to MaxBatchJobs specs atomically:
//	                            every spec validates and is journaled in one
//	                            WAL record, or nothing is enqueued (400/429
//	                            for the whole batch)
//	GET    /v1/jobs/{id}        job status (+ result once finished)
//	GET    /v1/jobs/{id}/stream NDJSON status stream until terminal
//	GET    /v1/jobs/{id}/checkpoints
//	                            portable checkpoint export: the job's spec,
//	                            key and completed-cell prefix, the payload
//	                            the coordinator ships on failover
//	POST   /v1/jobs/{id}/restore
//	                            re-create a job under the given ID seeded
//	                            with a shipped checkpoint prefix; it resumes
//	                            at the first incomplete cell
//	DELETE /v1/jobs/{id}        request cancellation
//	GET    /livez               liveness: 200 while the process serves
//	GET    /readyz              readiness: 503 while draining or when the
//	                            journal cannot persist records
//	GET    /healthz             alias for /readyz (readiness + queue gauges)
//	GET    /metrics             Prometheus text metrics
//
// Tenant identity comes from the X-Mobic-Tenant header (explicit name,
// wins) or the Authorization header (API key, optionally "Bearer "-
// prefixed); unauthenticated requests run as the default tenant. Over-
// quota and over-rate tenants are shed with a per-tenant 429 +
// Retry-After while other tenants keep being admitted.
func NewHandler(svc *Service) http.Handler {
	a := &api{svc: svc}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("POST /v1/jobs:batch", a.submitBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", a.status)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", a.stream)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoints", a.checkpoints)
	mux.HandleFunc("POST /v1/jobs/{id}/restore", a.restore)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	mux.HandleFunc("POST /v1/replica/{id}", a.replicaPut)
	mux.HandleFunc("GET /v1/replica/{id}", a.replicaGet)
	mux.HandleFunc("GET /livez", a.livez)
	mux.HandleFunc("GET /readyz", a.readyz)
	mux.HandleFunc("GET /healthz", a.readyz)
	mux.HandleFunc("GET /metrics", a.metrics)
	return mux
}

type api struct {
	svc *Service
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // header already sent; nothing useful to do on error
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// tenant resolves the request's tenant identity for SubmitOpts.
func (a *api) tenant(r *http.Request) string {
	return a.svc.ResolveTenant(r.Header.Get("Authorization"), r.Header.Get("X-Mobic-Tenant"))
}

// shed writes the 429 for an admission refusal. A *ShedError carries the
// per-tenant Retry-After (quota and rate sheds predict when that tenant
// frees up); a bare ErrQueueFull falls back to the global queue hint.
func (a *api) shed(w http.ResponseWriter, err error) {
	retry := a.svc.RetryAfterHint()
	var se *ShedError
	if errors.As(err, &se) {
		retry = se.RetryAfter
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusTooManyRequests, "%v", err)
}

// isShed reports whether err is any admission refusal (capacity, tenant
// quota, or rate limit) — everything that maps to 429.
func isShed(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrTenantQuota) || errors.Is(err, ErrRateLimited)
}

// submit handles POST /v1/jobs. Backpressure contract: when the queue is
// full the request is shed with 429 and a Retry-After hint derived from the
// queue depth and the EWMA of recent job durations. An Idempotency-Key
// header makes the submission replay-safe: resubmitting the same key
// returns the original job with 200 instead of creating a duplicate, and
// the mapping survives daemon restarts via the journal.
func (a *api) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	job, existed, err := a.svc.SubmitWith(spec, SubmitOpts{
		Key:     r.Header.Get("Idempotency-Key"),
		Replica: r.Header.Get("X-Mobic-Replica"),
		Tenant:  a.tenant(r),
	})
	switch {
	case errors.Is(err, ErrInvalidSpec):
		writeError(w, http.StatusBadRequest, "%v", err)
	case isShed(err):
		a.shed(w, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		st, _, _ := job.Snapshot()
		w.Header().Set("Location", "/v1/jobs/"+job.ID())
		code := http.StatusAccepted
		if existed {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	}
}

// batchRequest is the body of POST /v1/jobs:batch.
type batchRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// batchResponse mirrors the request: one Status per submitted spec, in
// order.
type batchResponse struct {
	Jobs []Status `json:"jobs"`
}

// decodeBatch parses a batch body. Factored out of the handler so the
// fuzz target exercises exactly the wire decoder.
func decodeBatch(r io.Reader) (batchRequest, error) {
	var req batchRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return batchRequest{}, err
	}
	return req, nil
}

// submitBatch handles POST /v1/jobs:batch: all-or-none submission of up
// to MaxBatchJobs specs. One invalid spec 400s the whole batch (naming
// its index); admission is a single decision for the batch, so a 429
// sheds every spec together. On 202 the response lists one Status per
// spec, in request order.
func (a *api) submitBatch(w http.ResponseWriter, r *http.Request) {
	req, err := decodeBatch(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	jobs, err := a.svc.SubmitBatch(req.Jobs, SubmitOpts{
		Replica: r.Header.Get("X-Mobic-Replica"),
		Tenant:  a.tenant(r),
	})
	switch {
	case errors.Is(err, ErrInvalidSpec):
		writeError(w, http.StatusBadRequest, "%v", err)
	case isShed(err):
		a.shed(w, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		resp := batchResponse{Jobs: make([]Status, len(jobs))}
		for i, job := range jobs {
			resp.Jobs[i], _, _ = job.Snapshot()
		}
		writeJSON(w, http.StatusAccepted, resp)
	}
}

// job resolves the {id} path value, writing 404 on a miss.
func (a *api) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := a.svc.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q (it may have expired)", id)
		return nil, false
	}
	return job, true
}

func (a *api) status(w http.ResponseWriter, r *http.Request) {
	job, ok := a.job(w, r)
	if !ok {
		return
	}
	st, _, _ := job.Snapshot()
	writeJSON(w, http.StatusOK, st)
}

func (a *api) cancel(w http.ResponseWriter, r *http.Request) {
	job, ok := a.job(w, r)
	if !ok {
		return
	}
	job.RequestCancel()
	st, _, _ := job.Snapshot()
	writeJSON(w, http.StatusOK, st)
}

// CheckpointExport is the wire form of GET /v1/jobs/{id}/checkpoints:
// everything a coordinator needs to re-create the job on another worker.
type CheckpointExport struct {
	ID          string                   `json:"id"`
	Spec        JobSpec                  `json:"spec"`
	Key         string                   `json:"key,omitempty"`
	State       State                    `json:"state"`
	Attempt     int                      `json:"attempt,omitempty"`
	Checkpoints experiment.CheckpointSet `json:"checkpoints"`
}

// checkpoints handles GET /v1/jobs/{id}/checkpoints: the portable export
// of the job's journaled completed-cell prefix.
func (a *api) checkpoints(w http.ResponseWriter, r *http.Request) {
	job, ok := a.job(w, r)
	if !ok {
		return
	}
	st, _, _ := job.Snapshot()
	writeJSON(w, http.StatusOK, CheckpointExport{
		ID:          job.ID(),
		Spec:        job.Spec(),
		Key:         job.IdempotencyKey(),
		State:       st.State,
		Attempt:     st.Attempt,
		Checkpoints: experiment.ExportCheckpoints(job.checkpointed()),
	})
}

// restoreRequest is the body of POST /v1/jobs/{id}/restore — a
// CheckpointExport minus the redundant ID (the path carries it).
type restoreRequest struct {
	Spec        JobSpec                  `json:"spec"`
	Key         string                   `json:"key,omitempty"`
	Tenant      string                   `json:"tenant,omitempty"`
	Checkpoints experiment.CheckpointSet `json:"checkpoints"`
}

// restore handles POST /v1/jobs/{id}/restore: the failover entry point. A
// job is created under the caller-chosen ID, pre-seeded with the shipped
// contiguous checkpoint prefix, and enqueued; it resumes at the first
// incomplete cell. Replaying the same restore is idempotent (200 with the
// existing job). Backpressure matches submit: 429 + Retry-After.
func (a *api) restore(w http.ResponseWriter, r *http.Request) {
	var req restoreRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding restore request: %v", err)
		return
	}
	cps, err := req.Checkpoints.Resume()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = a.tenant(r)
	}
	job, existed, err := a.svc.RestoreWith(r.PathValue("id"), req.Spec, SubmitOpts{
		Key:     req.Key,
		Replica: r.Header.Get("X-Mobic-Replica"),
		Tenant:  tenant,
	}, cps)
	switch {
	case errors.Is(err, ErrInvalidSpec):
		writeError(w, http.StatusBadRequest, "%v", err)
	case isShed(err):
		a.shed(w, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		st, _, _ := job.Snapshot()
		w.Header().Set("Location", "/v1/jobs/"+job.ID())
		code := http.StatusAccepted
		if existed {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	}
}

// replicaPut handles POST /v1/replica/{id}: one proactive-replication batch
// (MOBICREPL1 magic + CRC-framed records) from a ring predecessor. The
// response acks the record count now held, which the sender uses as its
// high-water mark. Torn or corrupt frames end the batch's valid prefix
// exactly like WAL replay; a batch with no intact submit record is a 400.
func (a *api) replicaPut(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReplicaBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading replica batch: %v", err)
		return
	}
	n, err := a.svc.Replicas().Apply(r.PathValue("id"), data, time.Now())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"records": n})
}

// replicaGet handles GET /v1/replica/{id}: the replica's current view in
// CheckpointExport shape — what a failover restore would resume from. Used
// by tests and operators to observe replication lag.
func (a *api) replicaGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spec, key, cps, ok := a.svc.Replicas().Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no replica for job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointExport{
		ID:          id,
		Spec:        spec,
		Key:         key,
		Checkpoints: experiment.ExportCheckpoints(cps),
	})
}

// stream handles GET /v1/jobs/{id}/stream: one NDJSON StreamEvent line
// per state transition and completed cell, flushed immediately, ending
// with the "result" event (which carries the final status and payload).
// Clients just read lines until EOF. The event log is replayed from the
// beginning, so attaching late still yields the full history.
func (a *api) stream(w http.ResponseWriter, r *http.Request) {
	job, ok := a.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Push the response header out immediately: a client attaching to a
	// queued job would otherwise see its GET hang in the transport until
	// the first event happens to fill the write buffer.
	if flusher != nil {
		flusher.Flush()
	}

	enc := json.NewEncoder(w)
	next := 0
	for {
		events, notify := job.EventsSince(next)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return // client went away
			}
			// Flush per event, not per batch: batching delayed every line
			// but the last in a burst, and a burst ending in "result"
			// returned before flushing at all, leaving the final events
			// stuck in the buffer until the handler's implicit close.
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Type == "result" {
				return
			}
		}
		next += len(events)
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// livez is the liveness probe: 200 as long as the process can serve HTTP
// at all. It deliberately checks nothing else — a draining daemon or a
// full disk is degraded, not dead, and restarting it would lose in-flight
// work. Orchestrators should restart on /livez failures and merely stop
// routing on /readyz failures.
func (a *api) livez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "alive"})
}

// readyz is the readiness probe (also served at /healthz for backwards
// compatibility): 503 with "ready": false while the service is draining or
// its journal cannot persist records — accepting a job that cannot be made
// durable would silently void the crash-recovery guarantee. The body keeps
// the load gauges an external balancer needs for routing decisions.
func (a *api) readyz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status        string `json:"status"`
		Ready         bool   `json:"ready"`
		Reason        string `json:"reason,omitempty"`
		QueueDepth    int    `json:"queue_depth"`
		QueueCapacity int    `json:"queue_capacity"`
		StoredJobs    int    `json:"stored_jobs"`
	}
	ready, reason := a.svc.Ready()
	h := health{
		Status:        "ok",
		Ready:         ready,
		Reason:        reason,
		QueueDepth:    a.svc.QueueDepth(),
		QueueCapacity: a.svc.QueueCapacity(),
		StoredJobs:    a.svc.StoredJobs(),
	}
	code := http.StatusOK
	if !ready {
		h.Status = reason
		if a.svc.Draining() {
			h.Status = "draining"
		}
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (a *api) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := a.svc.Metrics().WriteTo(w, a.svc.QueueDepth(), a.svc.StoredJobs()); err != nil {
		return
	}
	// Engine/experiment telemetry families (mobic_sim_*, mobic_net_*,
	// mobic_experiment_*) follow the service's own when a Registry is
	// installed; obs.Nop has no exposition and is skipped.
	if wt, ok := a.svc.Observability().(io.WriterTo); ok {
		_, _ = wt.WriteTo(w)
	}
	// Per-tenant admission/fairness families (mobicd_tenant_*).
	_, _ = a.svc.TenantMetrics().WriteTo(w)
}
