package service

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mobic/internal/experiment"
)

// sampleRecords builds a small but representative record sequence.
func sampleRecords() []record {
	spec := JobSpec{Experiment: "fig3", Seeds: 2}
	cs := experiment.CellStats{CHChanges: 3.5, AvgClusters: 7}
	t0 := time.Unix(1700000000, 0).UTC()
	return []record{
		{Type: recSubmit, Job: "aaaa", Time: t0, Spec: &spec, Key: "idem-1"},
		{Type: recStart, Job: "aaaa", Time: t0.Add(time.Second), Attempt: 1},
		{Type: recCheckpoint, Job: "aaaa", Time: t0.Add(2 * time.Second), Cell: 0, Stats: &cs},
		{Type: recRetry, Job: "aaaa", Time: t0.Add(3 * time.Second), Attempt: 1, Error: "boom"},
		{Type: recFinish, Job: "aaaa", Time: t0.Add(4 * time.Second), State: StateSucceeded,
			Output: &Output{Result: &experiment.Result{ID: "stub"}}},
	}
}

func TestJournalAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, recs, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records, want 0", len(recs))
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].Job != want[i].Job ||
			got[i].Attempt != want[i].Attempt || got[i].State != want[i].State {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[2].Stats == nil || got[2].Stats.CHChanges != 3.5 {
		t.Errorf("checkpoint stats not preserved: %+v", got[2].Stats)
	}
	if got[4].Output == nil || got[4].Output.Result.ID != "stub" {
		t.Errorf("finish output not preserved: %+v", got[4].Output)
	}
}

// TestJournalTornTail simulates a crash mid-append: the file ends with a
// partial frame, which replay must truncate away while keeping every record
// before it.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	full := j.Size()
	j.Close()

	path := filepath.Join(dir, "journal.wal")
	for _, cut := range []int64{1, 5, 9, 20} {
		if err := os.Truncate(path, full-cut); err != nil {
			t.Fatal(err)
		}
		j2, got, err := openJournal(dir, nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != len(want)-1 {
			t.Errorf("cut %d: replayed %d records, want %d", cut, len(got), len(want)-1)
		}
		// The truncation must leave a valid file: append and re-replay.
		if err := j2.Append(want[len(want)-1]); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		full = j2.Size()
		j2.Close()
		j3, again, err := openJournal(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(want) {
			t.Errorf("cut %d: after repair replayed %d records, want %d", cut, len(again), len(want))
		}
		j3.Close()
	}
}

// TestJournalCorruptPayload flips a byte inside a record's payload: the CRC
// must reject that record and everything after it.
func TestJournalCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, "journal.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte in the middle of the file — inside some record's JSON.
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, got, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) >= len(sampleRecords()) {
		t.Fatalf("replayed %d records from corrupted file, want fewer than %d", len(got), len(sampleRecords()))
	}
	for _, rec := range got {
		if rec.Type == "" || rec.Job == "" {
			t.Errorf("corrupted record leaked through CRC: %+v", rec)
		}
	}
}

// TestJournalGarbageFile: a file that never had a valid header is reset to
// an empty journal rather than an error.
func TestJournalGarbageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from garbage, want 0", len(recs))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, journalMagic) {
		t.Errorf("garbage file not reset to bare magic header: %q", data)
	}
}

func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for i := 0; i < 100; i++ {
		for _, rec := range recs {
			if err := j.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := j.Size()
	if err := j.Compact(recs); err != nil {
		t.Fatal(err)
	}
	if j.Size() >= before {
		t.Errorf("compaction did not shrink the WAL: %d -> %d", before, j.Size())
	}
	// The compacted journal must still accept appends and replay cleanly.
	if err := j.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, got, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != len(recs)+1 {
		t.Fatalf("after compaction replayed %d records, want %d", len(got), len(recs)+1)
	}
}

// TestJournalErrLatch: appends against a closed file must surface through
// Err (the readiness probe) and clear after recovery.
func TestJournalErrLatch(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("fresh journal unhealthy: %v", err)
	}
	j.f.Close() // simulate the descriptor going bad underneath
	if err := j.Append(sampleRecords()[0]); err == nil {
		t.Fatal("append on closed file succeeded")
	}
	if err := j.Err(); err == nil {
		t.Fatal("Err() nil after failed append")
	}
}
