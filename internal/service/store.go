package service

import (
	"sync"
	"time"
)

// Store is the in-memory job index. Terminal jobs are evicted once their
// TTL elapses so an always-on daemon's memory stays bounded; running and
// queued jobs are never evicted.
type Store struct {
	mu   sync.Mutex
	jobs map[string]*Job
	ttl  time.Duration
}

// NewStore returns a store evicting terminal jobs ttl after they finish.
func NewStore(ttl time.Duration) *Store {
	return &Store{jobs: make(map[string]*Job), ttl: ttl}
}

// Put indexes a job.
func (s *Store) Put(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID()] = j
}

// Get looks a job up by ID.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Delete removes a job (used when enqueueing fails after Put).
func (s *Store) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
}

// Len returns the number of indexed jobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// EvictExpired removes terminal jobs that finished more than TTL before
// now and returns how many were evicted. The janitor calls it
// periodically; tests call it directly with a synthetic clock.
func (s *Store) EvictExpired(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	evicted := 0
	for id, j := range s.jobs {
		st, _, _ := j.Snapshot()
		if st.State.Terminal() && st.FinishedAt != nil && now.Sub(*st.FinishedAt) >= s.ttl {
			delete(s.jobs, id)
			evicted++
		}
	}
	return evicted
}
