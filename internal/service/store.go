package service

import (
	"sync"
	"time"
)

// Store is the in-memory job index. Terminal jobs are evicted once their
// TTL elapses so an always-on daemon's memory stays bounded; running and
// queued jobs are never evicted. Jobs submitted with an Idempotency-Key are
// additionally indexed by that key so a client retry maps back to the
// original job instead of double-submitting.
type Store struct {
	mu   sync.Mutex
	jobs map[string]*Job
	keys map[string]string // idempotency key -> job ID
	ttl  time.Duration
}

// NewStore returns a store evicting terminal jobs ttl after they finish.
func NewStore(ttl time.Duration) *Store {
	return &Store{jobs: make(map[string]*Job), keys: make(map[string]string), ttl: ttl}
}

// Put indexes a job (and its idempotency key, if any).
func (s *Store) Put(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID()] = j
	if j.idemKey != "" {
		s.keys[j.idemKey] = j.ID()
	}
}

// Get looks a job up by ID.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// ByKey looks a job up by its idempotency key.
func (s *Store) ByKey(key string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.keys[key]
	if !ok {
		return nil, false
	}
	j, ok := s.jobs[id]
	return j, ok
}

// Delete removes a job (used when enqueueing fails after Put).
func (s *Store) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && j.idemKey != "" {
		delete(s.keys, j.idemKey)
	}
	delete(s.jobs, id)
}

// Len returns the number of indexed jobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// All returns the indexed jobs in unspecified order; journal compaction
// snapshots each one's logical records from it.
func (s *Store) All() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	return out
}

// EvictExpired removes terminal jobs that finished more than TTL before
// now and returns how many were evicted. The janitor calls it
// periodically; tests call it directly with a synthetic clock. Evicting a
// job also frees its idempotency key for reuse.
func (s *Store) EvictExpired(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	evicted := 0
	for id, j := range s.jobs {
		st, _, _ := j.Snapshot()
		if st.State.Terminal() && st.FinishedAt != nil && now.Sub(*st.FinishedAt) >= s.ttl {
			if j.idemKey != "" {
				delete(s.keys, j.idemKey)
			}
			delete(s.jobs, id)
			evicted++
		}
	}
	return evicted
}
