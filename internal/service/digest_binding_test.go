package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateBinding rewrites testdata/digest_version_binding.json:
// go test ./internal/service -run TestSpecDigestVersionBinding -update-digest-binding
var updateBinding = flag.Bool("update-digest-binding", false, "rewrite the digest version binding pin")

// goldenTracePath is the harness's golden trace digest file — the other
// half of the determinism contract this test binds together.
const goldenTracePath = "../harness/testdata/digests.json"

// versionBinding pins the pair (specDigestVersion, golden trace digests)
// as one unit. The two move for the same underlying reason — the engine or
// the spec canonicalization changed meaning — so a change to either file
// without acknowledging the other is almost always a forgotten step.
type versionBinding struct {
	// SpecDigestVersion is the cache/placement domain-separation tag from
	// internal/service/digest.go.
	SpecDigestVersion string `json:"spec_digest_version"`
	// TraceDigestsSHA256 is the hash of the golden trace digest file
	// internal/harness/testdata/digests.json, byte for byte.
	TraceDigestsSHA256 string `json:"trace_digests_sha256"`
}

// TestSpecDigestVersionBinding fails when the golden trace digests are
// regenerated without revisiting specDigestVersion (or vice versa). An
// engine change that moves the traces invalidates every cached result
// keyed under the old spec digests; forgetting the version bump would
// keep serving those stale results. The failure message names both files
// so the fix is mechanical.
func TestSpecDigestVersionBinding(t *testing.T) {
	raw, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("reading golden trace digests: %v", err)
	}
	sum := sha256.Sum256(raw)
	current := versionBinding{
		SpecDigestVersion:  specDigestVersion,
		TraceDigestsSHA256: hex.EncodeToString(sum[:]),
	}

	path := filepath.Join("testdata", "digest_version_binding.json")
	if *updateBinding {
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading binding pin (regenerate with -update-digest-binding): %v", err)
	}
	var pinned versionBinding
	if err := json.Unmarshal(data, &pinned); err != nil {
		t.Fatal(err)
	}

	switch {
	case pinned.SpecDigestVersion != current.SpecDigestVersion && pinned.TraceDigestsSHA256 != current.TraceDigestsSHA256:
		// Both moved together — the expected shape of a deliberate engine
		// change. Only the pin needs refreshing.
		t.Fatalf("specDigestVersion (internal/service/digest.go) and the golden trace digests (%s) both changed; "+
			"if deliberate, refresh the pin with -update-digest-binding", goldenTracePath)
	case pinned.TraceDigestsSHA256 != current.TraceDigestsSHA256:
		t.Fatalf("golden trace digests (%s) changed but specDigestVersion (internal/service/digest.go) did not.\n"+
			"An engine-output change invalidates results cached under the old spec digests: bump specDigestVersion, "+
			"then refresh this pin with -update-digest-binding.\n  pinned trace hash  %s\n  current trace hash %s",
			goldenTracePath, pinned.TraceDigestsSHA256, current.TraceDigestsSHA256)
	case pinned.SpecDigestVersion != current.SpecDigestVersion:
		t.Fatalf("specDigestVersion (internal/service/digest.go) changed (%q -> %q) but the golden trace digests (%s) did not.\n"+
			"If the canonicalization change is deliberate, regenerate the spec golden file (-update) and refresh this "+
			"pin with -update-digest-binding.", pinned.SpecDigestVersion, current.SpecDigestVersion, goldenTracePath)
	}
}
