package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobic/internal/experiment"
)

// soakExecute emits a fixed number of progress ticks, pausing briefly
// between them so jobs are slower than submissions — that pressure is what
// fills the queue and drives the 429 path — and so cancellation and
// concurrent stream readers get real interleavings. Cancellation is honored
// between ticks, exactly like the real runner honors it between cells.
func soakExecute(ticks int) ExecuteFunc {
	return func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		for i := 1; i <= ticks; i++ {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(500 * time.Microsecond):
			}
			progress(i, ticks)
		}
		return &Output{Result: &experiment.Result{ID: "stub", Title: "stub"}}, nil
	}
}

// streamOutcome is what one NDJSON stream client observed for one job.
type streamOutcome struct {
	id       string
	final    State
	progress []int // Done values of every progress event, in stream order
	events   int
}

// readStream consumes GET /v1/jobs/{id}/stream to EOF and reports what it
// saw. The stream contract: the line sequence starts with status(queued),
// contains at most one status(running), and ends with exactly one result.
func readStream(t *testing.T, baseURL, id string) streamOutcome {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Errorf("stream %s: %v", id, err)
		return streamOutcome{id: id}
	}
	defer resp.Body.Close()
	out := streamOutcome{id: id}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Errorf("stream %s: bad NDJSON line %q: %v", id, sc.Text(), err)
			return out
		}
		out.events++
		switch ev.Type {
		case "status":
			if out.events == 1 && ev.State != StateQueued {
				t.Errorf("stream %s: first event is %s, want queued", id, ev.State)
			}
		case "progress":
			out.progress = append(out.progress, ev.Done)
		case "result":
			out.final = ev.State
			if ev.Stat == nil {
				t.Errorf("stream %s: result event carries no status", id)
			}
		default:
			t.Errorf("stream %s: unknown event type %q", id, ev.Type)
		}
		if ev.Type == "result" {
			if sc.Scan() {
				t.Errorf("stream %s: data after the result event: %q", id, sc.Text())
			}
			return out
		}
	}
	t.Errorf("stream %s: ended without a result event (err=%v)", id, sc.Err())
	return out
}

// TestServiceSoakConcurrentClients hammers the HTTP API with concurrent
// submitters, one stream reader per accepted job, and cancelers, then checks
// the two global contracts the daemon makes:
//
//   - streams lose nothing: every accepted job's stream terminates with a
//     result event, and a succeeded job's stream shows the full contiguous
//     progress sequence 1..ticks;
//   - queue accounting balances: accepted == submitted counter, 429s ==
//     rejected counter, and every accepted job lands in exactly one of
//     completed/canceled/failed.
//
// The queue is deliberately tiny so submissions race workers for slots and
// the 429 shedding path is actually exercised. Run under -race this is also
// the data-race soak for the whole store/job/stream machinery.
func TestServiceSoakConcurrentClients(t *testing.T) {
	const (
		submitters       = 8
		jobsPerSubmitter = 25
		ticks            = 5
	)
	svc, srv := newTestAPI(t, Config{
		QueueCapacity: 4,
		Workers:       2,
		Execute:       soakExecute(ticks),
	})

	var (
		accepted atomic.Int64
		shed     atomic.Int64
		mu       sync.Mutex
		outcomes []streamOutcome
		wg       sync.WaitGroup
	)
	for s := 0; s < submitters; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobsPerSubmitter; i++ {
				resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
					strings.NewReader(`{"experiment":"fig3","seeds":1}`))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusAccepted:
					accepted.Add(1)
					var st Status
					if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
						t.Errorf("decoding 202 body: %v", err)
						resp.Body.Close()
						return
					}
					resp.Body.Close()

					wg.Add(1)
					go func(id string, cancelIt bool) {
						defer wg.Done()
						if cancelIt {
							req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
							if dresp, err := http.DefaultClient.Do(req); err == nil {
								io.Copy(io.Discard, dresp.Body)
								dresp.Body.Close()
							}
						}
						out := readStream(t, srv.URL, id)
						mu.Lock()
						outcomes = append(outcomes, out)
						mu.Unlock()
					}(st.ID, (s+i)%4 == 0) // cancel every fourth job
				case http.StatusTooManyRequests:
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				default:
					t.Errorf("submit status = %d", resp.StatusCode)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	if got := int64(len(outcomes)); got != accepted.Load() {
		t.Fatalf("%d stream outcomes for %d accepted jobs", got, accepted.Load())
	}
	if accepted.Load()+shed.Load() != submitters*jobsPerSubmitter {
		t.Fatalf("accepted %d + shed %d != %d submissions",
			accepted.Load(), shed.Load(), submitters*jobsPerSubmitter)
	}
	if shed.Load() == 0 {
		t.Error("no submission was shed; the queue never filled, soak is not exercising backpressure")
	}

	// Stream completeness: a succeeded job's stream must carry the full
	// contiguous progress history — the event log may not coalesce ticks.
	var succeeded int
	for _, out := range outcomes {
		if !out.final.Terminal() {
			t.Errorf("job %s: stream ended in non-terminal state %q", out.id, out.final)
			continue
		}
		if out.final != StateSucceeded {
			continue
		}
		succeeded++
		if len(out.progress) != ticks {
			t.Errorf("job %s: succeeded with %d progress events, want %d: %v",
				out.id, len(out.progress), ticks, out.progress)
			continue
		}
		for i, done := range out.progress {
			if done != i+1 {
				t.Errorf("job %s: progress[%d] = %d, want %d (%v)", out.id, i, done, i+1, out.progress)
				break
			}
		}
	}
	if succeeded == 0 {
		t.Error("no job succeeded; cancellation swallowed the whole soak")
	}

	// Queue accounting: the Prometheus counters must balance the observed
	// HTTP outcomes exactly — nothing double-counted, nothing dropped.
	m := svc.Metrics()
	if got := m.submitted.Load(); got != uint64(accepted.Load()) {
		t.Errorf("submitted counter = %d, accepted 202s = %d", got, accepted.Load())
	}
	if got := m.rejected.Load(); got != uint64(shed.Load()) {
		t.Errorf("rejected counter = %d, observed 429s = %d", got, shed.Load())
	}
	terminal := m.completed.Load() + m.canceled.Load() + m.failed.Load()
	if terminal != m.submitted.Load() {
		t.Errorf("completed %d + canceled %d + failed %d = %d, want submitted %d",
			m.completed.Load(), m.canceled.Load(), m.failed.Load(), terminal, m.submitted.Load())
	}
	if m.failed.Load() != 0 {
		t.Errorf("%d jobs failed; the stub can only succeed or be canceled", m.failed.Load())
	}
	if got := m.inFlight.Load(); got != 0 {
		t.Errorf("in-flight gauge = %d after drain, want 0", got)
	}
	if depth := svc.QueueDepth(); depth != 0 {
		t.Errorf("queue depth = %d after all jobs terminal, want 0", depth)
	}

	// The metrics endpoint itself must render the same balance.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf("mobicd_jobs_submitted_total %d", m.submitted.Load())
	if !strings.Contains(string(body), want) {
		t.Errorf("metrics endpoint missing %q", want)
	}
}
