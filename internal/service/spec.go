// Package service turns the batch experiment harness into a
// simulation-as-a-service backend: callers submit jobs (a named experiment
// or a custom scenario sweep), a bounded FIFO queue applies backpressure, a
// worker pool executes them on experiment.Runner, and an in-memory store
// with TTL eviction serves status, streaming progress and final results.
// cmd/mobicd exposes it over HTTP.
package service

import (
	"context"
	"errors"
	"fmt"

	"mobic/internal/cluster"
	"mobic/internal/experiment"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
)

// Submission limits: a shared daemon must bound the work a single job can
// demand, or one request starves the queue for everyone.
const (
	// MaxSeeds bounds replications per cell.
	MaxSeeds = 32
	// MaxNodes bounds scenario size.
	MaxNodes = 1000
	// MaxDuration bounds simulated seconds per cell.
	MaxDuration = 3600.0
	// MaxAlgorithms bounds curves per sweep.
	MaxAlgorithms = 8
	// MaxSweepPoints bounds the sweep axis length.
	MaxSweepPoints = 64
	// MaxTiles bounds the tiled-scheduler tile count per job.
	MaxTiles = 64
)

// JobSpec is one simulation request: exactly one of Experiment (a named
// paper artifact or ablation, see experiment.All) or Sweep (a custom
// scenario × algorithm grid) must be set.
type JobSpec struct {
	// Experiment names a predefined experiment ("fig3", "ablate-cci", ...).
	Experiment string `json:"experiment,omitempty"`
	// Sweep is a custom scenario sweep.
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Seeds is the number of replications per cell (default: the
	// service's base runner, usually 3).
	Seeds int `json:"seeds,omitempty"`
	// BaseSeed is the first scenario seed (default 1).
	BaseSeed uint64 `json:"base_seed,omitempty"`
	// Duration overrides the simulated seconds of every cell (0 keeps
	// each scenario's own duration; the paper's is 900 s).
	Duration float64 `json:"duration,omitempty"`
	// TimeoutSeconds bounds the job's wall-clock execution (0 = none).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// IncludeRaw keeps the per-seed metrics snapshots in the returned
	// cells (they are stripped by default to keep responses small).
	IncludeRaw bool `json:"include_raw,omitempty"`
	// Tiles, when > 1, runs every cell on the tiled-parallel engine
	// scheduler with that many arena tiles. The tiled schedule is proven
	// bit-identical to the sequential one (see the harness equivalence
	// suite), so this only changes wall-clock — but it is still folded
	// into the spec digest, conservatively: the cache never presumes an
	// equivalence, it only serves results for byte-identical canonical
	// specs. 0 (or 1) keeps the sequential scheduler.
	Tiles int `json:"tiles,omitempty"`
}

// SweepSpec is a custom parameter sweep: one scenario template, swept over
// TxRanges (or run at the template's own range when empty), once per
// algorithm.
type SweepSpec struct {
	// Scenario is the template; zero fields take the paper's Table 1
	// defaults.
	Scenario ScenarioSpec `json:"scenario"`
	// Algorithms names the clustering algorithms to compare
	// ("mobic", "lcc", "lowest-id", "max-degree", ...; see cluster.ByName).
	Algorithms []string `json:"algorithms"`
	// TxRanges is the sweep axis in meters; empty means a single cell at
	// the scenario's transmission range.
	TxRanges []float64 `json:"tx_ranges,omitempty"`
}

// ScenarioSpec mirrors scenario.Params with JSON tags; zero values fall
// back to the paper's Table 1 defaults (via scenario.Base).
type ScenarioSpec struct {
	N        int     `json:"n,omitempty"`
	Side     float64 `json:"side,omitempty"`
	MaxSpeed float64 `json:"max_speed,omitempty"`
	Pause    float64 `json:"pause,omitempty"`
	TxRange  float64 `json:"tx_range,omitempty"`
	BI       float64 `json:"bi,omitempty"`
	TP       float64 `json:"tp,omitempty"`
	CCI      float64 `json:"cci,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	Warmup   float64 `json:"warmup,omitempty"`
	// BIMin and BIMax enable the per-node adaptive broadcast period (both
	// must be set together; see scenario.Params).
	BIMin float64 `json:"bi_min,omitempty"`
	BIMax float64 `json:"bi_max,omitempty"`
	// EnergyJ enables the battery model with this initial budget in joules.
	EnergyJ float64 `json:"energy_j,omitempty"`
}

// params materializes the spec over Table 1 defaults.
func (s ScenarioSpec) params() scenario.Params {
	p := scenario.Base(150)
	if s.N > 0 {
		p.N = s.N
	}
	if s.Side > 0 {
		p.Side = s.Side
	}
	if s.MaxSpeed > 0 {
		p.MaxSpeed = s.MaxSpeed
	}
	if s.Pause > 0 {
		p.Pause = s.Pause
	}
	if s.TxRange > 0 {
		p.TxRange = s.TxRange
	}
	if s.BI > 0 {
		p.BI = s.BI
	}
	if s.TP > 0 {
		p.TP = s.TP
	}
	if s.CCI > 0 {
		p.CCI = s.CCI
	}
	if s.Duration > 0 {
		p.Duration = s.Duration
	}
	if s.Warmup > 0 {
		p.Warmup = s.Warmup
	}
	if s.BIMin > 0 {
		p.BIMin = s.BIMin
	}
	if s.BIMax > 0 {
		p.BIMax = s.BIMax
	}
	if s.EnergyJ > 0 {
		p.EnergyJ = s.EnergyJ
	}
	return p
}

// ErrInvalidSpec tags every submission validation failure, so the HTTP
// layer can map the whole class to 400.
var ErrInvalidSpec = errors.New("service: invalid job spec")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidSpec, fmt.Sprintf(format, args...))
}

// Validate checks the spec without running anything.
func (s JobSpec) Validate() error {
	switch {
	case s.Experiment == "" && s.Sweep == nil:
		return invalidf("one of experiment or sweep is required")
	case s.Experiment != "" && s.Sweep != nil:
		return invalidf("experiment and sweep are mutually exclusive")
	case s.Seeds < 0 || s.Seeds > MaxSeeds:
		return invalidf("seeds %d outside [0, %d]", s.Seeds, MaxSeeds)
	case s.Duration < 0 || s.Duration > MaxDuration:
		return invalidf("duration %g outside [0, %g]", s.Duration, MaxDuration)
	case s.TimeoutSeconds < 0:
		return invalidf("timeout_seconds %g is negative", s.TimeoutSeconds)
	case s.Tiles < 0 || s.Tiles > MaxTiles:
		return invalidf("tiles %d outside [0, %d]", s.Tiles, MaxTiles)
	}
	if s.Experiment != "" {
		if _, err := experiment.ByID(s.Experiment); err != nil {
			return invalidf("%v", err)
		}
		return nil
	}
	sw := s.Sweep
	if len(sw.Algorithms) == 0 {
		return invalidf("sweep needs at least one algorithm")
	}
	if len(sw.Algorithms) > MaxAlgorithms {
		return invalidf("%d algorithms exceeds the limit of %d", len(sw.Algorithms), MaxAlgorithms)
	}
	if len(sw.TxRanges) > MaxSweepPoints {
		return invalidf("%d sweep points exceeds the limit of %d", len(sw.TxRanges), MaxSweepPoints)
	}
	for _, name := range sw.Algorithms {
		if name == "" {
			return invalidf("empty algorithm name")
		}
		if _, err := cluster.ByName(name); err != nil {
			return invalidf("%v", err)
		}
	}
	p := sw.Scenario.params()
	if p.N > MaxNodes {
		return invalidf("n %d exceeds the limit of %d", p.N, MaxNodes)
	}
	if p.Duration > MaxDuration {
		return invalidf("scenario duration %g exceeds the limit of %g", p.Duration, MaxDuration)
	}
	if err := p.Validate(); err != nil {
		return invalidf("%v", err)
	}
	for _, tx := range sw.TxRanges {
		if tx <= 0 {
			return invalidf("tx_range %g must be positive", tx)
		}
	}
	return nil
}

// Output is a finished job's payload.
type Output struct {
	// Result is the regenerated figure/table (stable JSON, see
	// experiment.Result).
	Result *experiment.Result `json:"result,omitempty"`
	// Cells carries the per-cell aggregates of a custom sweep, ordered
	// algorithm-major then sweep-point (absent for named experiments).
	Cells []experiment.CellStats `json:"cells,omitempty"`
}

// run executes the spec on the given base runner. progress receives
// (done, total) cell-completion updates from the runner's worker pool.
func (s JobSpec) run(ctx context.Context, base experiment.Runner, progress func(done, total int)) (*Output, error) {
	r := base
	r.Progress = progress
	if s.Seeds > 0 {
		r.Seeds = s.Seeds
	}
	if s.BaseSeed > 0 {
		r.BaseSeed = s.BaseSeed
	}
	if s.Tiles > 0 {
		r.Tiles = s.Tiles
	}
	if s.Duration > 0 {
		prev := r.Mutate
		dur := s.Duration
		r.Mutate = func(cfg *simnet.Config) {
			if prev != nil {
				prev(cfg)
			}
			cfg.Duration = dur
		}
	}

	if s.Experiment != "" {
		d, err := experiment.ByID(s.Experiment)
		if err != nil {
			return nil, err
		}
		res, err := d.Run(ctx, r)
		if err != nil {
			return nil, err
		}
		return &Output{Result: res}, nil
	}

	return s.runSweep(ctx, r)
}

// runSweep executes a custom sweep and synthesizes an experiment.Result
// (clusterhead changes per algorithm over the sweep axis) plus the raw
// per-cell aggregates.
func (s JobSpec) runSweep(ctx context.Context, r experiment.Runner) (*Output, error) {
	sw := s.Sweep
	xs := sw.TxRanges
	template := sw.Scenario.params()
	if len(xs) == 0 {
		xs = []float64{template.TxRange}
	}
	var cells []experiment.Cell
	for _, name := range sw.Algorithms {
		alg, err := cluster.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, tx := range xs {
			p := template
			p.TxRange = tx
			cells = append(cells, experiment.Cell{Params: p, Algorithm: alg})
		}
	}
	cs, err := r.RunCells(ctx, cells)
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{
		ID:     "sweep",
		Title:  "custom scenario sweep",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes",
		X:      xs,
	}
	for ai, name := range sw.Algorithms {
		series := experiment.Series{Name: name, Y: make([]float64, len(xs)), CI: make([]float64, len(xs))}
		for xi := range xs {
			cell := cs[ai*len(xs)+xi]
			series.Y[xi] = cell.CHChanges
			series.CI[xi] = cell.CHChangesCI
		}
		res.Series = append(res.Series, series)
	}
	if !s.IncludeRaw {
		for i := range cs {
			cs[i].Raw = nil
		}
	}
	return &Output{Result: res, Cells: cs}, nil
}
