package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postJobKey is postJob with an Idempotency-Key header.
func postJobKey(t *testing.T, srv *httptest.Server, body, key string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPIdempotencyKey(t *testing.T) {
	_, srv := newTestAPI(t, Config{Execute: instantExecute(1)})

	resp := postJobKey(t, srv, `{"experiment":"fig3"}`, "client-retry-1")
	first := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", resp.StatusCode)
	}

	// Same key replays the original job with 200, even with a different
	// body — the key, not the spec, is the identity.
	resp = postJobKey(t, srv, `{"experiment":"fig3","seeds":2}`, "client-retry-1")
	replay := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("replayed submit status = %d, want 200", resp.StatusCode)
	}
	if replay.ID != first.ID {
		t.Errorf("replayed submit created a new job: %s != %s", replay.ID, first.ID)
	}

	// A different key is a different job.
	resp = postJobKey(t, srv, `{"experiment":"fig3"}`, "client-retry-2")
	other := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("new-key submit status = %d, want 202", resp.StatusCode)
	}
	if other.ID == first.ID {
		t.Error("distinct keys mapped to the same job")
	}
}

// TestHTTPRetryAfterDerived: the 429 Retry-After header must reflect queue
// depth and observed job durations, not a hard-coded constant.
func TestHTTPRetryAfterDerived(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	svc, srv := newTestAPI(t, Config{
		Workers:       1,
		QueueCapacity: 1,
		Execute:       blockingExecute(started, release),
	})
	// Seed the EWMA as if recent jobs took 4 s each.
	svc.Metrics().ObserveLatency(4.0)

	for i := 0; i < 2; i++ { // one running, one queued
		resp := postJob(t, srv, `{"experiment":"fig3"}`)
		resp.Body.Close()
		if i == 0 {
			<-started
		}
	}
	resp := postJob(t, srv, `{"experiment":"fig3"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	// depth 1, workers 1, ewma 4 s: (1+1)*4/1 = 8 s until the queue drains.
	if got := resp.Header.Get("Retry-After"); got != "8" {
		t.Errorf("Retry-After = %q, want \"8\" (ewma-derived)", got)
	}
}

type healthBody struct {
	Status string `json:"status"`
	Ready  bool   `json:"ready"`
	Reason string `json:"reason"`
}

func getHealth(t *testing.T, url string) (int, healthBody) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthBody
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, h
}

// TestHTTPLivezReadyzDuringDrain: during a graceful drain the daemon is
// alive but not ready — orchestrators must stop routing without restarting
// it (a restart would abort the in-flight jobs the drain is waiting for).
func TestHTTPLivezReadyzDuringDrain(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	svc, srv := newTestAPI(t, Config{Workers: 1, Execute: blockingExecute(started, release)})

	if code, h := getHealth(t, srv.URL+"/readyz"); code != http.StatusOK || !h.Ready {
		t.Fatalf("idle readyz = %d %+v, want 200 ready", code, h)
	}

	if _, err := svc.Submit(specFig3()); err != nil {
		t.Fatal(err)
	}
	<-started
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = svc.Shutdown(context.Background())
	}()
	// The drain flag flips before Shutdown returns; poll briefly.
	deadline := time.After(5 * time.Second)
	for !svc.Draining() {
		select {
		case <-deadline:
			t.Fatal("service never started draining")
		case <-time.After(time.Millisecond):
		}
	}

	if code, h := getHealth(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable || h.Ready || h.Status != "draining" {
		t.Errorf("draining readyz = %d %+v, want 503 not-ready draining", code, h)
	}
	if code, h := getHealth(t, srv.URL+"/healthz"); code != http.StatusServiceUnavailable || h.Ready {
		t.Errorf("draining healthz = %d %+v, want 503 (alias of readyz)", code, h)
	}
	if code, h := getHealth(t, srv.URL+"/livez"); code != http.StatusOK || h.Status != "alive" {
		t.Errorf("draining livez = %d %+v, want 200 alive", code, h)
	}

	close(release)
	<-done
}

// TestHTTPReadyzJournalBroken: when the WAL cannot persist records the
// daemon must advertise not-ready — accepting jobs it cannot make durable
// would silently void the recovery guarantee — while staying alive.
func TestHTTPReadyzJournalBroken(t *testing.T) {
	svc, err := Open(Config{DataDir: t.TempDir(), Execute: instantExecute(1)})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})

	if code, h := getHealth(t, srv.URL+"/readyz"); code != http.StatusOK || !h.Ready {
		t.Fatalf("healthy readyz = %d %+v, want 200 ready", code, h)
	}

	// Break the journal underneath the service (as a full or yanked disk
	// would) and trip it with a submission.
	svc.journal.f.Close()
	resp := postJob(t, srv, `{"experiment":"fig3"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("submit with broken journal = %d, want 500", resp.StatusCode)
	}

	code, h := getHealth(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable || h.Ready || h.Reason == "" {
		t.Errorf("broken-journal readyz = %d %+v, want 503 with reason", code, h)
	}
	if code, h := getHealth(t, srv.URL+"/livez"); code != http.StatusOK || h.Status != "alive" {
		t.Errorf("broken-journal livez = %d %+v, want 200 alive", code, h)
	}
}
