package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mobic/internal/experiment"
)

// fakeClock is a hand-advanced clock shared by both daemon generations in
// the restore test, so journaled start/finish times carry real durations.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// scrapeMetrics fetches /metrics through the real HTTP handler.
func scrapeMetrics(t *testing.T, svc *Service) string {
	t.Helper()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestRestoreMetricsConsistency is the regression test for the recovery
// blind spot where a rebooted daemon reported factory-fresh metrics: a
// store holding N jobs alongside /metrics claiming zero submissions, and a
// Retry-After hint restarted at the 1 s floor despite journaled evidence of
// multi-second jobs. It kills a daemon mid-queue (one job finished, one
// running, two queued, plus one finished job whose TTL lapsed during the
// outage) and checks the reopened daemon's /metrics against its store.
func TestRestoreMetricsConsistency(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}

	// Every execution hands the test a private release channel, so the test
	// decides per job whether (and at what fake time) it finishes.
	starts := make(chan chan struct{})
	execute := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		release := make(chan struct{})
		select {
		case starts <- release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		select {
		case <-release:
			return &Output{Result: &experiment.Result{ID: "stub", Title: "stub"}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cfg := Config{
		DataDir:       dir,
		Workers:       1,
		QueueCapacity: 4,
		TTL:           time.Hour,
		Execute:       execute,
		Clock:         clock.Now,
	}
	svc1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc1.Start()

	submit := func(n int) *Job {
		t.Helper()
		job, err := svc1.Submit(JobSpec{Experiment: "fig3", Seeds: n})
		if err != nil {
			t.Fatal(err)
		}
		return job
	}

	// Job E: finishes after 2 s, then the daemon stays down long enough for
	// its TTL to lapse — the reopened daemon must not count it anywhere.
	expired := submit(1)
	rel := <-starts
	clock.Advance(2 * time.Second)
	close(rel)
	waitTerminal(t, expired)
	clock.Advance(2 * time.Hour)

	// Job A: an 8 s success inside the TTL window — the duration the
	// reopened Retry-After hint must extrapolate from.
	finished := submit(2)
	rel = <-starts
	clock.Advance(8 * time.Second)
	close(rel)
	waitTerminal(t, finished)

	// Job B running, C and D queued when the "SIGKILL" lands.
	running := submit(3)
	<-starts // B is executing; its release channel is deliberately dropped
	queued1 := submit(4)
	queued2 := submit(5)

	// Abandon svc1 without Shutdown; the bounded cleanup only unwedges the
	// leaked worker goroutine after the test.
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		_ = svc1.Shutdown(ctx)
	})

	cfg.Execute = instantExecute(1)
	svc2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := svc2.RecoveredJobs(); got != 3 {
		t.Fatalf("recovered %d jobs, want 3 (running + 2 queued)", got)
	}
	if _, ok := svc2.Get(expired.ID()); ok {
		t.Error("TTL-expired job survived the reboot")
	}

	// Before any post-boot work: /metrics must already agree with the store.
	body := scrapeMetrics(t, svc2)
	for _, want := range []string{
		"mobicd_jobs_submitted_total 4", // E is expired, not merely unfinished
		"mobicd_jobs_completed_total 1",
		"mobicd_jobs_failed_total 0",
		"mobicd_queue_depth 3",
		"mobicd_jobs_stored 4",
		"mobicd_job_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("rebooted /metrics missing %q:\n%s", want, body)
		}
	}
	if got := svc2.Metrics().LatencyEWMA(); got != 8 {
		t.Errorf("EWMA after reboot = %g s, want 8 (job A's journaled duration)", got)
	}
	// depth 3, 1 worker, 8 s EWMA: ceil(8*4/1)=32, capped at 30 — anything
	// at the 1 s floor means the EWMA was not re-seeded.
	if got := svc2.RetryAfterHint(); got != 30 {
		t.Errorf("RetryAfterHint after reboot = %d s, want 30", got)
	}

	// Drain the recovered queue and re-check: counters keep accumulating on
	// top of the restored baseline instead of drifting from the store.
	svc2.Start()
	defer svc2.Shutdown(context.Background())
	for _, job := range []*Job{running, queued1, queued2} {
		j, ok := svc2.Get(job.ID())
		if !ok {
			t.Fatalf("job %s not restored", job.ID())
		}
		if st := waitTerminal(t, j); st.State != StateSucceeded {
			t.Fatalf("recovered job %s: %s (%s)", job.ID(), st.State, st.Error)
		}
	}
	body = scrapeMetrics(t, svc2)
	for _, want := range []string{
		"mobicd_jobs_submitted_total 4",
		"mobicd_jobs_completed_total 4",
		"mobicd_queue_depth 0",
		"mobicd_jobs_stored 4",
		fmt.Sprintf("mobicd_job_latency_seconds_count %d", 4),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("drained /metrics missing %q:\n%s", want, body)
		}
	}
}
