package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// postBatch posts a raw body to /v1/jobs:batch under a tenant header.
func postBatch(t *testing.T, url, tenant, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs:batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Mobic-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestBatchEndpoint(t *testing.T) {
	_, srv := newTestAPI(t, Config{Execute: instantExecute(1)})

	// Happy path: every spec admitted, one Status per spec in order.
	resp := postBatch(t, srv.URL, "", `{"jobs":[
		{"sweep":{"scenario":{"n":10},"algorithms":["mobic"]},"seeds":1,"base_seed":1},
		{"experiment":"fig3"}
	]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, readAll(t, resp.Body))
	}
	var br struct {
		Jobs []Status `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Jobs) != 2 {
		t.Fatalf("batch returned %d statuses, want 2", len(br.Jobs))
	}
	seen := map[string]bool{}
	for i, st := range br.Jobs {
		if st.ID == "" || seen[st.ID] {
			t.Fatalf("batch job %d has missing/duplicate id %q", i, st.ID)
		}
		seen[st.ID] = true
	}

	// One invalid spec rejects the whole batch, naming the offender.
	resp = postBatch(t, srv.URL, "", `{"jobs":[{"experiment":"fig3"},{"experiment":"nope"}]}`)
	body := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "jobs[1]") {
		t.Fatalf("invalid batch: status %d body %s, want 400 naming jobs[1]", resp.StatusCode, body)
	}

	for name, bad := range map[string]string{
		"empty-jobs":    `{"jobs":[]}`,
		"missing-jobs":  `{}`,
		"unknown-field": `{"jobs":[{"experiment":"fig3"}],"priority":9}`,
		"not-json":      `jobs=fig3`,
	} {
		resp := postBatch(t, srv.URL, "", bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// Oversize batch: 400, not a partial admit.
	var big strings.Builder
	big.WriteString(`{"jobs":[`)
	for i := 0; i <= MaxBatchJobs; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		fmt.Fprintf(&big, `{"experiment":"fig3","base_seed":%d}`, i+1)
	}
	big.WriteString("]}")
	resp = postBatch(t, srv.URL, "", big.String())
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize batch: status %d, want 400", resp.StatusCode)
	}
}

// FuzzBatchBody hardens the batch wire decoder: arbitrary bodies must
// never panic, and an accepted body must round-trip (re-encode, re-decode)
// to the same spec count with every spec's Validate callable.
func FuzzBatchBody(f *testing.F) {
	f.Add(`{"jobs":[{"experiment":"fig3"}]}`)
	f.Add(`{"jobs":[{"sweep":{"scenario":{"n":10},"algorithms":["mobic"]},"seeds":1}]}`)
	f.Add(`{"jobs":[{"experiment":"fig3"},{"experiment":"fig3","seeds":5,"base_seed":7}]}`)
	f.Add(`{"jobs":[]}`)
	f.Add(`{}`)
	f.Add(`{"jobs":null}`)
	f.Add(`{"jobs":[{"sweep":{"scenario":{"n":-1},"algorithms":[]}}]}`)
	f.Add(`[{"experiment":"fig3"}]`)
	f.Add(`{"jobs":[{"unknown":"field"}]}`)
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, body string) {
		req, err := decodeBatch(strings.NewReader(body))
		if err != nil {
			return
		}
		for i := range req.Jobs {
			_ = req.Jobs[i].Validate() // must not panic on any decoded spec
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encoding accepted batch: %v", err)
		}
		back, err := decodeBatch(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-decoding own encoding %s: %v", enc, err)
		}
		if len(back.Jobs) != len(req.Jobs) {
			t.Fatalf("round-trip changed job count: %d -> %d", len(req.Jobs), len(back.Jobs))
		}
	})
}
