package service

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"mobic/internal/cache"
	"mobic/internal/experiment"
)

// countingExecute is instantExecute plus an execution counter, the probe
// that tells a real run from a cache hit.
func countingExecute(runs *atomic.Int64) ExecuteFunc {
	return func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		runs.Add(1)
		return &Output{Result: &experiment.Result{ID: "stub", Title: "stub"}}, nil
	}
}

func newCacheService(t *testing.T, cfg Config) (*Service, *atomic.Int64) {
	t.Helper()
	var runs atomic.Int64
	if cfg.Execute == nil {
		cfg.Execute = countingExecute(&runs)
	}
	if cfg.Cache == nil {
		c, err := cache.Open(cache.Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = c
	}
	svc := New(cfg)
	svc.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc, &runs
}

// waitFlights polls until every in-flight digest is released: settle runs
// just after the terminal transition watchers wake on, so tests that
// expect a cache hit next must wait for the flight to drain.
func waitFlights(t *testing.T, svc *Service) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for svc.flights.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("flights never drained: %d still open", svc.flights.Len())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheHitSkipsExecution(t *testing.T) {
	svc, runs := newCacheService(t, Config{})

	first, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, first)
	if st.State != StateSucceeded {
		t.Fatalf("first job %s: %s", st.State, st.Error)
	}
	waitFlights(t, svc)

	// Identical spec again: a finished job comes back immediately, no
	// second execution.
	second, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	st2, _, _ := second.Snapshot()
	if st2.State != StateSucceeded {
		t.Fatalf("cached submission state = %s, want succeeded immediately", st2.State)
	}
	if second.ID() == first.ID() {
		t.Fatal("cache hit reused the original job ID")
	}
	if st2.Result == nil || st2.Result.ID != "stub" {
		t.Fatalf("cached submission lost the output: %+v", st2.Output)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}

	// A semantically different spec still runs.
	if _, err := svc.Submit(JobSpec{Experiment: "fig3", Seeds: 2}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runs.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("different spec did not execute (runs=%d)", runs.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFlightCollapsesConcurrentDuplicates(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	svc, _ := newCacheService(t, Config{Workers: 1, Execute: blockingExecute(started, release)})

	leader, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Same spec while the leader runs: attach, don't enqueue.
	dup, existed, err := svc.SubmitKey(specFig3(), "")
	if err != nil {
		t.Fatal(err)
	}
	if !existed || dup.ID() != leader.ID() {
		t.Fatalf("duplicate got job %s (existed=%v), want leader %s", dup.ID(), existed, leader.ID())
	}

	close(release)
	if st := waitTerminal(t, leader); st.State != StateSucceeded {
		t.Fatalf("leader %s: %s", st.State, st.Error)
	}
	waitFlights(t, svc)
	// Flight is released; the next identical submission is a cache hit.
	third, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	if st, _, _ := third.Snapshot(); st.State != StateSucceeded {
		t.Fatalf("post-flight submission state = %s, want cache hit", st.State)
	}
}

func TestFlightReleasedOnFailure(t *testing.T) {
	fail := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		return nil, context.DeadlineExceeded
	}
	svc, _ := newCacheService(t, Config{Execute: fail})

	job, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	waitFlights(t, svc)
	// Nothing was cached: the next submission runs again (blocked jobs would
	// surface here as an instant bogus success).
	again, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, again); st.State != StateFailed {
		t.Fatalf("resubmission state = %s, want failed (fresh run)", st.State)
	}
}

func TestCacheHitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cacheDir := t.TempDir()
	var runs atomic.Int64

	open := func() *Service {
		c, err := cache.Open(cache.Config{Dir: cacheDir})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := Open(Config{DataDir: dir, Cache: c, Execute: countingExecute(&runs)})
		if err != nil {
			t.Fatal(err)
		}
		svc.Start()
		return svc
	}
	shutdown := func(svc *Service) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}

	svc := open()
	job, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	shutdown(svc)

	svc2 := open()
	defer shutdown(svc2)
	hit, err := svc2.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	if st, _, _ := hit.Snapshot(); st.State != StateSucceeded {
		t.Fatalf("post-restart submission state = %s, want disk cache hit", st.State)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("executions across restart = %d, want 1", n)
	}
}

func TestCachedJobQueryableAfterRestart(t *testing.T) {
	// A cache-served job is journaled like any other completed job, so a
	// restart keeps it queryable by ID.
	dir := t.TempDir()
	c, err := cache.Open(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	svc, err := Open(Config{DataDir: dir, Cache: c, Execute: countingExecute(&runs)})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	job, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	waitFlights(t, svc)
	hit, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = svc.Shutdown(ctx)
	cancel()

	c2, err := cache.Open(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := Open(Config{DataDir: dir, Cache: c2, Execute: countingExecute(&runs)})
	if err != nil {
		t.Fatal(err)
	}
	svc2.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc2.Shutdown(ctx)
	}()
	got, ok := svc2.Get(hit.ID())
	if !ok {
		t.Fatalf("cache-served job %s lost across restart", hit.ID())
	}
	st, _, _ := got.Snapshot()
	if st.State != StateSucceeded || st.Result == nil {
		t.Fatalf("restored cache-served job: state=%s result=%v", st.State, st.Result)
	}
}

// BenchmarkCacheHit measures the full submit path when the answer is
// already cached: digest the spec, hit the memory LRU, journal nothing
// (in-memory mode), and hand back a finished job. This is the latency a
// duplicate sweep submission pays instead of re-simulating.
func BenchmarkCacheHit(b *testing.B) {
	c, err := cache.Open(cache.Config{MaxEntries: 16})
	if err != nil {
		b.Fatal(err)
	}
	var runs atomic.Int64
	svc := New(Config{
		Workers: 1,
		// Terminal jobs must outlive the benchmark loop's store churn.
		TTL:     time.Hour,
		Execute: countingExecute(&runs),
		Cache:   c,
	})
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	spec := specFig3()
	seed, err := svc.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	for {
		st, _, notify := seed.Snapshot()
		if st.State.Terminal() {
			break
		}
		<-notify
	}
	for svc.flights.Len() != 0 {
		time.Sleep(time.Millisecond)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := svc.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if st, _, _ := job.Snapshot(); st.State != StateSucceeded {
			b.Fatalf("submission was not a cache hit: %s", st.State)
		}
	}
	b.StopTimer()
	if got := runs.Load(); got != 1 {
		b.Fatalf("executed %d times, want exactly 1 (everything else cached)", got)
	}
}
