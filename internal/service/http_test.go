package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mobic/internal/experiment"
	"mobic/internal/simnet"
)

// newTestAPI spins up a service with the given config plus an httptest
// server on its handler; both are torn down with the test.
func newTestAPI(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	svc.Start()
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc, srv
}

func postJob(t *testing.T, srv *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, r io.Reader) Status {
	t.Helper()
	var st Status
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// getStatus polls GET /v1/jobs/{id} until the job is terminal.
func getStatus(t *testing.T, srv *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, resp.Body)
		resp.Body.Close()
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPSubmitAndFetchResult(t *testing.T) {
	_, srv := newTestAPI(t, Config{Execute: instantExecute(2)})

	resp := postJob(t, srv, `{"experiment":"fig3","seeds":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location = %q", loc)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if st.ID == "" || st.Spec.Experiment != "fig3" {
		t.Fatalf("submit response: %+v", st)
	}

	final := getStatus(t, srv, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.ID != "stub" {
		t.Errorf("result missing from final status: %+v", final.Result)
	}
}

func TestHTTPSubmitErrors(t *testing.T) {
	_, srv := newTestAPI(t, Config{Execute: instantExecute(1)})

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"experiment":`, http.StatusBadRequest},
		{"unknown field", `{"experiment":"fig3","bogus":1}`, http.StatusBadRequest},
		{"invalid spec", `{}`, http.StatusBadRequest},
		{"unknown experiment", `{"experiment":"fig99"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJob(t, srv, tc.body)
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if eb.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	_, srv := newTestAPI(t, Config{
		Workers:       1,
		QueueCapacity: 1,
		Execute:       blockingExecute(started, release),
	})

	for i := 0; i < 2; i++ { // one running, one queued
		resp := postJob(t, srv, `{"experiment":"fig3"}`)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status = %d", i, resp.StatusCode)
		}
		if i == 0 {
			<-started
		}
	}
	resp := postJob(t, srv, `{"experiment":"fig3"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}

func TestHTTPJobNotFound(t *testing.T) {
	_, srv := newTestAPI(t, Config{Execute: instantExecute(1)})
	for _, path := range []string{"/v1/jobs/deadbeef", "/v1/jobs/deadbeef/stream"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHTTPCancel(t *testing.T) {
	started := make(chan string, 1)
	_, srv := newTestAPI(t, Config{Workers: 1, Execute: blockingExecute(started, nil)})

	resp := postJob(t, srv, `{"experiment":"fig3"}`)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	<-started

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", dresp.StatusCode)
	}
	final := getStatus(t, srv, st.ID)
	if final.State != StateCanceled {
		t.Errorf("state = %s, want canceled", final.State)
	}
	if !strings.Contains(final.Error, context.Canceled.Error()) {
		t.Errorf("error = %q, want context cancellation surfaced", final.Error)
	}
}

// TestHTTPStream reads the NDJSON stream of a slow job and checks it sees
// multiple progress events and a terminal line carrying the result.
func TestHTTPStream(t *testing.T) {
	step := make(chan struct{})
	execute := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		for i := 1; i <= 3; i++ {
			select {
			case <-step:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			progress(i, 3)
		}
		return &Output{Result: &experiment.Result{ID: "stub", Title: "stub"}}, nil
	}
	_, srv := newTestAPI(t, Config{Workers: 1, Execute: execute})

	resp := postJob(t, srv, `{"experiment":"fig3"}`)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()

	sresp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	// Release the three progress steps while the stream is attached.
	go func() {
		for i := 0; i < 3; i++ {
			step <- struct{}{}
		}
	}()

	var (
		lines    []StreamEvent
		progress int
	)
	scanner := bufio.NewScanner(sresp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var line StreamEvent
		if err := json.Unmarshal(scanner.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		lines = append(lines, line)
		if line.Type == "progress" {
			progress++
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	last := lines[len(lines)-1]
	if last.Type != "result" || last.State != StateSucceeded || last.Stat == nil || last.Stat.Result == nil {
		t.Errorf("terminal line: %+v", last)
	}
	if progress != 3 {
		t.Errorf("saw %d progress events, want exactly 3 (no coalescing)", progress)
	}
	// Stream must open with the queued/running transitions.
	if lines[0].Type != "status" || lines[0].State != StateQueued {
		t.Errorf("first line = %+v, want queued status", lines[0])
	}
}

// TestHTTPProgressMonotonic drives a five-cell job step by step and polls
// GET /v1/jobs/{id} after each completed cell: the reported progress
// fraction must match done/total exactly, never decrease across polls, and
// the final NDJSON stream event must report 100%. Running polls with
// done>0 must also carry an ETA.
func TestHTTPProgressMonotonic(t *testing.T) {
	const cells = 5
	step := make(chan struct{})
	stepped := make(chan struct{})
	execute := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		for i := 1; i <= cells; i++ {
			select {
			case <-step:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			progress(i, cells)
			stepped <- struct{}{}
		}
		return &Output{Result: &experiment.Result{ID: "stub", Title: "stub"}}, nil
	}
	_, srv := newTestAPI(t, Config{Workers: 1, Execute: execute})

	resp := postJob(t, srv, `{"experiment":"fig3"}`)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if st.Progress != 0 {
		t.Errorf("progress at submit = %g, want 0", st.Progress)
	}

	// Attach the stream before any cell completes so it sees full history.
	sresp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	prev := 0.0
	for i := 1; i <= cells; i++ {
		step <- struct{}{}
		<-stepped // progress(i, cells) has been applied
		gresp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		poll := decodeStatus(t, gresp.Body)
		gresp.Body.Close()
		if want := float64(i) / cells; poll.Progress != want {
			t.Errorf("poll %d: progress = %g, want %g", i, poll.Progress, want)
		}
		if poll.Progress < prev {
			t.Errorf("poll %d: progress decreased %g -> %g", i, prev, poll.Progress)
		}
		prev = poll.Progress
		if poll.State == StateRunning && i < cells && poll.ETASeconds <= 0 {
			t.Errorf("poll %d: running with done>0 but no ETA (%g)", i, poll.ETASeconds)
		}
	}

	final := getStatus(t, srv, st.ID)
	if final.State != StateSucceeded || final.Progress != 1 {
		t.Fatalf("final: state=%s progress=%g, want succeeded at 1", final.State, final.Progress)
	}
	if final.ETASeconds != 0 {
		t.Errorf("terminal status carries ETA %g, want omitted", final.ETASeconds)
	}

	// The stream's terminal event must agree: 100% on the result line.
	var lastEv StreamEvent
	scanner := bufio.NewScanner(sresp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		if err := json.Unmarshal(scanner.Bytes(), &lastEv); err != nil {
			t.Fatal(err)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if lastEv.Type != "result" || lastEv.Stat == nil {
		t.Fatalf("terminal event = %+v", lastEv)
	}
	if lastEv.Stat.Progress != 1 {
		t.Errorf("stream result progress = %g, want 1", lastEv.Stat.Progress)
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	svc, srv := newTestAPI(t, Config{Execute: instantExecute(1)})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status        string `json:"status"`
		QueueCapacity int    `json:"queue_capacity"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.QueueCapacity != svc.QueueCapacity() {
		t.Errorf("healthz = %+v", h)
	}

	// Run one job so the counters and the latency histogram move.
	presp := postJob(t, srv, `{"experiment":"fig3"}`)
	st := decodeStatus(t, presp.Body)
	presp.Body.Close()
	getStatus(t, srv, st.ID)

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mobicd_jobs_submitted_total 1",
		"mobicd_jobs_completed_total 1",
		"mobicd_queue_depth 0",
		"mobicd_jobs_in_flight 0",
		`mobicd_job_latency_seconds_bucket{le="+Inf"} 1`,
		"mobicd_job_latency_seconds_count 1",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestHTTPEndToEndSimulation exercises the real simulator through the full
// HTTP path: one Figure 3 cell (Table 1 scenario at Tx 150 m, trimmed to
// 60 s / 15 nodes for speed) submitted as a custom sweep, streamed to
// completion, result fetched as stable JSON.
func TestHTTPEndToEndSimulation(t *testing.T) {
	runner := experiment.Runner{
		Seeds: 2,
		Mutate: func(cfg *simnet.Config) {
			cfg.N = 15
			cfg.Duration = 60
		},
	}
	_, srv := newTestAPI(t, Config{Workers: 1, Runner: runner})

	body := `{"sweep":{"scenario":{"tx_range":150},"algorithms":["mobic","lcc"]},"include_raw":true}`
	resp := postJob(t, srv, body)
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status = %d: %s", resp.StatusCode, msg)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()

	sresp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var progress int
	var lastEv StreamEvent
	scanner := bufio.NewScanner(sresp.Body)
	scanner.Buffer(make([]byte, 1<<22), 1<<22)
	for scanner.Scan() {
		if err := json.Unmarshal(scanner.Bytes(), &lastEv); err != nil {
			t.Fatal(err)
		}
		if lastEv.Type == "progress" {
			progress++
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if lastEv.Type != "result" || lastEv.Stat == nil {
		t.Fatalf("terminal event = %+v", lastEv)
	}
	last := *lastEv.Stat
	if last.State != StateSucceeded {
		t.Fatalf("state = %s (%s)", last.State, last.Error)
	}
	// 2 cells x 2 seeds: the stream must deliver every cell completion.
	if progress != 4 {
		t.Errorf("saw %d progress events, want 4", progress)
	}
	if last.Result == nil || len(last.Result.Series) != 2 {
		t.Fatalf("result = %+v, want 2 series", last.Result)
	}
	if got := len(last.Cells); got != 2 {
		t.Fatalf("cells = %d, want 2", got)
	}
	for i, cell := range last.Cells {
		if cell.Broadcasts <= 0 {
			t.Errorf("cell %d: no broadcasts recorded", i)
		}
		if len(cell.Raw) != 2 {
			t.Errorf("cell %d: raw seeds = %d, want 2 (include_raw)", i, len(cell.Raw))
		}
	}
	// The synthesized series must agree with the per-cell aggregates.
	for ai := range last.Result.Series {
		if got, want := last.Result.Series[ai].Y[0], last.Cells[ai].CHChanges; got != want {
			t.Errorf("series %d: y = %g, cell ch_changes = %g", ai, got, want)
		}
	}
}
