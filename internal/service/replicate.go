package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"mobic/internal/obs"
)

// Proactive WAL replication. PR 6's failover ships checkpoints at failover
// time — the coordinator's last observed prefix — which loses progress when
// the worker and the coordinator's poller fail together. With replication
// enabled, a worker streams each job's journal records (the submit record,
// then every checkpoint) to its ring successor as they are fsync'd locally,
// so the successor holds a warm replica before anything dies.
//
// Wire format: POST /v1/replica/{id} with body
//
//	MOBICREPL1\n | frame* — the journal's exact length+CRC framing
//
// where each batch carries the job's full record image so far (submit +
// contiguous checkpoint prefix). Full-image batches make the protocol
// trivially idempotent — the replica keeps the longest prefix it has seen —
// and they are small: a sweep checkpoints at most its cell count, and
// CellStats are a few hundred bytes. The replica acks {"records": N}; the
// sender stops resending once everything is acked and retries (bounded by
// the job's lifetime) when a batch fails.

// replMagic heads every replication batch body; bump the digit on any
// format change.
var replMagic = []byte("MOBICREPL1\n")

// maxReplicaBody bounds a replication batch on the receiving side.
const maxReplicaBody = 16 << 20

// replicator streams journal records of replica-targeted jobs to their ring
// successors. One flusher goroutine per job batches, sends and retries;
// finish (at the job's terminal transition or service shutdown) makes a
// final best-effort flush and drops the state.
type replicator struct {
	client *http.Client
	every  time.Duration
	rec    obs.Recorder

	mu     sync.Mutex
	jobs   map[string]*replJob
	closed bool
	drain  chan struct{} // 0-counter signal: all flushers exited
	n      int
}

type replJob struct {
	id     string
	target string // successor base URL, e.g. http://127.0.0.1:9002

	mu    sync.Mutex
	recs  []record
	acked int

	kick chan struct{} // buffered 1: work available
	done chan struct{} // closed once: job finished / shutdown
	stop sync.Once
}

func newReplicator(client *http.Client, every time.Duration, rec obs.Recorder) *replicator {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	if every <= 0 {
		every = 25 * time.Millisecond
	}
	return &replicator{
		client: client,
		every:  every,
		rec:    rec,
		jobs:   make(map[string]*replJob),
		drain:  make(chan struct{}, 1),
	}
}

// begin registers a job for replication and ships its opening image (the
// submit record plus any pre-seeded checkpoint prefix — a restored job
// starts with one). No-op when the job carries no replica target.
func (r *replicator) begin(job *Job) {
	if job.replica == "" {
		return
	}
	recs := []record{{Type: recSubmit, Job: job.id, Time: job.created, Spec: &job.spec, Key: job.idemKey}}
	for i, cs := range job.checkpointed() {
		stats := cs
		recs = append(recs, record{Type: recCheckpoint, Job: job.id, Time: job.created, Cell: i, Stats: &stats})
	}
	rj := &replJob{
		id:     job.id,
		target: job.replica,
		recs:   recs,
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	r.mu.Lock()
	if r.closed || r.jobs[job.id] != nil {
		r.mu.Unlock()
		return
	}
	r.jobs[job.id] = rj
	r.n++
	r.mu.Unlock()
	rj.kick <- struct{}{}
	go r.run(rj)
}

// checkpoint appends one journaled checkpoint record to the job's replica
// stream. No-op for jobs that were never registered.
func (r *replicator) checkpoint(jobID string, rec record) {
	r.mu.Lock()
	rj := r.jobs[jobID]
	r.mu.Unlock()
	if rj == nil {
		return
	}
	rj.mu.Lock()
	rj.recs = append(rj.recs, rec)
	rj.mu.Unlock()
	select {
	case rj.kick <- struct{}{}:
	default:
	}
}

// finish ends a job's replication after a final best-effort flush. The
// replica's entry expires by TTL on its own side.
func (r *replicator) finish(jobID string) {
	r.mu.Lock()
	rj := r.jobs[jobID]
	delete(r.jobs, jobID)
	r.mu.Unlock()
	if rj != nil {
		rj.stop.Do(func() { close(rj.done) })
	}
}

// close stops every flusher (each makes one final flush attempt) and waits
// for them to exit.
func (r *replicator) close() {
	r.mu.Lock()
	r.closed = true
	jobs := make([]*replJob, 0, len(r.jobs))
	for _, rj := range r.jobs {
		jobs = append(jobs, rj)
	}
	r.jobs = make(map[string]*replJob)
	remaining := r.n
	r.mu.Unlock()
	for _, rj := range jobs {
		rj.stop.Do(func() { close(rj.done) })
	}
	for remaining > 0 {
		<-r.drain
		r.mu.Lock()
		remaining = r.n
		r.mu.Unlock()
	}
}

// run is one job's flusher: batch on kick (with a short coalescing window),
// retry unacked records periodically, final flush on done.
func (r *replicator) run(rj *replJob) {
	defer func() {
		r.mu.Lock()
		r.n--
		r.mu.Unlock()
		select {
		case r.drain <- struct{}{}:
		default:
		}
	}()
	retry := time.NewTicker(max(10*r.every, 250*time.Millisecond))
	defer retry.Stop()
	for {
		select {
		case <-rj.kick:
			// Coalescing window: a burst of checkpoints lands in one batch.
			t := time.NewTimer(r.every)
			select {
			case <-t.C:
			case <-rj.done:
			}
			t.Stop()
			r.flush(rj)
		case <-retry.C:
			r.flush(rj) // no-op when fully acked; the failed-batch retry path
		case <-rj.done:
			r.flush(rj)
			return
		}
	}
}

// flush ships the job's current full record image and advances the ack
// high-water mark. Failures only count a metric: the records stay queued
// for the next kick, retry tick or final flush.
func (r *replicator) flush(rj *replJob) {
	rj.mu.Lock()
	n := len(rj.recs)
	if rj.acked >= n {
		rj.mu.Unlock()
		return
	}
	recs := rj.recs[:n]
	rj.mu.Unlock()

	var body bytes.Buffer
	body.Write(replMagic)
	for i := range recs {
		if err := encodeFrame(&body, recs[i]); err != nil {
			return
		}
	}
	resp, err := r.client.Post(rj.target+"/v1/replica/"+rj.id, "application/octet-stream", &body)
	if err != nil {
		r.rec.Add(obs.ReplFailures, 1)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		r.rec.Add(obs.ReplFailures, 1)
		return
	}
	var ack struct {
		Records int `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		r.rec.Add(obs.ReplFailures, 1)
		return
	}
	acked := min(ack.Records, n)
	rj.mu.Lock()
	newly := acked - rj.acked
	if newly > 0 {
		rj.acked = acked
	}
	rj.mu.Unlock()
	r.rec.Add(obs.ReplBatches, 1)
	if newly > 0 {
		r.rec.Add(obs.ReplRecords, int64(newly))
	}
}
