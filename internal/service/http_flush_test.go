package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// flushRecorder wraps httptest.ResponseRecorder and counts Flush calls
// and the writes-since-last-flush high-water mark.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes        int
	unflushed      int // writes since the last flush
	maxUnflushed   int
	headerFlushed  bool // was there a flush before the first body write?
	wroteBodyBytes bool
}

func (f *flushRecorder) Write(b []byte) (int, error) {
	f.wroteBodyBytes = true
	f.unflushed++
	if f.unflushed > f.maxUnflushed {
		f.maxUnflushed = f.unflushed
	}
	return f.ResponseRecorder.Write(b)
}

func (f *flushRecorder) Flush() {
	f.flushes++
	f.unflushed = 0
	if !f.wroteBodyBytes {
		f.headerFlushed = true
	}
	f.ResponseRecorder.Flush()
}

// TestStreamFlushesEveryEvent pins the stream-delivery bugfix: the handler
// must flush right after WriteHeader (so a client attached to a queued job
// sees headers immediately) and after every NDJSON event — in particular
// the terminal "result" line must not sit in the buffer until the handler
// returns.
func TestStreamFlushesEveryEvent(t *testing.T) {
	svc := New(Config{Execute: instantExecute(3)})
	svc.Start()
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(JobSpec{Experiment: "fig3"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)

	handler := NewHandler(svc)
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+job.ID()+"/stream", nil)
	handler.ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d", rec.Code)
	}
	body := rec.Body.String()
	lines := bytes.Count([]byte(body), []byte("\n"))
	if lines < 2 || !strings.Contains(body, `"result"`) {
		t.Fatalf("stream replayed %d lines without a result event:\n%s", lines, body)
	}
	if !rec.headerFlushed {
		t.Error("no flush between WriteHeader and the first event: clients attached to a queued job would hang")
	}
	// Encoder writes once per event, so >1 unflushed write means some event
	// sat in the buffer behind a later one.
	if rec.maxUnflushed > 1 {
		t.Errorf("up to %d events buffered between flushes, want every event flushed as written", rec.maxUnflushed)
	}
	if rec.flushes < lines {
		t.Errorf("%d flushes for %d event lines: the final (result) line was left unflushed", rec.flushes, lines)
	}
}
