package service

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// updateGolden regenerates testdata/spec_digests.json from the current
// canonicalization: go test ./internal/service -run TestSpecDigestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

var hexDigest = regexp.MustCompile(`^[0-9a-f]{64}$`)

// mustSpec decodes a JSON spec, failing the test on error.
func mustSpec(t *testing.T, src string) JobSpec {
	t.Helper()
	var spec JobSpec
	dec := json.NewDecoder(strings.NewReader(src))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		t.Fatalf("decoding %s: %v", src, err)
	}
	return spec
}

// goldenEntry is one pinned digest in testdata/spec_digests.json.
type goldenEntry struct {
	Name   string          `json:"name"`
	Spec   json.RawMessage `json:"spec"`
	Digest string          `json:"digest"`
}

// goldenSpecs is the pinned corpus. The digests in the golden file are part
// of the cache and placement contract: a change that shifts any of them
// must bump specDigestVersion (old cache entries become unreachable, which
// is the safe failure) and is an API-visible event, not a refactor.
var goldenSpecs = []struct{ name, spec string }{
	{"experiment-fig3", `{"experiment":"fig3"}`},
	{"experiment-fig3-seeds", `{"experiment":"fig3","seeds":5,"base_seed":7}`},
	{"sweep-defaults", `{"sweep":{"scenario":{},"algorithms":["mobic"]}}`},
	{"sweep-explicit-table1", `{"sweep":{"scenario":{"n":50,"side":670,"max_speed":20,"tx_range":150,"bi":2,"tp":3,"cci":4,"duration":900},"algorithms":["mobic"]}}`},
	{"sweep-two-algorithms", `{"sweep":{"scenario":{"n":50},"algorithms":["mobic","lowest-id"],"tx_ranges":[50,100,150]},"seeds":3}`},
	{"sweep-include-raw", `{"sweep":{"scenario":{"n":50},"algorithms":["lcc"]},"include_raw":true,"duration":120}`},
	{"experiment-fig3-tiled", `{"experiment":"fig3","tiles":8}`},
	{"sweep-policies", `{"sweep":{"scenario":{"bi_min":0.5,"bi_max":4,"energy_j":12},"algorithms":["adaptive-lowest-id","mobic"]}}`},
}

func TestSpecDigestGolden(t *testing.T) {
	path := filepath.Join("testdata", "spec_digests.json")
	if *updateGolden {
		var entries []goldenEntry
		for _, g := range goldenSpecs {
			spec := mustSpec(t, g.spec)
			entries = append(entries, goldenEntry{Name: g.name, Spec: json.RawMessage(g.spec), Digest: spec.Digest()})
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(goldenSpecs) {
		t.Fatalf("golden file has %d entries, corpus has %d (regenerate with -update)", len(entries), len(goldenSpecs))
	}
	for i, g := range goldenSpecs {
		spec := mustSpec(t, g.spec)
		got := spec.Digest()
		if !hexDigest.MatchString(got) {
			t.Fatalf("%s: digest %q is not 64 hex chars", g.name, got)
		}
		if entries[i].Name != g.name {
			t.Fatalf("golden entry %d is %q, corpus says %q (regenerate with -update)", i, entries[i].Name, g.name)
		}
		if got != entries[i].Digest {
			t.Errorf("%s: digest changed\n  got  %s\n  want %s\nThe canonical form moved: bump specDigestVersion and regenerate with -update.",
				g.name, got, entries[i].Digest)
		}
	}
}

// TestSpecDigestVersionMiss pins the cache-migration behavior of the digest
// version bumps (mobicspec1 -> 2 added Tiles; 2 -> 3 added the clustering
// policy fields): the digests the old canonicalizations produced — frozen
// here from their golden files — must never come out of the current Digest,
// so every stale cache entry misses cleanly instead of being served for (or
// colliding with) a current spec.
func TestSpecDigestVersionMiss(t *testing.T) {
	old := []struct{ spec, digest string }{
		// mobicspec1
		{`{"experiment":"fig3"}`, "93537cc3133e2072b37fd0416bd73c7b819b5edd56fffbf74d7db284e5226e40"},
		{`{"experiment":"fig3","seeds":5,"base_seed":7}`, "552fe14783939e8e3d95b00ec98d0d3140aa9f0aef009446dce3a5674765e595"},
		{`{"sweep":{"scenario":{},"algorithms":["mobic"]}}`, "6b1c1628b66985b2c52112f5ee36afec9f76690efcb2adef8ffaaf86981ef870"},
		{`{"sweep":{"scenario":{"n":50},"algorithms":["mobic","lowest-id"],"tx_ranges":[50,100,150]},"seeds":3}`, "f23a729a632304ff1b827963ad3beca653cf23236a645151bf2b63f2096da8be"},
		{`{"sweep":{"scenario":{"n":50},"algorithms":["lcc"]},"include_raw":true,"duration":120}`, "d2662e04887415b345b277e74b98469fd43123cb42e4b7e51d46277f72c754ac"},
		// mobicspec2
		{`{"experiment":"fig3"}`, "fe411e4c7bc95078ab455b7dda859b755030a2819c531813c1ace07fa0ab809d"},
		{`{"experiment":"fig3","seeds":5,"base_seed":7}`, "8f6b0ec67e5c95a6927edb21552d553cef066c90d707ecd1c0ab841c8486a9f2"},
		{`{"sweep":{"scenario":{},"algorithms":["mobic"]}}`, "aaef1dd4bbf5987ae849551c3e1440eee8cfb0d3b00c3805603f669de3084fe6"},
		{`{"sweep":{"scenario":{"n":50},"algorithms":["mobic","lowest-id"],"tx_ranges":[50,100,150]},"seeds":3}`, "5f30ef95f915d185bf96264fee292b882a7b3c8e004e735bdfbae7318e42fb37"},
		{`{"sweep":{"scenario":{"n":50},"algorithms":["lcc"]},"include_raw":true,"duration":120}`, "17ed57bedda0c4abd078a24d0024499628b54982f0e9ef51216fe5732da32367"},
		{`{"experiment":"fig3","tiles":8}`, "0fae8080218c4d0edf5f6863d359255df1c2f27fc177dc52725a369192a3218a"},
	}
	for _, c := range old {
		if got := mustSpec(t, c.spec).Digest(); got == c.digest {
			t.Errorf("spec %s still digests to its stale value %s; old cache entries would be served", c.spec, c.digest)
		}
	}
}

// TestSpecDigestSpellingInvariance pins the normalizations: every pair
// below spells the same simulation differently and must collapse to one
// digest.
func TestSpecDigestSpellingInvariance(t *testing.T) {
	pairs := []struct{ name, a, b string }{
		{
			"defaults-vs-explicit-table1",
			`{"sweep":{"scenario":{},"algorithms":["mobic"]}}`,
			`{"sweep":{"scenario":{"n":50,"side":670,"max_speed":20,"tx_range":150,"bi":2,"tp":3,"cci":4,"duration":900},"algorithms":["mobic"]}}`,
		},
		{
			"omitted-vs-explicit-axis",
			`{"sweep":{"scenario":{"tx_range":120},"algorithms":["mobic"]}}`,
			`{"sweep":{"scenario":{"tx_range":120},"algorithms":["mobic"],"tx_ranges":[120]}}`,
		},
		{
			"base-seed-zero-vs-default",
			`{"experiment":"fig3"}`,
			`{"experiment":"fig3","base_seed":1}`,
		},
		{
			"timeout-excluded",
			`{"experiment":"fig3"}`,
			`{"experiment":"fig3","timeout_seconds":30}`,
		},
		{
			"json-field-order",
			`{"seeds":4,"sweep":{"algorithms":["lcc"],"scenario":{"n":40,"side":200}}}`,
			`{"sweep":{"scenario":{"side":200,"n":40},"algorithms":["lcc"]},"seeds":4}`,
		},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			da, db := mustSpec(t, p.a).Digest(), mustSpec(t, p.b).Digest()
			if da != db {
				t.Errorf("digests differ:\n  %s -> %s\n  %s -> %s", p.a, da, p.b, db)
			}
		})
	}
}

// TestSpecDigestSensitivity pins the other direction: semantically distinct
// specs must not collide.
func TestSpecDigestSensitivity(t *testing.T) {
	base := `{"sweep":{"scenario":{"n":30},"algorithms":["mobic"],"tx_ranges":[100,150]},"seeds":3}`
	variants := []struct{ name, spec string }{
		{"different-n", `{"sweep":{"scenario":{"n":31},"algorithms":["mobic"],"tx_ranges":[100,150]},"seeds":3}`},
		{"different-algorithm", `{"sweep":{"scenario":{"n":30},"algorithms":["lcc"],"tx_ranges":[100,150]},"seeds":3}`},
		{"algorithm-order", `{"sweep":{"scenario":{"n":30},"algorithms":["mobic","lcc"],"tx_ranges":[100,150]},"seeds":3}`},
		{"different-axis", `{"sweep":{"scenario":{"n":30},"algorithms":["mobic"],"tx_ranges":[150,100]},"seeds":3}`},
		{"different-seeds", `{"sweep":{"scenario":{"n":30},"algorithms":["mobic"],"tx_ranges":[100,150]},"seeds":4}`},
		{"include-raw", `{"sweep":{"scenario":{"n":30},"algorithms":["mobic"],"tx_ranges":[100,150]},"seeds":3,"include_raw":true}`},
		{"duration-override", `{"sweep":{"scenario":{"n":30},"algorithms":["mobic"],"tx_ranges":[100,150]},"seeds":3,"duration":60}`},
		{"tiles-override", `{"sweep":{"scenario":{"n":30},"algorithms":["mobic"],"tx_ranges":[100,150]},"seeds":3,"tiles":4}`},
		{"experiment-not-sweep", `{"experiment":"fig3"}`},
	}
	seen := map[string]string{mustSpec(t, base).Digest(): "base"}
	for _, v := range variants {
		d := mustSpec(t, v.spec).Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("%s collides with %s: %s", v.name, prev, d)
		}
		seen[d] = v.name
	}
}

// FuzzSpecDigest hunts for canonicalization bugs: any decodable spec must
// digest deterministically, a JSON re-encode round-trip must not move the
// digest (spelling insensitivity), and explicitly filling a valid spec's
// defaults must not either (default-fill insensitivity).
func FuzzSpecDigest(f *testing.F) {
	for _, g := range goldenSpecs {
		f.Add(g.spec)
	}
	f.Add(`{"sweep":{"scenario":{"n":1000,"warmup":0.5},"algorithms":["mobic-nocci","dca"],"tx_ranges":[1e-9]}}`)
	f.Add(`{"experiment":"fig3","seeds":32,"base_seed":18446744073709551615,"duration":3600}`)
	f.Fuzz(func(t *testing.T, src string) {
		var spec JobSpec
		if err := json.Unmarshal([]byte(src), &spec); err != nil {
			t.Skip()
		}
		d1 := spec.Digest()
		if !hexDigest.MatchString(d1) {
			t.Fatalf("digest %q is not 64 hex chars", d1)
		}
		if d2 := spec.Digest(); d2 != d1 {
			t.Fatalf("digest not deterministic: %s then %s", d1, d2)
		}

		// Round-trip through encoding/json: a client re-serializing the spec
		// must land on the same content address.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Skip()
		}
		var back JobSpec
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if d3 := back.Digest(); d3 != d1 {
			t.Fatalf("round-trip moved the digest: %s -> %s (spec %s)", d1, d3, enc)
		}

		if spec.Validate() != nil {
			return
		}
		// Default-fill: spell every defaultable field explicitly.
		filled := spec
		if filled.BaseSeed == 0 {
			filled.BaseSeed = 1
		}
		filled.TimeoutSeconds = spec.TimeoutSeconds + 17
		if spec.Sweep != nil {
			sw := *spec.Sweep
			p := sw.Scenario.params()
			sw.Scenario = ScenarioSpec{
				N: p.N, Side: p.Side, MaxSpeed: p.MaxSpeed, Pause: p.Pause,
				TxRange: p.TxRange, BI: p.BI, TP: p.TP, CCI: p.CCI,
				Duration: p.Duration, Warmup: p.Warmup,
				BIMin: p.BIMin, BIMax: p.BIMax, EnergyJ: p.EnergyJ,
			}
			if len(sw.TxRanges) == 0 {
				sw.TxRanges = []float64{p.TxRange}
			}
			filled.Sweep = &sw
		}
		if d4 := filled.Digest(); d4 != d1 {
			t.Fatalf("default-fill moved the digest: %s -> %s", d1, d4)
		}
	})
}
