package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"mobic/internal/experiment"
)

func sweepTwoCells() JobSpec {
	return JobSpec{
		Seeds: 1,
		Sweep: &SweepSpec{
			Algorithms: []string{"mobic"},
			TxRanges:   []float64{100, 150},
		},
	}
}

func TestRestoreResumesFromPrefix(t *testing.T) {
	var startCell atomic.Int64
	capture := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		startCell.Store(int64(base.StartCell))
		return &Output{}, nil
	}
	svc := New(Config{Execute: capture})
	svc.Start()
	defer func() { _ = svc.Shutdown(context.Background()) }()

	cps := []experiment.CellStats{{CHChanges: 1}}
	job, existed, err := svc.Restore("ffee00112233aabb", sweepTwoCells(), "", cps)
	if err != nil || existed {
		t.Fatalf("Restore: existed=%v err=%v", existed, err)
	}
	if job.ID() != "ffee00112233aabb" {
		t.Fatalf("restored job got ID %s", job.ID())
	}
	if st := waitTerminal(t, job); st.State != StateSucceeded {
		t.Fatalf("restored job %s: %s", st.State, st.Error)
	}
	if sc := startCell.Load(); sc != 1 {
		t.Fatalf("runner StartCell = %d, want 1 (resume past shipped prefix)", sc)
	}

	// Replaying the restore is idempotent.
	again, existed, err := svc.Restore("ffee00112233aabb", sweepTwoCells(), "", cps)
	if err != nil || !existed || again.ID() != job.ID() {
		t.Fatalf("replayed Restore: job=%v existed=%v err=%v", again, existed, err)
	}
}

func TestRestoreRejectsBadInput(t *testing.T) {
	svc := New(Config{Execute: instantExecute(1)})
	svc.Start()
	defer func() { _ = svc.Shutdown(context.Background()) }()

	cases := []struct {
		name string
		id   string
		spec JobSpec
		cps  []experiment.CellStats
	}{
		{"empty id", "", sweepTwoCells(), nil},
		{"long id", strings.Repeat("a", 65), sweepTwoCells(), nil},
		{"invalid spec", "abc123", JobSpec{}, nil},
		{"checkpoints on experiment", "abc123", JobSpec{Experiment: "fig3"}, []experiment.CellStats{{}}},
		{"too many checkpoints", "abc123", sweepTwoCells(), []experiment.CellStats{{}, {}, {}}},
	}
	for _, tc := range cases {
		if _, _, err := svc.Restore(tc.id, tc.spec, "", tc.cps); err == nil {
			t.Errorf("%s: Restore accepted", tc.name)
		}
	}
}

func TestHTTPCheckpointExportAndRestore(t *testing.T) {
	// Worker A runs a sweep partway (its journal holds checkpoints); the
	// coordinator exports them and restores onto worker B, which resumes.
	var startCell atomic.Int64
	checkpointing := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		startCell.Store(int64(base.StartCell))
		if base.Checkpoint != nil && base.StartCell == 0 {
			base.Checkpoint(0, experiment.CellStats{CHChanges: 1})
		}
		return &Output{}, nil
	}
	_, srvA := newTestAPI(t, Config{Execute: checkpointing})
	_, srvB := newTestAPI(t, Config{Execute: checkpointing})

	body, _ := json.Marshal(sweepTwoCells())
	resp, err := http.Post(srvA.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	getStatus(t, srvA, st.ID)

	resp, err = http.Get(srvA.URL + "/v1/jobs/" + st.ID + "/checkpoints")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoints status = %d", resp.StatusCode)
	}
	var export CheckpointExport
	if err := json.NewDecoder(resp.Body).Decode(&export); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(export.Checkpoints.Cells) != 1 {
		t.Fatalf("exported %d checkpoints, want 1", len(export.Checkpoints.Cells))
	}

	// Ship the export to worker B under the same job ID.
	restoreBody, _ := json.Marshal(map[string]any{
		"spec":        export.Spec,
		"key":         export.Key,
		"checkpoints": export.Checkpoints,
	})
	resp, err = http.Post(srvB.URL+"/v1/jobs/"+export.ID+"/restore", "application/json", bytes.NewReader(restoreBody))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("restore status = %d", resp.StatusCode)
	}
	restored := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if restored.ID != export.ID {
		t.Fatalf("restored under ID %s, want %s", restored.ID, export.ID)
	}
	if fin := getStatus(t, srvB, export.ID); fin.State != StateSucceeded {
		t.Fatalf("restored job %s: %s", fin.State, fin.Error)
	}
	if sc := startCell.Load(); sc != 1 {
		t.Fatalf("worker B StartCell = %d, want 1", sc)
	}

	// Version-mismatched payloads are rejected before touching the service.
	bad := strings.Replace(string(restoreBody), `"version":1`, `"version":99`, 1)
	resp, err = http.Post(srvB.URL+"/v1/jobs/otherid/restore", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("version-mismatch restore status = %d, want 400", resp.StatusCode)
	}
}
