package service

import (
	"errors"
	"fmt"
	"math"

	"mobic/internal/fair"
)

// ErrTenantQuota reports a submission shed because the tenant's queued-job
// quota (max_queued) is exhausted. The HTTP layer maps it to 429 with a
// per-tenant Retry-After.
var ErrTenantQuota = errors.New("service: tenant queue quota exhausted")

// ErrRateLimited reports a submission shed by the tenant's token-bucket
// rate limit. The HTTP layer maps it to 429 with a Retry-After derived
// from the bucket's refill rate.
var ErrRateLimited = errors.New("service: tenant rate limit exceeded")

// ShedError wraps an admission refusal with the tenant it hit and the
// per-tenant Retry-After hint, so transports can surface tenant-specific
// backpressure instead of the global queue estimate. Unwrap yields one of
// ErrQueueFull, ErrTenantQuota or ErrRateLimited for errors.Is dispatch.
type ShedError struct {
	Err        error  // sentinel: ErrQueueFull, ErrTenantQuota or ErrRateLimited
	Tenant     string // exposition name of the shed tenant
	Reason     string // fair.ReasonQuota, fair.ReasonRate or fair.ReasonCapacity
	RetryAfter int    // whole seconds, always >= 1
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("%v (tenant %s, retry after %ds)", e.Err, e.Tenant, e.RetryAfter)
}

func (e *ShedError) Unwrap() error { return e.Err }

// admit runs the fair-queue admission gate for n jobs from tenant.
// Callers must hold submitMu (the Admit decision and the matching
// Enqueue must not interleave with another producer's). A refusal bumps
// the global rejected counter once (it is one shed request) and the
// tenant's shed counter by n (it sheds n jobs).
func (s *Service) admit(tenant string, n int) error {
	sh := s.queue.Admit(tenant, n)
	if sh == nil {
		return nil
	}
	s.metrics.rejected.Add(1)
	s.tenantCounters(tenant).Shed.Add(int64(n))
	se := &ShedError{Tenant: fair.Display(tenant), Reason: sh.Reason}
	switch sh.Reason {
	case fair.ReasonRate:
		se.Err = ErrRateLimited
		// Round the bucket's exact refill time up to whole seconds,
		// clamped to the same [1, 30] band as the queue-depth hint.
		se.RetryAfter = int(math.Ceil(sh.RetryAfter))
		if se.RetryAfter < 1 {
			se.RetryAfter = 1
		}
		if se.RetryAfter > 30 {
			se.RetryAfter = 30
		}
	case fair.ReasonQuota:
		se.Err = ErrTenantQuota
		// The tenant's own backlog, not the global depth, predicts when
		// its quota frees up.
		se.RetryAfter = retryAfterSeconds(s.queue.Depth(tenant), s.cfg.Workers, s.metrics.LatencyEWMA())
	default: // fair.ReasonCapacity
		se.Err = ErrQueueFull
		se.RetryAfter = s.RetryAfterHint()
	}
	return se
}

// MaxBatchJobs caps the number of specs one POST /v1/jobs:batch may
// carry. The whole batch is journaled as a single WAL frame, so the cap
// also bounds the largest record a replayer must buffer.
const MaxBatchJobs = 64

// SubmitBatch validates and admits a batch of job specs atomically:
// either every spec is valid, within quota, and journaled in one WAL
// record — or nothing is enqueued. The all-or-none guarantee spans
// crashes: the batch record is a single CRC-framed WAL frame, so replay
// after a crash either sees the whole batch or none of it, never a
// prefix.
//
// Batch jobs carry no idempotency keys and never attach to in-flight
// duplicates (each job is its own leader-less submission); their results
// still publish to the result cache under each spec's digest.
func (s *Service) SubmitBatch(specs []JobSpec, opts SubmitOpts) ([]*Job, error) {
	if len(specs) == 0 {
		return nil, invalidf("batch must contain at least one job")
	}
	if len(specs) > MaxBatchJobs {
		return nil, invalidf("batch of %d jobs exceeds the %d-job limit", len(specs), MaxBatchJobs)
	}
	// Validate everything before admitting anything: one bad spec fails
	// the whole batch with its index, and no sibling is enqueued.
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("jobs[%d]: %w", i, err)
		}
	}
	tenant := s.cfg.Tenants.Canonical(opts.Tenant)

	s.submitMu <- struct{}{}
	defer func() { <-s.submitMu }()
	if s.closed {
		return nil, ErrShuttingDown
	}
	// One admission decision for the whole batch: n jobs are admitted
	// together or shed together (a partial admit would break atomicity).
	if err := s.admit(tenant, len(specs)); err != nil {
		return nil, err
	}
	now := s.cfg.Clock()
	jobs := make([]*Job, len(specs))
	entries := make([]batchEntry, len(specs))
	for i := range specs {
		job := newJob(specs[i], "", now)
		job.nowFn = s.cfg.Clock
		job.tenant = tenant
		if s.repl != nil {
			job.replica = opts.Replica
		}
		if s.cfg.Cache != nil {
			job.digest = specs[i].Digest()
		}
		jobs[i] = job
		entries[i] = batchEntry{Job: job.ID(), Spec: &specs[i]}
	}
	// The single append is the atomicity point: the whole batch becomes
	// durable in one frame, and the store reflects every job before any
	// compaction snapshot can run.
	s.compactMu.RLock()
	if s.journal != nil {
		if err := s.journal.Append(record{Type: recBatch, Time: now, Tenant: tenant, Batch: entries}); err != nil {
			s.compactMu.RUnlock()
			return nil, err
		}
	}
	for _, job := range jobs {
		s.store.Put(job)
	}
	s.compactMu.RUnlock()
	for _, job := range jobs {
		s.enqueue(job)
		if s.repl != nil {
			s.repl.begin(job)
		}
	}
	return jobs, nil
}
