package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mobic/internal/chaos"
	"mobic/internal/experiment"
	"mobic/internal/fair"
)

// tenantRegistry builds a registry for tests, failing on config errors.
func tenantRegistry(t *testing.T, tenants ...fair.Tenant) *fair.Registry {
	t.Helper()
	reg, err := fair.NewRegistry(nil, tenants, false)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// tenantSweep is a minimal unique spec: seed encodes identity so stubs can
// recover which submission they are running.
func tenantSweep(seed uint64) JobSpec {
	return JobSpec{
		Sweep:    &SweepSpec{Scenario: ScenarioSpec{N: 10}, Algorithms: []string{"mobic"}},
		Seeds:    1,
		BaseSeed: seed,
	}
}

// TestWFQFairnessShare pins the tentpole observable end to end through the
// service: three backlogged tenants with weights 4:2:1 drain in weight
// proportion. Everything is deterministic — jobs are enqueued before the
// single worker starts, and the execution order itself is the assertion.
func TestWFQFairnessShare(t *testing.T) {
	reg := tenantRegistry(t,
		fair.Tenant{Name: "gold", Weight: 4},
		fair.Tenant{Name: "silver", Weight: 2},
		fair.Tenant{Name: "bronze", Weight: 1},
	)
	names := []string{"gold", "silver", "bronze"}
	var mu sync.Mutex
	var order []string // tenant of each execution, in pop order
	svc := New(Config{
		Workers:       1,
		QueueCapacity: 1000,
		Tenants:       reg,
		Execute: func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
			mu.Lock()
			order = append(order, names[spec.BaseSeed/1_000_000])
			mu.Unlock()
			progress(1, 1)
			return &Output{Result: &experiment.Result{ID: "stub"}}, nil
		},
	})

	const perTenant = 120
	var jobs []*Job
	for ti, name := range names {
		for i := 0; i < perTenant; i++ {
			job, _, err := svc.SubmitWith(tenantSweep(uint64(ti)*1_000_000+uint64(i)+1), SubmitOpts{Tenant: name})
			if err != nil {
				t.Fatalf("submit %s[%d]: %v", name, i, err)
			}
			jobs = append(jobs, job)
		}
	}
	svc.Start()
	defer svc.Shutdown(context.Background())
	for _, job := range jobs {
		waitTerminal(t, job)
	}

	// While all three tenants are backlogged (guaranteed for at least the
	// first perTenant pops), the pop mix must match the weight mix.
	const window = 140 // < perTenant: bronze is still backlogged throughout
	counts := map[string]int{}
	mu.Lock()
	for _, tenant := range order[:window] {
		counts[tenant]++
	}
	mu.Unlock()
	wants := map[string]int{"gold": 80, "silver": 40, "bronze": 20}
	for name, want := range wants {
		if got := counts[name]; got < want-3 || got > want+3 {
			t.Errorf("%s executed %d of first %d jobs, want %d±3 (counts %v)", name, got, window, want, counts)
		}
	}
}

// readAll drains r into a string, failing the test on error.
func readAll(t *testing.T, r io.Reader) string {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// keepLines filters body down to lines containing substr, for readable
// failure messages on large metric expositions.
func keepLines(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestZeroQuotaTenantShed pins the acceptance scenario: a tenant with a
// zero queued-job quota is always shed with its own 429 + Retry-After
// while every other tenant keeps being admitted.
func TestZeroQuotaTenantShed(t *testing.T) {
	reg := tenantRegistry(t,
		fair.Tenant{Name: "blocked", Weight: 1, MaxQueued: -1},
		fair.Tenant{Name: "payer", Weight: 1},
	)
	svc, srv := newTestAPI(t, Config{Tenants: reg, Execute: instantExecute(1)})

	post := func(tenant string, seed uint64) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs",
			strings.NewReader(fmt.Sprintf(`{"sweep":{"scenario":{"n":10},"algorithms":["mobic"]},"seeds":1,"base_seed":%d}`, seed)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Mobic-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	for i := 0; i < 3; i++ {
		resp := post("blocked", uint64(i+1))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("blocked tenant submit %d: status %d, want 429", i, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
			t.Fatalf("blocked tenant 429 without a usable Retry-After (%q)", ra)
		}
		resp.Body.Close()

		resp = post("payer", uint64(100+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("payer submit %d alongside: status %d, want 202", i, resp.StatusCode)
		}
		st := decodeStatus(t, resp.Body)
		resp.Body.Close()
		if st.Tenant != "payer" {
			t.Fatalf("payer job carries tenant %q", st.Tenant)
		}
	}

	// The shed shows up under the blocked tenant's own metric family.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp.Body)
	if !strings.Contains(body, `mobicd_tenant_jobs_shed_total{tenant="blocked"} 3`) {
		t.Errorf("metrics missing blocked tenant's shed count:\n%s", keepLines(body, "mobicd_tenant_"))
	}
	if !strings.Contains(body, `mobicd_tenant_jobs_admitted_total{tenant="payer"} 3`) {
		t.Errorf("metrics missing payer tenant's admitted count:\n%s", keepLines(body, "mobicd_tenant_"))
	}
	_ = svc
}

// TestRateLimitRetryAfter pins the per-tenant token-bucket shed: with a
// 1 job/s rate and burst 1, the second submission sheds with ErrRateLimited
// and a whole-second Retry-After, and a second elapsed on the (test) clock
// re-admits.
func TestRateLimitRetryAfter(t *testing.T) {
	now := time.Unix(5000, 0)
	reg := tenantRegistry(t, fair.Tenant{Name: "slow", Weight: 1, Rate: 1, Burst: 1})
	svc := New(Config{Tenants: reg, Clock: func() time.Time { return now }, QueueCapacity: 16})
	// Not started: admission is all this test exercises.

	if _, _, err := svc.SubmitWith(tenantSweep(1), SubmitOpts{Tenant: "slow"}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, _, err := svc.SubmitWith(tenantSweep(2), SubmitOpts{Tenant: "slow"})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second submit err = %v, want ErrRateLimited", err)
	}
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("second submit err %T is not a *ShedError", err)
	}
	if se.Tenant != "slow" || se.RetryAfter < 1 || se.RetryAfter > 30 {
		t.Fatalf("shed = %+v, want tenant slow with RetryAfter in [1, 30]", se)
	}
	now = now.Add(time.Second)
	if _, _, err := svc.SubmitWith(tenantSweep(3), SubmitOpts{Tenant: "slow"}); err != nil {
		t.Fatalf("post-refill submit: %v", err)
	}
}

// TestSubmitBatchValidatesAtomically: one invalid spec rejects the whole
// batch before anything is admitted, journaled or enqueued.
func TestSubmitBatchValidatesAtomically(t *testing.T) {
	svc := New(Config{QueueCapacity: 16})
	specs := []JobSpec{tenantSweep(1), {Experiment: "no-such-experiment"}, tenantSweep(2)}
	_, err := svc.SubmitBatch(specs, SubmitOpts{})
	if !errors.Is(err, ErrInvalidSpec) || !strings.Contains(err.Error(), "jobs[1]") {
		t.Fatalf("batch err = %v, want ErrInvalidSpec naming jobs[1]", err)
	}
	if svc.QueueDepth() != 0 || svc.StoredJobs() != 0 {
		t.Fatalf("failed batch left depth=%d stored=%d", svc.QueueDepth(), svc.StoredJobs())
	}

	if _, err := svc.SubmitBatch(nil, SubmitOpts{}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("empty batch err = %v", err)
	}
	big := make([]JobSpec, MaxBatchJobs+1)
	for i := range big {
		big[i] = tenantSweep(uint64(i + 1))
	}
	if _, err := svc.SubmitBatch(big, SubmitOpts{}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("oversize batch err = %v", err)
	}

	// A valid batch admits every spec and stamps the tenant on each job.
	jobs, err := svc.SubmitBatch([]JobSpec{tenantSweep(10), tenantSweep(11), tenantSweep(12)}, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 || svc.QueueDepth() != 3 {
		t.Fatalf("batch admitted %d jobs, depth %d", len(jobs), svc.QueueDepth())
	}
}

// TestSubmitBatchQuotaAllOrNone: a batch that would exceed the tenant's
// quota sheds in full — no prefix is admitted.
func TestSubmitBatchQuotaAllOrNone(t *testing.T) {
	reg := tenantRegistry(t, fair.Tenant{Name: "tight", Weight: 1, MaxQueued: 2})
	svc := New(Config{Tenants: reg, QueueCapacity: 16})
	_, err := svc.SubmitBatch([]JobSpec{tenantSweep(1), tenantSweep(2), tenantSweep(3)}, SubmitOpts{Tenant: "tight"})
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota batch err = %v, want ErrTenantQuota", err)
	}
	if svc.QueueDepth() != 0 {
		t.Fatalf("shed batch enqueued %d jobs", svc.QueueDepth())
	}
	if jobs, err := svc.SubmitBatch([]JobSpec{tenantSweep(4), tenantSweep(5)}, SubmitOpts{Tenant: "tight"}); err != nil || len(jobs) != 2 {
		t.Fatalf("at-quota batch: %v (%d jobs)", err, len(jobs))
	}
}

// TestBatchCrashAtomicity is the acceptance crash test: a batch whose WAL
// frame is torn mid-write admits nothing across a restart, while an intact
// batch record replays every job — all-or-none, never a prefix.
func TestBatchCrashAtomicity(t *testing.T) {
	t.Run("torn-frame-admits-none", func(t *testing.T) {
		dir := t.TempDir()
		// First WAL write is the batch frame; tear it after 6 bytes.
		inj := chaos.New(chaos.MustParse("seed 7\nwrite wal nth=1 torn=6\n"))
		svc, err := Open(Config{DataDir: dir, WrapWAL: chaosWrap(inj, "wal"), QueueCapacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		_, err = svc.SubmitBatch([]JobSpec{tenantSweep(1), tenantSweep(2), tenantSweep(3)}, SubmitOpts{Tenant: ""})
		if err == nil || !chaos.IsInjected(err) {
			t.Fatalf("torn batch submit err = %v, want the injected write error", err)
		}
		// The failed batch admitted nothing even in-memory.
		if svc.StoredJobs() != 0 || svc.QueueDepth() != 0 {
			t.Fatalf("failed batch left stored=%d depth=%d", svc.StoredJobs(), svc.QueueDepth())
		}

		// "Crash" and reboot on the same dir: the torn frame must replay
		// as nothing, not as a partial batch.
		svc2, err := Open(Config{DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if got := svc2.RecoveredJobs(); got != 0 {
			t.Fatalf("recovered %d jobs from a torn batch frame, want 0", got)
		}
	})

	t.Run("intact-frame-replays-all", func(t *testing.T) {
		dir := t.TempDir()
		svc, err := Open(Config{DataDir: dir, QueueCapacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := svc.SubmitBatch([]JobSpec{tenantSweep(1), tenantSweep(2), tenantSweep(3)}, SubmitOpts{Tenant: ""})
		if err != nil {
			t.Fatal(err)
		}
		// SIGKILL: abandon without Shutdown — only the WAL survives.

		svc2, err := Open(Config{DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if got := svc2.RecoveredJobs(); got != len(jobs) {
			t.Fatalf("recovered %d jobs, want the whole batch (%d)", got, len(jobs))
		}
		for _, job := range jobs {
			if _, ok := svc2.Get(job.ID()); !ok {
				t.Errorf("batch job %s missing after replay", job.ID())
			}
		}
	})
}

// TestTenantAccountingSoak hammers submit/batch/cancel across tenants
// concurrently (run under -race in CI) and then checks the per-tenant
// books balance at quiescence: every admitted job reached a terminal
// state, no queued/running residue, and no job leaked across tenants.
func TestTenantAccountingSoak(t *testing.T) {
	tenants := []string{"a", "b", "c", "d"}
	reg := tenantRegistry(t,
		fair.Tenant{Name: "a", Weight: 4},
		fair.Tenant{Name: "b", Weight: 2},
		fair.Tenant{Name: "c", Weight: 1, MaxRunning: 2},
		fair.Tenant{Name: "d", Weight: 1},
	)
	svc := New(Config{Workers: 4, QueueCapacity: 4096, Tenants: reg, Execute: instantExecute(1)})
	svc.Start()
	defer svc.Shutdown(context.Background())

	const singles, batches, batchSize = 30, 4, 5
	var mu sync.Mutex
	byTenant := map[string][]*Job{}
	var wg sync.WaitGroup
	var seq struct {
		sync.Mutex
		n uint64
	}
	next := func() uint64 {
		seq.Lock()
		defer seq.Unlock()
		seq.n++
		return seq.n
	}
	for _, tenant := range tenants {
		wg.Add(2)
		go func(tenant string) {
			defer wg.Done()
			for i := 0; i < singles; i++ {
				job, _, err := svc.SubmitWith(tenantSweep(next()), SubmitOpts{Tenant: tenant})
				if err != nil {
					t.Errorf("%s submit: %v", tenant, err)
					return
				}
				mu.Lock()
				byTenant[tenant] = append(byTenant[tenant], job)
				mu.Unlock()
				if i%3 == 0 {
					svc.Cancel(job.ID())
				}
			}
		}(tenant)
		go func(tenant string) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				specs := make([]JobSpec, batchSize)
				for j := range specs {
					specs[j] = tenantSweep(next())
				}
				jobs, err := svc.SubmitBatch(specs, SubmitOpts{Tenant: tenant})
				if err != nil {
					t.Errorf("%s batch: %v", tenant, err)
					return
				}
				mu.Lock()
				byTenant[tenant] = append(byTenant[tenant], jobs...)
				mu.Unlock()
			}
		}(tenant)
	}
	wg.Wait()

	for tenant, jobs := range byTenant {
		want := singles + batches*batchSize
		if len(jobs) != want {
			t.Fatalf("%s tracked %d jobs, want %d", tenant, len(jobs), want)
		}
		for _, job := range jobs {
			if st := waitTerminal(t, job); st.Tenant != tenant {
				t.Errorf("job %s leaked: submitted as %s, status says %q", job.ID(), tenant, st.Tenant)
			}
		}
	}

	for _, tenant := range tenants {
		tc := svc.TenantMetrics().Tenant(tenant)
		admitted, done := tc.Admitted.Load(), tc.Done.Load()
		queued, running, shed := tc.Queued.Load(), tc.Running.Load(), tc.Shed.Load()
		if want := int64(singles + batches*batchSize); admitted != want {
			t.Errorf("%s admitted %d, want %d", tenant, admitted, want)
		}
		if admitted != done || queued != 0 || running != 0 || shed != 0 {
			t.Errorf("%s books don't balance: admitted=%d done=%d queued=%d running=%d shed=%d",
				tenant, admitted, done, queued, running, shed)
		}
	}
}

// TestRetryAfterSecondsProperties pins the hint function's contract:
// monotone non-decreasing in queue depth, always within [1, 30], and 1
// when no latency estimate exists yet.
func TestRetryAfterSecondsProperties(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, ewma := range []float64{0.01, 0.25, 1, 5, 60} {
			prev := 0
			for depth := 0; depth <= 300; depth++ {
				got := retryAfterSeconds(depth, workers, ewma)
				if got < 1 || got > 30 {
					t.Fatalf("retryAfterSeconds(%d, %d, %g) = %d outside [1, 30]", depth, workers, ewma, got)
				}
				if got < prev {
					t.Fatalf("retryAfterSeconds not monotone at depth %d (workers %d, ewma %g): %d < %d",
						depth, workers, ewma, got, prev)
				}
				prev = got
			}
		}
	}
	for _, ewma := range []float64{0, -1} {
		if got := retryAfterSeconds(100, 2, ewma); got != 1 {
			t.Fatalf("retryAfterSeconds with ewma %g = %d, want 1", ewma, got)
		}
	}
}

// TestTenantAccessors covers the thin tenant surface the dispatch tier
// leans on: depth per tenant, registry exposure, the exported hint
// function, and the job's tenant accessor.
func TestTenantAccessors(t *testing.T) {
	reg := tenantRegistry(t, fair.Tenant{Name: "team", Weight: 2})
	svc := New(Config{Tenants: reg, QueueCapacity: 16})
	job, _, err := svc.SubmitWith(tenantSweep(1), SubmitOpts{Tenant: "team"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Tenant() != "team" {
		t.Fatalf("job.Tenant() = %q", job.Tenant())
	}
	if d := svc.TenantDepth("team"); d != 1 {
		t.Fatalf("TenantDepth(team) = %d, want 1", d)
	}
	if d := svc.TenantDepth("other"); d != 0 {
		t.Fatalf("TenantDepth(other) = %d, want 0", d)
	}
	if svc.Tenants() != reg {
		t.Fatal("Tenants() did not return the configured registry")
	}
	if got, want := RetryAfterSeconds(10, 2, 1.0), retryAfterSeconds(10, 2, 1.0); got != want {
		t.Fatalf("RetryAfterSeconds = %d, internal = %d", got, want)
	}
}
