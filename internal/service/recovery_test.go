package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mobic/internal/experiment"
	"mobic/internal/harness"
	"mobic/internal/simnet"
	"mobic/internal/trace"
)

// digestCollector taps every simulation a runner materializes and keeps a
// canonical trace digest per (algorithm, tx range, seed) cell — the oracle
// that proves a resumed run executed exactly the cells it claims to, with
// exactly the behaviour of an uninterrupted run. Install via Runner.Mutate.
type digestCollector struct {
	mu sync.Mutex
	ds map[string]*harness.Digester
}

func newDigestCollector() *digestCollector {
	return &digestCollector{ds: make(map[string]*harness.Digester)}
}

func (c *digestCollector) mutate(cfg *simnet.Config) {
	key := fmt.Sprintf("%s|%g|%d", cfg.Algorithm.Name, cfg.TxRange, cfg.Seed)
	d := harness.NewDigester()
	c.mu.Lock()
	c.ds[key] = d
	c.mu.Unlock()
	prev := cfg.Observer
	cfg.Observer = func(ev trace.Event) {
		d.Observe(ev)
		if prev != nil {
			prev(ev)
		}
	}
}

// sums finalizes and returns all collected digests. Call once, after every
// tapped run has finished.
func (c *digestCollector) sums() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.ds))
	for k, d := range c.ds {
		out[k] = d.Sum()
	}
	return out
}

// recoverySweep is a 4-cell sweep small enough to simulate for real in a
// test: one algorithm over four transmission ranges, one seed per cell.
func recoverySweep() JobSpec {
	return JobSpec{
		Sweep: &SweepSpec{
			Scenario:   ScenarioSpec{N: 12, Duration: 20, Warmup: 2},
			Algorithms: []string{"mobic"},
			TxRanges:   []float64{60, 100, 140, 180},
		},
		Seeds: 1,
	}
}

// singleRunner is a serial runner so the per-cell Digesters (which are not
// concurrency-safe) see single-threaded runs.
func singleRunner(c *digestCollector) experiment.Runner {
	return experiment.Runner{Seeds: 1, Workers: 1, Mutate: c.mutate}
}

// TestCrashRecoveryResumesFromCheckpoint is the end-to-end durability
// acceptance test. A daemon is "killed" (abandoned without Shutdown) while
// a 4-cell sweep has checkpointed cells 0 and 1; a fresh Service opened on
// the same data dir must re-enqueue the job, resume at cell 2, and finish
// with output byte-identical to an uninterrupted run. Canonical trace
// digests prove both halves of the claim: the two executed cells behaved
// exactly like the reference run's, and the two checkpointed cells were
// never re-simulated.
func TestCrashRecoveryResumesFromCheckpoint(t *testing.T) {
	// Reference: the same sweep, uninterrupted, in-memory.
	refC := newDigestCollector()
	ref := New(Config{Workers: 1, Runner: singleRunner(refC)})
	ref.Start()
	defer ref.Shutdown(context.Background())
	refJob, err := ref.Submit(recoverySweep())
	if err != nil {
		t.Fatal(err)
	}
	refSt := waitTerminal(t, refJob)
	if refSt.State != StateSucceeded {
		t.Fatalf("reference run: %s (%s)", refSt.State, refSt.Error)
	}
	if len(refSt.Cells) != 4 {
		t.Fatalf("reference cells = %d, want 4", len(refSt.Cells))
	}
	refDigests := refC.sums()

	// Interrupted run: a stub executor checkpoints cells 0 and 1 through
	// the service's real checkpoint wiring (journal + job state), then
	// hangs like a wedged simulation until the "crash".
	dir := t.TempDir()
	checkpointed := make(chan struct{})
	stub := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		base.Checkpoint(0, refSt.Cells[0])
		base.Checkpoint(1, refSt.Cells[1])
		close(checkpointed)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	svc1, err := Open(Config{DataDir: dir, Workers: 1, Execute: stub})
	if err != nil {
		t.Fatal(err)
	}
	svc1.Start()
	job1, err := svc1.Submit(recoverySweep())
	if err != nil {
		t.Fatal(err)
	}
	<-checkpointed
	// "SIGKILL": abandon svc1 without Shutdown — nothing is flushed or
	// finalized beyond what the WAL already fsync'd. (A bounded Shutdown in
	// cleanup only unwedges the leaked worker goroutine.)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		_ = svc1.Shutdown(ctx)
	})

	// Reboot on the same data dir with the real executor.
	resC := newDigestCollector()
	svc2, err := Open(Config{DataDir: dir, Workers: 1, Runner: singleRunner(resC)})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc2.RecoveredJobs(); got != 1 {
		t.Fatalf("recovered %d jobs, want 1", got)
	}
	svc2.Start()
	defer svc2.Shutdown(context.Background())

	job2, ok := svc2.Get(job1.ID())
	if !ok {
		t.Fatalf("job %s not restored from journal", job1.ID())
	}
	st2 := waitTerminal(t, job2)
	if st2.State != StateSucceeded {
		t.Fatalf("resumed run: %s (%s)", st2.State, st2.Error)
	}
	if st2.Attempt != 2 {
		t.Errorf("attempt = %d, want 2 (one pre-crash, one post-recovery)", st2.Attempt)
	}

	// Byte-identical output: resume-equals-rerun.
	refJSON, err := json.Marshal(refSt.Output)
	if err != nil {
		t.Fatal(err)
	}
	resJSON, err := json.Marshal(st2.Output)
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(resJSON) {
		t.Errorf("resumed output differs from uninterrupted run:\nref: %s\ngot: %s", refJSON, resJSON)
	}

	// The resumed daemon must have simulated exactly cells 2 and 3 —
	// with traces byte-equal to the reference run's.
	resDigests := resC.sums()
	if len(resDigests) != 2 {
		t.Fatalf("resumed run simulated %d cells (%v), want exactly 2 (checkpointed cells must be skipped)", len(resDigests), resDigests)
	}
	for key, sum := range resDigests {
		if refDigests[key] == "" {
			t.Errorf("resumed run simulated unexpected cell %s", key)
			continue
		}
		if sum != refDigests[key] {
			t.Errorf("cell %s: trace digest mismatch\nref: %s\ngot: %s", key, refDigests[key], sum)
		}
	}
}

// TestTornWALRecovery truncates the WAL mid-record — the torn write a
// crash can leave behind — and checks the reopened service falls back to
// the last intact record: the job whose finish record was torn away is
// simply run again.
func TestTornWALRecovery(t *testing.T) {
	dir := t.TempDir()
	svc1, err := Open(Config{DataDir: dir, Execute: instantExecute(1)})
	if err != nil {
		t.Fatal(err)
	}
	svc1.Start()
	job, err := svc1.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateSucceeded {
		t.Fatalf("state = %s", st.State)
	}
	if err := svc1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: the finish record loses its last bytes.
	path := filepath.Join(dir, "journal.wal")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	svc2, err := Open(Config{DataDir: dir, Execute: instantExecute(1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc2.RecoveredJobs(); got != 1 {
		t.Fatalf("recovered %d jobs, want 1 (torn finish record)", got)
	}
	svc2.Start()
	defer svc2.Shutdown(context.Background())
	job2, ok := svc2.Get(job.ID())
	if !ok {
		t.Fatal("job lost with the torn tail")
	}
	if st := waitTerminal(t, job2); st.State != StateSucceeded {
		t.Errorf("re-run after torn WAL: %s (%s)", st.State, st.Error)
	}
}

// TestRetryAttemptSurvivesRestart: a job parked in backoff when the daemon
// dies must come back with its attempt count intact, so MaxAttempts bounds
// executions across restarts, not per boot.
func TestRetryAttemptSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	failing := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		return nil, errors.New("transient glitch")
	}
	// BaseDelay of an hour parks the retry so the "crash" happens mid-wait.
	svc1, err := Open(Config{
		DataDir: dir, Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour},
		Execute: failing,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc1.Start()
	job, err := svc1.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for attempt 1 to fail and the retry to be journaled (the job
	// goes back to queued with the error visible).
	deadline := time.After(10 * time.Second)
	for {
		st, _, notify := job.Snapshot()
		if st.Attempt == 1 && st.State == StateQueued && st.Error != "" {
			break
		}
		select {
		case <-notify:
		case <-deadline:
			t.Fatalf("job never reached retry wait: %+v", st)
		}
	}
	t.Cleanup(func() { _ = svc1.Shutdown(context.Background()) })

	svc2, err := Open(Config{
		DataDir: dir, Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3},
		Execute: instantExecute(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc2.RecoveredJobs(); got != 1 {
		t.Fatalf("recovered %d jobs, want 1", got)
	}
	svc2.Start()
	defer svc2.Shutdown(context.Background())
	job2, ok := svc2.Get(job.ID())
	if !ok {
		t.Fatal("retrying job not restored")
	}
	st := waitTerminal(t, job2)
	if st.State != StateSucceeded {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if st.Attempt != 2 {
		t.Errorf("attempt = %d, want 2 (count must survive the restart)", st.Attempt)
	}
}

// TestPoisonedAtBoot: a job that crash-looped the daemon through its whole
// attempt budget must be quarantined at recovery instead of being handed to
// the worker pool again.
func TestPoisonedAtBoot(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := specFig3()
	now := time.Now().UTC()
	for _, rec := range []record{
		{Type: recSubmit, Job: "cafecafe", Time: now, Spec: &spec},
		{Type: recStart, Job: "cafecafe", Time: now, Attempt: 1},
		{Type: recRetry, Job: "cafecafe", Time: now, Attempt: 1, Error: "killed the daemon"},
		{Type: recStart, Job: "cafecafe", Time: now, Attempt: 2},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	svc, err := Open(Config{DataDir: dir, Retry: RetryPolicy{MaxAttempts: 2}, Execute: instantExecute(1)})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Shutdown(context.Background())
	if got := svc.RecoveredJobs(); got != 0 {
		t.Errorf("recovered %d jobs, want 0 (job must be quarantined, not re-run)", got)
	}
	job, ok := svc.Get("cafecafe")
	if !ok {
		t.Fatal("poisoned job not queryable")
	}
	st, _, _ := job.Snapshot()
	if st.State != StatePoisoned {
		t.Fatalf("state = %s, want poisoned", st.State)
	}
	if got := svc.Metrics().poisoned.Load(); got != 1 {
		t.Errorf("poisoned counter = %d, want 1", got)
	}
}

// TestCompactionDoesNotLoseConcurrentRecords regression-tests the
// snapshot/append race: the janitor compacts the WAL from a store snapshot,
// and a record fsync'd between the snapshot and the swap — a submit
// acknowledged before store.Put, a finish journaled before job.finish —
// must not be erased by the rewrite. The janitor is tuned to compact every
// millisecond while submitters and workers hammer the journal; after a
// restart every acknowledged job must still exist and be terminal.
func TestCompactionDoesNotLoseConcurrentRecords(t *testing.T) {
	dir := t.TempDir()
	svc1, err := Open(Config{
		DataDir:       dir,
		Workers:       4,
		QueueCapacity: 256,
		EvictEvery:    time.Millisecond, // compaction check every tick
		CompactBytes:  1,                // always over threshold
		Execute:       instantExecute(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc1.Start()

	const submitters, perSubmitter = 8, 25
	ids := make([][]string, submitters)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				for {
					job, _, err := svc1.SubmitKey(specFig3(), fmt.Sprintf("key-%d-%d", g, i))
					if errors.Is(err, ErrQueueFull) {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Errorf("submit %d/%d: %v", g, i, err)
						return
					}
					ids[g] = append(ids[g], job.ID())
					break
				}
			}
		}(g)
	}
	wg.Wait()
	for _, group := range ids {
		for _, id := range group {
			job, ok := svc1.Get(id)
			if !ok {
				t.Fatalf("job %s vanished before restart", id)
			}
			waitTerminal(t, job)
		}
	}
	if err := svc1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart: every acknowledged job must have survived compaction.
	svc2, err := Open(Config{DataDir: dir, Execute: instantExecute(1)})
	if err != nil {
		t.Fatal(err)
	}
	svc2.Start()
	defer svc2.Shutdown(context.Background())
	if got := svc2.RecoveredJobs(); got != 0 {
		t.Errorf("recovered %d jobs, want 0 (all finished before shutdown)", got)
	}
	for _, group := range ids {
		for _, id := range group {
			job, ok := svc2.Get(id)
			if !ok {
				t.Errorf("job %s lost: compaction erased an acknowledged record", id)
				continue
			}
			if st, _, _ := job.Snapshot(); st.State != StateSucceeded {
				t.Errorf("job %s state = %s after restart, want succeeded", id, st.State)
			}
		}
	}
}

// TestIdempotencyKeySurvivesRestart: replay protection must hold across a
// daemon restart, or a client retrying into a fresh boot double-submits.
func TestIdempotencyKeySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc1, err := Open(Config{DataDir: dir, Execute: instantExecute(1)})
	if err != nil {
		t.Fatal(err)
	}
	svc1.Start()
	job, existed, err := svc1.SubmitKey(specFig3(), "run-42")
	if err != nil || existed {
		t.Fatalf("first submit: existed=%v err=%v", existed, err)
	}
	waitTerminal(t, job)
	if err := svc1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	svc2, err := Open(Config{DataDir: dir, Execute: instantExecute(1)})
	if err != nil {
		t.Fatal(err)
	}
	svc2.Start()
	defer svc2.Shutdown(context.Background())
	again, existed, err := svc2.SubmitKey(specFig3(), "run-42")
	if err != nil {
		t.Fatal(err)
	}
	if !existed || again.ID() != job.ID() {
		t.Errorf("replayed submit: existed=%v id=%s, want existed=true id=%s", existed, again.ID(), job.ID())
	}
}

// TestCompactBytesThreshold checks that Config.CompactBytes actually gates
// the janitor's compaction (the -wal-compact-bytes flag threads here): with
// a tiny threshold the WAL shrinks to the live store's footprint once jobs
// expire, while an effectively-infinite threshold leaves every historical
// record on disk — and the compacted journal still replays cleanly.
func TestCompactBytesThreshold(t *testing.T) {
	load := func(threshold int64) (*Service, string) {
		dir := t.TempDir()
		svc, err := Open(Config{
			DataDir:      dir,
			Workers:      2,
			EvictEvery:   2 * time.Millisecond,
			TTL:          5 * time.Millisecond,
			CompactBytes: threshold,
			Execute:      instantExecute(1),
		})
		if err != nil {
			t.Fatal(err)
		}
		svc.Start()
		for i := 0; i < 30; i++ {
			job, _, err := svc.SubmitKey(specFig3(), fmt.Sprintf("compact-%d", i))
			if err != nil {
				t.Fatal(err)
			}
			waitTerminal(t, job)
		}
		return svc, dir
	}

	tiny, tinyDir := load(1)
	deadline := time.Now().Add(10 * time.Second)
	for tiny.journal.Size() > 1024 {
		if time.Now().After(deadline) {
			t.Fatalf("tiny threshold never compacted: WAL still %d bytes", tiny.journal.Size())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := tiny.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	huge, _ := load(1 << 30)
	time.Sleep(20 * time.Millisecond) // several janitor ticks; must NOT compact
	if got := huge.journal.Size(); got < 4096 {
		t.Errorf("huge threshold compacted anyway: WAL %d bytes", got)
	}
	if err := huge.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The aggressively compacted journal must still boot.
	re, err := Open(Config{DataDir: tinyDir, Execute: instantExecute(1)})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	if n := re.RecoveredJobs(); n != 0 {
		t.Errorf("recovered %d jobs from a fully-terminal compacted WAL, want 0", n)
	}
	re.Start()
	if err := re.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
