package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"mobic/internal/experiment"
	"mobic/internal/obs"
)

// replSweep is a small two-cell sweep: enough checkpoints to replicate,
// fast enough for a unit test.
func replSweep() JobSpec {
	return JobSpec{
		Seeds: 1,
		Sweep: &SweepSpec{
			Scenario:   ScenarioSpec{N: 10, Duration: 5},
			Algorithms: []string{"mobic"},
			TxRanges:   []float64{100, 140},
		},
	}
}

// replBatch renders records as one MOBICREPL1 wire body, the shape the
// replicator POSTs.
func replBatch(t *testing.T, recs ...record) []byte {
	t.Helper()
	var body bytes.Buffer
	body.Write(replMagic)
	for _, rec := range recs {
		if err := encodeFrame(&body, rec); err != nil {
			t.Fatal(err)
		}
	}
	return body.Bytes()
}

func TestReplicaStoreApply(t *testing.T) {
	spec := replSweep()
	cs := experiment.CellStats{}
	sub := record{Type: recSubmit, Job: "j1", Spec: &spec, Key: "k"}
	cp := func(i int) record { return record{Type: recCheckpoint, Job: "j1", Cell: i, Stats: &cs} }
	now := time.Unix(1000, 0)

	rs := newReplicaStore(2, obs.Nop{})
	n, err := rs.Apply("j1", replBatch(t, sub, cp(0), cp(1)), now)
	if err != nil || n != 3 {
		t.Fatalf("Apply = (%d, %v), want (3, nil)", n, err)
	}
	if _, key, cps, ok := rs.Lookup("j1"); !ok || key != "k" || len(cps) != 2 {
		t.Fatalf("Lookup after apply: ok=%v key=%q cps=%d", ok, key, len(cps))
	}

	// A stale retransmission (shorter image) cannot shrink the replica; the
	// ack still covers what is held.
	n, err = rs.Apply("j1", replBatch(t, sub, cp(0)), now.Add(time.Second))
	if err != nil || n != 3 {
		t.Fatalf("stale Apply = (%d, %v), want (3, nil)", n, err)
	}
	if _, _, cps, _ := rs.Lookup("j1"); len(cps) != 2 {
		t.Fatalf("stale retransmission shrank the replica to %d cells", len(cps))
	}

	// Non-contiguous checkpoints are dropped, same as journal replay.
	n, err = rs.Apply("j2", replBatch(t, record{Type: recSubmit, Job: "j2", Spec: &spec}, cp(1)), now)
	if err != nil || n != 1 {
		t.Fatalf("gapped Apply = (%d, %v), want (1, nil)", n, err)
	}

	// Batches without a submit record or without any valid frame error out.
	if _, err := rs.Apply("j3", replBatch(t, cp(0)), now); err == nil {
		t.Fatal("batch with no submit record accepted")
	}
	if _, err := rs.Apply("j3", []byte("junk"), now); err == nil {
		t.Fatal("garbage batch accepted")
	}

	// The store is bounded: a third id evicts the least recently updated.
	if _, err := rs.Apply("j3", replBatch(t, record{Type: recSubmit, Job: "j3", Spec: &spec}), now.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (bounded)", rs.Len())
	}
	if _, _, _, ok := rs.Lookup("j2"); ok {
		t.Fatal("oldest entry survived eviction")
	}

	// Prune drops entries idle past the TTL.
	rs.Prune(time.Minute, now.Add(time.Hour))
	if rs.Len() != 0 {
		t.Fatalf("Len after prune = %d, want 0", rs.Len())
	}
}

// TestReplicationStreamsAndRestores is the service-level replication
// round trip: worker A streams its checkpoints to worker B as it journals
// them, and after A "dies" a restore on B with an empty shipped prefix
// resumes from the replica — producing output byte-equal to A's.
func TestReplicationStreamsAndRestores(t *testing.T) {
	regB := obs.NewRegistry()
	b := New(Config{Workers: 1, Runner: experiment.Runner{Seeds: 1, Workers: 1}, Obs: regB})
	b.Start()
	defer b.Shutdown(context.Background())
	srvB := httptest.NewServer(NewHandler(b))
	defer srvB.Close()

	a := New(Config{
		Workers:           1,
		Runner:            experiment.Runner{Seeds: 1, Workers: 1},
		Replicate:         true,
		ReplicaFlushEvery: 5 * time.Millisecond,
	})
	a.Start()
	defer a.Shutdown(context.Background())

	job, _, err := a.SubmitWith(replSweep(), SubmitOpts{Key: "run-1", Replica: srvB.URL})
	if err != nil {
		t.Fatal(err)
	}
	var stA Status
	for {
		st, _, notify := job.Snapshot()
		if st.State.Terminal() {
			stA = st
			break
		}
		<-notify
	}
	if stA.State != StateSucceeded {
		t.Fatalf("job on A: %s (%s)", stA.State, stA.Error)
	}
	outA, err := json.Marshal(stA.Output)
	if err != nil {
		t.Fatal(err)
	}

	// B holds the full replica (replication is async; the final flush races
	// the terminal snapshot above).
	deadline := time.Now().Add(5 * time.Second)
	for {
		spec, key, cps, ok := b.Replicas().Lookup(job.ID())
		if ok && len(cps) == 2 {
			if key != "run-1" {
				t.Fatalf("replica key = %q, want run-1", key)
			}
			if spec.Digest() != replSweep().Digest() {
				t.Fatal("replica spec digest mismatch")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica incomplete on B: ok=%v cps=%d", ok, len(cps))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Failover shape: restore on B ships an empty prefix (the coordinator
	// observed nothing), so the resume must come from the replica.
	restored, existed, err := b.RestoreWith(job.ID(), replSweep(), SubmitOpts{Key: "run-1"}, nil)
	if err != nil || existed {
		t.Fatalf("RestoreWith = (existed=%v, %v)", existed, err)
	}
	var stB Status
	for {
		st, _, notify := restored.Snapshot()
		if st.State.Terminal() {
			stB = st
			break
		}
		<-notify
	}
	if stB.State != StateSucceeded {
		t.Fatalf("restored job on B: %s (%s)", stB.State, stB.Error)
	}
	outB, err := json.Marshal(stB.Output)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outA, outB) {
		t.Errorf("replica-restored output differs:\nA: %s\nB: %s", outA, outB)
	}
	if got := regB.Counter(obs.ReplRestores); got != 1 {
		t.Errorf("ReplRestores = %d, want 1", got)
	}
}

// TestReplicaHTTPEndpoints covers the wire surface: PUT-shaped POSTs of
// replication batches and the replica debug GET.
func TestReplicaHTTPEndpoints(t *testing.T) {
	svc := New(Config{Workers: 1, Runner: experiment.Runner{Seeds: 1, Workers: 1}})
	svc.Start()
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	spec := replSweep()
	cs := experiment.CellStats{}
	body := replBatch(t,
		record{Type: recSubmit, Job: "abc123", Spec: &spec, Key: "k"},
		record{Type: recCheckpoint, Job: "abc123", Cell: 0, Stats: &cs},
	)
	resp, err := srv.Client().Post(srv.URL+"/v1/replica/abc123", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		Records int `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || ack.Records != 2 {
		t.Fatalf("replica POST = %d records=%d, want 200 records=2", resp.StatusCode, ack.Records)
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/replica/abc123")
	if err != nil {
		t.Fatal(err)
	}
	var export CheckpointExport
	if err := json.NewDecoder(resp.Body).Decode(&export); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if export.ID != "abc123" || len(export.Checkpoints.Cells) != 1 {
		t.Fatalf("replica GET = %+v", export)
	}

	// Garbage batches are rejected, unknown replicas are 404.
	resp, err = srv.Client().Post(srv.URL+"/v1/replica/abc123", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage replica POST = %d, want 400", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/v1/replica/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown replica GET = %d, want 404", resp.StatusCode)
	}
}
