package service

import (
	"bytes"
	"testing"
)

// FuzzJournalReplay hardens the WAL decoder against arbitrary on-disk bytes
// — the exact situation after a crash, a partial write, or bit rot. Three
// properties must hold for any input:
//
//  1. decodeRecords never panics and never reads past the buffer;
//  2. the valid-prefix offset is within [0, len(data)];
//  3. re-encoding the decoded records yields an image that decodes to the
//     same count with no torn tail (round-trip stability), so a compaction
//     of recovered state can always be replayed.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(journalMagic)
	f.Add([]byte("not a journal"))
	// A valid single-record image.
	var buf bytes.Buffer
	buf.Write(journalMagic)
	if err := encodeFrame(&buf, record{Type: recSubmit, Job: "ab", Spec: &JobSpec{Experiment: "fig3"}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// The same image with a truncated tail and with a flipped CRC byte.
	f.Add(buf.Bytes()[:buf.Len()-3])
	flipped := bytes.Clone(buf.Bytes())
	flipped[len(journalMagic)+4] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n := decodeRecords(data)
		if n < 0 || n > len(data) {
			t.Fatalf("valid prefix %d outside [0, %d]", n, len(data))
		}
		if len(recs) > 0 && n < len(journalMagic) {
			t.Fatalf("%d records decoded from a %d-byte prefix (shorter than the header)", len(recs), n)
		}
		// Round-trip: what we decoded must re-encode into a fully valid
		// journal image.
		var out bytes.Buffer
		out.Write(journalMagic)
		for _, rec := range recs {
			if err := encodeFrame(&out, rec); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		again, m := decodeRecords(out.Bytes())
		if m != out.Len() {
			t.Fatalf("re-encoded image has a torn tail: valid %d of %d", m, out.Len())
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
	})
}
