package service

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mobic/internal/experiment"
)

// fastRetry is a retry policy with test-scale backoff.
func fastRetry(maxAttempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: maxAttempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func TestRetryThenSuccess(t *testing.T) {
	var calls atomic.Int32
	exec := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		if calls.Add(1) <= 2 {
			return nil, errors.New("transient glitch")
		}
		return &Output{Result: &experiment.Result{ID: "stub"}}, nil
	}
	svc := New(Config{Workers: 1, Retry: fastRetry(3), Execute: exec})
	svc.Start()
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateSucceeded {
		t.Fatalf("state = %s (%s), want succeeded on attempt 3", st.State, st.Error)
	}
	if st.Attempt != 3 {
		t.Errorf("attempt = %d, want 3", st.Attempt)
	}
	if got := svc.Metrics().retried.Load(); got != 2 {
		t.Errorf("retried counter = %d, want 2", got)
	}
}

func TestPoisonedAfterMaxAttempts(t *testing.T) {
	exec := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		return nil, errors.New("always broken")
	}
	svc := New(Config{Workers: 1, Retry: fastRetry(2), Execute: exec})
	svc.Start()
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StatePoisoned {
		t.Fatalf("state = %s (%s), want poisoned", st.State, st.Error)
	}
	if st.Attempt != 2 {
		t.Errorf("attempt = %d, want 2", st.Attempt)
	}
	if !strings.Contains(st.Error, "poisoned after 2 attempts") || !strings.Contains(st.Error, "always broken") {
		t.Errorf("error = %q, want attempts and cause surfaced", st.Error)
	}
	if got := svc.Metrics().poisoned.Load(); got != 1 {
		t.Errorf("poisoned counter = %d, want 1", got)
	}
	if got := svc.Metrics().retried.Load(); got != 1 {
		t.Errorf("retried counter = %d, want 1", got)
	}
}

// TestNoRetryByDefault: the zero-value policy keeps the original contract —
// one failure, terminal StateFailed, no poisoning.
func TestNoRetryByDefault(t *testing.T) {
	var calls atomic.Int32
	exec := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		calls.Add(1)
		return nil, errors.New("boom")
	}
	svc := New(Config{Workers: 1, Execute: exec})
	svc.Start()
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("executor ran %d times, want 1", got)
	}
	if got := svc.Metrics().retried.Load(); got != 0 {
		t.Errorf("retried counter = %d, want 0", got)
	}
}

// TestPanicIsolation: a panicking executor must fail only its own job —
// concurrently running jobs finish normally and the daemon keeps accepting
// work. Run under -race in CI, this also shakes out data races between the
// recovering worker and healthy ones.
func TestPanicIsolation(t *testing.T) {
	release := make(chan struct{})
	exec := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		if spec.Seeds == 7 {
			panic("kaboom: executor bug")
		}
		select {
		case <-release:
			return &Output{Result: &experiment.Result{ID: "stub"}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	svc := New(Config{Workers: 2, Execute: exec})
	svc.Start()
	defer svc.Shutdown(context.Background())

	// Healthy job occupies one worker while the panicking job detonates on
	// the other.
	healthy, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	bad, err := svc.Submit(JobSpec{Experiment: "fig3", Seeds: 7})
	if err != nil {
		t.Fatal(err)
	}
	badSt := waitTerminal(t, bad)
	if badSt.State != StateFailed {
		t.Fatalf("panicking job state = %s, want failed", badSt.State)
	}
	if !strings.Contains(badSt.Error, "panicked") || !strings.Contains(badSt.Error, "kaboom") {
		t.Errorf("error = %q, want panic value surfaced", badSt.Error)
	}
	if !strings.Contains(badSt.Error, "goroutine") {
		t.Errorf("error lacks a stack trace: %q", badSt.Error)
	}

	close(release)
	if st := waitTerminal(t, healthy); st.State != StateSucceeded {
		t.Errorf("healthy job state = %s (%s), want succeeded alongside the panic", st.State, st.Error)
	}
	// The daemon survives: a fresh submission still runs.
	after, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, after); st.State != StateSucceeded {
		t.Errorf("post-panic job state = %s, want succeeded", st.State)
	}
}

// TestPanickingJobPoisons: with retries enabled a deterministic panic burns
// through its attempts and lands in quarantine.
func TestPanickingJobPoisons(t *testing.T) {
	exec := func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		panic("deterministic bug")
	}
	svc := New(Config{Workers: 1, Retry: fastRetry(2), Execute: exec})
	svc.Start()
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StatePoisoned {
		t.Fatalf("state = %s, want poisoned", st.State)
	}
	if !strings.Contains(st.Error, ErrJobPanicked.Error()) {
		t.Errorf("error = %q, want %q surfaced", st.Error, ErrJobPanicked)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		name    string
		depth   int
		workers int
		ewma    float64
		want    int
	}{
		{"no history", 5, 2, 0, 1},
		{"fast jobs floor at 1s", 0, 1, 0.2, 1},
		{"one queued ahead", 1, 1, 4.0, 8},
		{"deep queue split across workers", 9, 2, 4.0, 20},
		{"cap at 30s", 100, 1, 10.0, 30},
		{"many workers drain fast", 3, 4, 1.0, 1},
		{"zero workers clamps to one", 1, 0, 2.0, 4},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.depth, tc.workers, tc.ewma); got != tc.want {
			t.Errorf("%s: retryAfterSeconds(%d, %d, %g) = %d, want %d",
				tc.name, tc.depth, tc.workers, tc.ewma, got, tc.want)
		}
	}
}
