package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// FuzzSpec throws arbitrary bytes at the exact decode path POST /v1/jobs
// uses (strict JSON, unknown fields rejected) followed by Validate, and
// checks the contract the HTTP layer depends on:
//
//   - neither stage panics on any input;
//   - every validation failure is tagged ErrInvalidSpec, so the handler's
//     errors.Is mapping to 400 can never misclassify a bad submission;
//   - a spec that validates survives a marshal/unmarshal round trip and
//     still validates — what the daemon accepts, it can also echo back in a
//     Status and re-accept.
func FuzzSpec(f *testing.F) {
	seeds := []string{
		`{"experiment":"fig3"}`,
		`{"experiment":"table1","seeds":5,"base_seed":7,"timeout_seconds":1.5}`,
		`{"sweep":{"scenario":{"n":30,"tx_range":150},"algorithms":["mobic","lcc"],"tx_ranges":[100,150,200]}}`,
		`{"sweep":{"algorithms":["lowest-id"]},"duration":120,"include_raw":true}`,
		`{"experiment":"fig3","sweep":{"algorithms":["mobic"]}}`,
		`{"experiment":"fig99"}`,
		`{"seeds":-1}`,
		`{"sweep":{"algorithms":[]}}`,
		`{"sweep":{"scenario":{"n":100000},"algorithms":["mobic"]}}`,
		`{"sweep":{"algorithms":["mobic"],"tx_ranges":[-5]}}`,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"experiment":"fig3",`,
		`{"bogus_field":true}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return // 400 "decoding job spec"; nothing further to check
		}
		err := spec.Validate()
		if err != nil {
			if !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("validation error not tagged ErrInvalidSpec (would map to 500, not 400): %v", err)
			}
			return
		}

		wire, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v", err)
		}
		var again JobSpec
		rdec := json.NewDecoder(bytes.NewReader(wire))
		rdec.DisallowUnknownFields()
		if err := rdec.Decode(&again); err != nil {
			t.Fatalf("round trip decode of %s: %v", wire, err)
		}
		if err := again.Validate(); err != nil {
			t.Fatalf("spec became invalid after round trip %s: %v", wire, err)
		}
	})
}
