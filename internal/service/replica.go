package service

import (
	"errors"
	"sync"
	"time"

	"mobic/internal/experiment"
	"mobic/internal/obs"
)

// ReplicaStore is the receiving side of proactive WAL replication: a
// bounded, TTL-pruned in-memory map of checkpoint replicas streamed by ring
// predecessors. Every worker keeps one (the cost is a few KB per in-flight
// replicated job) so any peer can be a successor. On failover, Restore
// consults it: when the replica holds a longer contiguous checkpoint prefix
// than the coordinator's shipped (possibly stale) observation, the job
// resumes from the replica instead — the progress a dead owner journaled
// after the coordinator's last successful poll is not lost.
type ReplicaStore struct {
	rec obs.Recorder

	mu   sync.Mutex
	jobs map[string]*replicaEntry
	// limit bounds the entry count; the oldest entry is evicted past it.
	limit int
}

type replicaEntry struct {
	spec    JobSpec
	key     string
	cps     []experiment.CellStats
	updated time.Time
}

// newReplicaStore builds an empty store holding at most limit entries.
func newReplicaStore(limit int, rec obs.Recorder) *ReplicaStore {
	if limit <= 0 {
		limit = 256
	}
	return &ReplicaStore{jobs: make(map[string]*replicaEntry), limit: limit, rec: rec}
}

// Apply folds one replication batch (a MOBICREPL1 full record image) into
// the store and returns how many records the resulting entry covers — the
// ack the sender advances its high-water mark by. Batches are idempotent:
// the store keeps the longest contiguous checkpoint prefix it has seen for
// the id, so a stale retransmission can never shrink a replica.
func (rs *ReplicaStore) Apply(id string, data []byte, now time.Time) (int, error) {
	recs, _ := decodeFrames(data, replMagic)
	if len(recs) == 0 {
		return 0, errors.New("replica: no valid records in batch")
	}
	var e replicaEntry
	var haveSpec bool
	for _, rec := range recs {
		switch rec.Type {
		case recSubmit:
			if rec.Spec != nil && !haveSpec {
				e.spec, e.key, haveSpec = *rec.Spec, rec.Key, true
			}
		case recCheckpoint:
			// Contiguous prefix only, same as journal replay.
			if rec.Stats != nil && rec.Cell == len(e.cps) {
				e.cps = append(e.cps, *rec.Stats)
			}
		}
	}
	if !haveSpec {
		return 0, errors.New("replica: batch carries no submit record")
	}
	e.updated = now

	rs.mu.Lock()
	defer rs.mu.Unlock()
	if prev, ok := rs.jobs[id]; ok && len(prev.cps) > len(e.cps) {
		// Out-of-order retransmission of an older image: keep the longer
		// replica, refresh its clock, ack what we hold.
		prev.updated = now
		return 1 + len(prev.cps), nil
	}
	if _, ok := rs.jobs[id]; !ok && len(rs.jobs) >= rs.limit {
		rs.evictOldestLocked()
	}
	rs.jobs[id] = &e
	rs.rec.Add(obs.ReplApplied, int64(1+len(e.cps)))
	return 1 + len(e.cps), nil
}

// evictOldestLocked drops the least recently updated entry.
func (rs *ReplicaStore) evictOldestLocked() {
	var oldest string
	var when time.Time
	for id, e := range rs.jobs {
		if oldest == "" || e.updated.Before(when) {
			oldest, when = id, e.updated
		}
	}
	if oldest != "" {
		delete(rs.jobs, oldest)
	}
}

// Lookup returns the replica held for id, if any. The checkpoint slice is a
// copy.
func (rs *ReplicaStore) Lookup(id string) (spec JobSpec, key string, cps []experiment.CellStats, ok bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	e, ok := rs.jobs[id]
	if !ok {
		return JobSpec{}, "", nil, false
	}
	cps = make([]experiment.CellStats, len(e.cps))
	copy(cps, e.cps)
	return e.spec, e.key, cps, true
}

// Len returns the number of replicas held.
func (rs *ReplicaStore) Len() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.jobs)
}

// Prune drops replicas not updated within ttl. The janitor calls it with
// the service TTL: a replica either got consumed by a failover restore long
// before then or its job finished elsewhere.
func (rs *ReplicaStore) Prune(ttl time.Duration, now time.Time) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for id, e := range rs.jobs {
		if now.Sub(e.updated) >= ttl {
			delete(rs.jobs, id)
		}
	}
}
