package service

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"mobic/internal/stats"
)

// latency histogram shape: 24 half-second buckets over [0, 12) s plus
// under/overflow. Most trimmed jobs land well inside; full-fidelity 900 s
// sweeps show up in the overflow (+Inf) bucket.
const (
	latencyLo   = 0.0
	latencyHi   = 12.0
	latencyBins = 24
)

// Metrics aggregates service observability counters, exposed by
// GET /metrics in Prometheus text format.
// ewmaAlpha weighs the newest job duration in the moving average behind
// the 429 Retry-After hint; ~0.2 remembers the last handful of jobs.
const ewmaAlpha = 0.2

type Metrics struct {
	submitted atomic.Uint64
	rejected  atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
	retried   atomic.Uint64
	poisoned  atomic.Uint64
	inFlight  atomic.Int64

	mu      sync.Mutex
	latency *stats.Histogram
	ewma    float64 // exponentially weighted mean job duration, seconds
	ewmaSet bool
}

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics {
	h, err := stats.NewHistogram(latencyLo, latencyHi, latencyBins)
	if err != nil {
		panic("service: latency histogram: " + err.Error()) // static bounds
	}
	return &Metrics{latency: h}
}

// ObserveLatency records one finished job's wall-clock seconds.
func (m *Metrics) ObserveLatency(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latency.Add(seconds)
	if !m.ewmaSet {
		m.ewma, m.ewmaSet = seconds, true
	} else {
		m.ewma = ewmaAlpha*seconds + (1-ewmaAlpha)*m.ewma
	}
}

// LatencyEWMA returns the exponentially weighted mean job duration in
// seconds, or 0 before any job has finished.
func (m *Metrics) LatencyEWMA() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ewma
}

// WriteTo renders the metrics in Prometheus text exposition format.
// queueDepth and stored are point-in-time gauges supplied by the service.
func (m *Metrics) WriteTo(w io.Writer, queueDepth, stored int) error {
	counters := []struct {
		name, help string
		value      uint64
	}{
		{"mobicd_jobs_submitted_total", "Jobs accepted into the queue.", m.submitted.Load()},
		{"mobicd_jobs_rejected_total", "Submissions shed with 429 because the queue was full.", m.rejected.Load()},
		{"mobicd_jobs_completed_total", "Jobs finished successfully.", m.completed.Load()},
		{"mobicd_jobs_failed_total", "Jobs finished with an error (timeouts included).", m.failed.Load()},
		{"mobicd_jobs_canceled_total", "Jobs canceled by callers or shutdown.", m.canceled.Load()},
		{"mobicd_jobs_retried_total", "Failed attempts re-queued under the retry policy.", m.retried.Load()},
		{"mobicd_jobs_poisoned_total", "Jobs quarantined after exhausting Retry.MaxAttempts.", m.poisoned.Load()},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.value); err != nil {
			return err
		}
	}
	gauges := []struct {
		name, help string
		value      int64
	}{
		{"mobicd_queue_depth", "Jobs waiting in the FIFO queue.", int64(queueDepth)},
		{"mobicd_jobs_in_flight", "Jobs currently executing on workers.", m.inFlight.Load()},
		{"mobicd_jobs_stored", "Jobs held in the store (all states, pre-TTL).", int64(stored)},
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			g.name, g.help, g.name, g.name, g.value); err != nil {
			return err
		}
	}
	return m.writeLatency(w)
}

// writeLatency renders the per-job latency histogram with cumulative
// buckets, Prometheus-style.
func (m *Metrics) writeLatency(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	const name = "mobicd_job_latency_seconds"
	if _, err := fmt.Fprintf(w, "# HELP %s Wall-clock latency of finished jobs.\n# TYPE %s histogram\n", name, name); err != nil {
		return err
	}
	cum := m.latency.Underflow()
	for i := 0; i < m.latency.Bins(); i++ {
		cum += m.latency.Count(i)
		_, hi := m.latency.BinBounds(i)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", hi), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_count %d\n", name, m.latency.Total(), name, m.latency.Total())
	return err
}
