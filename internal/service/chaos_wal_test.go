package service

import (
	"context"
	"testing"
	"time"

	"mobic/internal/chaos"
	"mobic/internal/experiment"
)

// chaosWrap adapts a chaos injector to the journal's WrapWAL seam. The two
// interfaces (chaos.OSFile, service.WALFile) are structurally identical on
// purpose, so neither package imports the other.
func chaosWrap(inj *chaos.Injector, class string) func(WALFile) WALFile {
	return func(f WALFile) WALFile { return inj.File(class, f) }
}

// TestJournalWedgesAndCompactHeals drives the journal's failure semantics
// through the chaos write interceptor: a failed append wedges every later
// append with the same error, and a Compact rebuild is the only unwedge.
func TestJournalWedgesAndCompactHeals(t *testing.T) {
	inj := chaos.New(chaos.MustParse("seed 5\nwrite wal nth=2 error\n"))
	j, recs, err := openJournal(t.TempDir(), chaosWrap(inj, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}

	spec := replSweep()
	sub := record{Type: recSubmit, Job: "a", Spec: &spec}
	if err := j.Append(sub); err != nil {
		t.Fatalf("first append: %v", err)
	}
	// Second append hits the injected write error and wedges the journal.
	if err := j.Append(record{Type: recStart, Job: "a", Attempt: 1}); err == nil {
		t.Fatal("append with injected write error succeeded")
	}
	if err := j.Err(); err == nil || !chaos.IsInjected(err) {
		t.Fatalf("Err = %v, want the injected write error", err)
	}
	// Later appends short-circuit on the wedge without touching the file.
	fired := inj.Fired()
	if err := j.Append(sub); err == nil {
		t.Fatal("append on a wedged journal succeeded")
	}
	if inj.Fired() != fired {
		t.Error("wedged append still reached the file")
	}

	// Compact rebuilds from live state and clears the wedge.
	if err := j.Compact([]record{sub}); err != nil {
		t.Fatalf("compact on wedged journal: %v", err)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("Err after compact = %v, want nil", err)
	}
	if err := j.Append(record{Type: recStart, Job: "a", Attempt: 1}); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
}

// TestJournalTornWriteTruncatesOnReplay pins the interplay between torn
// writes and recovery: a write severed mid-frame wedges the journal, and a
// reopen replays only up to the last intact frame — the torn tail is
// truncated, never parsed as a record.
func TestJournalTornWriteTruncatesOnReplay(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.New(chaos.MustParse("seed 5\nwrite wal nth=2 torn=6\n"))
	j, _, err := openJournal(dir, chaosWrap(inj, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	spec := replSweep()
	if err := j.Append(record{Type: recSubmit, Job: "a", Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	// Torn: only 6 bytes of the frame reach the file, then the error.
	if err := j.Append(record{Type: recStart, Job: "a", Attempt: 1}); err == nil {
		t.Fatal("torn append reported success")
	}
	j.Close()

	j2, recs, err := openJournal(dir, nil)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer j2.Close()
	if len(recs) != 1 || recs[0].Type != recSubmit {
		t.Fatalf("replayed %d records (want just the intact submit)", len(recs))
	}
	// The torn tail was truncated: appends land cleanly on the boundary.
	if err := j2.Append(record{Type: recStart, Job: "a", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs, err = openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after post-truncation append, want 2", len(recs))
	}
}

// TestFsyncFailureFlipsReadyAndDrains is the service-level half: an
// injected fsync failure wedges the journal and flips Ready to false, but
// the in-flight job still drains to completion — and the janitor's healing
// compaction restores readiness.
func TestFsyncFailureFlipsReadyAndDrains(t *testing.T) {
	inj := chaos.New(chaos.MustParse("seed 11\nfsync wal nth=2..4 error\n"))
	svc, err := Open(Config{
		DataDir:    t.TempDir(),
		Workers:    1,
		Runner:     experiment.Runner{Seeds: 1, Workers: 1},
		WrapWAL:    chaosWrap(inj, "wal"),
		EvictEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Shutdown(context.Background())

	// Submit journals fine (fsync #1); the start/checkpoint appends hit the
	// injected fsync failures and wedge the journal mid-job.
	job, err := svc.Submit(replSweep())
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	for {
		s, _, notify := job.Snapshot()
		if s.State.Terminal() {
			st = s
			break
		}
		<-notify
	}
	// The job drained despite the wedged journal.
	if st.State != StateSucceeded {
		t.Fatalf("job under fsync chaos: %s (%s)", st.State, st.Error)
	}
	if inj.Fired() < 1 {
		t.Fatal("fsync chaos never fired")
	}

	// The janitor's healing compaction eventually restores readiness (the
	// wedge window itself is racy to observe: the same pass may already
	// have healed it).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, _ := svc.Ready(); ok {
			break
		}
		if time.Now().After(deadline) {
			_, reason := svc.Ready()
			t.Fatalf("journal never healed: %s", reason)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
