package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"mobic/internal/cache"
	"mobic/internal/experiment"
	"mobic/internal/fair"
	"mobic/internal/obs"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is returned by Submit when the bounded queue cannot
	// accept another job; callers should retry after backing off (429).
	ErrQueueFull = errors.New("service: queue full")
	// ErrShuttingDown is returned by Submit once Shutdown began (503).
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrJobPanicked tags executor panics caught by the worker's recover;
	// the panic value and stack are preserved in the job's error.
	ErrJobPanicked = errors.New("service: job panicked")
)

// ExecuteFunc runs one job spec; the default is JobSpec.run on the real
// simulator. Tests and benchmarks substitute stubs. The runner passed in
// carries the service-wide defaults plus, for sweep jobs, the
// checkpoint/resume wiring (StartCell, Resume, Checkpoint).
type ExecuteFunc func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error)

// RetryPolicy caps how often a failing job is re-executed. Attempt counts
// are journaled, so they survive daemon restarts.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions a job may consume,
	// the first run included. <= 1 disables retries: any failure is
	// terminal StateFailed. With MaxAttempts > 1, a job whose last
	// allowed attempt also fails is quarantined as StatePoisoned.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 500 ms).
	// It doubles per failed attempt, is capped at MaxDelay (default
	// 30 s), and gets ±25% jitter so a burst of failures doesn't
	// re-converge on the queue in lockstep.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff.
	MaxDelay time.Duration
}

// backoff returns the jittered delay before retrying after the given
// failed attempt (1-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Full-jitter would lose the floor; ±25% keeps ordering roughly fair.
	jitter := 0.75 + 0.5*rand.Float64()
	return time.Duration(float64(d) * jitter)
}

// Config parameterizes a Service.
type Config struct {
	// QueueCapacity bounds the number of queued (not yet running) jobs;
	// beyond it Submit sheds load with ErrQueueFull. Default 64.
	QueueCapacity int
	// Workers is the number of jobs executed concurrently. Each job
	// parallelizes internally via Runner.Workers, so the default is a
	// deliberately small 2.
	Workers int
	// TTL is how long terminal jobs stay queryable. Default 15 min.
	TTL time.Duration
	// EvictEvery is the janitor period. Default 1 min.
	EvictEvery time.Duration
	// Runner is the base experiment runner jobs start from (its Seeds,
	// BaseSeed and Mutate act as service-wide defaults).
	Runner experiment.Runner
	// Execute overrides job execution (stub point for tests/benchmarks).
	Execute ExecuteFunc
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// DataDir, when non-empty, enables the durability layer: Open
	// journals every job lifecycle transition to an fsync'd write-ahead
	// log under this directory, replays it on boot, re-enqueues jobs
	// that were queued or running at crash time, and resumes sweeps from
	// their last completed-cell checkpoint. Empty keeps the original
	// purely in-memory mode.
	DataDir string
	// Retry governs re-execution of failed attempts. The zero value
	// disables retries (MaxAttempts 1).
	Retry RetryPolicy
	// CompactBytes triggers journal compaction from the janitor once the
	// WAL grows past this size (default 8 MiB; only with DataDir).
	CompactBytes int64
	// Obs receives engine and sweep telemetry from every job this service
	// runs (threaded through experiment.Runner into each simulation).
	// Defaults to obs.Nop; mobicd installs an obs.Registry and merges its
	// families into /metrics.
	Obs obs.Recorder
	// Cache, when non-nil, enables the content-addressed result layer:
	// submissions are keyed by JobSpec.Digest, a digest already cached
	// returns a finished job immediately, concurrent identical submissions
	// collapse onto one in-flight job, and every successful output is
	// published back under its digest. Determinism makes this sound — the
	// cached value IS the result of that spec (see DESIGN.md S28).
	Cache *cache.Cache
	// WrapWAL, when non-nil, intercepts the journal's file handle — the
	// chaos harness installs a fault injector here to exercise torn writes
	// and fsync failures without the service importing it.
	WrapWAL func(WALFile) WALFile
	// Replicate enables proactive WAL replication: jobs submitted or
	// restored with a replica target (the X-Mobic-Replica header, set by a
	// coordinator to the job's ring successor) stream their checkpoint
	// records to that peer as they are journaled, so a failover restores
	// from a warm replica instead of the coordinator's last poll.
	Replicate bool
	// ReplicaFlushEvery is the replication batching window (default 25 ms):
	// checkpoints landing within it coalesce into one batch.
	ReplicaFlushEvery time.Duration
	// ReplicaClient sends replication batches (default: 2 s timeout).
	ReplicaClient *http.Client
	// Tenants is the multi-tenant admission policy: per-tenant weights,
	// priorities, quotas and rate limits, plus the credential mapping
	// (API keys and X-Mobic-Tenant names). Nil runs the single default
	// tenant with no per-tenant limits — exactly the pre-multi-tenancy
	// behavior.
	Tenants *fair.Registry
}

func (c Config) withDefaults() Config {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Runner.Workers <= 0 {
		// Split cores across concurrent jobs rather than letting every
		// job's cell pool oversubscribe the machine.
		c.Runner.Workers = max(1, runtime.GOMAXPROCS(0)/c.Workers)
	}
	if c.TTL <= 0 {
		c.TTL = 15 * time.Minute
	}
	if c.EvictEvery <= 0 {
		c.EvictEvery = time.Minute
	}
	if c.Execute == nil {
		c.Execute = func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
			return spec.run(ctx, base, progress)
		}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry.MaxAttempts = 1
	}
	if c.Retry.BaseDelay <= 0 {
		c.Retry.BaseDelay = 500 * time.Millisecond
	}
	if c.Retry.MaxDelay <= 0 {
		c.Retry.MaxDelay = 30 * time.Second
	}
	if c.CompactBytes <= 0 {
		c.CompactBytes = 8 << 20
	}
	if c.Obs == nil {
		c.Obs = obs.Nop{}
	}
	if c.Runner.Obs == nil {
		c.Runner.Obs = c.Obs
	}
	if c.Tenants == nil {
		c.Tenants = fair.DefaultRegistry()
	}
	return c
}

// Service is the simulation-as-a-service backend: a bounded FIFO queue, a
// worker pool over experiment.Runner, a TTL-evicted job store and, with
// Config.DataDir set, a write-ahead journal that makes all of it survive a
// crash.
type Service struct {
	cfg      Config
	store    *Store
	queue    *fair.Queue[*Job] // per-tenant WFQ sub-queues (see internal/fair)
	metrics  *Metrics
	tset     *obs.TenantSet // per-tenant admitted/shed/queued/running/done families
	journal  *Journal
	flights  *cache.Flight // digest -> in-flight leader job (Cache mode)
	repl     *replicator   // checkpoint streaming to ring successors (Replicate mode)
	replicas *ReplicaStore // checkpoint replicas received from ring predecessors

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workersWG  chan struct{} // closed when all workers exited
	janitorWG  chan struct{} // closed when the janitor exited
	retryWG    chan struct{} // 0-counter signal; see retryDone
	retryN     chan int      // serialized retry-goroutine counter
	draining   chan struct{} // closed when Shutdown begins

	submitMu  chan struct{} // 1-token semaphore guarding closed+enqueue
	closed    bool
	recovered int

	// compactMu makes journal compaction atomic with respect to the
	// append+update pairs that make a record durable and then reflect it
	// in the store. Writers of state (SubmitKey, journalApply) hold the
	// read side across both steps; the janitor holds the write side
	// across snapshot-and-swap. Without it, a snapshot taken between an
	// fsync'd Append and its store update misses the record, and the
	// rewrite erases a durably acknowledged job from the WAL.
	compactMu sync.RWMutex
}

// New builds an in-memory Service; call Start before submitting. For the
// durable, journal-backed mode use Open.
func New(cfg Config) *Service {
	return newService(cfg.withDefaults())
}

func newService(cfg Config) *Service {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		store:      NewStore(cfg.TTL),
		queue:      fair.NewQueue[*Job](cfg.Tenants, cfg.QueueCapacity, cfg.Clock),
		metrics:    NewMetrics(),
		tset:       obs.NewTenantSet(),
		flights:    cache.NewFlight(),
		replicas:   newReplicaStore(0, cfg.Obs),
		baseCtx:    ctx,
		baseCancel: cancel,
		workersWG:  make(chan struct{}),
		janitorWG:  make(chan struct{}),
		retryN:     make(chan int, 1),
		draining:   make(chan struct{}),
		submitMu:   make(chan struct{}, 1),
	}
	if cfg.Replicate {
		s.repl = newReplicator(cfg.ReplicaClient, cfg.ReplicaFlushEvery, cfg.Obs)
	}
	s.retryN <- 0
	return s
}

// Open builds a Service and, when cfg.DataDir is set, replays its journal:
// torn tails are truncated, jobs that already finished are restored as
// queryable terminal jobs (TTL permitting), and jobs that were queued or
// running when the previous process died are re-enqueued — sweeps resume
// from their last completed-cell checkpoint, so the recovered run's output
// is identical to an uninterrupted one. Call Start afterwards.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := newService(cfg)
	if cfg.DataDir == "" {
		return s, nil
	}
	j, recs, err := openJournal(cfg.DataDir, cfg.WrapWAL)
	if err != nil {
		return nil, err
	}
	s.journal = j
	pending := s.restore(recs)
	// Boot compaction: rewrite the WAL from the restored state, dropping
	// records of expired jobs and whatever the torn-tail truncation left.
	if err := j.Compact(s.snapshotRecords()); err != nil {
		return nil, err
	}
	// Recovered jobs re-enter through Requeue, which bypasses quotas and
	// rate limits (they were admitted once already) and may exceed the
	// queue bound; Submit still sheds against cfg.QueueCapacity, so
	// backpressure semantics are unchanged.
	for _, job := range pending {
		s.queue.Requeue(job.tenant, job)
		s.tenantCounters(job.tenant).Queued.Add(1)
	}
	s.recovered = len(pending)
	return s, nil
}

// restore folds replayed records into store state and returns the
// non-terminal jobs to re-enqueue, in submission order.
//
// It also re-seeds the observability counters and the Retry-After EWMA
// from the replayed log: a freshly booted daemon whose store holds N jobs
// must not report zero submissions on /metrics, and its 429 Retry-After
// hint must extrapolate from the journaled durations of jobs that finished
// before the crash rather than restarting blind at the 1 s floor. Jobs
// whose TTL expired while the daemon was down are dropped without touching
// any counter, so /metrics stays consistent with store contents.
func (s *Service) restore(recs []record) []*Job {
	now := s.cfg.Clock()
	jobs := make(map[string]*Job)
	var order []*Job
	// finished remembers terminal records so TTL filtering and terminal
	// reconstruction happen after the whole log is folded.
	type terminal struct {
		state    State
		errMsg   string
		output   *Output
		finished time.Time
	}
	ends := make(map[string]terminal)
	starts := make(map[string]time.Time)
	for _, rec := range recs {
		switch rec.Type {
		case recSubmit:
			if rec.Spec == nil || jobs[rec.Job] != nil {
				continue
			}
			job := rehydrate(rec.Job, *rec.Spec, rec.Key, rec.Time)
			job.nowFn = s.cfg.Clock
			job.tenant = s.cfg.Tenants.Canonical(rec.Tenant)
			jobs[rec.Job] = job
			order = append(order, job)
		case recBatch:
			// One frame admits the whole batch; the CRC framing already
			// guaranteed we either see all of these entries or none.
			for _, be := range rec.Batch {
				if be.Spec == nil || be.Job == "" || jobs[be.Job] != nil {
					continue
				}
				job := rehydrate(be.Job, *be.Spec, "", rec.Time)
				job.nowFn = s.cfg.Clock
				job.tenant = s.cfg.Tenants.Canonical(rec.Tenant)
				jobs[be.Job] = job
				order = append(order, job)
			}
		case recStart, recRetry:
			if job := jobs[rec.Job]; job != nil {
				job.attempt = rec.Attempt
				starts[rec.Job] = rec.Time
			}
		case recCheckpoint:
			if job := jobs[rec.Job]; job != nil && rec.Stats != nil {
				job.addCheckpoint(rec.Cell, *rec.Stats)
			}
		case recFinish:
			if jobs[rec.Job] != nil {
				ends[rec.Job] = terminal{rec.State, rec.Error, rec.Output, rec.Time}
			}
		}
	}
	var pending []*Job
	for _, job := range order {
		end, done := ends[job.id]
		if done && now.Sub(end.finished) >= s.cfg.TTL {
			continue // expired while the daemon was down; invisible to /metrics
		}
		s.metrics.submitted.Add(1)
		tc := s.tenantCounters(job.tenant)
		tc.Admitted.Add(1)
		if done {
			tc.Done.Add(1)
			if st, ok := starts[job.id]; ok {
				job.started = st
			}
			switch end.state {
			case StateSucceeded:
				s.metrics.completed.Add(1)
			case StateFailed:
				s.metrics.failed.Add(1)
			case StateCanceled:
				s.metrics.canceled.Add(1)
			case StatePoisoned:
				s.metrics.poisoned.Add(1)
			}
			// Re-seed the Retry-After EWMA from the journaled run, so the
			// first post-boot 429 extrapolates drain time from real
			// durations instead of the floor.
			if st, ok := starts[job.id]; ok && end.finished.After(st) {
				s.metrics.ObserveLatency(end.finished.Sub(st).Seconds())
			}
			job.finish(end.state, end.output, end.errMsg, end.finished)
			s.store.Put(job)
			continue
		}
		if s.cfg.Retry.MaxAttempts > 1 && job.attempt >= s.cfg.Retry.MaxAttempts {
			// Crash-looped through its whole budget: quarantine at boot
			// instead of letting it take the pool down again.
			s.metrics.poisoned.Add(1)
			tc.Done.Add(1)
			job.finish(StatePoisoned, nil,
				fmt.Sprintf("poisoned at recovery after %d attempts", job.attempt), now)
			s.store.Put(job)
			continue
		}
		if s.cfg.Cache != nil {
			// Re-enqueued jobs re-take their flight slot so duplicate
			// submissions arriving after the reboot still collapse.
			job.digest = job.spec.Digest()
			_, job.flightLeader = s.flights.Begin(job.digest, job.id)
		}
		s.store.Put(job)
		pending = append(pending, job)
	}
	return pending
}

// snapshotRecords renders the whole store as logical journal records —
// the compaction image.
func (s *Service) snapshotRecords() []record {
	var recs []record
	for _, job := range s.store.All() {
		recs = append(recs, jobRecords(job)...)
	}
	return recs
}

// journalAppend appends rec when the journal is enabled, ignoring the
// error: Append already latched it for the readiness probe, and a job in
// flight is better finished in memory than aborted halfway. It is only for
// records whose store-visible effect is already in memory (start, retry) —
// losing such a record to a concurrent compaction loses no information,
// because the snapshot renders the state the record carries. Records that
// precede their in-memory update must go through journalApply instead.
func (s *Service) journalAppend(rec record) {
	if s.journal != nil {
		_ = s.journal.Append(rec)
	}
}

// journalApply journals rec and then runs the in-memory update it pairs
// with, holding the compaction read-lock across both. That closes the
// window the janitor's snapshot could otherwise slip into — record durably
// in the WAL, store not yet updated — where compaction would rewrite the
// log without the record and a crash would silently undo an acknowledged
// transition (a finished job re-running, a checkpoint lost). Append errors
// are ignored for the same reason as journalAppend.
func (s *Service) journalApply(rec record, apply func()) {
	s.compactMu.RLock()
	defer s.compactMu.RUnlock()
	if s.journal != nil {
		_ = s.journal.Append(rec)
	}
	apply()
}

// Metrics exposes the service counters.
func (s *Service) Metrics() *Metrics { return s.metrics }

// Observability exposes the engine/sweep telemetry recorder the service
// threads into every job (obs.Nop unless Config.Obs installed one). The
// HTTP layer type-asserts it to io.WriterTo to merge the engine families
// into /metrics.
func (s *Service) Observability() obs.Recorder { return s.cfg.Obs }

// QueueDepth returns the number of jobs waiting for a worker, summed
// across every tenant's sub-queue.
func (s *Service) QueueDepth() int { return s.queue.Len() }

// TenantDepth returns one tenant's queued-job count (canonical name; ""
// for the default tenant).
func (s *Service) TenantDepth(tenant string) int {
	return s.queue.Depth(s.cfg.Tenants.Canonical(tenant))
}

// TenantMetrics exposes the per-tenant metric families; the HTTP layer
// appends them to /metrics.
func (s *Service) TenantMetrics() *obs.TenantSet { return s.tset }

// Tenants exposes the tenant registry (never nil after construction), so
// HTTP layers can resolve request credentials to canonical tenant names.
func (s *Service) Tenants() *fair.Registry { return s.cfg.Tenants }

// ResolveTenant maps request credentials (Authorization, X-Mobic-Tenant)
// to the canonical tenant name SubmitOpts.Tenant expects.
func (s *Service) ResolveTenant(authorization, tenantHeader string) string {
	return s.cfg.Tenants.Resolve(authorization, tenantHeader)
}

// tenantCounters returns the per-tenant counters for a canonical tenant
// name, keeping the weight gauge in sync with the registry policy.
func (s *Service) tenantCounters(tenant string) *obs.TenantCounters {
	tc := s.tset.Tenant(fair.Display(tenant))
	tc.SetWeight(s.cfg.Tenants.Lookup(tenant).Weight)
	return tc
}

// QueueCapacity returns the queue bound.
func (s *Service) QueueCapacity() int { return s.cfg.QueueCapacity }

// StoredJobs returns the number of jobs currently in the store.
func (s *Service) StoredJobs() int { return s.store.Len() }

// RecoveredJobs returns how many interrupted jobs Open re-enqueued.
func (s *Service) RecoveredJobs() int { return s.recovered }

// Ready reports whether the service should receive traffic: false while
// draining and false when the journal cannot persist records. The reason
// string is human-readable for the /readyz body.
func (s *Service) Ready() (bool, string) {
	if s.Draining() {
		return false, "draining"
	}
	if s.journal != nil {
		if err := s.journal.Err(); err != nil {
			return false, err.Error()
		}
	}
	return true, ""
}

// RetryAfterHint estimates, in whole seconds, how long a shed client
// should wait before resubmitting: the queue's expected drain time from
// the EWMA of recent job durations, floored at 1 s and capped at 30 s.
func (s *Service) RetryAfterHint() int {
	return retryAfterSeconds(s.QueueDepth(), s.cfg.Workers, s.metrics.LatencyEWMA())
}

// RetryAfterSeconds is the pure computation behind RetryAfterHint,
// exported so the coordinator can produce the same hint shape from its
// cluster-wide view (tracked in-flight jobs over healthy workers).
func RetryAfterSeconds(depth, workers int, ewmaSeconds float64) int {
	return retryAfterSeconds(depth, workers, ewmaSeconds)
}

// retryAfterSeconds is the unexported original; kept so internal callers
// and tests are undisturbed.
func retryAfterSeconds(depth, workers int, ewmaSeconds float64) int {
	if workers < 1 {
		workers = 1
	}
	if ewmaSeconds <= 0 {
		// No completed job yet: nothing to extrapolate from, suggest the
		// minimum.
		return 1
	}
	wait := ewmaSeconds * float64(depth+1) / float64(workers)
	secs := int(math.Ceil(wait))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// Start launches the worker pool and the TTL janitor.
func (s *Service) Start() {
	done := make([]chan struct{}, s.cfg.Workers)
	for i := range done {
		ch := make(chan struct{})
		done[i] = ch
		go func() {
			defer close(ch)
			for {
				// Pop applies priority, WFQ order and per-tenant running
				// caps; it blocks until the queue closes and drains.
				job, tenant, ok := s.queue.Pop()
				if !ok {
					return
				}
				tc := s.tenantCounters(tenant)
				tc.Queued.Add(-1)
				tc.Running.Add(1)
				s.runJob(job)
				tc.Running.Add(-1)
				s.queue.Release(tenant)
				// A non-terminal outcome means a retry was scheduled; the
				// job re-enters Queued when the backoff requeues it.
				if st, _, _ := job.Snapshot(); st.State.Terminal() {
					tc.Done.Add(1)
				}
			}
		}()
	}
	go func() {
		defer close(s.workersWG)
		for _, ch := range done {
			<-ch
		}
	}()
	go func() {
		defer close(s.janitorWG)
		ticker := time.NewTicker(s.cfg.EvictEvery)
		defer ticker.Stop()
		for {
			select {
			case <-s.baseCtx.Done():
				return
			case <-ticker.C:
				s.store.EvictExpired(s.cfg.Clock())
				s.replicas.Prune(s.cfg.TTL, s.cfg.Clock())
				// Compact past the size bound — or to heal a wedged journal:
				// after an append failure the WAL may end mid-frame, and only
				// a rewrite from live state makes it appendable (and the
				// daemon ready) again.
				if s.journal != nil && (s.journal.Size() > s.cfg.CompactBytes || s.journal.Err() != nil) {
					// The write side of compactMu excludes every in-flight
					// append+update pair, so the snapshot and the WAL swap
					// are atomic with respect to SubmitKey/journalApply: no
					// record fsync'd before the swap can be missing from
					// the snapshot that replaces it.
					s.compactMu.Lock()
					_ = s.journal.Compact(s.snapshotRecords())
					s.compactMu.Unlock()
				}
			}
		}
	}()
}

// Submit validates the spec and enqueues a job. It never blocks: a full
// queue fails fast with ErrQueueFull so the HTTP layer can shed load.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	job, _, err := s.SubmitKey(spec, "")
	return job, err
}

// SubmitKey is Submit with an optional idempotency key: when key is
// non-empty and a job with the same key is already stored (any state), that
// job is returned with existed=true instead of double-submitting. Keys are
// journaled with the submission, so replay protection survives a restart;
// they are released when the job's TTL evicts it.
func (s *Service) SubmitKey(spec JobSpec, key string) (job *Job, existed bool, err error) {
	return s.SubmitWith(spec, SubmitOpts{Key: key})
}

// SubmitOpts carries the optional submission parameters.
type SubmitOpts struct {
	// Key is the idempotency key ("" for none).
	Key string
	// Replica is the base URL of the peer this job's checkpoint records
	// should be streamed to as they are journaled ("" for none). Only
	// honored with Config.Replicate; a coordinator sets it to the job's
	// ring successor via the X-Mobic-Replica header.
	Replica string
	// Tenant is the canonical tenant name the submission is admitted
	// under, as returned by ResolveTenant ("" = default tenant). Unknown
	// names fold per the registry's dynamic policy.
	Tenant string
}

// SubmitWith is SubmitKey with the full option set.
func (s *Service) SubmitWith(spec JobSpec, opts SubmitOpts) (job *Job, existed bool, err error) {
	key := opts.Key
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	tenant := s.cfg.Tenants.Canonical(opts.Tenant)

	// The semaphore serializes the closed-check with the enqueue so no
	// job can slip into the queue after Shutdown closed it; it also makes
	// idempotency lookups race-free against concurrent retries of the
	// same key, and serializes the Admit/Enqueue admission pair.
	s.submitMu <- struct{}{}
	defer func() { <-s.submitMu }()
	if s.closed {
		return nil, false, ErrShuttingDown
	}
	if key != "" {
		if prev, ok := s.store.ByKey(key); ok {
			return prev, true, nil
		}
	}
	var digest string
	if s.cfg.Cache != nil {
		digest = spec.Digest()
		// Finished result already cached: serve it as an instantly
		// terminal job, no queue slot and no simulation. Cache hits skip
		// admission on purpose — they consume no queue slot or worker.
		if job, ok := s.completeFromCache(spec, key, digest, tenant); ok {
			return job, false, nil
		}
		// Identical submission already in flight: attach to the leader.
		if leaderID, ok := s.flights.Leader(digest); ok {
			if prev, ok := s.store.Get(leaderID); ok {
				return prev, true, nil
			}
		}
	}
	if err := s.admit(tenant, 1); err != nil {
		return nil, false, err
	}
	job = newJob(spec, key, s.cfg.Clock())
	job.nowFn = s.cfg.Clock
	job.tenant = tenant
	if s.repl != nil {
		job.replica = opts.Replica
	}
	if digest != "" {
		job.digest = digest
		_, job.flightLeader = s.flights.Begin(digest, job.ID())
	}
	// Append and Put under the compaction read-lock: once the submit
	// record is durable the store must reflect the job before any
	// compaction snapshot runs, or the janitor would rewrite the WAL
	// without it and a crash would lose an acknowledged job.
	s.compactMu.RLock()
	if s.journal != nil {
		// WAL contract: durable before acknowledged.
		if err := s.journal.Append(record{Type: recSubmit, Job: job.ID(), Time: job.created, Spec: &spec, Key: key, Tenant: tenant}); err != nil {
			s.compactMu.RUnlock()
			return nil, false, err
		}
	}
	s.store.Put(job)
	s.compactMu.RUnlock()
	s.enqueue(job)
	if s.repl != nil {
		s.repl.begin(job)
	}
	return job, false, nil
}

// enqueue places an admitted job on its tenant's sub-queue and bumps the
// submission counters. Callers must hold submitMu (or be pre-Start
// recovery code).
func (s *Service) enqueue(job *Job) {
	s.queue.Enqueue(job.tenant, job)
	s.metrics.submitted.Add(1)
	tc := s.tenantCounters(job.tenant)
	tc.Admitted.Add(1)
	tc.Queued.Add(1)
}

// completeFromCache serves one submission from the result cache: a job is
// created and immediately finished with the cached output, journaled like
// any other completed job so it stays queryable across a restart. Callers
// must hold submitMu. Returns false on a cache miss (or an undecodable
// entry, which degrades to a miss).
func (s *Service) completeFromCache(spec JobSpec, key, digest, tenant string) (*Job, bool) {
	data, ok := s.cfg.Cache.Get(digest)
	if !ok {
		return nil, false
	}
	var out Output
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, false
	}
	now := s.cfg.Clock()
	job := newJob(spec, key, now)
	job.nowFn = s.cfg.Clock
	job.digest = digest
	job.tenant = tenant
	s.compactMu.RLock()
	if s.journal != nil {
		if err := s.journal.Append(record{Type: recSubmit, Job: job.ID(), Time: now, Spec: &spec, Key: key, Tenant: tenant}); err != nil {
			// The journal is wedged; fall through to the normal submit
			// path, which surfaces the error to the caller.
			s.compactMu.RUnlock()
			return nil, false
		}
		_ = s.journal.Append(record{Type: recFinish, Job: job.ID(), Time: now, State: StateSucceeded, Output: &out})
	}
	job.finish(StateSucceeded, &out, "", now)
	s.store.Put(job)
	s.compactMu.RUnlock()
	s.metrics.submitted.Add(1)
	s.metrics.completed.Add(1)
	// A cache hit consumes no queue slot or worker, so it bypasses the
	// admission gate; it still counts toward the tenant's admitted/done
	// tallies so the fairness-share observables stay truthful.
	tc := s.tenantCounters(tenant)
	tc.Admitted.Add(1)
	tc.Done.Add(1)
	return job, true
}

// settle closes out a job's content-addressed bookkeeping at its terminal
// transition: a successful output is published to the result cache under
// the job's digest, and the in-flight leadership (if this job held it) is
// released so later identical submissions consult the cache instead of
// attaching. No-op outside cache mode.
func (s *Service) settle(job *Job, out *Output) {
	if job.digest == "" {
		return
	}
	if out != nil && s.cfg.Cache != nil {
		if data, err := json.Marshal(out); err == nil {
			s.cfg.Cache.Put(job.digest, data)
		}
	}
	if job.flightLeader {
		s.flights.End(job.digest)
	}
}

// Restore enqueues a job under a caller-chosen ID with a pre-seeded
// checkpoint prefix: the coordinator's failover entry point. The job
// resumes at cell len(cps) exactly as a local crash recovery would, so its
// output — and its per-cell trace digests — are identical to an
// uninterrupted run (resume-equals-rerun, proven in the recovery tests).
// If a job with the same ID (or idempotency key) already exists, that job
// is returned with existed=true, which makes failover re-dispatch
// idempotent. Backpressure matches Submit: a full queue sheds with
// ErrQueueFull.
func (s *Service) Restore(id string, spec JobSpec, key string, cps []experiment.CellStats) (job *Job, existed bool, err error) {
	return s.RestoreWith(id, spec, SubmitOpts{Key: key}, cps)
}

// RestoreWith is Restore with the full option set. Before enqueueing it
// consults the local replica store: when a ring predecessor streamed this
// job's checkpoints here and that replica holds a longer contiguous prefix
// than the shipped one (the coordinator's last poll may be stale — or
// empty, if chaos interrupted the poller), the job resumes from the replica
// instead. That is the payoff of proactive replication: progress journaled
// after the coordinator's last observation survives the owner's death.
func (s *Service) RestoreWith(id string, spec JobSpec, opts SubmitOpts, cps []experiment.CellStats) (job *Job, existed bool, err error) {
	key := opts.Key
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	if id == "" || len(id) > 64 {
		return nil, false, invalidf("restore id %q must be 1-64 characters", id)
	}
	if spec.Sweep != nil {
		if rspec, _, rcps, ok := s.replicas.Lookup(id); ok && len(rcps) > len(cps) && rspec.Digest() == spec.Digest() {
			cps = rcps
			s.cfg.Obs.Add(obs.ReplRestores, 1)
		}
	}
	if len(cps) > 0 {
		if spec.Sweep == nil {
			return nil, false, invalidf("checkpoints only apply to sweep jobs")
		}
		cells := len(spec.Sweep.Algorithms) * max(1, len(spec.Sweep.TxRanges))
		if len(cps) > cells {
			return nil, false, invalidf("%d checkpoints exceed the sweep's %d cells", len(cps), cells)
		}
	}

	s.submitMu <- struct{}{}
	defer func() { <-s.submitMu }()
	if s.closed {
		return nil, false, ErrShuttingDown
	}
	if prev, ok := s.store.Get(id); ok {
		return prev, true, nil
	}
	if key != "" {
		if prev, ok := s.store.ByKey(key); ok {
			return prev, true, nil
		}
	}
	tenant := s.cfg.Tenants.Canonical(opts.Tenant)
	if err := s.admit(tenant, 1); err != nil {
		return nil, false, err
	}
	now := s.cfg.Clock()
	job = rehydrate(id, spec, key, now)
	job.nowFn = s.cfg.Clock
	job.tenant = tenant
	if s.repl != nil {
		job.replica = opts.Replica
	}
	for i, cs := range cps {
		job.addCheckpoint(i, cs)
	}
	if s.cfg.Cache != nil {
		job.digest = spec.Digest()
		_, job.flightLeader = s.flights.Begin(job.digest, id)
	}
	s.compactMu.RLock()
	if s.journal != nil {
		if err := s.journal.Append(record{Type: recSubmit, Job: id, Time: now, Spec: &spec, Key: key, Tenant: tenant}); err != nil {
			s.compactMu.RUnlock()
			return nil, false, err
		}
		for i := range cps {
			cs := cps[i]
			_ = s.journal.Append(record{Type: recCheckpoint, Job: id, Time: now, Cell: i, Stats: &cs})
		}
	}
	s.store.Put(job)
	s.compactMu.RUnlock()
	s.enqueue(job)
	if s.repl != nil {
		s.repl.begin(job)
	}
	return job, false, nil
}

// Replicas exposes the checkpoint-replica store (the receiving side of
// proactive WAL replication); the HTTP layer serves it at /v1/replica/{id}.
func (s *Service) Replicas() *ReplicaStore { return s.replicas }

// Get looks a job up by ID.
func (s *Service) Get(id string) (*Job, bool) { return s.store.Get(id) }

// Cancel requests cancellation of a job by ID. A running job's context is
// canceled (its sweep aborts at the next scheduler chunk); a queued job is
// finished as canceled when a worker pops it.
func (s *Service) Cancel(id string) (*Job, bool) {
	job, ok := s.store.Get(id)
	if !ok {
		return nil, false
	}
	job.RequestCancel()
	return job, true
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Shutdown drains gracefully: no new submissions, queued and in-flight
// jobs run to completion (pending backoff retries are abandoned — in
// durable mode the journal re-runs them on the next boot). If ctx expires
// first, every remaining job is canceled and Shutdown returns ctx.Err()
// once workers exit.
func (s *Service) Shutdown(ctx context.Context) error {
	s.submitMu <- struct{}{}
	if !s.closed {
		s.closed = true
		s.queue.Close()
		close(s.draining)
	}
	<-s.submitMu

	finish := func() {
		s.baseCancel() // stop the janitor and wake pending retry timers
		s.waitRetries()
		<-s.janitorWG
		if s.repl != nil {
			s.repl.close()
		}
		if s.journal != nil {
			_ = s.journal.Close()
		}
	}
	select {
	case <-s.workersWG:
		finish()
		return nil
	case <-ctx.Done():
		// Drain deadline hit: abort in-flight jobs and the janitor.
		s.baseCancel()
		<-s.workersWG
		finish()
		return ctx.Err()
	}
}

// addRetry / doneRetry / waitRetries track in-flight retry goroutines with
// a channel-based counter (the codebase avoids sync.WaitGroup re-use
// pitfalls around Shutdown's two paths).
func (s *Service) addRetry()  { n := <-s.retryN; s.retryN <- n + 1 }
func (s *Service) doneRetry() { n := <-s.retryN; s.retryN <- n - 1 }
func (s *Service) waitRetries() {
	for {
		n := <-s.retryN
		s.retryN <- n
		if n == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// safeExecute invokes the executor with panic isolation: a panicking job
// surfaces as ErrJobPanicked (value and stack preserved) on its own job
// instead of killing the daemon and every other in-flight job with it.
func (s *Service) safeExecute(ctx context.Context, spec JobSpec, runner experiment.Runner, progress func(done, total int)) (out *Output, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = fmt.Errorf("%w: %v\n%s", ErrJobPanicked, r, debug.Stack())
		}
	}()
	return s.cfg.Execute(ctx, spec, runner, progress)
}

// runJob executes one popped job end to end and classifies the outcome.
func (s *Service) runJob(job *Job) {
	now := s.cfg.Clock()
	if s.repl != nil {
		// A terminal job needs no replica: the successor would serve the
		// result, not resume it. Retried jobs stay registered.
		defer func() {
			if st, _, _ := job.Snapshot(); st.State.Terminal() {
				s.repl.finish(job.ID())
			}
		}()
	}

	jobCtx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if t := job.spec.TimeoutSeconds; t > 0 {
		jobCtx, cancel = context.WithTimeout(jobCtx, time.Duration(t*float64(time.Second)))
		defer cancel()
	}

	if !job.setRunning(cancel, now) {
		// Canceled while queued: never ran.
		s.metrics.canceled.Add(1)
		s.journalApply(record{Type: recFinish, Job: job.ID(), Time: now, State: StateCanceled, Error: context.Canceled.Error()}, func() {
			job.finish(StateCanceled, nil, context.Canceled.Error(), now)
		})
		s.settle(job, nil)
		return
	}
	attempt := job.beginAttempt()
	s.journalAppend(record{Type: recStart, Job: job.ID(), Time: now, Attempt: attempt})

	runner := s.cfg.Runner
	if job.spec.Sweep != nil {
		// Checkpoint/resume only applies to sweep jobs: they make exactly
		// one RunCells call, so the journaled contiguous cell prefix maps
		// 1:1 onto a StartCell offset. Named experiments re-run whole.
		if cps := job.checkpointed(); len(cps) > 0 {
			runner.StartCell = len(cps)
			runner.Resume = cps
		}
		runner.Checkpoint = func(cell int, cs experiment.CellStats) {
			rec := record{Type: recCheckpoint, Job: job.ID(), Time: s.cfg.Clock(), Cell: cell, Stats: &cs}
			s.journalApply(rec, func() {
				job.addCheckpoint(cell, cs)
			})
			if s.repl != nil {
				// Replication rides the same record the WAL just fsync'd, so
				// the replica can never run ahead of local durability.
				s.repl.checkpoint(job.ID(), rec)
			}
		}
	}

	s.metrics.inFlight.Add(1)
	out, err := s.safeExecute(jobCtx, job.spec, runner, job.setProgress)
	s.metrics.inFlight.Add(-1)

	end := s.cfg.Clock()
	s.metrics.ObserveLatency(end.Sub(now).Seconds())
	if s.cfg.Obs.Enabled() {
		s.cfg.Obs.Span(obs.SpanJob, now.UnixNano(), end.UnixNano())
	}
	switch {
	case err == nil:
		s.metrics.completed.Add(1)
		s.journalApply(record{Type: recFinish, Job: job.ID(), Time: end, State: StateSucceeded, Output: out}, func() {
			job.finish(StateSucceeded, out, "", end)
		})
		s.settle(job, out)
	case errors.Is(err, context.Canceled):
		s.metrics.canceled.Add(1)
		if job.CancelRequested() {
			s.journalApply(record{Type: recFinish, Job: job.ID(), Time: end, State: StateCanceled, Error: err.Error()}, func() {
				job.finish(StateCanceled, nil, err.Error(), end)
			})
			s.settle(job, nil)
			return
		}
		// A shutdown abort (baseCtx canceled without a user request) is
		// deliberately NOT journaled as terminal: the WAL still shows the
		// job mid-flight, so the next boot re-enqueues and resumes it.
		job.finish(StateCanceled, nil, err.Error(), end)
		s.settle(job, nil)
	case errors.Is(err, context.DeadlineExceeded):
		// The job consumed its own wall-clock budget; retrying would just
		// burn it again.
		s.metrics.failed.Add(1)
		s.journalApply(record{Type: recFinish, Job: job.ID(), Time: end, State: StateFailed, Error: err.Error()}, func() {
			job.finish(StateFailed, nil, err.Error(), end)
		})
		s.settle(job, nil)
	default:
		s.failAttempt(job, attempt, err, end)
	}
}

// failAttempt classifies a failed execution: re-queue with backoff while
// attempts remain, quarantine as poisoned once they are exhausted (retries
// enabled), plain failure otherwise.
func (s *Service) failAttempt(job *Job, attempt int, cause error, now time.Time) {
	maxAttempts := s.cfg.Retry.MaxAttempts
	if attempt < maxAttempts && !s.Draining() {
		s.journalAppend(record{Type: recRetry, Job: job.ID(), Time: now, Attempt: attempt, Error: cause.Error()})
		if job.setRetrying(cause.Error()) {
			s.metrics.retried.Add(1)
			s.scheduleRetry(job, attempt, cause)
			return
		}
		// Canceled between the failure and the retry decision.
		s.metrics.canceled.Add(1)
		s.journalApply(record{Type: recFinish, Job: job.ID(), Time: now, State: StateCanceled, Error: context.Canceled.Error()}, func() {
			job.finish(StateCanceled, nil, context.Canceled.Error(), now)
		})
		s.settle(job, nil)
		return
	}
	if maxAttempts > 1 && attempt >= maxAttempts {
		s.metrics.poisoned.Add(1)
		msg := fmt.Sprintf("poisoned after %d attempts: %v", attempt, cause)
		s.journalApply(record{Type: recFinish, Job: job.ID(), Time: now, State: StatePoisoned, Error: msg}, func() {
			job.finish(StatePoisoned, nil, msg, now)
		})
		s.settle(job, nil)
		return
	}
	s.metrics.failed.Add(1)
	s.journalApply(record{Type: recFinish, Job: job.ID(), Time: now, State: StateFailed, Error: cause.Error()}, func() {
		job.finish(StateFailed, nil, cause.Error(), now)
	})
	s.settle(job, nil)
}

// scheduleRetry re-enqueues job after a capped, jittered exponential
// backoff. Shutdown abandons the wait: the in-memory job finishes
// canceled, and in durable mode the journal's retry record re-runs it on
// the next boot.
func (s *Service) scheduleRetry(job *Job, attempt int, cause error) {
	delay := s.cfg.Retry.backoff(attempt)
	s.addRetry()
	go func() {
		defer s.doneRetry()
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-s.draining:
		case <-s.baseCtx.Done():
		}
		s.submitMu <- struct{}{}
		if s.closed {
			<-s.submitMu
			s.metrics.canceled.Add(1)
			job.finish(StateCanceled, nil,
				fmt.Sprintf("retry %d abandoned by shutdown (last error: %v)", attempt+1, cause), s.cfg.Clock())
			s.settle(job, nil)
			s.tenantCounters(job.tenant).Done.Add(1)
			return
		}
		// Requeue bypasses quota and rate admission on purpose: the job
		// was admitted at submit time and shedding a retry would turn a
		// transient execution failure into a lost acknowledged job. The
		// unbounded sub-queue means this never blocks.
		s.queue.Requeue(job.tenant, job)
		s.tenantCounters(job.tenant).Queued.Add(1)
		<-s.submitMu
	}()
}
