package service

import (
	"context"
	"errors"
	"runtime"
	"time"

	"mobic/internal/experiment"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is returned by Submit when the bounded queue cannot
	// accept another job; callers should retry after backing off (429).
	ErrQueueFull = errors.New("service: queue full")
	// ErrShuttingDown is returned by Submit once Shutdown began (503).
	ErrShuttingDown = errors.New("service: shutting down")
)

// ExecuteFunc runs one job spec; the default is JobSpec.run on the real
// simulator. Tests and benchmarks substitute stubs.
type ExecuteFunc func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error)

// Config parameterizes a Service.
type Config struct {
	// QueueCapacity bounds the number of queued (not yet running) jobs;
	// beyond it Submit sheds load with ErrQueueFull. Default 64.
	QueueCapacity int
	// Workers is the number of jobs executed concurrently. Each job
	// parallelizes internally via Runner.Workers, so the default is a
	// deliberately small 2.
	Workers int
	// TTL is how long terminal jobs stay queryable. Default 15 min.
	TTL time.Duration
	// EvictEvery is the janitor period. Default 1 min.
	EvictEvery time.Duration
	// Runner is the base experiment runner jobs start from (its Seeds,
	// BaseSeed and Mutate act as service-wide defaults).
	Runner experiment.Runner
	// Execute overrides job execution (stub point for tests/benchmarks).
	Execute ExecuteFunc
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Runner.Workers <= 0 {
		// Split cores across concurrent jobs rather than letting every
		// job's cell pool oversubscribe the machine.
		c.Runner.Workers = max(1, runtime.GOMAXPROCS(0)/c.Workers)
	}
	if c.TTL <= 0 {
		c.TTL = 15 * time.Minute
	}
	if c.EvictEvery <= 0 {
		c.EvictEvery = time.Minute
	}
	if c.Execute == nil {
		c.Execute = func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
			return spec.run(ctx, base, progress)
		}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Service is the simulation-as-a-service backend: a bounded FIFO queue, a
// worker pool over experiment.Runner, and a TTL-evicted job store.
type Service struct {
	cfg     Config
	store   *Store
	queue   chan *Job
	metrics *Metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workersWG  chan struct{} // closed when all workers exited
	janitorWG  chan struct{} // closed when the janitor exited

	submitMu chan struct{} // 1-token semaphore guarding closed+enqueue
	closed   bool
}

// New builds a Service; call Start before submitting.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		store:      NewStore(cfg.TTL),
		queue:      make(chan *Job, cfg.QueueCapacity),
		metrics:    NewMetrics(),
		baseCtx:    ctx,
		baseCancel: cancel,
		workersWG:  make(chan struct{}),
		janitorWG:  make(chan struct{}),
		submitMu:   make(chan struct{}, 1),
	}
	return s
}

// Metrics exposes the service counters.
func (s *Service) Metrics() *Metrics { return s.metrics }

// QueueDepth returns the number of jobs waiting for a worker.
func (s *Service) QueueDepth() int { return len(s.queue) }

// QueueCapacity returns the queue bound.
func (s *Service) QueueCapacity() int { return s.cfg.QueueCapacity }

// StoredJobs returns the number of jobs currently in the store.
func (s *Service) StoredJobs() int { return s.store.Len() }

// Start launches the worker pool and the TTL janitor.
func (s *Service) Start() {
	done := make([]chan struct{}, s.cfg.Workers)
	for i := range done {
		ch := make(chan struct{})
		done[i] = ch
		go func() {
			defer close(ch)
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	go func() {
		defer close(s.workersWG)
		for _, ch := range done {
			<-ch
		}
	}()
	go func() {
		defer close(s.janitorWG)
		ticker := time.NewTicker(s.cfg.EvictEvery)
		defer ticker.Stop()
		for {
			select {
			case <-s.baseCtx.Done():
				return
			case <-ticker.C:
				s.store.EvictExpired(s.cfg.Clock())
			}
		}
	}()
}

// Submit validates the spec and enqueues a job. It never blocks: a full
// queue fails fast with ErrQueueFull so the HTTP layer can shed load.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	job := newJob(spec, s.cfg.Clock())

	// The semaphore serializes the closed-check with the enqueue so no
	// job can slip into the queue after Shutdown closed it.
	s.submitMu <- struct{}{}
	defer func() { <-s.submitMu }()
	if s.closed {
		return nil, ErrShuttingDown
	}
	s.store.Put(job)
	select {
	case s.queue <- job:
		s.metrics.submitted.Add(1)
		return job, nil
	default:
		s.store.Delete(job.ID())
		s.metrics.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Get looks a job up by ID.
func (s *Service) Get(id string) (*Job, bool) { return s.store.Get(id) }

// Cancel requests cancellation of a job by ID. A running job's context is
// canceled (its sweep aborts at the next scheduler chunk); a queued job is
// finished as canceled when a worker pops it.
func (s *Service) Cancel(id string) (*Job, bool) {
	job, ok := s.store.Get(id)
	if !ok {
		return nil, false
	}
	job.RequestCancel()
	return job, true
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool {
	s.submitMu <- struct{}{}
	defer func() { <-s.submitMu }()
	return s.closed
}

// Shutdown drains gracefully: no new submissions, queued and in-flight
// jobs run to completion. If ctx expires first, every remaining job is
// canceled and Shutdown returns ctx.Err() once workers exit.
func (s *Service) Shutdown(ctx context.Context) error {
	s.submitMu <- struct{}{}
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	<-s.submitMu

	select {
	case <-s.workersWG:
		s.baseCancel() // stop the janitor
		<-s.janitorWG
		return nil
	case <-ctx.Done():
		// Drain deadline hit: abort in-flight jobs and the janitor.
		s.baseCancel()
		<-s.workersWG
		<-s.janitorWG
		return ctx.Err()
	}
}

// runJob executes one popped job end to end and classifies the outcome.
func (s *Service) runJob(job *Job) {
	now := s.cfg.Clock()

	jobCtx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if t := job.spec.TimeoutSeconds; t > 0 {
		jobCtx, cancel = context.WithTimeout(jobCtx, time.Duration(t*float64(time.Second)))
		defer cancel()
	}

	if !job.setRunning(cancel, now) {
		// Canceled while queued: never ran.
		s.metrics.canceled.Add(1)
		job.finish(StateCanceled, nil, context.Canceled.Error(), now)
		return
	}

	s.metrics.inFlight.Add(1)
	out, err := s.cfg.Execute(jobCtx, job.spec, s.cfg.Runner, job.setProgress)
	s.metrics.inFlight.Add(-1)

	end := s.cfg.Clock()
	s.metrics.ObserveLatency(end.Sub(now).Seconds())
	switch {
	case err == nil:
		s.metrics.completed.Add(1)
		job.finish(StateSucceeded, out, "", end)
	case errors.Is(err, context.Canceled):
		s.metrics.canceled.Add(1)
		job.finish(StateCanceled, nil, err.Error(), end)
	default:
		// Timeouts (context.DeadlineExceeded) and simulation errors both
		// count as failures; the reason is preserved verbatim.
		s.metrics.failed.Add(1)
		job.finish(StateFailed, nil, err.Error(), end)
	}
}
