package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"mobic/internal/experiment"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: queued -> running -> succeeded | failed | canceled |
// poisoned. A queued job canceled before a worker picks it up goes straight
// to canceled. With retries enabled (Config.Retry.MaxAttempts > 1) a failed
// attempt moves the job back to queued until its attempts are exhausted, at
// which point it is quarantined as poisoned.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
	// StatePoisoned quarantines a job that failed Retry.MaxAttempts times:
	// it is terminal and will never be re-enqueued — not even across a
	// daemon restart — so one bad spec cannot busy-loop the worker pool.
	StatePoisoned State = "poisoned"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled || s == StatePoisoned
}

// StreamEvent is one NDJSON line of GET /v1/jobs/{id}/stream:
//
//   - "status":   a state transition (queued -> running)
//   - "progress": one completed simulation cell
//   - "result":   the terminal event; Status carries the final state,
//     error (if any) and result payload. Always the last line.
type StreamEvent struct {
	Type  string  `json:"type"`
	State State   `json:"state,omitempty"`
	Done  int     `json:"done,omitempty"`
	Total int     `json:"total,omitempty"`
	Stat  *Status `json:"status,omitempty"`
}

// Job is one submitted simulation. All mutable fields are guarded by mu;
// readers take Snapshot and stream watchers replay the append-only event
// log, blocking on the notify channel, which is closed-and-replaced on
// every change (a broadcast that needs no subscriber registry). The log —
// rather than snapshot polling — guarantees no progress event is coalesced
// away, so streams see every completed cell. Its length is bounded by the
// job's cell count (seeds × sweep points) plus two transitions.
type Job struct {
	id      string
	spec    JobSpec
	idemKey string // immutable after construction
	// digest is the spec's content address, set at submit time in cache
	// mode (empty otherwise); flightLeader records whether this job holds
	// the singleflight slot for that digest. Both immutable after submit.
	digest       string
	flightLeader bool
	// replica is the base URL of the ring successor this job's checkpoint
	// records stream to (Replicate mode; "" otherwise). Immutable after
	// submit.
	replica string
	// tenant is the canonical tenant name the job was admitted under (""
	// for the default tenant). It keys the fair-queue sub-queue and the
	// per-tenant metric families, is journaled with the submission, and is
	// immutable after submit.
	tenant string

	mu       sync.Mutex
	notify   chan struct{}
	version  int
	events   []StreamEvent
	state    State
	done     int
	total    int
	attempt  int // executions started so far (journaled, survives restarts)
	errMsg   string
	output   *Output
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	wantStop bool
	// nowFn supplies wall time for the ETA estimate (overridden by the
	// service clock, so tests with fake clocks get deterministic ETAs).
	nowFn func() time.Time
	// cps is the contiguous prefix of completed-and-checkpointed sweep
	// cells; a retry or a post-crash resume restarts from len(cps).
	cps []experiment.CellStats
}

// newJob creates a queued job with a fresh random ID.
func newJob(spec JobSpec, idemKey string, now time.Time) *Job {
	return rehydrate(newJobID(), spec, idemKey, now)
}

// rehydrate builds a queued job with a known ID — the journal replay path.
// Attempt counts and checkpoints are layered on by the replayer.
func rehydrate(id string, spec JobSpec, idemKey string, created time.Time) *Job {
	return &Job{
		id:      id,
		spec:    spec,
		idemKey: idemKey,
		notify:  make(chan struct{}),
		state:   StateQueued,
		created: created,
		nowFn:   time.Now,
		events:  []StreamEvent{{Type: "status", State: StateQueued}},
	}
}

// newJobID returns 16 hex chars of crypto randomness — unguessable enough
// that knowing an ID is the only capability needed to read or cancel a job.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// ID returns the immutable job identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's immutable submission spec.
func (j *Job) Spec() JobSpec { return j.spec }

// IdempotencyKey returns the key the job was submitted under ("" if none).
func (j *Job) IdempotencyKey() string { return j.idemKey }

// Tenant returns the canonical tenant name the job was admitted under (""
// for the default tenant).
func (j *Job) Tenant() string { return j.tenant }

// changed bumps the version and wakes every watcher. Callers must hold mu.
func (j *Job) changed() {
	j.version++
	close(j.notify)
	j.notify = make(chan struct{})
}

// setRunning transitions queued -> running and installs the cancel func
// for this job's context. Returns false when the job was canceled while
// queued (the worker must then skip it).
func (j *Job) setRunning(cancel context.CancelFunc, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wantStop {
		return false
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	j.events = append(j.events, StreamEvent{Type: "status", State: StateRunning})
	j.changed()
	return true
}

// beginAttempt bumps and returns the execution-attempt counter; the worker
// calls it once per run, right after the queued -> running transition.
func (j *Job) beginAttempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempt++
	return j.attempt
}

// setRetrying moves a failed running job back to queued for another
// attempt, keeping the last error visible while it waits. Returns false if
// the job was canceled or already terminal — the caller must finish it
// instead of retrying.
func (j *Job) setRetrying(reason string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wantStop || j.state.Terminal() {
		return false
	}
	j.state = StateQueued
	j.cancel = nil
	j.errMsg = reason
	j.events = append(j.events, StreamEvent{Type: "status", State: StateQueued})
	j.changed()
	return true
}

// addCheckpoint records the next completed sweep cell. Out-of-order calls
// are ignored: checkpoints are only meaningful as a contiguous prefix.
func (j *Job) addCheckpoint(cell int, cs experiment.CellStats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cell == len(j.cps) {
		j.cps = append(j.cps, cs)
	}
}

// checkpointed returns a copy of the contiguous completed-cell prefix.
func (j *Job) checkpointed() []experiment.CellStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.cps) == 0 {
		return nil
	}
	out := make([]experiment.CellStats, len(j.cps))
	copy(out, j.cps)
	return out
}

// CancelRequested reports whether a caller asked this job to stop — what
// distinguishes a user cancellation from a shutdown abort.
func (j *Job) CancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wantStop
}

// setProgress records cell completion; safe to call from runner workers.
func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done, j.total = done, total
	j.events = append(j.events, StreamEvent{Type: "progress", State: j.state, Done: done, Total: total})
	j.changed()
}

// finish transitions to a terminal state. It is a no-op if the job already
// finished.
func (j *Job) finish(state State, out *Output, errMsg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.output = out
	j.errMsg = errMsg
	j.finished = now
	j.cancel = nil
	st := j.statusLocked()
	j.events = append(j.events, StreamEvent{Type: "result", State: state, Stat: &st})
	j.changed()
}

// EventsSince returns the stream events from index i on, plus the channel
// closed on the next change. Stream handlers replay events in order and
// block on the channel between batches.
func (j *Job) EventsSince(i int) ([]StreamEvent, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i > len(j.events) {
		i = len(j.events)
	}
	// The events slice is append-only, so sharing the backing array with
	// readers is safe.
	return j.events[i:], j.notify
}

// RequestCancel marks the job for cancellation. A running job's context is
// canceled immediately; a queued job is finished as canceled by the worker
// that eventually pops it (or here if it never started). It returns true
// if the request had any effect.
func (j *Job) RequestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.wantStop {
		return false
	}
	j.wantStop = true
	if j.cancel != nil {
		j.cancel()
	}
	j.changed()
	return true
}

// Status is the wire representation of a job, served by GET /v1/jobs/{id}
// and streamed as NDJSON lines by /stream.
type Status struct {
	ID    string  `json:"id"`
	State State   `json:"state"`
	Spec  JobSpec `json:"spec"`
	// Tenant is the tenant the job was admitted under; omitted for the
	// default tenant, so single-tenant deployments keep their exact
	// pre-multi-tenancy wire format.
	Tenant string `json:"tenant,omitempty"`
	// Done/Total count completed simulation cells (seeds × sweep points).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Progress is the job's completed fraction in [0, 1]: Done/Total while
	// cells are reporting, pinned to 1 once the job succeeded. It is
	// monotonic non-decreasing across polls of a running job.
	Progress float64 `json:"progress"`
	// ETASeconds extrapolates the remaining wall-clock seconds from the
	// cell-completion cadence of the current attempt. Present only while
	// the job is running and at least one cell has completed.
	ETASeconds float64 `json:"eta_seconds,omitempty"`
	// Attempt is the number of execution attempts started so far (0 while
	// the job has never run). It survives daemon restarts via the journal.
	Attempt int `json:"attempt,omitempty"`
	// Degraded marks a job a coordinator ran locally because the ring had
	// no live owner for its digest. The service itself never sets it; the
	// dispatch layer decorates statuses of its local-fallback jobs.
	Degraded bool `json:"degraded,omitempty"`
	// Error is the failure reason (context.Canceled for canceled jobs,
	// context.DeadlineExceeded for timeouts).
	Error      string     `json:"error,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Result and Cells are present once the job succeeded.
	Output
}

// Snapshot returns a consistent copy of the job plus its change version and
// the channel that will be closed on the next change. Watch loops write the
// snapshot, then block on the channel (or their own context).
func (j *Job) Snapshot() (Status, int, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(), j.version, j.notify
}

// statusLocked builds the wire status; callers must hold mu.
func (j *Job) statusLocked() Status {
	st := Status{
		ID:        j.id,
		State:     j.state,
		Spec:      j.spec,
		Tenant:    j.tenant,
		Done:      j.done,
		Total:     j.total,
		Attempt:   j.attempt,
		Error:     j.errMsg,
		CreatedAt: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.output != nil {
		st.Output = *j.output
	}
	switch {
	case j.state == StateSucceeded:
		st.Progress = 1
	case j.total > 0:
		st.Progress = float64(j.done) / float64(j.total)
	}
	// ETA from the cell-completion cadence: with done cells in (now -
	// started) seconds, the remaining total-done extrapolate linearly.
	if j.state == StateRunning && j.done > 0 && j.total > j.done && !j.started.IsZero() {
		if elapsed := j.nowFn().Sub(j.started).Seconds(); elapsed > 0 {
			st.ETASeconds = elapsed * float64(j.total-j.done) / float64(j.done)
		}
	}
	return st
}
