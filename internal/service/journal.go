package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mobic/internal/experiment"
)

// The write-ahead journal makes mobicd jobs durable: every lifecycle
// transition is appended — and fsync'd — before it becomes visible, so a
// crashed or killed daemon recovers its queue on the next boot and resumes
// interrupted sweeps from their last completed-cell checkpoint.
//
// On-disk format: a magic header line followed by length-prefixed,
// CRC32-framed records. Each frame is
//
//	uint32(len(payload)) | uint32(crc32-IEEE(payload)) | payload
//
// with little-endian integers and a JSON-encoded record payload. A torn
// tail — a partial frame, an impossible length, a CRC or JSON mismatch —
// marks the end of the valid prefix; openJournal truncates it away and the
// daemon carries on from the last intact record, which is exactly the
// contract an append-only log can honor after power loss.
//
// Compaction bounds growth: the logical records of the jobs still in the
// store are rewritten to a temp file which atomically replaces the WAL.
// It runs at boot (dropping expired and torn garbage) and from the janitor
// once the file exceeds Config.CompactBytes.

// journalMagic heads every WAL file; bump the digit on any format change.
var journalMagic = []byte("MOBICWAL1\n")

// WALFile is the file surface the journal writes through — the slice of
// *os.File it actually uses. Config.WrapWAL intercepts it, which is how the
// chaos harness injects torn writes and fsync failures without the service
// importing the injector.
type WALFile interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// maxRecordBytes bounds a single record; longer length prefixes are treated
// as corruption. Outputs of the largest admissible sweep stay far below it.
const maxRecordBytes = 64 << 20

// Journal record types.
const (
	recSubmit     = "submit"     // job accepted: spec, idempotency key
	recStart      = "start"      // an execution attempt began
	recCheckpoint = "checkpoint" // one sweep cell completed
	recRetry      = "retry"      // an attempt failed; job re-queued
	recFinish     = "finish"     // terminal transition (output for success)
	// recBatch admits a whole POST /v1/jobs:batch submission in one frame.
	// The frame is the atomicity unit of the WAL (length + CRC), so replay
	// admits either every job of the batch or none of them — a crash
	// between the ack and the next record can never leave half a batch
	// durable.
	recBatch = "batch"
)

// batchEntry is one job of a recBatch record.
type batchEntry struct {
	Job  string   `json:"job"`
	Spec *JobSpec `json:"spec"`
}

// record is one journal entry. A single struct covers every type; unused
// fields stay at their zero value and are omitted from the JSON payload.
type record struct {
	Type string    `json:"type"`
	Job  string    `json:"job"`
	Time time.Time `json:"time"`
	// Submit fields.
	Spec *JobSpec `json:"spec,omitempty"`
	Key  string   `json:"key,omitempty"`
	// Tenant is the canonical tenant name a submit or batch record admits
	// its jobs under ("" = default tenant, omitted).
	Tenant string `json:"tenant,omitempty"`
	// Batch carries a recBatch record's jobs, admitted as a unit.
	Batch []batchEntry `json:"batch,omitempty"`
	// Attempt counts executions so far (start: this attempt's ordinal;
	// retry: the attempt that just failed).
	Attempt int `json:"attempt,omitempty"`
	// Checkpoint fields. Cell deliberately has no omitempty: cell 0 is a
	// meaningful index.
	Cell  int                   `json:"cell"`
	Stats *experiment.CellStats `json:"stats,omitempty"`
	// Terminal fields.
	State  State   `json:"state,omitempty"`
	Error  string  `json:"error,omitempty"`
	Output *Output `json:"output,omitempty"`
}

// frameBytes renders one record as a complete length+CRC frame.
func frameBytes(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode: %w", err)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf, nil
}

// encodeFrame writes one length+CRC framed record.
func encodeFrame(w io.Writer, rec record) error {
	buf, err := frameBytes(rec)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// decodeRecords parses the longest valid prefix of a journal image and
// returns its records plus the prefix length in bytes. Anything past the
// returned offset — a partial frame, a bad CRC, malformed JSON, a missing
// magic header — is a torn tail the caller should truncate. It never fails:
// corruption just ends the prefix.
func decodeRecords(data []byte) ([]record, int) {
	return decodeFrames(data, journalMagic)
}

// decodeFrames is decodeRecords parameterized over the magic header, so the
// replication wire format (MOBICREPL1) reuses the exact framing and
// torn-prefix semantics of the WAL.
func decodeFrames(data, magic []byte) ([]record, int) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return nil, 0
	}
	off := len(magic)
	var recs []record
	for {
		if len(data)-off < 8 {
			return recs, off
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordBytes || int(n) > len(data)-off-8 {
			return recs, off
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += 8 + int(n)
	}
}

// Journal is the append-only, fsync'd WAL. All methods are safe for
// concurrent use; Append holds the lock across the fsync, so the journal
// serializes the record order the replayer will observe.
//
// Failure semantics: a failed append wedges the journal — every later
// Append refuses with the original error until a successful Compact rebuilds
// the file. The failed write may have left a partial frame at the tail;
// appending a good frame after it would survive the fsync yet vanish at
// replay (torn-tail truncation stops at the garbage), silently un-acking a
// durable record. Wedging turns that silent loss into an explicit 503 via
// Err until compaction rewrites the log from live state.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       WALFile
	wrap    func(WALFile) WALFile
	size    int64
	lastErr error
}

// openJournal opens (creating if needed) dir's WAL, replays its records,
// and truncates any torn tail so the file ends on a record boundary. wrap,
// when non-nil, intercepts the live file handle (the chaos seam); the
// replay/truncate setup above runs on the raw file first, so a schedule
// only perturbs steady-state appends, not recovery itself.
func openJournal(dir string, wrap func(WALFile) WALFile) (*Journal, []record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, "journal.wal")
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	recs, valid := decodeRecords(data)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if valid == 0 {
		// Fresh file, or one whose header never made it to disk intact.
		if err := f.Truncate(0); err == nil {
			_, err = f.Write(journalMagic)
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: init: %w", err)
		}
		valid = len(journalMagic)
	} else if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	syncDir(dir)
	j := &Journal{path: path, f: f, size: int64(valid)}
	if wrap != nil {
		j.wrap = wrap
		j.f = wrap(f)
	}
	return j, recs, nil
}

// syncDir fsyncs a directory so file creations and renames inside it are
// durable. Errors are ignored: some filesystems refuse directory fsync, and
// the data fsync has already happened.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Append encodes, writes and fsyncs one record. The record is durable when
// Append returns nil. A failure wedges the journal (see the type comment):
// every later Append short-circuits with the same error — surfaced by Err,
// which flips /readyz to 503 — until a Compact rebuilds the file from live
// state and clears it.
func (j *Journal) Append(rec record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lastErr != nil {
		return j.lastErr
	}
	buf, err := frameBytes(rec)
	if err == nil {
		_, err = j.f.Write(buf)
	}
	if err == nil {
		err = j.f.Sync()
	}
	if err != nil {
		j.lastErr = fmt.Errorf("journal: append: %w", err)
		return j.lastErr
	}
	j.size += int64(len(buf))
	return nil
}

// Err returns the most recent append/compaction failure, or nil while the
// journal is healthy. A non-nil value flips /readyz to 503.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastErr
}

// Size returns the current WAL size in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// countingWriter counts the bytes that pass through to w. Compact uses it
// to know the compacted WAL's size without any post-rename syscall — the
// rename is the point of no return, so nothing after it may fail.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Compact atomically replaces the WAL with the given logical records:
// write temp file, fsync, rename over the journal, fsync the directory.
// Appends block for the duration, so no record can race the swap. Callers
// that snapshot live state must externally exclude appenders between
// taking the snapshot and calling Compact (see Service.compactMu), or a
// record appended in between is erased by the rewrite.
func (j *Journal) Compact(recs []record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, "journal-*.tmp")
	if err != nil {
		j.lastErr = fmt.Errorf("journal: compact: %w", err)
		return j.lastErr
	}
	// fail is only valid before the rename: once tmp has replaced the
	// journal it IS the live WAL and must not be closed or unlinked.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		j.lastErr = fmt.Errorf("journal: compact: %w", err)
		return j.lastErr
	}
	cw := &countingWriter{w: tmp}
	if _, err := cw.Write(journalMagic); err != nil {
		return fail(err)
	}
	for _, rec := range recs {
		if err := encodeFrame(cw, rec); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	// CreateTemp made the file 0600; without this the first compaction
	// would silently tighten the 0644 the journal was created with.
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fail(err)
	}
	syncDir(dir)
	j.f.Close()
	j.f = tmp
	if j.wrap != nil {
		j.f = j.wrap(tmp)
	}
	j.size = cw.n
	j.lastErr = nil
	return nil
}

// Close closes the underlying file. Appends after Close fail (and trip the
// readiness probe), which is the safe failure mode during teardown.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// jobRecords renders one job's current state as the logical record sequence
// replay would need to reconstruct it; compaction concatenates these across
// the store to rebuild a minimal WAL.
func jobRecords(job *Job) []record {
	job.mu.Lock()
	defer job.mu.Unlock()
	recs := []record{{
		Type:   recSubmit,
		Job:    job.id,
		Time:   job.created,
		Spec:   &job.spec,
		Key:    job.idemKey,
		Tenant: job.tenant,
	}}
	if job.attempt > 0 {
		recs = append(recs, record{Type: recRetry, Job: job.id, Time: job.created, Attempt: job.attempt})
	}
	for i := range job.cps {
		cs := job.cps[i]
		recs = append(recs, record{Type: recCheckpoint, Job: job.id, Time: job.created, Cell: i, Stats: &cs})
	}
	if job.state.Terminal() {
		recs = append(recs, record{
			Type:   recFinish,
			Job:    job.id,
			Time:   job.finished,
			State:  job.state,
			Error:  job.errMsg,
			Output: job.output,
		})
	}
	return recs
}
