package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mobic/internal/experiment"
)

// instantExecute is a stub that reports n progress steps and succeeds
// immediately.
func instantExecute(n int) ExecuteFunc {
	return func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		for i := 1; i <= n; i++ {
			progress(i, n)
		}
		return &Output{Result: &experiment.Result{ID: "stub", Title: "stub"}}, nil
	}
}

// blockingExecute blocks until release is closed or ctx is done, so tests
// can hold workers busy deterministically. started receives one value per
// execution start.
func blockingExecute(started chan<- string, release <-chan struct{}) ExecuteFunc {
	return func(ctx context.Context, spec JobSpec, base experiment.Runner, progress func(done, total int)) (*Output, error) {
		if started != nil {
			started <- spec.Experiment
		}
		select {
		case <-release:
			return &Output{Result: &experiment.Result{ID: "stub", Title: "stub"}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func specFig3() JobSpec { return JobSpec{Experiment: "fig3"} }

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, j *Job) Status {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		st, _, notify := j.Snapshot()
		if st.State.Terminal() {
			return st
		}
		select {
		case <-notify:
		case <-deadline:
			t.Fatalf("job %s stuck in state %s", st.ID, st.State)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := New(Config{Execute: instantExecute(1)})
	svc.Start()
	defer svc.Shutdown(context.Background())

	cases := []struct {
		name string
		spec JobSpec
	}{
		{"empty", JobSpec{}},
		{"both", JobSpec{Experiment: "fig3", Sweep: &SweepSpec{Algorithms: []string{"mobic"}}}},
		{"unknown experiment", JobSpec{Experiment: "fig99"}},
		{"unknown algorithm", JobSpec{Sweep: &SweepSpec{Algorithms: []string{"nope"}}}},
		{"no algorithms", JobSpec{Sweep: &SweepSpec{}}},
		{"too many seeds", JobSpec{Experiment: "fig3", Seeds: MaxSeeds + 1}},
		{"negative tx", JobSpec{Sweep: &SweepSpec{Algorithms: []string{"mobic"}, TxRanges: []float64{-5}}}},
		{"oversized n", JobSpec{Sweep: &SweepSpec{Scenario: ScenarioSpec{N: MaxNodes + 1}, Algorithms: []string{"mobic"}}}},
	}
	for _, tc := range cases {
		if _, err := svc.Submit(tc.spec); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: err = %v, want ErrInvalidSpec", tc.name, err)
		}
	}
}

func TestSubmitRunsJob(t *testing.T) {
	svc := New(Config{Execute: instantExecute(3)})
	svc.Start()
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateSucceeded {
		t.Fatalf("state = %s (%s), want succeeded", st.State, st.Error)
	}
	if st.Result == nil || st.Result.ID != "stub" {
		t.Errorf("result = %+v, want stub result", st.Result)
	}
	if st.Done != 3 || st.Total != 3 {
		t.Errorf("progress = %d/%d, want 3/3", st.Done, st.Total)
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Error("missing started/finished timestamps")
	}
}

func TestQueueFullSheds(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	svc := New(Config{
		Workers:       1,
		QueueCapacity: 1,
		Execute:       blockingExecute(started, release),
	})
	svc.Start()

	// First job occupies the only worker...
	if _, err := svc.Submit(specFig3()); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...second fills the queue...
	if _, err := svc.Submit(specFig3()); err != nil {
		t.Fatal(err)
	}
	// ...third must be shed, not block.
	if _, err := svc.Submit(specFig3()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := svc.Metrics().rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	// A shed job must not linger in the store.
	if got := svc.StoredJobs(); got != 2 {
		t.Errorf("stored jobs = %d, want 2", got)
	}

	close(release)
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan string, 1)
	svc := New(Config{Workers: 1, Execute: blockingExecute(started, nil)})
	svc.Start()

	job, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := svc.Cancel(job.ID()); !ok {
		t.Fatal("cancel: job not found")
	}
	st := waitTerminal(t, job)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if !strings.Contains(st.Error, context.Canceled.Error()) {
		t.Errorf("error = %q, want ctx.Err() surfaced", st.Error)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	svc := New(Config{Workers: 1, QueueCapacity: 4, Execute: blockingExecute(started, release)})
	svc.Start()

	if _, err := svc.Submit(specFig3()); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	queued.RequestCancel()
	close(release)
	st := waitTerminal(t, queued)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled (job must never run)", st.State)
	}
	if st.StartedAt != nil {
		t.Error("canceled-while-queued job has a start time")
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestJobTimeout(t *testing.T) {
	svc := New(Config{Workers: 1, Execute: blockingExecute(nil, nil)})
	svc.Start()

	job, err := svc.Submit(JobSpec{Experiment: "fig3", TimeoutSeconds: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, context.DeadlineExceeded.Error()) {
		t.Errorf("error = %q, want deadline exceeded surfaced", st.Error)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestTTLEviction(t *testing.T) {
	var (
		mu  sync.Mutex
		now = time.Unix(1000, 0)
	)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(d)
	}

	svc := New(Config{TTL: time.Minute, Execute: instantExecute(1), Clock: clock})
	svc.Start()
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)

	// Before the TTL the job stays queryable; after it, it is evicted.
	svc.store.EvictExpired(clock())
	if _, ok := svc.Get(job.ID()); !ok {
		t.Fatal("job evicted before TTL")
	}
	advance(2 * time.Minute)
	if n := svc.store.EvictExpired(clock()); n != 1 {
		t.Fatalf("evicted %d jobs, want 1", n)
	}
	if _, ok := svc.Get(job.ID()); ok {
		t.Error("job still queryable after TTL eviction")
	}
}

func TestShutdownDrainsQueuedJobs(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 8, Execute: instantExecute(1)})
	svc.Start()

	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, err := svc.Submit(specFig3())
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		st, _, _ := j.Snapshot()
		if st.State != StateSucceeded {
			t.Errorf("job %d: state = %s, want succeeded after drain", i, st.State)
		}
	}
	if _, err := svc.Submit(specFig3()); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after shutdown: err = %v, want ErrShuttingDown", err)
	}
}

func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	started := make(chan string, 1)
	svc := New(Config{Workers: 1, Execute: blockingExecute(started, nil)})
	svc.Start()

	job, err := svc.Submit(specFig3())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err = %v, want deadline exceeded", err)
	}
	st, _, _ := job.Snapshot()
	if st.State != StateCanceled {
		t.Errorf("in-flight job state = %s, want canceled after forced drain", st.State)
	}
}
