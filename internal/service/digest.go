package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"mobic/internal/cluster"
)

// specDigestVersion heads the hashed payload; bump it whenever the
// canonical form changes, so old cache entries can never be served for a
// semantically different spec. v2 added the Tiles field (tiled-parallel
// scheduler knob); v3 added the clustering-policy scenario fields (bi_min,
// bi_max, energy_j): every v1/v2 cache entry misses cleanly under v3 keys.
const specDigestVersion = "mobicspec3\n"

// canonicalSpec is the normalized image of a JobSpec that Digest hashes.
// It is a distinct struct — not JobSpec itself — so the wire format of
// submissions can evolve without silently invalidating (or worse,
// colliding) cache keys, and so every defaultable field is pinned to its
// materialized value. Field names are part of the digest contract; the
// golden file in testdata/spec_digests.json guards them.
type canonicalSpec struct {
	V          int     `json:"v"`
	Experiment string  `json:"experiment,omitempty"`
	Seeds      int     `json:"seeds"`
	BaseSeed   uint64  `json:"base_seed"`
	Duration   float64 `json:"duration"`
	IncludeRaw bool    `json:"include_raw"`
	Tiles      int     `json:"tiles"`

	Sweep *canonicalSweep `json:"sweep,omitempty"`
}

// canonicalSweep is the sweep half of the canonical form: the scenario is
// fully materialized over the paper's Table 1 defaults, algorithm names are
// resolved to their canonical spelling, and an empty sweep axis becomes the
// explicit single cell it stands for.
type canonicalSweep struct {
	N          int       `json:"n"`
	Side       float64   `json:"side"`
	MaxSpeed   float64   `json:"max_speed"`
	Pause      float64   `json:"pause"`
	TxRange    float64   `json:"tx_range"`
	BI         float64   `json:"bi"`
	TP         float64   `json:"tp"`
	CCI        float64   `json:"cci"`
	Duration   float64   `json:"scenario_duration"`
	Warmup     float64   `json:"warmup"`
	BIMin      float64   `json:"bi_min"`
	BIMax      float64   `json:"bi_max"`
	EnergyJ    float64   `json:"energy_j"`
	Algorithms []string  `json:"algorithms"`
	TxRanges   []float64 `json:"tx_ranges"`
}

// canonical builds the normalized image Digest hashes. Normalizations, in
// the order they matter:
//
//   - scenario fields are default-filled via scenario.Base, so a spec that
//     spells out the Table 1 defaults digests identically to one that
//     leaves them zero;
//   - algorithm names resolve through cluster.ByName to their canonical
//     Name (aliases collapse);
//   - an empty TxRanges axis becomes the explicit one-cell axis at the
//     scenario's own transmission range;
//   - BaseSeed 0 becomes the runner default 1.
//
// Tiles is hashed as-is (0 = sequential, 1 is semantically the same but
// kept distinct): the tiled scheduler is proven digest-identical to the
// sequential one by the harness equivalence suite, but the cache stays
// conservative and never relies on that proof for key identity.
//
// Two fields are deliberately treated asymmetrically: Seeds 0 is kept as
// the "service default" sentinel (its resolution lives in daemon config, so
// digest identity across a cluster assumes peers share -seeds — see
// DESIGN.md S28), and TimeoutSeconds is excluded entirely, because a
// wall-clock budget changes whether a result is produced, never which one.
func (s JobSpec) canonical() canonicalSpec {
	c := canonicalSpec{
		V:          3,
		Experiment: s.Experiment,
		Seeds:      s.Seeds,
		BaseSeed:   s.BaseSeed,
		Duration:   s.Duration,
		IncludeRaw: s.IncludeRaw,
		Tiles:      s.Tiles,
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if s.Sweep == nil {
		return c
	}
	p := s.Sweep.Scenario.params()
	cs := &canonicalSweep{
		N:        p.N,
		Side:     p.Side,
		MaxSpeed: p.MaxSpeed,
		Pause:    p.Pause,
		TxRange:  p.TxRange,
		BI:       p.BI,
		TP:       p.TP,
		CCI:      p.CCI,
		Duration: p.Duration,
		Warmup:   p.Warmup,
		BIMin:    p.BIMin,
		BIMax:    p.BIMax,
		EnergyJ:  p.EnergyJ,
	}
	cs.Algorithms = make([]string, len(s.Sweep.Algorithms))
	for i, name := range s.Sweep.Algorithms {
		if alg, err := cluster.ByName(name); err == nil {
			cs.Algorithms[i] = alg.Name
		} else {
			// Unknown names never pass Validate; hashing them raw keeps
			// Digest total for invalid specs.
			cs.Algorithms[i] = name
		}
	}
	cs.TxRanges = s.Sweep.TxRanges
	if len(cs.TxRanges) == 0 {
		cs.TxRanges = []float64{p.TxRange}
	}
	c.Sweep = cs
	return c
}

// Digest returns the canonical SHA-256 content address of the spec as 64
// hex characters. Semantically equal specs — same simulation cells, same
// output shape — digest identically regardless of how they were spelled:
// defaulted versus explicit scenario fields, an omitted versus explicit
// sweep axis, algorithm aliases, JSON field order. It is the key of the
// content-addressed result cache and the coordinator's placement key, so
// identical resubmitted sweeps collapse onto one worker and one cached
// result.
func (s JobSpec) Digest() string {
	payload, err := json.Marshal(s.canonical())
	if err != nil {
		// canonicalSpec is plain data; Marshal cannot fail on it.
		panic("service: canonical spec marshal: " + err.Error())
	}
	h := sha256.New()
	h.Write([]byte(specDigestVersion))
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}
