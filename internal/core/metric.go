// Package core implements the paper's primary contribution: the aggregate
// local mobility metric of Section 3.1.
//
// Every node Y measures the received power of two successive "hello"
// transmissions from each neighbor X and computes the pairwise relative
// mobility (equation 1):
//
//	Mrel_Y(X) = 10 * log10( RxPr_new(X->Y) / RxPr_old(X->Y) )   [dB]
//
// A negative value means X and Y are drifting apart, a positive value that
// they are closing in. The aggregate local mobility at Y (equation 2) is the
// variance about zero of the pairwise values over all current neighbors:
//
//	M_Y = var0(Mrel_Y(X1), ..., Mrel_Y(Xm)) = E[Mrel^2]
//
// A small M_Y means Y is nearly stationary relative to its neighborhood and
// is therefore a good clusterhead candidate; MOBIC (internal/cluster) elects
// the node with the lowest M in each 2-hop neighborhood.
//
// The package also implements the paper's Section 5 extension of keeping
// history: an optional EWMA smoother over successive aggregate values.
package core

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"mobic/internal/stats"
)

// ErrNonPositivePower is returned when a received power sample is zero,
// negative, NaN or infinite. Physical received powers are strictly positive.
var ErrNonPositivePower = errors.New("core: received power must be positive and finite")

// RelativeMobility returns the pairwise relative mobility metric in dB for
// two successive received powers from the same neighbor (paper equation 1).
func RelativeMobility(prOld, prNew float64) (float64, error) {
	if !(prOld > 0) || math.IsInf(prOld, 1) {
		return 0, fmt.Errorf("%w: old=%g", ErrNonPositivePower, prOld)
	}
	if !(prNew > 0) || math.IsInf(prNew, 1) {
		return 0, fmt.Errorf("%w: new=%g", ErrNonPositivePower, prNew)
	}
	return 10 * math.Log10(prNew/prOld), nil
}

// AggregateLocalMobility returns the variance-about-zero of a set of pairwise
// relative mobility samples (paper equation 2). It returns 0 for an empty
// set, matching the paper's initialization of M to 0.
func AggregateLocalMobility(pairwise []float64) float64 {
	return stats.Var0(pairwise)
}

// sample is one neighbor's reception history: the two most recent received
// powers and their timestamps. Two successive receptions are exactly what
// equation 1 needs; older history is deliberately not kept (the paper's
// "history" extension smooths the aggregate M instead, see Option WithEWMA).
type sample struct {
	prevPr, lastPr float64
	prevT, lastT   float64
	count          int // receptions recorded (saturates at 2)
	// smoothedRel is the per-neighbor EWMA of Mrel (pairwise history).
	smoothedRel float64
	smoothed    bool
}

// Option configures a Tracker.
type Option func(*Tracker)

// WithEWMA enables the Section 5 history extension: successive aggregate
// mobility values are smoothed with an exponentially weighted moving average
// of factor alpha in (0, 1]; alpha = 1 reproduces the memoryless paper
// metric.
func WithEWMA(alpha float64) Option {
	return func(t *Tracker) {
		t.smoother = stats.NewEWMA(alpha)
	}
}

// WithPairwiseEWMA enables the alternative history placement: each
// neighbor's relative-mobility samples are smoothed individually before the
// variance is taken, instead of smoothing the aggregate. This remembers
// per-link trends (a steadily approaching neighbor keeps a large |Mrel|)
// where aggregate smoothing only remembers overall turbulence.
func WithPairwiseEWMA(alpha float64) Option {
	return func(t *Tracker) {
		if alpha <= 0 || alpha > 1 {
			alpha = 1
		}
		t.pairAlpha = alpha
	}
}

// Tracker maintains, for one node, the reception history of every current
// neighbor and computes the aggregate local mobility metric on demand. It is
// the per-node state behind MOBIC.
//
// Tracker is not safe for concurrent use; the simulator is single-threaded.
type Tracker struct {
	neighbors map[int32]*sample
	smoother  *stats.EWMA
	// pairAlpha, when in (0, 1), smooths each neighbor's Mrel stream
	// before aggregation (WithPairwiseEWMA); 0 disables.
	pairAlpha float64
	// scratch avoids a per-Aggregate allocation on the simulator hot path.
	scratch []float64
	// idScratch holds the sorted neighbor ids Pairwise iterates over, so
	// the variance fold is independent of map iteration order (floating-
	// point addition is not associative; a canonical order keeps repeated
	// runs bit-identical).
	idScratch []int32
	// free recycles expired samples: under a lossy MAC, neighbors expire
	// and reappear every few beacons, and re-allocating their history
	// records would be the last allocation on the simulator hot path.
	free []*sample
}

// NewTracker returns an empty tracker.
func NewTracker(opts ...Option) *Tracker {
	t := &Tracker{neighbors: make(map[int32]*sample)}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Observe records the reception of a hello from neighbor id at time t with
// received power rxPr (Watts). Calls must be monotone in t per neighbor.
func (tr *Tracker) Observe(id int32, t, rxPr float64) error {
	if !(rxPr > 0) || math.IsInf(rxPr, 1) || math.IsNaN(rxPr) {
		return fmt.Errorf("%w: %g from neighbor %d", ErrNonPositivePower, rxPr, id)
	}
	s, ok := tr.neighbors[id]
	if !ok {
		if k := len(tr.free); k > 0 {
			s = tr.free[k-1]
			tr.free[k-1] = nil
			tr.free = tr.free[:k-1]
			*s = sample{}
		} else {
			s = &sample{}
		}
		tr.neighbors[id] = s
	}
	s.prevPr, s.prevT = s.lastPr, s.lastT
	s.lastPr, s.lastT = rxPr, t
	if s.count < 2 {
		s.count++
	}
	if s.count >= 2 && tr.pairAlpha > 0 && tr.pairAlpha < 1 {
		rel, err := RelativeMobility(s.prevPr, s.lastPr)
		if err == nil {
			if !s.smoothed {
				s.smoothedRel = rel
				s.smoothed = true
			} else {
				s.smoothedRel = tr.pairAlpha*rel + (1-tr.pairAlpha)*s.smoothedRel
			}
		}
	}
	return nil
}

// Forget drops neighbor id entirely (e.g., on an explicit leave).
func (tr *Tracker) Forget(id int32) {
	if s, ok := tr.neighbors[id]; ok {
		delete(tr.neighbors, id)
		tr.free = append(tr.free, s)
	}
}

// Expire purges neighbors not heard since now-timeout and returns how many
// were dropped. This implements the paper's heuristic that only nodes that
// participated in recent successive transmissions count toward M, combined
// with the hello protocol's timeout period (Table 1: TP).
func (tr *Tracker) Expire(now, timeout float64) int {
	dropped := 0
	for id, s := range tr.neighbors {
		if s.lastT < now-timeout {
			delete(tr.neighbors, id)
			tr.free = append(tr.free, s)
			dropped++
		}
	}
	return dropped
}

// NeighborCount returns the number of tracked neighbors (any reception count).
func (tr *Tracker) NeighborCount() int { return len(tr.neighbors) }

// EligibleCount returns the number of neighbors with at least two receptions,
// i.e. those contributing to the aggregate metric.
func (tr *Tracker) EligibleCount() int {
	n := 0
	for _, s := range tr.neighbors {
		if s.count >= 2 {
			n++
		}
	}
	return n
}

// Pairwise appends the pairwise relative mobility (dB) for every eligible
// neighbor to dst, in ascending neighbor-id order, and returns the extended
// slice. The canonical order matters: the aggregate sums these values, and
// summing in Go's randomized map order would make the last bits of M — and
// therefore election outcomes — depend on iteration luck.
func (tr *Tracker) Pairwise(dst []float64) []float64 {
	tr.idScratch = tr.idScratch[:0]
	for id, s := range tr.neighbors {
		if s.count >= 2 {
			tr.idScratch = append(tr.idScratch, id)
		}
	}
	slices.Sort(tr.idScratch)
	for _, id := range tr.idScratch {
		s := tr.neighbors[id]
		if s.smoothed {
			dst = append(dst, s.smoothedRel)
			continue
		}
		rel, err := RelativeMobility(s.prevPr, s.lastPr)
		if err != nil {
			// Observe validated both powers; this cannot happen.
			continue
		}
		dst = append(dst, rel)
	}
	return dst
}

// Aggregate computes the aggregate local mobility M for the node right now:
// var0 over all eligible neighbors' pairwise values, passed through the EWMA
// smoother when configured. With no eligible neighbors it returns 0 (the
// paper's initial value) — smoothed, if smoothing is on.
func (tr *Tracker) Aggregate() float64 {
	tr.scratch = tr.Pairwise(tr.scratch[:0])
	m := AggregateLocalMobility(tr.scratch)
	if tr.smoother != nil {
		return tr.smoother.Update(m)
	}
	return m
}

// Reserve pre-sizes the tracker for roughly n concurrent neighbors: the
// neighbor map, the pairwise scratch buffers and the sample free list are
// grown up front so dense scenarios (10k-node tiled runs) do not pay
// incremental map growth inside the beacon hot path. A zero or negative n is
// a no-op, as is calling Reserve on a tracker that already holds state.
func (tr *Tracker) Reserve(n int) {
	if n <= 0 {
		return
	}
	if len(tr.neighbors) == 0 {
		grown := make(map[int32]*sample, n)
		tr.neighbors = grown
	}
	if cap(tr.scratch) < n {
		tr.scratch = make([]float64, 0, n)
	}
	if cap(tr.idScratch) < n {
		tr.idScratch = make([]int32, 0, n)
	}
	for len(tr.free) < n {
		tr.free = append(tr.free, &sample{})
	}
}

// Reset clears all neighbor history and smoother state.
func (tr *Tracker) Reset() {
	for _, s := range tr.neighbors {
		tr.free = append(tr.free, s)
	}
	clear(tr.neighbors)
	if tr.smoother != nil {
		tr.smoother.Reset()
	}
}
