package core

import (
	"math"
	"testing"
	"testing/quick"

	"mobic/internal/radio"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRelativeMobilitySigns(t *testing.T) {
	tests := []struct {
		name           string
		prOld, prNew   float64
		wantSign       int
		wantMagnitudes float64
	}{
		{name: "moving apart is negative", prOld: 1e-9, prNew: 1e-10, wantSign: -1, wantMagnitudes: 10},
		{name: "closing in is positive", prOld: 1e-10, prNew: 1e-9, wantSign: 1, wantMagnitudes: 10},
		{name: "stationary is zero", prOld: 3e-9, prNew: 3e-9, wantSign: 0, wantMagnitudes: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := RelativeMobility(tt.prOld, tt.prNew)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case tt.wantSign < 0 && got >= 0:
				t.Errorf("got %v, want negative", got)
			case tt.wantSign > 0 && got <= 0:
				t.Errorf("got %v, want positive", got)
			case tt.wantSign == 0 && got != 0:
				t.Errorf("got %v, want 0", got)
			}
			if !almostEqual(math.Abs(got), tt.wantMagnitudes, 1e-9) {
				t.Errorf("|Mrel| = %v, want %v", math.Abs(got), tt.wantMagnitudes)
			}
		})
	}
}

func TestRelativeMobilityRejectsBadPowers(t *testing.T) {
	bad := []float64{0, -1e-9, math.NaN(), math.Inf(1)}
	for _, b := range bad {
		if _, err := RelativeMobility(b, 1e-9); err == nil {
			t.Errorf("old=%v should error", b)
		}
		if _, err := RelativeMobility(1e-9, b); err == nil {
			t.Errorf("new=%v should error", b)
		}
	}
}

// Antisymmetry: Mrel(a->b) = -Mrel(b->a).
func TestRelativeMobilityAntisymmetryProperty(t *testing.T) {
	anti := func(aSeed, bSeed uint32) bool {
		a := 1e-12 * (1 + float64(aSeed))
		b := 1e-12 * (1 + float64(bSeed))
		ab, err1 := RelativeMobility(a, b)
		ba, err2 := RelativeMobility(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(ab, -ba, 1e-9)
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Error(err)
	}
}

// Under the two-ray model beyond crossover, Mrel for a node moving from d1 to
// d2 is 40*log10(d1/d2) — the distance law the paper's metric rides on.
func TestRelativeMobilityDistanceCoupling(t *testing.T) {
	m := radio.NewTwoRayGround()
	const pt = radio.DefaultTxPower
	d1, d2 := 120.0, 180.0
	rel, err := RelativeMobility(m.RxPower(pt, d1), m.RxPower(pt, d2))
	if err != nil {
		t.Fatal(err)
	}
	want := 40 * math.Log10(d1/d2)
	if !almostEqual(rel, want, 1e-9) {
		t.Errorf("Mrel = %v, want %v", rel, want)
	}
	if rel >= 0 {
		t.Error("moving from 120 m to 180 m away must give negative Mrel")
	}
}

func TestAggregateLocalMobility(t *testing.T) {
	if got := AggregateLocalMobility(nil); got != 0 {
		t.Errorf("empty aggregate = %v, want 0 (paper init)", got)
	}
	got := AggregateLocalMobility([]float64{3, -4})
	if !almostEqual(got, (9.0+16.0)/2, 1e-12) {
		t.Errorf("aggregate = %v, want 12.5", got)
	}
}

func TestTrackerNeedsTwoSamples(t *testing.T) {
	tr := NewTracker()
	if err := tr.Observe(1, 0, 1e-9); err != nil {
		t.Fatal(err)
	}
	if tr.NeighborCount() != 1 {
		t.Errorf("NeighborCount = %d, want 1", tr.NeighborCount())
	}
	if tr.EligibleCount() != 0 {
		t.Errorf("EligibleCount = %d, want 0 after one sample", tr.EligibleCount())
	}
	if got := tr.Aggregate(); got != 0 {
		t.Errorf("Aggregate with no eligible neighbors = %v, want 0", got)
	}
	if err := tr.Observe(1, 2, 2e-9); err != nil {
		t.Fatal(err)
	}
	if tr.EligibleCount() != 1 {
		t.Errorf("EligibleCount = %d, want 1", tr.EligibleCount())
	}
	want, err := RelativeMobility(1e-9, 2e-9)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Aggregate(); !almostEqual(got, want*want, 1e-9) {
		t.Errorf("Aggregate = %v, want %v", got, want*want)
	}
}

func TestTrackerRejectsBadPower(t *testing.T) {
	tr := NewTracker()
	if err := tr.Observe(1, 0, 0); err == nil {
		t.Error("zero power should error")
	}
	if err := tr.Observe(1, 0, math.NaN()); err == nil {
		t.Error("NaN power should error")
	}
	if tr.NeighborCount() != 0 {
		t.Error("rejected observation should not create a neighbor")
	}
}

func TestTrackerMultipleNeighbors(t *testing.T) {
	tr := NewTracker()
	// Neighbor 1: power doubles (+3.01 dB). Neighbor 2: halves (-3.01 dB).
	// Neighbor 3: only one sample (excluded).
	mustObserve(t, tr, 1, 0, 1e-9)
	mustObserve(t, tr, 1, 2, 2e-9)
	mustObserve(t, tr, 2, 0, 4e-9)
	mustObserve(t, tr, 2, 2, 2e-9)
	mustObserve(t, tr, 3, 2, 5e-9)

	pw := tr.Pairwise(nil)
	if len(pw) != 2 {
		t.Fatalf("Pairwise len = %d, want 2", len(pw))
	}
	db := 10 * math.Log10(2)
	if got := tr.Aggregate(); !almostEqual(got, db*db, 1e-9) {
		t.Errorf("Aggregate = %v, want %v (symmetric +-3dB)", got, db*db)
	}
}

func TestTrackerSlidingWindow(t *testing.T) {
	tr := NewTracker()
	mustObserve(t, tr, 1, 0, 1e-9)
	mustObserve(t, tr, 1, 2, 2e-9)
	mustObserve(t, tr, 1, 4, 8e-9) // new pair is (2e-9 -> 8e-9): +6.02 dB
	want, err := RelativeMobility(2e-9, 8e-9)
	if err != nil {
		t.Fatal(err)
	}
	pw := tr.Pairwise(nil)
	if len(pw) != 1 || !almostEqual(pw[0], want, 1e-9) {
		t.Errorf("Pairwise = %v, want [%v]", pw, want)
	}
}

func TestTrackerExpire(t *testing.T) {
	tr := NewTracker()
	mustObserve(t, tr, 1, 0, 1e-9)
	mustObserve(t, tr, 1, 2, 1e-9)
	mustObserve(t, tr, 2, 4, 1e-9)
	mustObserve(t, tr, 2, 6, 1e-9)
	// At t=7 with TP=3: neighbor 1 (last heard t=2) expires, 2 stays.
	if dropped := tr.Expire(7, 3); dropped != 1 {
		t.Errorf("Expire dropped %d, want 1", dropped)
	}
	if tr.NeighborCount() != 1 {
		t.Errorf("NeighborCount = %d, want 1", tr.NeighborCount())
	}
	pw := tr.Pairwise(nil)
	if len(pw) != 1 {
		t.Errorf("Pairwise after expire = %v", pw)
	}
}

func TestTrackerForgetAndReset(t *testing.T) {
	tr := NewTracker()
	mustObserve(t, tr, 1, 0, 1e-9)
	tr.Forget(1)
	if tr.NeighborCount() != 0 {
		t.Error("Forget should remove neighbor")
	}
	mustObserve(t, tr, 2, 0, 1e-9)
	tr.Reset()
	if tr.NeighborCount() != 0 {
		t.Error("Reset should clear neighbors")
	}
}

func TestTrackerStationaryNodeHasZeroM(t *testing.T) {
	// A node whose neighbors' powers never change is perfectly non-mobile.
	tr := NewTracker()
	for i := int32(1); i <= 5; i++ {
		mustObserve(t, tr, i, 0, 1e-9)
		mustObserve(t, tr, i, 2, 1e-9)
	}
	if got := tr.Aggregate(); got != 0 {
		t.Errorf("stationary aggregate = %v, want 0", got)
	}
}

// The more mobile the neighborhood, the larger M: moving neighbors at
// various rates must order aggregates correctly.
func TestTrackerOrdersMobility(t *testing.T) {
	model := radio.NewTwoRayGround()
	const pt = radio.DefaultTxPower
	agg := func(d0, d1 float64) float64 {
		tr := NewTracker()
		mustObserve(t, tr, 1, 0, model.RxPower(pt, d0))
		mustObserve(t, tr, 1, 2, model.RxPower(pt, d1))
		return tr.Aggregate()
	}
	slow := agg(100, 105)  // 2.5 m/s drift
	fast := agg(100, 140)  // 20 m/s drift
	still := agg(100, 100) // no drift
	if !(still < slow && slow < fast) {
		t.Errorf("ordering violated: still=%v slow=%v fast=%v", still, slow, fast)
	}
}

func TestTrackerEWMA(t *testing.T) {
	tr := NewTracker(WithEWMA(0.5))
	// First aggregate: one neighbor at +
	mustObserve(t, tr, 1, 0, 1e-9)
	mustObserve(t, tr, 1, 2, 2e-9)
	db := 10 * math.Log10(2)
	first := tr.Aggregate()
	if !almostEqual(first, db*db, 1e-9) {
		t.Fatalf("first smoothed aggregate = %v, want %v", first, db*db)
	}
	// Neighborhood goes quiet: raw M drops to 0, smoothed decays halfway.
	mustObserve(t, tr, 1, 4, 2e-9)
	second := tr.Aggregate()
	if !almostEqual(second, first/2, 1e-9) {
		t.Errorf("smoothed aggregate = %v, want %v", second, first/2)
	}
}

func TestTrackerPairwiseEWMA(t *testing.T) {
	tr := NewTracker(WithPairwiseEWMA(0.5))
	// Neighbor 1: first pair gives +3.01 dB; the smoothed value primes
	// to exactly that.
	mustObserve(t, tr, 1, 0, 1e-9)
	mustObserve(t, tr, 1, 2, 2e-9)
	db := 10 * math.Log10(2)
	pw := tr.Pairwise(nil)
	if len(pw) != 1 || !almostEqual(pw[0], db, 1e-9) {
		t.Fatalf("primed pairwise = %v, want [%v]", pw, db)
	}
	// Next pair is flat (0 dB); smoothed halves.
	mustObserve(t, tr, 1, 4, 2e-9)
	pw = tr.Pairwise(nil)
	if len(pw) != 1 || !almostEqual(pw[0], db/2, 1e-9) {
		t.Errorf("smoothed pairwise = %v, want [%v]", pw, db/2)
	}
	// Aggregate uses the smoothed value.
	if got := tr.Aggregate(); !almostEqual(got, (db/2)*(db/2), 1e-9) {
		t.Errorf("Aggregate = %v, want %v", got, (db/2)*(db/2))
	}
}

func TestPairwiseEWMAInvalidAlphaDisables(t *testing.T) {
	tr := NewTracker(WithPairwiseEWMA(1.5)) // clamped to 1 = memoryless
	mustObserve(t, tr, 1, 0, 1e-9)
	mustObserve(t, tr, 1, 2, 2e-9)
	mustObserve(t, tr, 1, 4, 2e-9)
	pw := tr.Pairwise(nil)
	if len(pw) != 1 || pw[0] != 0 {
		t.Errorf("memoryless pairwise = %v, want [0]", pw)
	}
}

func TestTrackerEWMAResetClearsSmoother(t *testing.T) {
	tr := NewTracker(WithEWMA(0.5))
	mustObserve(t, tr, 1, 0, 1e-9)
	mustObserve(t, tr, 1, 2, 4e-9)
	if tr.Aggregate() == 0 {
		t.Fatal("aggregate should be nonzero before reset")
	}
	tr.Reset()
	if got := tr.Aggregate(); got != 0 {
		t.Errorf("post-reset aggregate = %v, want 0", got)
	}
}

// Property: Aggregate is always non-negative regardless of power sequences.
func TestAggregateNonNegativeProperty(t *testing.T) {
	nonNeg := func(powers []uint32) bool {
		tr := NewTracker()
		for i, p := range powers {
			pw := 1e-12 * (1 + float64(p%1000000))
			if err := tr.Observe(int32(i%7), float64(i), pw); err != nil {
				return false
			}
		}
		return tr.Aggregate() >= 0
	}
	if err := quick.Check(nonNeg, nil); err != nil {
		t.Error(err)
	}
}

func mustObserve(t *testing.T, tr *Tracker, id int32, tm, pr float64) {
	t.Helper()
	if err := tr.Observe(id, tm, pr); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrackerObserveAggregate(b *testing.B) {
	tr := NewTracker()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		id := int32(i % 20)
		if err := tr.Observe(id, float64(i), 1e-9*(1+float64(i%13))); err != nil {
			b.Fatal(err)
		}
		if i%20 == 19 {
			sink = tr.Aggregate()
		}
	}
	_ = sink
}

func TestReservePreSizesWithoutChangingBehavior(t *testing.T) {
	tr := NewTracker()
	tr.Reserve(64)
	tr.Reserve(0)  // no-op
	tr.Reserve(-5) // no-op
	mustObserve(t, tr, 7, 0, 1e-9)
	mustObserve(t, tr, 7, 1, 2e-9)
	plain := NewTracker()
	mustObserve(t, plain, 7, 0, 1e-9)
	mustObserve(t, plain, 7, 1, 2e-9)
	if got, want := tr.Aggregate(), plain.Aggregate(); got != want {
		t.Fatalf("reserved tracker M = %g, plain = %g", got, want)
	}
	// Reserve after state exists must not clear the neighbor table.
	tr.Reserve(128)
	if tr.NeighborCount() != 1 {
		t.Fatalf("Reserve dropped neighbors: %d left", tr.NeighborCount())
	}
}
