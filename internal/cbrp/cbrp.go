// Package cbrp implements a CBRP-lite cluster-based routing protocol on top
// of the clustered MANET — the integration the paper names as its next step
// ("A cluster-based routing protocol like CBRP that runs on top of the
// Lowest-ID scheme can also run on top of MOBIC with minimum changes",
// Section 3.2, and the Section 5 future work).
//
// The protocol is deliberately a *lite* CBRP: source routing with
// backbone-constrained route discovery.
//
//   - Route request (RREQ): one-hop broadcasts, re-forwarded only by
//     backbone nodes — clusterheads, undecided nodes, and members that hear
//     two or more clusterheads (gateways). Each RREQ records the path it
//     took; duplicates are suppressed per (source, request id).
//   - Route reply (RREP): unicast hop-by-hop along the reversed recorded
//     path back to the source, which installs the route.
//   - Data: unicast hop-by-hop along the installed source route. A
//     forwarding failure (next hop out of range) sends a route error (RERR)
//     back along the traversed prefix; the source invalidates the route and
//     rediscovers on the next data packet.
//
// Because the backbone is the cluster structure, the protocol's delivery
// ratio and control overhead directly reflect cluster stability — which is
// exactly what the paper argues MOBIC improves.
package cbrp

import (
	"fmt"

	"mobic/internal/cluster"
	"mobic/internal/simnet"
)

// Config parameterizes the protocol and its synthetic workload.
type Config struct {
	// Flows is the number of concurrent (source, destination) data flows.
	Flows int
	// DataInterval is the per-flow data packet period in seconds.
	DataInterval float64
	// StartAt delays the first data packet so clusters can form.
	StartAt float64
	// RouteTTL invalidates installed routes after this many seconds.
	RouteTTL float64
	// MaxPathLen drops RREQs whose recorded path exceeds this many nodes.
	MaxPathLen int
	// FlatFlooding disables the backbone restriction: every node forwards
	// RREQs (the DSR-style baseline for overhead comparison).
	FlatFlooding bool
	// LocalRepair enables CBRP's route-salvage behaviour: a forwarder
	// whose next hop has become unreachable splices one of its current
	// neighbors into the source route instead of dropping the packet.
	LocalRepair bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Flows <= 0 {
		c.Flows = 10
	}
	if c.DataInterval <= 0 {
		c.DataInterval = 4
	}
	if c.StartAt <= 0 {
		c.StartAt = 20
	}
	if c.RouteTTL <= 0 {
		c.RouteTTL = 30
	}
	if c.MaxPathLen <= 0 {
		c.MaxPathLen = 16
	}
	return c
}

// packet kinds carried as simnet.Payload.
type rreq struct {
	id   uint64
	src  int32
	dst  int32
	path []int32 // nodes traversed, src first
}

type rrep struct {
	src    int32
	dst    int32
	path   []int32 // full route src..dst
	hopIdx int     // index of the node currently holding the packet
}

type dataPkt struct {
	src    int32
	dst    int32
	seq    uint64
	path   []int32
	hopIdx int
	sentAt float64
}

type rerr struct {
	src    int32
	path   []int32 // prefix the data packet had traversed, src first
	hopIdx int     // index of the node currently holding the packet
}

// flow is one synthetic traffic pair.
type flow struct {
	src, dst int32
	nextSeq  uint64
}

// route is an installed source route.
type route struct {
	path      []int32
	expiresAt float64
}

// Stats aggregates protocol outcomes for one run.
type Stats struct {
	// DataSent and DataDelivered count data packets end to end.
	DataSent, DataDelivered uint64
	// RREQTx, RREPTx, RERRTx and DataTx count per-hop transmissions.
	RREQTx, RREPTx, RERRTx, DataTx uint64
	// Discoveries counts completed route discoveries; DiscoveryLatency is
	// their cumulative latency in seconds.
	Discoveries      uint64
	DiscoveryLatency float64
	// RouteBreaks counts forwarding failures on installed routes.
	RouteBreaks uint64
	// Repairs counts packets salvaged by local repair after a break.
	Repairs uint64
	// HopsSum accumulates delivered packets' hop counts.
	HopsSum uint64
}

// DeliveryRatio returns delivered/sent (0 when nothing was sent).
func (s Stats) DeliveryRatio() float64 {
	if s.DataSent == 0 {
		return 0
	}
	return float64(s.DataDelivered) / float64(s.DataSent)
}

// ControlTx returns the total control-plane transmissions.
func (s Stats) ControlTx() uint64 { return s.RREQTx + s.RREPTx + s.RERRTx }

// MeanDiscoveryLatency returns the average route discovery time in seconds.
func (s Stats) MeanDiscoveryLatency() float64 {
	if s.Discoveries == 0 {
		return 0
	}
	return s.DiscoveryLatency / float64(s.Discoveries)
}

// MeanHops returns the average delivered-path length in hops.
func (s Stats) MeanHops() float64 {
	if s.DataDelivered == 0 {
		return 0
	}
	return float64(s.HopsSum) / float64(s.DataDelivered)
}

// Protocol is the CBRP-lite app. Create with New, pass in
// simnet.Config.Apps, and read Stats() after the run.
type Protocol struct {
	cfg Config
	api simnet.AppAPI

	flows      []flow
	routes     map[int32]map[int32]*route // src -> dst -> route
	seenRREQ   map[string]bool
	pendingReq map[pairKey]float64 // (src,dst) -> earliest request time
	nextReqID  uint64
	stats      Stats
}

// pairKey identifies a (source, destination) pair.
type pairKey struct {
	src, dst int32
}

// New returns a protocol instance.
func New(cfg Config) *Protocol {
	return &Protocol{
		cfg:        cfg.withDefaults(),
		routes:     make(map[int32]map[int32]*route),
		seenRREQ:   make(map[string]bool),
		pendingReq: make(map[pairKey]float64),
	}
}

// Name implements simnet.App.
func (p *Protocol) Name() string { return "cbrp" }

// Stats returns the accumulated protocol statistics.
func (p *Protocol) Stats() Stats { return p.stats }

// Start implements simnet.App: set up flows and the data schedule.
func (p *Protocol) Start(api simnet.AppAPI) {
	p.api = api
	n := api.NodeCount()
	for i := 0; i < p.cfg.Flows; i++ {
		src := int32(api.Rand() * float64(n))
		dst := int32(api.Rand() * float64(n))
		if src == dst {
			dst = (dst + 1) % int32(n)
		}
		p.flows = append(p.flows, flow{src: src, dst: dst})
	}
	for fi := range p.flows {
		fi := fi
		// Stagger flows across one interval.
		offset := p.cfg.StartAt + api.Rand()*p.cfg.DataInterval
		_ = api.After(offset, func(now float64) { p.flowTick(fi, now) })
	}
}

// flowTick emits one data packet for the flow and reschedules itself.
func (p *Protocol) flowTick(fi int, now float64) {
	f := &p.flows[fi]
	p.stats.DataSent++
	if r := p.liveRoute(f.src, f.dst, now); r != nil {
		p.sendData(f, r, now)
	} else {
		p.discover(f.src, f.dst, now)
		// The packet that triggered discovery is lost (no send buffer in
		// the lite protocol) — counted as sent, not delivered.
	}
	_ = p.api.After(p.cfg.DataInterval, func(t float64) { p.flowTick(fi, t) })
}

// liveRoute returns the installed unexpired route, or nil.
func (p *Protocol) liveRoute(src, dst int32, now float64) *route {
	r := p.routes[src][dst]
	if r == nil || now >= r.expiresAt {
		return nil
	}
	return r
}

// installRoute records a discovered route at the source.
func (p *Protocol) installRoute(src, dst int32, path []int32, now float64) {
	if p.routes[src] == nil {
		p.routes[src] = make(map[int32]*route)
	}
	p.routes[src][dst] = &route{path: path, expiresAt: now + p.cfg.RouteTTL}
}

// invalidateRoute drops the installed route.
func (p *Protocol) invalidateRoute(src, dst int32) {
	delete(p.routes[src], dst)
}

func reqKey(src int32, id uint64) string { return fmt.Sprintf("%d/%d", src, id) }

// discover floods an RREQ from src.
func (p *Protocol) discover(src, dst int32, now float64) {
	p.nextReqID++
	req := rreq{id: p.nextReqID, src: src, dst: dst, path: []int32{src}}
	p.seenRREQ[reqKey(src, req.id)] = true
	// Latency is measured per attempt: a reply closes the *latest*
	// request, so a failed flood followed by a successful one does not
	// charge the dead time in between to discovery latency.
	p.pendingReq[pairKey{src, dst}] = now
	p.stats.RREQTx++
	p.api.Broadcast(src, req)
}

// forwards reports whether node id relays RREQs: the cluster backbone, or
// everyone under flat flooding.
func (p *Protocol) forwards(id int32) bool {
	if p.cfg.FlatFlooding {
		return true
	}
	switch p.api.Role(id) {
	case cluster.RoleHead, cluster.RoleUndecided:
		return true
	default:
		return len(p.api.AudibleHeads(id)) >= 2
	}
}

// OnBroadcast implements simnet.App: RREQ handling.
func (p *Protocol) OnBroadcast(now float64, from, at int32, payload simnet.Payload) {
	req, ok := payload.(rreq)
	if !ok {
		return
	}
	if containsNode(req.path, at) {
		return // loop
	}
	key := fmt.Sprintf("%s@%d", reqKey(req.src, req.id), at)
	if p.seenRREQ[key] {
		return // duplicate at this node
	}
	p.seenRREQ[key] = true

	path := append(append([]int32(nil), req.path...), at)
	if at == req.dst {
		// Destination: reply along the reversed path.
		rep := rrep{src: req.src, dst: req.dst, path: path, hopIdx: len(path) - 1}
		p.forwardRREP(rep, now)
		return
	}
	if len(path) >= p.cfg.MaxPathLen {
		return
	}
	if !p.forwards(at) {
		return
	}
	p.stats.RREQTx++
	p.api.Broadcast(at, rreq{id: req.id, src: req.src, dst: req.dst, path: path})
}

// forwardRREP moves the reply one hop toward the source.
func (p *Protocol) forwardRREP(rep rrep, now float64) {
	if rep.hopIdx == 0 {
		// Arrived at the source: install and close the pending discovery.
		p.installRoute(rep.src, rep.dst, rep.path, now)
		if t0, ok := p.pendingReq[pairKey{rep.src, rep.dst}]; ok {
			p.stats.Discoveries++
			p.stats.DiscoveryLatency += now - t0
			delete(p.pendingReq, pairKey{rep.src, rep.dst})
		}
		return
	}
	holder := rep.path[rep.hopIdx]
	next := rep.path[rep.hopIdx-1]
	p.stats.RREPTx++
	if p.api.Unicast(holder, next, rrep{src: rep.src, dst: rep.dst, path: rep.path, hopIdx: rep.hopIdx - 1}) {
		return
	}
	// Reverse path broke already; the source will simply re-discover.
}

// OnUnicast implements simnet.App: RREP, data and RERR forwarding.
func (p *Protocol) OnUnicast(now float64, from, at int32, payload simnet.Payload) {
	switch pkt := payload.(type) {
	case rrep:
		p.forwardRREP(pkt, now)
	case dataPkt:
		p.forwardData(pkt, now)
	case rerr:
		p.forwardRERR(pkt, now)
	}
}

// sendData launches a data packet along the installed route.
func (p *Protocol) sendData(f *flow, r *route, now float64) {
	f.nextSeq++
	pkt := dataPkt{src: f.src, dst: f.dst, seq: f.nextSeq, path: r.path, hopIdx: 0, sentAt: now}
	p.forwardData(pkt, now)
}

// forwardData moves the packet one hop along its source route.
func (p *Protocol) forwardData(pkt dataPkt, now float64) {
	at := pkt.path[pkt.hopIdx]
	if at == pkt.dst {
		p.stats.DataDelivered++
		p.stats.HopsSum += uint64(len(pkt.path) - 1)
		return
	}
	next := pkt.path[pkt.hopIdx+1]
	p.stats.DataTx++
	if p.api.Unicast(at, next, dataPkt{
		src: pkt.src, dst: pkt.dst, seq: pkt.seq,
		path: pkt.path, hopIdx: pkt.hopIdx + 1, sentAt: pkt.sentAt,
	}) {
		return
	}
	// Link broke.
	p.stats.RouteBreaks++
	if p.cfg.LocalRepair && p.tryLocalRepair(pkt, at, next) {
		p.stats.Repairs++
		return
	}
	// Unsalvageable: send a route error back along the traversed prefix.
	e := rerr{src: pkt.src, path: pkt.path[:pkt.hopIdx+1], hopIdx: pkt.hopIdx}
	p.forwardRERR(e, now)
	// The destination of the broken flow:
	p.invalidateOnBreak(pkt.src, pkt.dst, at)
}

// tryLocalRepair splices a current neighbor of the stuck forwarder into the
// source route, hoping it can still reach the lost next hop (CBRP's local
// repair, one level deep). Returns true when the packet was handed off.
func (p *Protocol) tryLocalRepair(pkt dataPkt, at, next int32) bool {
	for _, nb := range p.api.Neighbors(at) {
		if nb == next || containsNode(pkt.path, nb) {
			continue
		}
		spliced := make([]int32, 0, len(pkt.path)+1)
		spliced = append(spliced, pkt.path[:pkt.hopIdx+1]...)
		spliced = append(spliced, nb)
		spliced = append(spliced, pkt.path[pkt.hopIdx+1:]...)
		p.stats.DataTx++
		if p.api.Unicast(at, nb, dataPkt{
			src: pkt.src, dst: pkt.dst, seq: pkt.seq,
			path: spliced, hopIdx: pkt.hopIdx + 1, sentAt: pkt.sentAt,
		}) {
			return true
		}
	}
	return false
}

// invalidateOnBreak drops the route at the source immediately if the break
// happened at the source itself (no RERR needed).
func (p *Protocol) invalidateOnBreak(src, dst, at int32) {
	if at == src {
		p.invalidateRoute(src, dst)
	}
}

// forwardRERR moves the error back toward the source; on arrival the source
// invalidates every route through the broken node pair (lite: all routes
// from this source).
func (p *Protocol) forwardRERR(e rerr, now float64) {
	if e.hopIdx == 0 {
		// At the source: drop all its routes (lite semantics: the exact
		// broken link is not carried, and rediscovery is cheap).
		delete(p.routes, e.src)
		return
	}
	holder := e.path[e.hopIdx]
	next := e.path[e.hopIdx-1]
	p.stats.RERRTx++
	if !p.api.Unicast(holder, next, rerr{src: e.src, path: e.path, hopIdx: e.hopIdx - 1}) {
		// Reverse path broke too; the source's route will age out via TTL.
		return
	}
}

func containsNode(path []int32, id int32) bool {
	for _, v := range path {
		if v == id {
			return true
		}
	}
	return false
}
