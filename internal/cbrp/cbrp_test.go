package cbrp

import (
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/geom"
	"mobic/internal/mobility"
	"mobic/internal/simnet"
)

func runWithProtocol(t *testing.T, cfg Config, netMut func(*simnet.Config)) *Protocol {
	t.Helper()
	p := New(cfg)
	area := geom.Square(670)
	scfg := simnet.Config{
		N:         40,
		Area:      area,
		Duration:  300,
		Seed:      5,
		Algorithm: cluster.MOBIC,
		Mobility:  &mobility.RandomWaypoint{Area: area, MaxSpeed: 10},
		TxRange:   250,
		Apps:      []simnet.App{p},
	}
	if netMut != nil {
		netMut(&scfg)
	}
	net, err := simnet.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Flows <= 0 || c.DataInterval <= 0 || c.RouteTTL <= 0 || c.MaxPathLen <= 0 || c.StartAt <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestProtocolDeliversData(t *testing.T) {
	p := runWithProtocol(t, Config{Flows: 8, DataInterval: 5}, nil)
	s := p.Stats()
	if s.DataSent == 0 {
		t.Fatal("no data sent")
	}
	if s.DataDelivered == 0 {
		t.Fatal("no data delivered")
	}
	if s.Discoveries == 0 {
		t.Error("no route discoveries completed")
	}
	if ratio := s.DeliveryRatio(); ratio < 0.3 {
		t.Errorf("delivery ratio = %.2f, expected a mostly-connected 250 m network to deliver", ratio)
	}
	if s.MeanHops() < 1 {
		t.Errorf("MeanHops = %v, want >= 1", s.MeanHops())
	}
	if s.MeanDiscoveryLatency() <= 0 {
		t.Errorf("discovery latency = %v, want positive (hop delay)", s.MeanDiscoveryLatency())
	}
}

func TestProtocolDeterminism(t *testing.T) {
	a := runWithProtocol(t, Config{Flows: 6}, nil).Stats()
	b := runWithProtocol(t, Config{Flows: 6}, nil).Stats()
	if a != b {
		t.Errorf("same seed gave different stats:\n%+v\n%+v", a, b)
	}
}

func TestFlatFloodingCostsMoreControl(t *testing.T) {
	backbone := runWithProtocol(t, Config{Flows: 8}, nil).Stats()
	flat := runWithProtocol(t, Config{Flows: 8, FlatFlooding: true}, nil).Stats()
	if flat.RREQTx <= backbone.RREQTx {
		t.Errorf("flat flooding RREQ tx (%d) should exceed backbone (%d)",
			flat.RREQTx, backbone.RREQTx)
	}
	// Both should deliver comparably on a well-connected topology.
	if backbone.DeliveryRatio() < flat.DeliveryRatio()-0.25 {
		t.Errorf("backbone PDR %.2f far below flat %.2f",
			backbone.DeliveryRatio(), flat.DeliveryRatio())
	}
}

func TestRouteBreaksTriggerRediscovery(t *testing.T) {
	// High speed forces route breaks within the run.
	p := runWithProtocol(t, Config{Flows: 8, DataInterval: 3, RouteTTL: 300}, func(c *simnet.Config) {
		c.Mobility = &mobility.RandomWaypoint{Area: c.Area, MaxSpeed: 30}
		c.TxRange = 150
	})
	s := p.Stats()
	if s.RouteBreaks == 0 {
		t.Error("expected route breaks at 30 m/s with Tx 150")
	}
	if s.Discoveries < 2 {
		t.Errorf("expected rediscoveries after breaks, got %d", s.Discoveries)
	}
}

func TestLocalRepairSalvagesPackets(t *testing.T) {
	base := Config{Flows: 10, DataInterval: 3, RouteTTL: 60}
	highMobility := func(c *simnet.Config) {
		c.Mobility = &mobility.RandomWaypoint{Area: c.Area, MaxSpeed: 30}
		c.TxRange = 150
	}
	plain := runWithProtocol(t, base, highMobility).Stats()
	repairCfg := base
	repairCfg.LocalRepair = true
	repaired := runWithProtocol(t, repairCfg, highMobility).Stats()

	if plain.Repairs != 0 {
		t.Error("repairs counted with LocalRepair off")
	}
	if repaired.Repairs == 0 {
		t.Fatal("no repairs performed in a high-break scenario")
	}
	if repaired.DeliveryRatio() <= plain.DeliveryRatio() {
		t.Errorf("local repair should raise PDR: %.3f vs %.3f",
			repaired.DeliveryRatio(), plain.DeliveryRatio())
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.DeliveryRatio() != 0 || s.MeanHops() != 0 || s.MeanDiscoveryLatency() != 0 {
		t.Error("zero stats should return zeros, not NaN")
	}
	s = Stats{
		DataSent: 10, DataDelivered: 5, HopsSum: 15,
		RREQTx: 3, RREPTx: 2, RERRTx: 1,
		Discoveries: 2, DiscoveryLatency: 1.0,
	}
	if s.DeliveryRatio() != 0.5 {
		t.Errorf("DeliveryRatio = %v", s.DeliveryRatio())
	}
	if s.MeanHops() != 3 {
		t.Errorf("MeanHops = %v", s.MeanHops())
	}
	if s.ControlTx() != 6 {
		t.Errorf("ControlTx = %v", s.ControlTx())
	}
	if s.MeanDiscoveryLatency() != 0.5 {
		t.Errorf("MeanDiscoveryLatency = %v", s.MeanDiscoveryLatency())
	}
}

func TestStaticNetworkHighDelivery(t *testing.T) {
	p := runWithProtocol(t, Config{Flows: 8, DataInterval: 5}, func(c *simnet.Config) {
		c.Mobility = &mobility.Static{Area: c.Area}
	})
	s := p.Stats()
	if s.DataSent == 0 {
		t.Fatal("no data sent")
	}
	// On a static, mostly-connected topology, nearly everything after the
	// first (discovery-triggering) packet per flow should arrive.
	if ratio := s.DeliveryRatio(); ratio < 0.7 {
		t.Errorf("static delivery ratio = %.2f, want >= 0.7", ratio)
	}
	if s.RouteBreaks != 0 {
		t.Errorf("static topology had %d route breaks", s.RouteBreaks)
	}
}
