package cbrp

import (
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/energy"
	"mobic/internal/simnet"
)

// TestProtocolWithAdaptiveBI: per-node adaptive beacon intervals reshape the
// neighbor-discovery cadence underneath CBRP; the routing layer must keep
// discovering and delivering on the floating schedule, and stay
// deterministic.
func TestProtocolWithAdaptiveBI(t *testing.T) {
	adaptive := func(c *simnet.Config) {
		c.Adaptive = &simnet.AdaptiveBI{Min: 0.5, Max: 4, MRef: 4, Hysteresis: 0.25}
	}
	a := runWithProtocol(t, Config{Flows: 8, DataInterval: 5}, adaptive).Stats()
	if a.DataDelivered == 0 || a.Discoveries == 0 {
		t.Fatalf("no routing progress under adaptive BI: %+v", a)
	}
	if ratio := a.DeliveryRatio(); ratio < 0.3 {
		t.Errorf("delivery ratio = %.2f under adaptive BI, want a functioning network", ratio)
	}
	b := runWithProtocol(t, Config{Flows: 8, DataInterval: 5}, adaptive).Stats()
	if a != b {
		t.Errorf("adaptive BI broke determinism:\n%+v\n%+v", a, b)
	}
}

// TestProtocolWithAdaptiveLowestID: tenure expiry keeps rotating the
// clusterhead backbone CBRP routes over; route discovery must survive the
// churned backbone.
func TestProtocolWithAdaptiveLowestID(t *testing.T) {
	rotate := func(c *simnet.Config) {
		c.Algorithm = cluster.AdaptiveLowestID
	}
	s := runWithProtocol(t, Config{Flows: 8, DataInterval: 5}, rotate).Stats()
	if s.DataDelivered == 0 || s.Discoveries == 0 {
		t.Fatalf("no routing progress under adaptive Lowest-ID: %+v", s)
	}
	if ratio := s.DeliveryRatio(); ratio < 0.3 {
		t.Errorf("delivery ratio = %.2f under adaptive Lowest-ID, want a functioning network", ratio)
	}
}

// TestProtocolWithEnergyRotation: an energy budget comfortably above the
// run's drain keeps every node alive, but the election weighting still
// hands the head role around as batteries diverge. Routing must work over
// the energy-weighted backbone, and the whole stack — drain accounting
// included — must stay deterministic.
func TestProtocolWithEnergyRotation(t *testing.T) {
	energized := func(c *simnet.Config) {
		ec := energy.Default()
		ec.InitialJ = 5
		c.Energy = &ec
	}
	a := runWithProtocol(t, Config{Flows: 8, DataInterval: 5}, energized).Stats()
	if a.DataDelivered == 0 || a.Discoveries == 0 {
		t.Fatalf("no routing progress under the energy model: %+v", a)
	}
	if ratio := a.DeliveryRatio(); ratio < 0.3 {
		t.Errorf("delivery ratio = %.2f under the energy model, want a functioning network", ratio)
	}
	b := runWithProtocol(t, Config{Flows: 8, DataInterval: 5}, energized).Stats()
	if a != b {
		t.Errorf("energy model broke determinism:\n%+v\n%+v", a, b)
	}
}
