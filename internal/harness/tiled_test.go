package harness

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
)

// loadGoldenDigests reads the committed golden digest file — the sequential
// (Tiles = 1) anchor every tiled run is compared against.
func loadGoldenDigests(t *testing.T) map[string]Digest {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (refresh with -update): %v", err)
	}
	var want map[string]Digest
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	return want
}

// digestAllTiled runs every pinned (workload, algorithm, seed) cell on the
// tiled scheduler with the given tile count and grid offset, in parallel.
func digestAllTiled(t *testing.T, tiles, offset int) map[string]Digest {
	t.Helper()
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		out = make(map[string]Digest)
	)
	for _, r := range GoldenRuns() {
		for _, seed := range GoldenSeeds() {
			w, alg, seed := r.Workload, r.Algorithm, seed
			wg.Add(1)
			go func() {
				defer wg.Done()
				cfg, err := w.Config(alg, seed)
				if err != nil {
					t.Errorf("%s/%s: %v", w.Name, alg.Name, err)
					return
				}
				cfg.Tiles = tiles
				cfg.TileOffsetCells = offset
				dig, _, err := DigestRun(cfg)
				if err != nil {
					t.Errorf("%s/%s: %v", w.Name, alg.Name, err)
					return
				}
				mu.Lock()
				out[GoldenKey(w.Name, alg.Name, seed)] = dig
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	return out
}

// compareToGolden asserts every tiled digest matches its committed
// sequential golden byte for byte.
func compareToGolden(t *testing.T, want, got map[string]Digest, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: produced %d digests, golden file pins %d", label, len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: %s missing from tiled run", label, key)
			continue
		}
		if g != w {
			t.Errorf("%s: %s diverged from the sequential golden\n  golden: %s (%d events)\n  tiled:  %s (%d events)",
				label, key, w.SHA256, w.Events, g.SHA256, g.Events)
		}
	}
}

// TestTiledGoldenEquivalence is the PR's headline proof: every golden
// scenario — the base algorithm grid and the clustering-policy runs alike —
// run on the tiled-parallel scheduler at Tiles = 2, 4 and
// GOMAXPROCS, produce SHA-256 trace digests bit-identical to the committed
// sequential goldens. Together with TestGoldenDigests (Tiles = 1 vs the same
// file) this closes the 1-tile == N-tile equivalence the conservative
// scheduler promises, and it runs under -race in scripts/check.sh.
func TestTiledGoldenEquivalence(t *testing.T) {
	// Real worker pools even on single-CPU machines (the pool size derives
	// from GOMAXPROCS; interleaved goroutines are what equivalence and the
	// race detector need — physical cores only change wall-clock).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	want := loadGoldenDigests(t)
	tileCounts := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, tiles := range tileCounts {
		compareToGolden(t, want, digestAllTiled(t, tiles, 0), GoldenKey("tiles", "all", uint64(tiles)))
	}
}

// TestTiledOffsetMetamorphic is the tiling oracle: where the tile boundaries
// fall is pure work partitioning, so translating (offsetting) the tile grid
// over the arena — moving every boundary, rotating cell ownership between
// tiles — must never change a digest. Odd tile counts additionally exercise
// non-square tile factorizations.
func TestTiledOffsetMetamorphic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	want := loadGoldenDigests(t)
	cases := []struct {
		tiles, offset int
	}{
		{4, 1}, {4, 3}, {3, 0}, {5, 2}, {7, 5},
	}
	for _, c := range cases {
		label := GoldenKey("tiles-offset", "all", uint64(c.tiles*100+c.offset))
		compareToGolden(t, want, digestAllTiled(t, c.tiles, c.offset), label)
	}
}
