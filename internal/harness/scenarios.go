package harness

import (
	"fmt"

	"mobic/internal/cluster"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
)

// PinnedDuration is the simulated seconds every pinned workload runs for.
// It is deliberately shorter than the paper's 900 s: determinism is a
// property of the event loop, not of the horizon, and a third of the full
// run keeps the golden-digest suite fast enough to live in the default
// `go test ./...` tier (and tolerable under -race).
const PinnedDuration = 300.0

// Workload is one named scenario the harness pins golden digests for.
type Workload struct {
	// Name identifies the workload in golden files ("fig3-tx100", ...).
	Name string
	// Params is the fully specified scenario (Seed is set per golden run).
	Params scenario.Params
}

// Workloads returns the pinned correctness workloads:
//
//   - fig3-tx100: the Figure 3 sweep's 100 m point on the paper's Table 1
//     base scenario (50 nodes, 670x670 m, MaxSpeed 20, PT 0);
//   - table1-tx250: the Table 1 base scenario at its 250 m sweep endpoint,
//     where the network is densest and delivery volume is highest;
//   - fig5-sparse-tx150: the Figure 5 low-density variant (1000x1000 m),
//     exercising the spatial grid with many boundary-straddling queries.
func Workloads() []Workload {
	fig3 := scenario.Base(100)
	fig3.Duration = PinnedDuration
	table1 := scenario.Base(250)
	table1.Duration = PinnedDuration
	fig5 := scenario.Sparse(150)
	fig5.Duration = PinnedDuration
	return []Workload{
		{Name: "fig3-tx100", Params: fig3},
		{Name: "table1-tx250", Params: table1},
		{Name: "fig5-sparse-tx150", Params: fig5},
	}
}

// Algorithms returns the algorithms the harness pins digests for: the
// paper's baseline (LCC), its contribution (MOBIC), and the static-weight
// generalized clustering baseline (DCA) — one per weight kind the election
// can run on.
func Algorithms() []cluster.Algorithm {
	return []cluster.Algorithm{cluster.LCC, cluster.MOBIC, cluster.DCA}
}

// GoldenSeeds are the scenario seeds each (workload, algorithm) pair is
// digested at.
func GoldenSeeds() []uint64 { return []uint64{1, 2} }

// Run is one pinned (workload, algorithm) pair.
type Run struct {
	// Workload is the scenario the pair runs on.
	Workload Workload
	// Algorithm is the clustering algorithm the pair runs.
	Algorithm cluster.Algorithm
}

// PolicyRuns returns the pinned clustering-policy runs, one per policy the
// engine grew beyond the paper's fixed-parameter protocol:
//
//   - policy-adaptive-bi: the Figure 3 base scenario at Tx 100 m with every
//     node floating its own hello interval in [0.5 s, 4 s] by measured
//     mobility (MOBIC election on the adaptively timed beacons);
//   - policy-reassign: the same scenario under adaptive Lowest-ID, whose
//     heads expire their tenure and re-enter election with a demoted
//     effective ID;
//   - policy-energy: the same scenario with a deliberately small 0.5 J
//     battery budget, so the run exercises the whole energy arc — quantized
//     election penalties as batteries drain, threshold-triggered head
//     rotation, and node death through the churn path before the horizon.
//
// Each run is digested at every golden seed, so the policies' event streams
// are pinned exactly like the base algorithm grid.
func PolicyRuns() []Run {
	adaptive := scenario.Base(100)
	adaptive.Duration = PinnedDuration
	adaptive.BIMin, adaptive.BIMax = 0.5, 4

	reassign := scenario.Base(100)
	reassign.Duration = PinnedDuration

	drained := scenario.Base(100)
	drained.Duration = PinnedDuration
	drained.EnergyJ = 0.5

	return []Run{
		{Workload{Name: "policy-adaptive-bi", Params: adaptive}, cluster.MOBIC},
		{Workload{Name: "policy-reassign", Params: reassign}, cluster.AdaptiveLowestID},
		{Workload{Name: "policy-energy", Params: drained}, cluster.MOBIC},
	}
}

// GoldenRuns enumerates every pinned (workload, algorithm) pair: the base
// workload × algorithm grid plus the clustering-policy runs. The golden and
// tiled-equivalence suites iterate exactly this list, so a policy added here
// is automatically pinned sequentially and proven tile-schedule independent.
func GoldenRuns() []Run {
	var runs []Run
	for _, w := range Workloads() {
		for _, alg := range Algorithms() {
			runs = append(runs, Run{Workload: w, Algorithm: alg})
		}
	}
	return append(runs, PolicyRuns()...)
}

// GoldenKey names one golden digest entry.
func GoldenKey(workload, algorithm string, seed uint64) string {
	return fmt.Sprintf("%s/%s/seed%d", workload, algorithm, seed)
}

// Config materializes one pinned run.
func (w Workload) Config(alg cluster.Algorithm, seed uint64) (simnet.Config, error) {
	p := w.Params
	p.Seed = seed
	return p.Config(alg)
}
