// Package harness is the simulator's correctness and regression subsystem.
// The paper's claims (Figures 3-6, Table 1) rest entirely on a stochastic
// simulator, so every result is only as trustworthy as the simulator's
// reproducibility. This package makes that reproducibility checkable:
//
//   - Digester folds the full event stream of a run (clusterhead elections,
//     membership changes, hello deliveries) into a canonical trace digest,
//     fed by the recording hook simnet.Config.Observer;
//   - golden digests per (scenario, algorithm, seed) are checked in under
//     testdata/ and verified on every test run, so any behavioural change
//     to the hot path is caught, intended or not;
//   - determinism tests prove the digest is invariant across repeated runs,
//     across experiment.Runner worker counts, and across spatial-grid vs
//     brute-force neighbour queries (a differential oracle for
//     internal/spatial);
//   - metamorphic tests check relations no correct simulator can violate
//     (node relabeling, duration extension, warmup accounting).
//
// Together with scripts/bench.sh's benchmark regression gate this is the
// safety net that makes aggressive performance work on simnet and spatial
// safe: a refactor that preserves digests and stays inside the benchmark
// tolerance is behaviour-preserving by construction.
package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"mobic/internal/simnet"
	"mobic/internal/trace"
)

// Digester folds a simulator event stream into a canonical digest. Feed it
// via simnet.Config.Observer and read the digest with Sum after the run.
//
// Only semantically meaningful events are hashed: clusterhead elections and
// resignations (KindRoleChange), membership changes (KindHeadChange), and
// hello deliveries (KindDeliver). Broadcasts, drops and timeouts are
// excluded — they are implied by the deliveries and would make the digest
// needlessly sensitive to bookkeeping-only changes.
//
// Events sharing one timestamp are sorted before hashing. Within a single
// scheduler event (one node's hello broadcast) the simulator may deliver to
// receivers in any order — the spatial grid yields candidates in bucket
// order, a brute-force scan in ID order — and that order is immaterial to
// the simulation's semantics, because deliveries at one instant touch
// disjoint receiver state. Canonicalizing it makes the digest a property of
// the run's behaviour, not of the index implementation, which is exactly
// what lets the grid-vs-brute-force differential test demand byte-equal
// digests.
//
// Digester is not safe for concurrent use; a simulation run is
// single-threaded, so one digester per Network is the natural shape.
type Digester struct {
	h     hash.Hash
	t     float64
	group []trace.Event
	count uint64
}

// NewDigester returns an empty digester.
func NewDigester() *Digester {
	return &Digester{h: sha256.New(), t: math.Inf(-1)}
}

// relevant reports whether ev contributes to the digest.
func relevant(k trace.Kind) bool {
	switch k {
	case trace.KindDeliver, trace.KindRoleChange, trace.KindHeadChange:
		return true
	default:
		return false
	}
}

// Observe feeds one simulator event. Events must arrive in non-decreasing
// timestamp order, which the scheduler guarantees.
func (d *Digester) Observe(ev trace.Event) {
	if !relevant(ev.Kind) {
		return
	}
	if ev.T != d.t {
		d.flush()
		d.t = ev.T
	}
	d.group = append(d.group, ev)
	d.count++
}

// flush canonicalizes and hashes the pending same-timestamp group.
func (d *Digester) flush() {
	if len(d.group) == 0 {
		return
	}
	g := d.group
	sort.Slice(g, func(i, j int) bool {
		if g[i].Kind != g[j].Kind {
			return g[i].Kind < g[j].Kind
		}
		if g[i].Node != g[j].Node {
			return g[i].Node < g[j].Node
		}
		if g[i].Other != g[j].Other {
			return g[i].Other < g[j].Other
		}
		return math.Float64bits(g[i].Value) < math.Float64bits(g[j].Value)
	})
	var buf [25]byte
	for _, ev := range g {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(ev.T))
		buf[8] = byte(ev.Kind)
		binary.LittleEndian.PutUint32(buf[9:], uint32(ev.Node))
		binary.LittleEndian.PutUint32(buf[13:], uint32(ev.Other))
		binary.LittleEndian.PutUint64(buf[17:], math.Float64bits(ev.Value))
		d.h.Write(buf[:])
	}
	d.group = d.group[:0]
}

// Count returns the number of events folded in so far.
func (d *Digester) Count() uint64 { return d.count }

// Sum flushes any pending group and returns the hex digest. Call it once,
// after the run completed; further Observe calls after Sum are undefined.
func (d *Digester) Sum() string {
	d.flush()
	return hex.EncodeToString(d.h.Sum(nil))
}

// Digest is one run's canonical trace digest plus the event count that
// produced it. The count makes golden-file diffs legible: a digest mismatch
// with equal counts means changed values, a different count means changed
// structure.
type Digest struct {
	// SHA256 is the hex canonical trace digest.
	SHA256 string `json:"sha256"`
	// Events is the number of digest-relevant events folded in.
	Events uint64 `json:"events"`
}

// DigestRun builds and runs cfg with a fresh digester attached and returns
// the run's canonical digest alongside its result. Any observer already in
// cfg is chained after the digester, so callers can still tap the stream.
func DigestRun(cfg simnet.Config) (Digest, *simnet.Result, error) {
	d := NewDigester()
	prev := cfg.Observer
	cfg.Observer = func(ev trace.Event) {
		d.Observe(ev)
		if prev != nil {
			prev(ev)
		}
	}
	net, err := simnet.New(cfg)
	if err != nil {
		return Digest{}, nil, err
	}
	res, err := net.Run()
	if err != nil {
		return Digest{}, nil, err
	}
	return Digest{SHA256: d.Sum(), Events: d.Count()}, res, nil
}
