package harness

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden digest file")

const goldenPath = "testdata/digests.json"

// computeGoldenDigests runs every pinned (workload, algorithm, seed) cell
// and returns its digest, keyed by GoldenKey. Runs execute in parallel —
// each is an independent single-threaded simulation.
func computeGoldenDigests(t *testing.T) map[string]Digest {
	t.Helper()
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		out = make(map[string]Digest)
	)
	for _, r := range GoldenRuns() {
		for _, seed := range GoldenSeeds() {
			w, alg, seed := r.Workload, r.Algorithm, seed
			wg.Add(1)
			go func() {
				defer wg.Done()
				cfg, err := w.Config(alg, seed)
				if err != nil {
					t.Errorf("%s/%s: %v", w.Name, alg.Name, err)
					return
				}
				dig, _, err := DigestRun(cfg)
				if err != nil {
					t.Errorf("%s/%s: %v", w.Name, alg.Name, err)
					return
				}
				mu.Lock()
				out[GoldenKey(w.Name, alg.Name, seed)] = dig
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	return out
}

// TestGoldenDigests is the cross-run determinism anchor: the digest of every
// pinned workload must match the committed golden file byte for byte. An
// intentional behaviour change refreshes the file with
//
//	go test ./internal/harness -run TestGoldenDigests -update
//
// and the diff of testdata/digests.json documents exactly which (workload,
// algorithm, seed) cells moved.
func TestGoldenDigests(t *testing.T) {
	got := computeGoldenDigests(t)
	if t.Failed() {
		return
	}

	if *update {
		// encoding/json writes map keys sorted, so the file diffs cleanly.
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d digests", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (refresh with -update): %v", err)
	}
	var want map[string]Digest
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, harness pins %d (refresh with -update)", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: in golden file but no longer pinned", key)
			continue
		}
		if g != w {
			t.Errorf("%s: digest drifted\n  golden: %s (%d events)\n  got:    %s (%d events)",
				key, w.SHA256, w.Events, g.SHA256, g.Events)
		}
	}
}
