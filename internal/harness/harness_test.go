package harness

import (
	"testing"

	"mobic/internal/trace"
)

// Two streams that present the same same-instant events in different orders
// must digest identically: within one scheduler instant, delivery order is
// an implementation detail (grid bucket order vs ID order).
func TestDigesterCanonicalizesSameTimestampOrder(t *testing.T) {
	evs := []trace.Event{
		{T: 1.5, Kind: trace.KindDeliver, Node: 3, Other: 7, Value: 1e-9},
		{T: 1.5, Kind: trace.KindDeliver, Node: 3, Other: 2, Value: 2e-9},
		{T: 1.5, Kind: trace.KindRoleChange, Node: 3, Other: -1, Value: 1},
		{T: 1.5, Kind: trace.KindDeliver, Node: 3, Other: 9, Value: 3e-9},
	}
	a := NewDigester()
	for _, ev := range evs {
		a.Observe(ev)
	}
	b := NewDigester()
	for i := len(evs) - 1; i >= 0; i-- {
		b.Observe(evs[i])
	}
	if a.Sum() != b.Sum() {
		t.Error("same-timestamp permutation changed the digest")
	}
	if a.Count() != b.Count() || a.Count() != 4 {
		t.Errorf("counts diverged: %d vs %d", a.Count(), b.Count())
	}
}

// Events at different timestamps are order-significant: swapping them is a
// genuine behavioural difference and must change the digest.
func TestDigesterDistinguishesCrossTimestampOrder(t *testing.T) {
	x := trace.Event{T: 1.0, Kind: trace.KindDeliver, Node: 1, Other: 2, Value: 1e-9}
	y := trace.Event{T: 2.0, Kind: trace.KindDeliver, Node: 1, Other: 2, Value: 1e-9}

	a := NewDigester()
	a.Observe(x)
	a.Observe(y)
	b := NewDigester()
	yx, xy := y, x
	yx.T, xy.T = 1.0, 2.0 // same timestamps, swapped payload order
	b.Observe(yx)
	b.Observe(xy)
	if a.Sum() != b.Sum() {
		// identical payloads at identical times — must still agree
		t.Error("digest depends on more than (time, payload)")
	}

	c := NewDigester()
	c.Observe(x)
	d := NewDigester()
	d.Observe(y)
	if c.Sum() == d.Sum() {
		t.Error("digest ignores event timestamps")
	}
}

// Bookkeeping-only kinds (broadcasts, drops, timeouts) must not perturb the
// digest: they are implied by deliveries and would couple the digest to the
// loss model's internals.
func TestDigesterIgnoresBookkeepingKinds(t *testing.T) {
	deliver := trace.Event{T: 1.0, Kind: trace.KindDeliver, Node: 1, Other: 2, Value: 1e-9}
	a := NewDigester()
	a.Observe(deliver)

	b := NewDigester()
	b.Observe(trace.Event{T: 0.5, Kind: trace.KindBroadcast, Node: 1, Other: -1})
	b.Observe(deliver)
	b.Observe(trace.Event{T: 1.0, Kind: trace.KindDrop, Node: 1, Other: 3})
	b.Observe(trace.Event{T: 2.0, Kind: trace.KindTimeout, Node: 2, Other: 1})

	if a.Sum() != b.Sum() {
		t.Error("bookkeeping events leaked into the digest")
	}
	if b.Count() != 1 {
		t.Errorf("count includes irrelevant events: %d", b.Count())
	}
}

// A changed delivery value (received power) is a behavioural change — the
// mobility metric is computed from exactly these values — so it must change
// the digest.
func TestDigesterSensitiveToValues(t *testing.T) {
	a := NewDigester()
	a.Observe(trace.Event{T: 1.0, Kind: trace.KindDeliver, Node: 1, Other: 2, Value: 1e-9})
	b := NewDigester()
	b.Observe(trace.Event{T: 1.0, Kind: trace.KindDeliver, Node: 1, Other: 2, Value: 2e-9})
	if a.Sum() == b.Sum() {
		t.Error("digest ignores delivery values")
	}
}
