package harness

import (
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/energy"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
	"mobic/internal/trace"
)

// digestParams materializes p for alg and returns its trace digest.
func digestParams(t *testing.T, p scenario.Params, alg cluster.Algorithm) Digest {
	t.Helper()
	cfg, err := p.Config(alg)
	if err != nil {
		t.Fatal(err)
	}
	dig, _, err := DigestRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dig
}

// TestAdaptiveBIFloorEqualsCeilingMatchesFixedBI is the adaptive broadcast
// period's degenerate-band oracle: with BIMin == BIMax == BI the adaptive
// controller has nowhere to move, so the beacon schedule — and therefore the
// whole event stream — must be bit-identical to the fixed-interval engine.
// This is the strongest possible statement that enabling the policy at a
// pinned interval costs nothing semantically: the controller's presence is
// invisible until the band actually opens.
func TestAdaptiveBIFloorEqualsCeilingMatchesFixedBI(t *testing.T) {
	for _, seed := range GoldenSeeds() {
		fixed := scenario.Base(100)
		fixed.Duration = PinnedDuration
		fixed.Seed = seed

		pinned := fixed
		pinned.BIMin, pinned.BIMax = fixed.BI, fixed.BI

		a := digestParams(t, fixed, cluster.MOBIC)
		b := digestParams(t, pinned, cluster.MOBIC)
		if a != b {
			t.Errorf("seed %d: BIMin == BIMax == BI diverged from the fixed interval\n  fixed:    %+v\n  adaptive: %+v",
				seed, a, b)
		}
	}
}

// TestAdaptiveBIDisabledMatchesBaseline proves the policy-off differential:
// a config with no Adaptive block is bit-identical to today's engine — here
// anchored to the committed golden digest, so "disabled" means "exactly the
// pre-policy behaviour", not merely "self-consistent".
func TestAdaptiveBIDisabledMatchesBaseline(t *testing.T) {
	want := loadGoldenDigests(t)
	p := scenario.Base(100)
	p.Duration = PinnedDuration
	p.Seed = 1
	got := digestParams(t, p, cluster.MOBIC)
	key := GoldenKey("fig3-tx100", cluster.MOBIC.Name, 1)
	if got != want[key] {
		t.Errorf("policy-free run drifted from golden %s:\n  golden: %+v\n  got:    %+v", key, want[key], got)
	}
}

// TestEnergyScaleInvariance is the energy model's unit-independence oracle:
// multiplying every joule-denominated parameter by the same factor changes
// no election (they read the battery fraction) and no death time (the
// zero crossing scales with the budget), so the digest must not move. The
// factor is a power of two, which makes the scaled float arithmetic exact —
// the oracle tests the model's structure, not accumulated rounding.
func TestEnergyScaleInvariance(t *testing.T) {
	const k = 4
	for _, seed := range GoldenSeeds() {
		p := scenario.Base(100)
		p.Duration = PinnedDuration
		p.Seed = seed
		p.EnergyJ = 0.5

		cfg, err := p.Config(cluster.MOBIC)
		if err != nil {
			t.Fatal(err)
		}
		base, _, err := DigestRun(cfg)
		if err != nil {
			t.Fatal(err)
		}

		scaledCfg, err := p.Config(cluster.MOBIC)
		if err != nil {
			t.Fatal(err)
		}
		ec := scaledCfg.Energy.Scale(k)
		scaledCfg.Energy = &ec
		scaled, _, err := DigestRun(scaledCfg)
		if err != nil {
			t.Fatal(err)
		}
		if base != scaled {
			t.Errorf("seed %d: scaling the energy unit by %d changed the run\n  base:   %+v\n  scaled: %+v",
				seed, k, base, scaled)
		}
	}
}

// TestEnergyInertMatchesDisabled is the energy model's policy-off
// differential: a battery too large to deplete within the horizon, with the
// election weighting switched off, must leave the event stream bit-identical
// to a run with no energy model at all — drain accounting is pure
// bookkeeping until it can influence an election, a rotation or a death.
func TestEnergyInertMatchesDisabled(t *testing.T) {
	p := scenario.Base(100)
	p.Duration = PinnedDuration
	p.Seed = 1

	cfg, err := p.Config(cluster.MOBIC)
	if err != nil {
		t.Fatal(err)
	}
	disabled, _, err := DigestRun(cfg)
	if err != nil {
		t.Fatal(err)
	}

	inertCfg, err := p.Config(cluster.MOBIC)
	if err != nil {
		t.Fatal(err)
	}
	ec := energy.Default()
	ec.InitialJ = 1e9
	ec.ElectionWeight = 0
	inertCfg.Energy = &ec
	inert, _, err := DigestRun(inertCfg)
	if err != nil {
		t.Fatal(err)
	}
	if disabled != inert {
		t.Errorf("inert energy model changed the run\n  disabled: %+v\n  inert:    %+v", disabled, inert)
	}
}

// TestReassignRoundsZeroMatchesLCC is adaptive Lowest-ID's policy-off
// differential: with tenure expiry disabled (ReassignRounds = 0) the
// effective ID never moves, so the algorithm must collapse to plain LCC —
// same elections, same deliveries, bit for bit.
func TestReassignRoundsZeroMatchesLCC(t *testing.T) {
	frozen := cluster.AdaptiveLowestID
	frozen.ReassignRounds = 0
	for _, seed := range GoldenSeeds() {
		p := scenario.Base(100)
		p.Duration = PinnedDuration
		p.Seed = seed
		a := digestParams(t, p, cluster.LCC)
		b := digestParams(t, p, frozen)
		if a != b {
			t.Errorf("seed %d: ReassignRounds = 0 diverged from LCC\n  lcc:      %+v\n  reassign: %+v",
				seed, a, b)
		}
	}
}

// headDuty runs cfg and returns the seconds each node spent as clusterhead
// before the cutoff time, reconstructed from the role-change event stream.
func headDuty(t *testing.T, cfg simnet.Config, cutoff float64) []float64 {
	t.Helper()
	duty := make([]float64, cfg.N)
	since := make([]float64, cfg.N)
	isHead := make([]bool, cfg.N)
	prev := cfg.Observer
	cfg.Observer = func(ev trace.Event) {
		if ev.Kind == trace.KindRoleChange {
			id := ev.Node
			head := ev.Value == float64(cluster.RoleHead)
			if isHead[id] && !head {
				duty[id] += min(ev.T, cutoff) - min(since[id], cutoff)
			}
			if !isHead[id] && head {
				since[id] = ev.T
			}
			isHead[id] = head
		}
		if prev != nil {
			prev(ev)
		}
	}
	net, err := simnet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	for id := range duty {
		if isHead[id] {
			duty[id] += cutoff - min(since[id], cutoff)
		}
	}
	return duty
}

// TestAdaptiveIDElectionFollowsLabels is the deliberate inverse of the
// MOBIC relabeling oracle: adaptive Lowest-ID elects on identifiers, so node
// relabeling must NOT be invariant. Reversing which node rides which
// trajectory keeps the physical scenario identical, yet the head role must
// keep chasing the low labels — the duty-weighted mean head ID stays well
// below the population midpoint in both runs, which means relabeling moved
// the role onto physically different nodes. Duty time, not election counts,
// carries the signal: the startup storm makes every isolated node a head
// once, but only local label minima survive contention and accumulate
// tenure. The window ends before the first tenure expiry (ReassignRounds
// beacons in), because past that point the rotation policy deliberately
// erodes the bias — spreading the role across labels is its whole job. A
// regression that ran the rotation from t = 0, or let a measured weight
// displace the ID in the election, erases the early bias and fails here.
func TestAdaptiveIDElectionFollowsLabels(t *testing.T) {
	p := scenario.Base(100)
	p.Duration = PinnedDuration
	p.Seed = 1
	cfg, err := p.Config(cluster.AdaptiveLowestID)
	if err != nil {
		t.Fatal(err)
	}
	// Everything before the first possible tenure expiry is pure Lowest-ID.
	cutoff := float64(cluster.AdaptiveLowestID.ReassignRounds) * p.BI

	perm := make([]int, cfg.N)
	for i := range perm {
		perm[i] = cfg.N - 1 - i
	}
	relabeled := cfg
	relabeled.Mobility = &permutedMobility{Model: cfg.Mobility, perm: perm}

	midpoint := float64(cfg.N-1) / 2
	for name, c := range map[string]simnet.Config{"base": cfg, "relabeled": relabeled} {
		duty := headDuty(t, c, cutoff)
		var weighted, total float64
		for id, d := range duty {
			weighted += float64(id) * d
			total += d
		}
		if total == 0 {
			t.Fatalf("%s: no head duty recorded before t=%g", name, cutoff)
		}
		mean := weighted / total
		t.Logf("%s: %.0f head-seconds before t=%g, duty-weighted mean head ID %.1f (midpoint %.1f)",
			name, total, cutoff, mean, midpoint)
		if mean > midpoint-5 {
			t.Errorf("%s: duty-weighted mean head ID %.1f shows no low-label bias (midpoint %.1f); the election no longer follows labels",
				name, mean, midpoint)
		}
	}
}
