package harness

import (
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/geom"
	"mobic/internal/mobility"
	"mobic/internal/simnet"
)

// orderSensitiveConfig is a short dense scenario tuned to expose iteration-
// order bugs: 20 nodes packed inside one transmission range, so every
// neighbor table holds many entries and every weight computation folds many
// floating-point terms. If any fold still ran in Go's randomized map order,
// the low bits of the weights — and with them election outcomes and the
// digest — would differ between repetitions.
func orderSensitiveConfig(t *testing.T, alg cluster.Algorithm) simnet.Config {
	t.Helper()
	area := geom.Square(400)
	return simnet.Config{
		N:         20,
		Area:      area,
		Duration:  60,
		Seed:      7,
		Algorithm: alg,
		Mobility:  &mobility.RandomWaypoint{Area: area, MaxSpeed: 20},
		TxRange:   250,
	}
}

// runRepeatedDigests runs the same config `runs` times and fails on the
// first digest that differs from the first run's.
func runRepeatedDigests(t *testing.T, cfg simnet.Config, runs int) {
	t.Helper()
	first, _, err := DigestRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Events == 0 {
		t.Fatal("digest saw no events; scenario too small to prove anything")
	}
	for i := 1; i < runs; i++ {
		d, _, err := DigestRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d != first {
			t.Fatalf("run %d diverged from run 0:\n  first: %+v\n  later: %+v", i, first, d)
		}
	}
}

// TestOracleMobilityDigestOrderIndependent is the regression test for the
// oracleMobility map-order bug: the GPS-oracle weight sums squared range
// rates over the neighbor table, and summing in map order made repeated runs
// of the same seed differ in the last float bits — enough to flip elections.
// 200 repetitions give randomized map iteration ample room to misbehave.
func TestOracleMobilityDigestOrderIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("200 repeated runs is long-mode work")
	}
	alg, err := cluster.ByName("mobic-oracle")
	if err != nil {
		t.Fatal(err)
	}
	runRepeatedDigests(t, orderSensitiveConfig(t, alg), 200)
}

// TestDegreeDigestOrderIndependent covers the KindDegree weight the same
// way: its value is an integer neighbor count, but the views handed to the
// clustering step used to be built in map order, so tie-breaks and timeout
// emission were still order-exposed.
func TestDegreeDigestOrderIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated runs are long-mode work")
	}
	runRepeatedDigests(t, orderSensitiveConfig(t, cluster.MaxConnectivity), 200)
}

// TestMobicDigestOrderIndependentWithCollisions exercises the measured
// (RxPr-ratio) metric with the MAC collision model on, covering the
// core.Tracker pairwise fold and the timeout purge ordering together.
func TestMobicDigestOrderIndependentWithCollisions(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated runs are long-mode work")
	}
	cfg := orderSensitiveConfig(t, cluster.MOBIC)
	cfg.HelloCollisions = true
	runRepeatedDigests(t, cfg, 50)
}
