package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"mobic/internal/experiment"
	"mobic/internal/simnet"
	"mobic/internal/trace"
)

// TestDigestStableAcrossRepeatedRuns proves the most basic determinism
// claim: the same config and seed produce byte-identical digests on two
// fresh Network instances in the same process.
func TestDigestStableAcrossRepeatedRuns(t *testing.T) {
	w := Workloads()[0] // fig3-tx100
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			cfg, err := w.Config(alg, 1)
			if err != nil {
				t.Fatal(err)
			}
			first, res1, err := DigestRun(cfg)
			if err != nil {
				t.Fatal(err)
			}
			second, res2, err := DigestRun(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if first != second {
				t.Errorf("repeated run diverged: %+v vs %+v", first, second)
			}
			if res1.EventsFired != res2.EventsFired {
				t.Errorf("event counts diverged: %d vs %d", res1.EventsFired, res2.EventsFired)
			}
			if first.Events == 0 {
				t.Error("digest saw no events; observer hook is not wired")
			}
		})
	}
}

// digestingRunner returns a Runner whose Mutate attaches a fresh digester
// to every materialized cell config, and the map the digests land in, keyed
// by (algorithm, seed, tx). Mutate runs during job materialization (before
// the worker pool starts) but the map is still locked: digest completion is
// read after RunCells returns.
func digestingRunner(workers int) (experiment.Runner, func() map[string]Digest) {
	var mu sync.Mutex
	digesters := make(map[string]*Digester)
	r := experiment.Runner{
		Seeds:    2,
		BaseSeed: 1,
		Workers:  workers,
		Mutate: func(cfg *simnet.Config) {
			d := NewDigester()
			key := fmt.Sprintf("%s/seed%d/tx%g", cfg.Algorithm.Name, cfg.Seed, cfg.TxRange)
			mu.Lock()
			digesters[key] = d
			mu.Unlock()
			cfg.Observer = d.Observe
		},
	}
	return r, func() map[string]Digest {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[string]Digest, len(digesters))
		for k, d := range digesters {
			out[k] = Digest{SHA256: d.Sum(), Events: d.Count()}
		}
		return out
	}
}

// TestDigestInvariantAcrossWorkerCounts proves that the experiment
// harness's parallelism is pure scheduling: running the same sweep with one
// worker and with GOMAXPROCS workers yields byte-identical per-run digests
// and identical aggregate statistics. This is what licenses the service and
// CLI to pick worker counts freely.
func TestDigestInvariantAcrossWorkerCounts(t *testing.T) {
	var cells []experiment.Cell
	for _, w := range Workloads()[:2] { // fig3-tx100 and table1-tx250
		for _, alg := range Algorithms() {
			cells = append(cells, experiment.Cell{Params: w.Params, Algorithm: alg})
		}
	}

	serialRunner, serialDigests := digestingRunner(1)
	serialStats, err := serialRunner.RunCells(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	parallelRunner, parallelDigests := digestingRunner(runtime.GOMAXPROCS(0))
	parallelStats, err := parallelRunner.RunCells(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}

	serial, parallel := serialDigests(), parallelDigests()
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("digest sets differ in size: %d vs %d", len(serial), len(parallel))
	}
	for key, sd := range serial {
		pd, ok := parallel[key]
		if !ok {
			t.Errorf("%s: missing from parallel run", key)
			continue
		}
		if sd != pd {
			t.Errorf("%s: Workers=1 and Workers=N diverged:\n  serial:   %+v\n  parallel: %+v", key, sd, pd)
		}
	}
	for i := range serialStats {
		if serialStats[i].CHChanges != parallelStats[i].CHChanges ||
			serialStats[i].AvgClusters != parallelStats[i].AvgClusters {
			t.Errorf("cell %d aggregates diverged across worker counts", i)
		}
	}
}

// TestDigestInvariantGridVsBruteForce is the differential oracle for
// internal/spatial: delivering hellos through the spatial-grid candidate
// query and through an exhaustive O(N) scan must produce byte-identical
// digests. Any grid bug that loses, duplicates, or reorders a delivery
// across timestamps shows up here.
func TestDigestInvariantGridVsBruteForce(t *testing.T) {
	for _, w := range Workloads()[:2] { // fig3-tx100 and table1-tx250
		for _, alg := range Algorithms() {
			w, alg := w, alg
			t.Run(w.Name+"/"+alg.Name, func(t *testing.T) {
				t.Parallel()
				cfg, err := w.Config(alg, 1)
				if err != nil {
					t.Fatal(err)
				}
				gridDigest, _, err := DigestRun(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.ForceBruteForce = true
				bruteDigest, _, err := DigestRun(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if gridDigest != bruteDigest {
					t.Errorf("spatial grid diverged from brute force:\n  grid:  %+v\n  brute: %+v",
						gridDigest, bruteDigest)
				}
			})
		}
	}
}

// TestObserverSeesCompleteStream cross-checks the observer hook against the
// trace ring buffer: with a ring large enough to never wrap, both must see
// exactly the same events.
func TestObserverSeesCompleteStream(t *testing.T) {
	cfg, err := Workloads()[0].Config(Algorithms()[1], 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Duration = 60 // enough beacons to be meaningful, cheap enough to buffer
	log := trace.New(1 << 20)
	cfg.Trace = log
	var observed []trace.Event
	cfg.Observer = func(ev trace.Event) { observed = append(observed, ev) }
	net, err := simnet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if log.Dropped() != 0 {
		t.Fatalf("ring wrapped (%d dropped); enlarge the buffer", log.Dropped())
	}
	ring := log.Events()
	if len(ring) != len(observed) {
		t.Fatalf("observer saw %d events, ring holds %d", len(observed), len(ring))
	}
	for i := range ring {
		if ring[i] != observed[i] {
			t.Fatalf("event %d differs: ring %+v, observer %+v", i, ring[i], observed[i])
		}
	}
}
