package scenario

import (
	"testing"

	"mobic/internal/cluster"
)

func TestBaseMatchesTable1(t *testing.T) {
	p := Base(150)
	if p.N != 50 || p.Side != 670 || p.MaxSpeed != 20 || p.Pause != 0 {
		t.Errorf("Base = %+v", p)
	}
	if p.BI != 2.0 || p.TP != 3.0 || p.CCI != 4.0 || p.Duration != 900 {
		t.Errorf("Base timers = %+v", p)
	}
	if p.TxRange != 150 {
		t.Errorf("TxRange = %v", p.TxRange)
	}
}

func TestSparse(t *testing.T) {
	p := Sparse(100)
	if p.Side != 1000 {
		t.Errorf("Sparse side = %v, want 1000", p.Side)
	}
	if p.N != 50 {
		t.Error("Sparse keeps N = 50 (density change, not scale change)")
	}
}

func TestMobilityPreset(t *testing.T) {
	p := Mobility(30, 30)
	if p.TxRange != 250 {
		t.Errorf("Mobility TxRange = %v, want 250 (Figure 6 uses Tx=250)", p.TxRange)
	}
	if p.MaxSpeed != 30 || p.Pause != 30 {
		t.Errorf("Mobility = %+v", p)
	}
}

func TestValidate(t *testing.T) {
	good := Base(100)
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{name: "zero N", mutate: func(p *Params) { p.N = 0 }},
		{name: "zero side", mutate: func(p *Params) { p.Side = 0 }},
		{name: "zero speed", mutate: func(p *Params) { p.MaxSpeed = 0 }},
		{name: "negative pause", mutate: func(p *Params) { p.Pause = -1 }},
		{name: "zero range", mutate: func(p *Params) { p.TxRange = 0 }},
		{name: "zero duration", mutate: func(p *Params) { p.Duration = 0 }},
		{name: "negative BI floor", mutate: func(p *Params) { p.BIMin = -1; p.BIMax = 2 }},
		{name: "BI floor without ceiling", mutate: func(p *Params) { p.BIMin = 1 }},
		{name: "BI ceiling without floor", mutate: func(p *Params) { p.BIMax = 4 }},
		{name: "inverted BI bounds", mutate: func(p *Params) { p.BIMin = 4; p.BIMax = 1 }},
		{name: "negative energy", mutate: func(p *Params) { p.EnergyJ = -5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := Base(100)
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate should reject")
			}
		})
	}
}

func TestConfigMaterialization(t *testing.T) {
	p := Base(150)
	p.Seed = 42
	cfg, err := p.Config(cluster.MOBIC)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N != 50 || cfg.TxRange != 150 || cfg.Seed != 42 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.Algorithm.Policy.CCI != 4.0 {
		t.Errorf("MOBIC CCI = %v, want Table 1's 4.0", cfg.Algorithm.Policy.CCI)
	}
	if cfg.Mobility == nil || cfg.Mobility.Name() != "waypoint" {
		t.Error("mobility should be random waypoint")
	}
	if !cfg.Area.Valid() || cfg.Area.Width() != 670 {
		t.Errorf("area = %v", cfg.Area)
	}
}

func TestConfigCCIOverride(t *testing.T) {
	p := Base(150)
	p.CCI = 8
	cfg, err := p.Config(cluster.MOBIC)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Algorithm.Policy.CCI != 8 {
		t.Errorf("CCI override = %v, want 8", cfg.Algorithm.Policy.CCI)
	}
	// ID algorithms have no CCI and must stay that way.
	cfgLCC, err := p.Config(cluster.LCC)
	if err != nil {
		t.Fatal(err)
	}
	if cfgLCC.Algorithm.Policy.CCI != 0 {
		t.Errorf("LCC CCI = %v, want 0", cfgLCC.Algorithm.Policy.CCI)
	}
}

func TestConfigPolicyMaterialization(t *testing.T) {
	p := Base(150)
	cfg, err := p.Config(cluster.MOBIC)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Adaptive != nil || cfg.Energy != nil {
		t.Errorf("default params must not enable policies, got adaptive=%v energy=%v",
			cfg.Adaptive, cfg.Energy)
	}

	p.BIMin, p.BIMax = 0.5, 4
	p.EnergyJ = 12
	cfg, err = p.Config(cluster.MOBIC)
	if err != nil {
		t.Fatal(err)
	}
	a := cfg.Adaptive
	if a == nil || a.Min != 0.5 || a.Max != 4 {
		t.Fatalf("adaptive BI = %+v, want bounds [0.5, 4]", a)
	}
	if a.MRef != DefaultAdaptiveMRef || a.Hysteresis != DefaultAdaptiveHysteresis {
		t.Errorf("adaptive defaults = %+v, want MRef %g, hysteresis %g",
			a, DefaultAdaptiveMRef, DefaultAdaptiveHysteresis)
	}
	e := cfg.Energy
	if e == nil || e.InitialJ != 12 {
		t.Fatalf("energy = %+v, want InitialJ 12", e)
	}
	if err := e.Validate(); err != nil {
		t.Errorf("materialized energy config invalid: %v", err)
	}
}

func TestConfigRejectsInvalid(t *testing.T) {
	p := Base(150)
	p.N = -1
	if _, err := p.Config(cluster.MOBIC); err == nil {
		t.Error("Config should propagate validation errors")
	}
}

func TestSweeps(t *testing.T) {
	txs := TxSweep()
	if txs[0] != 10 || txs[len(txs)-1] != 250 {
		t.Errorf("TxSweep bounds = %v..%v, want 10..250", txs[0], txs[len(txs)-1])
	}
	for i := 1; i < len(txs); i++ {
		if txs[i] <= txs[i-1] {
			t.Error("TxSweep must be strictly increasing")
		}
	}
	speeds := SpeedSweep()
	if len(speeds) != 3 || speeds[0] != 1 || speeds[1] != 20 || speeds[2] != 30 {
		t.Errorf("SpeedSweep = %v, want [1 20 30]", speeds)
	}
}

func TestTable1Complete(t *testing.T) {
	rows := Table1()
	if len(rows) != 9 {
		t.Fatalf("Table 1 has %d rows, want 9", len(rows))
	}
	want := map[string]string{
		"N": "50", "BI": "2.0 sec", "TP": "3.0 sec",
		"CCI": "4.0 sec", "S": "900 sec",
	}
	for _, row := range rows {
		if v, ok := want[row.Symbol]; ok && row.Value != v {
			t.Errorf("Table1[%s] = %q, want %q", row.Symbol, row.Value, v)
		}
	}
}
