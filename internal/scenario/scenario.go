// Package scenario encodes the paper's Table 1 simulation parameters and
// the figure-specific presets built from them. Every experiment in the
// harness starts from one of these presets, so the mapping from the paper's
// evaluation to runnable configurations lives in exactly one place.
package scenario

import (
	"fmt"

	"mobic/internal/cluster"
	"mobic/internal/energy"
	"mobic/internal/geom"
	"mobic/internal/mobility"
	"mobic/internal/simnet"
)

// Table 1 constants.
const (
	// DefaultN is the number of nodes.
	DefaultN = 50
	// SmallSide is the 670x670 m scenario side.
	SmallSide = 670.0
	// LargeSide is the 1000x1000 m scenario side.
	LargeSide = 1000.0
	// DefaultBI is the broadcast interval in seconds.
	DefaultBI = 2.0
	// DefaultTP is the neighbor timeout period in seconds.
	DefaultTP = 3.0
	// DefaultCCI is the cluster contention interval in seconds.
	DefaultCCI = 4.0
	// DefaultDuration is the simulation time S in seconds.
	DefaultDuration = 900.0
	// DefaultAdaptiveMRef is the mobility scale of the adaptive broadcast
	// period: at aggregate mobility 4 (a firmly mobile neighborhood on the
	// paper's dB scale) the interval sits halfway between BIMin and BIMax.
	DefaultAdaptiveMRef = 4.0
	// DefaultAdaptiveHysteresis is the adaptive period's relaxation band:
	// the interval only grows once the target clears the current value by
	// 25%, so mobility flutter does not thrash the beacon schedule.
	DefaultAdaptiveHysteresis = 0.25
)

// TxSweep is the transmission-range sweep of Figures 3-5 (Table 1: 10-250 m).
func TxSweep() []float64 {
	return []float64{10, 25, 50, 75, 100, 125, 150, 175, 200, 225, 250}
}

// SpeedSweep is the MaxSpeed sweep of Figure 6 (Table 1: 1, 20, 30 m/s).
func SpeedSweep() []float64 { return []float64{1, 20, 30} }

// Params is one fully specified random-waypoint scenario, i.e. one point of
// the paper's evaluation grid.
type Params struct {
	// N is the number of nodes.
	N int
	// Side is the square scenario's side length in meters.
	Side float64
	// MaxSpeed is the waypoint speed cap in m/s.
	MaxSpeed float64
	// Pause is the waypoint pause time PT in seconds.
	Pause float64
	// TxRange is the transmission range in meters.
	TxRange float64
	// BI, TP and CCI are the protocol timers in seconds.
	BI, TP, CCI float64
	// Duration is the simulated time in seconds.
	Duration float64
	// Seed roots all randomness.
	Seed uint64
	// Warmup excludes early events from metrics (0 counts everything).
	Warmup float64
	// BIMin and BIMax, when both > 0, enable the adaptive broadcast period:
	// each node's hello interval floats in [BIMin, BIMax] with its own
	// aggregate mobility (high mobility tightens toward BIMin) behind a 25%
	// relaxation hysteresis band. BIMin == BIMax pins every node to that
	// fixed interval — the schedule is identical to a non-adaptive run at
	// the same BI, the metamorphic fixed point the harness digests. Both 0
	// (the default) keeps the fixed Table 1 interval BI.
	BIMin, BIMax float64
	// EnergyJ, when > 0, enables the battery model with this initial budget
	// in joules per node and the package defaults for radio costs and
	// election weighting: draining batteries worsen election weights, heads
	// under the rotation threshold hand the role off, and depleted nodes
	// die through the churn path. 0 (the default) disables the model.
	EnergyJ float64
}

// Base returns Table 1's default parameter set for the 670x670 scenario
// with MaxSpeed 20 and constant mobility (PT = 0), i.e. the Figure 3 and 4
// workload, at the given transmission range.
func Base(txRange float64) Params {
	return Params{
		N:        DefaultN,
		Side:     SmallSide,
		MaxSpeed: 20,
		Pause:    0,
		TxRange:  txRange,
		BI:       DefaultBI,
		TP:       DefaultTP,
		CCI:      DefaultCCI,
		Duration: DefaultDuration,
	}
}

// Sparse returns the Figure 5 workload: the same as Base but on the
// 1000x1000 m area (lower node density).
func Sparse(txRange float64) Params {
	p := Base(txRange)
	p.Side = LargeSide
	return p
}

// Mobility returns the Figure 6 workload: Tx = 250 m with the given speed
// cap and pause time.
func Mobility(maxSpeed, pause float64) Params {
	p := Base(250)
	p.MaxSpeed = maxSpeed
	p.Pause = pause
	return p
}

// Validate checks the parameter set.
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("scenario: N = %d", p.N)
	case p.Side <= 0:
		return fmt.Errorf("scenario: side = %g", p.Side)
	case p.MaxSpeed <= 0:
		return fmt.Errorf("scenario: max speed = %g", p.MaxSpeed)
	case p.Pause < 0:
		return fmt.Errorf("scenario: pause = %g", p.Pause)
	case p.TxRange <= 0:
		return fmt.Errorf("scenario: tx range = %g", p.TxRange)
	case p.Duration <= 0:
		return fmt.Errorf("scenario: duration = %g", p.Duration)
	case p.BIMin < 0 || p.BIMax < 0:
		return fmt.Errorf("scenario: adaptive BI bounds [%g, %g] must be >= 0", p.BIMin, p.BIMax)
	case (p.BIMin > 0) != (p.BIMax > 0):
		return fmt.Errorf("scenario: adaptive BI needs both bounds, got [%g, %g]", p.BIMin, p.BIMax)
	case p.BIMin > p.BIMax:
		return fmt.Errorf("scenario: adaptive BI bounds inverted [%g, %g]", p.BIMin, p.BIMax)
	case p.EnergyJ < 0:
		return fmt.Errorf("scenario: energy budget = %g J", p.EnergyJ)
	}
	return nil
}

// Config materializes the scenario for the given algorithm. The CCI
// parameter applies only to algorithms that use contention deferral (it
// overrides a MOBIC-family algorithm's CCI; ID-based algorithms ignore it).
func (p Params) Config(alg cluster.Algorithm) (simnet.Config, error) {
	if err := p.Validate(); err != nil {
		return simnet.Config{}, err
	}
	if alg.Policy.CCI > 0 && p.CCI > 0 {
		alg.Policy.CCI = p.CCI
	}
	area := geom.Square(p.Side)
	cfg := simnet.Config{
		N:                 p.N,
		Area:              area,
		Duration:          p.Duration,
		Seed:              p.Seed,
		Algorithm:         alg,
		Mobility:          &mobility.RandomWaypoint{Area: area, MaxSpeed: p.MaxSpeed, Pause: p.Pause},
		TxRange:           p.TxRange,
		BroadcastInterval: p.BI,
		TimeoutPeriod:     p.TP,
		Warmup:            p.Warmup,
	}
	if p.BIMin > 0 {
		cfg.Adaptive = &simnet.AdaptiveBI{
			Min:        p.BIMin,
			Max:        p.BIMax,
			MRef:       DefaultAdaptiveMRef,
			Hysteresis: DefaultAdaptiveHysteresis,
		}
	}
	if p.EnergyJ > 0 {
		ec := energy.Default()
		ec.InitialJ = p.EnergyJ
		cfg.Energy = &ec
	}
	return cfg, nil
}

// Table1Row is one row of the paper's Table 1, for echo/verification output.
type Table1Row struct {
	// Symbol is the parameter symbol used in the paper.
	Symbol string
	// Meaning describes the parameter.
	Meaning string
	// Value is the paper's value, verbatim.
	Value string
}

// Table1 returns the paper's simulation-parameter table.
func Table1() []Table1Row {
	return []Table1Row{
		{Symbol: "N", Meaning: "Number of Nodes", Value: "50"},
		{Symbol: "m x n", Meaning: "Size of the scenario", Value: "670^2, 1000^2 m^2"},
		{Symbol: "MaxSpeed", Meaning: "Maximum Speed", Value: "1, 20, 30 m/sec"},
		{Symbol: "Tx", Meaning: "Transmission Range", Value: "10 - 250 m"},
		{Symbol: "PT", Meaning: "Pause Times", Value: "0, 30 sec"},
		{Symbol: "BI", Meaning: "Broadcast Interval", Value: "2.0 sec"},
		{Symbol: "TP", Meaning: "Timeout Period", Value: "3.0 sec"},
		{Symbol: "CCI", Meaning: "Cluster Contention Interval", Value: "4.0 sec"},
		{Symbol: "S", Meaning: "Simulation Time", Value: "900 sec"},
	}
}
