// Package geom provides the 2-D geometry primitives used by the MANET
// simulator: points/vectors in meters, distances, linear interpolation along
// movement segments, and axis-aligned rectangles for simulation areas.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the plane, in meters.
type Point struct {
	X, Y float64
}

// Vec is a displacement in the plane, in meters.
type Vec struct {
	X, Y float64
}

// Add returns p translated by v.
func (p Point) Add(v Vec) Point { return Point{X: p.X + v.X, Y: p.Y + v.Y} }

// Sub returns the displacement from q to p.
func (p Point) Sub(q Point) Vec { return Vec{X: p.X - q.X, Y: p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q. Range checks
// use it to avoid the square root on the simulator's hot path.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String renders the point as "(x, y)" with two decimals.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{X: k * v.X, Y: k * v.Y} }

// Add returns the vector sum v + w.
func (v Vec) Add(w Vec) Vec { return Vec{X: v.X + w.X, Y: v.Y + w.Y} }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Unit returns the unit vector in the direction of v, or the zero vector if
// v has zero length (a stationary movement segment).
func (v Vec) Unit() Vec {
	l := v.Len()
	if l == 0 {
		return Vec{}
	}
	return Vec{X: v.X / l, Y: v.Y / l}
}

// FromPolar returns the vector of the given length and angle (radians,
// measured counterclockwise from the +X axis).
func FromPolar(length, angle float64) Vec {
	return Vec{X: length * math.Cos(angle), Y: length * math.Sin(angle)}
}

// Angle returns the direction of v in radians in (-pi, pi].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Lerp linearly interpolates between a (t=0) and b (t=1). t outside [0, 1]
// extrapolates, which movement segments never do by construction; callers
// clamp where needed.
func Lerp(a, b Point, t float64) Point {
	return Point{
		X: a.X + (b.X-a.X)*t,
		Y: a.Y + (b.Y-a.Y)*t,
	}
}

// Rect is an axis-aligned rectangle [MinX, MaxX] x [MinY, MaxY] describing a
// simulation area such as the paper's 670x670 m or 1000x1000 m scenarios.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Square returns the side x side rectangle anchored at the origin.
func Square(side float64) Rect {
	return Rect{MaxX: side, MaxY: side}
}

// NewRect returns the rectangle with the given width and height anchored at
// the origin.
func NewRect(width, height float64) Rect {
	return Rect{MaxX: width, MaxY: height}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r in square meters.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}

// Valid reports whether r has positive area.
func (r Rect) Valid() bool { return r.MaxX > r.MinX && r.MaxY > r.MinY }

// String renders the rectangle as "WxH@(minx,miny)".
func (r Rect) String() string {
	return fmt.Sprintf("%.0fx%.0f@(%.0f,%.0f)", r.Width(), r.Height(), r.MinX, r.MinY)
}
