package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	p := Point{X: 1, Y: 2}
	q := p.Add(Vec{X: 3, Y: -1})
	if q != (Point{X: 4, Y: 1}) {
		t.Errorf("Add = %v", q)
	}
	v := q.Sub(p)
	if v != (Vec{X: 3, Y: -1}) {
		t.Errorf("Sub = %v", v)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{name: "same point", p: Point{1, 1}, q: Point{1, 1}, want: 0},
		{name: "3-4-5", p: Point{0, 0}, q: Point{3, 4}, want: 5},
		{name: "negative coords", p: Point{-1, -1}, q: Point{2, 3}, want: 5},
		{name: "horizontal", p: Point{0, 7}, q: Point{10, 7}, want: 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dist = %v, want %v", got, tt.want)
			}
			if got := tt.p.DistSq(tt.q); !almostEqual(got, tt.want*tt.want, 1e-9) {
				t.Errorf("DistSq = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	sym := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		p, q := Point{ax, ay}, Point{bx, by}
		return almostEqual(p.Dist(q), q.Dist(p), 1e-9)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	tri := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
			return true
		}
	}
	return false
}

func TestVecOps(t *testing.T) {
	v := Vec{X: 3, Y: 4}
	if v.Len() != 5 {
		t.Errorf("Len = %v, want 5", v.Len())
	}
	u := v.Unit()
	if !almostEqual(u.Len(), 1, 1e-12) {
		t.Errorf("Unit length = %v, want 1", u.Len())
	}
	if (Vec{}).Unit() != (Vec{}) {
		t.Error("Unit of zero vector should be zero")
	}
	if v.Scale(2) != (Vec{X: 6, Y: 8}) {
		t.Errorf("Scale = %v", v.Scale(2))
	}
	if v.Add(Vec{X: -3, Y: -4}) != (Vec{}) {
		t.Error("Add inverse should be zero")
	}
}

func TestFromPolar(t *testing.T) {
	v := FromPolar(2, math.Pi/2)
	if !almostEqual(v.X, 0, 1e-12) || !almostEqual(v.Y, 2, 1e-12) {
		t.Errorf("FromPolar = %v, want (0, 2)", v)
	}
	if !almostEqual(v.Angle(), math.Pi/2, 1e-12) {
		t.Errorf("Angle = %v, want pi/2", v.Angle())
	}
}

func TestFromPolarRoundTripProperty(t *testing.T) {
	roundTrip := func(lenSeed, angSeed uint16) bool {
		length := 0.001 + float64(lenSeed)/100
		angle := (float64(angSeed)/65535)*2*math.Pi - math.Pi + 1e-6
		v := FromPolar(length, angle)
		return almostEqual(v.Len(), length, 1e-9*(1+length)) &&
			almostEqual(math.Mod(v.Angle()-angle+3*math.Pi, 2*math.Pi)-math.Pi, 0, 1e-9)
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if Lerp(a, b, 0) != a {
		t.Error("Lerp t=0 should be a")
	}
	if Lerp(a, b, 1) != b {
		t.Error("Lerp t=1 should be b")
	}
	mid := Lerp(a, b, 0.5)
	if mid != (Point{5, 10}) {
		t.Errorf("Lerp t=0.5 = %v, want (5, 10)", mid)
	}
}

func TestLerpOnSegmentProperty(t *testing.T) {
	onSegment := func(ax, ay, bx, by int16, tSeed uint8) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		tt := float64(tSeed) / 255
		p := Lerp(a, b, tt)
		// Distance along the segment must sum to the full length.
		return almostEqual(a.Dist(p)+p.Dist(b), a.Dist(b), 1e-6)
	}
	if err := quick.Check(onSegment, nil); err != nil {
		t.Error(err)
	}
}

func TestRect(t *testing.T) {
	r := Square(670)
	if r.Width() != 670 || r.Height() != 670 {
		t.Errorf("Square dims = %v x %v", r.Width(), r.Height())
	}
	if !almostEqual(r.Area(), 670*670, 1e-9) {
		t.Errorf("Area = %v", r.Area())
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{670, 670}) {
		t.Error("boundary should be inside")
	}
	if r.Contains(Point{-0.1, 5}) || r.Contains(Point{5, 670.1}) {
		t.Error("outside points should not be contained")
	}
	if !r.Valid() {
		t.Error("670x670 should be valid")
	}
	if (Rect{}).Valid() {
		t.Error("zero rect should be invalid")
	}
}

func TestNewRect(t *testing.T) {
	r := NewRect(1000, 500)
	if r.Width() != 1000 || r.Height() != 500 {
		t.Errorf("NewRect dims = %v x %v", r.Width(), r.Height())
	}
}

func TestRectClamp(t *testing.T) {
	r := Square(100)
	tests := []struct {
		in, want Point
	}{
		{in: Point{50, 50}, want: Point{50, 50}},
		{in: Point{-10, 50}, want: Point{0, 50}},
		{in: Point{150, -5}, want: Point{100, 0}},
		{in: Point{150, 150}, want: Point{100, 100}},
	}
	for _, tt := range tests {
		if got := r.Clamp(tt.in); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestClampProducesContainedProperty(t *testing.T) {
	r := Square(670)
	contained := func(x, y float64) bool {
		if anyBad(x, y) {
			return true
		}
		return r.Contains(r.Clamp(Point{x, y}))
	}
	if err := quick.Check(contained, nil); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	if s := (Point{1.234, 5.678}).String(); s != "(1.23, 5.68)" {
		t.Errorf("Point.String = %q", s)
	}
	if s := Square(670).String(); s != "670x670@(0,0)" {
		t.Errorf("Rect.String = %q", s)
	}
}
