// Package trace is a lightweight structured event log for the simulator —
// the role ns-2's trace file played. It is a bounded ring buffer: recording
// never allocates once warm and never blocks the simulation; when the buffer
// wraps, the oldest events are dropped and counted.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	// KindBroadcast is a hello transmission.
	KindBroadcast Kind = iota + 1
	// KindDeliver is a hello reception.
	KindDeliver
	// KindDrop is a hello lost to the loss model.
	KindDrop
	// KindRoleChange is a clustering role transition.
	KindRoleChange
	// KindHeadChange is a clusterhead affiliation change.
	KindHeadChange
	// KindContention is a head-head contention start or resolution.
	KindContention
	// KindTimeout is a neighbor-table purge.
	KindTimeout
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBroadcast:
		return "broadcast"
	case KindDeliver:
		return "deliver"
	case KindDrop:
		return "drop"
	case KindRoleChange:
		return "role"
	case KindHeadChange:
		return "head"
	case KindContention:
		return "contention"
	case KindTimeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// Event is one trace record.
type Event struct {
	// T is the simulated time in seconds.
	T float64
	// Kind classifies the event.
	Kind Kind
	// Node is the primary node (transmitter, role-changer, ...).
	Node int32
	// Other is the secondary node (receiver, rival head, ...; -1 if none).
	Other int32
	// Value carries a kind-specific number (RxPr, new role, new head...).
	Value float64
}

// String renders the event as a single trace line.
func (e Event) String() string {
	return fmt.Sprintf("%10.3f %-10s node=%d other=%d value=%g",
		e.T, e.Kind, e.Node, e.Other, e.Value)
}

// Log is a fixed-capacity ring buffer of events. The zero value is a
// disabled log that drops everything; construct with New to record.
type Log struct {
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
	filter  func(Event) bool
}

// New returns a log holding the most recent `capacity` events. A
// non-positive capacity returns a disabled log.
func New(capacity int) *Log {
	if capacity <= 0 {
		return &Log{}
	}
	return &Log{buf: make([]Event, 0, capacity)}
}

// SetFilter installs a predicate; events failing it are not recorded.
// A nil filter records everything.
func (l *Log) SetFilter(f func(Event) bool) { l.filter = f }

// Enabled reports whether the log records anything.
func (l *Log) Enabled() bool { return l != nil && cap(l.buf) > 0 }

// Record appends an event, evicting the oldest when full. Safe to call on a
// nil or disabled log.
func (l *Log) Record(ev Event) {
	if l == nil || cap(l.buf) == 0 {
		return
	}
	if l.filter != nil && !l.filter(ev) {
		return
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
		return
	}
	l.buf[l.next] = ev
	l.next = (l.next + 1) % cap(l.buf)
	l.wrapped = true
	l.dropped++
}

// Dropped returns the number of events evicted due to wrapping.
func (l *Log) Dropped() uint64 { return l.dropped }

// Len returns the number of retained events.
func (l *Log) Len() int { return len(l.buf) }

// Events returns the retained events in chronological order. The slice is
// freshly allocated.
func (l *Log) Events() []Event {
	if l == nil || len(l.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(l.buf))
	if l.wrapped {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	} else {
		out = append(out, l.buf...)
	}
	return out
}

// Dump renders all retained events, one per line.
func (l *Log) Dump() string {
	var b strings.Builder
	for _, ev := range l.Events() {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CountKind returns how many retained events have the given kind.
func (l *Log) CountKind(k Kind) int {
	n := 0
	for _, ev := range l.Events() {
		if ev.Kind == k {
			n++
		}
	}
	return n
}
