package trace

import (
	"strings"
	"testing"
)

func TestZeroValueAndNilAreSafe(t *testing.T) {
	var l *Log
	l.Record(Event{T: 1}) // must not panic
	if l.Events() != nil {
		t.Error("nil log should have no events")
	}

	var zero Log
	zero.Record(Event{T: 1})
	if zero.Len() != 0 {
		t.Error("zero-value log should drop everything")
	}
	if zero.Enabled() {
		t.Error("zero-value log should report disabled")
	}
}

func TestNewNonPositiveCapacity(t *testing.T) {
	for _, c := range []int{0, -5} {
		l := New(c)
		l.Record(Event{T: 1})
		if l.Len() != 0 || l.Enabled() {
			t.Errorf("capacity %d should be disabled", c)
		}
	}
}

func TestRecordAndOrder(t *testing.T) {
	l := New(10)
	for i := 0; i < 5; i++ {
		l.Record(Event{T: float64(i), Kind: KindBroadcast, Node: int32(i), Other: -1})
	}
	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("Len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.T != float64(i) {
			t.Errorf("event %d out of order: T=%v", i, ev.T)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	l := New(3)
	for i := 0; i < 7; i++ {
		l.Record(Event{T: float64(i)})
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("Len = %d, want 3", len(evs))
	}
	want := []float64{4, 5, 6}
	for i, ev := range evs {
		if ev.T != want[i] {
			t.Errorf("event %d T = %v, want %v (chronological after wrap)", i, ev.T, want[i])
		}
	}
	if l.Dropped() != 4 {
		t.Errorf("Dropped = %d, want 4", l.Dropped())
	}
}

func TestFilter(t *testing.T) {
	l := New(10)
	l.SetFilter(func(ev Event) bool { return ev.Kind == KindRoleChange })
	l.Record(Event{Kind: KindBroadcast})
	l.Record(Event{Kind: KindRoleChange})
	l.Record(Event{Kind: KindDeliver})
	if l.Len() != 1 {
		t.Errorf("Len = %d, want 1 (filtered)", l.Len())
	}
}

func TestCountKind(t *testing.T) {
	l := New(10)
	l.Record(Event{Kind: KindDeliver})
	l.Record(Event{Kind: KindDeliver})
	l.Record(Event{Kind: KindDrop})
	if got := l.CountKind(KindDeliver); got != 2 {
		t.Errorf("CountKind(deliver) = %d, want 2", got)
	}
	if got := l.CountKind(KindTimeout); got != 0 {
		t.Errorf("CountKind(timeout) = %d, want 0", got)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindBroadcast:  "broadcast",
		KindDeliver:    "deliver",
		KindDrop:       "drop",
		KindRoleChange: "role",
		KindHeadChange: "head",
		KindContention: "contention",
		KindTimeout:    "timeout",
		Kind(99):       "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestDump(t *testing.T) {
	l := New(5)
	l.Record(Event{T: 1.5, Kind: KindBroadcast, Node: 3, Other: -1, Value: 0})
	s := l.Dump()
	if !strings.Contains(s, "broadcast") || !strings.Contains(s, "node=3") {
		t.Errorf("Dump output unexpected:\n%s", s)
	}
}
