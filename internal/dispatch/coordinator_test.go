package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mobic/internal/cache"
	"mobic/internal/experiment"
	"mobic/internal/harness"
	"mobic/internal/obs"
	"mobic/internal/service"
	"mobic/internal/simnet"
	"mobic/internal/trace"
)

// digestCollector taps every simulation a runner materializes and keeps a
// canonical trace digest per (algorithm, tx range, seed) cell — the oracle
// proving a failed-over run executed exactly the unfinished cells, with
// exactly the behaviour of an uninterrupted run.
type digestCollector struct {
	mu sync.Mutex
	ds map[string]*harness.Digester
}

func newDigestCollector() *digestCollector {
	return &digestCollector{ds: make(map[string]*harness.Digester)}
}

func (c *digestCollector) mutate(cfg *simnet.Config) {
	key := fmt.Sprintf("%s|%g|%d", cfg.Algorithm.Name, cfg.TxRange, cfg.Seed)
	d := harness.NewDigester()
	c.mu.Lock()
	c.ds[key] = d
	c.mu.Unlock()
	prev := cfg.Observer
	cfg.Observer = func(ev trace.Event) {
		d.Observe(ev)
		if prev != nil {
			prev(ev)
		}
	}
}

func (c *digestCollector) sums() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.ds))
	for k, d := range c.ds {
		out[k] = d.Sum()
	}
	return out
}

// failoverSweep is a 4-cell sweep slow enough to kill a worker in the
// middle of: one algorithm, four transmission ranges, one seed each.
func failoverSweep() service.JobSpec {
	return service.JobSpec{
		Seeds: 1,
		Sweep: &service.SweepSpec{
			Scenario:   service.ScenarioSpec{N: 150, Duration: 300, Warmup: 5},
			Algorithms: []string{"mobic"},
			TxRanges:   []float64{60, 100, 140, 180},
		},
	}
}

// worker is one in-process mobicd worker: a durable service on its own
// data dir behind an httptest server.
type worker struct {
	svc *service.Service
	srv *httptest.Server
	col *digestCollector
	reg *obs.Registry
}

func newWorker(t *testing.T) *worker {
	return newWorkerCfg(t, nil)
}

// newWorkerCfg builds a worker whose service config was run through mutate
// (replication knobs, timers) before opening.
func newWorkerCfg(t *testing.T, mutate func(*service.Config)) *worker {
	t.Helper()
	col := newDigestCollector()
	reg := obs.NewRegistry()
	cfg := service.Config{
		DataDir: t.TempDir(),
		Workers: 1,
		Runner:  experiment.Runner{Seeds: 1, Workers: 1, Mutate: col.mutate},
		Obs:     reg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := service.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	srv := httptest.NewServer(service.NewHandler(svc))
	w := &worker{svc: svc, srv: srv, col: col, reg: reg}
	t.Cleanup(func() { w.kill() })
	return w
}

// kill abandons the worker abruptly: the listener closes and in-flight
// jobs are aborted, the closest an httptest server gets to SIGKILL.
func (w *worker) kill() {
	w.srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = w.svc.Shutdown(ctx)
}

// newCluster builds a coordinator over the given workers with test-fast
// timers and a fresh obs registry, serving on an httptest server.
func newCluster(t *testing.T, workers []*worker) (*Coordinator, *httptest.Server, *obs.Registry) {
	return newClusterCfg(t, workers, nil)
}

// newClusterCfg is newCluster with the coordinator config run through
// mutate first (chaos transports, replication, breaker knobs).
func newClusterCfg(t *testing.T, workers []*worker, mutate func(*Config)) (*Coordinator, *httptest.Server, *obs.Registry) {
	t.Helper()
	peers := make([]string, len(workers))
	for i, w := range workers {
		peers[i] = w.srv.URL
	}
	reg := obs.NewRegistry()
	c, err := cache.Open(cache.Config{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Peers:       peers,
		HealthEvery: 40 * time.Millisecond,
		PollEvery:   20 * time.Millisecond,
		FailAfter:   2,
		Cache:       c,
		Obs:         reg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	srv := httptest.NewServer(NewHandler(coord))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = coord.Shutdown(ctx)
	})
	return coord, srv, reg
}

func submitSpec(t *testing.T, url string, spec service.JobSpec) (service.Status, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.Status
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, b)
	}
	return st, resp
}

func awaitTerminal(t *testing.T, url, id string, within time.Duration) service.Status {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err == nil {
			var st service.Status
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && st.State.Terminal() {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal within %v", id, within)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFailoverResumesAndCaches is the subsystem acceptance test: a
// coordinator over two workers places a sweep, the owning worker is killed
// after at least one checkpoint has been observed, the job fails over to
// the surviving worker with the checkpoint prefix shipped, and the final
// output is digest-identical to an uninterrupted reference run. A
// resubmission of the same spec is then answered from the coordinator's
// result cache without touching any worker.
func TestFailoverResumesAndCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second failover e2e")
	}

	// Reference: the same sweep, uninterrupted, no cluster.
	refCol := newDigestCollector()
	ref := service.New(service.Config{
		Workers: 1,
		Runner:  experiment.Runner{Seeds: 1, Workers: 1, Mutate: refCol.mutate},
	})
	ref.Start()
	defer ref.Shutdown(context.Background())
	refJob, err := ref.Submit(failoverSweep())
	if err != nil {
		t.Fatal(err)
	}
	var refSt service.Status
	for {
		st, _, notify := refJob.Snapshot()
		if st.State.Terminal() {
			refSt = st
			break
		}
		<-notify
	}
	if refSt.State != service.StateSucceeded || len(refSt.Cells) != 4 {
		t.Fatalf("reference run: %s, %d cells", refSt.State, len(refSt.Cells))
	}
	refJSON, err := json.Marshal(refSt.Output)
	if err != nil {
		t.Fatal(err)
	}
	refDigests := refCol.sums()

	workers := []*worker{newWorker(t), newWorker(t)}
	coord, srv, reg := newCluster(t, workers)

	st, _ := submitSpec(t, srv.URL, failoverSweep())
	if st.ID == "" {
		t.Fatal("no job ID from coordinator")
	}

	// Wait until the coordinator has observed at least one checkpoint from
	// the owning worker — the prefix a failover would ship.
	var owner string
	deadline := time.Now().Add(30 * time.Second)
	for {
		coord.mu.Lock()
		j := coord.jobs[st.ID]
		var observed int
		if j != nil {
			observed, owner = len(j.cps.Cells), j.peer
		}
		terminal := j != nil && j.terminal
		coord.mu.Unlock()
		if j == nil {
			t.Fatal("submitted job not tracked")
		}
		if terminal {
			t.Fatal("sweep finished before a checkpoint was observed; make failoverSweep slower")
		}
		if observed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint observed in 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill the owner; keep the survivor.
	var victim, survivor *worker
	for _, w := range workers {
		if w.srv.URL == owner {
			victim = w
		} else {
			survivor = w
		}
	}
	if victim == nil || survivor == nil {
		t.Fatalf("owner %q is not one of the workers", owner)
	}
	victim.kill()

	// The job must finish — failed over, resumed, digest-identical.
	fin := awaitTerminal(t, srv.URL, st.ID, 60*time.Second)
	if fin.State != service.StateSucceeded {
		t.Fatalf("failed-over job: %s (%s)", fin.State, fin.Error)
	}
	finJSON, err := json.Marshal(fin.Output)
	if err != nil {
		t.Fatal(err)
	}
	if string(finJSON) != string(refJSON) {
		t.Errorf("failed-over output differs from uninterrupted reference:\nref: %s\ngot: %s", refJSON, finJSON)
	}
	if got := reg.Counter(obs.DispatchFailovers); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	if got := coord.shippedCheckpoints(); got < 1 {
		t.Errorf("checkpoints shipped = %d, want >= 1", got)
	}

	// The survivor resumed: it simulated only unfinished cells, and those
	// traces are byte-equal to the reference run's.
	survived := survivor.col.sums()
	if len(survived) == 0 || len(survived) >= 4 {
		t.Errorf("survivor simulated %d cells, want 1..3 (resume, not re-run)", len(survived))
	}
	for key, sum := range survived {
		if refDigests[key] == "" {
			t.Errorf("survivor simulated unexpected cell %s", key)
		} else if sum != refDigests[key] {
			t.Errorf("cell %s: trace digest mismatch after failover", key)
		}
	}

	// Wait for the coordinator's own poll loop to internalize the
	// completion (cache write + flight release); the status proxy above can
	// observe the worker's terminal state a poll interval earlier.
	deadline = time.Now().Add(10 * time.Second)
	for {
		coord.mu.Lock()
		done := coord.jobs[st.ID] != nil && coord.jobs[st.ID].terminal
		coord.mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never marked the job terminal")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Identical resubmission: answered from the coordinator cache, no
	// worker involved, terminal on arrival.
	st2, _ := submitSpec(t, srv.URL, failoverSweep())
	if st2.State != service.StateSucceeded {
		t.Fatalf("resubmission state = %s, want succeeded from cache", st2.State)
	}
	if st2.ID == st.ID {
		t.Error("cache answer reused the original job ID")
	}
	if got := reg.Counter(obs.CacheHits); got < 1 {
		t.Errorf("cache hits = %d, want >= 1", got)
	}

	// And the hit is visible on /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"mobic_cache_hits_total", "mobic_dispatch_failovers_total", "mobic_dispatch_peer_up"} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestCoordinatorProxiesSubmitStatusStream(t *testing.T) {
	workers := []*worker{newWorker(t)}
	_, srv, _ := newCluster(t, workers)

	spec := service.JobSpec{
		Seeds: 1,
		Sweep: &service.SweepSpec{
			Scenario:   service.ScenarioSpec{N: 10, Duration: 5},
			Algorithms: []string{"mobic"},
		},
	}
	st, _ := submitSpec(t, srv.URL, spec)
	fin := awaitTerminal(t, srv.URL, st.ID, 30*time.Second)
	if fin.State != service.StateSucceeded {
		t.Fatalf("job: %s (%s)", fin.State, fin.Error)
	}
	if len(fin.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(fin.Cells))
	}

	// Stream (late attach): replays history and ends with the result line.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var last service.StreamEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != "result" || last.Stat == nil || last.Stat.State != service.StateSucceeded {
		t.Fatalf("stream did not end with a succeeded result: %+v", last)
	}
}

func TestCoordinatorRejectsInvalidSpec(t *testing.T) {
	workers := []*worker{newWorker(t)}
	_, srv, _ := newCluster(t, workers)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"seeds":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec status = %d, want 400", resp.StatusCode)
	}
}

func TestCoordinatorRetryAfterMerge(t *testing.T) {
	// A fake worker that always sheds with a larger hint than the
	// coordinator's own floor.
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Retry-After", "17")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full"}`)
	}))
	defer shed.Close()

	coord, err := New(Config{Peers: []string{shed.URL}})
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	defer coord.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"fig3"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	got := resp.Header.Get("Retry-After")
	if got != "17" {
		t.Fatalf("Retry-After = %q, want %q (max of local and peer hints)", got, "17")
	}
}

func TestCoordinatorReadyRequiresHealthyPeer(t *testing.T) {
	// A peer that never answers /readyz.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	coord, err := New(Config{
		Peers:       []string{dead.URL},
		HealthEvery: 20 * time.Millisecond,
		FailAfter:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	defer coord.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()
	dead.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator stayed ready with every peer down")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// And submissions are shed with 503.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"fig3"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with no peers: status = %d, want 503", resp.StatusCode)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"7", 7},
		{"0", 0},
		{"-3", 0},
		{"junk", 0},
		{now.Add(10 * time.Second).UTC().Format(http.TimeFormat), 10},
		{now.Add(-time.Minute).UTC().Format(http.TimeFormat), 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestCoordinatorCancelAndProbe covers the remaining proxy surfaces:
// /livez, canceling a live proxied job, re-canceling a terminal one,
// status probing for a job submitted directly to a worker behind the
// coordinator's back, and 404s for unknown IDs.
func TestCoordinatorCancelAndProbe(t *testing.T) {
	workers := []*worker{newWorker(t)}
	_, srv, _ := newCluster(t, workers)

	resp, err := http.Get(srv.URL + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("livez = %d, want 200", resp.StatusCode)
	}

	// A sweep slow enough to still be running when the cancel lands.
	st, _ := submitSpec(t, srv.URL, failoverSweep())
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", resp.StatusCode)
	}
	// Cancellation is asynchronous on the worker; the job must settle as
	// canceled shortly after.
	if got := awaitTerminal(t, srv.URL, st.ID, 30*time.Second); got.State != service.StateCanceled {
		t.Fatalf("post-cancel state = %s, want canceled", got.State)
	}

	// Re-canceling a terminal job keeps answering 200 (idempotent), via
	// either the local final (once the poll loop caught up) or the worker.
	resp, err = http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("re-cancel status = %d, want 200", resp.StatusCode)
	}

	// A job the coordinator never saw: submitted straight to the worker.
	direct, _ := submitSpec(t, workers[0].srv.URL, service.JobSpec{
		Seeds: 1,
		Sweep: &service.SweepSpec{
			Scenario:   service.ScenarioSpec{N: 10, Duration: 5},
			Algorithms: []string{"mobic"},
		},
	})
	awaitTerminal(t, workers[0].srv.URL, direct.ID, 30*time.Second)
	got := awaitTerminal(t, srv.URL, direct.ID, 10*time.Second)
	if got.State != service.StateSucceeded {
		t.Errorf("probed direct job state = %s, want succeeded", got.State)
	}

	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/nope"},
		{http.MethodDelete, "/v1/jobs/nope"},
	} {
		req, err := http.NewRequest(probe.method, srv.URL+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}
