package dispatch

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker(3, time.Second, clock)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", b.State())
	}
	// Failures below the threshold keep the breaker closed.
	for i := 0; i < 2; i++ {
		if tripped := b.Failure(); tripped {
			t.Fatalf("failure %d tripped the breaker before the threshold", i+1)
		}
		if !b.Allow() {
			t.Fatalf("breaker refused calls while closed (failure %d)", i+1)
		}
	}
	// The threshold-th consecutive failure trips it open.
	if tripped := b.Failure(); !tripped {
		t.Fatal("threshold failure did not trip the breaker")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after trip = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before the cooldown")
	}

	// After the cooldown, exactly one half-open probe is admitted.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after the cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second call admitted while the half-open probe is in flight")
	}

	// A failed probe re-opens for another full cooldown.
	if tripped := b.Failure(); !tripped {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.Allow() {
		t.Fatal("breaker admitted a call right after a failed probe")
	}
	now = now.Add(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted a call before the second cooldown elapsed")
	}

	// A successful probe closes it and resets the failure count: the next
	// trip needs a full threshold of fresh consecutive failures.
	now = now.Add(time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	b.Failure()
	b.Failure()
	b.Success() // consecutive-failure streak broken
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	if tripped := b.Failure(); !tripped {
		t.Fatal("three fresh consecutive failures did not trip the breaker")
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}

func TestBackoffDelayCappedAndJittered(t *testing.T) {
	for i := 1; i <= 10; i++ {
		for trial := 0; trial < 32; trial++ {
			d := backoffDelay(i)
			if d < 50*time.Millisecond || d > 3*time.Second {
				t.Fatalf("backoffDelay(%d) = %v, want within [50ms, 3s]", i, d)
			}
		}
	}
}
