package dispatch

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"mobic/internal/cache"
	"mobic/internal/experiment"
	"mobic/internal/obs"
	"mobic/internal/service"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Peers is the list of worker base URLs (e.g. "http://10.0.0.1:8080").
	// At least one is required.
	Peers []string
	// VNodes is the number of virtual nodes per peer on the placement ring
	// (default 64).
	VNodes int
	// Client performs control-plane calls: submits, status polls, health
	// checks, restores. Default: 5 s timeout. Streams use a derived client
	// without the overall timeout (a stream lives as long as its job).
	Client *http.Client
	// HealthEvery is the /readyz probe period (default 2 s).
	HealthEvery time.Duration
	// PollEvery is the tracked-job status/checkpoint poll period
	// (default 1 s).
	PollEvery time.Duration
	// FailAfter is the number of consecutive failed health probes that
	// mark a peer down and trigger failover (default 2). One blip on a
	// loaded network should not re-dispatch every job on the box.
	FailAfter int
	// AttemptTimeout bounds each individual control-plane call attempt
	// (default 5 s). A peer that hangs mid-request costs at most this
	// long per attempt instead of wedging a poll pass.
	AttemptTimeout time.Duration
	// CallAttempts is how many attempts one logical control-plane call
	// gets before failing (default 3). Attempts after the first wait out
	// a capped exponential backoff with jitter (100 ms base, 2 s cap).
	CallAttempts int
	// BreakerThreshold is the consecutive transport-failure count that
	// opens a peer's circuit breaker (default 5). While open, calls to
	// that peer fail locally instead of burning an attempt timeout each.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses calls before
	// admitting a single half-open probe (default 5 s).
	BreakerCooldown time.Duration
	// Replicate, when true, assigns every placed job a checkpoint-replica
	// target — the first healthy distinct ring successor of its owner —
	// via the X-Mobic-Replica header on submits and failover restores.
	// Workers must run with replication enabled for the header to bite.
	Replicate bool
	// Local, when non-nil, is an embedded fallback service: a submission
	// arriving while no worker is reachable runs locally (its status is
	// flagged "degraded") instead of being bounced with a 503.
	Local *service.Service
	// WorkersPerPeer scales the cluster-wide Retry-After hint (default 2,
	// the worker daemon's own default pool size).
	WorkersPerPeer int
	// TTL is how long terminal jobs stay queryable at the coordinator
	// (default 15 min, matching the workers').
	TTL time.Duration
	// Cache, when non-nil, is the coordinator's digest-keyed result layer:
	// finished outputs are published into it and identical resubmissions
	// are answered without touching any worker.
	Cache *cache.Cache
	// Obs receives dispatch telemetry (forwards, failovers, shipped
	// checkpoints, healthy-peer gauge). Defaults to obs.Nop.
	Obs obs.Recorder
	// Logger receives operational events (peer transitions, failovers).
	// Defaults to a discard logger.
	Logger *slog.Logger
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = 2 * time.Second
	}
	if c.PollEvery <= 0 {
		c.PollEvery = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 5 * time.Second
	}
	if c.CallAttempts <= 0 {
		c.CallAttempts = 3
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.WorkersPerPeer <= 0 {
		c.WorkersPerPeer = 2
	}
	if c.TTL <= 0 {
		c.TTL = 15 * time.Minute
	}
	if c.Obs == nil {
		c.Obs = obs.Nop{}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// remoteJob is the coordinator's record of one dispatched job: enough to
// answer status queries for terminal jobs locally, and enough to re-create
// the job on a successor worker when its current one dies.
type remoteJob struct {
	id     string
	digest string
	key    string
	spec   service.JobSpec
	// tenant is the canonical tenant name the owning worker admitted the
	// job under; failover restores preserve it so the successor charges
	// the same tenant's quota and fair share.
	tenant string
	// peer is the worker currently responsible for the job.
	peer string
	// cps is the last checkpoint prefix observed by the poll loop — what
	// failover ships. Always version-stamped (possibly empty).
	cps experiment.CheckpointSet
	// synthetic marks a job the coordinator answered from its own cache;
	// no worker has ever heard of its ID.
	synthetic bool
	// local marks a degraded-mode job the coordinator ran on its embedded
	// fallback service because no worker was reachable at submit time. It
	// has no peer and never fails over.
	local    bool
	terminal bool
	final    *service.Status
	created  time.Time
	finished time.Time
}

// Coordinator places jobs on workers, tracks them to completion, and fails
// them over. All exported methods are safe for concurrent use.
type Coordinator struct {
	cfg          Config
	ring         *Ring
	flights      *cache.Flight
	streamClient *http.Client

	mu        sync.Mutex
	peerFails map[string]int
	peerDown  map[string]bool
	breakers  map[string]*Breaker
	jobs      map[string]*remoteJob
	ewma      float64 // seconds per job, for cluster Retry-After hints

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// New builds a Coordinator over the configured peers. Call Start to begin
// health checking and job tracking.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ring := NewRing(cfg.Peers, cfg.VNodes)
	if len(ring.Peers()) == 0 {
		return nil, fmt.Errorf("dispatch: no peers configured")
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		ring:    ring,
		flights: cache.NewFlight(),
		// Same transport, no overall timeout: streams outlive any fixed cap.
		streamClient: &http.Client{Transport: cfg.Client.Transport},
		peerFails:    make(map[string]int),
		peerDown:     make(map[string]bool),
		breakers:     make(map[string]*Breaker),
		jobs:         make(map[string]*remoteJob),
		ctx:          ctx,
		cancel:       cancel,
		done:         make(chan struct{}),
	}
	for _, p := range ring.Peers() {
		c.breakers[p] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock)
	}
	return c, nil
}

// Start performs one synchronous health pass (so placement has a live view
// before the first submit) and launches the background loop.
func (c *Coordinator) Start() {
	c.healthPass()
	go c.loop()
}

// Shutdown stops the background loop.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.cancel()
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coordinator) loop() {
	defer close(c.done)
	health := time.NewTicker(c.cfg.HealthEvery)
	defer health.Stop()
	poll := time.NewTicker(c.cfg.PollEvery)
	defer poll.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-health.C:
			c.healthPass()
		case <-poll.C:
			c.pollPass()
		}
	}
}

// HealthyPeers returns the peers currently passing /readyz.
func (c *Coordinator) HealthyPeers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var up []string
	for _, p := range c.ring.Peers() {
		if !c.peerDown[p] {
			up = append(up, p)
		}
	}
	return up
}

// TrackedJobs returns how many jobs the coordinator is tracking.
func (c *Coordinator) TrackedJobs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.jobs)
}

// shippedCheckpoints reports the total checkpoint records shipped across
// all failovers so far (test hook; /metrics carries the same counter).
func (c *Coordinator) shippedCheckpoints() int64 {
	if r, ok := c.cfg.Obs.(*obs.Registry); ok {
		return r.Counter(obs.DispatchCheckpointsShipped)
	}
	return 0
}

func (c *Coordinator) isDown(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peerDown[peer]
}

// healthPass probes every peer's /readyz, updates the down set, publishes
// the healthy gauge, retries failover for stranded jobs, and prunes
// expired terminal jobs.
func (c *Coordinator) healthPass() {
	type result struct {
		peer string
		ok   bool
	}
	peers := c.ring.Peers()
	results := make(chan result, len(peers))
	for _, p := range peers {
		go func(p string) {
			ok := false
			req, err := http.NewRequestWithContext(c.ctx, http.MethodGet, p+"/readyz", nil)
			if err == nil {
				resp, err := c.cfg.Client.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					ok = resp.StatusCode == http.StatusOK
				}
			}
			results <- result{p, ok}
		}(p)
	}
	healthy := 0
	for range peers {
		r := <-results
		c.mu.Lock()
		wasDown := c.peerDown[r.peer]
		if r.ok {
			c.peerFails[r.peer] = 0
			c.peerDown[r.peer] = false
			healthy++
			if wasDown {
				c.cfg.Logger.Info("peer recovered", "peer", r.peer)
			}
		} else {
			c.peerFails[r.peer]++
			if c.peerFails[r.peer] >= c.cfg.FailAfter && !wasDown {
				c.peerDown[r.peer] = true
				c.cfg.Logger.Warn("peer marked down", "peer", r.peer, "fails", c.peerFails[r.peer])
			}
		}
		c.mu.Unlock()
	}
	c.cfg.Obs.Set(obs.DispatchPeersHealthy, float64(healthy))
	c.failoverStranded()
	c.pruneExpired()
}

// failoverStranded re-dispatches every non-terminal job whose peer is down
// to the ring successor, shipping the last observed checkpoint prefix. It
// runs every health pass, so a failover that could not land (successor
// also down, transient error) is retried until it does.
func (c *Coordinator) failoverStranded() {
	c.mu.Lock()
	var stranded []*remoteJob
	for _, j := range c.jobs {
		if !j.terminal && !j.synthetic && !j.local && c.peerDown[j.peer] {
			stranded = append(stranded, j)
		}
	}
	c.mu.Unlock()
	for _, j := range stranded {
		c.failover(j)
	}
}

// failover ships job's spec, key and checkpoint prefix to the first
// healthy peer in ring-successor order and repoints the job there.
func (c *Coordinator) failover(j *remoteJob) {
	start := c.cfg.Clock()
	c.mu.Lock()
	oldPeer := j.peer
	cps := j.cps
	c.mu.Unlock()

	target := c.ring.Owner(j.digest, c.isDown)
	if target == "" || target == oldPeer {
		return
	}
	body, err := json.Marshal(struct {
		Spec        service.JobSpec          `json:"spec"`
		Key         string                   `json:"key,omitempty"`
		Tenant      string                   `json:"tenant,omitempty"`
		Checkpoints experiment.CheckpointSet `json:"checkpoints"`
	}{j.spec, j.key, j.tenant, cps})
	if err != nil {
		return
	}
	hdr := http.Header{"Content-Type": {"application/json"}}
	if rt := c.replicaTarget(j.digest, target); rt != "" {
		// The restored job streams its checkpoints onward too: a second
		// failure must not be the one that loses progress.
		hdr.Set("X-Mobic-Replica", rt)
	}
	resp, err := c.call(c.ctx, target, http.MethodPost, "/v1/jobs/"+j.id+"/restore", body, hdr)
	if err != nil {
		c.cfg.Logger.Warn("failover restore failed", "job", j.id, "target", target, "err", err)
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		c.cfg.Logger.Warn("failover restore rejected", "job", j.id, "target", target, "status", resp.StatusCode)
		return
	}
	c.mu.Lock()
	j.peer = target
	c.mu.Unlock()
	end := c.cfg.Clock()
	c.cfg.Obs.Add(obs.DispatchFailovers, 1)
	c.cfg.Obs.Add(obs.DispatchCheckpointsShipped, int64(len(cps.Cells)))
	if c.cfg.Obs.Enabled() {
		c.cfg.Obs.Span(obs.SpanFailover, start.UnixNano(), end.UnixNano())
	}
	c.cfg.Logger.Info("job failed over", "job", j.id, "from", oldPeer, "to", target,
		"checkpoints", len(cps.Cells))
}

// pruneExpired drops terminal jobs past their TTL.
func (c *Coordinator) pruneExpired() {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, j := range c.jobs {
		if j.terminal && now.Sub(j.finished) >= c.cfg.TTL {
			delete(c.jobs, id)
		}
	}
}

// pollPass refreshes every tracked non-terminal job: status first (to
// catch completion), then the checkpoint prefix (so a later failover ships
// the freshest resume point).
func (c *Coordinator) pollPass() {
	c.mu.Lock()
	var live []*remoteJob
	for _, j := range c.jobs {
		if !j.terminal && !j.synthetic {
			live = append(live, j)
		}
	}
	c.mu.Unlock()
	for _, j := range live {
		if j.local {
			c.pollLocal(j)
		} else {
			c.pollJob(j)
		}
	}
}

// pollLocal checks a degraded-mode job against the embedded fallback
// service — no HTTP involved.
func (c *Coordinator) pollLocal(j *remoteJob) {
	job, ok := c.cfg.Local.Get(j.id)
	if !ok {
		return
	}
	st, _, _ := job.Snapshot()
	if st.State.Terminal() {
		st.Degraded = true
		c.completeJob(j, &st)
	}
}

func (c *Coordinator) pollJob(j *remoteJob) {
	c.mu.Lock()
	peer := j.peer
	c.mu.Unlock()
	if c.isDown(peer) {
		return // failover path owns it now
	}
	var st service.Status
	if err := c.getJSON(c.ctx, peer, "/v1/jobs/"+j.id, &st); err != nil {
		return // transient, or the health loop is about to notice
	}
	if st.State.Terminal() {
		c.completeJob(j, &st)
		return
	}
	if j.spec.Sweep == nil {
		return // named experiments re-run whole; nothing to ship
	}
	var export service.CheckpointExport
	if err := c.getJSON(c.ctx, peer, "/v1/jobs/"+j.id+"/checkpoints", &export); err != nil {
		return
	}
	c.mu.Lock()
	if len(export.Checkpoints.Cells) > len(j.cps.Cells) {
		j.cps = export.Checkpoints
	}
	c.mu.Unlock()
}

// completeJob records a terminal status: publishes a successful output to
// the coordinator cache, releases the digest flight, and feeds the
// duration EWMA behind the cluster Retry-After hint.
func (c *Coordinator) completeJob(j *remoteJob, st *service.Status) {
	c.mu.Lock()
	if j.terminal {
		c.mu.Unlock()
		return
	}
	j.terminal = true
	j.final = st
	j.finished = c.cfg.Clock()
	if st.StartedAt != nil && st.FinishedAt != nil {
		if d := st.FinishedAt.Sub(*st.StartedAt).Seconds(); d > 0 {
			// Same smoothing the worker service uses for its own hint.
			const alpha = 0.3
			if c.ewma == 0 {
				c.ewma = d
			} else {
				c.ewma = (1-alpha)*c.ewma + alpha*d
			}
		}
	}
	c.mu.Unlock()
	if st.State == service.StateSucceeded && c.cfg.Cache != nil {
		if data, err := json.Marshal(st.Output); err == nil {
			c.cfg.Cache.Put(j.digest, data)
		}
	}
	c.flights.End(j.digest)
}

// errBreakerOpen marks a call refused locally by an open circuit breaker.
var errBreakerOpen = errors.New("dispatch: circuit breaker open")

// breaker returns the circuit breaker guarding peer, creating one lazily
// for peers that joined after construction (tests, future membership).
func (c *Coordinator) breaker(peer string) *Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.breakers[peer]
	if !ok {
		b = newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown, c.cfg.Clock)
		c.breakers[peer] = b
	}
	return b
}

// backoffDelay is the wait before retry attempt i (1-based): capped
// exponential from 100 ms with ±50% jitter, so a burst of polls against a
// flapping peer does not retry in lockstep.
func backoffDelay(i int) time.Duration {
	d := 100 * time.Millisecond << (i - 1)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// cancelBody ties an attempt's timeout context to the response body: the
// caller's Close releases the context's timer along with the connection.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// attempt performs a single breaker-gated, timeout-bounded HTTP exchange
// with peer. A transport-level failure feeds the breaker; an HTTP error
// status does not (the peer answered — it is alive and routable).
func (c *Coordinator) attempt(ctx context.Context, peer, method, path string, body []byte, hdr http.Header) (*http.Response, error) {
	br := c.breaker(peer)
	if !br.Allow() {
		c.cfg.Obs.Add(obs.DispatchBreakerShortCircuits, 1)
		return nil, fmt.Errorf("%w: %s", errBreakerOpen, peer)
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, peer+path, rd)
	if err != nil {
		cancel()
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		cancel()
		if br.Failure() {
			c.cfg.Obs.Add(obs.DispatchBreakerOpens, 1)
			c.cfg.Logger.Warn("circuit breaker opened", "peer", peer, "err", err)
		}
		return nil, err
	}
	br.Success()
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// call performs one logical coordinator→peer exchange: up to
// Config.CallAttempts breaker-gated attempts, each bounded by
// AttemptTimeout, with capped jittered backoff between them. The body
// bytes are re-read per attempt. A breaker refusal ends the call at once —
// retrying against a peer known dead only stalls the caller.
func (c *Coordinator) call(ctx context.Context, peer, method, path string, body []byte, hdr http.Header) (*http.Response, error) {
	var lastErr error
	for i := 0; i < c.cfg.CallAttempts; i++ {
		if i > 0 {
			c.cfg.Obs.Add(obs.DispatchRetries, 1)
			if err := sleepCtx(ctx, backoffDelay(i)); err != nil {
				return nil, err
			}
		}
		resp, err := c.attempt(ctx, peer, method, path, body, hdr)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if errors.Is(err, errBreakerOpen) || ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

// getJSON fetches peer+path through the retrying call path and decodes a
// JSON body; non-200 is an error.
func (c *Coordinator) getJSON(ctx context.Context, peer, path string, v any) error {
	resp, err := c.call(ctx, peer, http.MethodGet, path, nil, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("dispatch: GET %s%s: status %d", peer, path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// replicaTarget picks a job's checkpoint-replica target: the first healthy
// distinct peer after owner in ring-successor order — exactly the peer a
// failover would land on, so the replica is already where the job goes
// next. Empty when replication is off or the ring has no second peer up.
func (c *Coordinator) replicaTarget(digest, owner string) string {
	if !c.cfg.Replicate {
		return ""
	}
	for _, p := range c.ring.Owners(digest) {
		if p != owner && !c.isDown(p) {
			return p
		}
	}
	return ""
}

// retryAfterHint is the cluster-wide analogue of the worker's hint:
// expected drain time of the tracked in-flight jobs across the healthy
// worker pool.
func (c *Coordinator) retryAfterHint() int {
	c.mu.Lock()
	inflight := 0
	for _, j := range c.jobs {
		if !j.terminal {
			inflight++
		}
	}
	ewma := c.ewma
	c.mu.Unlock()
	workers := len(c.HealthyPeers()) * c.cfg.WorkersPerPeer
	return service.RetryAfterSeconds(inflight, workers, ewma)
}

// track registers a job the coordinator just placed (or answered from
// cache) and takes the digest flight slot if it is free.
func (c *Coordinator) track(j *remoteJob) {
	c.mu.Lock()
	c.jobs[j.id] = j
	c.mu.Unlock()
	if !j.terminal {
		c.flights.Begin(j.digest, j.id)
	}
}

// lookup returns the tracked job for id, if any.
func (c *Coordinator) lookup(id string) (*remoteJob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// randomID mints a fresh 16-hex-char job ID for cache-answered
// submissions, the same shape workers mint.
func randomID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic("dispatch: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
