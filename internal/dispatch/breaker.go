package dispatch

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states, in escalation order. The numeric values are exported on
// /metrics as mobic_dispatch_breaker_state{peer}.
const (
	// BreakerClosed passes calls through, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses calls locally until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe call; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

// String returns the state's metric label.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Breaker is a per-peer circuit breaker over coordinator→peer transport
// errors. Consecutive failures past the threshold open it; while open,
// calls are refused locally (sparing the per-attempt timeout wait against a
// peer that is known dead); after the cooldown one half-open probe is
// admitted, and its outcome either closes the breaker or re-opens it for
// another cooldown.
//
// Only transport-level failures feed it: a peer that answers — even with a
// 4xx/5xx — is alive and routable. Health probes deliberately bypass Allow
// (they are the cluster's own probing mechanism) and do not feed outcomes,
// so a peer can pass /readyz while its data-plane path stays open — exactly
// the partial-partition shape chaos schedules produce.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clock     func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// newBreaker builds a closed breaker tripping after threshold consecutive
// failures and cooling down for cooldown before each probe.
func newBreaker(threshold int, cooldown time.Duration, clock func() time.Time) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, clock: clock}
}

// Allow reports whether a call may proceed now. In the open state it flips
// to half-open once the cooldown has elapsed and admits that single probe;
// a second caller arriving while the probe is in flight is refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a completed call: the breaker closes and the failure
// count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// Failure records a transport-level failure and reports whether this one
// tripped the breaker open (callers count trips as a metric). A failed
// half-open probe re-opens immediately for another cooldown.
func (b *Breaker) Failure() (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
		b.probing = false
		return true
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = now
			return true
		}
	}
	return false
}

// State returns the breaker's current position (open reported as half-open
// once its cooldown has elapsed, since the next Allow would probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
