package dispatch

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mobic/internal/chaos"
	"mobic/internal/experiment"
	"mobic/internal/obs"
	"mobic/internal/service"
)

// referenceRun executes the failover sweep uninterrupted on a standalone
// service and returns the canonical output JSON plus per-cell trace digests
// — the oracle every chaos run is compared against.
func referenceRun(t *testing.T) (string, map[string]string) {
	t.Helper()
	col := newDigestCollector()
	ref := service.New(service.Config{
		Workers: 1,
		Runner:  experiment.Runner{Seeds: 1, Workers: 1, Mutate: col.mutate},
	})
	ref.Start()
	defer ref.Shutdown(context.Background())
	job, err := ref.Submit(failoverSweep())
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, _, notify := job.Snapshot()
		if st.State.Terminal() {
			if st.State != service.StateSucceeded || len(st.Cells) != 4 {
				t.Fatalf("reference run: %s, %d cells", st.State, len(st.Cells))
			}
			data, err := json.Marshal(st.Output)
			if err != nil {
				t.Fatal(err)
			}
			return string(data), col.sums()
		}
		<-notify
	}
}

// TestChaosReplicationFailoverByteEqual is the chaos acceptance test for
// proactive WAL replication: a seeded chaos schedule blackholes every
// coordinator checkpoint poll (so the coordinator's shipped prefix is
// provably empty), the job's owner is killed mid-sweep, and the ring
// successor must restore from the checkpoint replica the owner streamed to
// it — finishing with output byte-equal to an undisturbed reference run
// while having simulated only the unfinished cells.
func TestChaosReplicationFailoverByteEqual(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos e2e")
	}
	refJSON, refDigests := referenceRun(t)

	replicated := func(cfg *service.Config) {
		cfg.Replicate = true
		cfg.ReplicaFlushEvery = 10 * time.Millisecond
	}
	workers := []*worker{newWorkerCfg(t, replicated), newWorkerCfg(t, replicated)}

	// The schedule interrupts every checkpoint poll the coordinator makes;
	// status polls, health probes and submits pass untouched.
	inj := chaos.New(chaos.MustParse("seed 42\nhttp GET */checkpoints error\n"))
	coord, srv, reg := newClusterCfg(t, workers, func(cfg *Config) {
		cfg.Replicate = true
		cfg.Client = &http.Client{Timeout: 5 * time.Second, Transport: inj.RoundTripper(nil)}
	})

	st, _ := submitSpec(t, srv.URL, failoverSweep())
	coord.mu.Lock()
	j := coord.jobs[st.ID]
	coord.mu.Unlock()
	if j == nil {
		t.Fatal("submitted job not tracked")
	}
	coord.mu.Lock()
	owner := j.peer
	coord.mu.Unlock()
	var victim, successor *worker
	for _, w := range workers {
		if w.srv.URL == owner {
			victim = w
		} else {
			successor = w
		}
	}
	if victim == nil || successor == nil {
		t.Fatalf("owner %q is not one of the workers", owner)
	}

	// Wait until the owner has streamed at least one checkpoint to its ring
	// successor — the replica a failover will restore from — and the chaos
	// schedule has demonstrably blackholed at least one checkpoint poll (the
	// poll loop can lag the replica stream under load, so this is a wait,
	// not an instant assert).
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, _, cps, ok := successor.svc.Replicas().Lookup(st.ID)
		if ok && len(cps) >= 1 && inj.Fired() >= 1 {
			break
		}
		coord.mu.Lock()
		terminal := j.terminal
		coord.mu.Unlock()
		if terminal {
			t.Fatal("sweep finished before a checkpoint was replicated; make failoverSweep slower")
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica/chaos precondition not reached in 30s (replica ok=%v cps=%d fired=%d)", ok, len(cps), inj.Fired())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The chaos schedule kept the coordinator blind: its observed prefix —
	// what a failover would ship — must still be empty.
	coord.mu.Lock()
	observed := len(j.cps.Cells)
	coord.mu.Unlock()
	if observed != 0 {
		t.Fatalf("coordinator observed %d checkpoints despite the chaos schedule", observed)
	}

	victim.kill()

	fin := awaitTerminal(t, srv.URL, st.ID, 60*time.Second)
	if fin.State != service.StateSucceeded {
		t.Fatalf("failed-over job: %s (%s)", fin.State, fin.Error)
	}
	finJSON, err := json.Marshal(fin.Output)
	if err != nil {
		t.Fatal(err)
	}
	if string(finJSON) != refJSON {
		t.Errorf("replica-resumed output differs from uninterrupted reference:\nref: %s\ngot: %s", refJSON, finJSON)
	}

	// The resume came from the replica, not from the coordinator (which had
	// nothing to ship).
	if got := coord.shippedCheckpoints(); got != 0 {
		t.Errorf("coordinator shipped %d checkpoints, want 0 (polls were blackholed)", got)
	}
	if got := reg.Counter(obs.DispatchFailovers); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	if got := successor.reg.Counter(obs.ReplRestores); got != 1 {
		t.Errorf("successor ReplRestores = %d, want 1", got)
	}

	// Byte-equal resume proof: the successor simulated only the unfinished
	// cells, each with exactly the reference run's trace digest.
	survived := successor.col.sums()
	if len(survived) == 0 || len(survived) >= 4 {
		t.Errorf("successor simulated %d cells, want 1..3 (resume, not re-run)", len(survived))
	}
	for key, sum := range survived {
		if refDigests[key] == "" {
			t.Errorf("successor simulated unexpected cell %s", key)
		} else if sum != refDigests[key] {
			t.Errorf("cell %s: trace digest mismatch after replica resume", key)
		}
	}
}

// TestChaosNoReplicationLosesProgress pins the failure mode replication
// exists to fix: under the same chaos schedule (checkpoint polls
// blackholed) with replication off, killing the owner loses every
// completed cell — the survivor re-simulates the whole sweep from scratch.
func TestChaosNoReplicationLosesProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos e2e")
	}
	workers := []*worker{newWorker(t), newWorker(t)}
	inj := chaos.New(chaos.MustParse("seed 42\nhttp GET */checkpoints error\n"))
	coord, srv, _ := newClusterCfg(t, workers, func(cfg *Config) {
		cfg.Client = &http.Client{Timeout: 5 * time.Second, Transport: inj.RoundTripper(nil)}
	})

	st, _ := submitSpec(t, srv.URL, failoverSweep())
	coord.mu.Lock()
	j := coord.jobs[st.ID]
	coord.mu.Unlock()
	if j == nil {
		t.Fatal("submitted job not tracked")
	}
	coord.mu.Lock()
	owner := j.peer
	coord.mu.Unlock()
	var victim, survivor *worker
	for _, w := range workers {
		if w.srv.URL == owner {
			victim = w
		} else {
			survivor = w
		}
	}
	if victim == nil || survivor == nil {
		t.Fatalf("owner %q is not one of the workers", owner)
	}

	// Wait for the owner to finish at least one cell (probing it directly —
	// the chaos schedule only sits on the coordinator's client).
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(owner + "/v1/jobs/" + st.ID)
		if err == nil {
			var ost service.Status
			err = json.NewDecoder(resp.Body).Decode(&ost)
			resp.Body.Close()
			if err == nil && ost.State.Terminal() {
				t.Fatal("sweep finished before the kill; make failoverSweep slower")
			}
			if err == nil && ost.Done >= 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("owner completed no cell in 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}

	victim.kill()

	fin := awaitTerminal(t, srv.URL, st.ID, 90*time.Second)
	if fin.State != service.StateSucceeded {
		t.Fatalf("failed-over job: %s (%s)", fin.State, fin.Error)
	}
	// Progress was demonstrably lost: nothing shipped, no replica, so the
	// survivor had to simulate all four cells over again.
	if got := coord.shippedCheckpoints(); got != 0 {
		t.Errorf("coordinator shipped %d checkpoints, want 0 (polls were blackholed)", got)
	}
	if got := len(survivor.col.sums()); got != 4 {
		t.Errorf("survivor simulated %d cells, want 4 (full re-run without replication)", got)
	}
}

// TestCallRetriesAndBreaker exercises the bounded-retry call path against
// a chaos transport: transient resets are retried with backoff, persistent
// resets trip the per-peer breaker, an open breaker short-circuits without
// touching the network, and a half-open probe closes it again.
func TestCallRetriesAndBreaker(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{}`)
	}))
	defer peer.Close()

	// First two hits on /flaky reset; /dead always resets.
	inj := chaos.New(chaos.MustParse("seed 9\nhttp GET */flaky nth=1..2 reset\nhttp GET */dead reset\n"))
	reg := obs.NewRegistry()
	coord, err := New(Config{
		Peers:            []string{peer.URL},
		Client:           &http.Client{Timeout: time.Second, Transport: inj.RoundTripper(nil)},
		CallAttempts:     3,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		Obs:              reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): the call path alone is under test.

	var v struct{}
	if err := coord.getJSON(context.Background(), peer.URL, "/flaky", &v); err != nil {
		t.Fatalf("flaky call did not recover via retries: %v", err)
	}
	if got := reg.Counter(obs.DispatchRetries); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if st := coord.breaker(peer.URL).State(); st != BreakerClosed {
		t.Errorf("breaker after recovered call = %v, want closed", st)
	}

	// Three attempts against /dead all reset: the third trips the breaker.
	if err := coord.getJSON(context.Background(), peer.URL, "/dead", &v); err == nil {
		t.Fatal("dead call unexpectedly succeeded")
	}
	if got := reg.Counter(obs.DispatchBreakerOpens); got != 1 {
		t.Errorf("breaker opens = %d, want 1", got)
	}
	if st := coord.breaker(peer.URL).State(); st != BreakerOpen {
		t.Errorf("breaker after persistent failure = %v, want open", st)
	}

	// While open, calls fail locally — no attempt reaches the transport.
	fired := inj.Fired()
	err = coord.getJSON(context.Background(), peer.URL, "/flaky", &v)
	if err == nil || !strings.Contains(err.Error(), "circuit breaker open") {
		t.Fatalf("open-breaker call error = %v, want circuit breaker open", err)
	}
	if got := reg.Counter(obs.DispatchBreakerShortCircuits); got < 1 {
		t.Errorf("short circuits = %d, want >= 1", got)
	}
	if inj.Fired() != fired {
		t.Error("short-circuited call still reached the transport")
	}

	// After the cooldown a half-open probe goes through (the flaky rule is
	// exhausted by now) and the breaker closes.
	time.Sleep(60 * time.Millisecond)
	if err := coord.getJSON(context.Background(), peer.URL, "/flaky", &v); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if st := coord.breaker(peer.URL).State(); st != BreakerClosed {
		t.Errorf("breaker after successful probe = %v, want closed", st)
	}
}

// TestDegradedModeRunsLocally covers graceful degradation: with every peer
// down and an embedded fallback service configured, submissions run
// locally with "degraded": true, /readyz stays 200 (status "degraded"),
// streams serve from the local event log, and the degraded counter and
// breaker-state families land on /metrics.
func TestDegradedModeRunsLocally(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()

	local := service.New(service.Config{
		Workers: 1,
		Runner:  experiment.Runner{Seeds: 1, Workers: 1},
	})
	local.Start()
	defer local.Shutdown(context.Background())

	reg := obs.NewRegistry()
	coord, err := New(Config{
		Peers:        []string{dead.URL},
		HealthEvery:  20 * time.Millisecond,
		PollEvery:    20 * time.Millisecond,
		FailAfter:    1,
		CallAttempts: 1,
		Local:        local,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	defer coord.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()

	// Wait for the health loop to mark the only peer down.
	deadline := time.Now().Add(5 * time.Second)
	for len(coord.HealthyPeers()) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead peer never marked down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Degraded, not down: /readyz stays 200.
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded readyz = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "degraded") {
		t.Errorf("readyz body does not mention degraded mode: %s", body)
	}

	spec := service.JobSpec{
		Seeds: 1,
		Sweep: &service.SweepSpec{
			Scenario:   service.ScenarioSpec{N: 10, Duration: 5},
			Algorithms: []string{"mobic"},
		},
	}
	st, _ := submitSpec(t, srv.URL, spec)
	if !st.Degraded {
		t.Error("degraded submit status not flagged degraded")
	}
	fin := awaitTerminal(t, srv.URL, st.ID, 30*time.Second)
	if fin.State != service.StateSucceeded {
		t.Fatalf("local job: %s (%s)", fin.State, fin.Error)
	}
	if !fin.Degraded {
		t.Error("terminal status of a local job not flagged degraded")
	}
	if got := reg.Counter(obs.DispatchDegraded); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}

	// The stream serves from the local event log and ends with a degraded
	// result line.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var last service.StreamEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != "result" || last.Stat == nil || !last.Stat.Degraded {
		t.Fatalf("stream did not end with a degraded result: %+v", last)
	}

	// Breaker-state and degraded families are exported.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"mobic_dispatch_breaker_state", "mobic_dispatch_degraded_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestProxyErrorPaths drives the dispatch proxy's failure branches with a
// chaos transport: a status proxy to an unreachable worker answers 502, a
// stream cut mid-body reconnects and still delivers the result line, and a
// failover with every successor dead leaves the job tracked (retried each
// health pass) rather than dropped.
func TestProxyErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second proxy e2e")
	}
	workers := []*worker{newWorker(t), newWorker(t)}
	// Cut the first stream attempt after 300 body bytes.
	inj := chaos.New(chaos.MustParse("seed 3\nbody GET */stream nth=1 cut=300\n"))
	coord, srv, _ := newClusterCfg(t, workers, func(cfg *Config) {
		cfg.Client = &http.Client{Timeout: 2 * time.Second, Transport: inj.RoundTripper(nil)}
		cfg.PollEvery = 50 * time.Millisecond
		cfg.CallAttempts = 2
		// Slow health loop: the workers stay "healthy" after the kill below,
		// so the proxy paths (not the failover path) see the dead peers.
		cfg.HealthEvery = time.Hour
	})

	st, _ := submitSpec(t, srv.URL, failoverSweep())

	// Stream with a mid-body cut: the proxy must reconnect and replay until
	// the terminal line arrives.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if inj.Fired() < 1 {
		t.Error("stream cut rule never fired")
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var last service.StreamEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("last stream line unparseable after reconnect: %v", err)
	}
	if last.Type != "result" || last.Stat == nil || last.Stat.State != service.StateSucceeded {
		t.Fatalf("reconnected stream did not end with a succeeded result: %+v", last)
	}

	// A second, still-running job — then kill both workers. The health loop
	// is parked, so the coordinator still believes they are healthy: a
	// status proxy must surface 502 after bounded retries, not hang.
	slow := failoverSweep()
	slow.Sweep.Scenario.N = 151 // distinct digest: don't hit the flight/cache
	st2, _ := submitSpec(t, srv.URL, slow)
	for _, w := range workers {
		w.kill()
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/" + st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status proxy to dead worker = %d, want 502", resp.StatusCode)
	}

	// A fresh submit now walks every (dead) peer and, with no Local
	// fallback configured, sheds 503.
	body2, _ := json.Marshal(service.JobSpec{Experiment: "fig3"})
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(string(body2)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with all peers dead = %d, want 503", resp.StatusCode)
	}

	// Mark the peers down and let failover run: with every successor dead
	// the in-flight job must stay tracked for the next pass, not be
	// dropped.
	coord.mu.Lock()
	for _, p := range coord.ring.Peers() {
		coord.peerDown[p] = true
	}
	tracked := coord.jobs[st2.ID]
	coord.mu.Unlock()
	if tracked == nil {
		t.Fatal("second job not tracked")
	}
	coord.failoverStranded()
	coord.mu.Lock()
	_, still := coord.jobs[st2.ID]
	stillTerminal := coord.jobs[st2.ID] != nil && coord.jobs[st2.ID].terminal
	coord.mu.Unlock()
	if !still || stillTerminal {
		t.Fatal("stranded job dropped or spuriously completed with no successor available")
	}
}
