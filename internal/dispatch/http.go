package dispatch

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"mobic/internal/experiment"
	"mobic/internal/obs"
	"mobic/internal/service"
)

// NewHandler exposes the coordinator under the same API surface as a
// single worker, so clients need not know whether they talk to one daemon
// or a cluster:
//
//	POST   /v1/jobs             place a job on its ring owner (202/200);
//	                            identical specs are answered from the
//	                            result cache or collapsed onto the job
//	                            already in flight
//	POST   /v1/jobs:batch       place a batch atomically on one ring owner
//	                            (all-or-none, like the worker endpoint)
//	GET    /v1/jobs/{id}        status, proxied to the owning worker
//	                            (answered locally once terminal)
//	GET    /v1/jobs/{id}/stream NDJSON stream, proxied; on reconnect the
//	                            proxy skips the lines it already delivered,
//	                            so clients see each event exactly once
//	DELETE /v1/jobs/{id}        cancel, proxied
//	GET    /livez               process liveness
//	GET    /readyz              503 until at least one worker is healthy
//	GET    /metrics             dispatch + cache telemetry
//
// Tenant identity (Authorization API key / X-Mobic-Tenant header) is
// forwarded verbatim to the owning worker, which makes the admission
// decision; per-tenant 429s and Retry-After hints pass back through.
func NewHandler(c *Coordinator) http.Handler {
	h := &proxy{c: c}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", h.submit)
	mux.HandleFunc("POST /v1/jobs:batch", h.submitBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", h.status)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", h.stream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", h.cancel)
	mux.HandleFunc("GET /livez", h.livez)
	mux.HandleFunc("GET /readyz", h.readyz)
	mux.HandleFunc("GET /healthz", h.readyz)
	mux.HandleFunc("GET /metrics", h.metrics)
	return mux
}

type proxy struct {
	c *Coordinator
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// parseRetryAfter reads a Retry-After header value as whole seconds,
// accepting both the delta-seconds and HTTP-date forms. Returns 0 when
// absent or unparseable.
func parseRetryAfter(v string, now time.Time) int {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return secs
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now).Seconds(); d > 0 {
			return int(math.Ceil(d))
		}
	}
	return 0
}

// submit places one job. Order of resolution: coordinator result cache
// (terminal answer, no worker touched), digest flight (attach to the
// identical job already running), consistent-hash forward (ring owner
// first, successors on connection failure).
func (p *proxy) submit(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	digest := spec.Digest()
	key := r.Header.Get("Idempotency-Key")

	if p.c.cfg.Cache != nil {
		if data, ok := p.c.cfg.Cache.Get(digest); ok {
			var out service.Output
			if err := json.Unmarshal(data, &out); err == nil {
				now := p.c.cfg.Clock()
				st := service.Status{
					ID:         randomID(),
					State:      service.StateSucceeded,
					Spec:       spec,
					Progress:   1,
					CreatedAt:  now,
					FinishedAt: &now,
					Output:     out,
				}
				p.c.track(&remoteJob{
					id: st.ID, digest: digest, key: key, spec: spec,
					synthetic: true, terminal: true, final: &st,
					created: now, finished: now,
				})
				w.Header().Set("Location", "/v1/jobs/"+st.ID)
				writeJSON(w, http.StatusOK, st)
				return
			}
		}
	}

	// Identical spec already in flight at the coordinator level: hand back
	// the leader instead of forwarding a duplicate (the worker's own flight
	// map would collapse it too, but answering here spares the hop).
	if leaderID, ok := p.c.flights.Leader(digest); ok {
		if j, ok := p.c.lookup(leaderID); ok {
			w.Header().Set("Location", "/v1/jobs/"+j.id)
			p.serveTracked(w, r, j, http.StatusOK)
			return
		}
	}

	body, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	hdr := http.Header{"Content-Type": {"application/json"}}
	if key != "" {
		hdr.Set("Idempotency-Key", key)
	}
	copyTenantHeaders(hdr, r)
	for _, peer := range p.c.ring.Owners(digest) {
		if p.c.isDown(peer) {
			continue
		}
		hdr.Del("X-Mobic-Replica")
		if rt := p.c.replicaTarget(digest, peer); rt != "" {
			hdr.Set("X-Mobic-Replica", rt)
		}
		// Single breaker-gated attempt per peer: the ring walk itself is
		// the retry, and an open breaker skips the peer without waiting
		// out an attempt timeout.
		resp, err := p.c.attempt(r.Context(), peer, http.MethodPost, "/v1/jobs", body, hdr)
		if err != nil {
			// Connection-level failure: walk to the ring successor. The
			// health loop will mark the peer down on its own cadence.
			p.c.cfg.Logger.Warn("submit forward failed", "peer", peer, "err", err)
			continue
		}
		p.relaySubmit(w, resp, spec, digest, key, peer)
		return
	}
	// Degraded mode: the ring has no live owner. Run the job on the
	// embedded fallback service rather than bouncing the client.
	if p.c.cfg.Local != nil {
		p.submitLocal(w, r, spec, digest, key)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "dispatch: no healthy worker")
}

// copyTenantHeaders forwards the request's tenant credentials to a
// worker, which owns the admission decision (the coordinator has no
// tenant registry of its own).
func copyTenantHeaders(hdr http.Header, r *http.Request) {
	if auth := r.Header.Get("Authorization"); auth != "" {
		hdr.Set("Authorization", auth)
	}
	if tn := r.Header.Get("X-Mobic-Tenant"); tn != "" {
		hdr.Set("X-Mobic-Tenant", tn)
	}
}

// submitLocal places a job on the coordinator's embedded fallback service
// and tracks it as a degraded-mode local job. Statuses it serves carry
// "degraded": true so callers can tell the answer was not cluster-placed.
func (p *proxy) submitLocal(w http.ResponseWriter, r *http.Request, spec service.JobSpec, digest, key string) {
	tenant := p.c.cfg.Local.ResolveTenant(r.Header.Get("Authorization"), r.Header.Get("X-Mobic-Tenant"))
	job, existed, err := p.c.cfg.Local.SubmitWith(spec, service.SubmitOpts{Key: key, Tenant: tenant})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "dispatch: degraded submit: %v", err)
		return
	}
	if !existed {
		p.c.track(&remoteJob{
			id: job.ID(), digest: digest, key: key, spec: spec,
			local: true, created: p.c.cfg.Clock(),
			cps: experiment.ExportCheckpoints(nil),
		})
		p.c.cfg.Obs.Add(obs.DispatchDegraded, 1)
		p.c.cfg.Logger.Warn("no healthy worker; running job locally", "job", job.ID())
	}
	st, _, _ := job.Snapshot()
	st.Degraded = true
	code := http.StatusAccepted
	if existed || st.State.Terminal() {
		code = http.StatusOK
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, code, st)
}

// submitBatch proxies POST /v1/jobs:batch. The whole batch is placed on
// one ring owner (keyed by the combined spec digest, so sibling jobs stay
// co-located and the worker's single-WAL-frame atomicity holds for the
// batch); the worker makes the all-or-none admission decision.
func (p *proxy) submitBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Jobs []service.JobSpec `json:"jobs"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch must contain at least one job")
		return
	}
	if len(req.Jobs) > service.MaxBatchJobs {
		writeError(w, http.StatusBadRequest, "batch of %d jobs exceeds the %d-job limit", len(req.Jobs), service.MaxBatchJobs)
		return
	}
	for i := range req.Jobs {
		if err := req.Jobs[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "jobs[%d]: %v", i, err)
			return
		}
	}
	h := sha256.New()
	for i := range req.Jobs {
		io.WriteString(h, req.Jobs[i].Digest())
	}
	batchDigest := hex.EncodeToString(h.Sum(nil))
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	hdr := http.Header{"Content-Type": {"application/json"}}
	copyTenantHeaders(hdr, r)
	for _, peer := range p.c.ring.Owners(batchDigest) {
		if p.c.isDown(peer) {
			continue
		}
		resp, err := p.c.attempt(r.Context(), peer, http.MethodPost, "/v1/jobs:batch", body, hdr)
		if err != nil {
			p.c.cfg.Logger.Warn("batch forward failed", "peer", peer, "err", err)
			continue
		}
		p.relayBatch(w, resp, req.Jobs, peer)
		return
	}
	if p.c.cfg.Local != nil {
		p.batchLocal(w, r, req.Jobs)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "dispatch: no healthy worker")
}

// relayBatch finishes a forwarded batch: tracks each accepted job under
// its own spec digest, merges Retry-After hints on shed, and passes
// everything else through.
func (p *proxy) relayBatch(w http.ResponseWriter, resp *http.Response, specs []service.JobSpec, peer string) {
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var br struct {
			Jobs []service.Status `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			writeError(w, http.StatusBadGateway, "decoding worker response: %v", err)
			return
		}
		now := p.c.cfg.Clock()
		for i, st := range br.Jobs {
			if i >= len(specs) {
				break
			}
			p.c.track(&remoteJob{
				id: st.ID, digest: specs[i].Digest(), spec: specs[i],
				tenant: st.Tenant, peer: peer, created: now,
				cps: experiment.ExportCheckpoints(nil),
			})
		}
		p.c.cfg.Obs.Add(obs.DispatchForwarded, int64(len(br.Jobs)))
		writeJSON(w, resp.StatusCode, br)
	case http.StatusTooManyRequests:
		hint := p.c.retryAfterHint()
		if peerHint := parseRetryAfter(resp.Header.Get("Retry-After"), p.c.cfg.Clock()); peerHint > hint {
			hint = peerHint
		}
		w.Header().Set("Retry-After", strconv.Itoa(hint))
		passthrough(w, resp)
	default:
		passthrough(w, resp)
	}
}

// batchLocal runs a batch on the embedded fallback service in degraded
// mode, preserving the all-or-none contract (the local service journals
// the batch in one frame too).
func (p *proxy) batchLocal(w http.ResponseWriter, r *http.Request, specs []service.JobSpec) {
	tenant := p.c.cfg.Local.ResolveTenant(r.Header.Get("Authorization"), r.Header.Get("X-Mobic-Tenant"))
	jobs, err := p.c.cfg.Local.SubmitBatch(specs, service.SubmitOpts{Tenant: tenant})
	switch {
	case errors.Is(err, service.ErrInvalidSpec):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrTenantQuota), errors.Is(err, service.ErrRateLimited):
		retry := p.c.retryAfterHint()
		var se *service.ShedError
		if errors.As(err, &se) && se.RetryAfter > retry {
			retry = se.RetryAfter
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusServiceUnavailable, "dispatch: degraded batch: %v", err)
		return
	}
	now := p.c.cfg.Clock()
	statuses := make([]service.Status, len(jobs))
	for i, job := range jobs {
		p.c.track(&remoteJob{
			id: job.ID(), digest: specs[i].Digest(), spec: specs[i],
			tenant: tenant, local: true, created: now,
			cps: experiment.ExportCheckpoints(nil),
		})
		statuses[i], _, _ = job.Snapshot()
		statuses[i].Degraded = true
	}
	p.c.cfg.Obs.Add(obs.DispatchDegraded, int64(len(jobs)))
	p.c.cfg.Logger.Warn("no healthy worker; running batch locally", "jobs", len(jobs))
	writeJSON(w, http.StatusAccepted, struct {
		Jobs []service.Status `json:"jobs"`
	}{statuses})
}

// relaySubmit finishes a forwarded submission: tracks accepted jobs,
// merges Retry-After hints on shed, and passes everything else through.
func (p *proxy) relaySubmit(w http.ResponseWriter, resp *http.Response, spec service.JobSpec, digest, key, peer string) {
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted, http.StatusOK:
		var st service.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			writeError(w, http.StatusBadGateway, "decoding worker response: %v", err)
			return
		}
		j := &remoteJob{
			id: st.ID, digest: digest, key: key, spec: spec,
			tenant: st.Tenant, peer: peer, created: p.c.cfg.Clock(),
			cps: experiment.ExportCheckpoints(nil),
		}
		if st.State.Terminal() {
			// The worker answered from its own cache: terminal on arrival.
			j.terminal, j.final, j.finished = true, &st, p.c.cfg.Clock()
		}
		p.c.track(j)
		p.c.cfg.Obs.Add(obs.DispatchForwarded, 1)
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, resp.StatusCode, st)
	case http.StatusTooManyRequests:
		// Shed: the cluster-wide hint and the owning worker's hint answer
		// different questions (global drain vs. that queue's drain); a
		// client obeying the max of both is safe either way. Always
		// integer seconds.
		hint := p.c.retryAfterHint()
		if peerHint := parseRetryAfter(resp.Header.Get("Retry-After"), p.c.cfg.Clock()); peerHint > hint {
			hint = peerHint
		}
		w.Header().Set("Retry-After", strconv.Itoa(hint))
		passthrough(w, resp)
	default:
		passthrough(w, resp)
	}
}

// passthrough copies a worker response (status, content type, body) as-is.
func passthrough(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// serveTracked answers a status query for a tracked job: locally once
// terminal, proxied to the owning worker otherwise.
func (p *proxy) serveTracked(w http.ResponseWriter, r *http.Request, j *remoteJob, code int) {
	p.c.mu.Lock()
	terminal, final, peer, local := j.terminal, j.final, j.peer, j.local
	p.c.mu.Unlock()
	if terminal && final != nil {
		writeJSON(w, code, final)
		return
	}
	if local {
		job, ok := p.c.cfg.Local.Get(j.id)
		if !ok {
			writeError(w, http.StatusNotFound, "no job %q (it may have expired)", j.id)
			return
		}
		st, _, _ := job.Snapshot()
		st.Degraded = true
		writeJSON(w, code, st)
		return
	}
	var st service.Status
	if err := p.c.getJSON(r.Context(), peer, "/v1/jobs/"+j.id, &st); err != nil {
		writeError(w, http.StatusBadGateway, "worker unreachable: %v", err)
		return
	}
	writeJSON(w, code, st)
}

func (p *proxy) status(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := p.c.lookup(id); ok {
		p.serveTracked(w, r, j, http.StatusOK)
		return
	}
	// Not ours — possibly submitted directly to a worker. Probe the
	// healthy peers.
	for _, peer := range p.c.HealthyPeers() {
		var st service.Status
		if err := p.c.getJSON(r.Context(), peer, "/v1/jobs/"+id, &st); err == nil {
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	writeError(w, http.StatusNotFound, "no job %q (it may have expired)", id)
}

func (p *proxy) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	peers := p.c.HealthyPeers()
	if j, ok := p.c.lookup(id); ok {
		p.c.mu.Lock()
		terminal, final, peer, local := j.terminal, j.final, j.peer, j.local
		p.c.mu.Unlock()
		if terminal && final != nil {
			writeJSON(w, http.StatusOK, final)
			return
		}
		if local {
			job, ok := p.c.cfg.Local.Cancel(id)
			if !ok {
				writeError(w, http.StatusNotFound, "no job %q (it may have expired)", id)
				return
			}
			st, _, _ := job.Snapshot()
			st.Degraded = true
			writeJSON(w, http.StatusOK, st)
			return
		}
		peers = []string{peer}
	}
	for _, peer := range peers {
		resp, err := p.c.call(r.Context(), peer, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			passthrough(w, resp)
			resp.Body.Close()
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	writeError(w, http.StatusNotFound, "no job %q (it may have expired)", id)
}

// stream proxies the NDJSON event stream. If the owning worker dies
// mid-stream, the proxy waits for failover and reconnects; the upstream
// replays its event log from the start, and the proxy skips the lines it
// already delivered, so the client sees each event exactly once and the
// terminal "result" line appears exactly once, last.
func (p *proxy) stream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, tracked := p.c.lookup(id)
	if !tracked {
		writeError(w, http.StatusNotFound, "no job %q (it may have expired)", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Push the header out so a client attached to a queued job is not
	// stuck in its transport waiting for the first byte.
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)

	// written counts the NDJSON lines already delivered to the client.
	// Upstream replays its event log from the start on every attempt, so
	// each reconnect skips exactly that many lines — without it, every
	// reconnect duplicated the whole history the client had already seen.
	written := 0
	for {
		p.c.mu.Lock()
		terminal, final, peer, local := j.terminal, j.final, j.peer, j.local
		p.c.mu.Unlock()
		if terminal && final != nil {
			// Answered locally (cache hit, or completion observed by the
			// poll loop after the stream's worker died).
			_ = enc.Encode(service.StreamEvent{Type: "result", State: final.State, Stat: final})
			return
		}
		if local {
			p.streamLocal(w, r, enc, flusher, j)
			return
		}
		delivered, done := p.copyStream(w, r, flusher, peer, id, written)
		written += delivered
		if done {
			return
		}
		// Stream broke before the result line: worker died or restarted.
		// Wait a beat for health/failover to repoint the job, then retry.
		select {
		case <-r.Context().Done():
			return
		case <-p.c.ctx.Done():
			return
		case <-time.After(p.c.cfg.PollEvery):
		}
	}
}

// copyStream relays one upstream stream attempt, skipping the first skip
// lines (already delivered by a previous attempt). It returns how many
// new lines it delivered and whether the terminal result line went out.
//
// The skip is sound because a reconnect to the same worker replays a
// strict superset of the previous attempt's prefix. A failed-over
// successor resumes from the last shipped checkpoint, so its log can be
// shorter than what was already delivered; then the attempt delivers
// nothing (even a replayed "result" line is consumed by the skip) and the
// loop falls back to the poll path, which serves the terminal status from
// the coordinator's own record — the result still reaches the client
// exactly once.
func (p *proxy) copyStream(w io.Writer, r *http.Request, flusher http.Flusher, peer, id string, skip int) (delivered int, done bool) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		peer+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return 0, false
	}
	resp, err := p.c.streamClient.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, false
	}
	br := bufio.NewReaderSize(resp.Body, 64*1024)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// The connection died mid-line (or closed cleanly): a partial
			// tail is dropped, never forwarded — skip counts only complete
			// delivered lines, so the reconnect replays the torn line whole.
			return delivered, false
		}
		if skip > 0 {
			skip--
			continue
		}
		if _, err := w.Write(line); err != nil {
			return delivered, true // client went away; nothing more to deliver
		}
		delivered++
		if flusher != nil {
			flusher.Flush()
		}
		var ev service.StreamEvent
		if json.Unmarshal(line, &ev) == nil && ev.Type == "result" {
			return delivered, true
		}
	}
}

// streamLocal serves a degraded-mode job's event log straight from the
// embedded fallback service — same replay loop a worker runs, with the
// terminal status decorated as degraded.
func (p *proxy) streamLocal(w http.ResponseWriter, r *http.Request, enc *json.Encoder, flusher http.Flusher, j *remoteJob) {
	job, ok := p.c.cfg.Local.Get(j.id)
	if !ok {
		return
	}
	next := 0
	for {
		events, notify := job.EventsSince(next)
		for _, ev := range events {
			if ev.Type == "result" && ev.Stat != nil {
				st := *ev.Stat
				st.Degraded = true
				ev.Stat = &st
			}
			if err := enc.Encode(ev); err != nil {
				return // client went away
			}
			// Same per-event flush as the worker's handler: a batch-end
			// flush starved the client of the last line in every burst.
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Type == "result" {
				return
			}
		}
		next += len(events)
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-p.c.ctx.Done():
			return
		}
	}
}

func (p *proxy) livez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "alive"})
}

// readyz reports coordinator readiness: able to place work, i.e. at least
// one worker is passing health checks.
func (p *proxy) readyz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status       string `json:"status"`
		Ready        bool   `json:"ready"`
		Reason       string `json:"reason,omitempty"`
		PeersHealthy int    `json:"peers_healthy"`
		PeersTotal   int    `json:"peers_total"`
		TrackedJobs  int    `json:"tracked_jobs"`
	}
	healthy := len(p.c.HealthyPeers())
	h := health{
		Status:       "ok",
		Ready:        healthy > 0,
		PeersHealthy: healthy,
		PeersTotal:   len(p.c.ring.Peers()),
		TrackedJobs:  p.c.TrackedJobs(),
	}
	code := http.StatusOK
	switch {
	case h.Ready:
	case p.c.cfg.Local != nil:
		// No worker up, but the embedded fallback can still run jobs:
		// degraded, not down — routing traffic away would help nobody.
		h.Ready = true
		h.Status = "degraded"
		h.Reason = "no healthy workers; submissions run locally"
	default:
		h.Status = "no healthy workers"
		h.Reason = h.Status
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// metrics serves the dispatch/cache telemetry families plus per-peer
// liveness gauges.
func (p *proxy) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if wt, ok := p.c.cfg.Obs.(io.WriterTo); ok {
		_, _ = wt.WriteTo(w)
	}
	fmt.Fprintf(w, "# HELP mobic_dispatch_jobs_tracked Jobs currently tracked by the coordinator.\n")
	fmt.Fprintf(w, "# TYPE mobic_dispatch_jobs_tracked gauge\n")
	fmt.Fprintf(w, "mobic_dispatch_jobs_tracked %d\n", p.c.TrackedJobs())
	fmt.Fprintf(w, "# HELP mobic_dispatch_peer_up Per-worker health (1 = passing /readyz).\n")
	fmt.Fprintf(w, "# TYPE mobic_dispatch_peer_up gauge\n")
	for _, peer := range p.c.ring.Peers() {
		up := 1
		if p.c.isDown(peer) {
			up = 0
		}
		fmt.Fprintf(w, "mobic_dispatch_peer_up{peer=%q} %d\n", peer, up)
	}
	fmt.Fprintf(w, "# HELP mobic_dispatch_breaker_state Per-peer circuit breaker (0 closed, 1 open, 2 half-open).\n")
	fmt.Fprintf(w, "# TYPE mobic_dispatch_breaker_state gauge\n")
	for _, peer := range p.c.ring.Peers() {
		fmt.Fprintf(w, "mobic_dispatch_breaker_state{peer=%q} %d\n", peer, p.c.breaker(peer).State())
	}
}
