// Package dispatch is the coordinator half of distributed mobicd: it
// places jobs across a set of worker daemons with a consistent-hash ring
// keyed by the job spec's content digest, proxies the /v1/jobs API
// transparently, health-checks workers off /readyz, and on a worker
// failure re-dispatches that worker's interrupted jobs to the ring
// successor — shipping each job's journaled checkpoint prefix so the sweep
// resumes at its first incomplete cell instead of starting over.
//
// Digest-keyed placement is what makes the coordinator's result cache and
// the workers' own caches compose: identical sweeps always land on the
// same worker (cache locality), and the determinism argument (see
// DESIGN.md S28) makes any cached copy interchangeable with a fresh run.
package dispatch

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over worker base URLs. Each peer owns
// VNodes points on the ring, which evens out placement for small clusters
// (a handful of physical nodes is exactly where raw hashing is lumpiest).
// The ring itself is immutable after construction and safe for concurrent
// readers; liveness is layered on top via the down predicate of Owner.
type Ring struct {
	points []point
	peers  []string
}

// point is one virtual node: a position on the ring and the peer that owns it.
type point struct {
	hash uint64
	peer string
}

// ringHash positions a label on the ring: the first 8 bytes of its SHA-256,
// matching the key space of the spec digests placed on it.
func ringHash(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring with vnodes virtual nodes per peer (minimum 1).
// Duplicate peers are collapsed.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{}
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: ringHash(fmt.Sprintf("%s#%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// Peers returns the distinct peers on the ring, in insertion order.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the first peer at or after key's ring position for which
// down returns false — the placement target, or the failover successor
// when the natural owner is excluded. A nil down accepts every peer.
// Returns "" when the ring is empty or every peer is down.
func (r *Ring) Owner(key string, down func(peer string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if down == nil {
		// Fast path for plain placement: the first point wins, no
		// visited-set allocation.
		return r.points[start%len(r.points)].peer
	}
	tried := make(map[string]bool, len(r.peers))
	for i := 0; i < len(r.points) && len(tried) < len(r.peers); i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if tried[p] {
			continue
		}
		tried[p] = true
		if down == nil || !down(p) {
			return p
		}
	}
	return ""
}

// Owners returns every distinct peer in ring order starting at key's
// position: the owner first, then each successive failover candidate.
func (r *Ring) Owners(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.peers))
	seen := make(map[string]bool, len(r.peers))
	for i := 0; i < len(r.points) && len(out) < len(r.peers); i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
