package dispatch

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"mobic/internal/chaos"
	"mobic/internal/experiment"
	"mobic/internal/service"
)

// TestChaosSoak is the sustained-fault gate run by scripts/check.sh under
// the race detector: a replicated three-worker cluster takes ~10 seconds
// of submissions while a probabilistic chaos schedule resets submits,
// degrades checkpoint polls, cuts streams and injects latency — and a
// worker is killed outright mid-soak. Every job must still converge to
// success, and the long-running job that straddles the kill must finish
// byte-equal to an uninterrupted reference run.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("10s chaos soak")
	}
	refJSON, _ := referenceRun(t)

	replicated := func(cfg *service.Config) {
		cfg.Replicate = true
		cfg.ReplicaFlushEvery = 10 * time.Millisecond
	}
	workers := []*worker{
		newWorkerCfg(t, replicated),
		newWorkerCfg(t, replicated),
		newWorkerCfg(t, replicated),
	}

	// Probabilistic but seeded: the same soak replays the same fault
	// sequence against the same operation order.
	inj := chaos.New(chaos.MustParse("seed 1234\n" +
		"http POST */jobs prob=0.1 reset\n" +
		"http GET */checkpoints prob=0.25 error\n" +
		"body GET */stream prob=0.5 cut=256\n" +
		"http GET * prob=0.05 latency=10ms\n"))

	// A local fallback absorbs the (unlikely) submit walk where chaos
	// resets every peer's single attempt.
	local := service.New(service.Config{
		Workers: 1,
		Runner:  experiment.Runner{Seeds: 1, Workers: 1},
	})
	local.Start()
	defer local.Shutdown(context.Background())

	coord, srv, _ := newClusterCfg(t, workers, func(cfg *Config) {
		cfg.Replicate = true
		cfg.Client = &http.Client{Timeout: 2 * time.Second, Transport: inj.RoundTripper(nil)}
		cfg.Local = local
		cfg.BreakerCooldown = 200 * time.Millisecond
	})

	// The straddling job: a slow sweep whose owner dies under it.
	victim, _ := submitSpec(t, srv.URL, failoverSweep())
	coord.mu.Lock()
	owner := ""
	if j := coord.jobs[victim.ID]; j != nil {
		owner = j.peer
	}
	coord.mu.Unlock()
	if owner == "" {
		t.Fatal("victim job not tracked on a peer")
	}

	// Kill the owner as soon as it has committed work (probing it directly
	// — the chaos schedule sits only on the coordinator's client).
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(owner + "/v1/jobs/" + victim.ID)
		if err == nil {
			var ost service.Status
			err = json.NewDecoder(resp.Body).Decode(&ost)
			resp.Body.Close()
			if err == nil && (ost.Done >= 1 || ost.State.Terminal()) {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("victim owner completed no cell in 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, w := range workers {
		if w.srv.URL == owner {
			w.kill()
		}
	}

	// Churn distinct quick sweeps through the degraded cluster for the
	// soak window; each must converge despite resets, latency and the
	// mid-soak failover running underneath.
	soakUntil := time.Now().Add(10 * time.Second)
	submitted := 0
	for n := 20; time.Now().Before(soakUntil); n++ {
		spec := service.JobSpec{
			Seeds: 1,
			Sweep: &service.SweepSpec{
				Scenario:   service.ScenarioSpec{N: n, Duration: 5},
				Algorithms: []string{"mobic"},
			},
		}
		st, _ := submitSpec(t, srv.URL, spec)
		fin := awaitTerminal(t, srv.URL, st.ID, 30*time.Second)
		if fin.State != service.StateSucceeded {
			t.Fatalf("soak job %d (n=%d): %s (%s)", submitted, n, fin.State, fin.Error)
		}
		submitted++
	}

	// The job that straddled the kill converged byte-equal to the
	// uninterrupted reference.
	fin := awaitTerminal(t, srv.URL, victim.ID, 60*time.Second)
	if fin.State != service.StateSucceeded {
		t.Fatalf("victim job: %s (%s)", fin.State, fin.Error)
	}
	finJSON, err := json.Marshal(fin.Output)
	if err != nil {
		t.Fatal(err)
	}
	if string(finJSON) != refJSON {
		t.Errorf("victim output diverged from reference after chaotic failover:\nref: %s\ngot: %s", refJSON, finJSON)
	}

	if inj.Fired() < 1 {
		t.Fatal("chaos schedule never fired during the soak")
	}
	t.Logf("soak: %d jobs converged, %d faults injected", submitted, inj.Fired())
}
