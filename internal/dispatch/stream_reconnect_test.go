package dispatch

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mobic/internal/chaos"
	"mobic/internal/service"
)

// TestStreamReconnectExactlyOnce pins the stream proxy's reconnect
// bugfix: when the upstream connection dies mid-history, the proxy
// reconnects and the worker replays its event log from the start — the
// proxy must skip the prefix it already delivered, so the client sees
// every event exactly once. Before the fix the replayed prefix was
// forwarded again, duplicating every line written before the cut.
func TestStreamReconnectExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second stream e2e")
	}
	workers := []*worker{newWorker(t), newWorker(t)}
	// Cut the first upstream stream body mid-history: 150 bytes is past the
	// submitted/started lines but well short of the full replay, so the
	// reconnect happens with a non-empty delivered prefix.
	inj := chaos.New(chaos.MustParse("seed 11\nbody GET */stream nth=1 cut=150\n"))
	_, srv, _ := newClusterCfg(t, workers, func(cfg *Config) {
		cfg.Client = &http.Client{Timeout: 2 * time.Second, Transport: inj.RoundTripper(nil)}
		cfg.PollEvery = 20 * time.Millisecond
	})

	st, _ := submitSpec(t, srv.URL, failoverSweep())

	// Attach while the job is still running: the upstream connection is
	// cut after the first 150 body bytes, so the proxy reconnects with a
	// non-empty delivered prefix and the worker replays its log from the
	// start. Reading to EOF rides through the cut to the terminal line.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if inj.Fired() < 1 {
		t.Fatal("stream cut rule never fired; the test exercised nothing")
	}

	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	seen := map[string]int{}
	var (
		results  int
		lastDone = -1
	)
	for i, line := range lines {
		seen[line]++
		if seen[line] > 1 {
			t.Errorf("line %d delivered twice across the reconnect: %s", i, line)
		}
		var ev service.StreamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d unparseable (torn or interleaved): %q", i, line)
		}
		switch ev.Type {
		case "result":
			results++
			if i != len(lines)-1 {
				t.Errorf("result event at line %d of %d, want last", i, len(lines))
			}
		case "progress":
			if ev.Done <= lastDone {
				t.Errorf("progress went backwards at line %d: done %d after %d (replayed prefix?)", i, ev.Done, lastDone)
			}
			lastDone = ev.Done
		}
	}
	if results != 1 {
		t.Fatalf("stream delivered %d result lines, want exactly 1", results)
	}
	// The full 4-cell history made it through: attach, progress per cell,
	// terminal result.
	if lastDone != 4 {
		t.Errorf("final progress done = %d, want 4 (events lost across the reconnect)", lastDone)
	}
}
