package dispatch

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c"}
	r1 := NewRing(peers, 64)
	r2 := NewRing([]string{"http://c", "http://a", "http://b"}, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%064x", i)
		if o1, o2 := r1.Owner(key, nil), r2.Owner(key, nil); o1 != o2 {
			t.Fatalf("key %s: owner depends on peer list order (%s vs %s)", key, o1, o2)
		}
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(peers, 64)
	counts := make(map[string]int)
	n := 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("%064x", i), nil)]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / float64(n)
		if share < 0.10 || share > 0.45 {
			t.Errorf("peer %s owns %.1f%% of keys; virtual nodes not balancing", p, 100*share)
		}
	}
}

func TestRingMinimalMovementOnFailure(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c"}
	r := NewRing(peers, 64)
	down := "http://b"
	moved := 0
	n := 1000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%064x", i)
		before := r.Owner(key, nil)
		after := r.Owner(key, func(p string) bool { return p == down })
		if before != down && after != before {
			t.Fatalf("key %s moved from healthy %s to %s when %s failed", key, before, after, down)
		}
		if before == down {
			if after == down || after == "" {
				t.Fatalf("key %s not reassigned off the failed peer (got %q)", key, after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the failed peer; test is vacuous")
	}
}

func TestRingSuccessorOrder(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://c"}, 32)
	key := fmt.Sprintf("%064x", 42)
	owners := r.Owners(key)
	if len(owners) != 3 {
		t.Fatalf("Owners returned %d peers, want 3", len(owners))
	}
	if owners[0] != r.Owner(key, nil) {
		t.Fatalf("Owners[0] = %s, Owner = %s", owners[0], r.Owner(key, nil))
	}
	// Excluding the owner must yield the recorded successor.
	succ := r.Owner(key, func(p string) bool { return p == owners[0] })
	if succ != owners[1] {
		t.Fatalf("successor = %s, Owners[1] = %s", succ, owners[1])
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 16)
	if o := empty.Owner("abc", nil); o != "" {
		t.Fatalf("empty ring owner = %q", o)
	}
	dup := NewRing([]string{"http://a", "http://a", ""}, 8)
	if len(dup.Peers()) != 1 {
		t.Fatalf("duplicate/empty peers not collapsed: %v", dup.Peers())
	}
	allDown := NewRing([]string{"http://a", "http://b"}, 8)
	if o := allDown.Owner("abc", func(string) bool { return true }); o != "" {
		t.Fatalf("all-down owner = %q, want empty", o)
	}
}

// BenchmarkDispatchPlacement measures one placement decision: hash a spec
// digest onto the ring and walk to its owner. This is the coordinator's
// per-submission routing cost.
func BenchmarkDispatchPlacement(b *testing.B) {
	peers := make([]string, 8)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	r := NewRing(peers, 64)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Owner(keys[i%len(keys)], nil) == "" {
			b.Fatal("empty owner")
		}
	}
}
