package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mobic/internal/experiment"
	"mobic/internal/fair"
	"mobic/internal/obs"
	"mobic/internal/service"
)

// fairRegistry builds the degraded-test tenant table: one fully-shed
// tenant alongside the default.
func fairRegistry() (*fair.Registry, error) {
	return fair.NewRegistry(nil, []fair.Tenant{{Name: "blocked", Weight: 1, MaxQueued: -1}}, false)
}

// postBatchJSON posts a raw batch body through the coordinator.
func postBatchJSON(t *testing.T, url, tenant, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs:batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Mobic-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// smallSweep is a fast 1-cell sweep uniquified by seed.
func smallSweep(seed uint64) string {
	return fmt.Sprintf(`{"sweep":{"scenario":{"n":10,"duration":30,"warmup":1},"algorithms":["mobic"]},"seeds":1,"base_seed":%d}`, seed)
}

// TestBatchProxy drives POST /v1/jobs:batch through the coordinator: the
// batch is placed whole on one ring owner, every returned job is tracked
// (status polls through the proxy work), and invalid batches 400 at the
// coordinator without touching a worker.
func TestBatchProxy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second batch e2e")
	}
	workers := []*worker{newWorker(t), newWorker(t)}
	_, srv, _ := newCluster(t, workers)

	resp := postBatchJSON(t, srv.URL, "", fmt.Sprintf(`{"jobs":[%s,%s,%s]}`,
		smallSweep(1), smallSweep(2), smallSweep(3)))
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("batch via coordinator: status %d: %s", resp.StatusCode, b)
	}
	var br struct {
		Jobs []service.Status `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(br.Jobs) != 3 {
		t.Fatalf("batch returned %d statuses, want 3", len(br.Jobs))
	}
	// Each sibling is tracked individually: status polls proxy through.
	for _, st := range br.Jobs {
		fin := awaitTerminal(t, srv.URL, st.ID, 60*time.Second)
		if fin.State != service.StateSucceeded {
			t.Fatalf("batch job %s finished %s", st.ID, fin.State)
		}
	}

	// Coordinator-side validation: bad batches never reach a worker.
	for name, body := range map[string]string{
		"invalid-spec": `{"jobs":[{"experiment":"nope"}]}`,
		"empty":        `{"jobs":[]}`,
		"not-json":     `nope`,
	} {
		resp := postBatchJSON(t, srv.URL, "", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestBatchDegradedLocal pins the no-healthy-worker path: the batch runs
// on the embedded fallback service, all-or-none, with degraded statuses;
// a zero-quota tenant's batch sheds with a per-tenant 429 even degraded.
func TestBatchDegradedLocal(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()

	tenants, err := fairRegistry()
	if err != nil {
		t.Fatal(err)
	}
	local := service.New(service.Config{
		Workers: 1,
		Runner:  experiment.Runner{Seeds: 1, Workers: 1},
		Tenants: tenants,
	})
	local.Start()
	defer local.Shutdown(context.Background())

	coord, err := New(Config{
		Peers:        []string{dead.URL},
		HealthEvery:  20 * time.Millisecond,
		PollEvery:    20 * time.Millisecond,
		FailAfter:    1,
		CallAttempts: 1,
		Local:        local,
		Obs:          obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	defer coord.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for len(coord.HealthyPeers()) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead peer never marked down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp := postBatchJSON(t, srv.URL, "", fmt.Sprintf(`{"jobs":[%s,%s]}`, smallSweep(10), smallSweep(11)))
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("degraded batch: status %d: %s", resp.StatusCode, b)
	}
	var br struct {
		Jobs []service.Status `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(br.Jobs) != 2 {
		t.Fatalf("degraded batch returned %d statuses, want 2", len(br.Jobs))
	}
	for _, st := range br.Jobs {
		if !st.Degraded {
			t.Errorf("degraded batch job %s not flagged degraded", st.ID)
		}
	}

	// A fully-shed tenant's batch 429s with a Retry-After even in
	// degraded mode — quotas are enforced by the local service too.
	resp = postBatchJSON(t, srv.URL, "blocked", fmt.Sprintf(`{"jobs":[%s]}`, smallSweep(20)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("blocked tenant degraded batch: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 429 without Retry-After")
	}
}
