package experiment

import (
	"encoding/json"
	"fmt"
)

// checkpointVersion is the wire version of a shipped checkpoint prefix.
// Bump it on any CellStats encoding change: a coordinator must never
// restore a prefix a differently-versioned worker journaled, because
// resume-equals-rerun is only proven within one encoding.
const checkpointVersion = 1

// CheckpointSet is the portable form of a sweep's completed-cell prefix:
// what a worker exports from its journal (GET /v1/jobs/{id}/checkpoints)
// and a coordinator ships to the successor peer on failover (POST
// /v1/jobs/{id}/restore). Cells[i] is the aggregate of sweep cell i; the
// prefix property — cells 0..len-1 complete, nothing beyond — is exactly
// the shape Runner.StartCell/Resume consumes, which is what makes a
// restored run byte-equal to an uninterrupted one.
type CheckpointSet struct {
	// Version pins the encoding; DecodeCheckpoints rejects mismatches.
	Version int `json:"version"`
	// Cells is the contiguous completed prefix, in cell order.
	Cells []CellStats `json:"cells,omitempty"`
}

// ExportCheckpoints wraps a completed-cell prefix for the wire.
func ExportCheckpoints(cells []CellStats) CheckpointSet {
	return CheckpointSet{Version: checkpointVersion, Cells: cells}
}

// EncodeCheckpoints renders the set as its canonical JSON payload.
func EncodeCheckpoints(cells []CellStats) ([]byte, error) {
	return json.Marshal(ExportCheckpoints(cells))
}

// DecodeCheckpoints parses and version-checks a shipped checkpoint payload,
// returning the resume prefix.
func DecodeCheckpoints(data []byte) ([]CellStats, error) {
	var cs CheckpointSet
	if err := json.Unmarshal(data, &cs); err != nil {
		return nil, fmt.Errorf("experiment: checkpoint payload: %w", err)
	}
	return cs.Resume()
}

// Resume validates the set and returns the prefix to hand to
// Runner.Resume (StartCell = len).
func (cs CheckpointSet) Resume() ([]CellStats, error) {
	if cs.Version != checkpointVersion {
		return nil, fmt.Errorf("experiment: checkpoint version %d, want %d", cs.Version, checkpointVersion)
	}
	return cs.Cells, nil
}
