package experiment

import (
	"context"
	"fmt"

	"mobic/internal/analysis"
	"mobic/internal/cluster"
	"mobic/internal/scenario"
)

// Claims turns the paper's qualitative claims into executable checks: it
// re-runs the evaluation sweeps and asserts every shape EXPERIMENTS.md
// records. The Result carries one PASS/FAIL note per claim; the experiment
// fails (returns an error) only on simulation errors, not on failed claims,
// so a regression shows up loudly in the output without hiding the data.
func Claims(ctx context.Context, r Runner) (*Result, error) {
	res := &Result{
		ID:    "claims",
		Title: "Executable checklist of the paper's claims",
	}
	check := func(id, text string, pass bool) {
		status := "PASS"
		if !pass {
			status = "FAIL"
		}
		res.Notes = append(res.Notes, fmt.Sprintf("[%s] %-8s %s", status, id, text))
	}

	// One dense sweep drives the Figure 3/4 claims.
	txs := scenario.TxSweep()
	dense, err := sweep(ctx, r, txs, scenario.Base, paperVariants(), projectCH)
	if err != nil {
		return nil, err
	}
	lcc, mobic := dense[0], dense[1]

	peak, _ := analysis.PeakIndex(lcc.Y)
	check("C1", "Fig3: baseline CH-changes curve is unimodal in Tx",
		analysis.IsUnimodal(lcc.Y, 0.1))
	check("C2", fmt.Sprintf("Fig3: peak at small Tx (measured %g m, want 25-75)", txs[peak]),
		txs[peak] >= 25 && txs[peak] <= 75)
	// The paper's headline gain claim is about moderate/high Tx (>= 100 m,
	// the regime it calls realistic); at small Tx our CCI implementation
	// produces larger gains (documented deviation, see EXPERIMENTS.md).
	const highTxFrom = 4 // index of Tx = 100 m in TxSweep
	gain, at, err := analysis.MaxRelGain(lcc.Y[highTxFrom:], mobic.Y[highTxFrom:])
	if err != nil {
		return nil, err
	}
	check("C3", fmt.Sprintf("Fig3: MOBIC max gain %.0f%% at Tx=%g over Tx>=100 m (paper: up to 33%%)",
		100*gain, txs[highTxFrom+at]),
		gain >= 0.10 && gain <= 0.60)
	check("C4", "Fig3: MOBIC at least matches the baseline at Tx >= 100 m",
		analysis.AllBelow(lcc.Y[4:], mobic.Y[4:], 0.10))

	clusters, err := sweep(ctx, r, txs, scenario.Base, paperVariants(), projectNC)
	if err != nil {
		return nil, err
	}
	check("C5", "Fig4: cluster count is non-increasing in Tx (both algorithms)",
		analysis.IsNonIncreasing(clusters[0].Y, 0.05) && analysis.IsNonIncreasing(clusters[1].Y, 0.05))
	similar := true
	for i := range txs {
		if g := analysis.RelGain(clusters[0].Y[i], clusters[1].Y[i]); g < -0.2 || g > 0.2 {
			similar = false
		}
	}
	check("C6", "Fig4: little difference between algorithms (within 20%)", similar)

	// Sparse sweep for the Figure 5 claims.
	sparse, err := sweep(ctx, r, txs, scenario.Sparse, paperVariants(), projectCH)
	if err != nil {
		return nil, err
	}
	sparsePeak, _ := analysis.PeakIndex(sparse[0].Y)
	check("C7", fmt.Sprintf("Fig5: peak shifts right (dense %g m -> sparse %g m)", txs[peak], txs[sparsePeak]),
		txs[sparsePeak] >= txs[peak])
	check("C8", "Fig5: sparser area sees more CH changes at Tx >= 150 m",
		sparse[0].Y[len(txs)-1] > lcc.Y[len(txs)-1])

	// The metric-only crossover claim (A1): mobic-nocci vs lcc.
	noCCI, err := cluster.ByName("mobic-nocci")
	if err != nil {
		return nil, err
	}
	nocciSeries, err := sweep(ctx, r, txs, scenario.Base,
		[]variant{{name: "lcc", alg: cluster.LCC}, {name: "mobic-nocci", alg: noCCI}}, projectCH)
	if err != nil {
		return nil, err
	}
	crossX, crossed := analysis.CrossoverX(txs, nocciSeries[0].Y, nocciSeries[1].Y)
	check("C9", fmt.Sprintf("A1: metric-only MOBIC crosses below LCC at moderate Tx (measured %.0f m, paper ~100 m)", crossX),
		crossed && crossX >= 40 && crossX <= 175)

	// Figure 6 claims.
	speeds := scenario.SpeedSweep()
	for _, p := range []struct {
		id    string
		pause float64
	}{
		{id: "C10", pause: 0},
		{id: "C11", pause: 30},
	} {
		s, err := sweep(ctx, r, speeds, func(v float64) scenario.Params {
			return scenario.Mobility(v, p.pause)
		}, paperVariants(), projectCH)
		if err != nil {
			return nil, err
		}
		check(p.id, fmt.Sprintf("Fig6 PT=%g: churn grows with speed and MOBIC wins at every speed", p.pause),
			analysis.IsNonDecreasing(s[0].Y, 0.05) && analysis.AllBelow(s[0].Y, s[1].Y, 0.05))
	}

	return res, nil
}
