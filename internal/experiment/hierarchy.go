package experiment

import (
	"context"
	"mobic/internal/cluster"
	"mobic/internal/hier"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
	"mobic/internal/stats"
)

// Hierarchy quantifies the paper's scalability motivation: across the Tx
// sweep it samples the cluster graph over MOBIC's clusters and reports
//
//   - the routing-state reduction factor (flat proactive entries divided
//     by hierarchical entries), and
//   - the cluster-graph diameter (route length in cluster hops), and
//   - cluster-graph edge churn per sample interval (structural stability).
func Hierarchy(ctx context.Context, r Runner) (*Result, error) {
	r = r.withDefaults()
	xs := scenario.TxSweep()
	reduction := Series{Name: "state-reduction-x", Y: make([]float64, len(xs))}
	diameter := Series{Name: "cluster-diameter", Y: make([]float64, len(xs))}
	churn := Series{Name: "edge-churn/interval", Y: make([]float64, len(xs))}

	for xi, tx := range xs {
		var redAcc, diamAcc, churnAcc stats.Accumulator
		for s := 0; s < r.Seeds; s++ {
			p := scenario.Base(tx)
			p.Seed = r.BaseSeed + uint64(s)
			cfg, err := p.Config(cluster.MOBIC)
			if err != nil {
				return nil, err
			}
			if r.Mutate != nil {
				r.Mutate(&cfg)
			}
			if err := hierarchySamples(cfg, &redAcc, &diamAcc, &churnAcc); err != nil {
				return nil, err
			}
		}
		reduction.Y[xi] = redAcc.Mean()
		diameter.Y[xi] = diamAcc.Mean()
		churn.Y[xi] = churnAcc.Mean()
	}
	return &Result{
		ID:     "hierarchy",
		Title:  "Hierarchical scalability: routing-state reduction over MOBIC clusters",
		XLabel: "transmission range (m)",
		YLabel: "flat/hierarchical routing-state ratio",
		X:      xs,
		Series: []Series{reduction, diameter, churn},
		Notes: []string{
			"state-reduction-x: proactive flat entries / hierarchical entries;",
			"cluster-diameter: route length in cluster hops; edge-churn:",
			"cluster-graph edges changed per 30 s sample.",
		},
	}, nil
}

func hierarchySamples(cfg simnet.Config, redAcc, diamAcc, churnAcc *stats.Accumulator) error {
	net, err := simnet.New(cfg)
	if err != nil {
		return err
	}
	var prev *hier.ClusterGraph
	for t := 60.0; t <= cfg.Duration; t += 30 {
		net.RunUntil(t)
		snap := net.Snapshot()
		aff := make([]int32, len(snap))
		for i, s := range snap {
			aff[i] = s.Head
		}
		cg, err := hier.Build(net.Topology(), aff)
		if err != nil {
			return err
		}
		flat, hierState := cg.RoutingState()
		if hierState > 0 {
			redAcc.Add(float64(flat) / float64(hierState))
		}
		diamAcc.Add(float64(cg.Diameter()))
		if prev != nil {
			churnAcc.Add(float64(hier.EdgeChurn(prev, cg)))
		}
		prev = cg
	}
	return nil
}
