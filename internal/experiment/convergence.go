package experiment

import (
	"context"
	"mobic/internal/cluster"
	"mobic/internal/geom"
	"mobic/internal/mobility"
	"mobic/internal/simnet"
	"mobic/internal/stats"
)

// Convergence tests the paper's O(d) convergence claim (Theorem 1's
// context: LCC-style clustering "converges in O(d) time, where d is the
// diameter of the network"): on static random topologies of growing area
// (and hence growing hop diameter), it measures the time from cold start
// until the cluster structure stops changing, alongside the topology's hop
// diameter.
func Convergence(ctx context.Context, r Runner) (*Result, error) {
	r = r.withDefaults()
	// Growing areas at constant density: diameter grows with the side.
	sides := []float64{400, 800, 1200, 1600, 2000}
	const txRange = 200.0
	const density = 50.0 / (670.0 * 670.0) // the paper's node density

	timeSeries := Series{Name: "convergence-time(s)", Y: make([]float64, len(sides))}
	diamSeries := Series{Name: "hop-diameter", Y: make([]float64, len(sides))}
	for si, side := range sides {
		var tAcc, dAcc stats.Accumulator
		n := int(density * side * side)
		if n < 5 {
			n = 5
		}
		for s := 0; s < r.Seeds; s++ {
			area := geom.Square(side)
			cfg := simnet.Config{
				N:         n,
				Area:      area,
				Duration:  300,
				Seed:      r.BaseSeed + uint64(s),
				Algorithm: cluster.LCC,
				Mobility:  &mobility.Static{Area: area},
				TxRange:   txRange,
			}
			if r.Mutate != nil {
				r.Mutate(&cfg)
			}
			ct, diam, err := convergenceTime(cfg)
			if err != nil {
				return nil, err
			}
			tAcc.Add(ct)
			dAcc.Add(float64(diam))
		}
		timeSeries.Y[si] = tAcc.Mean()
		diamSeries.Y[si] = dAcc.Mean()
	}
	return &Result{
		ID:     "convergence",
		Title:  "Convergence time vs network diameter (static topologies, LCC)",
		XLabel: "area side (m), constant density",
		YLabel: "time to stable clustering (s)",
		X:      sides,
		Series: []Series{timeSeries, diamSeries},
		Notes: []string{
			"The paper cites O(d) convergence; time should scale with the hop",
			"diameter (second series) at ~one beacon interval per hop.",
		},
	}, nil
}

// convergenceTime runs cfg until the role assignment is stable for three
// beacon intervals and returns the time of the last change plus the static
// topology's hop diameter.
func convergenceTime(cfg simnet.Config) (float64, int, error) {
	net, err := simnet.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	bi := cfg.BroadcastInterval
	if bi == 0 {
		bi = simnet.DefaultBroadcastInterval
	}
	lastChange := 0.0
	prev := rolesOf(net)
	for t := bi; t <= cfg.Duration; t += bi {
		net.RunUntil(t)
		cur := rolesOf(net)
		if !equalRoles(prev, cur) {
			lastChange = t
		}
		prev = cur
		if t-lastChange >= 3*bi && lastChange > 0 {
			break
		}
	}
	return lastChange, net.Topology().Diameter(), nil
}

type roleState struct {
	role cluster.Role
	head int32
}

func rolesOf(net *simnet.Network) []roleState {
	snap := net.Snapshot()
	out := make([]roleState, len(snap))
	for i, s := range snap {
		out[i] = roleState{role: s.Role, head: s.Head}
	}
	return out
}

func equalRoles(a, b []roleState) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
