package experiment

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"

	"mobic/internal/channel"
	"mobic/internal/cluster"
	"mobic/internal/radio"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
)

// variant is one curve of a figure: an algorithm plus an optional config
// mutation.
type variant struct {
	name   string
	alg    cluster.Algorithm
	mutate func(*simnet.Config)
}

// paperVariants returns the two curves of Figures 3-6: the Lowest-ID (LCC)
// baseline and MOBIC.
func paperVariants() []variant {
	return []variant{
		{name: "lowest-id(lcc)", alg: cluster.LCC},
		{name: "mobic", alg: cluster.MOBIC},
	}
}

// sweep runs one figure: for each variant, for each x, a cell; the result
// carries one series per variant with the projected metric.
func sweep(
	ctx context.Context,
	r Runner,
	xs []float64,
	paramsFor func(x float64) scenario.Params,
	variants []variant,
	project func(CellStats) (y, ci float64),
) ([]Series, error) {
	var cells []Cell
	for _, v := range variants {
		for _, x := range xs {
			cells = append(cells, Cell{Params: paramsFor(x), Algorithm: v.alg, Mutate: v.mutate})
		}
	}
	statsPerCell, err := r.RunCells(ctx, cells)
	if err != nil {
		return nil, err
	}
	series := make([]Series, len(variants))
	for vi, v := range variants {
		s := Series{Name: v.name, Y: make([]float64, len(xs)), CI: make([]float64, len(xs))}
		for xi := range xs {
			y, ci := project(statsPerCell[vi*len(xs)+xi])
			s.Y[xi] = y
			s.CI[xi] = ci
		}
		series[vi] = s
	}
	return series, nil
}

func projectCH(cs CellStats) (float64, float64)  { return cs.CHChanges, cs.CHChangesCI }
func projectNC(cs CellStats) (float64, float64)  { return cs.AvgClusters, 0 }
func projectRes(cs CellStats) (float64, float64) { return cs.MeanResidence, 0 }

func projectFairness(cs CellStats) (float64, float64) {
	var sum float64
	for _, m := range cs.Raw {
		sum += m.HeadTimeFairness
	}
	if len(cs.Raw) == 0 {
		return 0, 0
	}
	return sum / float64(len(cs.Raw)), 0
}

// Fig3 regenerates Figure 3: clusterhead changes vs transmission range on
// the 670x670 m scenario (MaxSpeed 20, PT 0).
func Fig3(ctx context.Context, r Runner) (*Result, error) {
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, paperVariants(), projectCH)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig3",
		Title:  "Figure 3: clusterhead changes vs Tx (670x670 m, MaxSpeed 20, PT 0)",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.TxSweep(),
		Series: series,
	}, nil
}

// Fig4 regenerates Figure 4: average number of clusters vs transmission
// range on the same scenario as Figure 3.
func Fig4(ctx context.Context, r Runner) (*Result, error) {
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, paperVariants(), projectNC)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig4",
		Title:  "Figure 4: number of clusters vs Tx (670x670 m, MaxSpeed 20, PT 0)",
		XLabel: "transmission range (m)",
		YLabel: "average number of clusters",
		X:      scenario.TxSweep(),
		Series: series,
	}, nil
}

// Fig5 regenerates Figure 5: clusterhead changes vs transmission range on
// the sparser 1000x1000 m scenario.
func Fig5(ctx context.Context, r Runner) (*Result, error) {
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Sparse, paperVariants(), projectCH)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig5",
		Title:  "Figure 5: clusterhead changes vs Tx (1000x1000 m, MaxSpeed 20, PT 0)",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.TxSweep(),
		Series: series,
	}, nil
}

// fig6 regenerates one panel of Figure 6: clusterhead changes vs MaxSpeed
// at Tx = 250 m with the given pause time.
func fig6(ctx context.Context, r Runner, id string, pause float64) (*Result, error) {
	paramsFor := func(speed float64) scenario.Params {
		return scenario.Mobility(speed, pause)
	}
	series, err := sweep(ctx, r, scenario.SpeedSweep(), paramsFor, paperVariants(), projectCH)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     id,
		Title:  fmt.Sprintf("Figure 6 (PT=%g s): clusterhead changes vs MaxSpeed (Tx 250 m)", pause),
		XLabel: "max speed (m/s)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.SpeedSweep(),
		Series: series,
	}, nil
}

// Fig6a regenerates Figure 6(a): PT = 0 (constant mobility).
func Fig6a(ctx context.Context, r Runner) (*Result, error) { return fig6(ctx, r, "fig6a", 0) }

// Fig6b regenerates Figure 6(b): PT = 30 s.
func Fig6b(ctx context.Context, r Runner) (*Result, error) { return fig6(ctx, r, "fig6b", 30) }

// Table1 echoes the paper's simulation-parameter table (no simulation).
func Table1(context.Context, Runner) (*Result, error) {
	res := &Result{
		ID:    "table1",
		Title: "Table 1: simulation parameters",
	}
	for _, row := range scenario.Table1() {
		res.Notes = append(res.Notes, fmt.Sprintf("%-10s %-28s %s", row.Symbol, row.Meaning, row.Value))
	}
	return res, nil
}

// AblateCCI isolates the Cluster Contention Interval's contribution (A1):
// MOBIC with and without CCI, the LCC baseline, and LCC augmented with CCI.
func AblateCCI(ctx context.Context, r Runner) (*Result, error) {
	noCCI, err := cluster.ByName("mobic-nocci")
	if err != nil {
		return nil, err
	}
	lccCCI := cluster.LCC
	lccCCI.Name = "lcc+cci"
	lccCCI.Policy.CCI = cluster.DefaultCCI
	variants := []variant{
		{name: "lcc", alg: cluster.LCC},
		{name: "mobic", alg: cluster.MOBIC},
		{name: "mobic-nocci", alg: noCCI},
		{name: "lcc+cci", alg: lccCCI},
	}
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, variants, projectCH)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "ablate-cci",
		Title:  "A1: CCI ablation — contention deferral vs mobility weight",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.TxSweep(),
		Series: series,
		Notes: []string{
			"mobic-nocci isolates the mobility metric: it reproduces the paper's",
			"crossover (worse than LCC at small Tx, better at large Tx).",
			"CCI alone (lcc+cci) suppresses transient head-head contacts.",
		},
	}, nil
}

// AblateLCC compares the original aggressive Lowest-ID against LCC (A2),
// reproducing the motivation from Chiang et al. [3].
func AblateLCC(ctx context.Context, r Runner) (*Result, error) {
	variants := []variant{
		{name: "lowest-id", alg: cluster.LowestID},
		{name: "lcc", alg: cluster.LCC},
	}
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, variants, projectCH)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "ablate-lcc",
		Title:  "A2: LCC ablation — aggressive vs least-clusterhead-change maintenance",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.TxSweep(),
		Series: series,
	}, nil
}

// AblateHistory tests the paper's Section 5 history extension (A3): EWMA
// smoothing of the aggregate mobility metric.
func AblateHistory(ctx context.Context, r Runner) (*Result, error) {
	mk := func(name string, alpha float64) variant {
		a := cluster.MOBIC
		a.Name = name
		a.EWMAAlpha = alpha
		return variant{name: name, alg: a}
	}
	pair := cluster.MOBIC
	pair.Name = "mobic-pair-0.5"
	pair.PairwiseEWMAAlpha = 0.5
	variants := []variant{
		{name: "mobic", alg: cluster.MOBIC},
		mk("mobic-ewma-0.5", 0.5),
		mk("mobic-ewma-0.25", 0.25),
		{name: "mobic-pair-0.5", alg: pair},
	}
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, variants, projectCH)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "ablate-history",
		Title:  "A3: history ablation — EWMA smoothing of M (paper Section 5)",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.TxSweep(),
		Series: series,
	}, nil
}

// MaxDegree adds the max-connectivity baseline from Section 2.1 (A6).
func MaxDegree(ctx context.Context, r Runner) (*Result, error) {
	variants := []variant{
		{name: "lcc", alg: cluster.LCC},
		{name: "mobic", alg: cluster.MOBIC},
		{name: "max-degree", alg: cluster.MaxConnectivity},
	}
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, variants, projectCH)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "maxdeg",
		Title:  "A6: max-connectivity baseline stability",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.TxSweep(),
		Series: series,
	}, nil
}

// Propagation measures the sensitivity of MOBIC to the channel model (A7).
func Propagation(ctx context.Context, r Runner) (*Result, error) {
	shadow := func(cfg *simnet.Config) {
		cfg.Propagation = radio.NewShadowing(2.7, 4,
			rand.New(rand.NewPCG(cfg.Seed, 0x5aad)))
	}
	free := func(cfg *simnet.Config) { cfg.Propagation = radio.NewFreeSpace() }
	variants := []variant{
		{name: "mobic-tworay", alg: cluster.MOBIC},
		{name: "mobic-freespace", alg: cluster.MOBIC, mutate: free},
		{name: "mobic-shadowing", alg: cluster.MOBIC, mutate: shadow},
		{name: "lcc-tworay", alg: cluster.LCC},
		{name: "lcc-shadowing", alg: cluster.LCC, mutate: shadow},
	}
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, variants, projectCH)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "propagation",
		Title:  "A7: propagation-model sensitivity",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.TxSweep(),
		Series: series,
		Notes: []string{
			"Shadowing (sigma 4 dB) adds reception noise to the RxPr ratios;",
			"MOBIC's advantage should persist if the metric is robust.",
		},
	}, nil
}

// Loss measures robustness of the metric to MAC-level packet loss (A8).
func Loss(ctx context.Context, r Runner) (*Result, error) {
	rates := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	paramsFor := func(float64) scenario.Params { return scenario.Base(150) }
	mkLoss := func(rate float64) func(*simnet.Config) {
		return func(cfg *simnet.Config) {
			if rate == 0 {
				return
			}
			lm, err := channel.NewUniformLoss(rate, rand.New(rand.NewPCG(cfg.Seed, 0x105)))
			if err == nil {
				cfg.Loss = lm
			}
		}
	}
	// The loss rate is the X axis, so cells are built manually.
	var cells []Cell
	algs := []cluster.Algorithm{cluster.LCC, cluster.MOBIC}
	for _, alg := range algs {
		for _, rate := range rates {
			cells = append(cells, Cell{
				Params:    paramsFor(rate),
				Algorithm: alg,
				Mutate:    mkLoss(rate),
			})
		}
	}
	cs, err := r.RunCells(ctx, cells)
	if err != nil {
		return nil, err
	}
	mkSeries := func(name string, offset int) Series {
		s := Series{Name: name, Y: make([]float64, len(rates)), CI: make([]float64, len(rates))}
		for i := range rates {
			s.Y[i] = cs[offset+i].CHChanges
			s.CI[i] = cs[offset+i].CHChangesCI
		}
		return s
	}
	return &Result{
		ID:     "loss",
		Title:  "A8: packet-loss robustness (Tx 150 m)",
		XLabel: "uniform hello loss rate",
		YLabel: "clusterhead changes / 900 s",
		X:      rates,
		Series: []Series{mkSeries("lcc", 0), mkSeries("mobic", len(rates))},
	}, nil
}

// AdaptiveBIExp evaluates the Section 5 adaptive-hello-interval extension
// (A4): stability and beacon cost of fixed vs adaptive intervals across
// mobility levels.
func AdaptiveBIExp(ctx context.Context, r Runner) (*Result, error) {
	adaptive := func(cfg *simnet.Config) {
		cfg.Adaptive = &simnet.AdaptiveBI{Min: 0.5, Max: 4, MRef: 4}
		cfg.BroadcastInterval = 0.5
		cfg.TimeoutPeriod = 6
	}
	fixedSlow := func(cfg *simnet.Config) {
		cfg.BroadcastInterval = 4
		cfg.TimeoutPeriod = 6
	}
	paramsFor := func(speed float64) scenario.Params { return scenario.Mobility(speed, 0) }
	variants := []variant{
		{name: "mobic-bi2", alg: cluster.MOBIC},
		{name: "mobic-bi4", alg: cluster.MOBIC, mutate: fixedSlow},
		{name: "mobic-adaptive", alg: cluster.MOBIC, mutate: adaptive},
	}
	var cells []Cell
	for _, v := range variants {
		for _, x := range scenario.SpeedSweep() {
			cells = append(cells, Cell{Params: paramsFor(x), Algorithm: v.alg, Mutate: v.mutate})
		}
	}
	cs, err := r.RunCells(ctx, cells)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "adaptive-bi",
		Title:  "A4: mobility-adaptive broadcast interval (paper Section 5)",
		XLabel: "max speed (m/s)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.SpeedSweep(),
	}
	nx := len(scenario.SpeedSweep())
	for vi, v := range variants {
		s := Series{Name: v.name, Y: make([]float64, nx), CI: make([]float64, nx)}
		for xi := 0; xi < nx; xi++ {
			s.Y[xi] = cs[vi*nx+xi].CHChanges
			s.CI[xi] = cs[vi*nx+xi].CHChangesCI
		}
		res.Series = append(res.Series, s)
		for xi := 0; xi < nx; xi++ {
			res.Notes = append(res.Notes, fmt.Sprintf("%s at %g m/s: %.0f beacons",
				v.name, scenario.SpeedSweep()[xi], cs[vi*nx+xi].Broadcasts))
		}
	}
	return res, nil
}

// Policies compares the clustering-policy extensions on the Figure 3
// workload (A14): plain MOBIC, MOBIC with the hysteresis-banded adaptive
// broadcast period, adaptive Lowest-ID (tenure-bounded ID reassignment),
// and energy-weighted MOBIC with battery-threshold head rotation. Stability
// is the headline metric; the notes carry the head-duty fairness each
// policy buys, since rotation trades churn for fairness by design.
func Policies(ctx context.Context, r Runner) (*Result, error) {
	base := scenario.Base
	adaptiveBI := func(tx float64) scenario.Params {
		p := base(tx)
		p.BIMin, p.BIMax = 0.5, 4
		p.TP = 6 // outlast the longest adaptive interval
		return p
	}
	energyOn := func(tx float64) scenario.Params {
		p := base(tx)
		// 2 J spans the model's whole arc over 900 s: at low Tx (light RX
		// load) batteries sink past the rotation threshold mid-run, and at
		// high Tx they exhaust outright — the curve shows rotation hand-offs
		// first, then the churn collapse of a dying network. A budget that
		// never crosses RotateFrac (say 12 J) is indistinguishable from
		// plain MOBIC everywhere.
		p.EnergyJ = 2
		return p
	}
	type curve struct {
		name      string
		alg       cluster.Algorithm
		paramsFor func(float64) scenario.Params
	}
	curves := []curve{
		{name: "mobic", alg: cluster.MOBIC, paramsFor: base},
		{name: "mobic-adaptive-bi", alg: cluster.MOBIC, paramsFor: adaptiveBI},
		{name: "adaptive-lowest-id", alg: cluster.AdaptiveLowestID, paramsFor: base},
		{name: "mobic-energy", alg: cluster.MOBIC, paramsFor: energyOn},
	}
	xs := scenario.TxSweep()
	var cells []Cell
	for _, c := range curves {
		for _, x := range xs {
			cells = append(cells, Cell{Params: c.paramsFor(x), Algorithm: c.alg})
		}
	}
	cs, err := r.RunCells(ctx, cells)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "policies",
		Title:  "A14: clustering policies — adaptive period, ID reassignment, energy rotation",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      xs,
	}
	for ci, c := range curves {
		s := Series{Name: c.name, Y: make([]float64, len(xs)), CI: make([]float64, len(xs))}
		var fairness float64
		for xi := range xs {
			cell := cs[ci*len(xs)+xi]
			s.Y[xi] = cell.CHChanges
			s.CI[xi] = cell.CHChangesCI
			f, _ := projectFairness(cell)
			fairness += f
		}
		res.Series = append(res.Series, s)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: mean head-duty fairness %.3f across the sweep", c.name, fairness/float64(len(xs))))
	}
	return res, nil
}

// MAC measures the effect of beacon collisions (A13): the same Figure 3
// sweep with the hello MAC collision model enabled vs disabled.
func MAC(ctx context.Context, r Runner) (*Result, error) {
	collide := func(cfg *simnet.Config) { cfg.HelloCollisions = true }
	variants := []variant{
		{name: "lcc", alg: cluster.LCC},
		{name: "mobic", alg: cluster.MOBIC},
		{name: "lcc+mac", alg: cluster.LCC, mutate: collide},
		{name: "mobic+mac", alg: cluster.MOBIC, mutate: collide},
	}
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, variants, projectCH)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "mac",
		Title:  "A13: hello MAC collisions (0.8 ms airtime, per-beacon jitter)",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.TxSweep(),
		Series: series,
		Notes: []string{
			"Collisions destroy overlapping beacons at a receiver; the paper",
			"counts only MAC-successful receptions, which this model supplies.",
		},
	}, nil
}

// Oracle compares the signal-strength mobility metric against a GPS oracle
// (A12): MOBIC's weight estimated from RxPr ratios vs the same weight
// computed from ground-truth range rates. If the estimate is good, the two
// curves should nearly coincide — quantifying how much the paper's
// "no GPS required" property costs.
func Oracle(ctx context.Context, r Runner) (*Result, error) {
	oracle, err := cluster.ByName("mobic-oracle")
	if err != nil {
		return nil, err
	}
	variants := []variant{
		{name: "lcc", alg: cluster.LCC},
		{name: "mobic", alg: cluster.MOBIC},
		{name: "mobic-oracle", alg: oracle},
	}
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, variants, projectCH)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "oracle",
		Title:  "A12: RxPr-ratio metric vs GPS-oracle range rates",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.TxSweep(),
		Series: series,
		Notes: []string{
			"mobic-oracle elects by ground-truth range-rate variance (needs GPS);",
			"mobic estimates the same quantity from received-power ratios alone.",
		},
	}, nil
}

// Fairness reports Jain's fairness index over per-node clusterhead duty
// time vs Tx: who pays the clusterhead tax under each election weight?
// Lowest-ID pins the burden on low IDs; MOBIC on relatively slow nodes;
// max-connectivity on central ones.
func Fairness(ctx context.Context, r Runner) (*Result, error) {
	variants := []variant{
		{name: "lcc", alg: cluster.LCC},
		{name: "mobic", alg: cluster.MOBIC},
		{name: "max-degree", alg: cluster.MaxConnectivity},
	}
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, variants, projectFairness)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fairness",
		Title:  "Head-duty fairness (Jain index over per-node head time)",
		XLabel: "transmission range (m)",
		YLabel: "Jain fairness index",
		X:      scenario.TxSweep(),
		Series: series,
		Notes: []string{
			"1 = every node serves equally as clusterhead; 1/N = one node",
			"carries everything. Stability and duty fairness trade off.",
		},
	}, nil
}

// Residence reports mean clusterhead tenure vs Tx — a complementary
// stability view not plotted in the paper but implied by its analysis.
func Residence(ctx context.Context, r Runner) (*Result, error) {
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, paperVariants(), projectRes)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "residence",
		Title:  "Clusterhead residence time vs Tx (670x670 m)",
		XLabel: "transmission range (m)",
		YLabel: "mean clusterhead tenure (s)",
		X:      scenario.TxSweep(),
		Series: series,
	}, nil
}

// Descriptor names one runnable experiment.
type Descriptor struct {
	// ID is the CLI identifier.
	ID string
	// Title describes the artifact regenerated.
	Title string
	// Run executes the experiment. Cancellation of ctx aborts in-flight
	// simulations promptly and surfaces ctx.Err().
	Run func(context.Context, Runner) (*Result, error)
}

// ErrUnknownExperiment is returned by ByID for an unknown identifier.
var ErrUnknownExperiment = errors.New("experiment: unknown experiment")

// All lists every experiment in presentation order.
func All() []Descriptor {
	return []Descriptor{
		{ID: "table1", Title: "Table 1: simulation parameters", Run: Table1},
		{ID: "fig3", Title: "Figure 3: CH changes vs Tx (670x670)", Run: Fig3},
		{ID: "fig4", Title: "Figure 4: cluster count vs Tx", Run: Fig4},
		{ID: "fig5", Title: "Figure 5: CH changes vs Tx (1000x1000)", Run: Fig5},
		{ID: "fig6a", Title: "Figure 6(a): CH changes vs speed, PT=0", Run: Fig6a},
		{ID: "fig6b", Title: "Figure 6(b): CH changes vs speed, PT=30", Run: Fig6b},
		{ID: "ablate-cci", Title: "A1: CCI ablation", Run: AblateCCI},
		{ID: "ablate-lcc", Title: "A2: LCC ablation", Run: AblateLCC},
		{ID: "ablate-history", Title: "A3: EWMA history ablation", Run: AblateHistory},
		{ID: "adaptive-bi", Title: "A4: adaptive broadcast interval", Run: AdaptiveBIExp},
		{ID: "maxdeg", Title: "A6: max-connectivity baseline", Run: MaxDegree},
		{ID: "propagation", Title: "A7: propagation sensitivity", Run: Propagation},
		{ID: "loss", Title: "A8: packet-loss robustness", Run: Loss},
		{ID: "flooding", Title: "A9: flat vs cluster-based flooding", Run: Flooding},
		{ID: "routes", Title: "A10: backbone route lifetime and discovery cost", Run: Routes},
		{ID: "cbrp", Title: "A11: CBRP-lite routing over LCC vs MOBIC clusters", Run: CBRP},
		{ID: "oracle", Title: "A12: RxPr metric vs GPS-oracle range rates", Run: Oracle},
		{ID: "mac", Title: "A13: hello MAC collision sensitivity", Run: MAC},
		{ID: "policies", Title: "A14: clustering policies (adaptive BI, ID reassignment, energy)", Run: Policies},
		{ID: "fairness", Title: "Head-duty fairness (Jain index)", Run: Fairness},
		{ID: "failures", Title: "Decapitation: lowest-ID nodes crash mid-run", Run: Failures},
		{ID: "hierarchy", Title: "Routing-state reduction over the cluster hierarchy", Run: Hierarchy},
		{ID: "cci-sweep", Title: "CCI parameter sensitivity", Run: CCISweep},
		{ID: "bi-sweep", Title: "Broadcast-interval sensitivity", Run: BISweep},
		{ID: "wca", Title: "WCA-lite combined weight", Run: WCALite},
		{ID: "claims", Title: "Executable checklist of the paper's claims", Run: Claims},
		{ID: "timeline", Title: "Clusterhead churn over time", Run: Timeline},
		{ID: "convergence", Title: "Convergence time vs network diameter (O(d) claim)", Run: Convergence},
		{ID: "residence", Title: "Clusterhead residence time", Run: Residence},
	}
}

// ByID resolves an experiment descriptor.
func ByID(id string) (Descriptor, error) {
	for _, d := range All() {
		if d.ID == id {
			return d, nil
		}
	}
	return Descriptor{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
}
