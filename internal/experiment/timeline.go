package experiment

import (
	"context"
	"mobic/internal/cluster"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
)

// Timeline shows clusterhead churn over simulated time at Tx = 150 m: the
// initial formation burst followed by the maintenance-phase rate, for the
// LCC baseline and MOBIC. It demonstrates that the paper's aggregate CS
// numbers are maintenance churn, not formation artifacts, and makes the
// stability gap visible window by window.
func Timeline(ctx context.Context, r Runner) (*Result, error) {
	r = r.withDefaults()
	const window = 60.0
	algs := []cluster.Algorithm{cluster.LCC, cluster.MOBIC}
	series := make([]Series, len(algs))
	var xs []float64
	for ai, alg := range algs {
		var sums []float64
		for s := 0; s < r.Seeds; s++ {
			p := scenario.Base(150)
			p.Seed = r.BaseSeed + uint64(s)
			cfg, err := p.Config(alg)
			if err != nil {
				return nil, err
			}
			cfg.TimelineWindow = window
			if r.Mutate != nil {
				r.Mutate(&cfg)
			}
			net, err := simnet.New(cfg)
			if err != nil {
				return nil, err
			}
			if _, err := net.RunContext(ctx); err != nil {
				return nil, err
			}
			windows, _ := net.Timeline()
			for len(sums) < len(windows) {
				sums = append(sums, 0)
			}
			for i, c := range windows {
				sums[i] += float64(c)
			}
		}
		for i := range sums {
			sums[i] /= float64(r.Seeds)
		}
		series[ai] = Series{Name: alg.Name, Y: sums}
		if len(sums) > len(xs) {
			xs = xs[:0]
			for i := range sums {
				xs = append(xs, window/2+float64(i)*window)
			}
		}
	}
	// Pad the shorter series so both cover the same axis.
	for i := range series {
		for len(series[i].Y) < len(xs) {
			series[i].Y = append(series[i].Y, 0)
		}
	}
	return &Result{
		ID:     "timeline",
		Title:  "Clusterhead churn over time (Tx 150 m, 60 s windows)",
		XLabel: "simulated time (s)",
		YLabel: "clusterhead changes per window",
		X:      xs,
		Series: series,
		Notes: []string{
			"The first window contains the formation burst; later windows are",
			"steady-state maintenance churn, where MOBIC's advantage lives.",
		},
	}, nil
}
