package experiment

import (
	"context"
	"fmt"

	"mobic/internal/cluster"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
)

// Failures is the decapitation study: at t = 300 s the ten lowest-ID nodes
// crash permanently. Under Lowest-ID/LCC those are precisely the nodes
// holding most clusterhead roles, so the crash beheads the hierarchy; under
// MOBIC headship is uncorrelated with ID. The per-window churn timeline
// shows the reclustering storm each algorithm suffers and how fast it
// settles — a failure mode the paper never tests but any deployment would.
func Failures(ctx context.Context, r Runner) (*Result, error) {
	r = r.withDefaults()
	const window = 60.0
	const failAt = 300.0
	const victims = 10

	algs := []cluster.Algorithm{cluster.LCC, cluster.MOBIC}
	series := make([]Series, len(algs))
	var xs []float64
	for ai, alg := range algs {
		var sums []float64
		for s := 0; s < r.Seeds; s++ {
			p := scenario.Base(150)
			p.Seed = r.BaseSeed + uint64(s)
			cfg, err := p.Config(alg)
			if err != nil {
				return nil, err
			}
			cfg.TimelineWindow = window
			for v := int32(0); v < victims; v++ {
				cfg.Failures = append(cfg.Failures, simnet.NodeFailure{Node: v, At: failAt})
			}
			if r.Mutate != nil {
				r.Mutate(&cfg)
			}
			net, err := simnet.New(cfg)
			if err != nil {
				return nil, err
			}
			if _, err := net.RunContext(ctx); err != nil {
				return nil, err
			}
			windows, _ := net.Timeline()
			for len(sums) < len(windows) {
				sums = append(sums, 0)
			}
			for i, c := range windows {
				sums[i] += float64(c)
			}
		}
		for i := range sums {
			sums[i] /= float64(r.Seeds)
		}
		series[ai] = Series{Name: alg.Name, Y: sums}
		if len(sums) > len(xs) {
			xs = xs[:0]
			for i := range sums {
				xs = append(xs, window/2+float64(i)*window)
			}
		}
	}
	for i := range series {
		for len(series[i].Y) < len(xs) {
			series[i].Y = append(series[i].Y, 0)
		}
	}
	return &Result{
		ID:     "failures",
		Title:  fmt.Sprintf("Decapitation: %d lowest-ID nodes crash at t=%.0f s (Tx 150 m)", victims, failAt),
		XLabel: "simulated time (s)",
		YLabel: "clusterhead changes per 60 s window",
		X:      xs,
		Series: series,
		Notes: []string{
			"Under Lowest-ID the victims are the head set; under MOBIC headship",
			"is ID-independent. Watch the window containing t=300.",
		},
	}, nil
}
