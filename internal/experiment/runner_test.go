package experiment

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
	"mobic/internal/trace"
)

// fastRunner trims every materialized config so unit tests stay quick while
// exercising the full harness path.
func fastRunner(seeds int) Runner {
	return Runner{
		Seeds:    seeds,
		BaseSeed: 1,
		Mutate: func(cfg *simnet.Config) {
			cfg.N = 15
			cfg.Duration = 60
		},
	}
}

func smallParams(tx float64) scenario.Params {
	p := scenario.Base(tx)
	p.Duration = 60
	p.N = 15
	return p
}

func TestRunCellsAggregates(t *testing.T) {
	r := Runner{Seeds: 3, BaseSeed: 1}
	cells := []Cell{
		{Params: smallParams(150), Algorithm: cluster.LCC},
		{Params: smallParams(150), Algorithm: cluster.MOBIC},
	}
	stats, err := r.RunCells(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d cell stats, want 2", len(stats))
	}
	for i, cs := range stats {
		if len(cs.Raw) != 3 {
			t.Errorf("cell %d: %d raw results, want 3 (one per seed)", i, len(cs.Raw))
		}
		if cs.AvgClusters <= 0 {
			t.Errorf("cell %d: AvgClusters = %v", i, cs.AvgClusters)
		}
		if cs.Broadcasts <= 0 {
			t.Errorf("cell %d: Broadcasts = %v", i, cs.Broadcasts)
		}
	}
}

func TestRunCellsDeterministicAcrossWorkerCounts(t *testing.T) {
	cells := []Cell{
		{Params: smallParams(100), Algorithm: cluster.MOBIC},
		{Params: smallParams(200), Algorithm: cluster.LCC},
	}
	serial := Runner{Seeds: 2, BaseSeed: 1, Workers: 1}
	parallel := Runner{Seeds: 2, BaseSeed: 1, Workers: 8}
	a, err := serial.RunCells(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.RunCells(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].CHChanges != b[i].CHChanges || a[i].AvgClusters != b[i].AvgClusters {
			t.Errorf("cell %d differs across worker counts: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRunCellsPropagatesErrors(t *testing.T) {
	bad := scenario.Base(150)
	bad.N = -1
	r := Runner{Seeds: 1}
	if _, err := r.RunCells(context.Background(), []Cell{{Params: bad, Algorithm: cluster.MOBIC}}); err == nil {
		t.Error("invalid cell should error")
	}
}

func TestRunCellsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Runner{Seeds: 1, Workers: 1}
	cells := []Cell{{Params: smallParams(100), Algorithm: cluster.MOBIC}}
	_, err := r.RunCells(ctx, cells)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunCellsCanceledMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Runner{
		Seeds:   1,
		Workers: 1,
		// Cancel as soon as the first cell completes; the remaining
		// cells must be skipped and the sweep must fail with ctx.Err().
		Progress: func(done, total int) {
			if done == 1 {
				cancel()
			}
		},
	}
	var cells []Cell
	for i := 0; i < 8; i++ {
		cells = append(cells, Cell{Params: smallParams(100), Algorithm: cluster.MOBIC})
	}
	_, err := r.RunCells(ctx, cells)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// The first worker error must abort the sweep: remaining queued jobs are
// skipped instead of being fully simulated. The bad cell fails inside
// simnet.New (TimeoutPeriod below BroadcastInterval) before emitting any
// events; every healthy cell carries an observer counting its events, so a
// zero count proves none of them ran.
func TestRunCellsAbortsSweepOnFirstError(t *testing.T) {
	var simulatedEvents atomic.Int64
	r := Runner{
		Seeds:    1,
		BaseSeed: 1,
		Workers:  1,
		Mutate: func(cfg *simnet.Config) {
			cfg.N = 15
			cfg.Duration = 60
			cfg.Observer = func(trace.Event) { simulatedEvents.Add(1) }
		},
	}
	cells := []Cell{{
		Params:    smallParams(150),
		Algorithm: cluster.MOBIC,
		// Invalid: neighbors would expire between beacons; simnet.New
		// rejects it after the runner's Mutate ran.
		Mutate: func(cfg *simnet.Config) { cfg.TimeoutPeriod = cfg.BroadcastInterval / 2 },
	}}
	for i := 0; i < 6; i++ {
		cells = append(cells, Cell{Params: smallParams(150), Algorithm: cluster.MOBIC})
	}

	_, err := r.RunCells(context.Background(), cells)
	if err == nil || !strings.Contains(err.Error(), "cell 0") {
		t.Fatalf("err = %v, want the cell 0 config error", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v: the internal abort leaked instead of the root cause", err)
	}
	if n := simulatedEvents.Load(); n != 0 {
		t.Errorf("%d events simulated after the first error; queued jobs were not skipped", n)
	}
}

func TestRunCellsProgress(t *testing.T) {
	var calls atomic.Int64
	r := Runner{
		Seeds:    2,
		BaseSeed: 1,
		Progress: func(done, total int) {
			calls.Add(1)
			if total != 4 {
				t.Errorf("total = %d, want 4", total)
			}
		},
	}
	cells := []Cell{
		{Params: smallParams(100), Algorithm: cluster.MOBIC},
		{Params: smallParams(100), Algorithm: cluster.LCC},
	}
	if _, err := r.RunCells(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Errorf("progress called %d times, want 4", calls.Load())
	}
}

func TestRegistryAllUniqueAndResolvable(t *testing.T) {
	seen := make(map[string]bool)
	for _, d := range All() {
		if seen[d.ID] {
			t.Errorf("duplicate experiment ID %q", d.ID)
		}
		seen[d.ID] = true
		if d.Run == nil {
			t.Errorf("experiment %q has no Run", d.ID)
		}
		if d.Title == "" {
			t.Errorf("experiment %q has no title", d.ID)
		}
		got, err := ByID(d.ID)
		if err != nil || got.ID != d.ID {
			t.Errorf("ByID(%q) = %v, %v", d.ID, got.ID, err)
		}
	}
	// Every figure and table of the paper must be present.
	for _, required := range []string{"table1", "fig3", "fig4", "fig5", "fig6a", "fig6b"} {
		if !seen[required] {
			t.Errorf("paper artifact %q missing from registry", required)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	_, err := ByID("fig99")
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("err = %v, want ErrUnknownExperiment", err)
	}
}

func TestTable1Experiment(t *testing.T) {
	res, err := Table1(context.Background(), Runner{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) != 9 {
		t.Errorf("table1 has %d rows, want 9", len(res.Notes))
	}
	joined := strings.Join(res.Notes, "\n")
	for _, want := range []string{"Number of Nodes", "900 sec", "Cluster Contention Interval"} {
		if !strings.Contains(joined, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestFig6aSmall(t *testing.T) {
	res, err := Fig6a(context.Background(), fastRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig6a" {
		t.Errorf("ID = %q", res.ID)
	}
	if len(res.X) != 3 {
		t.Errorf("X = %v, want 3 speeds", res.X)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Y) != 3 {
			t.Errorf("series %q has %d points", s.Name, len(s.Y))
		}
	}
}

func TestLossExperimentSmall(t *testing.T) {
	res, err := Loss(context.Background(), fastRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != 6 || len(res.Series) != 2 {
		t.Fatalf("loss shape: %d x, %d series", len(res.X), len(res.Series))
	}
}

func TestFloodingExperimentStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("flooding sweep is slow")
	}
	// Run a reduced flooding experiment by hand: one tx, one seed.
	r := fastRunner(1)
	res, err := Flooding(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("flooding series = %d, want 3", len(res.Series))
	}
	flat, clus := res.Series[0], res.Series[1]
	for i := range res.X {
		if clus.Y[i] > flat.Y[i]+1e-9 {
			t.Errorf("tx=%v: cluster flood (%v) costs more than flat (%v)",
				res.X[i], clus.Y[i], flat.Y[i])
		}
	}
}

func TestTimelineExperimentSmall(t *testing.T) {
	res, err := Timeline(context.Background(), fastRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if len(res.X) == 0 {
		t.Fatal("no windows")
	}
	for _, s := range res.Series {
		if len(s.Y) != len(res.X) {
			t.Errorf("series %q has %d points for %d windows", s.Name, len(s.Y), len(res.X))
		}
	}
	// The formation burst lands in the first window.
	if res.Series[0].Y[0] == 0 && res.Series[1].Y[0] == 0 {
		t.Error("first window should contain the formation burst")
	}
}

func TestFairnessExperimentSmall(t *testing.T) {
	res, err := Fairness(context.Background(), fastRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("fairness series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		for i, y := range s.Y {
			if y < 0 || y > 1 {
				t.Errorf("series %q point %d: Jain index %v outside [0,1]", s.Name, i, y)
			}
		}
	}
}

func TestClaimsExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("claims runs several sweeps")
	}
	res, err := Claims(context.Background(), fastRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) < 11 {
		t.Fatalf("claims produced %d notes, want >= 11", len(res.Notes))
	}
	for _, note := range res.Notes {
		if !strings.HasPrefix(note, "[PASS]") && !strings.HasPrefix(note, "[FAIL]") {
			t.Errorf("claim note missing status: %q", note)
		}
	}
}

func TestConvergenceExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several static scenarios")
	}
	r := Runner{Seeds: 1}
	res, err := Convergence(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 || len(res.X) != 5 {
		t.Fatalf("convergence shape: %d series, %d x", len(res.Series), len(res.X))
	}
	diam := res.Series[1].Y
	for i := 1; i < len(diam); i++ {
		if diam[i] < diam[i-1] {
			t.Errorf("hop diameter should grow with area: %v", diam)
		}
	}
}

func TestFailuresExperimentSmall(t *testing.T) {
	// The decapitation preset kills nodes 0-9, so the trimmed config must
	// keep at least that many nodes.
	r := Runner{
		Seeds: 1,
		Mutate: func(cfg *simnet.Config) {
			cfg.N = 20
			cfg.Duration = 400
		},
	}
	res, err := Failures(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 || len(res.X) == 0 {
		t.Fatalf("failures shape: %d series, %d x", len(res.Series), len(res.X))
	}
}

func TestHierarchyExperimentSmall(t *testing.T) {
	res, err := Hierarchy(context.Background(), fastRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("hierarchy series = %d", len(res.Series))
	}
	// Routing-state reduction must be >= 1 everywhere (hierarchy never
	// costs more state than flat proactive routing).
	for i, y := range res.Series[0].Y {
		if y < 1 {
			t.Errorf("reduction at x=%v is %v < 1", res.X[i], y)
		}
	}
}

func TestSensitivityExperimentsSmall(t *testing.T) {
	for _, run := range []func(context.Context, Runner) (*Result, error){CCISweep, BISweep, WCALite} {
		res, err := run(context.Background(), fastRunner(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.X) == 0 || len(res.Series) == 0 {
			t.Errorf("%s: empty result", res.ID)
		}
		for _, s := range res.Series {
			if len(s.Y) != len(res.X) {
				t.Errorf("%s series %q misaligned", res.ID, s.Name)
			}
		}
	}
}

func TestRoutesExperimentSmall(t *testing.T) {
	res, err := Routes(context.Background(), fastRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("routes series = %d, want 6 (node life, cluster life, cost x2 algs)", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Y) != len(res.X) {
			t.Errorf("series %q misaligned", s.Name)
		}
	}
}

// The headline reproduction, trimmed: at Tx=250 MOBIC must beat LCC.
func TestFig3ShapeTrimmed(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	r := Runner{
		Seeds: 2,
		Mutate: func(cfg *simnet.Config) {
			cfg.Duration = 300
		},
	}
	res, err := Fig3(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	lcc, mobic := res.Series[0], res.Series[1]
	last := len(res.X) - 1
	if mobic.Y[last] >= lcc.Y[last] {
		t.Errorf("at Tx=250: mobic %v >= lcc %v", mobic.Y[last], lcc.Y[last])
	}
	// Unimodal-ish: the peak must not be at either extreme of the sweep.
	peak := 0
	for i, y := range lcc.Y {
		if y > lcc.Y[peak] {
			peak = i
		}
	}
	if peak == 0 || peak == last {
		t.Errorf("lcc peak at sweep boundary (index %d): %v", peak, lcc.Y)
	}
}

func TestAdaptiveBIExperimentSmall(t *testing.T) {
	res, err := AdaptiveBIExp(context.Background(), fastRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "adaptive-bi" {
		t.Errorf("ID = %q", res.ID)
	}
	nx := len(scenario.SpeedSweep())
	if len(res.X) != nx || len(res.Series) != 3 {
		t.Fatalf("adaptive-bi shape: %d x, %d series, want %d x 3", len(res.X), len(res.Series), nx)
	}
	// Every variant reports its beacon budget — that's the trade the
	// experiment exists to show.
	if len(res.Notes) != 3*nx {
		t.Errorf("adaptive-bi notes = %d, want %d beacon-count notes", len(res.Notes), 3*nx)
	}
}

func TestPoliciesExperimentSmall(t *testing.T) {
	res, err := Policies(context.Background(), fastRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "policies" {
		t.Errorf("ID = %q", res.ID)
	}
	nx := len(scenario.TxSweep())
	if len(res.X) != nx {
		t.Fatalf("policies X = %d points, want the Tx sweep (%d)", len(res.X), nx)
	}
	want := []string{"mobic", "mobic-adaptive-bi", "adaptive-lowest-id", "mobic-energy"}
	if len(res.Series) != len(want) {
		t.Fatalf("policies series = %d, want %d", len(res.Series), len(want))
	}
	for i, s := range res.Series {
		if s.Name != want[i] {
			t.Errorf("series[%d] = %q, want %q", i, s.Name, want[i])
		}
		if len(s.Y) != nx {
			t.Errorf("series %q has %d points, want %d", s.Name, len(s.Y), nx)
		}
	}
	// One fairness note per policy curve.
	if len(res.Notes) != len(want) {
		t.Errorf("policies notes = %d, want one fairness line per curve", len(res.Notes))
	}
	for _, n := range res.Notes {
		if !strings.Contains(n, "head-duty fairness") {
			t.Errorf("note %q missing the fairness metric", n)
		}
	}
}
