package experiment

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mobic/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenResult is a fully populated Result exercising every JSON field.
func goldenResult() *Result {
	return &Result{
		ID:     "fig3",
		Title:  "Figure 3: clusterhead changes vs Tx",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      []float64{10, 150, 250},
		Series: []Series{
			{Name: "lowest-id(lcc)", Y: []float64{12, 340.5, 101}, CI: []float64{1.5, 20, 9.25}},
			{Name: "mobic", Y: []float64{14, 300, 68}},
		},
		Notes: []string{"a note"},
	}
}

// goldenCellStats is a fully populated CellStats including one raw
// per-seed metrics snapshot.
func goldenCellStats() CellStats {
	return CellStats{
		CHChanges:         101.5,
		CHChangesCI:       9.25,
		AvgClusters:       7.2,
		MembershipChanges: 55,
		MeanResidence:     83.75,
		Broadcasts:        22500,
		Raw: []metrics.Result{{
			CHChanges:               101,
			CHAcquisitions:          51,
			CHLosses:                50,
			MembershipChanges:       55,
			AvgClusters:             7.2,
			AvgGateways:             3.5,
			AvgClusterSize:          6.9,
			AvgLargestCluster:       12,
			AvgComponents:           2.25,
			AvgLargestComponentFrac: 0.875,
			MeanResidence:           83.75,
			HeadTimeFairness:        0.5,
			ResidenceCount:          40,
			Broadcasts:              22500,
			Deliveries:              180000,
			Drops:                   1200,
			Collisions:              30,
			BytesSent:               360000,
			Duration:                900,
		}},
	}
}

// checkGolden marshals v indented and compares it byte-for-byte against
// testdata/<name>. The golden files pin the wire format served by the
// mobicd API: a diff here means a breaking API change.
func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiment -run TestGolden -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: encoding drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenResultJSON(t *testing.T) {
	checkGolden(t, "result_golden.json", goldenResult())
}

func TestGoldenCellStatsJSON(t *testing.T) {
	checkGolden(t, "cellstats_golden.json", goldenCellStats())
}

// TestResultJSONRoundTrip guards against asymmetric tags: a Result must
// survive marshal/unmarshal unchanged so API clients can resubmit or diff
// results.
func TestResultJSONRoundTrip(t *testing.T) {
	in := goldenResult()
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	back, err := json.Marshal(&out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, back) {
		t.Errorf("round trip drifted:\n%s\nvs\n%s", data, back)
	}
}
