package experiment

import (
	"context"
	"fmt"

	"mobic/internal/cluster"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
)

// CCISweep asks whether Table 1's CCI = 4 s is a good choice: MOBIC's
// clusterhead changes at Tx 150 m and Tx 250 m across contention intervals
// from 0 (immediate resolution) to 16 s.
func CCISweep(ctx context.Context, r Runner) (*Result, error) {
	ccis := []float64{0, 1, 2, 4, 8, 16}
	var cells []Cell
	for _, tx := range []float64{150, 250} {
		for _, cci := range ccis {
			p := scenario.Base(tx)
			alg := cluster.MOBIC
			if cci == 0 {
				// Params.Config only overrides a positive CCI; build the
				// zero-CCI variant explicitly.
				alg.Policy.CCI = 0
				p.CCI = 0
			} else {
				p.CCI = cci
			}
			cells = append(cells, Cell{Params: p, Algorithm: alg})
		}
	}
	cs, err := r.RunCells(ctx, cells)
	if err != nil {
		return nil, err
	}
	mk := func(name string, offset int) Series {
		s := Series{Name: name, Y: make([]float64, len(ccis)), CI: make([]float64, len(ccis))}
		for i := range ccis {
			s.Y[i] = cs[offset+i].CHChanges
			s.CI[i] = cs[offset+i].CHChangesCI
		}
		return s
	}
	return &Result{
		ID:     "cci-sweep",
		Title:  "CCI sensitivity: MOBIC stability vs contention interval",
		XLabel: "cluster contention interval (s)",
		YLabel: "clusterhead changes / 900 s",
		X:      ccis,
		Series: []Series{mk("mobic-tx150", 0), mk("mobic-tx250", len(ccis))},
		Notes: []string{
			"Table 1 fixes CCI = 4 s; longer deferral forgives more transient",
			"head contacts but delays legitimate merges.",
		},
	}, nil
}

// BISweep trades beacon rate against stability: the broadcast interval
// sweep at Tx 150 m for LCC and MOBIC, with TP scaled to 1.5x BI as in
// Table 1's ratio. Faster hellos see topology sooner (fewer stale
// decisions) but cost linearly more airtime.
func BISweep(ctx context.Context, r Runner) (*Result, error) {
	bis := []float64{0.5, 1, 2, 4, 8}
	algs := []cluster.Algorithm{cluster.LCC, cluster.MOBIC}
	var cells []Cell
	for _, alg := range algs {
		for _, bi := range bis {
			p := scenario.Base(150)
			p.BI = bi
			p.TP = 1.5 * bi
			cells = append(cells, Cell{Params: p, Algorithm: alg})
		}
	}
	cs, err := r.RunCells(ctx, cells)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "bi-sweep",
		Title:  "Broadcast-interval sensitivity (Tx 150 m, TP = 1.5 BI)",
		XLabel: "broadcast interval (s)",
		YLabel: "clusterhead changes / 900 s",
		X:      bis,
	}
	for ai, alg := range algs {
		s := Series{Name: alg.Name, Y: make([]float64, len(bis)), CI: make([]float64, len(bis))}
		for i := range bis {
			cell := cs[ai*len(bis)+i]
			s.Y[i] = cell.CHChanges
			s.CI[i] = cell.CHChangesCI
			res.Notes = append(res.Notes, fmt.Sprintf("%-6s BI=%.1f s: %.0f beacons sent",
				alg.Name, bis[i], cell.Broadcasts))
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// WCALite adds a combined-weight algorithm in the spirit of the Weighted
// Clustering Algorithm (a successor to both this paper and DCA): the
// election weight mixes the mobility metric with the node's deviation from
// an ideal degree, so clusterheads are slow AND well-connected-but-not-
// overloaded. Compared against MOBIC and LCC.
func WCALite(ctx context.Context, r Runner) (*Result, error) {
	wca := cluster.MOBIC
	wca.Name = "wca-lite"
	wcaMutate := func(cfg *simnet.Config) { cfg.CombinedDegreeWeight = 0.5 }
	variants := []variant{
		{name: "lcc", alg: cluster.LCC},
		{name: "mobic", alg: cluster.MOBIC},
		{name: "wca-lite", alg: wca, mutate: wcaMutate},
	}
	series, err := sweep(ctx, r, scenario.TxSweep(), scenario.Base, variants, projectCH)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "wca",
		Title:  "WCA-lite: mobility + degree-deviation combined weight",
		XLabel: "transmission range (m)",
		YLabel: "clusterhead changes / 900 s",
		X:      scenario.TxSweep(),
		Series: series,
		Notes: []string{
			"weight = M + 0.5*|degree - ideal|, ideal = mean degree; the",
			"degree term penalizes both isolated and overloaded candidates.",
		},
	}, nil
}
