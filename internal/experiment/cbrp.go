package experiment

import (
	"context"
	"fmt"

	"mobic/internal/cbrp"
	"mobic/internal/cluster"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
	"mobic/internal/stats"
)

// CBRP regenerates the A11 extension: the CBRP-lite routing protocol
// (internal/cbrp) running over LCC vs MOBIC clusters across transmission
// ranges, plus the flat-flooding discovery baseline. It measures the data
// delivery ratio and route breaks (what cluster stability buys the data
// plane) and the control overhead (what the backbone saves on discovery).
func CBRP(ctx context.Context, r Runner) (*Result, error) {
	r = r.withDefaults()
	xs := []float64{150, 200, 250}

	type variantSpec struct {
		name   string
		alg    cluster.Algorithm
		flat   bool
		repair bool
	}
	variants := []variantSpec{
		{name: "lcc", alg: cluster.LCC},
		{name: "mobic", alg: cluster.MOBIC},
		{name: "mobic-flatflood", alg: cluster.MOBIC, flat: true},
		{name: "mobic-repair", alg: cluster.MOBIC, repair: true},
	}

	pdr := make([]Series, len(variants))
	ctrl := make([]Series, len(variants))
	breaks := make([]Series, len(variants))
	for vi, v := range variants {
		pdr[vi] = Series{Name: v.name + "-pdr(%)", Y: make([]float64, len(xs))}
		ctrl[vi] = Series{Name: v.name + "-ctrl-tx", Y: make([]float64, len(xs))}
		breaks[vi] = Series{Name: v.name + "-breaks", Y: make([]float64, len(xs))}
		for xi, tx := range xs {
			var pdrAcc, ctrlAcc, brkAcc stats.Accumulator
			for s := 0; s < r.Seeds; s++ {
				p := scenario.Base(tx)
				p.Seed = r.BaseSeed + uint64(s)
				cfg, err := p.Config(v.alg)
				if err != nil {
					return nil, err
				}
				if r.Mutate != nil {
					r.Mutate(&cfg)
				}
				proto := cbrp.New(cbrp.Config{
					Flows: 10, DataInterval: 4,
					FlatFlooding: v.flat, LocalRepair: v.repair,
				})
				cfg.Apps = []simnet.App{proto}
				net, err := simnet.New(cfg)
				if err != nil {
					return nil, err
				}
				if _, err := net.RunContext(ctx); err != nil {
					return nil, err
				}
				st := proto.Stats()
				pdrAcc.Add(100 * st.DeliveryRatio())
				ctrlAcc.Add(float64(st.ControlTx()))
				brkAcc.Add(float64(st.RouteBreaks))
			}
			pdr[vi].Y[xi] = pdrAcc.Mean()
			ctrl[vi].Y[xi] = ctrlAcc.Mean()
			breaks[vi].Y[xi] = brkAcc.Mean()
		}
	}
	res := &Result{
		ID:     "cbrp",
		Title:  "A11: CBRP-lite routing over LCC vs MOBIC clusters",
		XLabel: "transmission range (m)",
		YLabel: "data delivery ratio (%)",
		X:      xs,
		Series: []Series{pdr[0], pdr[1], pdr[2], pdr[3]},
	}
	for vi, v := range variants {
		for xi, tx := range xs {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%-16s tx=%3.0f: control tx %7.0f, route breaks %5.0f",
				v.name, tx, ctrl[vi].Y[xi], breaks[vi].Y[xi]))
		}
	}
	return res, nil
}
