package experiment

import (
	"context"
	"mobic/internal/cluster"
	"mobic/internal/routing"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
	"mobic/internal/stats"
)

// Flooding regenerates the A9 motivation experiment: the per-flood
// transmission count of flat flooding vs cluster-based flooding on MOBIC's
// clusters, sampled over the run at each transmission range.
func Flooding(ctx context.Context, r Runner) (*Result, error) {
	r = r.withDefaults()
	xs := scenario.TxSweep()
	flat := Series{Name: "flat-flood", Y: make([]float64, len(xs))}
	clustered := Series{Name: "cluster-flood", Y: make([]float64, len(xs))}
	coverage := Series{Name: "cluster-coverage(%)", Y: make([]float64, len(xs))}

	for xi, tx := range xs {
		var flatAcc, clusAcc, covAcc stats.Accumulator
		for s := 0; s < r.Seeds; s++ {
			p := scenario.Base(tx)
			p.Seed = r.BaseSeed + uint64(s)
			cfg, err := p.Config(cluster.MOBIC)
			if err != nil {
				return nil, err
			}
			if err := floodSamples(cfg, &flatAcc, &clusAcc, &covAcc); err != nil {
				return nil, err
			}
		}
		flat.Y[xi] = flatAcc.Mean()
		clustered.Y[xi] = clusAcc.Mean()
		coverage.Y[xi] = 100 * covAcc.Mean()
	}
	return &Result{
		ID:     "flooding",
		Title:  "A9: flat vs cluster-based flooding load (MOBIC clusters)",
		XLabel: "transmission range (m)",
		YLabel: "transmissions per network-wide flood",
		X:      xs,
		Series: []Series{flat, clustered, coverage},
		Notes: []string{
			"cluster-flood forwards only via clusterheads and gateways;",
			"coverage is relative to flat flooding's reach from the same source.",
		},
	}, nil
}

// floodSamples runs one scenario, pausing every 100 s to flood from node 0
// over the instantaneous topology and cluster structure.
func floodSamples(cfg simnet.Config, flatAcc, clusAcc, covAcc *stats.Accumulator) error {
	net, err := simnet.New(cfg)
	if err != nil {
		return err
	}
	for t := 100.0; t <= cfg.Duration; t += 100 {
		net.RunUntil(t)
		topo := net.Topology()
		snap := net.Snapshot()
		heads := make([]int32, len(snap))
		for i, s := range snap {
			heads[i] = s.Head
		}
		ff, err := routing.FlatFlood(topo, 0)
		if err != nil {
			return err
		}
		cf, err := routing.ClusterFlood(topo, heads, 0)
		if err != nil {
			return err
		}
		flatAcc.Add(float64(ff.Transmissions))
		clusAcc.Add(float64(cf.Transmissions))
		if ff.Reached > 0 {
			covAcc.Add(float64(cf.Reached) / float64(ff.Reached))
		}
	}
	return nil
}
