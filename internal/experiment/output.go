package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mobic/internal/viz"
)

// WriteJSON emits the Result as indented JSON for machine consumption. The
// encoding comes straight from Result's struct tags, so CLI output and the
// mobicd API share one stable wire format.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// FormatTable renders a Result as an aligned text table: one row per X
// value, one column per series (with confidence half-widths when present).
func FormatTable(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", res.Title)
	if len(res.X) > 0 {
		fmt.Fprintf(&b, "%14s", res.XLabel)
		for _, s := range res.Series {
			fmt.Fprintf(&b, " %20s", s.Name)
		}
		b.WriteByte('\n')
		for i, x := range res.X {
			fmt.Fprintf(&b, "%14.6g", x)
			for _, s := range res.Series {
				cell := fmt.Sprintf("%.6g", s.Y[i])
				if len(s.CI) == len(s.Y) && s.CI[i] > 0 {
					cell += fmt.Sprintf(" ±%.3g", s.CI[i])
				}
				fmt.Fprintf(&b, " %20s", cell)
			}
			b.WriteByte('\n')
		}
	}
	for _, note := range res.Notes {
		fmt.Fprintf(&b, "  %s\n", note)
	}
	return b.String()
}

// WriteCSV emits the Result as CSV: header then one row per X value.
// Confidence columns are suffixed "_ci".
func WriteCSV(w io.Writer, res *Result) error {
	if len(res.X) == 0 {
		return nil
	}
	cols := []string{csvEscape(res.XLabel)}
	for _, s := range res.Series {
		cols = append(cols, csvEscape(s.Name))
		if len(s.CI) == len(s.Y) {
			cols = append(cols, csvEscape(s.Name+"_ci"))
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range res.X {
		row := []string{formatFloat(x)}
		for _, s := range res.Series {
			row = append(row, formatFloat(s.Y[i]))
			if len(s.CI) == len(s.Y) {
				row = append(row, formatFloat(s.CI[i]))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SVG renders the result as a standalone SVG figure ("" for data-less
// results like Table 1).
func SVG(res *Result) string {
	if len(res.X) == 0 {
		return ""
	}
	series := make([]viz.Series, len(res.Series))
	for i, s := range res.Series {
		series[i] = viz.Series{Name: s.Name, Y: s.Y}
	}
	return viz.SVGChart(res.X, series, res.Title, res.XLabel, res.YLabel)
}

// Chart renders the result's series as an ASCII line chart.
func Chart(res *Result) string {
	if len(res.X) == 0 {
		return ""
	}
	series := make([]viz.Series, len(res.Series))
	for i, s := range res.Series {
		series[i] = viz.Series{Name: s.Name, Y: s.Y}
	}
	return viz.LineChart(res.X, series, 64, 16, res.XLabel, res.YLabel)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
