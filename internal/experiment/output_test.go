package experiment

import (
	"strings"
	"testing"
)

func sampleResult() *Result {
	return &Result{
		ID:     "fig3",
		Title:  "Figure 3",
		XLabel: "tx (m)",
		YLabel: "ch changes",
		X:      []float64{10, 50, 250},
		Series: []Series{
			{Name: "lcc", Y: []float64{100, 1200, 200}, CI: []float64{5, 30, 10}},
			{Name: "mobic", Y: []float64{90, 1300, 140}, CI: []float64{4, 25, 8}},
		},
		Notes: []string{"a note"},
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable(sampleResult())
	for _, want := range []string{"Figure 3", "lcc", "mobic", "1200", "±", "a note", "tx (m)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + 3 rows + 1 note.
	if len(lines) != 6 {
		t.Errorf("table has %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestFormatTableNotesOnly(t *testing.T) {
	res := &Result{Title: "Table 1", Notes: []string{"N 50"}}
	out := FormatTable(res)
	if !strings.Contains(out, "N 50") {
		t.Errorf("notes-only table wrong:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines, want 4:\n%s", len(lines), out)
	}
	if lines[0] != "tx (m),lcc,lcc_ci,mobic,mobic_ci" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "10,100,5,90,4" {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	res := &Result{
		XLabel: `weird,"label"`,
		X:      []float64{1},
		Series: []Series{{Name: "s", Y: []float64{2}}},
	}
	var b strings.Builder
	if err := WriteCSV(&b, res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), `"weird,""label""",s`) {
		t.Errorf("escaping wrong: %q", b.String())
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, &Result{Title: "no data"}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty result should write nothing, got %q", b.String())
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"id": "fig3"`, `"name": "lcc"`, `"y": [`, `"a note"`} {
		if !strings.Contains(out, want) {
			t.Errorf("json missing %q:\n%s", want, out)
		}
	}
}

func TestChart(t *testing.T) {
	out := Chart(sampleResult())
	if !strings.Contains(out, "legend:") {
		t.Errorf("chart missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("chart missing series markers:\n%s", out)
	}
	if Chart(&Result{}) != "" {
		t.Error("chart of empty result should be empty")
	}
}
