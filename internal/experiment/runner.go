// Package experiment regenerates every table and figure of the paper's
// evaluation (and the DESIGN.md ablations) from the simulator. Each
// experiment is a named function producing a Result — an X axis plus one
// series per algorithm — which the cmd/experiments tool renders as aligned
// tables, CSV files and ASCII charts, and EXPERIMENTS.md records against the
// paper's published curves.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mobic/internal/cluster"
	"mobic/internal/metrics"
	"mobic/internal/obs"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
	"mobic/internal/stats"
)

// Runner controls replication and parallelism for experiment sweeps.
type Runner struct {
	// Seeds is the number of replications per cell (default 3).
	Seeds int
	// BaseSeed is the first scenario seed; replication i uses BaseSeed+i.
	BaseSeed uint64
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// Tiles, when > 1, runs every cell on the tiled-parallel engine
	// scheduler with that many arena tiles (see simnet.Config.Tiles; the
	// tiled schedule is bit-identical to the sequential one, so this is a
	// pure performance knob). 0 or 1 keeps the sequential scheduler. A
	// cell whose config already sets Tiles keeps its own value.
	Tiles int
	// Progress, when set, is called after each completed cell.
	Progress func(done, total int)
	// Mutate, when set, adjusts each materialized config before the run
	// (e.g. to override the propagation or loss model).
	Mutate func(*simnet.Config)
	// StartCell skips the first StartCell cells: they are not simulated,
	// and their stats are taken from Resume instead. This is the resume
	// half of checkpoint/restart — a re-run with the same cells and
	// StartCell = number of previously completed cells produces output
	// identical to an uninterrupted run, because each cell's simulation
	// depends only on its own config and seed.
	StartCell int
	// Resume supplies the stats of the skipped prefix; entry i stands in
	// for cells[i] (i < StartCell). Missing entries are zero stats.
	Resume []CellStats
	// Obs receives sweep telemetry (per-cell progress fraction, cells
	// completed/failed/resumed, per-replication wall time) and is injected
	// into every cell's simnet config so engine metrics flow to the same
	// recorder. Defaults to obs.Nop. A cell config that already carries its
	// own recorder keeps it.
	Obs obs.Recorder
	// Checkpoint, when set, is called as the contiguous prefix of
	// completed cells grows: once for each cell index in increasing
	// order, after every replication of that cell (and of all cells
	// before it) has finished. Calls are serialized and made outside the
	// runner's internal lock, so a slow callback — a durable caller's
	// per-cell fsync, say — delays only the single draining worker, not
	// the whole pool; durable callers use it to journal progress.
	Checkpoint func(cell int, stats CellStats)
}

// withDefaults returns a copy with defaults applied.
func (r Runner) withDefaults() Runner {
	if r.Seeds <= 0 {
		r.Seeds = 3
	}
	if r.BaseSeed == 0 {
		r.BaseSeed = 1
	}
	if r.Workers <= 0 {
		r.Workers = runtime.GOMAXPROCS(0)
	}
	if r.Obs == nil {
		r.Obs = obs.Nop{}
	}
	return r
}

// CellStats aggregates one sweep cell (one x value, one algorithm) over the
// replications. The JSON field names are a stable wire format: the service
// API returns CellStats directly, so renaming a tag is a breaking change
// (guarded by the golden-file test in json_test.go).
type CellStats struct {
	// CHChanges is the mean cluster-stability metric CS.
	CHChanges float64 `json:"ch_changes"`
	// CHChangesCI is the 95% confidence half-width over seeds.
	CHChangesCI float64 `json:"ch_changes_ci"`
	// AvgClusters is the mean time-averaged cluster count.
	AvgClusters float64 `json:"avg_clusters"`
	// MembershipChanges is the mean membership-change count.
	MembershipChanges float64 `json:"membership_changes"`
	// MeanResidence is the mean clusterhead tenure in seconds.
	MeanResidence float64 `json:"mean_residence"`
	// Broadcasts is the mean number of hello transmissions.
	Broadcasts float64 `json:"broadcasts"`
	// Raw holds the per-seed metric snapshots for custom projections.
	Raw []metrics.Result `json:"raw,omitempty"`
}

// cellJob is one (cell index, replication) unit of work.
type cellJob struct {
	cell int
	rep  int
	seed uint64
	cfg  simnet.Config
}

// checkpointEntry is one pending Checkpoint callback: a newly completed
// cell of the contiguous frontier waiting to be delivered outside the
// aggregation lock.
type checkpointEntry struct {
	cell  int
	stats CellStats
}

// RunCells executes every (params, algorithm) cell over all seeds, in
// parallel, and aggregates per cell. make(cfg) materializes a cell's config
// for one seed. Results are ordered like the inputs.
//
// Cancellation: when ctx is canceled or times out, in-flight simulations
// stop at the next scheduler chunk, queued work is skipped, and RunCells
// returns ctx.Err() — this is how service jobs abort promptly. The first
// worker error cancels the sweep the same way: remaining queued jobs are
// skipped instead of burning CPU on a result that will be discarded, and
// the first error is returned.
//
// Checkpoint/restart: with StartCell > 0 the first StartCell cells are not
// simulated — their stats come from Resume — and Checkpoint (when set)
// reports each newly completed cell of the contiguous prefix, which is what
// lets a durable caller resume an interrupted sweep with identical output.
func (r Runner) RunCells(ctx context.Context, cells []Cell) ([]CellStats, error) {
	r = r.withDefaults()
	if r.StartCell < 0 || r.StartCell > len(cells) {
		return nil, fmt.Errorf("experiment: start cell %d outside [0, %d]", r.StartCell, len(cells))
	}

	// runCtx aborts the whole sweep on the first worker error; the caller's
	// ctx still governs external cancellation.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var jobs []cellJob
	for ci := r.StartCell; ci < len(cells); ci++ {
		c := cells[ci]
		for s := 0; s < r.Seeds; s++ {
			p := c.Params
			p.Seed = r.BaseSeed + uint64(s)
			cfg, err := p.Config(c.Algorithm)
			if err != nil {
				return nil, fmt.Errorf("experiment: cell %d: %w", ci, err)
			}
			if c.Mutate != nil {
				c.Mutate(&cfg)
			}
			if r.Mutate != nil {
				r.Mutate(&cfg)
			}
			if cfg.Obs == nil {
				cfg.Obs = r.Obs
			}
			if cfg.Tiles == 0 {
				cfg.Tiles = r.Tiles
			}
			jobs = append(jobs, cellJob{cell: ci, rep: s, seed: p.Seed, cfg: cfg})
		}
	}

	out := make([]CellStats, len(cells))
	for ci := 0; ci < r.StartCell && ci < len(r.Resume); ci++ {
		out[ci] = r.Resume[ci]
	}
	if r.StartCell > 0 {
		r.Obs.Add(obs.ExpCellsResumed, int64(r.StartCell))
	}
	instrumented := r.Obs.Enabled()

	// Replications are stored by seed index, not completion order, so the
	// per-cell aggregation is deterministic regardless of worker count.
	results := make([][]metrics.Result, len(cells))
	counts := make([]int, len(cells))
	completed := make([]bool, len(cells))
	for ci := r.StartCell; ci < len(cells); ci++ {
		results[ci] = make([]metrics.Result, r.Seeds)
	}
	var (
		mu       sync.Mutex
		firstErr error
		done     int
		frontier = r.StartCell
		wg       sync.WaitGroup
		// Checkpoint delivery is decoupled from the aggregation lock:
		// frontier advances enqueue cells under mu (so the queue carries
		// the strictly increasing frontier order), and whichever worker
		// finds entries pending drains them after unlocking. cpDraining
		// makes the drain single-flight, which keeps callbacks serialized
		// and in order while every other worker keeps simulating instead
		// of stalling behind a slow callback (a per-cell fsync, say).
		cpQueue    []checkpointEntry
		cpDraining bool
	)
	// drainCheckpoints delivers pending checkpoints in order. Callers must
	// not hold mu. If another worker is already draining, it returns at
	// once — the active drainer re-checks the queue before finishing, so
	// nothing is stranded.
	drainCheckpoints := func() {
		mu.Lock()
		if cpDraining {
			mu.Unlock()
			return
		}
		cpDraining = true
		for len(cpQueue) > 0 {
			batch := cpQueue
			cpQueue = nil
			mu.Unlock()
			for _, e := range batch {
				r.Checkpoint(e.cell, e.stats)
			}
			mu.Lock()
		}
		cpDraining = false
		mu.Unlock()
	}
	jobCh := make(chan cellJob)
	for w := 0; w < r.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				err := runCtx.Err()
				var res *simnet.Result
				var cellStart time.Time
				if instrumented {
					cellStart = time.Now()
				}
				if err == nil {
					var net *simnet.Network
					net, err = simnet.New(job.cfg)
					if err == nil {
						res, err = net.RunContext(runCtx)
					}
				}
				if instrumented && err == nil {
					cellEnd := time.Now()
					r.Obs.Observe(obs.ExpCellSeconds, cellEnd.Sub(cellStart).Seconds())
					r.Obs.Span(obs.SpanCell, cellStart.UnixNano(), cellEnd.UnixNano())
				}
				mu.Lock()
				if err != nil {
					r.Obs.Add(obs.ExpCellsFailed, 1)
					// Skips caused by our own abort are not errors; the
					// one that triggered the abort is already recorded.
					if firstErr == nil {
						firstErr = fmt.Errorf("experiment: cell %d seed %d: %w", job.cell, job.seed, err)
						cancelRun()
					}
				} else {
					results[job.cell][job.rep] = res.Metrics
					counts[job.cell]++
					if counts[job.cell] == r.Seeds {
						out[job.cell] = aggregate(results[job.cell])
						completed[job.cell] = true
						r.Obs.Add(obs.ExpCellsCompleted, 1)
						// Advance the contiguous completed prefix; cells
						// finish out of order, checkpoints never do.
						for frontier < len(cells) && completed[frontier] {
							if r.Checkpoint != nil {
								cpQueue = append(cpQueue, checkpointEntry{frontier, out[frontier]})
							}
							frontier++
						}
					}
				}
				done++
				progress := r.Progress
				total := len(jobs)
				d := done
				mu.Unlock()
				if total > 0 {
					r.Obs.Set(obs.ExpProgress, float64(d)/float64(total))
				}
				if r.Checkpoint != nil {
					drainCheckpoints()
				}
				if progress != nil {
					progress(d, total)
				}
			}
		}()
	}
	for _, job := range jobs {
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Cell is one sweep point: a scenario and an algorithm, with an optional
// per-cell config mutation.
type Cell struct {
	// Params is the scenario (Seed is overwritten per replication).
	Params scenario.Params
	// Algorithm is the clustering algorithm under test.
	Algorithm cluster.Algorithm
	// Mutate optionally adjusts the materialized config (loss model,
	// propagation, adaptive BI, ...).
	Mutate func(*simnet.Config)
}

func aggregate(rs []metrics.Result) CellStats {
	ch := make([]float64, 0, len(rs))
	var clusters, memb, res, bcast stats.Accumulator
	for _, m := range rs {
		ch = append(ch, float64(m.CHChanges))
		clusters.Add(m.AvgClusters)
		memb.Add(float64(m.MembershipChanges))
		res.Add(m.MeanResidence)
		bcast.Add(float64(m.Broadcasts))
	}
	mean, ci := stats.MeanCI(ch)
	return CellStats{
		CHChanges:         mean,
		CHChangesCI:       ci,
		AvgClusters:       clusters.Mean(),
		MembershipChanges: memb.Mean(),
		MeanResidence:     res.Mean(),
		Broadcasts:        bcast.Mean(),
		Raw:               rs,
	}
}

// Series is one named curve of a Result.
type Series struct {
	// Name labels the curve (algorithm or variant).
	Name string `json:"name"`
	// Y holds one value per X point.
	Y []float64 `json:"y"`
	// CI holds the 95% half-widths (may be nil).
	CI []float64 `json:"ci,omitempty"`
}

// Result is a regenerated table or figure. The JSON field names are a
// stable wire format consumed by cmd/experiments -json and the mobicd API;
// the golden-file test in json_test.go pins them.
type Result struct {
	// ID is the experiment identifier ("fig3", "table1", "ablate-cci"...).
	ID string `json:"id"`
	// Title describes the artifact.
	Title string `json:"title"`
	// XLabel and YLabel name the axes.
	XLabel string `json:"x_label,omitempty"`
	YLabel string `json:"y_label,omitempty"`
	// X is the sweep axis.
	X []float64 `json:"x,omitempty"`
	// Series holds one curve per algorithm/variant.
	Series []Series `json:"series,omitempty"`
	// Notes carries free-form observations (shape checks, coverage...).
	Notes []string `json:"notes,omitempty"`
}
