package experiment

import (
	"context"
	"math/rand/v2"

	"mobic/internal/cluster"
	"mobic/internal/graph"
	"mobic/internal/hier"
	"mobic/internal/routing"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
	"mobic/internal/stats"
)

// networkProvider adapts a live simulation to routing.SnapshotProvider.
type networkProvider struct {
	net *simnet.Network
}

// TopologyAt implements routing.SnapshotProvider.
func (p *networkProvider) TopologyAt(t float64) (*graph.Adjacency, []int32, error) {
	p.net.RunUntil(t)
	snap := p.net.Snapshot()
	heads := make([]int32, len(snap))
	for i, s := range snap {
		heads[i] = s.Head
	}
	return p.net.Topology(), heads, nil
}

// Routes regenerates the A10 extension experiment: what the paper's closing
// argument predicts — stabler clusters make a better routing substrate. For
// LCC and MOBIC clusters it measures, at each transmission range:
//
//   - the mean lifetime of backbone-constrained routes between random
//     node pairs (probed every 5 s until the route breaks), and
//   - the mean route-request discovery cost over the cluster backbone.
func Routes(ctx context.Context, r Runner) (*Result, error) {
	r = r.withDefaults()
	xs := []float64{100, 150, 200, 250}
	algs := []cluster.Algorithm{cluster.LCC, cluster.MOBIC}

	life := make([]Series, len(algs))
	clusterLife := make([]Series, len(algs))
	cost := make([]Series, len(algs))
	for ai, alg := range algs {
		life[ai] = Series{Name: alg.Name + "-route-life(s)", Y: make([]float64, len(xs))}
		clusterLife[ai] = Series{Name: alg.Name + "-cluster-route-life(s)", Y: make([]float64, len(xs))}
		cost[ai] = Series{Name: alg.Name + "-rreq-cost", Y: make([]float64, len(xs))}
		for xi, tx := range xs {
			var lifeAcc, clusterAcc, costAcc stats.Accumulator
			for s := 0; s < r.Seeds; s++ {
				p := scenario.Base(tx)
				p.Seed = r.BaseSeed + uint64(s)
				cfg, err := p.Config(alg)
				if err != nil {
					return nil, err
				}
				if r.Mutate != nil {
					r.Mutate(&cfg)
				}
				if err := routeSamples(cfg, &lifeAcc, &clusterAcc, &costAcc); err != nil {
					return nil, err
				}
			}
			life[ai].Y[xi] = lifeAcc.Mean()
			clusterLife[ai].Y[xi] = clusterAcc.Mean()
			cost[ai].Y[xi] = costAcc.Mean()
		}
	}
	return &Result{
		ID:     "routes",
		Title:  "A10: route lifetime and discovery cost over the cluster backbone",
		XLabel: "transmission range (m)",
		YLabel: "mean route lifetime (s)",
		X:      xs,
		Series: []Series{
			life[0], life[1],
			clusterLife[0], clusterLife[1],
			cost[0], cost[1],
		},
		Notes: []string{
			"route-life: node-level source routes (die when any link breaks);",
			"cluster-route-life: routes addressed by cluster sequence (die only",
			"when a clusterhead changes or clusters lose adjacency) — the level",
			"where the paper's stability translates into routing performance.",
			"rreq-cost: backbone route-request flood transmissions.",
		},
	}, nil
}

// routeSamples runs one scenario, discovering fresh routes at fixed epochs
// between seeded random pairs and measuring node-route lifetimes,
// cluster-route lifetimes, and discovery costs.
func routeSamples(cfg simnet.Config, lifeAcc, clusterAcc, costAcc *stats.Accumulator) error {
	net, err := simnet.New(cfg)
	if err != nil {
		return err
	}
	provider := &networkProvider{net: net}
	pairRng := rand.New(rand.NewPCG(cfg.Seed, 0x707e5))
	const probe = 5.0
	for start := 60.0; start+60 <= cfg.Duration; start += 120 {
		src := int32(pairRng.IntN(cfg.N))
		dst := int32(pairRng.IntN(cfg.N))
		if src == dst {
			dst = (dst + 1) % int32(cfg.N)
		}
		g, heads, err := provider.TopologyAt(start)
		if err != nil {
			return err
		}
		c, err := routing.DiscoveryCost(g, heads, src, true)
		if err != nil {
			return err
		}
		costAcc.Add(float64(c))

		// Discover both route kinds at the same instant.
		npath, nerr := routing.BackbonePath(g, heads, src, dst)
		cg, err := hier.Build(g, heads)
		if err != nil {
			return err
		}
		cpath, cerr := cg.Path(clusterOf(heads, src), clusterOf(heads, dst))
		if nerr != nil && cerr != nil {
			continue // disconnected pair: nothing to measure
		}

		// One shared probe loop: the simulation clock only moves forward,
		// so both lifetimes must be evaluated on the same snapshots.
		nodeLife, clusterLife := 0.0, 0.0
		nodeAlive, clusterAlive := nerr == nil, cerr == nil
		for t := start + probe; t <= start+60 && (nodeAlive || clusterAlive); t += probe {
			g, heads, err := provider.TopologyAt(t)
			if err != nil {
				return err
			}
			if nodeAlive {
				if npath.Valid(g) {
					nodeLife = t - start
				} else {
					nodeAlive = false
				}
			}
			if clusterAlive {
				cg, err := hier.Build(g, heads)
				if err != nil {
					return err
				}
				if cg.PathValid(cpath) {
					clusterLife = t - start
				} else {
					clusterAlive = false
				}
			}
		}
		if nerr == nil {
			lifeAcc.Add(nodeLife)
		}
		if cerr == nil {
			clusterAcc.Add(clusterLife)
		}
	}
	return nil
}

// clusterOf maps a node to its cluster identifier (its own id when
// unaffiliated, matching hier's singleton convention).
func clusterOf(heads []int32, node int32) int32 {
	if heads[node] == cluster.NoHead {
		return node
	}
	return heads[node]
}
