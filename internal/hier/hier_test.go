package hier

import (
	"testing"

	"mobic/internal/geom"
	"mobic/internal/graph"
)

// twoClusters builds the star-of-stars topology: heads 0 and 3 with members
// {1,2} and {4,5}, linked via the 2-4 edge.
func twoClusters() (*graph.Adjacency, []int32) {
	pos := []geom.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0},
		{X: 5, Y: 0}, {X: 4, Y: 0}, {X: 6, Y: 0},
	}
	g := graph.FromPositions(pos, 2)
	return g, []int32{0, 0, 0, 3, 3, 3}
}

func TestBuildBasics(t *testing.T) {
	g, aff := twoClusters()
	cg, err := Build(g, aff)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Clusters() != 2 {
		t.Fatalf("Clusters = %d, want 2", cg.Clusters())
	}
	if cg.Size(0) != 3 || cg.Size(3) != 3 {
		t.Errorf("sizes = %d, %d", cg.Size(0), cg.Size(3))
	}
	if cg.Size(99) != 0 {
		t.Error("unknown cluster size should be 0")
	}
	if cg.Edges() != 1 {
		t.Errorf("Edges = %d, want 1", cg.Edges())
	}
	if !cg.Adjacent(0, 3) || !cg.Adjacent(3, 0) {
		t.Error("clusters 0 and 3 should be adjacent")
	}
	if cg.Adjacent(0, 99) {
		t.Error("unknown cluster should not be adjacent")
	}
	if cg.Diameter() != 1 {
		t.Errorf("Diameter = %d, want 1", cg.Diameter())
	}
	heads := cg.Heads()
	if len(heads) != 2 || heads[0] != 0 || heads[1] != 3 {
		t.Errorf("Heads = %v", heads)
	}
}

func TestBuildValidation(t *testing.T) {
	g, _ := twoClusters()
	if _, err := Build(g, []int32{0, 0}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestUnaffiliatedAreSingletons(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 1}, {X: 2}}
	g := graph.FromPositions(pos, 1.2)
	aff := []int32{0, 0, NoCluster}
	cg, err := Build(g, aff)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Clusters() != 2 {
		t.Fatalf("Clusters = %d, want 2 (singleton for node 2)", cg.Clusters())
	}
	if cg.Size(2) != 1 {
		t.Errorf("singleton size = %d", cg.Size(2))
	}
	if !cg.Adjacent(0, 2) {
		t.Error("cluster 0 and singleton 2 share the 1-2 edge")
	}
}

func TestRoutingStateReduction(t *testing.T) {
	g, aff := twoClusters()
	cg, err := Build(g, aff)
	if err != nil {
		t.Fatal(err)
	}
	flat, hierTotal := cg.RoutingState()
	if flat != 6*5 {
		t.Errorf("flat = %d, want 30", flat)
	}
	// Intra: 2 clusters * 3*2 = 12; edges: 2*1; heads: +6 => 20.
	if hierTotal != 20 {
		t.Errorf("hierarchical = %d, want 20", hierTotal)
	}
	if hierTotal >= flat {
		t.Error("hierarchy should reduce routing state")
	}
}

func TestDiameterChain(t *testing.T) {
	// Three clusters in a chain: 0-1 ... 2-3 ... 4-5 with bridges 1-2, 3-4.
	pos := []geom.Point{
		{X: 0}, {X: 1}, {X: 2}, {X: 3}, {X: 4}, {X: 5},
	}
	g := graph.FromPositions(pos, 1.2)
	aff := []int32{0, 0, 2, 2, 4, 4}
	cg, err := Build(g, aff)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Clusters() != 3 {
		t.Fatalf("Clusters = %d", cg.Clusters())
	}
	if cg.Diameter() != 2 {
		t.Errorf("chain of 3 clusters: diameter = %d, want 2", cg.Diameter())
	}
}

func TestClusterPath(t *testing.T) {
	pos := []geom.Point{
		{X: 0}, {X: 1}, {X: 2}, {X: 3}, {X: 4}, {X: 5},
	}
	g := graph.FromPositions(pos, 1.2)
	aff := []int32{0, 0, 2, 2, 4, 4}
	cg, err := Build(g, aff)
	if err != nil {
		t.Fatal(err)
	}
	path, err := cg.Path(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 2, 4}
	if len(path) != 3 {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if !cg.PathValid(path) {
		t.Error("freshly computed path should be valid")
	}
	self, err := cg.Path(2, 2)
	if err != nil || len(self) != 1 {
		t.Errorf("self path = %v, %v", self, err)
	}
	if _, err := cg.Path(0, 99); err == nil {
		t.Error("unknown cluster should error")
	}
}

func TestClusterPathValidityAfterChange(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 1}, {X: 2}, {X: 3}}
	g := graph.FromPositions(pos, 1.2)
	cgA, err := Build(g, []int32{0, 0, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	path, err := cgA.Path(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Same topology but cluster 2's head changed to 3: route dies.
	cgB, err := Build(g, []int32{0, 0, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cgB.PathValid(path) {
		t.Error("path through a vanished cluster must be invalid")
	}
	if !cgA.PathValid(path) {
		t.Error("path must stay valid in the original snapshot")
	}
	// Empty path is invalid.
	if cgA.PathValid(nil) {
		t.Error("empty path should be invalid")
	}
}

func TestEdgeChurn(t *testing.T) {
	g, aff := twoClusters()
	a, err := Build(g, aff)
	if err != nil {
		t.Fatal(err)
	}
	// Same snapshot: zero churn.
	if churn := EdgeChurn(a, a); churn != 0 {
		t.Errorf("self churn = %d", churn)
	}
	// Break the bridge (move node 4 away): edge 0-3 disappears.
	pos2 := []geom.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0},
		{X: 5, Y: 0}, {X: 50, Y: 0}, {X: 6, Y: 0},
	}
	g2 := graph.FromPositions(pos2, 2)
	b, err := Build(g2, aff)
	if err != nil {
		t.Fatal(err)
	}
	if churn := EdgeChurn(a, b); churn != 1 {
		t.Errorf("churn = %d, want 1 (bridge lost)", churn)
	}
}
