// Package hier analyzes the cluster hierarchy as a graph of clusters — the
// structure the paper's introduction motivates: "imposition of a
// hierarchical organization is beneficial ... results in scalability of
// operations". It quantifies what clustering buys a routing layer:
//
//   - the cluster graph (vertices = clusters, edges = any physical link
//     between their members) and its diameter in cluster hops;
//   - the routing-state reduction: proactive flat routing stores O(N)
//     entries per node, hierarchical routing stores cluster-local state
//     plus the cluster graph at heads;
//   - cluster-graph churn between snapshots, a structural stability view.
package hier

import (
	"fmt"
	"sort"

	"mobic/internal/graph"
)

// NoCluster marks nodes without a clusterhead.
const NoCluster int32 = -1

// ClusterGraph is the super-graph over clusters.
type ClusterGraph struct {
	// heads lists the cluster identifiers (head node ids), sorted.
	heads []int32
	// index maps head id -> position in heads.
	index map[int32]int
	// adj is the cluster-level adjacency (indices into heads).
	adj [][]int
	// sizes holds each cluster's node count.
	sizes []int
	// n is the number of physical nodes.
	n int
}

// Build derives the cluster graph from a physical topology and the per-node
// clusterhead vector (heads[i] == i for heads, NoCluster for unaffiliated
// nodes, which form singleton clusters).
func Build(topo *graph.Adjacency, affiliation []int32) (*ClusterGraph, error) {
	if len(affiliation) != topo.N() {
		return nil, fmt.Errorf("hier: %d affiliations for %d nodes", len(affiliation), topo.N())
	}
	clusterOf := func(i int32) int32 {
		if affiliation[i] == NoCluster {
			return i // singleton
		}
		return affiliation[i]
	}
	seen := make(map[int32]bool)
	var heads []int32
	sizes := make(map[int32]int)
	for i := range affiliation {
		c := clusterOf(int32(i))
		if !seen[c] {
			seen[c] = true
			heads = append(heads, c)
		}
		sizes[c]++
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	index := make(map[int32]int, len(heads))
	for i, h := range heads {
		index[h] = i
	}

	adjSet := make([]map[int]bool, len(heads))
	for i := range adjSet {
		adjSet[i] = make(map[int]bool)
	}
	for u := 0; u < topo.N(); u++ {
		cu := index[clusterOf(int32(u))]
		for _, v := range topo.Neighbors(int32(u)) {
			if v <= int32(u) {
				continue
			}
			cv := index[clusterOf(v)]
			if cu == cv {
				continue
			}
			adjSet[cu][cv] = true
			adjSet[cv][cu] = true
		}
	}
	adj := make([][]int, len(heads))
	for i, set := range adjSet {
		for j := range set {
			adj[i] = append(adj[i], j)
		}
		sort.Ints(adj[i])
	}
	sizeSlice := make([]int, len(heads))
	for i, h := range heads {
		sizeSlice[i] = sizes[h]
	}
	return &ClusterGraph{
		heads: heads,
		index: index,
		adj:   adj,
		sizes: sizeSlice,
		n:     topo.N(),
	}, nil
}

// Clusters returns the number of clusters.
func (g *ClusterGraph) Clusters() int { return len(g.heads) }

// Heads returns the sorted cluster identifiers.
func (g *ClusterGraph) Heads() []int32 { return append([]int32(nil), g.heads...) }

// Size returns the node count of the cluster with the given head.
func (g *ClusterGraph) Size(head int32) int {
	if i, ok := g.index[head]; ok {
		return g.sizes[i]
	}
	return 0
}

// Edges returns the number of cluster-graph edges.
func (g *ClusterGraph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Adjacent reports whether the clusters headed by a and b share a link.
func (g *ClusterGraph) Adjacent(a, b int32) bool {
	ia, okA := g.index[a]
	ib, okB := g.index[b]
	if !okA || !okB {
		return false
	}
	for _, j := range g.adj[ia] {
		if j == ib {
			return true
		}
	}
	return false
}

// Diameter returns the longest shortest path in cluster hops over the
// largest connected component of the cluster graph.
func (g *ClusterGraph) Diameter() int {
	maxDist := 0
	for s := range g.heads {
		dist := make([]int, len(g.heads))
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for _, d := range dist {
			if d > maxDist {
				maxDist = d
			}
		}
	}
	return maxDist
}

// RoutingState estimates per-node proactive routing-table entries.
//
// Flat link-state/distance-vector: every node stores a route to every other
// node: N*(N-1) entries total.
//
// Hierarchical (cluster-based): a member stores its cluster's nodes plus
// the audible heads (approximated by the cluster-graph degree of its
// cluster); a head additionally stores the cluster graph. Entries total:
// sum over clusters of size*(size-1) intra-cluster + 2*edges (cluster
// adjacencies at heads) + clusters (each node knows its head).
func (g *ClusterGraph) RoutingState() (flat, hierarchical int) {
	flat = g.n * (g.n - 1)
	for _, s := range g.sizes {
		hierarchical += s * (s - 1)
	}
	hierarchical += 2*g.Edges() + g.n
	return flat, hierarchical
}

// Path returns a shortest sequence of cluster heads from the cluster headed
// by `from` to the one headed by `to` (inclusive), or an error when either
// cluster is missing or no cluster-level route exists.
func (g *ClusterGraph) Path(from, to int32) ([]int32, error) {
	si, okS := g.index[from]
	ti, okT := g.index[to]
	if !okS || !okT {
		return nil, fmt.Errorf("hier: cluster %d or %d not in graph", from, to)
	}
	if si == ti {
		return []int32{from}, nil
	}
	prev := make([]int, len(g.heads))
	for i := range prev {
		prev[i] = -1
	}
	prev[si] = si
	queue := []int{si}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if prev[v] != -1 {
				continue
			}
			prev[v] = u
			if v == ti {
				var rev []int32
				for x := ti; ; x = prev[x] {
					rev = append(rev, g.heads[x])
					if x == si {
						break
					}
				}
				out := make([]int32, len(rev))
				for i, h := range rev {
					out[len(rev)-1-i] = h
				}
				return out, nil
			}
			queue = append(queue, v)
		}
	}
	return nil, fmt.Errorf("hier: no cluster route %d -> %d", from, to)
}

// PathValid reports whether the cluster route is still usable in this
// snapshot: every cluster (identified by its head) still exists and every
// consecutive pair is still adjacent. A clusterhead change kills the
// route — which is exactly why cluster-route lifetime tracks the paper's
// stability metric.
func (g *ClusterGraph) PathValid(path []int32) bool {
	if len(path) == 0 {
		return false
	}
	for _, h := range path {
		if _, ok := g.index[h]; !ok {
			return false
		}
	}
	for i := 1; i < len(path); i++ {
		if !g.Adjacent(path[i-1], path[i]) {
			return false
		}
	}
	return true
}

// EdgeChurn counts cluster-graph edge differences between two snapshots:
// edges present in exactly one of them (clusters identified by head id).
// A structural-stability measure complementing clusterhead changes.
func EdgeChurn(a, b *ClusterGraph) int {
	type edge struct{ u, v int32 }
	collect := func(g *ClusterGraph) map[edge]bool {
		out := make(map[edge]bool)
		for i, neighbors := range g.adj {
			for _, j := range neighbors {
				if i < j {
					out[edge{u: g.heads[i], v: g.heads[j]}] = true
				}
			}
		}
		return out
	}
	ea, eb := collect(a), collect(b)
	churn := 0
	for e := range ea {
		if !eb[e] {
			churn++
		}
	}
	for e := range eb {
		if !ea[e] {
			churn++
		}
	}
	return churn
}
