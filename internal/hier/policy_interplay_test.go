package hier

import (
	"testing"

	"mobic/internal/cluster"
	"mobic/internal/scenario"
	"mobic/internal/simnet"
)

// policyAffiliations runs the scenario to completion and derives the
// hierarchy inputs from the final clustering state: each live node's
// affiliation is its clusterhead, undecided and dead nodes are NoCluster
// singletons.
func policyAffiliations(t *testing.T, p scenario.Params, alg cluster.Algorithm) (*simnet.Network, []int32) {
	t.Helper()
	cfg, err := p.Config(alg)
	if err != nil {
		t.Fatal(err)
	}
	net, err := simnet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	aff := make([]int32, cfg.N)
	for i, st := range net.Snapshot() {
		aff[i] = st.Head
		if st.Down || st.Head < 0 {
			aff[i] = NoCluster
		}
	}
	return net, aff
}

// checkOverlay builds the cluster graph over the final topology and asserts
// the structural invariants every clustering must hand the hierarchy layer:
// the build succeeds, clusters exist, and the two-level routing state is
// smaller than flat routing.
func checkOverlay(t *testing.T, net *simnet.Network, aff []int32) *ClusterGraph {
	t.Helper()
	cg, err := Build(net.Topology(), aff)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Clusters() == 0 {
		t.Fatal("no clusters in final state")
	}
	flat, hier := cg.RoutingState()
	if hier >= flat {
		t.Errorf("hierarchy routing state %d not below flat %d", hier, flat)
	}
	return cg
}

// TestOverlayWithAdaptiveBI: the hierarchy layer consumes whatever
// clustering the adaptive broadcast period produces — per-node beacon
// intervals change election timing, not the structural contract.
func TestOverlayWithAdaptiveBI(t *testing.T) {
	p := scenario.Base(100)
	p.Duration = 300
	p.Seed = 3
	p.BIMin, p.BIMax = 0.5, 4
	net, aff := policyAffiliations(t, p, cluster.MOBIC)
	checkOverlay(t, net, aff)
}

// TestOverlayWithAdaptiveLowestID: tenure expiry keeps reassigning the head
// role, so the overlay is built from whatever the rotation left standing;
// its heads must still be exactly the nodes reporting RoleHead.
func TestOverlayWithAdaptiveLowestID(t *testing.T) {
	p := scenario.Base(100)
	p.Duration = 300
	p.Seed = 3
	net, aff := policyAffiliations(t, p, cluster.AdaptiveLowestID)
	checkOverlay(t, net, aff)

	// A snapshot can catch rotation mid-flight: an expired head resigns and
	// may even rejoin elsewhere as a member before its former members hear
	// the news, so a few affiliations legally point at a non-head for up to
	// a beacon-plus-timeout window. What distinguishes bounded staleness
	// from a broken protocol is the proportion: the overwhelming majority
	// of members must be anchored on a node that is actually serving as
	// head right now.
	role := make(map[int32]cluster.Role)
	for _, st := range net.Snapshot() {
		role[st.ID] = st.Role
	}
	members, stale := 0, 0
	for id, head := range aff {
		if head == NoCluster || int32(id) == head {
			continue
		}
		members++
		if role[head] != cluster.RoleHead {
			stale++
		}
	}
	if members == 0 {
		t.Fatal("no affiliated members in final state")
	}
	t.Logf("%d members, %d anchored on a mid-rotation ex-head", members, stale)
	if float64(stale) > 0.2*float64(members) {
		t.Errorf("%d of %d members anchored on non-heads; rotation staleness should be a bounded transient",
			stale, members)
	}
}

// TestOverlayWithEnergyDeaths: a deliberately tiny battery budget kills
// nodes before the horizon. The overlay must still build — dead nodes fall
// out as NoCluster singletons rather than corrupting live clusters, and no
// live member may remain affiliated to a dead head.
func TestOverlayWithEnergyDeaths(t *testing.T) {
	p := scenario.Base(100)
	p.Duration = 300
	p.Seed = 3
	p.EnergyJ = 0.5
	net, aff := policyAffiliations(t, p, cluster.MOBIC)
	if net.EnergyDepleted() == 0 {
		t.Fatal("expected battery deaths with a 0.5 J budget over 300 s")
	}
	checkOverlay(t, net, aff)

	down := make(map[int32]bool)
	for _, st := range net.Snapshot() {
		if st.Down {
			down[st.ID] = true
		}
	}
	for id, head := range aff {
		if head == NoCluster || int32(id) == head {
			continue
		}
		if down[head] {
			t.Errorf("live node %d still affiliated to dead head %d", id, head)
		}
	}
}
