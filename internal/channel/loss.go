// Package channel models packet-level delivery impairments on top of the
// propagation model. The paper's metric "only considers transmissions that
// are successfully received by the MAC layer"; these loss models let the
// test suite and the A8 ablation inject MAC-level failures and verify the
// metric and the clustering remain robust.
package channel

import (
	"fmt"
	"math/rand/v2"
)

// LossModel decides whether a packet from tx to rx at simulated time now is
// lost even though the signal was strong enough.
type LossModel interface {
	// Name identifies the model in configs and traces.
	Name() string
	// Drops reports whether the packet is lost.
	Drops(tx, rx int32, now float64) bool
}

// NoLoss delivers everything (the paper's setting).
type NoLoss struct{}

// Name implements LossModel.
func (NoLoss) Name() string { return "none" }

// Drops implements LossModel.
func (NoLoss) Drops(int32, int32, float64) bool { return false }

// UniformLoss drops each packet independently with probability P.
type UniformLoss struct {
	// P is the drop probability in [0, 1].
	P float64
	// Rng drives the Bernoulli draws.
	Rng *rand.Rand
}

// NewUniformLoss validates p and returns a uniform loss model.
func NewUniformLoss(p float64, rng *rand.Rand) (*UniformLoss, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("channel: loss probability %g outside [0,1]", p)
	}
	if rng == nil {
		return nil, fmt.Errorf("channel: uniform loss needs an rng")
	}
	return &UniformLoss{P: p, Rng: rng}, nil
}

// Name implements LossModel.
func (u *UniformLoss) Name() string { return "uniform" }

// Drops implements LossModel.
func (u *UniformLoss) Drops(int32, int32, float64) bool {
	return u.Rng.Float64() < u.P
}

// linkKey identifies a directed link for per-link state.
type linkKey struct {
	tx, rx int32
}

// GilbertElliott is a two-state (good/bad) burst loss model per directed
// link: in the good state packets survive, in the bad state they drop with
// high probability; state flips with the configured transition
// probabilities at each packet.
type GilbertElliott struct {
	// PGoodToBad is the per-packet probability of entering a burst.
	PGoodToBad float64
	// PBadToGood is the per-packet probability of a burst ending.
	PBadToGood float64
	// PDropBad is the drop probability inside a burst.
	PDropBad float64
	// Rng drives all draws.
	Rng *rand.Rand

	state map[linkKey]bool // true = bad
}

// NewGilbertElliott validates parameters and returns a burst-loss model.
func NewGilbertElliott(pGB, pBG, pDropBad float64, rng *rand.Rand) (*GilbertElliott, error) {
	for _, p := range []float64{pGB, pBG, pDropBad} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("channel: probability %g outside [0,1]", p)
		}
	}
	if rng == nil {
		return nil, fmt.Errorf("channel: burst loss needs an rng")
	}
	return &GilbertElliott{
		PGoodToBad: pGB,
		PBadToGood: pBG,
		PDropBad:   pDropBad,
		Rng:        rng,
		state:      make(map[linkKey]bool),
	}, nil
}

// Name implements LossModel.
func (g *GilbertElliott) Name() string { return "gilbert-elliott" }

// Drops implements LossModel.
func (g *GilbertElliott) Drops(tx, rx int32, _ float64) bool {
	k := linkKey{tx: tx, rx: rx}
	bad := g.state[k]
	if bad {
		if g.Rng.Float64() < g.PBadToGood {
			bad = false
		}
	} else {
		if g.Rng.Float64() < g.PGoodToBad {
			bad = true
		}
	}
	g.state[k] = bad
	if !bad {
		return false
	}
	return g.Rng.Float64() < g.PDropBad
}
