package channel

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNoLoss(t *testing.T) {
	var m NoLoss
	if m.Name() != "none" {
		t.Errorf("Name = %q", m.Name())
	}
	for i := 0; i < 100; i++ {
		if m.Drops(1, 2, float64(i)) {
			t.Fatal("NoLoss dropped a packet")
		}
	}
}

func TestUniformLossValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := NewUniformLoss(-0.1, rng); err == nil {
		t.Error("negative p should error")
	}
	if _, err := NewUniformLoss(1.1, rng); err == nil {
		t.Error("p > 1 should error")
	}
	if _, err := NewUniformLoss(0.5, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestUniformLossRate(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	m, err := NewUniformLoss(0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Drops(0, 1, float64(i)) {
			drops++
		}
	}
	rate := float64(drops) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("empirical drop rate = %v, want ~0.3", rate)
	}
}

func TestUniformLossExtremes(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	never, err := NewUniformLoss(0, rng)
	if err != nil {
		t.Fatal(err)
	}
	always, err := NewUniformLoss(1, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if never.Drops(0, 1, 0) {
			t.Fatal("p=0 dropped")
		}
		if !always.Drops(0, 1, 0) {
			t.Fatal("p=1 delivered")
		}
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	if _, err := NewGilbertElliott(-1, 0.5, 0.9, rng); err == nil {
		t.Error("bad pGB should error")
	}
	if _, err := NewGilbertElliott(0.1, 2, 0.9, rng); err == nil {
		t.Error("bad pBG should error")
	}
	if _, err := NewGilbertElliott(0.1, 0.5, -0.9, rng); err == nil {
		t.Error("bad pDrop should error")
	}
	if _, err := NewGilbertElliott(0.1, 0.5, 0.9, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	m, err := NewGilbertElliott(0.05, 0.2, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With pDropBad = 1, drops happen exactly in bad state; bursts should
	// produce runs of consecutive drops longer than independent loss would.
	const n = 50000
	drops := 0
	longestRun, run := 0, 0
	for i := 0; i < n; i++ {
		if m.Drops(0, 1, float64(i)) {
			drops++
			run++
			if run > longestRun {
				longestRun = run
			}
		} else {
			run = 0
		}
	}
	// Stationary bad probability = pGB/(pGB+pBG) = 0.05/0.25 = 0.2.
	rate := float64(drops) / n
	if math.Abs(rate-0.2) > 0.03 {
		t.Errorf("drop rate = %v, want ~0.2", rate)
	}
	// Mean burst length = 1/pBG = 5; runs of >= 10 must occur.
	if longestRun < 10 {
		t.Errorf("longest burst = %d, expected >= 10 for mean-5 bursts", longestRun)
	}
}

func TestGilbertElliottPerLinkState(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	m, err := NewGilbertElliott(0.5, 0.01, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Drive link (0,1) into the bad state.
	for i := 0; i < 50; i++ {
		m.Drops(0, 1, float64(i))
	}
	if !m.state[linkKey{tx: 0, rx: 1}] {
		t.Skip("link did not enter bad state (improbable)")
	}
	// A different link starts fresh in the good state.
	if m.state[linkKey{tx: 2, rx: 3}] {
		t.Error("unused link should have no bad state")
	}
}
