// Package fair is mobicd's multi-tenant admission layer: per-tenant
// weighted fair queueing with priorities, per-tenant quotas (max queued,
// max running) and token-bucket rate limits.
//
// A Registry maps request credentials (an Authorization API key or an
// explicit X-Mobic-Tenant header) to a named Tenant policy; a Queue holds
// one sub-queue per tenant and dequeues by virtual-time weighted fair
// queueing, so a tenant flooding the daemon with sweeps cannot starve the
// others — each backlogged tenant drains in proportion to its weight.
// Shedding is per-tenant: a tenant over its quota or rate gets a typed
// Shed (mapped to a 429 with a per-tenant Retry-After upstairs) while
// every other tenant keeps being admitted.
package fair

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
)

// DefaultName is the exposition name of the catch-all tenant that
// unauthenticated (or unrecognized) traffic lands on. Internally the
// default tenant is keyed by the empty string so single-tenant deployments
// keep their exact pre-multi-tenancy wire format.
const DefaultName = "default"

// MaxDynamicTenants bounds how many previously unknown X-Mobic-Tenant
// names a dynamic registry will promote to their own fair-share queues;
// past it, new names fold into the default tenant so an adversary cannot
// grow per-tenant state without bound.
const MaxDynamicTenants = 512

// Tenant is one tenant's resolved admission policy.
type Tenant struct {
	// Name identifies the tenant ("" is the default tenant, exposed as
	// DefaultName in metrics).
	Name string
	// Keys are the API keys (Authorization header values, with or without
	// a "Bearer " prefix) that resolve to this tenant.
	Keys []string
	// Weight is the tenant's fair share (> 0). A backlogged tenant drains
	// jobs in proportion to Weight relative to the other backlogged
	// tenants.
	Weight float64
	// Priority orders tenants strictly: any eligible job of a
	// higher-priority tenant dequeues before any lower-priority one; WFQ
	// applies within a priority class.
	Priority int
	// MaxQueued caps the tenant's queued (not yet running) jobs. 0 (the
	// zero value) means no per-tenant bound (the global queue capacity
	// still applies); negative admits nothing — a fully shed tenant. In
	// the JSON config an explicit "max_queued": 0 maps to the fully-shed
	// form, since "unset" is expressed by omitting the field.
	MaxQueued int
	// MaxRunning caps the tenant's concurrently executing jobs; <= 0
	// means unlimited. A tenant at its cap stays queued without blocking
	// other tenants' dequeues.
	MaxRunning int
	// Rate is the sustained admission rate in jobs/second (token bucket);
	// <= 0 disables rate limiting.
	Rate float64
	// Burst is the token bucket size; defaulted to max(1, ceil(Rate))
	// when Rate > 0.
	Burst int
}

// normalize applies the documented defaults to a parsed tenant.
func (t Tenant) normalize() Tenant {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.Rate > 0 && t.Burst <= 0 {
		t.Burst = int(math.Max(1, math.Ceil(t.Rate)))
	}
	return t
}

// Registry resolves request credentials to tenant policies. All methods
// are safe for concurrent use.
type Registry struct {
	def     Tenant
	byName  map[string]Tenant
	byKey   map[string]string // API key -> tenant name
	dynamic bool

	mu   sync.Mutex
	dyn  map[string]struct{} // promoted dynamic tenant names
	full bool                // dynamic cap reached
}

// NewRegistry builds a registry from a default-tenant policy (nil for
// all-unlimited), the named tenants, and the dynamic flag (whether unknown
// X-Mobic-Tenant names get their own default-policy fair share instead of
// folding into the default tenant).
func NewRegistry(def *Tenant, tenants []Tenant, dynamic bool) (*Registry, error) {
	r := &Registry{
		byName:  make(map[string]Tenant, len(tenants)),
		byKey:   make(map[string]string),
		dynamic: dynamic,
		dyn:     make(map[string]struct{}),
	}
	var d Tenant
	if def != nil {
		d = *def
	}
	d.Name, d.Keys = "", nil
	r.def = d.normalize()
	for _, t := range tenants {
		if err := validName(t.Name); err != nil {
			return nil, err
		}
		if _, dup := r.byName[t.Name]; dup {
			return nil, fmt.Errorf("fair: duplicate tenant %q", t.Name)
		}
		if t.Weight < 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) {
			return nil, fmt.Errorf("fair: tenant %q: weight must be a finite non-negative number", t.Name)
		}
		if t.Rate < 0 || math.IsNaN(t.Rate) || math.IsInf(t.Rate, 0) {
			return nil, fmt.Errorf("fair: tenant %q: rate must be a finite non-negative number", t.Name)
		}
		for _, k := range t.Keys {
			if k == "" {
				return nil, fmt.Errorf("fair: tenant %q: empty API key", t.Name)
			}
			if prev, dup := r.byKey[k]; dup {
				return nil, fmt.Errorf("fair: API key shared by tenants %q and %q", prev, t.Name)
			}
			r.byKey[k] = t.Name
		}
		r.byName[t.Name] = t.normalize()
	}
	return r, nil
}

// validName rejects tenant names that would corrupt metric labels or log
// lines: empty, too long, the reserved default, or containing
// whitespace/control/quote characters.
func validName(name string) error {
	if name == "" {
		return errors.New("fair: tenant name must be non-empty")
	}
	if name == DefaultName {
		return fmt.Errorf("fair: tenant name %q is reserved (configure it via the top-level \"default\" policy)", DefaultName)
	}
	if len(name) > 64 {
		return fmt.Errorf("fair: tenant name %q exceeds 64 bytes", name)
	}
	for _, c := range name {
		if c <= ' ' || c == '"' || c == '\\' || c == 0x7f {
			return fmt.Errorf("fair: tenant name %q contains whitespace, quote or control characters", name)
		}
	}
	return nil
}

// DefaultRegistry returns a registry with only the all-unlimited default
// tenant — the single-tenant mode every pre-existing deployment runs in.
func DefaultRegistry() *Registry {
	r, err := NewRegistry(nil, nil, false)
	if err != nil {
		panic("fair: default registry: " + err.Error())
	}
	return r
}

// Resolve maps request credentials to a canonical tenant name. An explicit
// X-Mobic-Tenant header wins; otherwise the Authorization header (with an
// optional "Bearer " prefix) is looked up as an API key. Unknown
// credentials fold into the default tenant ("") unless the registry is
// dynamic, in which case unknown header names get their own fair share
// (bounded by MaxDynamicTenants; API keys never mint dynamic tenants).
func (r *Registry) Resolve(authorization, tenantHeader string) string {
	if tenantHeader != "" {
		return r.Canonical(tenantHeader)
	}
	if authorization != "" {
		key := strings.TrimPrefix(authorization, "Bearer ")
		if name, ok := r.byKey[key]; ok {
			return name
		}
	}
	return ""
}

// Canonical normalizes a tenant name: known names (and DefaultName/"")
// pass through to their internal form, unknown names fold into the
// default tenant unless dynamic promotion applies.
func (r *Registry) Canonical(name string) string {
	if name == "" || name == DefaultName {
		return ""
	}
	if _, ok := r.byName[name]; ok {
		return name
	}
	if !r.dynamic || validName(name) != nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.dyn[name]; ok {
		return name
	}
	if r.full || len(r.dyn) >= MaxDynamicTenants {
		r.full = true
		return ""
	}
	r.dyn[name] = struct{}{}
	return name
}

// Lookup returns the policy for a canonical tenant name; unknown and ""
// both yield the default policy (dynamic tenants run under it too, each
// with its own sub-queue).
func (r *Registry) Lookup(name string) Tenant {
	if t, ok := r.byName[name]; ok {
		return t
	}
	t := r.def
	t.Name = name
	return t
}

// Names returns the configured tenant names, sorted (the default tenant
// and dynamic tenants are not included).
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Display maps an internal tenant name to its exposition label.
func Display(name string) string {
	if name == "" {
		return DefaultName
	}
	return name
}

// tenantJSON is the config-file form of one tenant. Pointer fields
// distinguish "unset, take the default" from an explicit zero — required
// so a zero-quota tenant ("max_queued": 0) is expressible.
type tenantJSON struct {
	Name       string   `json:"name"`
	Keys       []string `json:"keys,omitempty"`
	Weight     *float64 `json:"weight,omitempty"`
	Priority   int      `json:"priority,omitempty"`
	MaxQueued  *int     `json:"max_queued,omitempty"`
	MaxRunning *int     `json:"max_running,omitempty"`
	Rate       *float64 `json:"rate_per_sec,omitempty"`
	Burst      *int     `json:"burst,omitempty"`
}

func (tj tenantJSON) tenant() Tenant {
	t := Tenant{Name: tj.Name, Keys: tj.Keys, Priority: tj.Priority}
	if tj.Weight != nil {
		t.Weight = *tj.Weight
	}
	if tj.MaxQueued != nil {
		// An explicit 0 (or any non-positive quota) is the fully shed
		// tenant; omitting the field keeps the unlimited zero value.
		if *tj.MaxQueued <= 0 {
			t.MaxQueued = -1
		} else {
			t.MaxQueued = *tj.MaxQueued
		}
	}
	if tj.MaxRunning != nil {
		t.MaxRunning = *tj.MaxRunning
	}
	if tj.Rate != nil {
		t.Rate = *tj.Rate
	}
	if tj.Burst != nil {
		t.Burst = *tj.Burst
	}
	return t
}

// configJSON is the -tenants file format:
//
//	{
//	  "dynamic": false,
//	  "default": {"weight": 1, "max_queued": 64},
//	  "tenants": [
//	    {"name": "gold", "keys": ["k-gold-1"], "weight": 4,
//	     "max_queued": 128, "max_running": 4, "rate_per_sec": 50}
//	  ]
//	}
type configJSON struct {
	Dynamic bool         `json:"dynamic,omitempty"`
	Default *tenantJSON  `json:"default,omitempty"`
	Tenants []tenantJSON `json:"tenants,omitempty"`
}

// ParseConfig builds a Registry from the -tenants JSON config format.
// Unknown fields are errors so a typo'd quota cannot silently become
// "unlimited".
func ParseConfig(data []byte) (*Registry, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg configJSON
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("fair: parsing tenant config: %w", err)
	}
	// A second document in the stream is garbage, not config.
	if dec.More() {
		return nil, errors.New("fair: parsing tenant config: trailing data after config object")
	}
	var def *Tenant
	if cfg.Default != nil {
		if cfg.Default.Name != "" || len(cfg.Default.Keys) != 0 {
			return nil, errors.New("fair: the default tenant takes no name or keys")
		}
		d := cfg.Default.tenant()
		if d.Weight < 0 || math.IsNaN(d.Weight) || math.IsInf(d.Weight, 0) {
			return nil, errors.New("fair: default tenant: weight must be a finite non-negative number")
		}
		if d.Rate < 0 || math.IsNaN(d.Rate) || math.IsInf(d.Rate, 0) {
			return nil, errors.New("fair: default tenant: rate must be a finite non-negative number")
		}
		def = &d
	}
	tenants := make([]Tenant, 0, len(cfg.Tenants))
	for _, tj := range cfg.Tenants {
		tenants = append(tenants, tj.tenant())
	}
	return NewRegistry(def, tenants, cfg.Dynamic)
}

// LoadConfig reads and parses a -tenants config file.
func LoadConfig(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fair: %w", err)
	}
	reg, err := ParseConfig(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return reg, nil
}
