package fair

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for rate-limit tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestQueue(t *testing.T, tenants []Tenant, capacity int, clock func() time.Time) *Queue[int] {
	t.Helper()
	reg, err := NewRegistry(nil, tenants, false)
	if err != nil {
		t.Fatal(err)
	}
	return NewQueue[int](reg, capacity, clock)
}

// fill admits and enqueues n items for tenant, failing the test on a shed.
func fill(t *testing.T, q *Queue[int], tenant string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if sh := q.Admit(tenant, 1); sh != nil {
			t.Fatalf("admit %s[%d]: %v", tenant, i, sh)
		}
		q.Enqueue(tenant, i)
	}
}

func TestWFQWeightedShare(t *testing.T) {
	q := newTestQueue(t, []Tenant{
		{Name: "heavy", Weight: 3},
		{Name: "light", Weight: 1},
	}, 0, nil)
	fill(t, q, "heavy", 40)
	fill(t, q, "light", 40)

	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		_, tenant, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		counts[tenant]++
		q.Release(tenant)
	}
	// With both tenants backlogged, 40 pops split 3:1 up to tag
	// discretization: 30 heavy, 10 light, ±1.
	if counts["heavy"] < 29 || counts["heavy"] > 31 {
		t.Fatalf("heavy got %d of 40 pops, want ~30 (counts %v)", counts["heavy"], counts)
	}
}

func TestWFQFIFOWithinTenant(t *testing.T) {
	q := newTestQueue(t, nil, 0, nil)
	for i := 0; i < 10; i++ {
		q.Enqueue("", i)
	}
	for i := 0; i < 10; i++ {
		v, _, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d (ok=%v)", i, v, ok)
		}
		q.Release("")
	}
}

func TestPriorityStrict(t *testing.T) {
	q := newTestQueue(t, []Tenant{
		{Name: "vip", Weight: 1, Priority: 1},
		{Name: "batch", Weight: 100},
	}, 0, nil)
	fill(t, q, "batch", 5)
	fill(t, q, "vip", 5)
	// Every vip item dequeues before any batch item regardless of the
	// weight gap: priority classes are strict.
	for i := 0; i < 5; i++ {
		if _, tenant, _ := q.Pop(); tenant != "vip" {
			t.Fatalf("pop %d from %q, want vip", i, tenant)
		}
		q.Release("vip")
	}
	if _, tenant, _ := q.Pop(); tenant != "batch" {
		t.Fatalf("after vip drained, pop from %q", tenant)
	}
}

func TestQuotaShed(t *testing.T) {
	q := newTestQueue(t, []Tenant{{Name: "small", Weight: 1, MaxQueued: 2}}, 0, nil)
	fill(t, q, "small", 2)
	sh := q.Admit("small", 1)
	if sh == nil || sh.Reason != ReasonQuota {
		t.Fatalf("over-quota admit: %+v", sh)
	}
	// Other tenants are unaffected.
	if sh := q.Admit("", 1); sh != nil {
		t.Fatalf("default tenant shed alongside: %v", sh)
	}
	// Draining small frees its quota again.
	q.Pop()
	if sh := q.Admit("small", 1); sh != nil {
		t.Fatalf("post-drain admit: %v", sh)
	}
}

func TestZeroQuotaAdmitsNothing(t *testing.T) {
	q := newTestQueue(t, []Tenant{{Name: "banned", Weight: 1, MaxQueued: -1}}, 0, nil)
	if sh := q.Admit("banned", 1); sh == nil || sh.Reason != ReasonQuota {
		t.Fatalf("zero-quota admit: %+v", sh)
	}
}

func TestBatchAdmitAllOrNone(t *testing.T) {
	q := newTestQueue(t, []Tenant{{Name: "a", Weight: 1, MaxQueued: 3}}, 0, nil)
	if sh := q.Admit("a", 4); sh == nil || sh.Reason != ReasonQuota {
		t.Fatalf("batch over quota: %+v", sh)
	}
	if sh := q.Admit("a", 3); sh != nil {
		t.Fatalf("batch at quota: %v", sh)
	}
}

func TestGlobalCapacity(t *testing.T) {
	q := newTestQueue(t, nil, 2, nil)
	fill(t, q, "", 2)
	sh := q.Admit("", 1)
	if sh == nil || sh.Reason != ReasonCapacity {
		t.Fatalf("over-capacity admit: %+v", sh)
	}
}

func TestRateLimit(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	q := newTestQueue(t, []Tenant{{Name: "slow", Weight: 1, Rate: 1, Burst: 1}}, 0, clock.now)
	if sh := q.Admit("slow", 1); sh != nil {
		t.Fatalf("first admit (full bucket): %v", sh)
	}
	q.Enqueue("slow", 0)
	sh := q.Admit("slow", 1)
	if sh == nil || sh.Reason != ReasonRate {
		t.Fatalf("empty-bucket admit: %+v", sh)
	}
	if sh.RetryAfter <= 0 || sh.RetryAfter > 1 {
		t.Fatalf("RetryAfter = %g, want (0, 1]", sh.RetryAfter)
	}
	clock.advance(time.Second)
	if sh := q.Admit("slow", 1); sh != nil {
		t.Fatalf("post-refill admit: %v", sh)
	}
}

func TestMaxRunningHoldsTenantBack(t *testing.T) {
	q := newTestQueue(t, []Tenant{{Name: "capped", Weight: 100, MaxRunning: 1}}, 0, nil)
	fill(t, q, "capped", 2)
	fill(t, q, "", 1)
	if _, tenant, _ := q.Pop(); tenant != "capped" {
		t.Fatalf("first pop from %q", tenant)
	}
	// capped is at MaxRunning; its second item must not dequeue, the
	// default tenant's must.
	if _, tenant, _ := q.Pop(); tenant != "" {
		t.Fatalf("second pop from %q, want default", tenant)
	}
	q.Release("capped")
	if _, tenant, _ := q.Pop(); tenant != "capped" {
		t.Fatalf("post-release pop from %q", tenant)
	}
}

func TestCloseDrains(t *testing.T) {
	q := newTestQueue(t, nil, 0, nil)
	q.Enqueue("", 1)
	q.Enqueue("", 2)
	q.Close()
	for i := 0; i < 2; i++ {
		if _, _, ok := q.Pop(); !ok {
			t.Fatalf("pop %d after close: not ok", i)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop on closed empty queue returned ok")
	}
}

func TestLateTenantNotStarved(t *testing.T) {
	// A tenant arriving after the virtual clock advanced far must not be
	// able to monopolize (its start tag is the current virtual time, not
	// zero) — and conversely must not be starved.
	q := newTestQueue(t, []Tenant{
		{Name: "early", Weight: 1},
		{Name: "late", Weight: 1},
	}, 0, nil)
	fill(t, q, "early", 50)
	for i := 0; i < 25; i++ {
		q.Pop()
		q.Release("early")
	}
	fill(t, q, "late", 25)
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		_, tenant, _ := q.Pop()
		counts[tenant]++
		q.Release(tenant)
	}
	if counts["late"] < 8 || counts["late"] > 12 {
		t.Fatalf("late tenant got %d of 20 pops, want ~10 (%v)", counts["late"], counts)
	}
}

func TestDepthAndRunningGauges(t *testing.T) {
	q := newTestQueue(t, nil, 0, nil)
	fill(t, q, "", 3)
	if q.Len() != 3 || q.Depth("") != 3 {
		t.Fatalf("Len=%d Depth=%d", q.Len(), q.Depth(""))
	}
	q.Pop()
	if q.Len() != 2 || q.Running("") != 1 {
		t.Fatalf("after pop: Len=%d Running=%d", q.Len(), q.Running(""))
	}
	q.Release("")
	if q.Running("") != 0 {
		t.Fatalf("after release: Running=%d", q.Running(""))
	}
}

func TestShedError(t *testing.T) {
	sh := &Shed{Tenant: "", Reason: ReasonQuota}
	if msg := sh.Error(); !strings.Contains(msg, "default") || !strings.Contains(msg, ReasonQuota) {
		t.Fatalf("shed message %q should name the display tenant and reason", msg)
	}
}

func TestSubQueuePrefixReclaim(t *testing.T) {
	// Drive one tenant's sub-queue through enough pop/push cycles to hit
	// the popped-prefix reclaim, and check FIFO order survives it.
	q := newTestQueue(t, nil, 0, nil)
	next := 0
	for i := 0; i < 80; i++ {
		q.Enqueue("", i)
	}
	for i := 0; i < 70; i++ {
		v, _, _ := q.Pop()
		if v != next {
			t.Fatalf("pop %d = %d", next, v)
		}
		next++
		q.Release("")
	}
	// head is now 70 with 80 allocated: the next push compacts the slice.
	for i := 80; i < 90; i++ {
		q.Enqueue("", i)
	}
	for q.Len() > 0 {
		v, _, _ := q.Pop()
		if v != next {
			t.Fatalf("post-reclaim pop %d = %d", next, v)
		}
		next++
		q.Release("")
	}
	if next != 90 {
		t.Fatalf("drained %d items, want 90", next)
	}
}
