package fair

import (
	"fmt"
	"sync"
	"time"
)

// Shed reasons, surfaced on the typed admission error.
const (
	// ReasonQuota means the tenant's MaxQueued cap is reached (or zero).
	ReasonQuota = "queued-quota"
	// ReasonRate means the tenant's token bucket cannot cover the
	// submission right now.
	ReasonRate = "rate-limit"
	// ReasonCapacity means the global queue bound is reached.
	ReasonCapacity = "queue-full"
)

// Shed reports one refused admission: which tenant, why, and — for rate
// sheds — how long until the bucket can cover the request. The HTTP layer
// maps it to a per-tenant 429 + Retry-After.
type Shed struct {
	Tenant     string
	Reason     string
	RetryAfter float64 // seconds until a rate shed could succeed; 0 otherwise
}

// Error implements error.
func (s *Shed) Error() string {
	return fmt.Sprintf("fair: tenant %q shed: %s", Display(s.Tenant), s.Reason)
}

// item is one queued entry with its WFQ finish tag.
type item[T any] struct {
	v      T
	finish float64
}

// tenantState is one tenant's sub-queue plus its WFQ, quota and
// token-bucket accounting. All fields are guarded by the Queue mutex.
type tenantState[T any] struct {
	cfg        Tenant
	items      []item[T]
	head       int // index of the next item to pop
	lastFinish float64
	running    int
	tokens     float64
	lastRefill time.Time
}

func (ts *tenantState[T]) depth() int { return len(ts.items) - ts.head }

func (ts *tenantState[T]) push(it item[T]) {
	// Reclaim the popped prefix once it dominates the slice, so a
	// long-lived tenant queue doesn't grow without bound.
	if ts.head > 64 && ts.head*2 > len(ts.items) {
		n := copy(ts.items, ts.items[ts.head:])
		for i := n; i < len(ts.items); i++ {
			ts.items[i] = item[T]{}
		}
		ts.items = ts.items[:n]
		ts.head = 0
	}
	ts.items = append(ts.items, it)
}

func (ts *tenantState[T]) pop() item[T] {
	it := ts.items[ts.head]
	ts.items[ts.head] = item[T]{}
	ts.head++
	return it
}

// refill tops the token bucket up for the wall-clock elapsed since the
// last refill, capped at Burst.
func (ts *tenantState[T]) refill(now time.Time) {
	if ts.cfg.Rate <= 0 {
		return
	}
	if ts.lastRefill.IsZero() {
		// First touch: the bucket boots full, so a fresh daemon does not
		// shed the first burst after a restart.
		ts.tokens = float64(ts.cfg.Burst)
		ts.lastRefill = now
		return
	}
	if dt := now.Sub(ts.lastRefill).Seconds(); dt > 0 {
		ts.tokens += dt * ts.cfg.Rate
		if limit := float64(ts.cfg.Burst); ts.tokens > limit {
			ts.tokens = limit
		}
	}
	ts.lastRefill = now
}

// Queue is a multi-tenant virtual-time weighted-fair queue: one FIFO
// sub-queue per tenant, dequeued by priority class first and lowest WFQ
// finish tag within a class. Admission (Admit) and entry (Enqueue) are
// split so the caller can make a record durable between the decision and
// the enqueue; the pair must be serialized per queue (the service's submit
// semaphore provides this).
//
// All methods are safe for concurrent use; Pop blocks until an item is
// eligible or the queue is closed and drained.
type Queue[T any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	reg     *Registry
	cap     int // global queued bound; <= 0 unlimited
	now     func() time.Time
	closed  bool
	queued  int
	virtual float64 // global WFQ virtual time
	tenants map[string]*tenantState[T]
}

// NewQueue builds a queue over the registry's tenant policies with the
// given global capacity (<= 0 for unbounded) and clock (nil for
// time.Now).
func NewQueue[T any](reg *Registry, capacity int, now func() time.Time) *Queue[T] {
	if reg == nil {
		reg = DefaultRegistry()
	}
	if now == nil {
		now = time.Now
	}
	q := &Queue[T]{reg: reg, cap: capacity, now: now, tenants: make(map[string]*tenantState[T])}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// state returns (creating on first touch) the sub-queue for a canonical
// tenant name. Callers must hold mu.
func (q *Queue[T]) state(tenant string) *tenantState[T] {
	ts, ok := q.tenants[tenant]
	if !ok {
		ts = &tenantState[T]{cfg: q.reg.Lookup(tenant)}
		q.tenants[tenant] = ts
	}
	return ts
}

// Admit decides whether tenant may enqueue n more jobs right now,
// consuming n rate tokens on success. A nil return is an admission the
// caller completes with n Enqueue calls; the Admit/Enqueue pair must be
// externally serialized against other admitters (concurrent Pops only
// free space, never consume it, so they cannot invalidate an admission).
func (q *Queue[T]) Admit(tenant string, n int) *Shed {
	q.mu.Lock()
	defer q.mu.Unlock()
	ts := q.state(tenant)
	switch {
	case ts.cfg.MaxQueued < 0: // fully shed tenant
		return &Shed{Tenant: tenant, Reason: ReasonQuota}
	case ts.cfg.MaxQueued > 0 && ts.depth()+n > ts.cfg.MaxQueued:
		return &Shed{Tenant: tenant, Reason: ReasonQuota}
	}
	if q.cap > 0 && q.queued+n > q.cap {
		return &Shed{Tenant: tenant, Reason: ReasonCapacity}
	}
	if ts.cfg.Rate > 0 {
		ts.refill(q.now())
		if ts.tokens < float64(n) {
			return &Shed{
				Tenant:     tenant,
				Reason:     ReasonRate,
				RetryAfter: (float64(n) - ts.tokens) / ts.cfg.Rate,
			}
		}
		ts.tokens -= float64(n)
	}
	return nil
}

// Enqueue appends v to tenant's sub-queue, stamping its WFQ finish tag.
// It performs no admission checks — precede it with Admit (submissions)
// or use Requeue (retries and crash recovery, which bypass admission).
func (q *Queue[T]) Enqueue(tenant string, v T) {
	q.Requeue(tenant, v)
}

// Requeue appends v to tenant's sub-queue without consuming quota or rate
// tokens: the re-admission path for retried attempts and journal-recovered
// jobs, which were already admitted once. It never fails; the sub-queue
// may transiently exceed MaxQueued.
func (q *Queue[T]) Requeue(tenant string, v T) {
	q.mu.Lock()
	defer q.mu.Unlock()
	ts := q.state(tenant)
	start := q.virtual
	if ts.lastFinish > start {
		start = ts.lastFinish
	}
	fin := start + 1/ts.cfg.Weight
	ts.lastFinish = fin
	ts.push(item[T]{v: v, finish: fin})
	q.queued++
	q.cond.Broadcast()
}

// pick returns the tenant whose head item dequeues next, or nil when no
// tenant is eligible (empty, or every backlogged tenant is at its
// MaxRunning cap). Callers must hold mu.
func (q *Queue[T]) pick() (best *tenantState[T], bestName string) {
	for name, ts := range q.tenants {
		if ts.depth() == 0 {
			continue
		}
		if ts.cfg.MaxRunning > 0 && ts.running >= ts.cfg.MaxRunning {
			continue
		}
		if best == nil {
			best, bestName = ts, name
			continue
		}
		switch {
		case ts.cfg.Priority != best.cfg.Priority:
			if ts.cfg.Priority > best.cfg.Priority {
				best, bestName = ts, name
			}
		case ts.items[ts.head].finish != best.items[best.head].finish:
			if ts.items[ts.head].finish < best.items[best.head].finish {
				best, bestName = ts, name
			}
		case name < bestName: // deterministic tie-break
			best, bestName = ts, name
		}
	}
	return best, bestName
}

// Pop blocks until an item is eligible and returns it with its tenant,
// charging the tenant one running slot (release with Release). After
// Close, remaining items drain; ok = false means closed and empty.
func (q *Queue[T]) Pop() (v T, tenant string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if ts, name := q.pick(); ts != nil {
			it := ts.pop()
			q.queued--
			ts.running++
			if it.finish > q.virtual {
				q.virtual = it.finish
			}
			return it.v, name, true
		}
		if q.closed && q.queued == 0 {
			return v, "", false
		}
		q.cond.Wait()
	}
}

// Release returns tenant's running slot taken by Pop, unblocking waiters
// held back by its MaxRunning cap.
func (q *Queue[T]) Release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ts, ok := q.tenants[tenant]; ok && ts.running > 0 {
		ts.running--
	}
	q.cond.Broadcast()
}

// Close stops admissions at the caller's layer (the queue itself keeps
// accepting Requeue until workers drain) and lets Pop return ok = false
// once empty.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len returns the total queued (not running) items across tenants.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// Depth returns one tenant's queued item count.
func (q *Queue[T]) Depth(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ts, ok := q.tenants[tenant]; ok {
		return ts.depth()
	}
	return 0
}

// Running returns one tenant's Pop'd-but-not-Released count.
func (q *Queue[T]) Running(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ts, ok := q.tenants[tenant]; ok {
		return ts.running
	}
	return 0
}
