package fair

import (
	"strings"
	"testing"
)

// FuzzTenantConfig throws arbitrary bytes at the -tenants config parser:
// it must never panic, and any registry it does accept must uphold the
// package invariants (normalized weights, resolvable keys, stable
// canonicalization).
func FuzzTenantConfig(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"dynamic": true}`))
	f.Add([]byte(`{"default": {"weight": 2, "max_queued": 0}}`))
	f.Add([]byte(`{"tenants": [{"name": "gold", "keys": ["k1", "k2"], "weight": 4, "priority": 1, "max_queued": 16, "max_running": 2, "rate_per_sec": 0.5, "burst": 3}]}`))
	f.Add([]byte(`{"tenants": [{"name": "a"}, {"name": "b", "weight": 1e308}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"tenants": [{"name": "default"}]}`))
	f.Add([]byte(`{"tenants":[{"name":"x","max_queued":-5}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		reg, err := ParseConfig(data)
		if err != nil {
			return
		}
		for _, name := range append(reg.Names(), "") {
			p := reg.Lookup(name)
			if p.Weight <= 0 {
				t.Fatalf("tenant %q: accepted weight %g", name, p.Weight)
			}
			if p.Rate > 0 && p.Burst < 1 {
				t.Fatalf("tenant %q: rate %g with burst %d", name, p.Rate, p.Burst)
			}
			if name != "" {
				if strings.ContainsAny(name, " \t\n\r\"\\") || len(name) > 64 {
					t.Fatalf("accepted hostile tenant name %q", name)
				}
				if reg.Canonical(name) != name {
					t.Fatalf("known tenant %q not canonical", name)
				}
			}
			for _, k := range p.Keys {
				if got := reg.Resolve(k, ""); got != name {
					t.Fatalf("key %q of %q resolves to %q", k, name, got)
				}
			}
		}
		// Canonicalization is idempotent even for unknown names.
		c := reg.Canonical("zz-unknown")
		if reg.Canonical(c) != c {
			t.Fatalf("Canonical not idempotent: %q -> %q", c, reg.Canonical(c))
		}
	})
}
