package fair

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustRegistry(t *testing.T, def *Tenant, tenants []Tenant, dynamic bool) *Registry {
	t.Helper()
	r, err := NewRegistry(def, tenants, dynamic)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestResolve(t *testing.T) {
	r := mustRegistry(t, nil, []Tenant{
		{Name: "gold", Keys: []string{"k-gold"}, Weight: 4},
		{Name: "bronze", Keys: []string{"k-bronze"}, Weight: 1},
	}, false)
	cases := []struct {
		auth, header, want string
	}{
		{"k-gold", "", "gold"},
		{"Bearer k-gold", "", "gold"},
		{"k-bronze", "", "bronze"},
		{"", "", ""},
		{"unknown-key", "", ""},        // unknown keys fold to default
		{"k-gold", "bronze", "bronze"}, // explicit header wins over key
		{"", "gold", "gold"},           // header alone
		{"", "no-such-tenant", ""},     // unknown header folds (non-dynamic)
		{"", DefaultName, ""},          // "default" is the default tenant
		{"Bearer unknown", "", ""},
	}
	for _, c := range cases {
		if got := r.Resolve(c.auth, c.header); got != c.want {
			t.Errorf("Resolve(%q, %q) = %q, want %q", c.auth, c.header, got, c.want)
		}
	}
}

func TestRegistryValidation(t *testing.T) {
	bad := []struct {
		name    string
		tenants []Tenant
	}{
		{"duplicate name", []Tenant{{Name: "a"}, {Name: "a"}}},
		{"reserved default", []Tenant{{Name: DefaultName}}},
		{"empty name", []Tenant{{Name: ""}}},
		{"whitespace name", []Tenant{{Name: "a b"}}},
		{"quote name", []Tenant{{Name: `a"b`}}},
		{"long name", []Tenant{{Name: strings.Repeat("x", 65)}}},
		{"negative weight", []Tenant{{Name: "a", Weight: -1}}},
		{"negative rate", []Tenant{{Name: "a", Rate: -1}}},
		{"empty key", []Tenant{{Name: "a", Keys: []string{""}}}},
		{"shared key", []Tenant{{Name: "a", Keys: []string{"k"}}, {Name: "b", Keys: []string{"k"}}}},
	}
	for _, c := range bad {
		if _, err := NewRegistry(nil, c.tenants, false); err == nil {
			t.Errorf("%s: NewRegistry accepted", c.name)
		}
	}
}

func TestLookupDefaults(t *testing.T) {
	r := mustRegistry(t, nil, []Tenant{{Name: "gold", Weight: 4, Rate: 2.5}}, false)
	def := r.Lookup("")
	if def.Weight != 1 || def.MaxQueued != 0 || def.MaxRunning != 0 || def.Rate != 0 {
		t.Fatalf("default policy = %+v", def)
	}
	g := r.Lookup("gold")
	if g.Weight != 4 {
		t.Fatalf("gold weight = %g", g.Weight)
	}
	if g.Burst != 3 { // ceil(2.5)
		t.Fatalf("gold burst defaulted to %d, want 3", g.Burst)
	}
	// Unknown names run under the default policy but keep their own name
	// (their own sub-queue when dynamic).
	u := r.Lookup("mystery")
	if u.Name != "mystery" || u.Weight != 1 {
		t.Fatalf("unknown policy = %+v", u)
	}
}

func TestDynamicPromotion(t *testing.T) {
	r := mustRegistry(t, nil, nil, true)
	if got := r.Canonical("team-a"); got != "team-a" {
		t.Fatalf("dynamic Canonical = %q", got)
	}
	// Idempotent.
	if got := r.Canonical("team-a"); got != "team-a" {
		t.Fatalf("second Canonical = %q", got)
	}
	// API keys never mint dynamic tenants.
	if got := r.Resolve("some-unknown-key", ""); got != "" {
		t.Fatalf("unknown key resolved to %q", got)
	}
	// The cap folds the overflow into the default tenant.
	for i := 0; i < MaxDynamicTenants; i++ {
		r.Canonical(fmt.Sprintf("dyn-%d", i))
	}
	if got := r.Canonical("one-too-many"); got != "" {
		t.Fatalf("past-cap Canonical = %q, want default fold", got)
	}
	// Invalid names never promote.
	r2 := mustRegistry(t, nil, nil, true)
	if got := r2.Canonical("has space"); got != "" {
		t.Fatalf("invalid name promoted to %q", got)
	}
}

func TestStaticRegistryNeverPromotes(t *testing.T) {
	r := mustRegistry(t, nil, nil, false)
	if got := r.Canonical("anything"); got != "" {
		t.Fatalf("static Canonical = %q", got)
	}
}

func TestDisplay(t *testing.T) {
	if Display("") != DefaultName || Display("gold") != "gold" {
		t.Fatal("Display mapping broken")
	}
}

func TestParseConfig(t *testing.T) {
	reg, err := ParseConfig([]byte(`{
		"default": {"weight": 1, "max_queued": 8},
		"tenants": [
			{"name": "gold", "keys": ["k-gold"], "weight": 4, "max_running": 2, "rate_per_sec": 10},
			{"name": "shed-me", "weight": 1, "max_queued": 0}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Resolve("k-gold", ""); got != "gold" {
		t.Fatalf("key resolved to %q", got)
	}
	if q := reg.Lookup("shed-me").MaxQueued; q >= 0 {
		t.Fatalf("explicit zero quota parsed as %d, want fully shed (<0)", q)
	}
	if q := reg.Lookup("gold").MaxQueued; q != 0 {
		t.Fatalf("unset quota parsed as %d, want 0 (unlimited)", q)
	}
	if d := reg.Lookup(""); d.MaxQueued != 8 {
		t.Fatalf("default max_queued = %d", d.MaxQueued)
	}

	bad := []string{
		`{"tenants": [{"name": "a", "quota": 3}]}`,    // unknown field
		`{"tenants": []} {"again": true}`,             // trailing data
		`{"default": {"name": "x"}}`,                  // default takes no name
		`{"default": {"keys": ["k"]}}`,                // default takes no keys
		`{"tenants": [{"name": "default"}]}`,          // reserved
		`{"tenants": [{"name": "a"}, {"name": "a"}]}`, // duplicate
		`{"tenants": [{"name": "a", "weight": -3}]}`,  // bad weight
		`not json`,
	}
	for _, b := range bad {
		if _, err := ParseConfig([]byte(b)); err == nil {
			t.Errorf("ParseConfig(%q) accepted", b)
		}
	}
}

func TestDefaultRegistry(t *testing.T) {
	r := DefaultRegistry()
	if got := r.Canonical("anything"); got != "" {
		t.Fatalf("default registry promoted %q", got)
	}
	d := r.Lookup("")
	if d.Weight != 1 || d.MaxQueued != 0 || d.Rate != 0 {
		t.Fatalf("default registry policy = %+v, want all-unlimited", d)
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(path, []byte(`{"tenants":[{"name":"gold","weight":4}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Lookup("gold").Weight != 4 {
		t.Fatal("loaded registry missing gold tenant")
	}

	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tenants":[{"name":"default"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil || !strings.Contains(err.Error(), bad) {
		t.Fatalf("bad config error %v does not name the file", err)
	}
}
