package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{name: "empty", xs: nil, want: 0},
		{name: "single", xs: []float64{4.5}, want: 4.5},
		{name: "pair", xs: []float64{1, 3}, want: 2},
		{name: "negatives", xs: []float64{-2, -4, -6}, want: -4},
		{name: "mixed", xs: []float64{-1, 0, 1}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestVar0(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{name: "empty is zero like paper init", xs: nil, want: 0},
		{name: "single", xs: []float64{3}, want: 9},
		{name: "symmetric about zero", xs: []float64{-2, 2}, want: 4},
		{name: "zeros", xs: []float64{0, 0, 0}, want: 0},
		{name: "paper style dB values", xs: []float64{1.5, -1.5, 3}, want: (2.25 + 2.25 + 9) / 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Var0(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Var0(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

// Var0 differs from Variance: for nonzero-mean data, Var0 = Variance*(n-1)/n + mean^2.
func TestVar0VersusVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	mean := Mean(xs)
	n := float64(len(xs))
	want := Variance(xs)*(n-1)/n + mean*mean
	if got := Var0(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Var0 = %v, want biased-variance+mean^2 = %v", got, want)
	}
}

func TestVariance(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{name: "empty", xs: nil, want: 0},
		{name: "single", xs: []float64{7}, want: 0},
		{name: "constant", xs: []float64{2, 2, 2, 2}, want: 0},
		{name: "known", xs: []float64{2, 4, 4, 4, 5, 5, 7, 9}, want: 32.0 / 7.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Variance(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Variance(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	mn, err := Min(xs)
	if err != nil || mn != -9 {
		t.Errorf("Min = %v, %v; want -9, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 6 {
		t.Errorf("Max = %v, %v; want 6, nil", mx, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 15},
		{p: 100, want: 50},
		{p: 50, want: 35},
		{p: 25, want: 20},
		{p: 75, want: 40},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile of empty should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative percentile should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("percentile > 100 should error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	want := []float64{5, 1, 4, 2, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("input mutated: %v", xs)
		}
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil || got != 5 {
		t.Errorf("Median = %v, %v; want 5, nil", got, err)
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw := MeanCI([]float64{10})
	if mean != 10 || hw != 0 {
		t.Errorf("MeanCI single = (%v, %v), want (10, 0)", mean, hw)
	}
	xs := []float64{10, 12, 8, 11, 9}
	mean, hw = MeanCI(xs)
	if !almostEqual(mean, 10, 1e-12) {
		t.Errorf("mean = %v, want 10", mean)
	}
	want := 1.96 * StdDev(xs) / math.Sqrt(5)
	if !almostEqual(hw, want, 1e-12) {
		t.Errorf("halfWidth = %v, want %v", hw, want)
	}
}

// Property: Var0 is always >= 0 and scales quadratically.
func TestVar0Properties(t *testing.T) {
	nonNegative := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip pathological float inputs
			}
		}
		return Var0(xs) >= 0
	}
	if err := quick.Check(nonNegative, nil); err != nil {
		t.Errorf("Var0 non-negativity: %v", err)
	}

	scalesQuadratically := func(xs []float64, k float64) bool {
		if len(xs) == 0 || math.IsNaN(k) || math.IsInf(k, 0) || math.Abs(k) > 1e6 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = k * x
		}
		a, b := Var0(scaled), k*k*Var0(xs)
		return almostEqual(a, b, 1e-6*(1+math.Abs(b)))
	}
	if err := quick.Check(scalesQuadratically, nil); err != nil {
		t.Errorf("Var0 quadratic scaling: %v", err)
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	bounded := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
				return true
			}
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		m := Mean(xs)
		const eps = 1e-9
		return m >= mn-eps*(1+math.Abs(mn)) && m <= mx+eps*(1+math.Abs(mx))
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("mean boundedness: %v", err)
	}
}
