package stats

import "math"

// Accumulator is a streaming moment estimator (Welford's algorithm). It
// supports mean, variance, variance-about-zero, min and max without storing
// samples, which the metrics recorder uses for long simulations.
//
// The zero value is ready to use.
type Accumulator struct {
	n      int
	mean   float64
	m2     float64 // sum of squared deviations from the running mean
	sumSq  float64 // sum of squares (for Var0)
	minVal float64
	maxVal float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.minVal, a.maxVal = x, x
	} else {
		if x < a.minVal {
			a.minVal = x
		}
		if x > a.maxVal {
			a.maxVal = x
		}
	}
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
	a.sumSq += x * x
}

// N returns the number of observations folded in so far.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running arithmetic mean (0 if no observations).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased running sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the running sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Var0 returns the running variance about zero, E[X^2] (0 if empty).
func (a *Accumulator) Var0() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sumSq / float64(a.n)
}

// Min returns the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 { return a.minVal }

// Max returns the largest observation (0 if empty).
func (a *Accumulator) Max() float64 { return a.maxVal }

// Reset returns the accumulator to its zero state.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]: v <- alpha*x + (1-alpha)*v. It implements the paper's
// Section 5 suggestion of keeping history information about mobility values.
//
// Construct with NewEWMA; the first observation initializes the average.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with the given smoothing factor. Alpha is clamped
// to (0, 1]: values <= 0 become 1 (no smoothing) so a zero-configured
// smoother degrades to the paper's memoryless metric rather than to a frozen
// one.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Update folds in one observation and returns the new smoothed value.
func (e *EWMA) Update(x float64) float64 {
	if !e.primed {
		e.value = x
		e.primed = true
		return e.value
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current smoothed value (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one observation has been folded in.
func (e *EWMA) Primed() bool { return e.primed }

// Alpha returns the smoothing factor in use.
func (e *EWMA) Alpha() float64 { return e.alpha }

// Reset discards all history.
func (e *EWMA) Reset() { e.value, e.primed = 0, false }
