package stats

import (
	"strings"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(0, 10, -3); err == nil {
		t.Error("negative bins should error")
	}
	if _, err := NewHistogram(5, 5, 4); err == nil {
		t.Error("empty range should error")
	}
	if _, err := NewHistogram(10, 5, 4); err == nil {
		t.Error("inverted range should error")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 4, 6, 8, 9.999} {
		h.Add(x)
	}
	want := []int{2, 1, 1, 1, 2}
	for i, w := range want {
		if got := h.Count(i); got != w {
			t.Errorf("bin %d count = %d, want %d", i, got, w)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-1)
	h.Add(10) // hi is exclusive
	h.Add(100)
	if h.Underflow() != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow())
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3 (out-of-range still counted)", h.Total())
	}
}

func TestHistogramBinBounds(t *testing.T) {
	h, err := NewHistogram(10, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := h.BinBounds(0)
	if lo != 10 || hi != 12.5 {
		t.Errorf("bin 0 bounds = [%v, %v), want [10, 12.5)", lo, hi)
	}
	lo, hi = h.BinBounds(3)
	if lo != 17.5 || hi != 20 {
		t.Errorf("bin 3 bounds = [%v, %v), want [17.5, 20)", lo, hi)
	}
	if h.Bins() != 4 {
		t.Errorf("Bins = %d, want 4", h.Bins())
	}
}

func TestHistogramString(t *testing.T) {
	h, err := NewHistogram(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.5)
	h.Add(1.5)
	h.Add(5)
	s := h.String()
	if !strings.Contains(s, "overflow 1") {
		t.Errorf("String should mention overflow, got:\n%s", s)
	}
	if !strings.Contains(s, "#") {
		t.Errorf("String should render bars, got:\n%s", s)
	}
}
