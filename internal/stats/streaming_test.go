package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{3.1, -2.2, 0, 7.7, 5.5, -0.4, 12, 1}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	if acc.N() != len(xs) {
		t.Fatalf("N = %d, want %d", acc.N(), len(xs))
	}
	if !almostEqual(acc.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Mean = %v, want %v", acc.Mean(), Mean(xs))
	}
	if !almostEqual(acc.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Variance = %v, want %v", acc.Variance(), Variance(xs))
	}
	if !almostEqual(acc.Var0(), Var0(xs), 1e-9) {
		t.Errorf("Var0 = %v, want %v", acc.Var0(), Var0(xs))
	}
	wantMin, _ := Min(xs)
	wantMax, _ := Max(xs)
	if acc.Min() != wantMin || acc.Max() != wantMax {
		t.Errorf("Min/Max = %v/%v, want %v/%v", acc.Min(), acc.Max(), wantMin, wantMax)
	}
}

func TestAccumulatorZeroValue(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || acc.Mean() != 0 || acc.Variance() != 0 || acc.Var0() != 0 {
		t.Error("zero-value accumulator should report zeros")
	}
	if acc.StdDev() != 0 {
		t.Error("zero-value StdDev should be 0")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var acc Accumulator
	acc.Add(5)
	if acc.Variance() != 0 {
		t.Error("variance of single sample should be 0")
	}
	if acc.Min() != 5 || acc.Max() != 5 {
		t.Error("min/max of single sample should be the sample")
	}
}

func TestAccumulatorReset(t *testing.T) {
	var acc Accumulator
	acc.Add(1)
	acc.Add(2)
	acc.Reset()
	if acc.N() != 0 || acc.Mean() != 0 || acc.Var0() != 0 {
		t.Error("Reset should clear all state")
	}
}

// Property: streaming results agree with batch results on random data.
func TestAccumulatorProperty(t *testing.T) {
	agree := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
				continue
			}
			xs = append(xs, x)
		}
		var acc Accumulator
		for _, x := range xs {
			acc.Add(x)
		}
		tol := 1e-6 * (1 + Var0(xs))
		return almostEqual(acc.Mean(), Mean(xs), tol) &&
			almostEqual(acc.Variance(), Variance(xs), tol) &&
			almostEqual(acc.Var0(), Var0(xs), tol)
	}
	if err := quick.Check(agree, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMAFirstObservationPrimes(t *testing.T) {
	e := NewEWMA(0.3)
	if e.Primed() {
		t.Error("fresh EWMA should not be primed")
	}
	if got := e.Update(10); got != 10 {
		t.Errorf("first update = %v, want 10", got)
	}
	if !e.Primed() {
		t.Error("EWMA should be primed after first update")
	}
}

func TestEWMASmoothing(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(0)
	if got := e.Update(10); !almostEqual(got, 5, 1e-12) {
		t.Errorf("update = %v, want 5", got)
	}
	if got := e.Update(10); !almostEqual(got, 7.5, 1e-12) {
		t.Errorf("update = %v, want 7.5", got)
	}
}

func TestEWMAAlphaOneIsMemoryless(t *testing.T) {
	e := NewEWMA(1)
	e.Update(3)
	if got := e.Update(42); got != 42 {
		t.Errorf("alpha=1 should track input exactly, got %v", got)
	}
}

func TestEWMAInvalidAlphaClampsToOne(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		e := NewEWMA(alpha)
		if e.Alpha() != 1 {
			t.Errorf("NewEWMA(%v).Alpha() = %v, want clamped 1", alpha, e.Alpha())
		}
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.2)
	e.Update(9)
	e.Reset()
	if e.Primed() || e.Value() != 0 {
		t.Error("Reset should clear EWMA state")
	}
}

// Property: EWMA output always stays within the range of inputs seen so far.
func TestEWMABoundedProperty(t *testing.T) {
	bounded := func(raw []float64, alphaSeed uint8) bool {
		alpha := float64(alphaSeed%100+1) / 100
		e := NewEWMA(alpha)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
				continue
			}
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			v := e.Update(x)
			const eps = 1e-9
			if v < lo-eps*(1+math.Abs(lo)) || v > hi+eps*(1+math.Abs(hi)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Error(err)
	}
}
