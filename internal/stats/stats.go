// Package stats provides the small statistical toolkit used throughout the
// MOBIC reproduction: moment estimators (including the paper's
// variance-about-zero), streaming accumulators, exponentially weighted moving
// averages, percentiles, confidence intervals, and histograms.
//
// Everything here is deterministic and allocation-conscious; the simulator
// calls into this package on every hello broadcast.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice;
// callers that must distinguish emptiness should check len(xs) themselves.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Var0 returns the variance of xs computed about zero rather than about the
// sample mean: E[X^2]. This is the paper's aggregate-mobility estimator
// (equation 2): M_Y = var0(Mrel(X1), ..., Mrel(Xm)) = E[Mrel^2].
//
// Var0 of an empty slice is 0, matching the paper's initialization of M to 0
// before any relative-mobility samples exist.
func Var0(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x * x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance about the mean.
// It returns 0 when fewer than two samples are provided.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the square root of the unbiased sample variance.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It returns an error for an empty
// slice so callers cannot silently treat "no data" as 0.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs, or an error for an empty slice.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input slice is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// MeanCI returns the sample mean of xs together with the half-width of an
// approximate 95% confidence interval (normal approximation, 1.96 sigma/sqrt n).
// The experiment harness uses it to report seed-replication uncertainty.
func MeanCI(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	return mean, 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}
