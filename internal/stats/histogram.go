package stats

import (
	"errors"
	"fmt"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Samples outside the
// range are counted in under/overflow buckets so no observation is silently
// dropped. The experiment harness uses it to summarize distributions such as
// clusterhead residence times.
type Histogram struct {
	lo, hi    float64
	width     float64
	counts    []int
	underflow int
	overflow  int
	total     int
}

// NewHistogram builds a histogram with bins equal-width bins spanning
// [lo, hi). It returns an error for invalid bounds or a non-positive bin
// count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid histogram range [%g, %g)", lo, hi)
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(bins),
		counts: make([]int, bins),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		idx := int((x - h.lo) / h.width)
		if idx >= len(h.counts) { // guard against FP edge at hi
			idx = len(h.counts) - 1
		}
		h.counts[idx]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// Count returns the number of observations in bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Bins returns the number of in-range bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// BinBounds returns the [lo, hi) interval covered by bin i.
func (h *Histogram) BinBounds(i int) (lo, hi float64) {
	lo = h.lo + float64(i)*h.width
	return lo, lo + h.width
}

// Underflow returns the count of observations below the histogram range.
func (h *Histogram) Underflow() int { return h.underflow }

// Overflow returns the count of observations at or above the range.
func (h *Histogram) Overflow() int { return h.overflow }

// String renders a compact one-bin-per-line bar view, used by cmd tools for
// quick distribution inspection.
func (h *Histogram) String() string {
	const barWidth = 40
	peak := 1
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		lo, hi := h.BinBounds(i)
		bar := strings.Repeat("#", c*barWidth/peak)
		fmt.Fprintf(&b, "[%8.2f, %8.2f) %6d %s\n", lo, hi, c, bar)
	}
	if h.underflow > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.overflow)
	}
	return b.String()
}
