package obs

import (
	"strings"
	"testing"
)

// TestNopAllocationFree pins the zero-cost contract of the disabled path:
// every Recorder method on Nop must be allocation-free, because the engine
// hot loop calls them per event with the default recorder installed.
func TestNopAllocationFree(t *testing.T) {
	var rec Recorder = Nop{}
	allocs := testing.AllocsPerRun(100, func() {
		rec.Add(SimEventsFired, 1)
		rec.Set(SimHeapDepth, 42)
		rec.Observe(ExpCellSeconds, 1.5)
		rec.Span(SpanSimChunk, 0, 1000)
		if rec.Enabled() {
			t.Fatal("Nop must report disabled")
		}
	})
	if allocs != 0 {
		t.Errorf("Nop recorder allocates %.1f objects per round, want 0", allocs)
	}
}

// TestRegistryAllocationFree pins the same contract for the enabled path:
// an installed Registry must not reintroduce allocations on the record
// side, or instrumented daemons would lose the engine's zero-alloc steady
// state the moment telemetry is turned on.
func TestRegistryAllocationFree(t *testing.T) {
	var rec Recorder = NewRegistry()
	allocs := testing.AllocsPerRun(100, func() {
		rec.Add(NetBeaconsSent, 3)
		rec.Set(ExpProgress, 0.5)
		rec.Observe(ExpCellSeconds, 0.25)
		rec.Span(SpanCell, 100, 2100)
	})
	if allocs != 0 {
		t.Errorf("Registry recording allocates %.1f objects per round, want 0", allocs)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Add(SimEventsFired, 5)
	r.Add(SimEventsFired, 2)
	r.Set(SimHeapDepth, 17)
	r.Set(SimHeapDepth, 9)
	if got := r.Counter(SimEventsFired); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if got := r.Gauge(SimHeapDepth); got != 9 {
		t.Errorf("gauge = %g, want 9 (last write wins)", got)
	}
	if !r.Enabled() {
		t.Error("Registry must report enabled")
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	for _, v := range []float64{0.005, 0.3, 4, 1000} {
		r.Observe(ExpCellSeconds, v)
	}
	// Observing a non-histogram metric must be a safe no-op.
	r.Observe(SimEventsFired, 1)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`mobic_experiment_cell_seconds_bucket{le="+Inf"} 4`,
		"mobic_experiment_cell_seconds_count 4",
		"mobic_experiment_cell_seconds_sum 1004.305",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestWriteToExposesEveryFamily checks the Prometheus contract the /metrics
// merge depends on: every defined metric appears with HELP and TYPE lines
// and a non-empty unique name.
func TestWriteToExposesEveryFamily(t *testing.T) {
	r := NewRegistry()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	seen := map[string]bool{}
	for m := Metric(0); m < NumMetrics; m++ {
		d := Definition(m)
		if d.Name == "" || d.Help == "" {
			t.Fatalf("metric %d has empty metadata", m)
		}
		if seen[d.Name] {
			t.Errorf("duplicate family name %q", d.Name)
		}
		seen[d.Name] = true
		if !strings.Contains(out, "# HELP "+d.Name+" "+d.Help) {
			t.Errorf("missing HELP for %s", d.Name)
		}
		if !strings.Contains(out, "# TYPE "+d.Name+" ") {
			t.Errorf("missing TYPE for %s", d.Name)
		}
	}
}

func TestSpanSamplingAndRing(t *testing.T) {
	r := NewRegistry()
	// First span of each kind is always kept (seq%N == 1).
	r.Span(SpanJob, 0, 2e9)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Kind != "job" || spans[0].Seconds != 2 {
		t.Errorf("span = %+v, want kind=job seconds=2", spans[0])
	}
	// High-frequency spans are sampled down ~spanSampleEvery×, and the
	// ring stays bounded no matter how many arrive.
	for i := 0; i < 10*spanRingSize*spanSampleEvery; i++ {
		r.Span(SpanSimChunk, int64(i), int64(i+1))
	}
	spans = r.Spans()
	if len(spans) > spanRingSize {
		t.Errorf("ring holds %d spans, want <= %d", len(spans), spanRingSize)
	}
	// Out-of-range kinds are discarded, not stored.
	r.Span(NumSpanKinds, 0, 1)
	if SpanKind(200).String() != "unknown" {
		t.Error("out-of-range SpanKind should stringify as unknown")
	}
}
