package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// TenantCounters is one tenant's admission/scheduling telemetry. All
// fields are atomics so the service updates them without a lock on the
// submit and worker paths.
type TenantCounters struct {
	// Admitted counts jobs accepted for this tenant (queued or served
	// straight from the result cache).
	Admitted atomic.Int64
	// Shed counts jobs refused with a per-tenant 429 (quota, rate limit,
	// or global capacity).
	Shed atomic.Int64
	// Done counts jobs that reached a terminal state.
	Done atomic.Int64
	// Queued and Running gauge the tenant's current queue occupancy.
	Queued  atomic.Int64
	Running atomic.Int64

	weightBits atomic.Uint64 // float64 bits of the configured fair weight
}

// SetWeight records the tenant's configured fair-share weight for the
// exposition gauges.
func (c *TenantCounters) SetWeight(w float64) { c.weightBits.Store(math.Float64bits(w)) }

// Weight returns the recorded fair-share weight.
func (c *TenantCounters) Weight() float64 { return math.Float64frombits(c.weightBits.Load()) }

// TenantSet is the per-tenant labeled metric family store: lazily
// registered counters per tenant name, rendered as Prometheus families
// with a tenant label by WriteTo. Unlike the dense-ID Recorder (built for
// the allocation-free engine hot path), tenants are strings — but they are
// touched once per job, not once per event, so a lock + map lookup is
// fine.
type TenantSet struct {
	mu sync.RWMutex
	m  map[string]*TenantCounters
}

// NewTenantSet returns an empty set.
func NewTenantSet() *TenantSet {
	return &TenantSet{m: make(map[string]*TenantCounters)}
}

// Tenant returns (registering on first touch) the counters for a tenant
// exposition name.
func (s *TenantSet) Tenant(name string) *TenantCounters {
	s.mu.RLock()
	c, ok := s.m[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok = s.m[name]; !ok {
		c = &TenantCounters{}
		s.m[name] = c
	}
	return c
}

// names returns the registered tenant names, sorted for stable exposition.
func (s *TenantSet) names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for n := range s.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Each calls fn for every registered tenant in sorted name order.
func (s *TenantSet) Each(fn func(name string, c *TenantCounters)) {
	for _, n := range s.names() {
		s.mu.RLock()
		c := s.m[n]
		s.mu.RUnlock()
		fn(n, c)
	}
}

// WriteTo renders the per-tenant families in Prometheus text format:
// admitted/shed/done counters, queued/running gauges, the configured
// weight, and each tenant's share of all completed jobs (the fairness
// observable the loadgen soak asserts on).
func (s *TenantSet) WriteTo(w io.Writer) (int64, error) {
	names := s.names()
	if len(names) == 0 {
		return 0, nil
	}
	type col struct {
		name, help, kind string
		value            func(c *TenantCounters) string
	}
	var totalDone int64
	s.Each(func(_ string, c *TenantCounters) { totalDone += c.Done.Load() })
	cols := []col{
		{"mobicd_tenant_jobs_admitted_total", "Jobs admitted per tenant.", "counter",
			func(c *TenantCounters) string { return fmt.Sprintf("%d", c.Admitted.Load()) }},
		{"mobicd_tenant_jobs_shed_total", "Jobs shed with a per-tenant 429 (quota, rate or capacity).", "counter",
			func(c *TenantCounters) string { return fmt.Sprintf("%d", c.Shed.Load()) }},
		{"mobicd_tenant_jobs_done_total", "Jobs finished per tenant (any terminal state).", "counter",
			func(c *TenantCounters) string { return fmt.Sprintf("%d", c.Done.Load()) }},
		{"mobicd_tenant_jobs_queued", "Jobs currently queued per tenant.", "gauge",
			func(c *TenantCounters) string { return fmt.Sprintf("%d", c.Queued.Load()) }},
		{"mobicd_tenant_jobs_running", "Jobs currently executing per tenant.", "gauge",
			func(c *TenantCounters) string { return fmt.Sprintf("%d", c.Running.Load()) }},
		{"mobicd_tenant_weight", "Configured fair-share weight per tenant.", "gauge",
			func(c *TenantCounters) string { return fmt.Sprintf("%g", c.Weight()) }},
		{"mobicd_tenant_done_share", "Tenant's fraction of all completed jobs.", "gauge",
			func(c *TenantCounters) string {
				if totalDone == 0 {
					return "0"
				}
				return fmt.Sprintf("%g", float64(c.Done.Load())/float64(totalDone))
			}},
	}
	var total int64
	for _, cl := range cols {
		n, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", cl.name, cl.help, cl.name, cl.kind)
		total += int64(n)
		if err != nil {
			return total, err
		}
		for _, name := range names {
			s.mu.RLock()
			c := s.m[name]
			s.mu.RUnlock()
			n, err := fmt.Fprintf(w, "%s{tenant=%q} %s\n", cl.name, name, cl.value(c))
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}
