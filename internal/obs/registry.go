package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// histogram bucket bounds for Histogram-kind metrics: exponential coverage
// from 10 ms to ~5 min, which spans a trimmed smoke cell through a
// full-fidelity 900 s replication.
var histBounds = [numHistBounds]float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// numHistBounds is the finite bucket count (one +Inf bucket follows).
const numHistBounds = 14

// spanRingSize bounds the sampled-span window. Power of two so the write
// cursor wraps with a mask.
const spanRingSize = 256

// spanSampleEvery keeps one span in spanSampleEvery for the high-frequency
// kinds; the ring then covers a usefully long window instead of the last few
// milliseconds of scheduler chunks.
const spanSampleEvery = 16

// SpanRecord is one sampled wall-clock region held in the registry's ring.
type SpanRecord struct {
	// Kind names the instrumented region.
	Kind string `json:"kind"`
	// StartUnixNanos and EndUnixNanos bound the region in wall time.
	StartUnixNanos int64 `json:"start_unix_nanos"`
	// EndUnixNanos is the region's end timestamp.
	EndUnixNanos int64 `json:"end_unix_nanos"`
	// Seconds is the region's duration.
	Seconds float64 `json:"seconds"`
}

// hist is a fixed-bucket concurrent histogram. All state is preallocated at
// registry construction, so Observe is a binary search plus two atomics.
type hist struct {
	counts [numHistBounds + 1]atomic.Int64 // one overflow bucket
	total  atomic.Int64
	sumBit atomic.Uint64 // float64 bits of the running sum
}

func (h *hist) observe(v float64) {
	lo, hi := 0, len(histBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= histBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBit.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBit.CompareAndSwap(old, next) {
			return
		}
	}
}

// Registry is the aggregating Recorder behind mobicd's /metrics: dense
// atomic arrays for counters and gauges, preallocated fixed-bucket
// histograms, and a sampled span ring. Every record path is lock- and
// allocation-free, so the engine's zero-alloc steady state holds with a
// Registry installed, not just with Nop.
type Registry struct {
	counters [NumMetrics]atomic.Int64
	gauges   [NumMetrics]atomic.Uint64 // float64 bits
	hists    [NumMetrics]*hist

	spanSeq  [NumSpanKinds]atomic.Uint64
	spanCur  atomic.Uint64
	spanLen  atomic.Uint64
	spanRing [spanRingSize]struct {
		kind       SpanKind
		start, end int64
	}
}

// NewRegistry returns an empty registry with histogram storage preallocated
// for every Histogram-kind metric.
func NewRegistry() *Registry {
	r := &Registry{}
	for m := Metric(0); m < NumMetrics; m++ {
		if defs[m].Kind == Histogram {
			r.hists[m] = &hist{}
		}
	}
	return r
}

// Enabled reports true.
func (r *Registry) Enabled() bool { return true }

// Add increments counter m by delta.
func (r *Registry) Add(m Metric, delta int64) {
	r.counters[m].Add(delta)
}

// Set updates gauge m.
func (r *Registry) Set(m Metric, v float64) {
	r.gauges[m].Store(math.Float64bits(v))
}

// Observe records one histogram sample; it is a no-op for non-Histogram
// metrics.
func (r *Registry) Observe(m Metric, v float64) {
	if h := r.hists[m]; h != nil {
		h.observe(v)
	}
}

// Span records a wall-clock region into the sampled ring: one region in
// spanSampleEvery per kind is kept, overwriting the oldest slot. Torn
// reads of a slot being overwritten are tolerated — spans are diagnostics,
// not accounting.
func (r *Registry) Span(k SpanKind, startNanos, endNanos int64) {
	if k >= NumSpanKinds {
		return
	}
	if r.spanSeq[k].Add(1)%spanSampleEvery != 1 {
		return
	}
	i := (r.spanCur.Add(1) - 1) % spanRingSize
	slot := &r.spanRing[i]
	slot.kind, slot.start, slot.end = k, startNanos, endNanos
	if n := r.spanLen.Load(); n < spanRingSize {
		r.spanLen.Store(n + 1)
	}
}

// Counter returns the current value of counter m.
func (r *Registry) Counter(m Metric) int64 { return r.counters[m].Load() }

// Gauge returns the current value of gauge m.
func (r *Registry) Gauge(m Metric) float64 {
	return math.Float64frombits(r.gauges[m].Load())
}

// Spans returns a copy of the sampled span window, oldest first (best
// effort under concurrent writes).
func (r *Registry) Spans() []SpanRecord {
	n := r.spanLen.Load()
	if n > spanRingSize {
		n = spanRingSize
	}
	cur := r.spanCur.Load()
	out := make([]SpanRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		idx := i
		if n == spanRingSize {
			idx = (cur + i) % spanRingSize
		}
		s := r.spanRing[idx]
		out = append(out, SpanRecord{
			Kind:           s.kind.String(),
			StartUnixNanos: s.start,
			EndUnixNanos:   s.end,
			Seconds:        float64(s.end-s.start) / 1e9,
		})
	}
	return out
}

// WriteTo renders every metric family in Prometheus text exposition format
// with HELP and TYPE lines. It implements io.WriterTo so the service's
// /metrics handler can append the engine families after its own.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for m := Metric(0); m < NumMetrics; m++ {
		d := defs[m]
		var n int
		var err error
		switch d.Kind {
		case Counter:
			n, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				d.Name, d.Help, d.Name, d.Name, r.counters[m].Load())
		case Gauge:
			n, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
				d.Name, d.Help, d.Name, d.Name, r.Gauge(m))
		case Histogram:
			n, err = r.writeHist(w, d, r.hists[m])
		}
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// writeHist renders one histogram family with cumulative buckets.
func (r *Registry) writeHist(w io.Writer, d Def, h *hist) (int, error) {
	total, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", d.Name, d.Help, d.Name)
	if err != nil {
		return total, err
	}
	var cum int64
	for i, hi := range histBounds {
		cum += h.counts[i].Load()
		n, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", d.Name, hi, cum)
		total += n
		if err != nil {
			return total, err
		}
	}
	count := h.total.Load()
	sum := math.Float64frombits(h.sumBit.Load())
	n, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
		d.Name, count, d.Name, sum, d.Name, count)
	return total + n, err
}
