package obs

import (
	"strings"
	"testing"
)

func TestTenantSetExposition(t *testing.T) {
	s := NewTenantSet()

	// Empty set renders nothing — a single-tenant daemon's /metrics is
	// unchanged until the first tenant is touched.
	var empty strings.Builder
	if n, err := s.WriteTo(&empty); n != 0 || err != nil || empty.Len() != 0 {
		t.Fatalf("empty set wrote %d bytes (err %v): %q", n, err, empty.String())
	}

	a := s.Tenant("alpha")
	a.Admitted.Add(5)
	a.Done.Add(3)
	a.Queued.Add(2)
	a.SetWeight(4)
	b := s.Tenant("beta")
	b.Admitted.Add(2)
	b.Done.Add(1)
	b.Shed.Add(7)
	b.SetWeight(1)

	// Same pointer on re-touch: counters accumulate per tenant.
	if s.Tenant("alpha") != a {
		t.Fatal("Tenant is not idempotent")
	}

	var buf strings.Builder
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{
		`mobicd_tenant_jobs_admitted_total{tenant="alpha"} 5`,
		`mobicd_tenant_jobs_admitted_total{tenant="beta"} 2`,
		`mobicd_tenant_jobs_shed_total{tenant="beta"} 7`,
		`mobicd_tenant_jobs_queued{tenant="alpha"} 2`,
		`mobicd_tenant_weight{tenant="alpha"} 4`,
		`mobicd_tenant_done_share{tenant="alpha"} 0.75`,
		`mobicd_tenant_done_share{tenant="beta"} 0.25`,
		"# TYPE mobicd_tenant_jobs_admitted_total counter",
		"# TYPE mobicd_tenant_jobs_queued gauge",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q:\n%s", w, out)
		}
	}

	// Tenants render in sorted name order for stable scrapes.
	if ia, ib := strings.Index(out, `{tenant="alpha"}`), strings.Index(out, `{tenant="beta"}`); ia > ib {
		t.Error("tenants not in sorted order")
	}
}

func TestTenantSetEach(t *testing.T) {
	s := NewTenantSet()
	s.Tenant("b").Admitted.Add(1)
	s.Tenant("a").Admitted.Add(2)
	var order []string
	s.Each(func(name string, c *TenantCounters) { order = append(order, name) })
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("Each order = %v, want [a b]", order)
	}
}
