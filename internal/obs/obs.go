// Package obs is the engine-to-daemon instrumentation layer: a small,
// allocation-free telemetry facade threaded from the event kernel
// (internal/sim) through the network layer (internal/simnet) and the sweep
// runner (internal/experiment) up to the mobicd HTTP API.
//
// The design constraint is zero cost when disabled. Metrics are identified
// by dense integer IDs — not strings — so recording is an interface call
// plus an atomic, with nothing to hash or intern; the default Nop recorder
// makes every hook a no-op, proven allocation-free by the package tests and
// pinned by the engine's steady-state allocation gate. Instrumented or not,
// telemetry never feeds back into the simulation, so trace digests are
// bit-identical either way.
package obs

// Metric identifies one engine/experiment telemetry series. The IDs are
// dense array indices into a Registry, which is what keeps recording
// allocation- and lookup-free on the per-event hot path.
type Metric uint8

// Engine (internal/sim) metrics.
const (
	// SimEventsFired counts executed simulator events.
	SimEventsFired Metric = iota
	// SimEventsCanceled counts events canceled before firing.
	SimEventsCanceled
	// SimEventsPooled counts fire-and-forget events recycled through the
	// scheduler's free list.
	SimEventsPooled
	// SimHeapDepth gauges the pending event-queue depth.
	SimHeapDepth
	// SimRate gauges simulated seconds advanced per wall-clock second.
	SimRate

	// NetBeaconsSent counts hello broadcasts transmitted.
	NetBeaconsSent
	// NetDeliveries counts hello beacons successfully handed to a receiver.
	NetDeliveries
	// NetCollisions counts receptions destroyed by MAC overlap.
	NetCollisions
	// NetDrops counts beacons dropped by the loss model.
	NetDrops
	// NetNeighborAdds counts neighbor-table insertions (first beacon heard).
	NetNeighborAdds
	// NetNeighborTimeouts counts neighbor-table purges (beacons missed).
	NetNeighborTimeouts
	// NetRoleChanges counts clustering role transitions.
	NetRoleChanges
	// NetHeadChanges counts clusterhead reaffiliations.
	NetHeadChanges

	// ExpCellsCompleted counts sweep cells fully aggregated over all seeds.
	ExpCellsCompleted
	// ExpCellsFailed counts cell replications that ended in error.
	ExpCellsFailed
	// ExpCellsResumed counts cells skipped on a checkpoint resume — work a
	// crash or retry did NOT have to repeat.
	ExpCellsResumed
	// ExpProgress gauges the most recently updated sweep's completed
	// replication fraction in [0, 1].
	ExpProgress
	// ExpCellSeconds is a histogram of wall-clock seconds per completed
	// cell replication.
	ExpCellSeconds

	// CacheHits counts result-cache lookups served without simulation.
	CacheHits
	// CacheMisses counts result-cache lookups that fell through to a run.
	CacheMisses
	// CacheEvictions counts cached results dropped by the size bounds.
	CacheEvictions

	// DispatchForwarded counts jobs the coordinator placed on a worker.
	DispatchForwarded
	// DispatchFailovers counts interrupted jobs re-dispatched to a
	// successor peer after a worker failure.
	DispatchFailovers
	// DispatchCheckpointsShipped counts checkpoint records the coordinator
	// pulled from workers for failover (the WAL-shipping volume).
	DispatchCheckpointsShipped
	// DispatchPeersHealthy gauges the number of peers passing /readyz.
	DispatchPeersHealthy

	// TileWindows counts synchronization windows executed by the tiled
	// scheduler.
	TileWindows
	// TilePlannedTicks counts beacon ticks served from a tile worker's
	// precomputed plan.
	TilePlannedTicks
	// TileFallbackTicks counts beacon ticks that missed their plan (node
	// crashed/recovered mid-window) and ran inline instead.
	TileFallbackTicks
	// TileHaloExchanges counts boundary-halo state exchanges: per window,
	// one per adjacent tile pair whose halos overlap.
	TileHaloExchanges
	// TileBarrierWaitNanos accumulates wall-clock nanoseconds the window
	// coordinator spent waiting on the tile-worker barrier.
	TileBarrierWaitNanos
	// TileCount gauges the number of tiles in the most recent tiled run.
	TileCount

	// CacheCorrupt counts disk-cache entries that failed their CRC or
	// framing check and were quarantined.
	CacheCorrupt

	// ReplBatches counts checkpoint-replication batches a worker shipped
	// to its ring successor.
	ReplBatches
	// ReplRecords counts individual checkpoint records acknowledged by a
	// replica.
	ReplRecords
	// ReplFailures counts replication batch sends that failed (and will
	// be retried on the next flush).
	ReplFailures
	// ReplApplied counts checkpoint records a replica accepted and stored.
	ReplApplied
	// ReplRestores counts restores that recovered checkpoints from the
	// local replica store instead of (or beyond) the shipped prefix.
	ReplRestores

	// DispatchRetries counts coordinator→peer call attempts beyond the
	// first (the bounded-retry volume).
	DispatchRetries
	// DispatchBreakerOpens counts per-peer circuit-breaker trips into the
	// open state.
	DispatchBreakerOpens
	// DispatchBreakerShortCircuits counts calls refused locally because a
	// peer's breaker was open.
	DispatchBreakerShortCircuits
	// DispatchDegraded counts jobs the coordinator ran locally because
	// the ring had no live owner.
	DispatchDegraded

	// ChaosInjected counts faults injected by a chaos schedule.
	ChaosInjected

	// NumMetrics is the number of defined metrics (array sizing).
	NumMetrics
)

// Kind is a metric's Prometheus type.
type Kind uint8

// Metric kinds.
const (
	Counter Kind = iota
	Gauge
	Histogram
)

// Def is one metric's exposition metadata.
type Def struct {
	// Name is the Prometheus family name.
	Name string
	// Help is the HELP line.
	Help string
	// Kind selects counter, gauge or histogram exposition.
	Kind Kind
}

// defs maps each Metric to its exposition metadata. Order must match the
// Metric constants.
var defs = [NumMetrics]Def{
	SimEventsFired:      {"mobic_sim_events_fired_total", "Simulator events executed by the event kernel.", Counter},
	SimEventsCanceled:   {"mobic_sim_events_canceled_total", "Simulator events canceled before firing.", Counter},
	SimEventsPooled:     {"mobic_sim_events_pooled_total", "Fire-and-forget events recycled through the scheduler free list.", Counter},
	SimHeapDepth:        {"mobic_sim_heap_depth", "Pending events in the scheduler queue (most recent simulation).", Gauge},
	SimRate:             {"mobic_sim_rate_seconds_per_second", "Simulated seconds advanced per wall-clock second (most recent chunk).", Gauge},
	NetBeaconsSent:      {"mobic_net_beacons_sent_total", "Hello beacons broadcast by all nodes.", Counter},
	NetDeliveries:       {"mobic_net_deliveries_total", "Hello beacons successfully received.", Counter},
	NetCollisions:       {"mobic_net_collisions_total", "Receptions destroyed by MAC-level overlap.", Counter},
	NetDrops:            {"mobic_net_drops_total", "Beacons dropped by the channel loss model.", Counter},
	NetNeighborAdds:     {"mobic_net_neighbor_adds_total", "Neighbor-table insertions (first beacon heard from a node).", Counter},
	NetNeighborTimeouts: {"mobic_net_neighbor_timeouts_total", "Neighbor-table purges after missed beacons.", Counter},
	NetRoleChanges:      {"mobic_net_role_changes_total", "Clustering role transitions across all nodes.", Counter},
	NetHeadChanges:      {"mobic_net_head_changes_total", "Clusterhead reaffiliations across all nodes.", Counter},
	ExpCellsCompleted:   {"mobic_experiment_cells_completed_total", "Sweep cells fully aggregated over all replications.", Counter},
	ExpCellsFailed:      {"mobic_experiment_cells_failed_total", "Cell replications that ended in error.", Counter},
	ExpCellsResumed:     {"mobic_experiment_cells_resumed_total", "Cells skipped via checkpoint resume instead of re-simulated.", Counter},
	ExpProgress:         {"mobic_experiment_progress_ratio", "Completed replication fraction of the most recently updated sweep.", Gauge},
	ExpCellSeconds:      {"mobic_experiment_cell_seconds", "Wall-clock seconds per completed cell replication.", Histogram},

	CacheHits:      {"mobic_cache_hits_total", "Result-cache lookups served without re-simulating.", Counter},
	CacheMisses:    {"mobic_cache_misses_total", "Result-cache lookups that fell through to a real run.", Counter},
	CacheEvictions: {"mobic_cache_evictions_total", "Cached results dropped by the entry or byte bounds.", Counter},

	DispatchForwarded:          {"mobic_dispatch_forwarded_total", "Jobs the coordinator placed on a worker peer.", Counter},
	DispatchFailovers:          {"mobic_dispatch_failovers_total", "Interrupted jobs re-dispatched to a successor peer.", Counter},
	DispatchCheckpointsShipped: {"mobic_dispatch_checkpoints_shipped_total", "Checkpoint records pulled from workers for failover.", Counter},
	DispatchPeersHealthy:       {"mobic_dispatch_peers_healthy", "Worker peers currently passing their readiness probe.", Gauge},

	TileWindows:          {"mobic_tile_windows_total", "Synchronization windows executed by the tiled scheduler.", Counter},
	TilePlannedTicks:     {"mobic_tile_planned_ticks_total", "Beacon ticks served from a tile worker's precomputed plan.", Counter},
	TileFallbackTicks:    {"mobic_tile_fallback_ticks_total", "Beacon ticks that missed their plan and ran inline.", Counter},
	TileHaloExchanges:    {"mobic_tile_halo_exchanges_total", "Boundary-halo state exchanges between adjacent tiles.", Counter},
	TileBarrierWaitNanos: {"mobic_tile_barrier_wait_nanos_total", "Wall-clock nanoseconds spent waiting on the tile-worker barrier.", Counter},
	TileCount:            {"mobic_tile_count", "Tiles in the most recent tiled simulation run.", Gauge},

	CacheCorrupt: {"mobic_cache_corrupt_total", "Disk-cache entries that failed CRC/framing and were quarantined.", Counter},

	ReplBatches:  {"mobic_repl_batches_total", "Checkpoint-replication batches shipped to the ring successor.", Counter},
	ReplRecords:  {"mobic_repl_records_total", "Checkpoint records acknowledged by a replica.", Counter},
	ReplFailures: {"mobic_repl_failures_total", "Replication batch sends that failed and await retry.", Counter},
	ReplApplied:  {"mobic_repl_applied_total", "Checkpoint records accepted into the local replica store.", Counter},
	ReplRestores: {"mobic_repl_restores_total", "Restores recovered from the local replica store beyond the shipped prefix.", Counter},

	DispatchRetries:              {"mobic_dispatch_retries_total", "Coordinator-to-peer call attempts beyond the first.", Counter},
	DispatchBreakerOpens:         {"mobic_dispatch_breaker_opens_total", "Per-peer circuit-breaker trips into the open state.", Counter},
	DispatchBreakerShortCircuits: {"mobic_dispatch_breaker_short_circuits_total", "Calls refused locally because the peer's breaker was open.", Counter},
	DispatchDegraded:             {"mobic_dispatch_degraded_total", "Jobs run locally on the coordinator because the ring had no live owner.", Counter},

	ChaosInjected: {"mobic_chaos_injected_total", "Faults injected by the active chaos schedule.", Counter},
}

// Definition returns the exposition metadata for m.
func Definition(m Metric) Def { return defs[m] }

// SpanKind names an instrumented wall-clock region for the sampled span
// facility.
type SpanKind uint8

// Span kinds.
const (
	// SpanSimChunk is one scheduler chunk of Network.RunContext.
	SpanSimChunk SpanKind = iota
	// SpanCell is one sweep cell replication (simnet.New + Run).
	SpanCell
	// SpanJob is one service job execution attempt.
	SpanJob
	// SpanFailover is one coordinator failover: worker declared dead
	// through the interrupted job restored on its successor.
	SpanFailover

	// NumSpanKinds is the number of defined span kinds.
	NumSpanKinds
)

// spanKindNames maps SpanKind to its wire name.
var spanKindNames = [NumSpanKinds]string{"sim_chunk", "cell", "job", "failover"}

// String returns the span kind's wire name.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "unknown"
}

// Recorder receives engine telemetry. Implementations must be safe for
// concurrent use (many simulations record into one recorder) and must not
// allocate on Add/Set/Observe/Span — the engine's steady-state allocation
// gate runs with a recorder installed.
//
// Enabled gates work that only exists to feed the recorder (wall-clock
// reads, ratio computation): callers skip it entirely when Enabled reports
// false, which is how the Nop default stays zero-cost beyond a predictable
// interface call per hook.
type Recorder interface {
	// Enabled reports whether recording has any effect.
	Enabled() bool
	// Add increments a counter metric by delta.
	Add(m Metric, delta int64)
	// Set updates a gauge metric.
	Set(m Metric, v float64)
	// Observe records one sample into a histogram metric.
	Observe(m Metric, v float64)
	// Span records a completed wall-clock region. start and end are
	// nanosecond timestamps (time.Time.UnixNano); implementations may
	// sample and keep only a bounded window.
	Span(k SpanKind, startNanos, endNanos int64)
}

// Nop is the zero-cost default Recorder: every method is an empty no-op, so
// an instrumented engine with Nop installed runs allocation-free and within
// noise of an uninstrumented one.
type Nop struct{}

// Enabled reports false: hooks should skip recording-only work.
func (Nop) Enabled() bool { return false }

// Add discards the increment.
func (Nop) Add(Metric, int64) {}

// Set discards the gauge update.
func (Nop) Set(Metric, float64) {}

// Observe discards the sample.
func (Nop) Observe(Metric, float64) {}

// Span discards the span.
func (Nop) Span(SpanKind, int64, int64) {}
