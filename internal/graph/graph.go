// Package graph provides adjacency analysis over node position snapshots:
// connected components, BFS distances and eccentricities. The test suite
// uses it to verify the paper's Theorem 1 (cluster diameter <= 2 hops, no
// two clusterheads in range) and the experiment harness uses it to report
// topology connectivity alongside clustering metrics.
package graph

import (
	"fmt"

	"mobic/internal/geom"
)

// Adjacency is an undirected unit-disk graph over n nodes.
type Adjacency struct {
	n   int
	adj [][]int32
	// seen and queue are BFS scratch reused by ComponentStats, so the
	// simulator's periodic topology sample allocates nothing once warm.
	seen  []bool
	queue []int32
}

// FromPositions builds the unit-disk graph: nodes i and j are adjacent iff
// their distance is <= radius. O(n^2); snapshots are small.
func FromPositions(pos []geom.Point, radius float64) *Adjacency {
	g := &Adjacency{}
	g.Rebuild(pos, radius)
	return g
}

// Rebuild re-derives the unit-disk graph over pos in place, reusing the
// adjacency lists' backing arrays. The periodic topology sampler calls this
// every few simulated seconds; rebuilding in place keeps it allocation-free
// at steady state.
func (g *Adjacency) Rebuild(pos []geom.Point, radius float64) {
	n := len(pos)
	g.n = n
	if cap(g.adj) < n {
		adj := make([][]int32, n)
		copy(adj, g.adj)
		g.adj = adj
	}
	g.adj = g.adj[:n]
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	if radius < 0 {
		return
	}
	rSq := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pos[i].DistSq(pos[j]) <= rSq {
				g.adj[i] = append(g.adj[i], int32(j))
				g.adj[j] = append(g.adj[j], int32(i))
			}
		}
	}
}

// N returns the number of nodes.
func (g *Adjacency) N() int { return g.n }

// Neighbors returns node i's adjacency list. The returned slice must not be
// modified.
func (g *Adjacency) Neighbors(i int32) []int32 { return g.adj[i] }

// Degree returns the number of neighbors of node i.
func (g *Adjacency) Degree(i int32) int { return len(g.adj[i]) }

// Adjacent reports whether i and j are within range of each other.
func (g *Adjacency) Adjacent(i, j int32) bool {
	for _, k := range g.adj[i] {
		if k == j {
			return true
		}
	}
	return false
}

// BFSDist returns the hop distance from `from` to every node; unreachable
// nodes get -1.
func (g *Adjacency) BFSDist(from int32) ([]int, error) {
	if from < 0 || int(from) >= g.n {
		return nil, fmt.Errorf("graph: node %d out of range [0, %d)", from, g.n)
	}
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[from] = 0
	queue := []int32{from}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist, nil
}

// Components returns the connected components, each a sorted-by-insertion
// list of node ids; components are ordered by their smallest node id.
func (g *Adjacency) Components() [][]int32 {
	seen := make([]bool, g.n)
	var comps [][]int32
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int32
		queue := []int32{int32(s)}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// ComponentStats returns the number of connected components and the size of
// the largest one without materializing the component lists. It reuses
// internal BFS scratch, so a caller sampling topology every few simulated
// seconds allocates nothing once the graph has been sized.
func (g *Adjacency) ComponentStats() (count, largest int) {
	if cap(g.seen) < g.n {
		g.seen = make([]bool, g.n)
	}
	g.seen = g.seen[:g.n]
	clear(g.seen)
	for s := 0; s < g.n; s++ {
		if g.seen[s] {
			continue
		}
		count++
		size := 0
		g.queue = append(g.queue[:0], int32(s))
		g.seen[s] = true
		for qi := 0; qi < len(g.queue); qi++ {
			u := g.queue[qi]
			size++
			for _, v := range g.adj[u] {
				if !g.seen[v] {
					g.seen[v] = true
					g.queue = append(g.queue, v)
				}
			}
		}
		if size > largest {
			largest = size
		}
	}
	return count, largest
}

// Connected reports whether the graph has exactly one component (true for
// the empty graph of one node; false for zero nodes).
func (g *Adjacency) Connected() bool {
	if g.n == 0 {
		return false
	}
	return len(g.Components()) == 1
}

// Diameter returns the longest shortest-path over the largest component,
// i.e. the "d" in the paper's O(d) convergence claim. Returns 0 for empty
// or singleton graphs.
func (g *Adjacency) Diameter() int {
	maxDist := 0
	for i := 0; i < g.n; i++ {
		dist, err := g.BFSDist(int32(i))
		if err != nil {
			continue
		}
		for _, d := range dist {
			if d > maxDist {
				maxDist = d
			}
		}
	}
	return maxDist
}

// SubgraphDiameter returns the diameter of the induced subgraph over the
// given nodes (hop counts within the subgraph). Used to check that every
// cluster has diameter <= 2. Unreachable pairs return -1 as the diameter.
func (g *Adjacency) SubgraphDiameter(nodes []int32) int {
	if len(nodes) <= 1 {
		return 0
	}
	inSet := make(map[int32]bool, len(nodes))
	for _, v := range nodes {
		inSet[v] = true
	}
	maxDist := 0
	for _, s := range nodes {
		// BFS constrained to the subset.
		dist := make(map[int32]int, len(nodes))
		dist[s] = 0
		queue := []int32{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if !inSet[v] {
					continue
				}
				if _, ok := dist[v]; !ok {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		if len(dist) < len(nodes) {
			return -1 // disconnected within the subgraph
		}
		for _, d := range dist {
			if d > maxDist {
				maxDist = d
			}
		}
	}
	return maxDist
}
