package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mobic/internal/geom"
)

// line builds a path graph 0-1-2-...-k with unit spacing and radius 1.
func line(k int) *Adjacency {
	pos := make([]geom.Point, k)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i), Y: 0}
	}
	return FromPositions(pos, 1.0)
}

func TestFromPositionsAdjacency(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 100, Y: 100}}
	g := FromPositions(pos, 5)
	if !g.Adjacent(0, 1) || !g.Adjacent(1, 0) {
		t.Error("nodes at distance 5 should be adjacent (boundary inclusive)")
	}
	if g.Adjacent(0, 2) || g.Adjacent(1, 2) {
		t.Error("far node should not be adjacent")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Errorf("degrees = %d, %d", g.Degree(0), g.Degree(2))
	}
	if g.N() != 3 {
		t.Errorf("N = %d", g.N())
	}
}

func TestNegativeRadius(t *testing.T) {
	g := FromPositions([]geom.Point{{}, {}}, -1)
	if g.Degree(0) != 0 {
		t.Error("negative radius should produce no edges")
	}
}

func TestBFSDist(t *testing.T) {
	g := line(5)
	dist, err := g.BFSDist(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	if _, err := g.BFSDist(-1); err == nil {
		t.Error("out-of-range start should error")
	}
	if _, err := g.BFSDist(5); err == nil {
		t.Error("out-of-range start should error")
	}
}

func TestBFSDistUnreachable(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 1}, {X: 100}}
	g := FromPositions(pos, 1)
	dist, err := g.BFSDist(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != -1 {
		t.Errorf("unreachable dist = %d, want -1", dist[2])
	}
}

func TestComponents(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 1}, {X: 10}, {X: 11}, {X: 50}}
	g := FromPositions(pos, 1.5)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 2 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Errorf("component sizes = %d,%d,%d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
	if g.Connected() {
		t.Error("graph should not be connected")
	}
}

func TestConnected(t *testing.T) {
	if !line(4).Connected() {
		t.Error("path graph should be connected")
	}
	empty := FromPositions(nil, 1)
	if empty.Connected() {
		t.Error("empty graph should not report connected")
	}
	single := FromPositions([]geom.Point{{}}, 1)
	if !single.Connected() {
		t.Error("singleton graph is connected")
	}
}

func TestDiameter(t *testing.T) {
	if d := line(5).Diameter(); d != 4 {
		t.Errorf("path diameter = %d, want 4", d)
	}
	if d := FromPositions([]geom.Point{{}}, 1).Diameter(); d != 0 {
		t.Errorf("singleton diameter = %d, want 0", d)
	}
	// Clique of 4.
	pos := []geom.Point{{X: 0}, {X: 0.1}, {X: 0.2}, {X: 0.3}}
	if d := FromPositions(pos, 1).Diameter(); d != 1 {
		t.Errorf("clique diameter = %d, want 1", d)
	}
}

func TestSubgraphDiameter(t *testing.T) {
	g := line(6) // 0-1-2-3-4-5
	if d := g.SubgraphDiameter([]int32{1, 2, 3}); d != 2 {
		t.Errorf("subpath diameter = %d, want 2", d)
	}
	// Induced subgraph {0, 2} has no edge: disconnected.
	if d := g.SubgraphDiameter([]int32{0, 2}); d != -1 {
		t.Errorf("disconnected subgraph = %d, want -1", d)
	}
	if d := g.SubgraphDiameter([]int32{3}); d != 0 {
		t.Errorf("singleton subgraph = %d, want 0", d)
	}
	if d := g.SubgraphDiameter(nil); d != 0 {
		t.Errorf("empty subgraph = %d, want 0", d)
	}
}

// A star (head + members in range) has cluster diameter <= 2 — the shape
// Theorem 1 guarantees.
func TestStarClusterDiameterAtMostTwo(t *testing.T) {
	pos := []geom.Point{
		{X: 0, Y: 0}, // head
		{X: 1, Y: 0}, // members around it
		{X: -1, Y: 0},
		{X: 0, Y: 1},
		{X: 0, Y: -1},
	}
	g := FromPositions(pos, 1.0)
	d := g.SubgraphDiameter([]int32{0, 1, 2, 3, 4})
	if d < 0 || d > 2 {
		t.Errorf("star diameter = %d, want <= 2", d)
	}
}

// Property: components partition the node set.
func TestComponentsPartitionProperty(t *testing.T) {
	prop := func(seed uint64, radiusSeed uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		n := 5 + int(seed%40)
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300}
		}
		g := FromPositions(pos, 20+float64(radiusSeed))
		seen := make(map[int32]int)
		for _, comp := range g.Components() {
			for _, v := range comp {
				seen[v]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances satisfy the triangle property along edges.
func TestBFSEdgeConsistencyProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		n := 10 + int(seed%20)
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200}
		}
		g := FromPositions(pos, 60)
		dist, err := g.BFSDist(0)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for _, j := range g.Neighbors(int32(i)) {
				di, dj := dist[i], dist[j]
				if di >= 0 && dj >= 0 && abs(di-dj) > 1 {
					return false // adjacent nodes can differ by at most 1
				}
				if (di == -1) != (dj == -1) {
					return false // adjacency implies same reachability
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
