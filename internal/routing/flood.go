// Package routing implements the application-level motivation of the paper:
// cluster-based forwarding "keeps the flooding traffic in check" compared to
// flat flooding (Sections 1 and 2.1). It provides a flat flood and a
// CBRP-style cluster-based flood over a topology snapshot, so the A9
// experiment can quantify the forwarding-load savings that stable clusters
// buy.
package routing

import (
	"fmt"

	"mobic/internal/graph"
)

// NoHead mirrors cluster.NoHead for callers supplying affiliation vectors.
const NoHead int32 = -1

// FloodResult summarizes one flooding round.
type FloodResult struct {
	// Transmissions is the number of nodes that (re)broadcast the packet,
	// including the source.
	Transmissions int
	// Reached is the number of nodes that received or originated the
	// packet, including the source.
	Reached int
	// N is the number of nodes in the topology.
	N int
}

// Coverage returns the fraction of all nodes reached.
func (f FloodResult) Coverage() float64 {
	if f.N == 0 {
		return 0
	}
	return float64(f.Reached) / float64(f.N)
}

// FlatFlood floods from src with every receiving node rebroadcasting
// exactly once — classic flooding, the paper's strawman for unclustered
// route discovery.
func FlatFlood(g *graph.Adjacency, src int32) (FloodResult, error) {
	if src < 0 || int(src) >= g.N() {
		return FloodResult{}, fmt.Errorf("routing: source %d out of range [0, %d)", src, g.N())
	}
	dist, err := g.BFSDist(src)
	if err != nil {
		return FloodResult{}, err
	}
	reached := 0
	for _, d := range dist {
		if d >= 0 {
			reached++
		}
	}
	// In flat flooding every reached node transmits once.
	return FloodResult{Transmissions: reached, Reached: reached, N: g.N()}, nil
}

// ClusterFlood floods from src with only the forwarding backbone
// rebroadcasting: clusterheads, gateways, and the source itself. heads[i]
// is node i's clusterhead (its own id for heads, NoHead for unaffiliated
// nodes, which forward like heads so coverage cannot silently regress).
//
// Gateways are computed structurally from the snapshot: a member adjacent to
// a head of another cluster, or adjacent to a member of another cluster
// (distributed gateway, as in CBRP).
func ClusterFlood(g *graph.Adjacency, heads []int32, src int32) (FloodResult, error) {
	if src < 0 || int(src) >= g.N() {
		return FloodResult{}, fmt.Errorf("routing: source %d out of range [0, %d)", src, g.N())
	}
	if len(heads) != g.N() {
		return FloodResult{}, fmt.Errorf("routing: %d affiliations for %d nodes", len(heads), g.N())
	}
	forwards := forwardingSet(g, heads)
	forwards[src] = true

	received := make([]bool, g.N())
	received[src] = true
	transmissions := 0
	// queue holds forwarders that have received the packet but not yet
	// rebroadcast. A node is enqueued at most once: exactly when it first
	// receives, and only if it forwards.
	queue := []int32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		transmissions++
		for _, v := range g.Neighbors(u) {
			if received[v] {
				continue
			}
			received[v] = true
			if forwards[v] {
				queue = append(queue, v)
			}
		}
	}
	reached := 0
	for _, r := range received {
		if r {
			reached++
		}
	}
	return FloodResult{Transmissions: transmissions, Reached: reached, N: g.N()}, nil
}

// forwardingSet marks clusterheads, unaffiliated nodes and elected
// gateways. Gateways are elected per neighboring-cluster pair, CBRP-style:
// among all edges linking two clusters, only the lexicographically smallest
// edge's endpoints forward. This keeps the backbone connected (every
// adjacent cluster pair keeps exactly one bridge) while avoiding the dense-
// network pathology where every member can hear a foreign cluster and the
// "backbone" degenerates into everyone.
func forwardingSet(g *graph.Adjacency, heads []int32) []bool {
	forwards := make([]bool, g.N())
	// clusterOf treats unaffiliated nodes as singleton clusters keyed by
	// their own id; they always forward.
	clusterOf := func(i int32) int32 {
		if heads[i] == NoHead {
			return i
		}
		return heads[i]
	}
	for i := range forwards {
		id := int32(i)
		if heads[i] == id || heads[i] == NoHead {
			forwards[i] = true
		}
	}
	// Elect the smallest bridge edge per unordered cluster pair.
	type pair struct{ a, b int32 }
	type edge struct{ u, v int32 }
	best := make(map[pair]edge)
	for i := 0; i < g.N(); i++ {
		u := int32(i)
		cu := clusterOf(u)
		for _, v := range g.Neighbors(u) {
			if v < u {
				continue // undirected: visit each edge once
			}
			cv := clusterOf(v)
			if cu == cv {
				continue
			}
			key := pair{a: min32(cu, cv), b: max32(cu, cv)}
			e, ok := best[key]
			if !ok || u < e.u || (u == e.u && v < e.v) {
				best[key] = edge{u: u, v: v}
			}
		}
	}
	for _, e := range best {
		forwards[e.u] = true
		forwards[e.v] = true
	}
	return forwards
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
