package routing

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mobic/internal/geom"
	"mobic/internal/graph"
)

// starOfStars builds two clusters: heads 0 and 3, members {1,2} and {4,5},
// with node 2 adjacent to node 4 (distributed gateways linking clusters).
func starOfStars() (*graph.Adjacency, []int32) {
	pos := []geom.Point{
		{X: 0, Y: 0}, // 0 head A
		{X: 1, Y: 0}, // 1 member A
		{X: 2, Y: 0}, // 2 member A (gateway via 4)
		{X: 5, Y: 0}, // 3 head B
		{X: 4, Y: 0}, // 4 member B (gateway via 2)
		{X: 6, Y: 0}, // 5 member B
	}
	// radius 2: edges 0-1, 0-2, 1-2, 2-4(dist2), 3-4, 3-5, 4-5(dist2), 1-... 1-2 dist1. 3-5 dist1, 2-3 dist3 no.
	g := graph.FromPositions(pos, 2)
	heads := []int32{0, 0, 0, 3, 3, 3}
	return g, heads
}

func TestFlatFloodReachesComponent(t *testing.T) {
	g, _ := starOfStars()
	res, err := FlatFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 6 {
		t.Errorf("Reached = %d, want 6", res.Reached)
	}
	if res.Transmissions != 6 {
		t.Errorf("flat Transmissions = %d, want 6 (everyone rebroadcasts)", res.Transmissions)
	}
	if res.Coverage() != 1 {
		t.Errorf("Coverage = %v, want 1", res.Coverage())
	}
}

func TestFlatFloodDisconnected(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 1}, {X: 100}}
	g := graph.FromPositions(pos, 2)
	res, err := FlatFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 2 {
		t.Errorf("Reached = %d, want 2", res.Reached)
	}
}

func TestFlatFloodBadSource(t *testing.T) {
	g, _ := starOfStars()
	if _, err := FlatFlood(g, -1); err == nil {
		t.Error("negative source should error")
	}
	if _, err := FlatFlood(g, 99); err == nil {
		t.Error("out-of-range source should error")
	}
}

func TestClusterFloodUsesFewerTransmissions(t *testing.T) {
	g, heads := starOfStars()
	flat, err := FlatFlood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	clus, err := ClusterFlood(g, heads, 0)
	if err != nil {
		t.Fatal(err)
	}
	if clus.Reached != flat.Reached {
		t.Errorf("cluster flood reached %d, flat %d", clus.Reached, flat.Reached)
	}
	if clus.Transmissions >= flat.Transmissions {
		t.Errorf("cluster flood used %d transmissions, flat %d; want fewer",
			clus.Transmissions, flat.Transmissions)
	}
	// Node 1 and node 5 are plain members: they never forward.
	// Forwarders: 0 (head+src), 2 (gateway), 4 (gateway), 3 (head) = 4.
	if clus.Transmissions != 4 {
		t.Errorf("cluster Transmissions = %d, want 4", clus.Transmissions)
	}
}

func TestClusterFloodValidation(t *testing.T) {
	g, heads := starOfStars()
	if _, err := ClusterFlood(g, heads[:3], 0); err == nil {
		t.Error("wrong affiliation length should error")
	}
	if _, err := ClusterFlood(g, heads, 77); err == nil {
		t.Error("bad source should error")
	}
}

func TestClusterFloodUnaffiliatedForwards(t *testing.T) {
	// An undecided node must forward so coverage does not regress.
	pos := []geom.Point{{X: 0}, {X: 1}, {X: 2}}
	g := graph.FromPositions(pos, 1.2)
	heads := []int32{0, NoHead, 2}
	res, err := ClusterFlood(g, heads, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 3 {
		t.Errorf("Reached = %d, want 3 (undecided middle node must forward)", res.Reached)
	}
}

func TestClusterFloodFromMemberSource(t *testing.T) {
	g, heads := starOfStars()
	// Source node 5 is a plain member; it must still originate.
	res, err := ClusterFlood(g, heads, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 6 {
		t.Errorf("Reached = %d, want 6", res.Reached)
	}
}

// Property: cluster flood coverage equals flat flood coverage on random
// connected-ish topologies where every cluster is a star around its head
// (heads = nearest "anchor" node). The forwarding backbone of heads +
// gateways + unaffiliated must not partition reachability.
func TestClusterFloodCoverageProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		n := 15 + int(seed%25)
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: rng.Float64() * 400, Y: rng.Float64() * 400}
		}
		radius := 120.0
		g := graph.FromPositions(pos, radius)
		// Synthesize a valid clustering: greedy lowest-id maximal
		// independent set as heads; members join an adjacent head.
		heads := make([]int32, n)
		for i := range heads {
			heads[i] = NoHead
		}
		for i := 0; i < n; i++ {
			isHead := true
			for _, j := range g.Neighbors(int32(i)) {
				if j < int32(i) && heads[j] == j {
					isHead = false
					break
				}
			}
			if isHead {
				heads[i] = int32(i)
			}
		}
		for i := 0; i < n; i++ {
			if heads[i] != NoHead {
				continue
			}
			for _, j := range g.Neighbors(int32(i)) {
				if heads[j] == j {
					heads[i] = j
					break
				}
			}
		}
		flat, err := FlatFlood(g, 0)
		if err != nil {
			return false
		}
		clus, err := ClusterFlood(g, heads, 0)
		if err != nil {
			return false
		}
		return clus.Reached == flat.Reached && clus.Transmissions <= flat.Transmissions
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
