package routing

import (
	"testing"

	"mobic/internal/geom"
	"mobic/internal/graph"
)

func TestCoverageEmptyTopology(t *testing.T) {
	if c := (FloodResult{}).Coverage(); c != 0 {
		t.Errorf("empty Coverage = %g, want 0 (not NaN)", c)
	}
	if c := (FloodResult{Reached: 3, N: 4}).Coverage(); c != 0.75 {
		t.Errorf("Coverage = %g, want 0.75", c)
	}
}

func TestHopsEmptyPath(t *testing.T) {
	if h := (Path{}).Hops(); h != 0 {
		t.Errorf("empty path Hops = %d, want 0", h)
	}
	if h := (Path{1}).Hops(); h != 0 {
		t.Errorf("single-node path Hops = %d, want 0", h)
	}
	if h := (Path{1, 2, 3}).Hops(); h != 2 {
		t.Errorf("Hops = %d, want 2", h)
	}
}

// TestDiscoveryCostErrors covers the propagated-error branches: an
// out-of-range source must fail for both the flat and the backbone flood.
func TestDiscoveryCostErrors(t *testing.T) {
	// Nodes 0-1 linked, node 2 isolated.
	g := graph.FromPositions([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 50, Y: 50}}, 2)
	heads := []int32{0, 0, 2}
	for _, backbone := range []bool{false, true} {
		if _, err := DiscoveryCost(g, heads, 99, backbone); err == nil {
			t.Errorf("backbone=%v: out-of-range source should error", backbone)
		}
	}
	// And the happy paths agree with the floods they delegate to.
	flat, err := DiscoveryCost(g, heads, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	ff, _ := FlatFlood(g, 0)
	if flat != ff.Transmissions {
		t.Errorf("flat cost = %d, want %d", flat, ff.Transmissions)
	}
	bb, err := DiscoveryCost(g, heads, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	cf, _ := ClusterFlood(g, heads, 0)
	if bb != cf.Transmissions {
		t.Errorf("backbone cost = %d, want %d", bb, cf.Transmissions)
	}
}
