package routing

import (
	"fmt"

	"mobic/internal/graph"
)

// Path is a node sequence from source to destination (inclusive).
type Path []int32

// Hops returns the number of links in the path.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Valid reports whether every consecutive pair in the path is adjacent in g.
func (p Path) Valid(g *graph.Adjacency) bool {
	for i := 1; i < len(p); i++ {
		if p[i-1] < 0 || int(p[i-1]) >= g.N() || p[i] < 0 || int(p[i]) >= g.N() {
			return false
		}
		if !g.Adjacent(p[i-1], p[i]) {
			return false
		}
	}
	return len(p) > 0
}

// ErrNoRoute is returned when the destination is unreachable.
var ErrNoRoute = fmt.Errorf("routing: no route")

// ShortestPath returns a BFS shortest path from src to dst over the full
// topology — the flat-routing baseline.
func ShortestPath(g *graph.Adjacency, src, dst int32) (Path, error) {
	return constrainedPath(g, src, dst, nil)
}

// BackbonePath returns a shortest path from src to dst whose intermediate
// hops are restricted to the cluster backbone: clusterheads, gateways and
// unaffiliated nodes (CBRP-style forwarding). Source and destination may be
// any role. heads[i] is node i's clusterhead (own id for heads, NoHead for
// unaffiliated).
func BackbonePath(g *graph.Adjacency, heads []int32, src, dst int32) (Path, error) {
	if len(heads) != g.N() {
		return nil, fmt.Errorf("routing: %d affiliations for %d nodes", len(heads), g.N())
	}
	forwards := forwardingSet(g, heads)
	return constrainedPath(g, src, dst, forwards)
}

// constrainedPath runs BFS allowing only nodes with allowed[v] (or any node
// when allowed is nil) to relay; src and dst are always allowed.
func constrainedPath(g *graph.Adjacency, src, dst int32, allowed []bool) (Path, error) {
	if src < 0 || int(src) >= g.N() {
		return nil, fmt.Errorf("routing: source %d out of range [0, %d)", src, g.N())
	}
	if dst < 0 || int(dst) >= g.N() {
		return nil, fmt.Errorf("routing: destination %d out of range [0, %d)", dst, g.N())
	}
	if src == dst {
		return Path{src}, nil
	}
	prev := make([]int32, g.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if prev[v] != -1 {
				continue
			}
			prev[v] = u
			if v == dst {
				return assemble(prev, src, dst), nil
			}
			// Only backbone nodes relay further (dst handled above).
			if allowed == nil || allowed[v] {
				queue = append(queue, v)
			}
		}
	}
	return nil, fmt.Errorf("%w: %d -> %d", ErrNoRoute, src, dst)
}

func assemble(prev []int32, src, dst int32) Path {
	var rev Path
	for v := dst; ; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	out := make(Path, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// DiscoveryCost returns the number of transmissions a route request flood
// from src would incur: the flat flood cost for flat routing, the
// cluster-flood cost for backbone routing.
func DiscoveryCost(g *graph.Adjacency, heads []int32, src int32, backbone bool) (int, error) {
	if backbone {
		res, err := ClusterFlood(g, heads, src)
		if err != nil {
			return 0, err
		}
		return res.Transmissions, nil
	}
	res, err := FlatFlood(g, src)
	if err != nil {
		return 0, err
	}
	return res.Transmissions, nil
}
