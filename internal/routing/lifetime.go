package routing

import (
	"errors"

	"mobic/internal/graph"
)

// SnapshotProvider yields the topology and cluster affiliation at a
// simulated time. The simnet.Network satisfies it through a small adapter
// in the experiment harness.
type SnapshotProvider interface {
	// TopologyAt advances to time t and returns the adjacency and the
	// per-node clusterhead vector at that instant. Calls must be
	// monotonically increasing in t.
	TopologyAt(t float64) (*graph.Adjacency, []int32, error)
}

// LifetimeSample is one route observed until it broke.
type LifetimeSample struct {
	// Src and Dst are the route endpoints.
	Src, Dst int32
	// Hops is the route length at discovery.
	Hops int
	// Lifetime is how long every link of the route stayed up, in seconds
	// (granularity = probe interval).
	Lifetime float64
	// Backbone reports whether the route was backbone-constrained.
	Backbone bool
}

// RouteLifetimes discovers a route from src to dst at time start (flat or
// backbone-constrained) and then probes the topology every interval until
// the route breaks or horizon is reached. It returns the observed lifetime.
//
// A backbone route is considered broken when any link disappears — cluster
// reorganizations that change roles but keep the nodes adjacent do not
// break an in-use source route, matching how CBRP keeps forwarding while
// reclustering happens underneath.
func RouteLifetimes(
	sp SnapshotProvider,
	src, dst int32,
	start, interval, horizon float64,
	backbone bool,
) (LifetimeSample, error) {
	if interval <= 0 {
		return LifetimeSample{}, errors.New("routing: probe interval must be positive")
	}
	g, heads, err := sp.TopologyAt(start)
	if err != nil {
		return LifetimeSample{}, err
	}
	var path Path
	if backbone {
		path, err = BackbonePath(g, heads, src, dst)
	} else {
		path, err = ShortestPath(g, src, dst)
	}
	if err != nil {
		return LifetimeSample{}, err
	}
	sample := LifetimeSample{Src: src, Dst: dst, Hops: path.Hops(), Backbone: backbone}
	for t := start + interval; t <= horizon; t += interval {
		g, _, err := sp.TopologyAt(t)
		if err != nil {
			return sample, err
		}
		if !path.Valid(g) {
			return sample, nil
		}
		sample.Lifetime = t - start
	}
	return sample, nil
}
