package routing

import (
	"testing"

	"mobic/internal/geom"
	"mobic/internal/graph"
)

// scriptedProvider replays a fixed sequence of topologies: index = t /
// interval.
type scriptedProvider struct {
	graphs   []*graph.Adjacency
	heads    []int32
	interval float64
}

func (s *scriptedProvider) TopologyAt(t float64) (*graph.Adjacency, []int32, error) {
	idx := int(t / s.interval)
	if idx >= len(s.graphs) {
		idx = len(s.graphs) - 1
	}
	return s.graphs[idx], s.heads, nil
}

func lineAt(spacing float64, n int) *graph.Adjacency {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * spacing, Y: 0}
	}
	return graph.FromPositions(pos, 1.0)
}

func TestRouteLifetimeUntilBreak(t *testing.T) {
	// Topology: connected line for 3 probes, then the line stretches and
	// every link breaks.
	connected := lineAt(1, 4)
	broken := lineAt(10, 4)
	sp := &scriptedProvider{
		graphs:   []*graph.Adjacency{connected, connected, connected, broken, broken},
		heads:    []int32{0, 0, 2, 2},
		interval: 10,
	}
	sample, err := RouteLifetimes(sp, 0, 3, 0, 10, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Hops != 3 {
		t.Errorf("Hops = %d, want 3", sample.Hops)
	}
	// Probes at 10 and 20 pass; probe at 30 sees the break.
	if sample.Lifetime != 20 {
		t.Errorf("Lifetime = %v, want 20", sample.Lifetime)
	}
}

func TestRouteLifetimeSurvivesToHorizon(t *testing.T) {
	connected := lineAt(1, 3)
	sp := &scriptedProvider{
		graphs:   []*graph.Adjacency{connected},
		heads:    []int32{0, 0, 0},
		interval: 10,
	}
	sample, err := RouteLifetimes(sp, 0, 2, 0, 10, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Lifetime != 50 {
		t.Errorf("Lifetime = %v, want 50 (survived to horizon)", sample.Lifetime)
	}
}

func TestRouteLifetimeNoInitialRoute(t *testing.T) {
	broken := lineAt(10, 3)
	sp := &scriptedProvider{
		graphs:   []*graph.Adjacency{broken},
		heads:    []int32{0, 1, 2},
		interval: 10,
	}
	if _, err := RouteLifetimes(sp, 0, 2, 0, 10, 50, false); err == nil {
		t.Error("unreachable destination should error")
	}
}

func TestRouteLifetimeBackbone(t *testing.T) {
	g, heads := starOfStars()
	sp := &scriptedProvider{
		graphs:   []*graph.Adjacency{g},
		heads:    heads,
		interval: 5,
	}
	sample, err := RouteLifetimes(sp, 1, 5, 0, 5, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if !sample.Backbone {
		t.Error("sample should be marked backbone")
	}
	if sample.Lifetime != 20 {
		t.Errorf("static backbone route lifetime = %v, want 20", sample.Lifetime)
	}
}

func TestRouteLifetimeInvalidInterval(t *testing.T) {
	g, heads := starOfStars()
	sp := &scriptedProvider{graphs: []*graph.Adjacency{g}, heads: heads, interval: 5}
	if _, err := RouteLifetimes(sp, 0, 5, 0, 0, 20, false); err == nil {
		t.Error("zero interval should error")
	}
}
