package routing

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mobic/internal/geom"
	"mobic/internal/graph"
)

func lineGraph(k int) *graph.Adjacency {
	pos := make([]geom.Point, k)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i), Y: 0}
	}
	return graph.FromPositions(pos, 1.0)
}

func TestShortestPathLine(t *testing.T) {
	g := lineGraph(5)
	p, err := ShortestPath(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 4 {
		t.Errorf("Hops = %d, want 4", p.Hops())
	}
	if !p.Valid(g) {
		t.Error("path should be valid")
	}
	want := Path{0, 1, 2, 3, 4}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := lineGraph(3)
	p, err := ShortestPath(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 0 || len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
}

func TestShortestPathNoRoute(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 100}}
	g := graph.FromPositions(pos, 1)
	_, err := ShortestPath(g, 0, 1)
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestShortestPathBadEndpoints(t *testing.T) {
	g := lineGraph(3)
	if _, err := ShortestPath(g, -1, 2); err == nil {
		t.Error("negative src should error")
	}
	if _, err := ShortestPath(g, 0, 5); err == nil {
		t.Error("out-of-range dst should error")
	}
}

func TestBackbonePathRestrictsRelays(t *testing.T) {
	// Topology: 0 - 1 - 2 and 0 - 3 - 2 where 1 is a plain member (not a
	// gateway) and 3 is a head. The backbone route must go through 3.
	pos := []geom.Point{
		{X: 0, Y: 0},  // 0: member of 3
		{X: 1, Y: 1},  // 1: member of 3 too (same cluster: not a gateway)
		{X: 2, Y: 0},  // 2: member of 3
		{X: 1, Y: -1}, // 3: head
	}
	g := graph.FromPositions(pos, 1.6) // edges: 0-1, 1-2, 0-3, 2-3
	heads := []int32{3, 3, 3, 3}
	p, err := BackbonePath(g, heads, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 2 || p[1] != 3 {
		t.Errorf("backbone path = %v, want via head 3", p)
	}
	// Flat path may use either relay but has the same length here.
	flat, err := ShortestPath(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Hops() != 2 {
		t.Errorf("flat path = %v", flat)
	}
}

func TestBackbonePathEndpointsAnyRole(t *testing.T) {
	// Both endpoints are plain members; route must still be found through
	// the backbone.
	g, heads := starOfStars()
	p, err := BackbonePath(g, heads, 1, 5) // members of different clusters
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid(g) {
		t.Errorf("invalid backbone path %v", p)
	}
	// Intermediate hops must be backbone nodes (0, 2, 3, 4).
	for _, v := range p[1 : len(p)-1] {
		if v == 1 || v == 5 {
			t.Errorf("plain member used as relay in %v", p)
		}
	}
}

func TestBackbonePathValidation(t *testing.T) {
	g, heads := starOfStars()
	if _, err := BackbonePath(g, heads[:2], 0, 5); err == nil {
		t.Error("wrong heads length should error")
	}
}

func TestPathValid(t *testing.T) {
	g := lineGraph(4)
	if (Path{}).Valid(g) {
		t.Error("empty path is invalid")
	}
	if !(Path{2}).Valid(g) {
		t.Error("single-node path is valid")
	}
	if (Path{0, 2}).Valid(g) {
		t.Error("non-adjacent hop should be invalid")
	}
	if (Path{0, 9}).Valid(g) {
		t.Error("out-of-range node should be invalid")
	}
	if !(Path{0, 1, 2, 3}).Valid(g) {
		t.Error("full line path should be valid")
	}
}

func TestDiscoveryCost(t *testing.T) {
	g, heads := starOfStars()
	flat, err := DiscoveryCost(g, heads, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	backbone, err := DiscoveryCost(g, heads, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if backbone >= flat {
		t.Errorf("backbone discovery (%d) should cost less than flat (%d)", backbone, flat)
	}
}

// Property: a backbone path, when it exists, is never shorter than the flat
// shortest path, and both are valid.
func TestBackboneNeverShorterProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		n := 12 + int(seed%20)
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300}
		}
		g := graph.FromPositions(pos, 110)
		// Greedy MIS clustering as in the flood property test.
		heads := make([]int32, n)
		for i := range heads {
			heads[i] = NoHead
		}
		for i := 0; i < n; i++ {
			isHead := true
			for _, j := range g.Neighbors(int32(i)) {
				if j < int32(i) && heads[j] == j {
					isHead = false
					break
				}
			}
			if isHead {
				heads[i] = int32(i)
			}
		}
		for i := 0; i < n; i++ {
			if heads[i] == NoHead {
				for _, j := range g.Neighbors(int32(i)) {
					if heads[j] == j {
						heads[i] = j
						break
					}
				}
			}
		}
		dst := int32(n - 1)
		flat, errF := ShortestPath(g, 0, dst)
		bb, errB := BackbonePath(g, heads, 0, dst)
		if errF != nil {
			// Disconnected: backbone must fail too.
			return errB != nil
		}
		if errB != nil {
			// Backbone is a connected dominating superset of relays in
			// these synthetic clusterings; it should find a route when
			// flat routing does.
			return false
		}
		return flat.Valid(g) && bb.Valid(g) && bb.Hops() >= flat.Hops()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
