package analysis

import (
	"errors"
	"math"
	"testing"
)

func TestLinkSurvivalBoundaries(t *testing.T) {
	tests := []struct {
		name       string
		t, d, v, R float64
		want       float64
	}{
		{name: "zero time is certain", t: 0, d: 50, v: 5, R: 100, want: 1},
		{name: "negative time is certain", t: -1, d: 50, v: 5, R: 100, want: 1},
		{name: "out of range never survives", t: 1, d: 100, v: 5, R: 100, want: 0},
		{name: "beyond range never survives", t: 1, d: 150, v: 5, R: 100, want: 0},
		{name: "negative distance is invalid", t: 1, d: -1, v: 5, R: 100, want: 0},
		{name: "unknown mobility is adversarial", t: 1, d: 50, v: 0, R: 100, want: 0},
		{name: "zero range never survives", t: 1, d: 0, v: 5, R: 0, want: 0},
		{name: "past the break time clamps", t: 100, d: 50, v: 5, R: 100, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LinkSurvival(tt.t, tt.d, tt.v, tt.R); got != tt.want {
				t.Errorf("LinkSurvival(%g, %g, %g, %g) = %g, want %g",
					tt.t, tt.d, tt.v, tt.R, got, tt.want)
			}
		})
	}
}

func TestLinkSurvivalLinearDecay(t *testing.T) {
	// d=50, v=5, R=100: the link breaks after (100-50)/5 = 10 s, so at
	// t=2.5 exactly 3/4 of the window remains.
	if got := LinkSurvival(2.5, 50, 5, 100); got != 0.75 {
		t.Errorf("LinkSurvival(2.5, 50, 5, 100) = %g, want 0.75", got)
	}
	// Monotone non-increasing in t, d, and v; non-decreasing in R.
	base := LinkSurvival(2, 50, 5, 100)
	if LinkSurvival(3, 50, 5, 100) >= base {
		t.Error("survival should fall with time")
	}
	if LinkSurvival(2, 60, 5, 100) >= base {
		t.Error("survival should fall with distance")
	}
	if LinkSurvival(2, 50, 8, 100) >= base {
		t.Error("survival should fall with speed")
	}
	if LinkSurvival(2, 50, 5, 150) <= base {
		t.Error("survival should rise with range")
	}
}

func TestClusterSurvival(t *testing.T) {
	if got := ClusterSurvival(5, nil, 5, 100); got != 1 {
		t.Errorf("lone head = %g, want 1", got)
	}
	// Product structure: two identical links square the single-link value.
	single := LinkSurvival(2.5, 50, 5, 100)
	pair := ClusterSurvival(2.5, []float64{50, 50}, 5, 100)
	if math.Abs(pair-single*single) > 1e-12 {
		t.Errorf("two links = %g, want %g", pair, single*single)
	}
	// One dead link kills the cluster regardless of the others.
	if got := ClusterSurvival(2.5, []float64{10, 100}, 5, 100); got != 0 {
		t.Errorf("cluster with a dead link = %g, want 0", got)
	}
}

func TestReliabilityParamsValidate(t *testing.T) {
	good := ReliabilityParams{
		Members: 5, PlacementRadius: 80, Range: 100, Speed: 5,
		Horizon: 4, Trials: 100, Seed: 1,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*ReliabilityParams)
	}{
		{name: "negative members", mutate: func(p *ReliabilityParams) { p.Members = -1 }},
		{name: "zero range", mutate: func(p *ReliabilityParams) { p.Range = 0 }},
		{name: "zero placement", mutate: func(p *ReliabilityParams) { p.PlacementRadius = 0 }},
		{name: "placement beyond range", mutate: func(p *ReliabilityParams) { p.PlacementRadius = 101 }},
		{name: "zero speed", mutate: func(p *ReliabilityParams) { p.Speed = 0 }},
		{name: "negative horizon", mutate: func(p *ReliabilityParams) { p.Horizon = -1 }},
		{name: "zero trials", mutate: func(p *ReliabilityParams) { p.Trials = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := good
			tt.mutate(&p)
			if _, err := MonteCarloClusterReliability(p); !errors.Is(err, ErrBadReliability) {
				t.Errorf("want ErrBadReliability, got %v", err)
			}
		})
	}
}

func TestMonteCarloDeterminism(t *testing.T) {
	p := ReliabilityParams{
		Members: 6, PlacementRadius: 90, Range: 100, Speed: 5,
		Horizon: 1, Trials: 5000, Seed: 42,
	}
	a, err := MonteCarloClusterReliability(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloClusterReliability(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %g vs %g", a, b)
	}
	p.Seed = 43
	c, err := MonteCarloClusterReliability(p)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Errorf("different seeds produced identical estimate %g (suspicious)", a)
	}
}

// TestMonteCarloMatchesClosedForm checks the estimator against the exact
// single-member expectation. With placement radius A and tv <= R - A the
// linear decay never clamps, so
//
//	E[S] = 1 - t*v * E[1/(R-d)],  E[1/(R-d)] = (2/A^2)(R*ln(R/(R-A)) - A)
//
// for d = A*sqrt(u) (uniform by area).
func TestMonteCarloMatchesClosedForm(t *testing.T) {
	const (
		A, R, v, horizon = 50.0, 100.0, 5.0, 4.0 // t*v = 20 <= R - A
		trials           = 200000
	)
	want := 1 - horizon*v*(2/(A*A))*(R*math.Log(R/(R-A))-A)
	got, err := MonteCarloClusterReliability(ReliabilityParams{
		Members: 1, PlacementRadius: A, Range: R, Speed: v,
		Horizon: horizon, Trials: trials, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Monte Carlo = %.4f, closed form = %.4f (|diff| > 0.01)", got, want)
	}
}

// TestMonteCarloMonotoneInHorizon: at a fixed seed the draw sequence is
// independent of outcomes, so a longer horizon can only flip trials from
// surviving to failed — the estimate is exactly non-increasing, not just
// statistically so.
func TestMonteCarloMonotoneInHorizon(t *testing.T) {
	p := ReliabilityParams{
		Members: 4, PlacementRadius: 80, Range: 100, Speed: 5,
		Trials: 2000, Seed: 11,
	}
	prev := math.Inf(1)
	for _, h := range []float64{0, 0.5, 1, 2, 4, 8} {
		p.Horizon = h
		got, err := MonteCarloClusterReliability(p)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev {
			t.Errorf("horizon %g: reliability rose to %g from %g", h, got, prev)
		}
		prev = got
	}
	// Horizon 0 must be certain survival: every member starts in range.
	p.Horizon = 0
	got, err := MonteCarloClusterReliability(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("horizon 0 reliability = %g, want 1", got)
	}
}
